// Experiment E8/E9 (DESIGN.md): cost of the reasoning services — inverse
// lookups, composition queries (memoised after first evaluation; the cold
// cost appears as the first iteration of each distinct pair), algebraic
// closure and canonical-model realisation of constraint networks.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "reasoning/composition.h"
#include "reasoning/constraint_network.h"
#include "reasoning/inverse.h"
#include "util/random.h"

namespace cardir {
namespace {

void BM_InverseLookup(benchmark::State& state) {
  // Includes the one-off table build in the first iteration.
  Rng rng(1);
  for (auto _ : state) {
    const uint16_t mask = static_cast<uint16_t>(rng.NextInt(1, 511));
    benchmark::DoNotOptimize(Inverse(CardinalRelation::FromMask(mask)));
  }
}
BENCHMARK(BM_InverseLookup);

void BM_ComposeSingleTilePairs(benchmark::State& state) {
  // Cycles through all 81 single-tile pairs; cold on the first pass,
  // memoised afterwards.
  int i = 0;
  for (auto _ : state) {
    const Tile r = kAllTiles[static_cast<size_t>(i) % 9];
    const Tile s = kAllTiles[static_cast<size_t>(i / 9) % 9];
    benchmark::DoNotOptimize(
        Compose(CardinalRelation(r), CardinalRelation(s)));
    ++i;
  }
}
BENCHMARK(BM_ComposeSingleTilePairs);

void BM_ComposeRandomPairs(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    const uint16_t r = static_cast<uint16_t>(rng.NextInt(1, 511));
    const uint16_t s = static_cast<uint16_t>(rng.NextInt(1, 511));
    benchmark::DoNotOptimize(Compose(CardinalRelation::FromMask(r),
                                     CardinalRelation::FromMask(s)));
  }
}
BENCHMARK(BM_ComposeRandomPairs);

// Closure and realisation on complete networks induced by n random regions.
void BM_AlgebraicClosure(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(10);
  std::vector<Region> regions;
  for (int i = 0; i < n; ++i) {
    regions.push_back(bench::BenchPrimary(rng.NextUint64(), 16));
  }
  const ConstraintNetwork network =
      *ConstraintNetwork::FromRegions(regions);
  for (auto _ : state) {
    ConstraintNetwork copy = network;
    benchmark::DoNotOptimize(copy.AlgebraicClosure());
  }
  state.counters["variables"] = n;
}
BENCHMARK(BM_AlgebraicClosure)->DenseRange(3, 7, 2);

void BM_RealizeBasic(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(11);
  std::vector<Region> regions;
  for (int i = 0; i < n; ++i) {
    regions.push_back(bench::BenchPrimary(rng.NextUint64(), 16));
  }
  const ConstraintNetwork network =
      *ConstraintNetwork::FromRegions(regions);
  for (auto _ : state) {
    auto model = network.RealizeBasic();
    benchmark::DoNotOptimize(model);
  }
  state.counters["variables"] = n;
}
BENCHMARK(BM_RealizeBasic)->DenseRange(3, 9, 2);

void BM_SolveDisjunctive(benchmark::State& state) {
  // A small disjunctive network: each constraint carries 2 candidates.
  ConstraintNetwork network;
  const int a = network.AddVariable("a");
  const int b = network.AddVariable("b");
  const int c = network.AddVariable("c");
  DisjunctiveRelation ab;
  ab.Add(*CardinalRelation::Parse("S"));
  ab.Add(*CardinalRelation::Parse("SW"));
  DisjunctiveRelation bc;
  bc.Add(*CardinalRelation::Parse("W"));
  bc.Add(*CardinalRelation::Parse("NW"));
  DisjunctiveRelation ca;
  ca.Add(*CardinalRelation::Parse("NE"));
  ca.Add(*CardinalRelation::Parse("N:NE"));
  (void)network.AddConstraint(a, b, ab);
  (void)network.AddConstraint(b, c, bc);
  (void)network.AddConstraint(c, a, ca);
  for (auto _ : state) {
    auto model = network.Solve();
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_SolveDisjunctive);

}  // namespace
}  // namespace cardir
