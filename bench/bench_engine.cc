// E20: batch relation engine throughput — serial all-pairs loop vs MBB
// prefiltering vs the work-stealing thread pool, on 1k–10k-region
// configurations. Plain main (not google-benchmark) because each data point
// is one long wall-clock measurement and the binary also emits
// BENCH_engine.json for the perf-trajectory ledger. Engine runs also record
// the observability counters (prefilter hit rate, chunks stolen, pairs/sec)
// so the bench trajectory captures more than wall-clock, and each run's
// counters are checked against the engine's accounting invariants
// (prefiltered + computed = total pairs; edges split ≥ edges in) — the
// binary exits non-zero on a violation, which the nightly CI job relies on.
//
//   bench_engine [--sizes 1000,2000] [--serial-cap 2000] [--engine-cap 25000]
//                [--overlap 600] [--threads 2,8] [--repeat 1]
//                [--out BENCH_engine.json] [--trace-out trace.json]
//                [--flight-record record.txt] [--profile profile.folded]
//                [--profile-hz 997]
//
// Sizes above --serial-cap skip the serial baseline (quadratic, validated
// per pair — minutes at 10k); sizes above 5000 use the engine's digest
// mode so that 10^8-pair matrices do not have to be materialised. Sizes
// above --engine-cap skip the dense-engine modes entirely and run only the
// engine_sweep rows: the sweep join's run-length RelationStore is the only
// mode whose memory stays sub-quadratic, so it alone covers n = 50k/100k.
// --repeat N times each *engine* row N times and records the best wall
// time (the serial baseline always runs once — it is quadratic and only a
// reference point): single engine measurements on a loaded host can swing
// ±50%, which would flake the perf-smoke gate that diffs ledgers.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/compute_cdr.h"
#include "engine/batch_engine.h"
#include "engine/delta_engine.h"
#include "engine/relation_store.h"
#include "engine/thread_pool.h"
#include "geometry/region.h"
#include "obs/profile.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "util/random.h"
#include "util/string_util.h"
#include "workload/region_gen.h"

namespace cardir {
namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// The disjoint-cell "country map" layout of workload/scenario_gen: mostly
// tile-separated pairs, the engine's sweet spot.
std::vector<Region> MapRegions(Rng* rng, int count) {
  const int grid = static_cast<int>(std::ceil(std::sqrt(count)));
  const double cell = 1000.0 / grid;
  std::vector<Region> regions;
  regions.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int cx = i % grid;
    const int cy = i / grid;
    RegionGenOptions options;
    options.num_polygons = 1;
    options.vertices_per_polygon = 8;
    options.bounds = Box(cx * cell + 0.05 * cell, cy * cell + 0.05 * cell,
                         (cx + 1) * cell - 0.05 * cell,
                         (cy + 1) * cell - 0.05 * cell);
    regions.push_back(RandomRegion(rng, options));
  }
  return regions;
}

// Heavily overlapping regions: most pairs cross mbb lines, so the full
// Compute-CDR dominates and the pool, not the prefilter, carries the run.
std::vector<Region> OverlapRegions(Rng* rng, int count) {
  std::vector<Region> regions;
  regions.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const double size = rng->NextDouble(40.0, 160.0);
    const double x = rng->NextDouble(0.0, 400.0 - size);
    const double y = rng->NextDouble(0.0, 400.0 - size);
    RegionGenOptions options;
    options.num_polygons = 1;
    options.vertices_per_polygon = 10;
    options.bounds = Box(x, y, x + size, y + size);
    regions.push_back(RandomRegion(rng, options));
  }
  return regions;
}

// The move generator: the same region shape, shifted. Keeps the workload's
// geometry scale so the delta rows measure maintenance cost, not a change
// of region statistics.
Region Translated(const Region& region, double dx, double dy) {
  Region out;
  for (const Polygon& polygon : region.polygons()) {
    std::vector<Point> vertices;
    vertices.reserve(polygon.size());
    for (const Point& p : polygon.vertices()) {
      vertices.emplace_back(p.x + dx, p.y + dy);
    }
    out.AddPolygon(Polygon(std::move(vertices)));
  }
  return out;
}

struct RunRecord {
  std::string workload;
  int regions = 0;
  std::string mode;
  int threads = 1;
  bool prefilter = false;
  double ms = 0;
  // 99th-percentile single-mutation latency — only the engine_delta* rows
  // measure a latency distribution; 0 elsewhere and emitted as JSON null.
  double p99_ms = 0;
  size_t pairs = 0;
  size_t prefiltered_pairs = 0;
  size_t crossing_pairs = 0;
  // Serial-loop wall time over this run's; 0 means "no serial baseline ran
  // for this (workload, n)" and is emitted as JSON null, never as 0.00 —
  // a literal zero would read as "infinitely slower than serial" to ledger
  // consumers (see the schema note in bench_common.h).
  double speedup_vs_serial = 0;
  // Observability counters over this run's window (zero when the binary was
  // built with -DCARDIR_OBS=OFF).
  double pairs_per_sec = 0;
  double prefilter_hit_rate = 0;
  uint64_t chunks_executed = 0;
  uint64_t chunks_stolen = 0;
  uint64_t edges_input = 0;
  uint64_t edges_split = 0;
  // Pairs the delta engine touched over this row's window, split by how
  // they resolved (explicit re-resolution vs implicit-from-profile). Zero
  // for the batch modes.
  uint64_t delta_pairs_reresolved = 0;
  uint64_t delta_pairs_implicit = 0;
  // Memory telemetry (obs/memstats.h): per-arena high-water bytes within
  // this run's window (ObsWindow resets peaks at window start) plus the
  // process RSS sampled at window close. All zero under -DCARDIR_OBS=OFF.
  int64_t mem_pair_matrix_peak_bytes = 0;
  int64_t mem_edge_soa_peak_bytes = 0;
  int64_t mem_worker_scratch_peak_bytes = 0;
  int64_t mem_crossing_queue_peak_bytes = 0;
  int64_t mem_relation_store_peak_bytes = 0;
  int64_t mem_total_peak_bytes = 0;
  int64_t mem_process_rss_bytes = 0;
  // The serial loop allocates its matrix outside the instrumented arenas,
  // so its mem.* window is mostly silence plus whatever the allocator left
  // behind — not a measurement. Such rows emit every mem_* column as JSON
  // null (see the schema note in bench_common.h).
  bool mem_valid = true;
};

// Fails the process on a counter-accounting violation; the nightly CI job
// surfaces this as a red run.
void CheckCounterInvariants(const RunRecord& r,
                            const obs::MetricsSnapshot& delta) {
  const uint64_t total = delta.counter("engine.pairs.total");
  const uint64_t prefiltered = delta.counter("engine.pairs.prefiltered");
  const uint64_t computed = delta.counter("engine.pairs.computed");
  if (prefiltered + computed != total) {
    std::cerr << "counter invariant violated (" << r.workload << " n="
              << r.regions << " " << r.mode
              << "): prefiltered + computed != total (" << prefiltered
              << " + " << computed << " != " << total << ")\n";
    std::exit(1);
  }
  if (delta.counter("engine.runs") != 0 &&
      total != static_cast<uint64_t>(r.pairs)) {
    std::cerr << "counter invariant violated (" << r.workload << " n="
              << r.regions << " " << r.mode << "): engine.pairs.total "
              << total << " != n*(n-1) = " << r.pairs << "\n";
    std::exit(1);
  }
  if (delta.counter("core.edges.split") < delta.counter("core.edges.input")) {
    std::cerr << "counter invariant violated (" << r.workload << " n="
              << r.regions << " " << r.mode
              << "): edges split < edges in ("
              << delta.counter("core.edges.split") << " < "
              << delta.counter("core.edges.input") << ")\n";
    std::exit(1);
  }
}

// The loop Configuration::ComputeAllRelations ran before the engine:
// validated Compute-CDR per ordered pair, results materialised in order.
// Validation stays per pair (that is the cost the nofilter row isolates);
// only the counter flush is batched, so the timed region carries the same
// instrumentation overhead as the engine's chunked path.
double TimeSerialLoop(const std::vector<Region>& regions) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<CardinalRelation> matrix;
  matrix.reserve(regions.size() * (regions.size() - 1));
  CdrMetricsDelta cdr_metrics;
  for (size_t i = 0; i < regions.size(); ++i) {
    for (size_t j = 0; j < regions.size(); ++j) {
      if (i == j) continue;
      const Status primary_ok = regions[i].Validate();
      const Status reference_ok = regions[j].Validate();
      if (!primary_ok.ok() || !reference_ok.ok()) {
        std::cerr << "serial loop failed: "
                  << (primary_ok.ok() ? reference_ok : primary_ok).ToString()
                  << "\n";
        std::exit(1);
      }
      matrix.push_back(
          ComputeCdrUnchecked(regions[i], regions[j], &cdr_metrics).relation);
    }
  }
  cdr_metrics.FlushToRegistry();
  return MsSince(start);
}

// The sweep join (engine/relation_store.h): candidate pairs come from the
// interval-overlap indexes, everything else resolves implicitly from the
// run-length class profile, and the result is the O(n + explicit) store
// rather than a dense matrix. The timed region is construction only —
// enumerating all n·(n-1) pairs afterwards (Digest) would put the
// quadratic walk the sweep exists to avoid back into the measurement.
// `overlay_out` receives the explicit-pair count so the caller can report
// how much of the quadratic pair space ever materialised.
double TimeSweep(const std::vector<Region>& regions,
                 const EngineOptions& options, EngineStats* stats,
                 size_t* overlay_out) {
  const auto start = std::chrono::steady_clock::now();
  auto store = ComputeRelationStore(regions, options, stats);
  if (!store.ok()) {
    std::cerr << "sweep engine failed: " << store.status() << "\n";
    std::exit(1);
  }
  const double ms = MsSince(start);
  *overlay_out = store->overlay_pairs();
  return ms;
}

double TimeEngine(const std::vector<Region>& regions,
                  const EngineOptions& options, bool digest_mode,
                  EngineStats* stats) {
  const auto start = std::chrono::steady_clock::now();
  if (digest_mode) {
    auto digest = ComputeAllPairsDigest(regions, options, stats);
    if (!digest.ok()) {
      std::cerr << "engine failed: " << digest.status() << "\n";
      std::exit(1);
    }
  } else {
    auto pairs = ComputeAllPairs(regions, options, stats);
    if (!pairs.ok()) {
      std::cerr << "engine failed: " << pairs.status() << "\n";
      std::exit(1);
    }
  }
  return MsSince(start);
}

std::vector<int> ParseIntList(const std::string& text) {
  std::vector<int> values;
  for (const std::string& piece : StrSplit(text, ',')) {
    values.push_back(std::stoi(piece));
  }
  return values;
}

// Fills the counter-derived fields from this run's metric window and
// enforces the accounting invariants.
void RecordCounters(RunRecord* r, const bench::ObsWindow& window) {
  const obs::MetricsSnapshot delta = window.Delta();
  r->pairs_per_sec =
      r->ms > 0 ? static_cast<double>(r->pairs) / (r->ms / 1000.0) : 0.0;
  const uint64_t total = delta.counter("engine.pairs.total");
  r->prefilter_hit_rate =
      total > 0 ? static_cast<double>(delta.counter("engine.pairs.prefiltered")) /
                      static_cast<double>(total)
                : 0.0;
  r->chunks_executed = delta.counter("engine.pool.chunks_executed");
  r->chunks_stolen = delta.counter("engine.pool.chunks_stolen");
  r->edges_input = delta.counter("core.edges.input");
  r->edges_split = delta.counter("core.edges.split");
  r->delta_pairs_reresolved = delta.counter("delta.pairs_reresolved");
  r->delta_pairs_implicit = delta.counter("delta.pairs_implicit");
  r->mem_pair_matrix_peak_bytes = delta.gauge("mem.pair_matrix.peak_bytes");
  r->mem_edge_soa_peak_bytes = delta.gauge("mem.edge_soa.peak_bytes");
  r->mem_worker_scratch_peak_bytes =
      delta.gauge("mem.worker_scratch.peak_bytes");
  r->mem_crossing_queue_peak_bytes =
      delta.gauge("mem.crossing_queue.peak_bytes");
  r->mem_relation_store_peak_bytes =
      delta.gauge("mem.relation_store.peak_bytes");
  r->mem_total_peak_bytes = delta.gauge("mem.total.peak_bytes");
  r->mem_process_rss_bytes = delta.gauge("mem.process.rss_bytes");
  CheckCounterInvariants(*r, delta);
}

void PrintRecord(const RunRecord& r) {
  if (r.p99_ms > 0) {
    // Delta rows: per-mutation latency, not a batch throughput number.
    std::printf(
        "%-8s n=%-6d %-18s threads=%-2d %10.4f ms median  p99=%.4f ms"
        "  reresolved=%llu implicit=%llu\n",
        r.workload.c_str(), r.regions, r.mode.c_str(), r.threads, r.ms,
        r.p99_ms, static_cast<unsigned long long>(r.delta_pairs_reresolved),
        static_cast<unsigned long long>(r.delta_pairs_implicit));
    return;
  }
  const double mpairs_s =
      r.ms > 0 ? static_cast<double>(r.pairs) / r.ms / 1000.0 : 0.0;
  std::printf(
      "%-8s n=%-6d %-18s threads=%-2d %10.1f ms  %8.2f Mpairs/s"
      "  prefiltered=%zu crossing=%zu stolen=%llu%s\n",
      r.workload.c_str(), r.regions, r.mode.c_str(), r.threads, r.ms,
      mpairs_s, r.prefiltered_pairs, r.crossing_pairs,
      static_cast<unsigned long long>(r.chunks_stolen),
      r.speedup_vs_serial > 0
          ? StrFormat("  speedup=%.1fx", r.speedup_vs_serial).c_str()
          : "");
}

void WriteJson(const std::vector<RunRecord>& records, int repeat,
               const std::string& path) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"engine\",\n  \"unit\": \"ms\",\n  \"repeat\": "
      << repeat << ",\n  \"runs\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const RunRecord& r = records[i];
    // Sizes above --serial-cap have no serial baseline: emit null, not
    // 0.00, so ledger consumers can tell "not measured" from a ratio.
    const std::string speedup =
        r.speedup_vs_serial > 0 ? StrFormat("%.2f", r.speedup_vs_serial)
                                : std::string("null");
    // Rows that ran outside the instrumented arenas (the serial loop) have
    // no memory measurement: every mem_* column is null, never 0 (see the
    // schema note in bench_common.h).
    auto mem = [&](int64_t value) -> std::string {
      return r.mem_valid ? StrFormat("%lld", static_cast<long long>(value))
                         : std::string("null");
    };
    // Only the delta rows carry a latency distribution; everything else
    // emits p99_ms as null so consumers cannot mistake "not a latency
    // bench" for "zero-latency".
    const std::string p99 =
        r.p99_ms > 0 ? StrFormat("%.4f", r.p99_ms) : std::string("null");
    out << StrFormat(
        "    {\"workload\": \"%s\", \"regions\": %d, \"mode\": \"%s\", "
        "\"threads\": %d, \"prefilter\": %s, \"ms\": %.4f, "
        "\"p99_ms\": %s, \"pairs\": %zu, "
        "\"prefiltered_pairs\": %zu, \"crossing_pairs\": %zu, "
        "\"speedup_vs_serial\": %s, \"pairs_per_sec\": %.0f, "
        "\"prefilter_hit_rate\": %.4f, \"chunks_executed\": %llu, "
        "\"chunks_stolen\": %llu, \"edges_input\": %llu, "
        "\"edges_split\": %llu, \"delta_pairs_reresolved\": %llu, "
        "\"delta_pairs_implicit\": %llu, "
        "\"mem_pair_matrix_peak_bytes\": %s, "
        "\"mem_edge_soa_peak_bytes\": %s, "
        "\"mem_worker_scratch_peak_bytes\": %s, "
        "\"mem_crossing_queue_peak_bytes\": %s, "
        "\"mem_relation_store_peak_bytes\": %s, "
        "\"mem_total_peak_bytes\": %s, "
        "\"mem_process_rss_bytes\": %s}%s\n",
        r.workload.c_str(), r.regions, r.mode.c_str(), r.threads,
        r.prefilter ? "true" : "false", r.ms, p99.c_str(), r.pairs,
        r.prefiltered_pairs,
        r.crossing_pairs, speedup.c_str(), r.pairs_per_sec,
        r.prefilter_hit_rate,
        static_cast<unsigned long long>(r.chunks_executed),
        static_cast<unsigned long long>(r.chunks_stolen),
        static_cast<unsigned long long>(r.edges_input),
        static_cast<unsigned long long>(r.edges_split),
        static_cast<unsigned long long>(r.delta_pairs_reresolved),
        static_cast<unsigned long long>(r.delta_pairs_implicit),
        mem(r.mem_pair_matrix_peak_bytes).c_str(),
        mem(r.mem_edge_soa_peak_bytes).c_str(),
        mem(r.mem_worker_scratch_peak_bytes).c_str(),
        mem(r.mem_crossing_queue_peak_bytes).c_str(),
        mem(r.mem_relation_store_peak_bytes).c_str(),
        mem(r.mem_total_peak_bytes).c_str(),
        mem(r.mem_process_rss_bytes).c_str(),
        i + 1 < records.size() ? "," : "");
  }
  out << "  ]\n}\n";
  std::ofstream file(path);
  file << out.str();
  std::cout << "wrote " << path << "\n";
}

int Main(int argc, char** argv) {
  std::vector<int> sizes = {1000, 2000};
  std::vector<int> thread_counts = {2, 8};
  int serial_cap = 2000;
  int engine_cap = 25000;
  int overlap_size = 600;
  int repeat = 1;
  std::string out_path = "BENCH_engine.json";
  std::string trace_path;
  std::string flight_record_path;
  std::string profile_path;
  double profile_hz = obs::ProfileOptions().hz;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--sizes") {
      sizes = ParseIntList(next());
    } else if (arg == "--threads") {
      thread_counts = ParseIntList(next());
    } else if (arg == "--serial-cap") {
      serial_cap = std::stoi(next());
    } else if (arg == "--engine-cap") {
      engine_cap = std::stoi(next());
    } else if (arg == "--overlap") {
      overlap_size = std::stoi(next());
    } else if (arg == "--repeat") {
      repeat = std::max(1, std::stoi(next()));
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--trace-out") {
      trace_path = next();
    } else if (arg == "--flight-record") {
      flight_record_path = next();
    } else if (arg == "--profile") {
      profile_path = next();
    } else if (arg == "--profile-hz") {
      profile_hz = std::stod(next());
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  std::vector<RunRecord> records;
  if (!flight_record_path.empty()) {
    obs::InstallCrashDump(flight_record_path.c_str());
    obs::CaptureLogTail();
  }
  if (!profile_path.empty()) {
    obs::ProfileOptions profile_options;
    profile_options.hz = profile_hz;
    const Status started = obs::StartProfiling(profile_options);
    if (!started.ok()) {
      std::cerr << "--profile: " << started << "\n";
      return 1;
    }
  }
  if (!trace_path.empty()) obs::StartTracing();

  auto run_workload = [&](const std::string& name,
                          const std::vector<Region>& regions) {
    const int n = static_cast<int>(regions.size());
    const size_t pairs = static_cast<size_t>(n) * (n - 1);
    const bool digest_mode = n > 5000;
    double serial_ms = 0;

    if (n <= serial_cap) {
      RunRecord serial;
      serial.workload = name;
      serial.regions = n;
      serial.mode = "serial_loop";
      serial.threads = 1;
      serial.pairs = pairs;
      const bench::ObsWindow window;
      serial.ms = TimeSerialLoop(regions);
      RecordCounters(&serial, window);
      // The serial loop's relation matrix is a plain std::vector outside
      // the instrumented arenas — its mem columns are not a measurement.
      serial.mem_valid = false;
      serial_ms = serial.ms;
      records.push_back(serial);
      PrintRecord(serial);
    }

    // Best-of-`repeat` engine timing. Counters are recorded over the last
    // repetition only (each repetition is deterministic, so the windows are
    // identical — summing them would break the accounting invariants).
    auto time_engine_best = [&](const EngineOptions& options,
                                RunRecord* r, EngineStats* stats) {
      double best = 0;
      for (int rep = 0; rep < repeat; ++rep) {
        const bench::ObsWindow window;
        const double ms = TimeEngine(regions, options, digest_mode, stats);
        if (rep == 0 || ms < best) best = ms;
        if (rep + 1 == repeat) {
          r->ms = best;
          RecordCounters(r, window);
        }
      }
    };

    // Engine, no prefilter, 1 thread: isolates the once-per-region
    // validation win over the serial loop.
    if (n <= serial_cap) {
      EngineOptions options;
      options.threads = 1;
      options.use_prefilter = false;
      RunRecord r;
      r.workload = name;
      r.regions = n;
      r.mode = "engine_nofilter";
      r.threads = 1;
      r.pairs = pairs;
      EngineStats stats;
      time_engine_best(options, &r, &stats);
      if (serial_ms > 0) r.speedup_vs_serial = serial_ms / r.ms;
      records.push_back(r);
      PrintRecord(r);
    }

    // Engine with prefilter: 1 thread, the requested parallel counts, and
    // one row at full hardware concurrency (threads = 0 lets the engine
    // resolve it) so the ledger records the host's best-case scaling even
    // when the fixed counts over- or under-subscribe the machine. Sizes
    // above --engine-cap skip these: even the digest mode still *examines*
    // every ordered pair, which at 50k regions is 2.5·10^9 Compute-CDR
    // prefilter probes.
    if (n <= engine_cap) {
      std::vector<int> engine_threads = {1};
      engine_threads.insert(engine_threads.end(), thread_counts.begin(),
                            thread_counts.end());
      engine_threads.push_back(0);
      for (int threads : engine_threads) {
        EngineOptions options;
        options.threads = threads;
        options.use_prefilter = true;
        RunRecord r;
        r.workload = name;
        r.regions = n;
        r.mode = threads == 1 ? "engine_prefilter"
                 : threads == 0 ? "engine_parallel_hw"
                                : "engine_parallel";
        r.threads = threads == 0 ? ThreadPool::ResolveThreadCount(0) : threads;
        r.prefilter = true;
        r.pairs = pairs;
        EngineStats stats;
        time_engine_best(options, &r, &stats);
        r.prefiltered_pairs = stats.prefiltered_pairs;
        r.crossing_pairs = stats.crossing_pairs;
        if (serial_ms > 0) r.speedup_vs_serial = serial_ms / r.ms;
        records.push_back(r);
        PrintRecord(r);
      }
    }

    // Sweep join: the only mode that never enumerates the quadratic pair
    // space, so it runs at every size. One serial row and one at full
    // hardware concurrency (strip-parallel).
    for (const int threads : {1, 0}) {
      EngineOptions options;
      options.threads = threads;
      RunRecord r;
      r.workload = name;
      r.regions = n;
      r.mode = threads == 1 ? "engine_sweep" : "engine_sweep_parallel";
      r.threads = threads == 0 ? ThreadPool::ResolveThreadCount(0) : threads;
      r.prefilter = true;  // Implicit class resolution is the prefilter.
      r.pairs = pairs;
      EngineStats stats;
      size_t overlay = 0;
      double best = 0;
      for (int rep = 0; rep < repeat; ++rep) {
        const bench::ObsWindow window;
        const double ms = TimeSweep(regions, options, &stats, &overlay);
        if (rep == 0 || ms < best) best = ms;
        if (rep + 1 == repeat) {
          r.ms = best;
          RecordCounters(&r, window);
        }
      }
      r.prefiltered_pairs = stats.prefiltered_pairs;
      r.crossing_pairs = stats.crossing_pairs;
      if (serial_ms > 0) r.speedup_vs_serial = serial_ms / r.ms;
      records.push_back(r);
      PrintRecord(r);
    }

    // Delta maintenance (engine/delta_engine.h): single-mutation latency
    // against a store adopted from one sweep build. Each row times
    // `kDeltaMutations` mutations of one kind and reports the median (ms)
    // and 99th percentile (p99_ms) of the distribution — best-of-N is the
    // wrong statistic for latency, so --repeat does not apply here. The
    // engine is built OUTSIDE the obs windows: each window then sees only
    // the mutations, engine.runs stays 0, and the counter invariants apply
    // to the delta path alone. The headline comparison is this row's
    // median vs the same (workload, n) engine_sweep row: the cost of one
    // move vs recomputing the configuration from scratch.
    {
      constexpr int kDeltaMutations = 200;
      auto built = DeltaEngine::Build(regions);
      if (!built.ok()) {
        std::cerr << "delta engine build failed: " << built.status() << "\n";
        std::exit(1);
      }
      DeltaEngine engine = std::move(built.value());
      Rng delta_rng(0xDE0000u + static_cast<uint64_t>(n));

      auto push_delta_row = [&](const std::string& mode,
                                std::vector<double> lat, double total_ms,
                                const bench::ObsWindow& window) {
        std::sort(lat.begin(), lat.end());
        RunRecord r;
        r.workload = name;
        r.regions = n;
        r.mode = mode;
        r.threads = 1;
        r.prefilter = true;  // The interval indexes bound the dirty set.
        r.pairs = pairs;
        r.ms = lat[lat.size() / 2];
        r.p99_ms = lat[(lat.size() * 99) / 100];
        RecordCounters(&r, window);
        // Throughput over the whole mutation script, in maintained pairs —
        // the generic pairs/ms formula would divide the quadratic pair
        // count by one median mutation.
        r.pairs_per_sec =
            total_ms > 0
                ? static_cast<double>(r.delta_pairs_reresolved +
                                      r.delta_pairs_implicit) /
                      (total_ms / 1000.0)
                : 0.0;
        records.push_back(r);
        PrintRecord(r);
      };

      {
        // Move: shift one region to a nearby spot, geometry built outside
        // the timed section.
        const bench::ObsWindow window;
        std::vector<double> lat;
        double total_ms = 0;
        for (int m = 0; m < kDeltaMutations; ++m) {
          const size_t id = delta_rng.NextBelow(engine.regions());
          Region moved = Translated(engine.region(id),
                                    delta_rng.NextDouble(-40.0, 40.0),
                                    delta_rng.NextDouble(-40.0, 40.0));
          const auto start = std::chrono::steady_clock::now();
          const auto applied = engine.Move(id, std::move(moved));
          const double ms = MsSince(start);
          if (!applied.ok()) {
            std::cerr << "delta move failed: " << applied.status() << "\n";
            std::exit(1);
          }
          lat.push_back(ms);
          total_ms += ms;
        }
        push_delta_row("engine_delta", std::move(lat), total_ms, window);
      }

      {
        // Insert: a fresh region cloned from a random existing one,
        // shifted — same shape statistics as the workload.
        const bench::ObsWindow window;
        std::vector<double> lat;
        double total_ms = 0;
        for (int m = 0; m < kDeltaMutations; ++m) {
          const size_t id = delta_rng.NextBelow(engine.regions());
          Region fresh = Translated(engine.region(id),
                                    delta_rng.NextDouble(-60.0, 60.0),
                                    delta_rng.NextDouble(-60.0, 60.0));
          const auto start = std::chrono::steady_clock::now();
          const auto applied = engine.Insert(std::move(fresh));
          const double ms = MsSince(start);
          if (!applied.ok()) {
            std::cerr << "delta insert failed: " << applied.status() << "\n";
            std::exit(1);
          }
          lat.push_back(ms);
          total_ms += ms;
        }
        push_delta_row("engine_delta_insert", std::move(lat), total_ms,
                       window);
      }

      {
        // Remove: drains what the insert pass added, so the engine ends
        // the bench at its original size.
        const bench::ObsWindow window;
        std::vector<double> lat;
        double total_ms = 0;
        for (int m = 0; m < kDeltaMutations; ++m) {
          const size_t id = delta_rng.NextBelow(engine.regions());
          const auto start = std::chrono::steady_clock::now();
          const auto applied = engine.Remove(id);
          const double ms = MsSince(start);
          if (!applied.ok()) {
            std::cerr << "delta remove failed: " << applied.status() << "\n";
            std::exit(1);
          }
          lat.push_back(ms);
          total_ms += ms;
        }
        push_delta_row("engine_delta_remove", std::move(lat), total_ms,
                       window);
      }
    }
  };

  // Each workload seeds its own generator from its (name, size) alone, so
  // a ledger row's inputs do not depend on which other sizes ran in the
  // same invocation — a CI run of a subset of the committed size list
  // reproduces the committed rows' inputs exactly.
  for (int n : sizes) {
    Rng rng(7u + static_cast<uint64_t>(n));
    run_workload("map", MapRegions(&rng, n));
  }
  if (overlap_size > 0) {
    Rng rng(0xB0E0u + static_cast<uint64_t>(overlap_size));
    run_workload("overlap", OverlapRegions(&rng, overlap_size));
  }

  if (!trace_path.empty()) {
    obs::StopTracing();
    std::ofstream trace_file(trace_path);
    if (!trace_file) {
      std::cerr << "cannot open " << trace_path << " for writing\n";
      return 1;
    }
    obs::WriteChromeTrace(trace_file);
    std::cout << "wrote " << trace_path << "\n";
  }
  if (!profile_path.empty()) {
    obs::StopProfiling();
    const Status written = obs::WriteCollapsedProfile(profile_path);
    if (!written.ok()) {
      std::cerr << "--profile: " << written << "\n";
      return 1;
    }
    const obs::ProfileStats pstats = obs::GetProfileStats();
    std::cout << "wrote " << profile_path << " (" << pstats.samples_taken
              << " samples, " << pstats.samples_with_work << " with work)\n";
  }
  if (!flight_record_path.empty()) {
    if (!obs::DumpFlightRecordToPath(flight_record_path.c_str())) {
      std::cerr << "cannot write flight record to " << flight_record_path
                << "\n";
      return 1;
    }
    std::cout << "wrote " << flight_record_path << "\n";
  }
  WriteJson(records, repeat, out_path);
  return 0;
}

}  // namespace
}  // namespace cardir

int main(int argc, char** argv) { return cardir::Main(argc, argv); }
