// E20: batch relation engine throughput — serial all-pairs loop vs MBB
// prefiltering vs the work-stealing thread pool, on 1k–10k-region
// configurations. Plain main (not google-benchmark) because each data point
// is one long wall-clock measurement and the binary also emits
// BENCH_engine.json for the perf-trajectory ledger.
//
//   bench_engine [--sizes 1000,2000] [--serial-cap 2000] [--overlap 600]
//                [--threads 2,8] [--out BENCH_engine.json]
//
// Sizes above --serial-cap skip the serial baseline (quadratic, validated
// per pair — minutes at 10k); sizes above 5000 use the engine's digest
// mode so that 10^8-pair matrices do not have to be materialised.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/compute_cdr.h"
#include "engine/batch_engine.h"
#include "geometry/region.h"
#include "util/random.h"
#include "util/string_util.h"
#include "workload/region_gen.h"

namespace cardir {
namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// The disjoint-cell "country map" layout of workload/scenario_gen: mostly
// tile-separated pairs, the engine's sweet spot.
std::vector<Region> MapRegions(Rng* rng, int count) {
  const int grid = static_cast<int>(std::ceil(std::sqrt(count)));
  const double cell = 1000.0 / grid;
  std::vector<Region> regions;
  regions.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int cx = i % grid;
    const int cy = i / grid;
    RegionGenOptions options;
    options.num_polygons = 1;
    options.vertices_per_polygon = 8;
    options.bounds = Box(cx * cell + 0.05 * cell, cy * cell + 0.05 * cell,
                         (cx + 1) * cell - 0.05 * cell,
                         (cy + 1) * cell - 0.05 * cell);
    regions.push_back(RandomRegion(rng, options));
  }
  return regions;
}

// Heavily overlapping regions: most pairs cross mbb lines, so the full
// Compute-CDR dominates and the pool, not the prefilter, carries the run.
std::vector<Region> OverlapRegions(Rng* rng, int count) {
  std::vector<Region> regions;
  regions.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const double size = rng->NextDouble(40.0, 160.0);
    const double x = rng->NextDouble(0.0, 400.0 - size);
    const double y = rng->NextDouble(0.0, 400.0 - size);
    RegionGenOptions options;
    options.num_polygons = 1;
    options.vertices_per_polygon = 10;
    options.bounds = Box(x, y, x + size, y + size);
    regions.push_back(RandomRegion(rng, options));
  }
  return regions;
}

struct RunRecord {
  std::string workload;
  int regions = 0;
  std::string mode;
  int threads = 1;
  bool prefilter = false;
  double ms = 0;
  size_t pairs = 0;
  size_t prefiltered_pairs = 0;
  size_t crossing_pairs = 0;
  double speedup_vs_serial = 0;
};

// The loop Configuration::ComputeAllRelations ran before the engine:
// validated Compute-CDR per ordered pair, results materialised in order.
double TimeSerialLoop(const std::vector<Region>& regions) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<CardinalRelation> matrix;
  matrix.reserve(regions.size() * (regions.size() - 1));
  for (size_t i = 0; i < regions.size(); ++i) {
    for (size_t j = 0; j < regions.size(); ++j) {
      if (i == j) continue;
      auto relation = ComputeCdr(regions[i], regions[j]);
      if (!relation.ok()) {
        std::cerr << "serial loop failed: " << relation.status() << "\n";
        std::exit(1);
      }
      matrix.push_back(*relation);
    }
  }
  return MsSince(start);
}

double TimeEngine(const std::vector<Region>& regions,
                  const EngineOptions& options, bool digest_mode,
                  EngineStats* stats) {
  const auto start = std::chrono::steady_clock::now();
  if (digest_mode) {
    auto digest = ComputeAllPairsDigest(regions, options, stats);
    if (!digest.ok()) {
      std::cerr << "engine failed: " << digest.status() << "\n";
      std::exit(1);
    }
  } else {
    auto pairs = ComputeAllPairs(regions, options, stats);
    if (!pairs.ok()) {
      std::cerr << "engine failed: " << pairs.status() << "\n";
      std::exit(1);
    }
  }
  return MsSince(start);
}

std::vector<int> ParseIntList(const std::string& text) {
  std::vector<int> values;
  for (const std::string& piece : StrSplit(text, ',')) {
    values.push_back(std::stoi(piece));
  }
  return values;
}

void PrintRecord(const RunRecord& r) {
  const double mpairs_s =
      r.ms > 0 ? static_cast<double>(r.pairs) / r.ms / 1000.0 : 0.0;
  std::printf(
      "%-8s n=%-6d %-18s threads=%-2d %10.1f ms  %8.2f Mpairs/s"
      "  prefiltered=%zu crossing=%zu%s\n",
      r.workload.c_str(), r.regions, r.mode.c_str(), r.threads, r.ms,
      mpairs_s, r.prefiltered_pairs, r.crossing_pairs,
      r.speedup_vs_serial > 0
          ? StrFormat("  speedup=%.1fx", r.speedup_vs_serial).c_str()
          : "");
}

void WriteJson(const std::vector<RunRecord>& records,
               const std::string& path) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"engine\",\n  \"unit\": \"ms\",\n  \"runs\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const RunRecord& r = records[i];
    out << StrFormat(
        "    {\"workload\": \"%s\", \"regions\": %d, \"mode\": \"%s\", "
        "\"threads\": %d, \"prefilter\": %s, \"ms\": %.2f, \"pairs\": %zu, "
        "\"prefiltered_pairs\": %zu, \"crossing_pairs\": %zu, "
        "\"speedup_vs_serial\": %.2f}%s\n",
        r.workload.c_str(), r.regions, r.mode.c_str(), r.threads,
        r.prefilter ? "true" : "false", r.ms, r.pairs, r.prefiltered_pairs,
        r.crossing_pairs, r.speedup_vs_serial,
        i + 1 < records.size() ? "," : "");
  }
  out << "  ]\n}\n";
  std::ofstream file(path);
  file << out.str();
  std::cout << "wrote " << path << "\n";
}

int Main(int argc, char** argv) {
  std::vector<int> sizes = {1000, 2000};
  std::vector<int> thread_counts = {2, 8};
  int serial_cap = 2000;
  int overlap_size = 600;
  std::string out_path = "BENCH_engine.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--sizes") {
      sizes = ParseIntList(next());
    } else if (arg == "--threads") {
      thread_counts = ParseIntList(next());
    } else if (arg == "--serial-cap") {
      serial_cap = std::stoi(next());
    } else if (arg == "--overlap") {
      overlap_size = std::stoi(next());
    } else if (arg == "--out") {
      out_path = next();
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  Rng rng(7);
  std::vector<RunRecord> records;

  auto run_workload = [&](const std::string& name,
                          const std::vector<Region>& regions) {
    const int n = static_cast<int>(regions.size());
    const size_t pairs = static_cast<size_t>(n) * (n - 1);
    const bool digest_mode = n > 5000;
    double serial_ms = 0;

    if (n <= serial_cap) {
      RunRecord serial;
      serial.workload = name;
      serial.regions = n;
      serial.mode = "serial_loop";
      serial.threads = 1;
      serial.pairs = pairs;
      serial.ms = TimeSerialLoop(regions);
      serial_ms = serial.ms;
      records.push_back(serial);
      PrintRecord(serial);
    }

    // Engine, no prefilter, 1 thread: isolates the once-per-region
    // validation win over the serial loop.
    if (n <= serial_cap) {
      EngineOptions options;
      options.threads = 1;
      options.use_prefilter = false;
      RunRecord r;
      r.workload = name;
      r.regions = n;
      r.mode = "engine_nofilter";
      r.threads = 1;
      r.pairs = pairs;
      EngineStats stats;
      r.ms = TimeEngine(regions, options, digest_mode, &stats);
      if (serial_ms > 0) r.speedup_vs_serial = serial_ms / r.ms;
      records.push_back(r);
      PrintRecord(r);
    }

    // Engine with prefilter, 1 thread and the parallel counts.
    std::vector<int> engine_threads = {1};
    engine_threads.insert(engine_threads.end(), thread_counts.begin(),
                          thread_counts.end());
    for (int threads : engine_threads) {
      EngineOptions options;
      options.threads = threads;
      options.use_prefilter = true;
      RunRecord r;
      r.workload = name;
      r.regions = n;
      r.mode = threads == 1 ? "engine_prefilter" : "engine_parallel";
      r.threads = threads;
      r.prefilter = true;
      r.pairs = pairs;
      EngineStats stats;
      r.ms = TimeEngine(regions, options, digest_mode, &stats);
      r.prefiltered_pairs = stats.prefiltered_pairs;
      r.crossing_pairs = stats.crossing_pairs;
      if (serial_ms > 0) r.speedup_vs_serial = serial_ms / r.ms;
      records.push_back(r);
      PrintRecord(r);
    }
  };

  for (int n : sizes) {
    run_workload("map", MapRegions(&rng, n));
  }
  if (overlap_size > 0) {
    run_workload("overlap", OverlapRegions(&rng, overlap_size));
  }

  WriteJson(records, out_path);
  return 0;
}

}  // namespace
}  // namespace cardir

int main(int argc, char** argv) { return cardir::Main(argc, argv); }
