// Experiment E10 (DESIGN.md): throughput of the DTD-shaped XML persistence
// layer (serialise and parse) as configurations grow.

#include <benchmark/benchmark.h>

#include "cardirect/xml.h"
#include "util/random.h"
#include "workload/scenario_gen.h"

namespace cardir {
namespace {

Configuration MakeConfig(int num_regions) {
  Rng rng(55);
  ScenarioOptions options;
  options.num_regions = num_regions;
  options.polygons_per_region = 2;
  options.vertices_per_polygon = 16;
  return *GenerateMapConfiguration(&rng, options);
}

void BM_SerializeConfiguration(benchmark::State& state) {
  const Configuration config = MakeConfig(static_cast<int>(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    const std::string xml = ConfigurationToXml(config);
    bytes = xml.size();
    benchmark::DoNotOptimize(xml);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(bytes));
  state.counters["regions"] = static_cast<double>(config.regions().size());
}
BENCHMARK(BM_SerializeConfiguration)->RangeMultiplier(4)->Range(4, 256);

void BM_ParseConfiguration(benchmark::State& state) {
  const std::string xml =
      ConfigurationToXml(MakeConfig(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    auto config = ConfigurationFromXml(xml);
    benchmark::DoNotOptimize(config);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(xml.size()));
}
BENCHMARK(BM_ParseConfiguration)->RangeMultiplier(4)->Range(4, 256);

void BM_ParseRawXml(benchmark::State& state) {
  const std::string xml =
      ConfigurationToXml(MakeConfig(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    auto node = ParseXml(xml);
    benchmark::DoNotOptimize(node);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(xml.size()));
}
BENCHMARK(BM_ParseRawXml)->RangeMultiplier(4)->Range(4, 256);

}  // namespace
}  // namespace cardir
