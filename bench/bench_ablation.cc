// Experiment E15 (DESIGN.md): ablations of the design choices called out in
// DESIGN.md §6 —
//   (1) the B tile via the |a_{B+N}| − |a_N| subtraction (paper §3.2)
//       versus clipping the primary against the bounded B rectangle and
//       measuring shoelace areas;
//   (2) validation overhead of the checked entry points versus the
//       *Unchecked fast paths;
//   (3) the cost split of Compute-CDR%: edge division alone versus division
//       plus trapezoid accumulation.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "clipping/sutherland_hodgman.h"
#include "core/compute_cdr.h"
#include "core/compute_cdr_percent.h"
#include "core/edge_splitter.h"
#include "geometry/robust.h"
#include "geometry/sweep.h"
#include "workload/polygon_gen.h"

namespace cardir {
namespace {

// (1a) B area through the paper's subtraction trick (inside Compute-CDR%).
void BM_BAreaViaSubtraction(benchmark::State& state) {
  const Region primary = bench::BenchPrimary(/*seed=*/31,
                                             static_cast<int>(state.range(0)));
  const Region reference = bench::BenchReference();
  for (auto _ : state) {
    const CdrPercentComputation result =
        ComputeCdrPercentUnchecked(primary, reference);
    benchmark::DoNotOptimize(result.tile_areas[static_cast<int>(Tile::kB)]);
  }
}
BENCHMARK(BM_BAreaViaSubtraction)->RangeMultiplier(4)->Range(64, 4096);

// (1b) B area by clipping every polygon against the bounded B rectangle.
void BM_BAreaViaClipping(benchmark::State& state) {
  const Region primary = bench::BenchPrimary(/*seed=*/31,
                                             static_cast<int>(state.range(0)));
  const Box mbb = bench::BenchReference().BoundingBox();
  for (auto _ : state) {
    double area = 0.0;
    for (const Polygon& polygon : primary.polygons()) {
      area += ClipPolygonToBox(polygon, mbb).Area();
    }
    benchmark::DoNotOptimize(area);
  }
}
BENCHMARK(BM_BAreaViaClipping)->RangeMultiplier(4)->Range(64, 4096);

// (2) Validation overhead: checked vs unchecked entry points.
void BM_ComputeCdrChecked(benchmark::State& state) {
  const Region primary = bench::BenchPrimary(/*seed=*/32, 1024);
  const Region reference = bench::BenchReference();
  for (auto _ : state) {
    auto result = ComputeCdrDetailed(primary, reference);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ComputeCdrChecked);

void BM_ComputeCdrUncheckedEntry(benchmark::State& state) {
  const Region primary = bench::BenchPrimary(/*seed=*/32, 1024);
  const Region reference = bench::BenchReference();
  for (auto _ : state) {
    CdrComputation result = ComputeCdrUnchecked(primary, reference);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ComputeCdrUncheckedEntry);

// (3) Edge division alone: the shared first phase of both algorithms.
void BM_EdgeDivisionOnly(benchmark::State& state) {
  const Region primary = bench::BenchPrimary(/*seed=*/33,
                                             static_cast<int>(state.range(0)));
  const Box mbb = bench::BenchReference().BoundingBox();
  std::vector<ClassifiedEdge> pieces;
  for (auto _ : state) {
    size_t total = 0;
    for (const Polygon& polygon : primary.polygons()) {
      for (size_t i = 0; i < polygon.size(); ++i) {
        pieces.clear();
        total += static_cast<size_t>(
            SplitAndClassifyEdge(polygon.edge(i), mbb, &pieces));
      }
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_EdgeDivisionOnly)->RangeMultiplier(4)->Range(64, 4096);

// (3b) Robust orientation: cost of the exact predicate vs the naive
// determinant, on generic inputs (filter almost always decides) and on
// adversarial near-collinear inputs (adaptive stages engage).
void BM_OrientNaive(benchmark::State& state) {
  Rng rng(36);
  std::vector<Point> points;
  for (int i = 0; i < 3072; ++i) {
    points.push_back(Point(rng.NextDouble(-100, 100),
                           rng.NextDouble(-100, 100)));
  }
  size_t i = 0;
  for (auto _ : state) {
    const double v = Orient2D(points[i % 3072], points[(i + 1) % 3072],
                              points[(i + 2) % 3072]);
    benchmark::DoNotOptimize(v);
    ++i;
  }
}
BENCHMARK(BM_OrientNaive);

void BM_OrientRobustGeneric(benchmark::State& state) {
  Rng rng(36);
  std::vector<Point> points;
  for (int i = 0; i < 3072; ++i) {
    points.push_back(Point(rng.NextDouble(-100, 100),
                           rng.NextDouble(-100, 100)));
  }
  size_t i = 0;
  for (auto _ : state) {
    const int v = RobustOrientSign(points[i % 3072], points[(i + 1) % 3072],
                                   points[(i + 2) % 3072]);
    benchmark::DoNotOptimize(v);
    ++i;
  }
}
BENCHMARK(BM_OrientRobustGeneric);

void BM_OrientRobustAdversarial(benchmark::State& state) {
  // Nearly collinear triples force the adaptive exact stages.
  Rng rng(37);
  std::vector<Point> points;
  for (int i = 0; i < 3072; ++i) {
    const double x = rng.NextDouble(0, 10);
    points.push_back(Point(x, 3.0 * x + 1.0));
  }
  size_t i = 0;
  for (auto _ : state) {
    const int v = RobustOrientSign(points[i % 3072], points[(i + 1) % 3072],
                                   points[(i + 2) % 3072]);
    benchmark::DoNotOptimize(v);
    ++i;
  }
}
BENCHMARK(BM_OrientRobustAdversarial);

// (4) Simplicity checking: the quadratic reference vs the Shamos–Hoey
// sweep (geometry/sweep.h) as the ring grows.
void BM_ValidateSimpleQuadratic(benchmark::State& state) {
  Rng rng(34);
  const Polygon polygon = RandomStarPolygon(
      &rng, static_cast<int>(state.range(0)), Box(0, 0, 1000, 1000));
  for (auto _ : state) {
    benchmark::DoNotOptimize(polygon.ValidateSimple());
  }
}
BENCHMARK(BM_ValidateSimpleQuadratic)->RangeMultiplier(4)->Range(64, 4096);

void BM_ValidateSimpleSweep(benchmark::State& state) {
  Rng rng(34);
  const Polygon polygon = RandomStarPolygon(
      &rng, static_cast<int>(state.range(0)), Box(0, 0, 1000, 1000));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ValidatePolygonSimpleSweep(polygon));
  }
}
BENCHMARK(BM_ValidateSimpleSweep)->RangeMultiplier(4)->Range(64, 4096);

void BM_DivisionPlusAccumulation(benchmark::State& state) {
  const Region primary = bench::BenchPrimary(/*seed=*/33,
                                             static_cast<int>(state.range(0)));
  const Region reference = bench::BenchReference();
  for (auto _ : state) {
    CdrPercentComputation result =
        ComputeCdrPercentUnchecked(primary, reference);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_DivisionPlusAccumulation)->RangeMultiplier(4)->Range(64, 4096);

}  // namespace
}  // namespace cardir
