// Experiment E4/E5 (DESIGN.md): the introduced-edge comparison of §3.1 and
// Fig. 3. For each scenario we report the number of edges after
// segmentation for (a) the paper's Compute-CDR edge division and (b) the
// polygon-clipping baseline. Paper datapoints: Fig. 3b quadrangle 4 → 16
// (clipping) vs 4 → 8 (Compute-CDR); Fig. 3c triangle 3 → 34/35 vs 3 → 11;
// Example 3 quadrangle 4 → 19 (clipping) vs 4 → 9.
//
// Counts are a pure function of geometry — no timing — so this binary
// prints a table instead of using google-benchmark.

#include <cstdio>

#include "clipping/baseline_cdr.h"
#include "core/compute_cdr.h"
#include "util/random.h"
#include "workload/polygon_gen.h"

namespace cardir {
namespace {

void Report(const char* name, const Region& primary, const Region& reference) {
  const CdrComputation ours = ComputeCdrUnchecked(primary, reference);
  const CdrComputation clipping = BaselineCdrUnchecked(primary, reference);
  std::printf("%-34s %8zu %14zu %14zu   %-24s\n", name, ours.input_edges,
              ours.output_edges, clipping.output_edges,
              ours.relation.ToString().c_str());
}

void RandomSweep(uint64_t seed, int vertices) {
  Rng rng(seed);
  const Region reference(MakeRectangle(40, 40, 60, 60));
  size_t input = 0, ours_total = 0, clip_total = 0;
  constexpr int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    const Region primary(
        RandomStarPolygon(&rng, vertices, Box(0, 0, 100, 100)));
    const CdrComputation ours = ComputeCdrUnchecked(primary, reference);
    const CdrComputation clipping = BaselineCdrUnchecked(primary, reference);
    input += ours.input_edges;
    ours_total += ours.output_edges;
    clip_total += clipping.output_edges;
  }
  std::printf("random star n=%-6d (avg of %d)   %8.1f %14.1f %14.1f\n",
              vertices, kTrials, static_cast<double>(input) / kTrials,
              static_cast<double>(ours_total) / kTrials,
              static_cast<double>(clip_total) / kTrials);
}

int Run() {
  std::printf("Introduced-edge comparison (paper §3.1 / Fig. 3)\n");
  std::printf("%-34s %8s %14s %14s   %s\n", "scenario", "input",
              "Compute-CDR", "clipping", "relation");
  std::printf("%s\n", std::string(100, '-').c_str());

  const Region reference(MakeRectangle(0, 0, 10, 10));

  // Fig. 3a/3b: a quadrangle overlapping the B, S, SW, W tiles.
  Report("Fig. 3b quadrangle (4 tiles)",
         Region(MakeRectangle(-5, -5, 5, 5)), reference);

  // Fig. 3c: a triangle overlapping all nine tiles (the worst case the
  // paper describes: clipping yields 2 triangles, 6 quadrangles and 1
  // pentagon).
  {
    Polygon triangle({Point(-14, -10), Point(4, 24), Point(26, -9)});
    triangle.EnsureClockwise();
    Report("Fig. 3c triangle (9 tiles)", Region(std::move(triangle)),
           reference);
  }

  // Example 3: the quadrangle of Fig. 4.
  Report("Example 3 quadrangle",
         Region(Polygon({Point(-4, 8), Point(-2, 14), Point(-1, 18),
                         Point(20, 11)})),
         reference);

  // A region with a hole around the reference (Fig. 2-style composite).
  {
    Region frame;
    frame.AddPolygon(MakeRectangle(-10, -10, 20, -5));
    frame.AddPolygon(MakeRectangle(-10, 15, 20, 20));
    frame.AddPolygon(MakeRectangle(-10, -5, -5, 15));
    frame.AddPolygon(MakeRectangle(15, -5, 20, 15));
    Report("frame around reference", frame, reference);
  }

  std::printf("\nRandom star polygons straddling the reference mbb\n");
  std::printf("%-34s %8s %14s %14s\n", "scenario", "input", "Compute-CDR",
              "clipping");
  std::printf("%s\n", std::string(76, '-').c_str());
  for (int vertices : {16, 64, 256, 1024, 4096}) {
    RandomSweep(/*seed=*/99, vertices);
  }
  return 0;
}

}  // namespace
}  // namespace cardir

int main() { return cardir::Run(); }
