// Experiment E6/E13 (DESIGN.md): runtime of the paper's Compute-CDR
// (Theorem 1: O(k_a + k_b), single pass) against the polygon-clipping
// baseline (9 passes + segmentation) as the primary region's edge count
// grows. Expected shape: both linear, Compute-CDR with the smaller
// constant. Run in Release mode.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "clipping/baseline_cdr.h"
#include "core/compute_cdr.h"

namespace cardir {
namespace {

void BM_ComputeCdr(benchmark::State& state) {
  const int edges = static_cast<int>(state.range(0));
  const Region primary = bench::BenchPrimary(/*seed=*/1, edges);
  const Region reference = bench::BenchReference();
  for (auto _ : state) {
    CdrComputation result = ComputeCdrUnchecked(primary, reference);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(primary.TotalEdges()));
  state.counters["edges"] = static_cast<double>(primary.TotalEdges());
}
BENCHMARK(BM_ComputeCdr)->RangeMultiplier(4)->Range(16, 1 << 14);

void BM_BaselineClippingCdr(benchmark::State& state) {
  const int edges = static_cast<int>(state.range(0));
  const Region primary = bench::BenchPrimary(/*seed=*/1, edges);
  const Region reference = bench::BenchReference();
  for (auto _ : state) {
    CdrComputation result = BaselineCdrUnchecked(primary, reference);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(primary.TotalEdges()));
  state.counters["edges"] = static_cast<double>(primary.TotalEdges());
}
BENCHMARK(BM_BaselineClippingCdr)->RangeMultiplier(4)->Range(16, 1 << 14);

// Composite primaries: many polygons, fixed total edge budget — verifies
// the "linear in total edges regardless of polygon count" claim.
void BM_ComputeCdrComposite(benchmark::State& state) {
  const int polygons = static_cast<int>(state.range(0));
  const Region primary = bench::BenchPrimary(/*seed=*/2, 4096, polygons);
  const Region reference = bench::BenchReference();
  for (auto _ : state) {
    CdrComputation result = ComputeCdrUnchecked(primary, reference);
    benchmark::DoNotOptimize(result);
  }
  state.counters["edges"] = static_cast<double>(primary.TotalEdges());
  state.counters["polygons"] = polygons;
}
BENCHMARK(BM_ComputeCdrComposite)->RangeMultiplier(4)->Range(1, 64);

void BM_BaselineClippingCdrComposite(benchmark::State& state) {
  const int polygons = static_cast<int>(state.range(0));
  const Region primary = bench::BenchPrimary(/*seed=*/2, 4096, polygons);
  const Region reference = bench::BenchReference();
  for (auto _ : state) {
    CdrComputation result = BaselineCdrUnchecked(primary, reference);
    benchmark::DoNotOptimize(result);
  }
  state.counters["edges"] = static_cast<double>(primary.TotalEdges());
  state.counters["polygons"] = polygons;
}
BENCHMARK(BM_BaselineClippingCdrComposite)->RangeMultiplier(4)->Range(1, 64);

}  // namespace
}  // namespace cardir
