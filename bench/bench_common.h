// Shared workload construction for the benchmark binaries (experiments
// E6/E7/E13 in DESIGN.md): primary regions of controlled edge count whose
// bounding box straddles the reference mbb, so every benchmark exercises
// the edge-splitting / clipping paths rather than the trivial single-tile
// case.

#ifndef CARDIR_BENCH_BENCH_COMMON_H_
#define CARDIR_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>

#include "geometry/region.h"
#include "obs/memstats.h"
#include "obs/metrics.h"
#include "util/random.h"
#include "workload/region_gen.h"

namespace cardir {
namespace bench {

// BENCH_*.json ledger schema note: numeric ratio fields that depend on an
// optional baseline (bench_engine's "speedup_vs_serial": the serial loop
// only runs for sizes within --serial-cap) are emitted as JSON null when
// the baseline did not run. The same rule covers the mem_* columns: rows
// whose measured code path runs outside the instrumented arenas (the
// serial_loop mode allocates its relation matrix as a plain std::vector)
// emit every mem_* column as null. Consumers must treat null as "not
// measured"; a 0.00 (or 0) in such a field is a writer bug, not a
// measurement.

/// Counter deltas of one measured run: snapshot before, run, then
/// `ObsWindow::Delta()`. Counters are process-cumulative, so every record
/// written into a BENCH_*.json ledger must be windowed this way.
class ObsWindow {
 public:
  // Resetting the mem.*.peak_bytes gauges at window start makes each
  // record's peaks high-waters *within that run*, not since process start
  // (Diff keeps the later snapshot's gauge values, so peaks pass through).
  ObsWindow() {
    obs::ResetMemPeaks();
    before_ = obs::CaptureMetrics();
  }

  /// Counter increments since construction (by full metric name; 0 when the
  /// counter does not exist, e.g. in a -DCARDIR_OBS=OFF build). Also
  /// samples process RSS so mem.process.* gauges are fresh in the result.
  obs::MetricsSnapshot Delta() const {
    obs::SampleProcessMemory();
    return obs::CaptureMetrics().Diff(before_);
  }

 private:
  obs::MetricsSnapshot before_;
};

/// The fixed reference region: a square centred on the canvas.
inline Region BenchReference() {
  return Region(MakeRectangle(40.0, 40.0, 60.0, 60.0));
}

/// A primary region with `polygons` star polygons and ~`total_edges` edges
/// in total, spread over a canvas that surrounds the reference mbb, so its
/// edges cross the reference lines extensively.
inline Region BenchPrimary(uint64_t seed, int total_edges, int polygons = 1) {
  Rng rng(seed);
  RegionGenOptions options;
  options.num_polygons = polygons;
  options.vertices_per_polygon = total_edges / polygons;
  options.kind = PolygonKind::kStar;
  options.bounds = Box(0.0, 0.0, 100.0, 100.0);
  return RandomRegion(&rng, options);
}

}  // namespace bench
}  // namespace cardir

#endif  // CARDIR_BENCH_BENCH_COMMON_H_
