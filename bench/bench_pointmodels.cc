// Experiment E19 (DESIGN.md): the point/MBB approximation baselines of refs
// [4,8,13,15] versus the paper's tile model — runtime (the approximations
// are cheaper) and expressiveness (counters report how often each coarse
// model can even represent the tile relation on random inputs).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/compute_cdr.h"
#include "pointmodels/cone_direction.h"
#include "pointmodels/mbb_direction.h"

namespace cardir {
namespace {

void BM_ConeDirection(benchmark::State& state) {
  const Region a = bench::BenchPrimary(/*seed=*/41,
                                       static_cast<int>(state.range(0)));
  const Region b = bench::BenchReference();
  for (auto _ : state) {
    auto result = ConeBetweenRegions(a, b);
    benchmark::DoNotOptimize(result);
  }
  state.counters["edges"] = static_cast<double>(a.TotalEdges());
}
BENCHMARK(BM_ConeDirection)->RangeMultiplier(4)->Range(16, 4096);

void BM_MbbDirection(benchmark::State& state) {
  const Region a = bench::BenchPrimary(/*seed=*/41,
                                       static_cast<int>(state.range(0)));
  const Region b = bench::BenchReference();
  for (auto _ : state) {
    auto result = MbbBetweenRegions(a, b);
    benchmark::DoNotOptimize(result);
  }
  state.counters["edges"] = static_cast<double>(a.TotalEdges());
}
BENCHMARK(BM_MbbDirection)->RangeMultiplier(4)->Range(16, 4096);

void BM_TileModelForComparison(benchmark::State& state) {
  const Region a = bench::BenchPrimary(/*seed=*/41,
                                       static_cast<int>(state.range(0)));
  const Region b = bench::BenchReference();
  for (auto _ : state) {
    CdrComputation result = ComputeCdrUnchecked(a, b);
    benchmark::DoNotOptimize(result);
  }
  state.counters["edges"] = static_cast<double>(a.TotalEdges());
}
BENCHMARK(BM_TileModelForComparison)->RangeMultiplier(4)->Range(16, 4096);

// Expressiveness sweep (reported through counters, not time): on random
// straddling regions, how often is the tile relation single-tile (the only
// case the cone model can express), and how often does the MBB model give a
// non-mixed verdict?
void BM_ExpressivenessCounters(benchmark::State& state) {
  Rng rng(42);
  int64_t trials = 0, cone_expressible = 0, mbb_informative = 0;
  const Region b = bench::BenchReference();
  for (auto _ : state) {
    // Vary the primary's placement so single-tile and straddling relations
    // both occur (a fixed straddling workload would trivially report 0%).
    RegionGenOptions options;
    options.vertices_per_polygon = 12;
    options.kind = PolygonKind::kStar;
    const double size = rng.NextDouble(10.0, 60.0);
    const double x = rng.NextDouble(0.0, 140.0 - size);
    const double y = rng.NextDouble(0.0, 140.0 - size);
    options.bounds = Box(x - 20.0, y - 20.0, x + size - 20.0, y + size - 20.0);
    const Region a = RandomRegion(&rng, options);
    const CardinalRelation fine = ComputeCdrUnchecked(a, b).relation;
    const ConeDirection cone = *ConeBetweenRegions(a, b);
    const MbbDirection coarse = *MbbBetweenRegions(a, b);
    ++trials;
    cone_expressible += ConeAgreesWithRelation(cone, fine);
    mbb_informative += (coarse != MbbDirection::kMixed);
    benchmark::DoNotOptimize(fine);
  }
  state.counters["cone_expressible_pct"] =
      100.0 * static_cast<double>(cone_expressible) /
      static_cast<double>(trials);
  state.counters["mbb_informative_pct"] =
      100.0 * static_cast<double>(mbb_informative) /
      static_cast<double>(trials);
}
BENCHMARK(BM_ExpressivenessCounters);

}  // namespace
}  // namespace cardir
