// Experiment E18 (DESIGN.md): the R-tree substrate and filter-and-refine
// directional queries (ref [13]) versus the nested-loop plan, as the number
// of indexed regions grows. Expected shape: index build is n·log n-ish,
// point/window searches are logarithmic, and directional queries beat the
// nested loop by the filter's selectivity.

#include <benchmark/benchmark.h>

#include "core/compute_cdr.h"
#include "index/directional_query.h"
#include "index/rtree.h"
#include "util/random.h"
#include "workload/scenario_gen.h"

namespace cardir {
namespace {

Box RandomBox(Rng* rng, double canvas) {
  const double w = rng->NextDouble(1.0, 40.0);
  const double h = rng->NextDouble(1.0, 40.0);
  const double x = rng->NextDouble(0.0, canvas - w);
  const double y = rng->NextDouble(0.0, canvas - h);
  return Box(x, y, x + w, y + h);
}

void BM_RTreeBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<Box> boxes;
  boxes.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) boxes.push_back(RandomBox(&rng, 10000.0));
  for (auto _ : state) {
    RTree tree;
    for (int i = 0; i < n; ++i) {
      (void)tree.Insert(boxes[static_cast<size_t>(i)], i);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RTreeBuild)->RangeMultiplier(8)->Range(1 << 8, 1 << 17);

void BM_RTreeBulkLoad(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<std::pair<Box, int64_t>> entries;
  entries.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    entries.emplace_back(RandomBox(&rng, 10000.0), i);
  }
  for (auto _ : state) {
    RTree tree;
    auto copy = entries;
    (void)tree.BulkLoad(std::move(copy));
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RTreeBulkLoad)->RangeMultiplier(8)->Range(1 << 8, 1 << 17);

void BM_RTreeSearch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  RTree tree;
  for (int i = 0; i < n; ++i) {
    (void)tree.Insert(RandomBox(&rng, 10000.0), i);
  }
  for (auto _ : state) {
    const Box query = RandomBox(&rng, 10000.0);
    benchmark::DoNotOptimize(tree.SearchIds(query));
  }
  state.counters["entries"] = n;
}
BENCHMARK(BM_RTreeSearch)->RangeMultiplier(8)->Range(1 << 8, 1 << 17);

Configuration MakeConfig(int num_regions) {
  Rng rng(33);
  ScenarioOptions options;
  options.num_regions = num_regions;
  options.compute_relations = false;
  return *GenerateMapConfiguration(&rng, options);
}

void BM_DirectionalQueryIndexed(benchmark::State& state) {
  const Configuration config = MakeConfig(static_cast<int>(state.range(0)));
  const DirectionalIndex index = std::move(DirectionalIndex::Build(config)).value();
  const std::string reference = config.regions()[config.regions().size() / 2].id;
  const CardinalRelation relation = *CardinalRelation::Parse("NE");
  DirectionalQueryStats stats;
  for (auto _ : state) {
    auto result = index.FindExact(reference, relation, &stats);
    benchmark::DoNotOptimize(result);
  }
  state.counters["regions"] = static_cast<double>(config.regions().size());
  state.counters["refined"] = static_cast<double>(stats.refined);
}
BENCHMARK(BM_DirectionalQueryIndexed)->RangeMultiplier(4)->Range(16, 1024);

void BM_DirectionalQueryBruteForce(benchmark::State& state) {
  const Configuration config = MakeConfig(static_cast<int>(state.range(0)));
  const std::string reference_id = config.regions()[config.regions().size() / 2].id;
  const Region& reference = config.regions()[config.regions().size() / 2].geometry;
  const CardinalRelation relation = *CardinalRelation::Parse("NE");
  for (auto _ : state) {
    std::vector<std::string> results;
    for (const AnnotatedRegion& region : config.regions()) {
      if (region.id == reference_id) continue;
      if (*ComputeCdr(region.geometry, reference) == relation) {
        results.push_back(region.id);
      }
    }
    benchmark::DoNotOptimize(results);
  }
  state.counters["regions"] = static_cast<double>(config.regions().size());
}
BENCHMARK(BM_DirectionalQueryBruteForce)->RangeMultiplier(4)->Range(16, 1024);

}  // namespace
}  // namespace cardir
