// Experiment E12 (DESIGN.md): CARDIRECT query throughput over generated map
// configurations with precomputed relation stores (the §4 usage scenario at
// scale). Queries mix thematic filters with direction atoms.

#include <benchmark/benchmark.h>

#include "cardirect/query.h"
#include "util/random.h"
#include "workload/scenario_gen.h"

namespace cardir {
namespace {

Configuration MakeConfig(int num_regions) {
  Rng rng(77);
  ScenarioOptions options;
  options.num_regions = num_regions;
  options.vertices_per_polygon = 8;
  options.colors = {"red", "blue", "green", "black"};
  return *GenerateMapConfiguration(&rng, options);
}

void BM_QueryThematicOnly(benchmark::State& state) {
  const Configuration config = MakeConfig(static_cast<int>(state.range(0)));
  const Query query = *Query::Parse("(x) | color(x) = red");
  for (auto _ : state) {
    auto result = EvaluateQuery(config, query);
    benchmark::DoNotOptimize(result);
  }
  state.counters["regions"] = static_cast<double>(config.regions().size());
}
BENCHMARK(BM_QueryThematicOnly)->RangeMultiplier(2)->Range(16, 128);

void BM_QueryDirectionPair(benchmark::State& state) {
  const Configuration config = MakeConfig(static_cast<int>(state.range(0)));
  const Query query = *Query::Parse(
      "(x, y) | color(x) = red, color(y) = blue, x {SW, S:SW, SW:W} y");
  for (auto _ : state) {
    auto result = EvaluateQuery(config, query);
    benchmark::DoNotOptimize(result);
  }
  state.counters["regions"] = static_cast<double>(config.regions().size());
}
BENCHMARK(BM_QueryDirectionPair)->RangeMultiplier(2)->Range(16, 128);

void BM_QueryThreeVariables(benchmark::State& state) {
  const Configuration config = MakeConfig(static_cast<int>(state.range(0)));
  const Query query = *Query::Parse(
      "(x, y, z) | color(x) = red, x {SW, S:SW, SW:W, S} y, "
      "y {SW, S:SW, SW:W, S} z");
  for (auto _ : state) {
    auto result = EvaluateQuery(config, query);
    benchmark::DoNotOptimize(result);
  }
  state.counters["regions"] = static_cast<double>(config.regions().size());
}
BENCHMARK(BM_QueryThreeVariables)->RangeMultiplier(2)->Range(16, 64);

void BM_QueryParse(benchmark::State& state) {
  for (auto _ : state) {
    auto query = Query::Parse(
        "(a, b) | color(a) = red, color(b) = blue, a S:SW:W:NW:N:NE:E:SE b");
    benchmark::DoNotOptimize(query);
  }
}
BENCHMARK(BM_QueryParse);

// The relation-store build itself: n*(n-1) Compute-CDR runs.
void BM_ComputeAllRelations(benchmark::State& state) {
  Rng rng(78);
  ScenarioOptions options;
  options.num_regions = static_cast<int>(state.range(0));
  options.compute_relations = false;
  Configuration config = *GenerateMapConfiguration(&rng, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(config.ComputeAllRelations());
  }
  state.counters["pairs"] = static_cast<double>(state.range(0)) *
                            (static_cast<double>(state.range(0)) - 1);
}
BENCHMARK(BM_ComputeAllRelations)->RangeMultiplier(2)->Range(8, 64);

}  // namespace
}  // namespace cardir
