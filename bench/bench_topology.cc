// Experiment E14 (DESIGN.md): cost of the §5 extension relations —
// topological classification and exact minimum distance — as region
// complexity grows. Both are O(E_a · E_b) pairwise-edge scans.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "extensions/distance.h"
#include "extensions/topology.h"

namespace cardir {
namespace {

void BM_ComputeTopology(benchmark::State& state) {
  const int edges = static_cast<int>(state.range(0));
  const Region a = bench::BenchPrimary(/*seed=*/21, edges);
  const Region b = bench::BenchPrimary(/*seed=*/22, edges);
  for (auto _ : state) {
    auto result = ComputeTopology(a, b);
    benchmark::DoNotOptimize(result);
  }
  state.counters["edges"] = static_cast<double>(a.TotalEdges());
}
BENCHMARK(BM_ComputeTopology)->RangeMultiplier(4)->Range(8, 512);

void BM_MinimumDistanceIntersecting(benchmark::State& state) {
  // Overlapping regions exit early through the containment / intersection
  // shortcut.
  const int edges = static_cast<int>(state.range(0));
  const Region a = bench::BenchPrimary(/*seed=*/23, edges);
  const Region b = bench::BenchPrimary(/*seed=*/24, edges);
  for (auto _ : state) {
    auto result = MinimumDistance(a, b);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_MinimumDistanceIntersecting)->RangeMultiplier(4)->Range(8, 512);

void BM_MinimumDistanceSeparated(benchmark::State& state) {
  // Separated regions pay the full pairwise-edge scan.
  const int edges = static_cast<int>(state.range(0));
  Rng rng(25);
  RegionGenOptions options;
  options.vertices_per_polygon = edges;
  options.kind = PolygonKind::kStar;
  options.bounds = Box(0, 0, 100, 100);
  const Region a = RandomRegion(&rng, options);
  options.bounds = Box(300, 300, 400, 400);
  const Region b = RandomRegion(&rng, options);
  for (auto _ : state) {
    auto result = MinimumDistance(a, b);
    benchmark::DoNotOptimize(result);
  }
  state.counters["edges"] = static_cast<double>(a.TotalEdges());
}
BENCHMARK(BM_MinimumDistanceSeparated)->RangeMultiplier(4)->Range(8, 512);

void BM_DistanceRelationBucketing(benchmark::State& state) {
  Rng rng(26);
  RegionGenOptions options;
  options.vertices_per_polygon = 32;
  options.bounds = Box(0, 0, 100, 100);
  const Region a = RandomRegion(&rng, options);
  options.bounds = Box(500, 0, 600, 100);
  const Region b = RandomRegion(&rng, options);
  for (auto _ : state) {
    auto result = ComputeDistanceRelation(a, b);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_DistanceRelationBucketing);

}  // namespace
}  // namespace cardir
