// Experiment E16 (DESIGN.md): throughput of the §5 segmentation pipeline —
// painting synthetic rasters and vectorising labels into REG* regions.

#include <benchmark/benchmark.h>

#include "segmentation/extract.h"
#include "util/random.h"
#include "util/string_util.h"

namespace cardir {
namespace {

Raster MakeBlobRaster(int size, int blobs, uint64_t seed) {
  Raster raster(size, size);
  Rng rng(seed);
  for (int b = 1; b <= blobs; ++b) {
    const double cx = rng.NextDouble(0.1, 0.9) * size;
    const double cy = rng.NextDouble(0.1, 0.9) * size;
    const double radius = rng.NextDouble(0.05, 0.15) * size;
    raster.FillDisk(cx, cy, radius, b);
  }
  return raster;
}

void BM_FillDisk(benchmark::State& state) {
  const int size = static_cast<int>(state.range(0));
  Raster raster(size, size);
  for (auto _ : state) {
    raster.FillDisk(size / 2.0, size / 2.0, size / 3.0, 1);
    benchmark::DoNotOptimize(raster);
  }
  state.SetItemsProcessed(state.iterations() * size * size);
}
BENCHMARK(BM_FillDisk)->RangeMultiplier(4)->Range(64, 1024);

void BM_ExtractRegion(benchmark::State& state) {
  const int size = static_cast<int>(state.range(0));
  Raster raster(size, size);
  raster.FillDisk(size / 2.0, size / 2.0, size / 3.0, 1);
  for (auto _ : state) {
    auto region = ExtractRegion(raster, 1);
    benchmark::DoNotOptimize(region);
  }
  state.SetItemsProcessed(state.iterations() * size * size);
}
BENCHMARK(BM_ExtractRegion)->RangeMultiplier(4)->Range(64, 1024);

void BM_ExtractConfiguration(benchmark::State& state) {
  const int blobs = static_cast<int>(state.range(0));
  const Raster raster = MakeBlobRaster(256, blobs, /*seed=*/5);
  std::vector<LabelSpec> specs;
  for (int b : raster.Labels()) {
    specs.push_back({b, StrFormat("blob%d", b), StrFormat("Blob %d", b),
                     b % 2 == 0 ? "red" : "blue"});
  }
  for (auto _ : state) {
    auto config = ExtractConfiguration(raster, specs);
    benchmark::DoNotOptimize(config);
  }
  state.counters["labels"] = static_cast<double>(specs.size());
}
BENCHMARK(BM_ExtractConfiguration)->DenseRange(2, 10, 4);

}  // namespace
}  // namespace cardir
