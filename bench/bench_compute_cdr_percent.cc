// Experiment E7/E13 (DESIGN.md): runtime of Compute-CDR% (Theorem 2:
// O(k_a + k_b) via the trapezoid expressions of Def. 4, no clipping)
// against the clipping-based area computation.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "clipping/baseline_cdr.h"
#include "core/compute_cdr_percent.h"

namespace cardir {
namespace {

void BM_ComputeCdrPercent(benchmark::State& state) {
  const int edges = static_cast<int>(state.range(0));
  const Region primary = bench::BenchPrimary(/*seed=*/1, edges);
  const Region reference = bench::BenchReference();
  for (auto _ : state) {
    CdrPercentComputation result =
        ComputeCdrPercentUnchecked(primary, reference);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(primary.TotalEdges()));
  state.counters["edges"] = static_cast<double>(primary.TotalEdges());
}
BENCHMARK(BM_ComputeCdrPercent)->RangeMultiplier(4)->Range(16, 1 << 14);

void BM_BaselineClippingPercent(benchmark::State& state) {
  const int edges = static_cast<int>(state.range(0));
  const Region primary = bench::BenchPrimary(/*seed=*/1, edges);
  const Region reference = bench::BenchReference();
  for (auto _ : state) {
    CdrPercentComputation result =
        BaselineCdrPercentUnchecked(primary, reference);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(primary.TotalEdges()));
  state.counters["edges"] = static_cast<double>(primary.TotalEdges());
}
BENCHMARK(BM_BaselineClippingPercent)->RangeMultiplier(4)->Range(16, 1 << 14);

// Both sub-steps of the quantitative pipeline in isolation: how much of
// Compute-CDR%'s cost is the shared edge division vs the area accumulation.
void BM_QualitativeVsQuantitativeGap(benchmark::State& state) {
  const Region primary = bench::BenchPrimary(/*seed=*/3, 4096);
  const Region reference = bench::BenchReference();
  for (auto _ : state) {
    CdrPercentComputation quantitative =
        ComputeCdrPercentUnchecked(primary, reference);
    benchmark::DoNotOptimize(quantitative);
  }
}
BENCHMARK(BM_QualitativeVsQuantitativeGap);

}  // namespace
}  // namespace cardir
