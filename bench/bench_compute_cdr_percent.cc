// Experiment E7/E13/E22 (DESIGN.md): runtime of Compute-CDR% (Theorem 2:
// O(k_a + k_b) via the trapezoid expressions of Def. 4, no clipping)
// against the clipping-based area computation, plus the E22 ablation of
// the SoA/SIMD accumulation path against the scalar per-piece reference.
//
// Two entry modes:
//  * default           — google-benchmark suite (BM_* below);
//  * --ledger out.json — plain wall-clock sampler that times the SoA and
//    scalar paths over fixed edge counts and writes the BENCH_percent.json
//    ledger (same row schema as BENCH_engine.json, so tools/perf_smoke.py
//    gates it unchanged: workload "percent", regions = edge count, mode
//    soa|scalar). Iteration counts are a pure function of the edge count,
//    so fresh and committed ledgers always time identical work.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "clipping/baseline_cdr.h"
#include "core/compute_cdr_percent.h"

namespace cardir {
namespace {

// Times the batch-caller pattern (the engine's WorkerScratch): the SoA
// lane buffers are reused across calls, so their capacity is paid once,
// not per pair.
void BM_ComputeCdrPercent(benchmark::State& state) {
  const int edges = static_cast<int>(state.range(0));
  const Region primary = bench::BenchPrimary(/*seed=*/1, edges);
  const Region reference = bench::BenchReference();
  const Box mbb = reference.BoundingBox();
  CdrScratch scratch;
  for (auto _ : state) {
    CdrPercentComputation result =
        ComputeCdrPercentUnchecked(primary, mbb, &scratch);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(primary.TotalEdges()));
  state.counters["edges"] = static_cast<double>(primary.TotalEdges());
}
BENCHMARK(BM_ComputeCdrPercent)->RangeMultiplier(4)->Range(16, 1 << 14);

// E22 ablation row: the pre-SoA per-piece loop (AoS split buffer, scalar
// classification cascade, one strictly sequential running sum per tile).
void BM_ComputeCdrPercentScalar(benchmark::State& state) {
  const int edges = static_cast<int>(state.range(0));
  const Region primary = bench::BenchPrimary(/*seed=*/1, edges);
  const Region reference = bench::BenchReference();
  for (auto _ : state) {
    CdrPercentComputation result = ComputeCdrPercentScalar(primary, reference);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(primary.TotalEdges()));
  state.counters["edges"] = static_cast<double>(primary.TotalEdges());
}
BENCHMARK(BM_ComputeCdrPercentScalar)->RangeMultiplier(4)->Range(16, 1 << 14);

void BM_BaselineClippingPercent(benchmark::State& state) {
  const int edges = static_cast<int>(state.range(0));
  const Region primary = bench::BenchPrimary(/*seed=*/1, edges);
  const Region reference = bench::BenchReference();
  for (auto _ : state) {
    CdrPercentComputation result =
        BaselineCdrPercentUnchecked(primary, reference);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(primary.TotalEdges()));
  state.counters["edges"] = static_cast<double>(primary.TotalEdges());
}
BENCHMARK(BM_BaselineClippingPercent)->RangeMultiplier(4)->Range(16, 1 << 14);

// Both sub-steps of the quantitative pipeline in isolation: how much of
// Compute-CDR%'s cost is the shared edge division vs the area accumulation.
void BM_QualitativeVsQuantitativeGap(benchmark::State& state) {
  const Region primary = bench::BenchPrimary(/*seed=*/3, 4096);
  const Region reference = bench::BenchReference();
  for (auto _ : state) {
    CdrPercentComputation quantitative =
        ComputeCdrPercentUnchecked(primary, reference);
    benchmark::DoNotOptimize(quantitative);
  }
}
BENCHMARK(BM_QualitativeVsQuantitativeGap);

// ---------------------------------------------------------------------------
// --ledger mode.

struct PercentRecord {
  int edges = 0;
  std::string mode;
  double ms = 0.0;
  size_t iterations = 0;
  double speedup_vs_scalar = 0.0;  // Only set on soa rows.
};

// Fixed per-edge-count iteration budget (~2M lanes per sample) so the
// "ms" column times identical work across invocations and hosts.
size_t IterationsFor(int edges) {
  const size_t budget = 2'000'000;
  return std::max<size_t>(4, budget / static_cast<size_t>(edges));
}

template <typename Fn>
double TimeMs(size_t iterations, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < iterations; ++i) {
    CdrPercentComputation result = fn();
    benchmark::DoNotOptimize(result);
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

int RunLedger(const std::string& out_path, int repeat) {
  const Region reference = bench::BenchReference();
  const std::vector<int> edge_counts = {64, 512, 4096, 16384};
  std::vector<PercentRecord> records;

  for (int edges : edge_counts) {
    const Region primary = bench::BenchPrimary(/*seed=*/1, edges);
    const Box mbb = reference.BoundingBox();
    const size_t iterations = IterationsFor(edges);

    // The soa row times the batch-caller pattern (scratch reused across
    // calls, as the engine's WorkerScratch does); the scalar row is the
    // pre-SoA per-piece loop it replaced.
    CdrScratch scratch;
    double soa_best = 0.0;
    double scalar_best = 0.0;
    for (int rep = 0; rep < repeat; ++rep) {
      const double soa_ms = TimeMs(iterations, [&] {
        return ComputeCdrPercentUnchecked(primary, mbb, &scratch);
      });
      const double scalar_ms = TimeMs(iterations, [&] {
        return ComputeCdrPercentScalar(primary, reference);
      });
      if (rep == 0 || soa_ms < soa_best) soa_best = soa_ms;
      if (rep == 0 || scalar_ms < scalar_best) scalar_best = scalar_ms;
    }

    PercentRecord soa;
    soa.edges = edges;
    soa.mode = "soa";
    soa.ms = soa_best;
    soa.iterations = iterations;
    soa.speedup_vs_scalar = scalar_best / soa_best;
    records.push_back(soa);

    PercentRecord scalar;
    scalar.edges = edges;
    scalar.mode = "scalar";
    scalar.ms = scalar_best;
    scalar.iterations = iterations;
    records.push_back(scalar);

    std::cout << "percent edges=" << edges << " iters=" << iterations
              << " soa=" << soa_best << "ms scalar=" << scalar_best
              << "ms speedup=" << soa.speedup_vs_scalar << "\n";
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 1;
  }
  out << "{\n  \"bench\": \"percent\",\n  \"unit\": \"ms\",\n  \"repeat\": "
      << repeat << ",\n  \"runs\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const PercentRecord& r = records[i];
    out << "    {\"workload\": \"percent\", \"regions\": " << r.edges
        << ", \"mode\": \"" << r.mode << "\", \"threads\": 1, \"ms\": "
        << r.ms << ", \"iterations\": " << r.iterations;
    if (r.mode == "soa") {
      out << ", \"speedup_vs_scalar\": " << r.speedup_vs_scalar;
    }
    out << "}" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace cardir

int main(int argc, char** argv) {
  std::string ledger_path;
  int repeat = 3;
  std::vector<char*> bench_args = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--ledger" && i + 1 < argc) {
      ledger_path = argv[++i];
    } else if (arg == "--repeat" && i + 1 < argc) {
      repeat = std::max(1, std::stoi(argv[++i]));
    } else {
      bench_args.push_back(argv[i]);
    }
  }
  if (!ledger_path.empty()) {
    return cardir::RunLedger(ledger_path, repeat);
  }
  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
