# Sanitizer build tiers.
#
# Set CARDIR_SANITIZE to pick a tier (the CMakePresets.json presets do):
#   asan-ubsan — AddressSanitizer + UndefinedBehaviorSanitizer (gcc/clang)
#   tsan       — ThreadSanitizer, for the thread-pool/batch-engine suite
#   msan       — MemorySanitizer (clang only; needs instrumented stdlib for
#                a clean run, so it is the optional tier)
#
# Flags are applied globally (add_compile_options/add_link_options) so every
# target — libraries, tests, benchmarks — is instrumented consistently;
# mixing instrumented and uninstrumented translation units produces false
# positives and missed reports.
#
# CARDIR_SANITIZER_ENV collects the runtime options (including the
# checked-in suppression files under tools/sanitizers/) that
# tests/CMakeLists.txt attaches to every test's ENVIRONMENT, so a plain
# `ctest` run in a sanitizer build tree picks them up without shell setup.

set(CARDIR_SANITIZE "" CACHE STRING
    "Sanitizer tier: empty, asan-ubsan, tsan, or msan")
set_property(CACHE CARDIR_SANITIZE PROPERTY STRINGS "" asan-ubsan tsan msan)

set(CARDIR_SANITIZER_ENV "")
set(_cardir_suppressions_dir "${CMAKE_SOURCE_DIR}/tools/sanitizers")

if(CARDIR_SANITIZE STREQUAL "")
  # Plain build: nothing to do.
elseif(CARDIR_SANITIZE STREQUAL "asan-ubsan")
  set(_cardir_san_flags
      -fsanitize=address,undefined
      -fno-sanitize-recover=all
      -fno-omit-frame-pointer
      -g)
  add_compile_options(${_cardir_san_flags})
  add_link_options(${_cardir_san_flags})
  list(APPEND CARDIR_SANITIZER_ENV
      "ASAN_OPTIONS=detect_stack_use_after_return=1:strict_string_checks=1:detect_invalid_pointer_pairs=2"
      "LSAN_OPTIONS=suppressions=${_cardir_suppressions_dir}/lsan.supp"
      "UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1:suppressions=${_cardir_suppressions_dir}/ubsan.supp")
elseif(CARDIR_SANITIZE STREQUAL "tsan")
  set(_cardir_san_flags
      -fsanitize=thread
      -fno-omit-frame-pointer
      -g)
  add_compile_options(${_cardir_san_flags})
  add_link_options(${_cardir_san_flags})
  list(APPEND CARDIR_SANITIZER_ENV
      "TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1:suppressions=${_cardir_suppressions_dir}/tsan.supp")
elseif(CARDIR_SANITIZE STREQUAL "msan")
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    message(FATAL_ERROR
        "CARDIR_SANITIZE=msan requires clang (gcc has no MemorySanitizer); "
        "configure with -DCMAKE_CXX_COMPILER=clang++ or pick asan-ubsan/tsan.")
  endif()
  set(_cardir_san_flags
      -fsanitize=memory
      -fsanitize-memory-track-origins
      -fno-omit-frame-pointer
      -g)
  add_compile_options(${_cardir_san_flags})
  add_link_options(${_cardir_san_flags})
  list(APPEND CARDIR_SANITIZER_ENV
      "MSAN_OPTIONS=halt_on_error=1")
else()
  message(FATAL_ERROR "Unknown CARDIR_SANITIZE value '${CARDIR_SANITIZE}' "
                      "(expected empty, asan-ubsan, tsan, or msan)")
endif()

if(NOT CARDIR_SANITIZE STREQUAL "")
  # Sanitizer runs want symbolised stacks and real line info even in
  # optimised tiers; RelWithDebInfo presets already pass -g, Debug keeps
  # everything. Nothing else to force here — build type stays the caller's
  # choice.
  message(STATUS "cardir: sanitizer tier '${CARDIR_SANITIZE}' enabled")
endif()
