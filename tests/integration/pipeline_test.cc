// End-to-end integration: generate a map configuration, persist it through
// the paper's XML format, reload it, and answer queries — the full
// CARDIRECT usage scenario of §4 driven programmatically.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "cardirect/query.h"
#include "cardirect/tool.h"
#include "cardirect/xml.h"
#include "core/compute_cdr.h"
#include "util/random.h"
#include "workload/scenario_gen.h"

namespace cardir {
namespace {

TEST(PipelineTest, GenerateSaveLoadQuery) {
  Rng rng(2024);
  ScenarioOptions options;
  options.num_regions = 12;
  options.polygons_per_region = 2;
  options.colors = {"red", "blue", "green"};
  auto config = GenerateMapConfiguration(&rng, options);
  ASSERT_TRUE(config.ok()) << config.status();

  // Persist and reload through the DTD XML format.
  const std::string path = ::testing::TempDir() + "/pipeline_config.xml";
  ASSERT_TRUE(SaveConfiguration(*config, path).ok());
  auto loaded = LoadConfiguration(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  std::remove(path.c_str());

  // The reloaded configuration has identical regions and relations.
  ASSERT_EQ(loaded->regions().size(), config->regions().size());
  ASSERT_EQ(loaded->relations().size(), config->relation_count());
  config->ForEachRelation([&](const std::string& primary_id,
                              const std::string& reference_id,
                              const CardinalRelation& relation) {
    auto stored = loaded->StoredRelation(primary_id, reference_id);
    ASSERT_TRUE(stored.has_value());
    EXPECT_EQ(*stored, relation);
  });

  // Stored relations agree with recomputation from the reloaded geometry.
  for (const RelationRecord& record : loaded->relations()) {
    auto recomputed =
        ComputeCdr(loaded->FindRegion(record.primary_id)->geometry,
                   loaded->FindRegion(record.reference_id)->geometry);
    ASSERT_TRUE(recomputed.ok());
    EXPECT_EQ(*recomputed, record.relation)
        << record.primary_id << " vs " << record.reference_id;
  }

  // Queries over the loaded configuration behave as over the original.
  auto rows_original = EvaluateQuery(*config, "(x) | color(x) = red");
  auto rows_loaded = EvaluateQuery(*loaded, "(x) | color(x) = red");
  ASSERT_TRUE(rows_original.ok() && rows_loaded.ok());
  EXPECT_EQ(rows_original->rows.size(), rows_loaded->rows.size());
  EXPECT_FALSE(rows_loaded->rows.empty());

  // A direction query returns only pairs whose stored relation matches.
  auto pairs = EvaluateQuery(
      *loaded, "(x, y) | color(x) = red, color(y) = blue, x {SW, W:SW, "
               "SW:S, SW:W, S:SW} y");
  ASSERT_TRUE(pairs.ok()) << pairs.status();
  for (const QueryRow& row : pairs->rows) {
    auto stored = loaded->StoredRelation(row.region_ids[0], row.region_ids[1]);
    ASSERT_TRUE(stored.has_value());
    for (Tile t : stored->Tiles()) {
      EXPECT_TRUE(t == Tile::kSW || t == Tile::kW || t == Tile::kS);
    }
  }
}

TEST(PipelineTest, CliToolDrivesTheSameFlow) {
  const std::string path = ::testing::TempDir() + "/pipeline_cli.xml";
  std::ostringstream out;
  std::ostringstream err;
  ASSERT_EQ(RunCardirectTool({"demo", path}, out, err), 0) << err.str();
  ASSERT_EQ(RunCardirectTool({"relations", path, path}, out, err), 0)
      << err.str();
  ASSERT_EQ(RunCardirectTool({"validate", path}, out, err), 0) << err.str();
  ASSERT_EQ(
      RunCardirectTool({"query", path, "(a, b) | a {NW, NW:N, W:NW} b"}, out,
                       err),
      0)
      << err.str();
  std::remove(path.c_str());
}

TEST(PipelineTest, LargeConfigurationRoundTripsExactly) {
  Rng rng(7);
  ScenarioOptions options;
  options.num_regions = 25;
  options.vertices_per_polygon = 16;
  options.compute_relations = false;
  auto config = GenerateMapConfiguration(&rng, options);
  ASSERT_TRUE(config.ok());
  const std::string xml = ConfigurationToXml(*config);
  auto loaded = ConfigurationFromXml(xml);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  for (size_t i = 0; i < config->regions().size(); ++i) {
    EXPECT_EQ(config->regions()[i].geometry, loaded->regions()[i].geometry)
        << "region " << i << " coordinates must round-trip bit-exactly";
  }
}

}  // namespace
}  // namespace cardir
