// Tests for the §5 future-work query atoms: topological, distance and
// numeric conditions (see extensions/topology.h, extensions/distance.h).

#include <gtest/gtest.h>

#include "cardirect/query.h"

namespace cardir {
namespace {

void AddRect(Configuration* config, const std::string& id,
             const std::string& color, double x0, double y0, double x1,
             double y1) {
  AnnotatedRegion region;
  region.id = id;
  region.name = id;
  region.color = color;
  region.geometry.AddPolygon(MakeRectangle(x0, y0, x1, y1));
  ASSERT_TRUE(config->AddRegion(std::move(region)).ok());
}

Configuration TestConfig() {
  Configuration config("ext", "ext.png");
  AddRect(&config, "big", "green", 0, 0, 20, 20);       // Area 400.
  AddRect(&config, "inner", "red", 5, 5, 8, 8);         // Inside big.
  AddRect(&config, "edgehugger", "red", 0, 12, 4, 16);  // CoveredBy big.
  AddRect(&config, "neighbor", "blue", 20, 0, 26, 6);   // Meets big.
  AddRect(&config, "faraway", "blue", 200, 200, 203, 203);
  return config;
}

TEST(QueryExtensionsTest, TopologicalInsideAtom) {
  const Configuration config = TestConfig();
  auto result = EvaluateQuery(config, "(x, y) | x inside y");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0].region_ids,
            (std::vector<std::string>{"inner", "big"}));
}

TEST(QueryExtensionsTest, TopologicalCoveredByAndMeetAtoms) {
  const Configuration config = TestConfig();
  auto covered = EvaluateQuery(config, "(x, y) | x coveredBy y");
  ASSERT_TRUE(covered.ok());
  ASSERT_EQ(covered->rows.size(), 1u);
  EXPECT_EQ(covered->rows[0].region_ids[0], "edgehugger");

  auto meets = EvaluateQuery(config, "(x, y) | x meet y, color(x) = blue");
  ASSERT_TRUE(meets.ok());
  ASSERT_EQ(meets->rows.size(), 1u);
  EXPECT_EQ(meets->rows[0].region_ids,
            (std::vector<std::string>{"neighbor", "big"}));
}

TEST(QueryExtensionsTest, DistanceKeywordAtom) {
  const Configuration config = TestConfig();
  // faraway is far from big (gap ≈ 254.6 ≈ 9 × diag 28.3, bucket [4,16)).
  auto result = EvaluateQuery(config, "(x, y) | x far y, y = big");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0].region_ids[0], "faraway");
}

TEST(QueryExtensionsTest, AreaComparison) {
  const Configuration config = TestConfig();
  auto big_ones = EvaluateQuery(config, "(x) | area(x) > 100");
  ASSERT_TRUE(big_ones.ok()) << big_ones.status();
  ASSERT_EQ(big_ones->rows.size(), 1u);
  EXPECT_EQ(big_ones->rows[0].region_ids[0], "big");

  auto small_ones = EvaluateQuery(config, "(x) | area(x) < 10, color(x) = red");
  ASSERT_TRUE(small_ones.ok());
  ASSERT_EQ(small_ones->rows.size(), 1u);
  EXPECT_EQ(small_ones->rows[0].region_ids[0], "inner");
}

TEST(QueryExtensionsTest, DistanceComparison) {
  const Configuration config = TestConfig();
  auto result = EvaluateQuery(
      config, "(x, y) | x = faraway, distance(x, y) < 300, area(y) > 100");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0].region_ids[1], "big");

  auto none = EvaluateQuery(
      config, "(x, y) | x = faraway, y = big, distance(x, y) < 10");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->rows.empty());
}

TEST(QueryExtensionsTest, MixedAtomsConjunction) {
  const Configuration config = TestConfig();
  // Red regions inside the big one that are also B of it (cardinal atom).
  auto result = EvaluateQuery(
      config, "(x, y) | color(x) = red, x inside y, x B y, area(y) > 100");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0].region_ids[0], "inner");
}

TEST(QueryExtensionsTest, PercentAtom) {
  Configuration config;
  AddRect(&config, "ref", "green", 0, 0, 10, 10);
  // Half in E, half in NE of ref.
  AddRect(&config, "split", "red", 12, 4, 18, 16);
  // Fully NE of ref.
  AddRect(&config, "corner", "red", 12, 12, 16, 16);
  auto mostly_ne = EvaluateQuery(
      config, "(x, y) | y = ref, percent(x, NE, y) > 49");
  ASSERT_TRUE(mostly_ne.ok()) << mostly_ne.status();
  ASSERT_EQ(mostly_ne->rows.size(), 2u);

  auto exactly_half = EvaluateQuery(
      config, "(x, y) | y = ref, percent(x, NE, y) > 49, "
              "percent(x, E, y) > 49");
  ASSERT_TRUE(exactly_half.ok()) << exactly_half.status();
  ASSERT_EQ(exactly_half->rows.size(), 1u);
  EXPECT_EQ(exactly_half->rows[0].region_ids[0], "split");

  auto none = EvaluateQuery(config,
                            "(x, y) | y = ref, percent(x, SW, y) > 0");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->rows.empty());
}

TEST(QueryExtensionsTest, PercentParseErrors) {
  EXPECT_FALSE(Query::Parse("(x, y) | percent(x, QQ, y) > 50").ok());
  EXPECT_FALSE(Query::Parse("(x, y) | percent(x, NE) > 50").ok());
  EXPECT_FALSE(Query::Parse("(x) | percent(x, NE, x) > 50").ok());
  EXPECT_FALSE(Query::Parse("(x, y) | percent(x, NE, y) = 50").ok());
}

TEST(QueryExtensionsTest, ParseErrors) {
  EXPECT_FALSE(Query::Parse("(x) | area(x) = 5").ok());       // '=' invalid.
  EXPECT_FALSE(Query::Parse("(x) | area(x) < five").ok());    // Not a number.
  EXPECT_FALSE(Query::Parse("(x, y) | distance(x) < 5").ok());  // Arity.
  EXPECT_FALSE(Query::Parse("(x, y) | x inside x").ok());     // Same var.
  EXPECT_FALSE(Query::Parse("(x, y) | size(x) > 1").ok());    // Bad attr.
}

TEST(QueryExtensionsTest, TopologyKeywordsDoNotShadowTileNames) {
  // Tile names are uppercase; keywords lowercase. "B" stays a direction.
  auto query = Query::Parse("(x, y) | x B y");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->direction_conditions.size(), 1u);
  EXPECT_TRUE(query->topology_conditions.empty());
}

}  // namespace
}  // namespace cardir
