#include "cardirect/model.h"

#include <gtest/gtest.h>

namespace cardir {
namespace {

AnnotatedRegion MakeRegion(const std::string& id, const std::string& color,
                           double x0, double y0, double x1, double y1) {
  AnnotatedRegion region;
  region.id = id;
  region.name = id + "-name";
  region.color = color;
  region.geometry.AddPolygon(MakeRectangle(x0, y0, x1, y1));
  return region;
}

TEST(ConfigurationTest, AddAndFindRegions) {
  Configuration config("test", "map.png");
  ASSERT_TRUE(config.AddRegion(MakeRegion("a", "red", 0, 0, 10, 10)).ok());
  ASSERT_TRUE(config.AddRegion(MakeRegion("b", "blue", 20, 0, 30, 10)).ok());
  EXPECT_EQ(config.regions().size(), 2u);
  ASSERT_NE(config.FindRegion("a"), nullptr);
  EXPECT_EQ(config.FindRegion("a")->color, "red");
  EXPECT_EQ(config.FindRegion("missing"), nullptr);
}

TEST(ConfigurationTest, RejectsDuplicateAndEmptyIds) {
  Configuration config;
  ASSERT_TRUE(config.AddRegion(MakeRegion("a", "red", 0, 0, 1, 1)).ok());
  EXPECT_EQ(config.AddRegion(MakeRegion("a", "blue", 2, 2, 3, 3)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(config.AddRegion(MakeRegion("", "red", 0, 0, 1, 1)).code(),
            StatusCode::kInvalidArgument);
}

TEST(ConfigurationTest, RejectsInvalidGeometry) {
  Configuration config;
  AnnotatedRegion bad;
  bad.id = "bad";
  EXPECT_FALSE(config.AddRegion(bad).ok());  // Empty region.
}

TEST(ConfigurationTest, ReorientsCounterClockwiseInput) {
  Configuration config;
  AnnotatedRegion region;
  region.id = "ccw";
  region.geometry.AddPolygon(
      Polygon({Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)}));
  ASSERT_TRUE(config.AddRegion(region).ok());
  EXPECT_TRUE(config.FindRegion("ccw")->geometry.polygons()[0].IsClockwise());
}

TEST(ConfigurationTest, RegionsByColor) {
  Configuration config;
  ASSERT_TRUE(config.AddRegion(MakeRegion("a", "red", 0, 0, 1, 1)).ok());
  ASSERT_TRUE(config.AddRegion(MakeRegion("b", "blue", 2, 0, 3, 1)).ok());
  ASSERT_TRUE(config.AddRegion(MakeRegion("c", "red", 4, 0, 5, 1)).ok());
  EXPECT_EQ(config.RegionsByColor("red").size(), 2u);
  EXPECT_EQ(config.RegionsByColor("blue").size(), 1u);
  EXPECT_TRUE(config.RegionsByColor("green").empty());
}

TEST(ConfigurationTest, ComputeAllRelationsProducesAllOrderedPairs) {
  Configuration config;
  ASSERT_TRUE(config.AddRegion(MakeRegion("a", "red", 0, 0, 10, 10)).ok());
  ASSERT_TRUE(config.AddRegion(MakeRegion("b", "blue", 2, -20, 8, -12)).ok());
  ASSERT_TRUE(config.ComputeAllRelations().ok());
  EXPECT_EQ(config.relation_count(), 2u);
  // Computed relations live in the RelationStore, not as explicit records.
  EXPECT_TRUE(config.relations().empty());
  ASSERT_NE(config.relation_store(), nullptr);
  auto ab = config.StoredRelation("a", "b");
  ASSERT_TRUE(ab.has_value());
  // a is north of b, spilling over b's narrower mbb into NW and NE.
  EXPECT_EQ(ab->ToString(), "NW:N:NE");
  auto ba = config.StoredRelation("b", "a");
  ASSERT_TRUE(ba.has_value());
  EXPECT_EQ(ba->ToString(), "S");
  EXPECT_FALSE(config.StoredRelation("a", "missing").has_value());
}

TEST(ConfigurationTest, RemoveRegionDropsItsRelations) {
  Configuration config;
  ASSERT_TRUE(config.AddRegion(MakeRegion("a", "red", 0, 0, 10, 10)).ok());
  ASSERT_TRUE(config.AddRegion(MakeRegion("b", "blue", 0, 20, 10, 30)).ok());
  ASSERT_TRUE(config.ComputeAllRelations().ok());
  ASSERT_TRUE(config.RemoveRegion("b").ok());
  EXPECT_FALSE(config.has_relations());
  EXPECT_TRUE(config.relations().empty());
  EXPECT_EQ(config.RemoveRegion("b").code(), StatusCode::kNotFound);
}

TEST(ConfigurationTest, ComputePercentagesOnDemand) {
  Configuration config;
  ASSERT_TRUE(config.AddRegion(MakeRegion("b", "blue", 0, 0, 10, 10)).ok());
  ASSERT_TRUE(config.AddRegion(MakeRegion("c", "red", 12, 4, 18, 16)).ok());
  auto matrix = config.ComputePercentages("c", "b");
  ASSERT_TRUE(matrix.ok());
  EXPECT_NEAR(matrix->at(Tile::kNE), 50.0, 1e-9);
  EXPECT_NEAR(matrix->at(Tile::kE), 50.0, 1e-9);
  EXPECT_EQ(config.ComputePercentages("c", "missing").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace cardir
