#include "cardirect/model.h"

#include <gtest/gtest.h>

namespace cardir {
namespace {

AnnotatedRegion MakeRegion(const std::string& id, const std::string& color,
                           double x0, double y0, double x1, double y1) {
  AnnotatedRegion region;
  region.id = id;
  region.name = id + "-name";
  region.color = color;
  region.geometry.AddPolygon(MakeRectangle(x0, y0, x1, y1));
  return region;
}

TEST(ConfigurationTest, AddAndFindRegions) {
  Configuration config("test", "map.png");
  ASSERT_TRUE(config.AddRegion(MakeRegion("a", "red", 0, 0, 10, 10)).ok());
  ASSERT_TRUE(config.AddRegion(MakeRegion("b", "blue", 20, 0, 30, 10)).ok());
  EXPECT_EQ(config.regions().size(), 2u);
  ASSERT_NE(config.FindRegion("a"), nullptr);
  EXPECT_EQ(config.FindRegion("a")->color, "red");
  EXPECT_EQ(config.FindRegion("missing"), nullptr);
}

TEST(ConfigurationTest, RejectsDuplicateAndEmptyIds) {
  Configuration config;
  ASSERT_TRUE(config.AddRegion(MakeRegion("a", "red", 0, 0, 1, 1)).ok());
  EXPECT_EQ(config.AddRegion(MakeRegion("a", "blue", 2, 2, 3, 3)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(config.AddRegion(MakeRegion("", "red", 0, 0, 1, 1)).code(),
            StatusCode::kInvalidArgument);
}

TEST(ConfigurationTest, RejectsInvalidGeometry) {
  Configuration config;
  AnnotatedRegion bad;
  bad.id = "bad";
  EXPECT_FALSE(config.AddRegion(bad).ok());  // Empty region.
}

TEST(ConfigurationTest, ReorientsCounterClockwiseInput) {
  Configuration config;
  AnnotatedRegion region;
  region.id = "ccw";
  region.geometry.AddPolygon(
      Polygon({Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)}));
  ASSERT_TRUE(config.AddRegion(region).ok());
  EXPECT_TRUE(config.FindRegion("ccw")->geometry.polygons()[0].IsClockwise());
}

TEST(ConfigurationTest, RegionsByColor) {
  Configuration config;
  ASSERT_TRUE(config.AddRegion(MakeRegion("a", "red", 0, 0, 1, 1)).ok());
  ASSERT_TRUE(config.AddRegion(MakeRegion("b", "blue", 2, 0, 3, 1)).ok());
  ASSERT_TRUE(config.AddRegion(MakeRegion("c", "red", 4, 0, 5, 1)).ok());
  EXPECT_EQ(config.RegionsByColor("red").size(), 2u);
  EXPECT_EQ(config.RegionsByColor("blue").size(), 1u);
  EXPECT_TRUE(config.RegionsByColor("green").empty());
}

TEST(ConfigurationTest, ComputeAllRelationsProducesAllOrderedPairs) {
  Configuration config;
  ASSERT_TRUE(config.AddRegion(MakeRegion("a", "red", 0, 0, 10, 10)).ok());
  ASSERT_TRUE(config.AddRegion(MakeRegion("b", "blue", 2, -20, 8, -12)).ok());
  ASSERT_TRUE(config.ComputeAllRelations().ok());
  EXPECT_EQ(config.relation_count(), 2u);
  // Computed relations live in the RelationStore, not as explicit records.
  EXPECT_TRUE(config.relations().empty());
  ASSERT_NE(config.relation_store(), nullptr);
  auto ab = config.StoredRelation("a", "b");
  ASSERT_TRUE(ab.has_value());
  // a is north of b, spilling over b's narrower mbb into NW and NE.
  EXPECT_EQ(ab->ToString(), "NW:N:NE");
  auto ba = config.StoredRelation("b", "a");
  ASSERT_TRUE(ba.has_value());
  EXPECT_EQ(ba->ToString(), "S");
  EXPECT_FALSE(config.StoredRelation("a", "missing").has_value());
}

TEST(ConfigurationTest, RemoveRegionDropsItsRelations) {
  Configuration config;
  ASSERT_TRUE(config.AddRegion(MakeRegion("a", "red", 0, 0, 10, 10)).ok());
  ASSERT_TRUE(config.AddRegion(MakeRegion("b", "blue", 0, 20, 10, 30)).ok());
  ASSERT_TRUE(config.ComputeAllRelations().ok());
  ASSERT_TRUE(config.RemoveRegion("b").ok());
  EXPECT_FALSE(config.has_relations());
  EXPECT_TRUE(config.relations().empty());
  EXPECT_EQ(config.RemoveRegion("b").code(), StatusCode::kNotFound);
}

// After any delta-maintained mutation the configuration must answer
// StoredRelation / relation_count / ForEachRelation exactly as a copy that
// recomputes from scratch would.
void ExpectMatchesRecompute(const Configuration& config) {
  Configuration fresh = config;
  ASSERT_TRUE(fresh.ComputeAllRelations().ok());
  ASSERT_EQ(config.relation_count(), fresh.relation_count());
  const auto& regions = config.regions();
  for (const AnnotatedRegion& primary : regions) {
    for (const AnnotatedRegion& reference : regions) {
      if (primary.id == reference.id) continue;
      auto got = config.StoredRelation(primary.id, reference.id);
      auto want = fresh.StoredRelation(primary.id, reference.id);
      ASSERT_EQ(got.has_value(), want.has_value())
          << primary.id << " vs " << reference.id;
      if (got.has_value()) {
        EXPECT_EQ(got->ToString(), want->ToString())
            << primary.id << " vs " << reference.id;
      }
    }
  }
  size_t iterated = 0;
  config.ForEachRelation([&iterated](const std::string&, const std::string&,
                                     const CardinalRelation&) { ++iterated; });
  EXPECT_EQ(iterated, config.relation_count());
}

TEST(ConfigurationTest, AddRegionAfterComputeMaintainsStoreIncrementally) {
  Configuration config;
  ASSERT_TRUE(config.AddRegion(MakeRegion("a", "red", 0, 0, 10, 10)).ok());
  ASSERT_TRUE(config.AddRegion(MakeRegion("b", "blue", 4, 4, 14, 14)).ok());
  ASSERT_TRUE(config.ComputeAllRelations().ok());
  EXPECT_EQ(config.delta_engine(), nullptr);

  // The insert rides the delta engine; no recompute, no explicit records.
  ASSERT_TRUE(config.AddRegion(MakeRegion("c", "green", 2, -9, 12, -1)).ok());
  EXPECT_NE(config.delta_engine(), nullptr);
  EXPECT_TRUE(config.relations().empty());
  EXPECT_EQ(config.relation_count(), 6u);
  ExpectMatchesRecompute(config);

  // A failed insert (duplicate id) must leave the store untouched.
  EXPECT_EQ(config.AddRegion(MakeRegion("c", "red", 0, 0, 1, 1)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(config.relation_count(), 6u);
  ExpectMatchesRecompute(config);
}

TEST(ConfigurationTest, AddPolygonAfterComputeReResolvesItsPairs) {
  Configuration config;
  ASSERT_TRUE(config.AddRegion(MakeRegion("a", "red", 0, 0, 10, 10)).ok());
  ASSERT_TRUE(config.AddRegion(MakeRegion("b", "blue", 20, 0, 30, 10)).ok());
  ASSERT_TRUE(config.ComputeAllRelations().ok());
  ASSERT_EQ(config.StoredRelation("a", "b")->ToString(), "W");

  // Growing `a` eastwards past `b` flips the stored relation without a
  // recompute — and leaves the untouched direction consistent too.
  ASSERT_TRUE(
      config.AddPolygonToRegion("a", MakeRectangle(35, 0, 45, 10)).ok());
  EXPECT_NE(config.delta_engine(), nullptr);
  EXPECT_EQ(config.StoredRelation("a", "b")->ToString(), "W:E");
  EXPECT_TRUE(config.relations().empty());
  ExpectMatchesRecompute(config);

  EXPECT_EQ(config.AddPolygonToRegion("missing", MakeRectangle(0, 0, 1, 1))
                .code(),
            StatusCode::kNotFound);
}

TEST(ConfigurationTest, RemoveRegionAfterComputeKeepsOtherPairs) {
  Configuration config;
  ASSERT_TRUE(config.AddRegion(MakeRegion("a", "red", 0, 0, 10, 10)).ok());
  ASSERT_TRUE(config.AddRegion(MakeRegion("b", "blue", 3, 3, 13, 13)).ok());
  ASSERT_TRUE(config.AddRegion(MakeRegion("c", "green", 0, 20, 10, 30)).ok());
  ASSERT_TRUE(config.ComputeAllRelations().ok());
  const std::string ab = config.StoredRelation("a", "b")->ToString();

  ASSERT_TRUE(config.RemoveRegion("c").ok());
  EXPECT_NE(config.delta_engine(), nullptr);
  EXPECT_EQ(config.relation_count(), 2u);
  // The surviving pair keeps its stored relation verbatim.
  EXPECT_EQ(config.StoredRelation("a", "b")->ToString(), ab);
  EXPECT_FALSE(config.StoredRelation("a", "c").has_value());
  ExpectMatchesRecompute(config);

  // Interleave every mutation kind and stay recompute-consistent.
  ASSERT_TRUE(config.AddRegion(MakeRegion("d", "red", 8, 8, 18, 24)).ok());
  ASSERT_TRUE(
      config.AddPolygonToRegion("b", MakeRectangle(-8, -8, -2, -2)).ok());
  ASSERT_TRUE(config.RemoveRegion("a").ok());
  EXPECT_EQ(config.relation_count(), 2u);
  ExpectMatchesRecompute(config);
}

TEST(ConfigurationTest, ComputePercentagesOnDemand) {
  Configuration config;
  ASSERT_TRUE(config.AddRegion(MakeRegion("b", "blue", 0, 0, 10, 10)).ok());
  ASSERT_TRUE(config.AddRegion(MakeRegion("c", "red", 12, 4, 18, 16)).ok());
  auto matrix = config.ComputePercentages("c", "b");
  ASSERT_TRUE(matrix.ok());
  EXPECT_NEAR(matrix->at(Tile::kNE), 50.0, 1e-9);
  EXPECT_NEAR(matrix->at(Tile::kE), 50.0, 1e-9);
  EXPECT_EQ(config.ComputePercentages("c", "missing").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace cardir
