#include "cardirect/query.h"

#include <gtest/gtest.h>

namespace cardir {
namespace {

void AddRect(Configuration* config, const std::string& id,
             const std::string& name, const std::string& color, double x0,
             double y0, double x1, double y1) {
  AnnotatedRegion region;
  region.id = id;
  region.name = name;
  region.color = color;
  region.geometry.AddPolygon(MakeRectangle(x0, y0, x1, y1));
  ASSERT_TRUE(config->AddRegion(std::move(region)).ok());
}

// A stylised Peloponnesian-war configuration (paper §4, Fig. 11): blue =
// Athenean Alliance, red = Spartan Alliance. The "surrounded" pair is the
// blue island inside the red ring.
Configuration WarConfiguration() {
  Configuration config("peloponnesian-war", "ancient-greece.png");
  AddRect(&config, "attica", "Attica", "blue", 30, 30, 45, 45);
  AddRect(&config, "peloponnesos", "Peloponnesos", "red", 10, 10, 40, 35);
  AddRect(&config, "macedonia", "Macedonia", "black", 25, 60, 50, 75);
  AddRect(&config, "island", "Island", "blue", 70, 20, 75, 25);
  // A red ring (Sicily, say) surrounding the island: four bands.
  AnnotatedRegion ring;
  ring.id = "sicily";
  ring.name = "Sicely";
  ring.color = "red";
  ring.geometry.AddPolygon(MakeRectangle(60, 10, 85, 18));  // South band.
  ring.geometry.AddPolygon(MakeRectangle(60, 27, 85, 35));  // North band.
  ring.geometry.AddPolygon(MakeRectangle(60, 18, 68, 27));  // West band.
  ring.geometry.AddPolygon(MakeRectangle(77, 18, 85, 27));  // East band.
  EXPECT_TRUE(config.AddRegion(std::move(ring)).ok());
  EXPECT_TRUE(config.ComputeAllRelations().ok());
  return config;
}

TEST(QueryParseTest, ParsesThePaperQuery) {
  auto query = Query::Parse(
      "(a, b) | color(a) = red, color(b) = blue, a S:SW:W:NW:N:NE:E:SE b");
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(query->variables, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(query->thematic_conditions.size(), 2u);
  ASSERT_EQ(query->direction_conditions.size(), 1u);
  EXPECT_EQ(query->direction_conditions[0].relation.Count(), 1u);
  EXPECT_TRUE(query->direction_conditions[0].relation.Contains(
      *CardinalRelation::Parse("S:SW:W:NW:N:NE:E:SE")));
}

TEST(QueryParseTest, ParsesIdentityAndDisjunctiveAtoms) {
  auto query = Query::Parse(
      "(x, y) | x = attica, name(y) = \"Region 1\", x {N, N:NE, NE} y");
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(query->identity_conditions.size(), 1u);
  EXPECT_EQ(query->thematic_conditions.size(), 1u);
  EXPECT_EQ(query->direction_conditions[0].relation.Count(), 3u);
}

TEST(QueryParseTest, RejectsMalformedQueries) {
  EXPECT_FALSE(Query::Parse("").ok());
  EXPECT_FALSE(Query::Parse("a, b | a S b").ok());        // Missing parens.
  EXPECT_FALSE(Query::Parse("(a, a) | a = x").ok());      // Duplicate var.
  EXPECT_FALSE(Query::Parse("(a) | b = x").ok());         // Undeclared var.
  EXPECT_FALSE(Query::Parse("(a, b) | a QQ b").ok());     // Bad tile.
  EXPECT_FALSE(Query::Parse("(a) | a S a").ok());         // Self relation.
  EXPECT_FALSE(Query::Parse("(a) | size(a) = 3").ok());   // Bad attribute.
  EXPECT_FALSE(Query::Parse("(a) | a = x extra").ok());   // Trailing junk.
}

TEST(QueryEvalTest, PaperSectionFourQuery) {
  // "Find all regions of the Athenean Alliance which are surrounded by a
  //  region in the Spartan Alliance":
  //  q = {(a,b) | color(a)=red, color(b)=blue, a S:SW:W:NW:N:NE:E:SE b}.
  const Configuration config = WarConfiguration();
  auto result = EvaluateQuery(
      config,
      "(a, b) | color(a) = red, color(b) = blue, a S:SW:W:NW:N:NE:E:SE b");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0].region_ids,
            (std::vector<std::string>{"sicily", "island"}));
}

TEST(QueryEvalTest, IdentityConditionsMatchIdOrName) {
  const Configuration config = WarConfiguration();
  auto by_id = EvaluateQuery(config, "(x) | x = attica");
  ASSERT_TRUE(by_id.ok());
  ASSERT_EQ(by_id->rows.size(), 1u);
  auto by_name = EvaluateQuery(config, "(x) | x = Peloponnesos");
  ASSERT_TRUE(by_name.ok());
  ASSERT_EQ(by_name->rows.size(), 1u);
  EXPECT_EQ(by_name->rows[0].region_ids[0], "peloponnesos");
}

TEST(QueryEvalTest, ThematicOnlyQueryEnumeratesTuples) {
  const Configuration config = WarConfiguration();
  auto result = EvaluateQuery(config, "(x) | color(x) = blue");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 2u);  // attica, island (sorted by id).
  EXPECT_EQ(result->rows[0].region_ids[0], "attica");
  EXPECT_EQ(result->rows[1].region_ids[0], "island");
}

TEST(QueryEvalTest, DirectionAtomUsesStoredRelations) {
  const Configuration config = WarConfiguration();
  // Peloponnesos B:S:SW:W Attica (the Fig. 12 relation).
  auto result = EvaluateQuery(
      config, "(x) | x = peloponnesos, x B:S:SW:W y, y = attica");
  ASSERT_FALSE(result.ok());  // y used before declared? No — declared vars
                              // come from the head; this query is malformed.
  auto good = EvaluateQuery(
      config,
      "(x, y) | x = peloponnesos, y = attica, x B:S:SW:W y");
  ASSERT_TRUE(good.ok()) << good.status();
  EXPECT_EQ(good->rows.size(), 1u);
}

TEST(QueryEvalTest, DirectionAtomComputesWhenNotStored) {
  Configuration config;
  AddRect(&config, "a", "A", "red", 0, 0, 10, 10);
  AddRect(&config, "b", "B", "blue", 2, -20, 8, -12);
  // No ComputeAllRelations(): the evaluator must fall back to Compute-CDR.
  auto result = EvaluateQuery(config, "(x, y) | x S y");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0].region_ids,
            (std::vector<std::string>{"b", "a"}));
}

TEST(QueryEvalTest, DisjunctiveDirectionAtom) {
  const Configuration config = WarConfiguration();
  // Macedonia is north-ish of Attica (spilling into NW and NE).
  auto result = EvaluateQuery(
      config, "(x, y) | y = attica, x {N, NW:N, N:NE, NW:N:NE} y");
  ASSERT_TRUE(result.ok()) << result.status();
  bool found_macedonia = false;
  for (const QueryRow& row : result->rows) {
    found_macedonia |= (row.region_ids[0] == "macedonia");
  }
  EXPECT_TRUE(found_macedonia);
}

TEST(QueryEvalTest, EmptyResultIsNotAnError) {
  const Configuration config = WarConfiguration();
  auto result = EvaluateQuery(config, "(x) | color(x) = purple");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rows.empty());
}

TEST(QueryEvalTest, SameRegionCannotBindBothSidesOfDirectionAtom) {
  Configuration config;
  AddRect(&config, "solo", "Solo", "red", 0, 0, 10, 10);
  auto result = EvaluateQuery(config, "(x, y) | x B y");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rows.empty());
}

TEST(QueryEvalTest, ThreeVariableConjunction) {
  const Configuration config = WarConfiguration();
  auto result = EvaluateQuery(config,
                              "(a, b, c) | a = peloponnesos, b = attica, "
                              "a B:S:SW:W b, c {N, NW:N, N:NE, NW, NE, "
                              "NW:N:NE} b, color(c) = black");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0].region_ids[2], "macedonia");
}

}  // namespace
}  // namespace cardir
