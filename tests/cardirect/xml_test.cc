#include "cardirect/xml.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "util/logging.h"

namespace cardir {
namespace {

TEST(XmlParserTest, ParsesElementsAttributesAndNesting) {
  auto root = ParseXml(
      "<a x=\"1\" y='two'><b/><c k=\"v\">text</c></a>");
  ASSERT_TRUE(root.ok()) << root.status();
  EXPECT_EQ(root->tag, "a");
  ASSERT_NE(root->FindAttribute("x"), nullptr);
  EXPECT_EQ(*root->FindAttribute("x"), "1");
  EXPECT_EQ(*root->FindAttribute("y"), "two");
  ASSERT_EQ(root->children.size(), 2u);
  EXPECT_EQ(root->children[0].tag, "b");
  EXPECT_EQ(root->children[1].text, "text");
  EXPECT_EQ(root->AttributeOr("missing", "dflt"), "dflt");
}

TEST(XmlParserTest, HandlesPrologueCommentsAndDoctype) {
  const char* doc =
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      "<!-- a comment -->\n"
      "<!DOCTYPE Image [ <!ELEMENT Image (Region+)> ]>\n"
      "<Image name=\"m\"><!-- inner --><Region id=\"r\"/></Image>";
  auto root = ParseXml(doc);
  ASSERT_TRUE(root.ok()) << root.status();
  EXPECT_EQ(root->tag, "Image");
  EXPECT_EQ(root->children.size(), 1u);
}

TEST(XmlParserTest, DecodesEntities) {
  auto root = ParseXml("<a v=\"&lt;&amp;&gt;&quot;&apos;&#65;\">x &amp; y</a>");
  ASSERT_TRUE(root.ok()) << root.status();
  EXPECT_EQ(*root->FindAttribute("v"), "<&>\"'A");
  EXPECT_EQ(root->text, "x & y");
}

TEST(XmlParserTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("<a>").ok());                    // Unterminated.
  EXPECT_FALSE(ParseXml("<a></b>").ok());                // Mismatched tags.
  EXPECT_FALSE(ParseXml("<a x=1/>").ok());               // Unquoted attr.
  EXPECT_FALSE(ParseXml("<a>&unknown;</a>").ok());       // Bad entity.
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());               // Two roots.
}

TEST(XmlWriterTest, EscapesAndRoundTrips) {
  XmlNode node;
  node.tag = "n";
  node.attributes.emplace_back("a", "x<y&\"z\"");
  XmlNode child;
  child.tag = "c";
  child.text = "1 < 2";
  node.children.push_back(child);
  const std::string xml = WriteXml(node);
  auto parsed = ParseXml(xml);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << xml;
  EXPECT_EQ(*parsed->FindAttribute("a"), "x<y&\"z\"");
  EXPECT_EQ(parsed->children[0].text, "1 < 2");
}

Configuration SampleConfiguration() {
  Configuration config("peloponnesian-war", "ancient-greece.png");
  AnnotatedRegion attica;
  attica.id = "attica";
  attica.name = "Attica";
  attica.color = "blue";
  attica.geometry.AddPolygon(
      Polygon({Point(10, 20), Point(14.5, 21), Point(13, 17)}));
  CARDIR_CHECK_OK(config.AddRegion(attica));
  AnnotatedRegion pelo;
  pelo.id = "peloponnesos";
  pelo.name = "Peloponnesos";
  pelo.color = "red";
  pelo.geometry.AddPolygon(MakeRectangle(2, 2, 12, 18));
  pelo.geometry.AddPolygon(MakeRectangle(13, 3, 15, 5));  // An island.
  CARDIR_CHECK_OK(config.AddRegion(pelo));
  CARDIR_CHECK_OK(config.ComputeAllRelations());
  return config;
}

TEST(ConfigurationXmlTest, RoundTripPreservesEverything) {
  const Configuration original = SampleConfiguration();
  const std::string xml = ConfigurationToXml(original);
  auto loaded = ConfigurationFromXml(xml);
  ASSERT_TRUE(loaded.ok()) << loaded.status() << "\n" << xml;
  EXPECT_EQ(loaded->name(), original.name());
  EXPECT_EQ(loaded->image_file(), original.image_file());
  ASSERT_EQ(loaded->regions().size(), original.regions().size());
  for (size_t i = 0; i < original.regions().size(); ++i) {
    const AnnotatedRegion& a = original.regions()[i];
    const AnnotatedRegion& b = loaded->regions()[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.color, b.color);
    EXPECT_EQ(a.geometry, b.geometry);  // Exact coordinate round-trip.
  }
  // The original holds computed relations (RelationStore); the reloaded
  // configuration holds explicit records — same relations, same order.
  ASSERT_EQ(loaded->relations().size(), original.relation_count());
  size_t flat = 0;
  original.ForEachRelation([&](const std::string& primary_id,
                               const std::string& reference_id,
                               const CardinalRelation& relation) {
    EXPECT_EQ(loaded->relations()[flat].primary_id, primary_id);
    EXPECT_EQ(loaded->relations()[flat].reference_id, reference_id);
    EXPECT_EQ(loaded->relations()[flat].relation, relation);
    ++flat;
  });
}

TEST(ConfigurationXmlTest, OutputFollowsTheDtdShape) {
  const std::string xml = ConfigurationToXml(SampleConfiguration());
  auto root = ParseXml(xml);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->tag, "Image");
  const auto regions = root->ChildrenNamed("Region");
  ASSERT_EQ(regions.size(), 2u);
  for (const XmlNode* region : regions) {
    EXPECT_NE(region->FindAttribute("id"), nullptr);
    for (const XmlNode* polygon : region->ChildrenNamed("Polygon")) {
      EXPECT_NE(polygon->FindAttribute("id"), nullptr);  // DTD: #REQUIRED.
      const auto edges = polygon->ChildrenNamed("Edge");
      EXPECT_GE(edges.size(), 3u);  // DTD: (Edge, Edge, Edge, Edge*).
      for (const XmlNode* edge : edges) {
        EXPECT_NE(edge->FindAttribute("x"), nullptr);
        EXPECT_NE(edge->FindAttribute("y"), nullptr);
      }
    }
  }
  for (const XmlNode* relation : root->ChildrenNamed("Relation")) {
    EXPECT_NE(relation->FindAttribute("type"), nullptr);
    EXPECT_NE(relation->FindAttribute("primary"), nullptr);
    EXPECT_NE(relation->FindAttribute("reference"), nullptr);
  }
}

TEST(ConfigurationXmlTest, RejectsBadConfigurations) {
  EXPECT_FALSE(ConfigurationFromXml("<NotImage/>").ok());
  // Region without id.
  EXPECT_FALSE(ConfigurationFromXml("<Image><Region/></Image>").ok());
  // Polygon with fewer than 3 edges.
  EXPECT_FALSE(ConfigurationFromXml(
                   "<Image><Region id=\"r\"><Polygon id=\"p\">"
                   "<Edge x=\"0\" y=\"0\"/><Edge x=\"1\" y=\"1\"/>"
                   "</Polygon></Region></Image>")
                   .ok());
  // Relation referencing an unknown region.
  EXPECT_FALSE(
      ConfigurationFromXml(
          "<Image><Region id=\"r\"><Polygon id=\"p\">"
          "<Edge x=\"0\" y=\"0\"/><Edge x=\"0\" y=\"1\"/><Edge x=\"1\" "
          "y=\"0\"/></Polygon></Region>"
          "<Relation type=\"S\" primary=\"r\" reference=\"ghost\"/></Image>")
          .ok());
  // Relation with an invalid type.
  EXPECT_FALSE(
      ConfigurationFromXml(
          "<Image><Region id=\"r\"><Polygon id=\"p\">"
          "<Edge x=\"0\" y=\"0\"/><Edge x=\"0\" y=\"1\"/><Edge x=\"1\" "
          "y=\"0\"/></Polygon></Region>"
          "<Relation type=\"QQ\" primary=\"r\" reference=\"r\"/></Image>")
          .ok());
  // Non-numeric coordinate.
  EXPECT_FALSE(ConfigurationFromXml(
                   "<Image><Region id=\"r\"><Polygon id=\"p\">"
                   "<Edge x=\"zero\" y=\"0\"/><Edge x=\"0\" y=\"1\"/>"
                   "<Edge x=\"1\" y=\"0\"/></Polygon></Region></Image>")
                   .ok());
}

TEST(ConfigurationXmlTest, SaveAndLoadFiles) {
  const Configuration original = SampleConfiguration();
  const std::string path = ::testing::TempDir() + "/cardir_xml_test.xml";
  ASSERT_TRUE(SaveConfiguration(original, path).ok());
  auto loaded = LoadConfiguration(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->regions().size(), original.regions().size());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadConfiguration(path + ".does-not-exist").ok());
}

TEST(XmlEscapeTest, EscapesAllFiveEntities) {
  EXPECT_EQ(XmlEscape("<a b=\"c\" & 'd'>"),
            "&lt;a b=&quot;c&quot; &amp; &apos;d&apos;&gt;");
  EXPECT_EQ(XmlEscape("plain"), "plain");
}

}  // namespace
}  // namespace cardir
