#include "cardirect/constraint_file.h"

#include <gtest/gtest.h>

#include "core/compute_cdr.h"

namespace cardir {
namespace {

TEST(ConstraintFileTest, ParsesBasicAndDisjunctiveLines) {
  auto network = ParseConstraintFile(
      "# The three allies\n"
      "a S b\n"
      "\n"
      "b {N, N:NE} c   # trailing comment\n");
  ASSERT_TRUE(network.ok()) << network.status();
  EXPECT_EQ(network->variable_count(), 3);
  EXPECT_EQ(network->variable_name(0), "a");
  ASSERT_TRUE(network->constraint(0, 1).has_value());
  EXPECT_EQ(network->constraint(0, 1)->Count(), 1u);
  ASSERT_TRUE(network->constraint(1, 2).has_value());
  EXPECT_EQ(network->constraint(1, 2)->Count(), 2u);
}

TEST(ConstraintFileTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseConstraintFile("a S\n").ok());
  EXPECT_FALSE(ParseConstraintFile("a QQ b\n").ok());
  EXPECT_FALSE(ParseConstraintFile("a S a\n").ok());
  EXPECT_FALSE(ParseConstraintFile("").ok());
  EXPECT_FALSE(ParseConstraintFile("# only comments\n").ok());
  // Error messages carry the line number.
  auto bad = ParseConstraintFile("a S b\nc XX d\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
}

TEST(ConstraintFileTest, RepeatedPairsIntersect) {
  auto network = ParseConstraintFile(
      "a {S, SW} b\n"
      "a {S, N} b\n");
  ASSERT_TRUE(network.ok());
  EXPECT_EQ(network->constraint(0, 1)->Count(), 1u);
}

TEST(ConstraintFileTest, ConsistentNetworkSolvesAndModelVerifies) {
  auto network = ParseConstraintFile(
      "a S b\n"
      "b S c\n"
      "a {S, SW:S} c\n");
  ASSERT_TRUE(network.ok());
  auto model = network->Solve();
  ASSERT_TRUE(model.ok()) << model.status();
  auto relation = ComputeCdr(model->regions[0], model->regions[1]);
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->ToString(), "S");
  const std::string listing = FormatNetworkModel(*network, *model);
  EXPECT_NE(listing.find("a:"), std::string::npos);
  EXPECT_NE(listing.find("c:"), std::string::npos);
}

TEST(ConstraintFileTest, InconsistentNetworkDetected) {
  auto network = ParseConstraintFile(
      "a S b\n"
      "b S c\n"
      "a N c\n");
  ASSERT_TRUE(network.ok());
  auto model = network->Solve();
  EXPECT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kInconsistent);
}

}  // namespace
}  // namespace cardir
