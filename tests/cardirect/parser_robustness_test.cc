// Robustness / fuzz tests for the two textual front doors: the XML parser
// and the query parser. Property: arbitrary input never crashes and either
// parses cleanly or returns a ParseError status; structured round-trips
// survive hostile content (entities, odd names, extreme numbers).

#include <gtest/gtest.h>

#include "cardirect/query.h"
#include "cardirect/xml.h"
#include "util/random.h"

namespace cardir {
namespace {

std::string RandomGarbage(Rng* rng, size_t length) {
  // Characters weighted toward XML/query syntax to reach deep parser paths.
  static constexpr char kAlphabet[] =
      "<>/=\"'{}(),|:&;#xX aabbccRegionImagePolygonEdgeNSWEB0123456789.-\n\t";
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out += kAlphabet[rng->NextBelow(sizeof(kAlphabet) - 1)];
  }
  return out;
}

TEST(XmlFuzzTest, GarbageNeverCrashesAndErrorsAreParseErrors) {
  Rng rng(2718);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::string input = RandomGarbage(&rng, rng.NextBelow(160));
    auto result = ParseXml(input);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kParseError)
          << "input: " << input;
    }
    auto config = ConfigurationFromXml(input);
    if (!config.ok()) {
      // Structural errors surface as ParseError; semantic ones (degenerate
      // polygons, duplicate ids) as InvalidArgument/AlreadyExists.
      const StatusCode code = config.status().code();
      EXPECT_TRUE(code == StatusCode::kParseError ||
                  code == StatusCode::kInvalidArgument ||
                  code == StatusCode::kAlreadyExists)
          << "input: " << input << " -> " << config.status();
    }
  }
}

TEST(XmlFuzzTest, MutatedValidDocumentsNeverCrash) {
  // Start from a valid document and apply random single-character edits.
  Configuration base("fuzz", "map.png");
  AnnotatedRegion region;
  region.id = "r1";
  region.name = "Region <&> \"one\"";
  region.color = "red";
  region.geometry.AddPolygon(MakeRectangle(0, 0, 4, 4));
  ASSERT_TRUE(base.AddRegion(std::move(region)).ok());
  ASSERT_TRUE(base.ComputeAllRelations().ok());
  const std::string valid = ConfigurationToXml(base);

  Rng rng(3141);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = valid;
    const int edits = static_cast<int>(rng.NextInt(1, 4));
    for (int e = 0; e < edits; ++e) {
      const size_t pos = rng.NextBelow(mutated.size());
      switch (rng.NextBelow(3)) {
        case 0: mutated[pos] = static_cast<char>(rng.NextInt(32, 126)); break;
        case 1: mutated.erase(pos, 1); break;
        default: mutated.insert(pos, 1, '<'); break;
      }
    }
    auto result = ConfigurationFromXml(mutated);
    if (!result.ok()) {
      const StatusCode code = result.status().code();
      EXPECT_TRUE(code == StatusCode::kParseError ||
                  code == StatusCode::kInvalidArgument ||
                  code == StatusCode::kAlreadyExists)
          << result.status();
    }
  }
}

TEST(XmlRoundTripTest, HostileAttributeContentSurvives) {
  Configuration config("we & they <tag> 'quoted' \"double\"", "a&b.png");
  AnnotatedRegion region;
  region.id = "spiky";
  region.name = "<Region id=\"fake\"/>&amp; more";
  region.color = "rosé";  // Multi-byte UTF-8 passes through opaquely.
  region.geometry.AddPolygon(MakeRectangle(0, 0, 1, 1));
  ASSERT_TRUE(config.AddRegion(std::move(region)).ok());
  auto loaded = ConfigurationFromXml(ConfigurationToXml(config));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->name(), config.name());
  EXPECT_EQ(loaded->regions()[0].name, config.regions()[0].name);
  EXPECT_EQ(loaded->regions()[0].color, config.regions()[0].color);
}

TEST(XmlRoundTripTest, ExtremeCoordinatesRoundTripBitExactly) {
  Configuration config;
  AnnotatedRegion region;
  region.id = "extreme";
  region.geometry.AddPolygon(Polygon({Point(1e-300, 0.1 + 0.2),
                                      Point(-1e300, 1.0 / 3.0),
                                      Point(12345.6789e-12, 9.87654321e15)}));
  ASSERT_TRUE(config.AddRegion(std::move(region)).ok());
  auto loaded = ConfigurationFromXml(ConfigurationToXml(config));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->regions()[0].geometry, config.regions()[0].geometry);
}

TEST(QueryFuzzTest, GarbageNeverCrashes) {
  Rng rng(1618);
  for (int trial = 0; trial < 3000; ++trial) {
    const std::string input = RandomGarbage(&rng, rng.NextBelow(80));
    auto result = Query::Parse(input);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kParseError)
          << "input: " << input;
    }
  }
}

TEST(QueryFuzzTest, MutatedValidQueriesNeverCrash) {
  const std::string valid =
      "(a, b) | color(a) = red, a {N, N:NE} b, area(b) > 10, "
      "percent(a, NE, b) > 50, distance(a, b) < 100, a meet b";
  Rng rng(1414);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string mutated = valid;
    const size_t pos = rng.NextBelow(mutated.size());
    mutated[pos] = static_cast<char>(rng.NextInt(32, 126));
    auto result = Query::Parse(mutated);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kParseError);
    }
  }
}

}  // namespace
}  // namespace cardir
