#include "cardirect/tool.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"

namespace cardir {
namespace {

struct ToolRun {
  int exit_code;
  std::string out;
  std::string err;
};

ToolRun RunTool(const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = RunCardirectTool(args, out, err);
  return {code, out.str(), err.str()};
}

class ToolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/cardirect_tool_test.xml";
    const ToolRun demo = RunTool({"demo", path_});
    ASSERT_EQ(demo.exit_code, 0) << demo.err;
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(ToolTest, NoArgsPrintsUsage) {
  const ToolRun run = RunTool({});
  EXPECT_EQ(run.exit_code, 2);
  EXPECT_NE(run.err.find("usage:"), std::string::npos);
}

TEST_F(ToolTest, UnknownCommandPrintsUsage) {
  EXPECT_EQ(RunTool({"frobnicate"}).exit_code, 2);
  EXPECT_EQ(RunTool({"show"}).exit_code, 2);  // Missing argument.
}

TEST_F(ToolTest, ShowListsRegionsAndRelations) {
  const ToolRun run = RunTool({"show", path_});
  EXPECT_EQ(run.exit_code, 0) << run.err;
  EXPECT_NE(run.out.find("lake"), std::string::npos);
  EXPECT_NE(run.out.find("forest"), std::string::npos);
  EXPECT_NE(run.out.find("city"), std::string::npos);
  EXPECT_NE(run.out.find("Stored relations:"), std::string::npos);
}

TEST_F(ToolTest, RelationsComputesAllPairs) {
  const ToolRun run = RunTool({"relations", path_});
  EXPECT_EQ(run.exit_code, 0) << run.err;
  // 3 regions -> 6 ordered pairs, one line each.
  int lines = 0;
  for (char c : run.out) lines += (c == '\n');
  EXPECT_EQ(lines, 6);
}

TEST_F(ToolTest, RelationsCanSaveBack) {
  const std::string out_path = ::testing::TempDir() + "/cardirect_saved.xml";
  const ToolRun run = RunTool({"relations", path_, out_path});
  EXPECT_EQ(run.exit_code, 0) << run.err;
  EXPECT_EQ(RunTool({"show", out_path}).exit_code, 0);
  std::remove(out_path.c_str());
}

TEST_F(ToolTest, PercentPrintsAMatrix) {
  const ToolRun run = RunTool({"percent", path_, "forest", "lake"});
  EXPECT_EQ(run.exit_code, 0) << run.err;
  EXPECT_NE(run.out.find("%"), std::string::npos);
  EXPECT_EQ(RunTool({"percent", path_, "forest", "ghost"}).exit_code, 1);
}

TEST_F(ToolTest, QueryReturnsRows) {
  const ToolRun run = RunTool({"query", path_, "(x) | color(x) = blue"});
  EXPECT_EQ(run.exit_code, 0) << run.err;
  EXPECT_NE(run.out.find("lake"), std::string::npos);
  EXPECT_NE(run.out.find("1 row(s)"), std::string::npos);
  EXPECT_EQ(RunTool({"query", path_, "(x | bad"}).exit_code, 1);
}

TEST_F(ToolTest, ValidateAcceptsDemoConfiguration) {
  const ToolRun run = RunTool({"validate", path_});
  EXPECT_EQ(run.exit_code, 0) << run.err << run.out;
}

TEST_F(ToolTest, MissingFileFails) {
  EXPECT_EQ(RunTool({"show", "/nonexistent/nope.xml"}).exit_code, 1);
}

TEST_F(ToolTest, CheckDecidesConsistency) {
  const std::string path = ::testing::TempDir() + "/cardirect_check.txt";
  {
    std::ofstream file(path);
    file << "athens S sparta\nsparta S thebes\nathens {S, SW:S} thebes\n";
  }
  const ToolRun consistent = RunTool({"check", path});
  EXPECT_EQ(consistent.exit_code, 0) << consistent.err;
  EXPECT_NE(consistent.out.find("CONSISTENT"), std::string::npos);
  EXPECT_NE(consistent.out.find("athens:"), std::string::npos);
  {
    std::ofstream file(path);
    file << "a S b\nb S c\na N c\n";
  }
  const ToolRun inconsistent = RunTool({"check", path});
  EXPECT_EQ(inconsistent.exit_code, 1);
  EXPECT_NE(inconsistent.out.find("INCONSISTENT"), std::string::npos);
  {
    std::ofstream file(path);
    file << "not a valid line here at all\n";
  }
  EXPECT_EQ(RunTool({"check", path}).exit_code, 1);
  EXPECT_EQ(RunTool({"check", "/nonexistent/x.txt"}).exit_code, 1);
  std::remove(path.c_str());
}

TEST_F(ToolTest, WktImportExportRoundTrip) {
  const std::string path = ::testing::TempDir() + "/cardirect_wkt_test.xml";
  ASSERT_EQ(RunTool({"create", path}).exit_code, 0);
  ASSERT_EQ(RunTool({"add-wkt", path, "island", "blue",
                     "POLYGON ((0 0, 0 4, 4 4, 4 0, 0 0))"})
                .exit_code,
            0);
  const ToolRun exported = RunTool({"export-wkt", path, "island"});
  EXPECT_EQ(exported.exit_code, 0) << exported.err;
  EXPECT_NE(exported.out.find("MULTIPOLYGON"), std::string::npos);
  // Bad WKT and unknown region ids fail cleanly.
  EXPECT_EQ(RunTool({"add-wkt", path, "bad", "red", "POINT (1 2)"}).exit_code,
            1);
  EXPECT_EQ(RunTool({"export-wkt", path, "ghost"}).exit_code, 1);
  std::remove(path.c_str());
}

TEST_F(ToolTest, RelatedUsesTheIndex) {
  // demo config: forest is north-west-ish of the lake.
  const ToolRun run = RunTool({"related", path_, "lake", "{NW, W:NW, NW:N}"});
  EXPECT_EQ(run.exit_code, 0) << run.err;
  EXPECT_NE(run.out.find("forest"), std::string::npos);
  EXPECT_NE(run.out.find("region(s)"), std::string::npos);
  EXPECT_EQ(RunTool({"related", path_, "ghost", "N"}).exit_code, 1);
  EXPECT_EQ(RunTool({"related", path_, "lake", "QQ"}).exit_code, 1);
}

TEST_F(ToolTest, TablesPrintsReasoningTables) {
  const ToolRun run = RunTool({"tables"});
  EXPECT_EQ(run.exit_code, 0) << run.err;
  EXPECT_NE(run.out.find("inv(SW) = {NE}"), std::string::npos);
  EXPECT_NE(run.out.find("composition table"), std::string::npos);
}

TEST_F(ToolTest, CreateAddQueryRemoveRoundTrip) {
  const std::string path = ::testing::TempDir() + "/cardirect_edit_test.xml";
  EXPECT_EQ(RunTool({"create", path, "editable", "map.png"}).exit_code, 0);
  EXPECT_EQ(RunTool({"add-region", path, "base", "green", "0,0", "0,10",
                     "10,10", "10,0"})
                .exit_code,
            0);
  EXPECT_EQ(RunTool({"add-region", path, "north", "red", "2,12", "2,16",
                     "8,16", "8,12"})
                .exit_code,
            0);
  // Extend `north` with a second (disconnected) polygon.
  EXPECT_EQ(RunTool({"add-polygon", path, "north", "12,12", "12,14",
                     "14,14", "14,12"})
                .exit_code,
            0);
  const ToolRun query =
      RunTool({"query", path, "(x, y) | y = base, x {N, N:NE, NW:N:NE} x"});
  EXPECT_EQ(query.exit_code, 1);  // Malformed on purpose: same variable.
  const ToolRun good =
      RunTool({"query", path, "(x, y) | y = base, x {N, N:NE, NW:N:NE} y"});
  EXPECT_EQ(good.exit_code, 0) << good.err;
  EXPECT_NE(good.out.find("north"), std::string::npos);
  EXPECT_EQ(RunTool({"remove-region", path, "north"}).exit_code, 0);
  const ToolRun show = RunTool({"show", path});
  EXPECT_EQ(show.exit_code, 0);
  EXPECT_EQ(show.out.find("north"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ToolTest, EditCommandsValidateInput) {
  const std::string path = ::testing::TempDir() + "/cardirect_edit_bad.xml";
  EXPECT_EQ(RunTool({"create", path}).exit_code, 0);
  // Bad vertex syntax.
  EXPECT_EQ(RunTool({"add-region", path, "r", "red", "0;0", "0,1", "1,0"})
                .exit_code,
            1);
  // Too few vertices is rejected by the argument-count dispatch.
  EXPECT_EQ(RunTool({"add-region", path, "r", "red", "0,0", "0,1"})
                .exit_code,
            2);
  // Degenerate polygon.
  EXPECT_EQ(RunTool({"add-region", path, "r", "red", "0,0", "1,1", "2,2"})
                .exit_code,
            1);
  // add-polygon to a missing region.
  EXPECT_EQ(RunTool({"add-polygon", path, "ghost", "0,0", "0,1", "1,0"})
                .exit_code,
            1);
  // remove a missing region.
  EXPECT_EQ(RunTool({"remove-region", path, "ghost"}).exit_code, 1);
  std::remove(path.c_str());
}

// --- observability flags (--stats, --trace-out) ---

// Value of `counter <name> <value>` in a --stats table (0 when absent).
uint64_t CounterFromTable(const std::string& table, const std::string& name) {
  std::istringstream lines(table);
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream fields(line);
    std::string kind, metric;
    uint64_t value = 0;
    if ((fields >> kind >> metric >> value) && kind == "counter" &&
        metric == name) {
      return value;
    }
  }
  return 0;
}

TEST_F(ToolTest, StatsPrintsCountersSatisfyingEngineInvariants) {
  if (!kObsEnabled) GTEST_SKIP() << "counters compiled out";
  const ToolRun run = RunTool({"--stats", "relations", path_, "--threads=2"});
  ASSERT_EQ(run.exit_code, 0) << run.err;
  ASSERT_NE(run.out.find("=== metrics (this run) ==="), std::string::npos);
  const std::string table =
      run.out.substr(run.out.find("=== metrics (this run) ==="));
  // Every ordered pair is either resolved by the MBB prefilter or fully
  // computed — the engine's accounting identity.
  const uint64_t total = CounterFromTable(table, "engine.pairs.total");
  const uint64_t prefiltered =
      CounterFromTable(table, "engine.pairs.prefiltered");
  const uint64_t computed = CounterFromTable(table, "engine.pairs.computed");
  EXPECT_EQ(total, 6u) << table;  // 3 demo regions -> 6 ordered pairs.
  EXPECT_EQ(prefiltered + computed, total) << table;
  // Splitting only ever adds edges. (The demo's three regions may all be
  // resolved from MBBs alone, in which case both counters are zero.)
  EXPECT_GE(CounterFromTable(table, "core.edges.split"),
            CounterFromTable(table, "core.edges.input"));
}

TEST_F(ToolTest, StatsCountsEdgeWorkOnThePercentCommand) {
  if (!kObsEnabled) GTEST_SKIP() << "counters compiled out";
  // percent always runs the trapezoid pipeline, so edge counters move.
  const ToolRun run = RunTool({"--stats", "percent", path_, "forest", "lake"});
  ASSERT_EQ(run.exit_code, 0) << run.err;
  const std::string table =
      run.out.substr(run.out.find("=== metrics (this run) ==="));
  EXPECT_GE(CounterFromTable(table, "core.edges.input"), 1u) << table;
  EXPECT_GE(CounterFromTable(table, "core.edges.split"),
            CounterFromTable(table, "core.edges.input"))
      << table;
  EXPECT_GE(CounterFromTable(table, "core.percent.trapezoid_terms"), 1u)
      << table;
}

TEST_F(ToolTest, StatsJsonAndPrometheusFormats) {
  if (!kObsEnabled) GTEST_SKIP() << "counters compiled out";
  const ToolRun json = RunTool({"--stats=json", "relations", path_});
  ASSERT_EQ(json.exit_code, 0) << json.err;
  EXPECT_NE(json.out.find("\"counters\": {"), std::string::npos);
  EXPECT_NE(json.out.find("\"engine.pairs.total\": 6"), std::string::npos);

  const ToolRun prom = RunTool({"--stats=prom", "relations", path_});
  ASSERT_EQ(prom.exit_code, 0) << prom.err;
  EXPECT_NE(prom.out.find("# TYPE cardir_engine_pairs_total counter"),
            std::string::npos);
  EXPECT_NE(prom.out.find("cardir_engine_pairs_total 6"), std::string::npos);
}

TEST_F(ToolTest, InvalidStatsFormatIsRejected) {
  const ToolRun run = RunTool({"--stats=xml", "relations", path_});
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_NE(run.err.find("--stats accepts table, json, or prom"),
            std::string::npos);
}

TEST_F(ToolTest, TraceOutWritesChromeTraceJson) {
  const std::string trace_path = ::testing::TempDir() + "/cardirect_trace.json";
  const ToolRun run =
      RunTool({"--trace-out=" + trace_path, "relations", path_, "--threads=2"});
  ASSERT_EQ(run.exit_code, 0) << run.err;
  std::ifstream trace_file(trace_path);
  ASSERT_TRUE(trace_file.is_open());
  std::stringstream buffer;
  buffer << trace_file.rdbuf();
  const std::string trace = buffer.str();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  if (kObsEnabled) {
    EXPECT_NE(trace.find("\"name\": \"engine.run\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  }
  std::remove(trace_path.c_str());
}

TEST_F(ToolTest, ThreadsEqualsFormIsAccepted) {
  const ToolRun run = RunTool({"relations", path_, "--threads=2"});
  EXPECT_EQ(run.exit_code, 0) << run.err;
  EXPECT_EQ(RunTool({"relations", path_, "--threads=bogus"}).exit_code, 1);
}

TEST_F(ToolTest, FlightRecordWritesDumpOnCleanExit) {
  if (!kObsEnabled) GTEST_SKIP() << "flight recorder compiled out";
  const std::string record_path =
      ::testing::TempDir() + "/cardirect_flight.txt";
  const ToolRun run =
      RunTool({"--flight-record=" + record_path, "relations", path_});
  ASSERT_EQ(run.exit_code, 0) << run.err;
  EXPECT_NE(run.out.find("wrote flight record: " + record_path),
            std::string::npos);
  std::ifstream record_file(record_path);
  ASSERT_TRUE(record_file.is_open());
  std::stringstream buffer;
  buffer << record_file.rdbuf();
  const std::string record = buffer.str();
  EXPECT_EQ(record.rfind("cardir-flight-record v1\n", 0), 0u);
  // The sweep run's phase transitions are in the ring.
  EXPECT_NE(record.find("label=engine.validate"), std::string::npos);
  EXPECT_NE(record.find("label=sweep.done"), std::string::npos);
  // Strip events carry their own record kind.
  EXPECT_NE(record.find("kind=sweep"), std::string::npos);
  EXPECT_NE(record.find("\nend\n"), std::string::npos);
  std::remove(record_path.c_str());

  EXPECT_EQ(RunTool({"--flight-record=", "relations", path_}).exit_code, 1);
}

TEST_F(ToolTest, ProfileWritesCollapsedStacks) {
  if (!kObsEnabled) GTEST_SKIP() << "profiler compiled out";
  const std::string profile_path =
      ::testing::TempDir() + "/cardirect_profile.folded";
  // The demo configuration finishes in microseconds, so the file may hold
  // zero samples — the contract here is flag plumbing: the profiler starts,
  // stops, and writes the file.
  const ToolRun run = RunTool({"--profile=" + profile_path, "--profile-hz=2000",
                               "relations", path_});
  ASSERT_EQ(run.exit_code, 0) << run.err;
  EXPECT_NE(run.out.find("wrote profile: " + profile_path), std::string::npos);
  std::ifstream profile_file(profile_path);
  EXPECT_TRUE(profile_file.is_open());
  std::remove(profile_path.c_str());

  EXPECT_EQ(RunTool({"--profile=", "relations", path_}).exit_code, 1);
  const ToolRun bad_rate = RunTool(
      {"--profile=" + profile_path, "--profile-hz=-5", "relations", path_});
  EXPECT_EQ(bad_rate.exit_code, 1);
  EXPECT_NE(bad_rate.err.find("--profile-hz"), std::string::npos);
}

}  // namespace
}  // namespace cardir
