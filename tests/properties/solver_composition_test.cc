// Cross-validation of the two independent reasoning engines: the
// model-search composition (reasoning/composition.h) and the constraint
// solver (reasoning/constraint_network.h, algebraic closure + canonical
// model realisation). For random basic triples (R, S, T):
//
//   T ∈ Compose(R, S)  ⟺  the network {a R b, b S c, a T c} is consistent.
//
// Agreement in both directions simultaneously checks the soundness of the
// composition table and the completeness of the canonical-order solver on
// three-variable networks.

#include <gtest/gtest.h>

#include "reasoning/composition.h"
#include "reasoning/constraint_network.h"
#include "util/random.h"

namespace cardir {
namespace {

class SolverCompositionTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverCompositionTest, SolveAgreesWithComposition) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const CardinalRelation r =
        CardinalRelation::FromMask(static_cast<uint16_t>(rng.NextInt(1, 511)));
    const CardinalRelation s =
        CardinalRelation::FromMask(static_cast<uint16_t>(rng.NextInt(1, 511)));
    const CardinalRelation t =
        CardinalRelation::FromMask(static_cast<uint16_t>(rng.NextInt(1, 511)));
    const bool expected = Compose(r, s).Contains(t);

    ConstraintNetwork network;
    const int a = network.AddVariable("a");
    const int b = network.AddVariable("b");
    const int c = network.AddVariable("c");
    ASSERT_TRUE(network.AddConstraint(a, b, r).ok());
    ASSERT_TRUE(network.AddConstraint(b, c, s).ok());
    ASSERT_TRUE(network.AddConstraint(a, c, t).ok());
    auto model = network.Solve();
    EXPECT_EQ(model.ok(), expected)
        << "trial " << trial << ": " << r.ToString() << " o " << s.ToString()
        << (expected ? " contains " : " does not contain ") << t.ToString()
        << "; solver says " << model.status();
  }
}

TEST_P(SolverCompositionTest, CompositionMembersAlwaysRealize) {
  // Every member of a composition must be realizable as a full network —
  // the constructive direction only, over the members themselves.
  Rng rng(GetParam() * 7 + 1);
  const CardinalRelation r =
      CardinalRelation::FromMask(static_cast<uint16_t>(rng.NextInt(1, 511)));
  const CardinalRelation s =
      CardinalRelation::FromMask(static_cast<uint16_t>(rng.NextInt(1, 511)));
  const DisjunctiveRelation composed = Compose(r, s);
  int checked = 0;
  for (const CardinalRelation& t : composed.Relations()) {
    if (++checked > 8) break;  // Sample; full sets can have 511 members.
    ConstraintNetwork network;
    const int a = network.AddVariable("a");
    const int b = network.AddVariable("b");
    const int c = network.AddVariable("c");
    ASSERT_TRUE(network.AddConstraint(a, b, r).ok());
    ASSERT_TRUE(network.AddConstraint(b, c, s).ok());
    ASSERT_TRUE(network.AddConstraint(a, c, t).ok());
    EXPECT_TRUE(network.Solve().ok())
        << r.ToString() << " o " << s.ToString() << " member "
        << t.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverCompositionTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace cardir
