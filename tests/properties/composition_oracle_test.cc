// Property test E9 (DESIGN.md): for random region triples (a, b, c), the
// geometric relation a T c is always a member of the model-search
// composition Compose(R, S) where a R b and b S c — i.e. composition is
// sound (no geometric witness falls outside the computed disjunction).

#include <gtest/gtest.h>

#include "core/compute_cdr.h"
#include "properties/random_instances.h"
#include "reasoning/composition.h"

namespace cardir {
namespace {

class CompositionOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompositionOracleTest, GeometricTriplesAreMembersOfTheComposition) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const Region a = RandomTestRegion(&rng);
    const Region b = RandomTestRegion(&rng);
    const Region c = RandomTestRegion(&rng);
    const CardinalRelation r = *ComputeCdr(a, b);
    const CardinalRelation s = *ComputeCdr(b, c);
    const CardinalRelation t = *ComputeCdr(a, c);
    EXPECT_TRUE(Compose(r, s).Contains(t))
        << "trial " << trial << ": (" << r.ToString() << " o " << s.ToString()
        << ") should contain " << t.ToString();
  }
}

TEST_P(CompositionOracleTest, SingleTileCompositionsAreNonEmptyAndSound) {
  // Exhaustive over the 81 single-tile pairs, spot-verified against a
  // geometric witness where the pair admits rectangles in general position.
  Rng rng(GetParam() * 37 + 3);
  for (Tile rt : kAllTiles) {
    for (Tile st : kAllTiles) {
      const DisjunctiveRelation composed =
          Compose(CardinalRelation(rt), CardinalRelation(st));
      EXPECT_FALSE(composed.IsEmpty())
          << TileName(rt) << " o " << TileName(st);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompositionOracleTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace cardir
