// Exact-rational differential oracle for Compute-CDR% (paper §3.2, Def. 4).
//
// Ground truth is computed with arbitrary-precision rational arithmetic —
// a small sign-magnitude big integer plus an unreduced fraction type, no
// external dependency — by mirroring the algorithm exactly: split each
// integer-coordinate edge at the four integer mbb lines (crossing
// parameters and split points stay exact rationals), classify each piece
// with exact comparisons (including the interior-side tie-breaks of
// core/edge_splitter.cc for pieces lying ON a line), and accumulate the
// signed trapezoid terms of Definition 4 without a single rounding. The
// oracle validates itself on every instance: the exact per-tile areas must
// sum *exactly* (as rationals) to the polygon's exact shoelace area.
//
// The floating-point pipelines (the SoA/SIMD path and the scalar
// reference path) are then required to agree with ground truth within a
// derived absolute bound. Derivation, for vertex coordinates bounded by
// C = 1024 and unit roundoff eps = 2^-52:
//
//  * integer endpoints and mbb lines are exact doubles, so the strict
//    straddle tests agree bit-for-bit with the exact oracle and both
//    pipelines produce the same crossing structure;
//  * a float split point carries absolute error ≤ c1·eps·C from the
//    division t = (m−x0)/dx and the two-op evaluation x0 + t·dx
//    (c1 ≤ 8 covers the involved roundings, including the line snap);
//  * perturbing one piece endpoint by δ changes its two adjacent
//    trapezoid terms by ≤ 6·C·δ (the partial derivatives of
//    0.5·d·(s−2l) are bounded by 3C), and any sliver shifted to a
//    neighbouring tile by the perturbation has area ≤ 2C·δ;
//  * each term evaluation rounds ≤ 4 times at magnitude ≤ 4C², and the
//    accumulation — sequential in the scalar path, 4-wide reassociated in
//    the SoA path; the bound is order-independent — adds ≤ n·eps·4C²
//    over n terms;
//  * the a_B noise clamp of FinalizeSums zeroes at most
//    1e-12·max(|a_{B+N}|, a_N) ≤ 1e-12·C², itself below the bound.
//
// Summing over n pieces: |float − exact| ≤ 128·n·eps·C² per tile; the
// test asserts with K = 128 and n = pieces + 4.

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/compute_cdr.h"
#include "core/compute_cdr_percent.h"
#include "core/tile.h"
#include "geometry/box.h"
#include "geometry/polygon.h"
#include "geometry/region.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace cardir {
namespace {

// ---------------------------------------------------------------------------
// Sign-magnitude arbitrary-precision integer. Magnitude is base-2^64,
// little-endian, no leading zero limbs; zero has sign 0 and no limbs.
// Only what the oracle needs: add, subtract, multiply, compare, and an
// approximate mantissa·2^exp decomposition for the final double readout.
class BigInt {
 public:
  BigInt() = default;
  explicit BigInt(int64_t v) {
    if (v == 0) return;
    sign_ = v < 0 ? -1 : 1;
    const uint64_t mag =
        v < 0 ? ~static_cast<uint64_t>(v) + 1 : static_cast<uint64_t>(v);
    limbs_.push_back(mag);
  }

  bool IsZero() const { return sign_ == 0; }
  int sign() const { return sign_; }

  BigInt Negated() const {
    BigInt r = *this;
    r.sign_ = -r.sign_;
    return r;
  }

  BigInt Abs() const {
    BigInt r = *this;
    if (r.sign_ < 0) r.sign_ = 1;
    return r;
  }

  friend BigInt operator+(const BigInt& a, const BigInt& b) {
    if (a.IsZero()) return b;
    if (b.IsZero()) return a;
    BigInt r;
    if (a.sign_ == b.sign_) {
      r.limbs_ = AddMag(a.limbs_, b.limbs_);
      r.sign_ = a.sign_;
      return r;
    }
    const int cmp = CompareMag(a.limbs_, b.limbs_);
    if (cmp == 0) return BigInt();
    if (cmp > 0) {
      r.limbs_ = SubMag(a.limbs_, b.limbs_);
      r.sign_ = a.sign_;
    } else {
      r.limbs_ = SubMag(b.limbs_, a.limbs_);
      r.sign_ = b.sign_;
    }
    return r;
  }

  friend BigInt operator-(const BigInt& a, const BigInt& b) {
    return a + b.Negated();
  }

  friend BigInt operator*(const BigInt& a, const BigInt& b) {
    if (a.IsZero() || b.IsZero()) return BigInt();
    BigInt r;
    r.sign_ = a.sign_ * b.sign_;
    r.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
    for (size_t i = 0; i < a.limbs_.size(); ++i) {
      uint64_t carry = 0;
      for (size_t j = 0; j < b.limbs_.size(); ++j) {
        const unsigned __int128 cur =
            static_cast<unsigned __int128>(a.limbs_[i]) * b.limbs_[j] +
            r.limbs_[i + j] + carry;
        r.limbs_[i + j] = static_cast<uint64_t>(cur);
        carry = static_cast<uint64_t>(cur >> 64);
      }
      r.limbs_[i + b.limbs_.size()] += carry;
    }
    r.Trim();
    return r;
  }

  /// Three-way comparison: sign of (a - b).
  friend int Compare(const BigInt& a, const BigInt& b) {
    if (a.sign_ != b.sign_) return a.sign_ < b.sign_ ? -1 : 1;
    if (a.sign_ == 0) return 0;
    const int mag = CompareMag(a.limbs_, b.limbs_);
    return a.sign_ > 0 ? mag : -mag;
  }

  friend bool operator==(const BigInt& a, const BigInt& b) {
    return Compare(a, b) == 0;
  }

  /// Signed mantissa of the top two limbs plus a binary exponent:
  /// value ≈ mantissa · 2^exp with relative error < 2^-64. Unreduced
  /// rationals grow far past double range, so BigRat::ToDouble must go
  /// through this decomposition rather than a full-value conversion.
  double TopMantissa(int* exp) const {
    if (sign_ == 0) {
      *exp = 0;
      return 0.0;
    }
    const size_t top = limbs_.size() - 1;
    double v = static_cast<double>(limbs_[top]);
    if (top >= 1) {
      v = v * 18446744073709551616.0 + static_cast<double>(limbs_[top - 1]);
      *exp = static_cast<int>((top - 1) * 64);
    } else {
      *exp = 0;
    }
    return sign_ < 0 ? -v : v;
  }

 private:
  static int CompareMag(const std::vector<uint64_t>& a,
                        const std::vector<uint64_t>& b) {
    if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
    for (size_t i = a.size(); i-- > 0;) {
      if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
    }
    return 0;
  }

  static std::vector<uint64_t> AddMag(const std::vector<uint64_t>& a,
                                      const std::vector<uint64_t>& b) {
    const std::vector<uint64_t>& lo = a.size() < b.size() ? a : b;
    const std::vector<uint64_t>& hi = a.size() < b.size() ? b : a;
    std::vector<uint64_t> r(hi.size() + 1, 0);
    uint64_t carry = 0;
    for (size_t i = 0; i < hi.size(); ++i) {
      unsigned __int128 cur = static_cast<unsigned __int128>(hi[i]) + carry;
      if (i < lo.size()) cur += lo[i];
      r[i] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    r[hi.size()] = carry;
    while (!r.empty() && r.back() == 0) r.pop_back();
    return r;
  }

  // Requires |a| > |b|.
  static std::vector<uint64_t> SubMag(const std::vector<uint64_t>& a,
                                      const std::vector<uint64_t>& b) {
    std::vector<uint64_t> r(a.size(), 0);
    uint64_t borrow = 0;
    for (size_t i = 0; i < a.size(); ++i) {
      const uint64_t sub = i < b.size() ? b[i] : 0;
      r[i] = a[i] - sub - borrow;
      borrow = (a[i] < sub || (a[i] == sub && borrow != 0)) ? 1 : 0;
    }
    while (!r.empty() && r.back() == 0) r.pop_back();
    return r;
  }

  void Trim() {
    while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
    if (limbs_.empty()) sign_ = 0;
  }

  int sign_ = 0;
  std::vector<uint64_t> limbs_;
};

// ---------------------------------------------------------------------------
// Unreduced rational: num/den with den > 0 always. No gcd reduction — the
// oracle only needs +, −, ×, exact three-way comparison (by cross
// multiplication) and one approximate double readout at the end, and the
// instance sizes (integer inputs ≤ 2^10, ≤ ~100 accumulated terms) keep
// the unreduced limb counts small enough that exactness is cheap.
struct BigRat {
  BigInt num;
  BigInt den;  // Always > 0.

  BigRat() : num(), den(BigInt(1)) {}
  explicit BigRat(int64_t v) : num(v), den(BigInt(1)) {}
  BigRat(BigInt n, BigInt d) : num(std::move(n)), den(std::move(d)) {
    if (den.sign() < 0) {
      num = num.Negated();
      den = den.Negated();
    }
  }

  bool IsZero() const { return num.IsZero(); }

  friend BigRat operator+(const BigRat& a, const BigRat& b) {
    return BigRat(a.num * b.den + b.num * a.den, a.den * b.den);
  }
  friend BigRat operator-(const BigRat& a, const BigRat& b) {
    return BigRat(a.num * b.den - b.num * a.den, a.den * b.den);
  }
  friend BigRat operator*(const BigRat& a, const BigRat& b) {
    return BigRat(a.num * b.num, a.den * b.den);
  }

  BigRat Abs() const { return BigRat(num.Abs(), den); }

  /// Exact three-way comparison by cross multiplication (dens > 0).
  friend int Compare(const BigRat& a, const BigRat& b) {
    return Compare(a.num * b.den, b.num * a.den);
  }
  friend bool operator==(const BigRat& a, const BigRat& b) {
    return Compare(a, b) == 0;
  }
  friend bool operator<(const BigRat& a, const BigRat& b) {
    return Compare(a, b) < 0;
  }

  double ToDouble() const {
    int en = 0;
    int ed = 0;
    const double n = num.TopMantissa(&en);
    const double d = den.TopMantissa(&ed);
    if (n == 0.0) return 0.0;
    return std::ldexp(n / d, en - ed);
  }
};

struct RatPoint {
  BigRat x;
  BigRat y;
};

// ---------------------------------------------------------------------------
// Exact mirror of the §3.1 edge division + §3.2 accumulation for one
// integer-coordinate polygon against an integer reference box.

struct ExactSums {
  std::array<BigRat, kNumTiles> signed_sum;
  BigRat signed_b_plus_n;
  size_t pieces = 0;
};

// Exact counterpart of ClassifyColumn (core/edge_splitter.cc), same
// cascade: pieces lying ON a vertical line resolve to the interior side
// via the ring direction (clockwise ring: interior to the right, so a
// piece going up — end.y > start.y — keeps the interior on its east).
// Exact split pieces never straddle a line, so no defensive branch.
int ExactColumn(const RatPoint& a, const RatPoint& b, const BigRat& m1,
                const BigRat& m2) {
  const BigRat& lo = a.x < b.x ? a.x : b.x;
  const BigRat& hi = a.x < b.x ? b.x : a.x;
  if (lo == hi && (lo == m1 || lo == m2)) {
    const bool dir_y_positive = a.y < b.y;
    if (m1 == m2) return dir_y_positive ? 2 : 0;
    if (lo == m1) return dir_y_positive ? 1 : 0;
    return dir_y_positive ? 2 : 1;
  }
  if (Compare(hi, m1) <= 0) return 0;
  if (Compare(lo, m2) >= 0) return 2;
  return 1;
}

int ExactRow(const RatPoint& a, const RatPoint& b, const BigRat& l1,
             const BigRat& l2) {
  const BigRat& lo = a.y < b.y ? a.y : b.y;
  const BigRat& hi = a.y < b.y ? b.y : a.y;
  if (lo == hi && (lo == l1 || lo == l2)) {
    const bool dir_x_positive = a.x < b.x;
    if (l1 == l2) return dir_x_positive ? 0 : 2;
    if (lo == l1) return dir_x_positive ? 0 : 1;
    return dir_x_positive ? 1 : 2;
  }
  if (Compare(hi, l1) <= 0) return 0;
  if (Compare(lo, l2) >= 0) return 2;
  return 1;
}

// 0.5 * (p1 - p0) * (s0 + s1 - 2*ref), exact — p is the coordinate along
// the sweep axis, s the summed axis (Def. 4's E/E' trapezoid terms).
BigRat ExactTrapezoid(const BigRat& p0, const BigRat& p1, const BigRat& s0,
                      const BigRat& s1, const BigRat& ref) {
  return BigRat(BigInt(1), BigInt(2)) * (p1 - p0) *
         (s0 + s1 - BigRat(2) * ref);
}

void AccumulateExact(const Polygon& polygon, const Box& mbb,
                     ExactSums* sums) {
  const BigRat m1(static_cast<int64_t>(mbb.min_x()));
  const BigRat m2(static_cast<int64_t>(mbb.max_x()));
  const BigRat l1(static_cast<int64_t>(mbb.min_y()));
  const BigRat l2(static_cast<int64_t>(mbb.max_y()));

  const size_t n = polygon.size();
  for (size_t e = 0; e < n; ++e) {
    const Point pa = polygon.vertex(e);
    const Point pb = polygon.vertex((e + 1) % n);
    const RatPoint a{BigRat(static_cast<int64_t>(pa.x)),
                     BigRat(static_cast<int64_t>(pa.y))};
    const RatPoint b{BigRat(static_cast<int64_t>(pb.x)),
                     BigRat(static_cast<int64_t>(pb.y))};
    if (a.x == b.x && a.y == b.y) continue;
    const BigRat dx = b.x - a.x;
    const BigRat dy = b.y - a.y;

    // Exact proper-crossing parameters t ∈ (0, 1): one per mbb line the
    // edge strictly straddles, skipping the twin line of a degenerate
    // band (matching the splitter). Corner crossings coincide exactly in
    // rationals, so sort + dedupe.
    std::vector<BigRat> ts;
    auto maybe_cross = [&](const BigRat& coord_a, const BigRat& coord_b,
                           const BigRat& line, const BigRat& d) {
      const bool straddles = (coord_a < line && line < coord_b) ||
                             (coord_b < line && line < coord_a);
      if (!straddles) return;
      const BigRat diff = line - coord_a;
      ts.push_back(BigRat(diff.num * d.den, diff.den * d.num));
    };
    maybe_cross(a.x, b.x, m1, dx);
    if (!(m1 == m2)) maybe_cross(a.x, b.x, m2, dx);
    maybe_cross(a.y, b.y, l1, dy);
    if (!(l1 == l2)) maybe_cross(a.y, b.y, l2, dy);
    std::sort(ts.begin(), ts.end(),
              [](const BigRat& p, const BigRat& q) { return p < q; });
    ts.erase(std::unique(ts.begin(), ts.end(),
                         [](const BigRat& p, const BigRat& q) {
                           return p == q;
                         }),
             ts.end());

    RatPoint start = a;
    for (size_t i = 0; i <= ts.size(); ++i) {
      const RatPoint end =
          i == ts.size() ? b
                         : RatPoint{a.x + ts[i] * dx, a.y + ts[i] * dy};
      if (start.x == end.x && start.y == end.y) continue;
      ++sums->pieces;
      const int col = ExactColumn(start, end, m1, m2);
      const int row = ExactRow(start, end, l1, l2);
      const Tile tile =
          TileAt(static_cast<TileColumn>(col), static_cast<TileRow>(row));
      const int ti = static_cast<int>(tile);
      switch (tile) {
        case Tile::kNW:
        case Tile::kW:
        case Tile::kSW:
          sums->signed_sum[ti] =
              sums->signed_sum[ti] +
              ExactTrapezoid(start.y, end.y, start.x, end.x, m1);
          break;
        case Tile::kNE:
        case Tile::kE:
        case Tile::kSE:
          sums->signed_sum[ti] =
              sums->signed_sum[ti] +
              ExactTrapezoid(start.y, end.y, start.x, end.x, m2);
          break;
        case Tile::kS:
          sums->signed_sum[ti] =
              sums->signed_sum[ti] +
              ExactTrapezoid(start.x, end.x, start.y, end.y, l1);
          break;
        case Tile::kN:
          sums->signed_sum[ti] =
              sums->signed_sum[ti] +
              ExactTrapezoid(start.x, end.x, start.y, end.y, l2);
          break;
        case Tile::kB:
          break;  // Only the B+N accumulator below sees B edges.
      }
      if (tile == Tile::kN || tile == Tile::kB) {
        sums->signed_b_plus_n =
            sums->signed_b_plus_n +
            ExactTrapezoid(start.x, end.x, start.y, end.y, l1);
      }
      start = end;
    }
  }
}

// Exact shoelace area, positive for the repo's clockwise rings (same sign
// convention as the E_{l} accumulation: 0.5·Σ (x1−x0)(y0+y1)).
BigRat ExactArea(const Polygon& polygon) {
  BigRat twice;
  const size_t n = polygon.size();
  for (size_t i = 0; i < n; ++i) {
    const Point pa = polygon.vertex(i);
    const Point pb = polygon.vertex((i + 1) % n);
    twice = twice + (BigRat(static_cast<int64_t>(pb.x)) -
                     BigRat(static_cast<int64_t>(pa.x))) *
                        (BigRat(static_cast<int64_t>(pa.y)) +
                         BigRat(static_cast<int64_t>(pb.y)));
  }
  return BigRat(BigInt(1), BigInt(2)) * twice;
}

// ---------------------------------------------------------------------------
// Instance generation: random integer-coordinate clockwise polygons with
// coordinates in [0, C], plus an integer reference box overlapping the
// polygon's extent — crossing pairs whose split points land on every tile
// boundary combination.

constexpr int64_t kCoordBound = 1024;

Polygon RandomIntegerPolygon(Rng* rng) {
  // An angular fan around a centre, traversed clockwise, then rounded to
  // integers. Rounding may introduce local concavity or even an invalid
  // ring — callers Validate() and skip those instances.
  const int verts = static_cast<int>(rng->NextInt(3, 12));
  const double cx = rng->NextDouble(200.0, 800.0);
  const double cy = rng->NextDouble(200.0, 800.0);
  const double radius = rng->NextDouble(40.0, 190.0);
  std::vector<Point> points;
  points.reserve(static_cast<size_t>(verts));
  for (int i = 0; i < verts; ++i) {
    const double angle = (static_cast<double>(i) + rng->NextDouble(0.05, 0.9)) *
                         2.0 * 3.14159265358979323846 / verts;
    const double r = radius * rng->NextDouble(0.5, 1.0);
    const double x = cx + r * std::cos(-angle);  // Negated: clockwise order.
    const double y = cy + r * std::sin(-angle);
    points.push_back(Point{
        std::round(
            std::min(std::max(x, 0.0), static_cast<double>(kCoordBound))),
        std::round(
            std::min(std::max(y, 0.0), static_cast<double>(kCoordBound)))});
  }
  return Polygon(points);
}

Box RandomOverlappingIntegerBox(Rng* rng, const Box& extent) {
  const double w = extent.max_x() - extent.min_x();
  const double h = extent.max_y() - extent.min_y();
  const double x1 = std::round(extent.min_x() + rng->NextDouble(-0.6, 0.6) * w);
  const double y1 = std::round(extent.min_y() + rng->NextDouble(-0.6, 0.6) * h);
  const double x2 = x1 + std::round(rng->NextDouble(0.2, 1.2) * w) + 1.0;
  const double y2 = y1 + std::round(rng->NextDouble(0.2, 1.2) * h) + 1.0;
  return Box(std::max(0.0, x1), std::max(0.0, y1),
             std::min(static_cast<double>(kCoordBound), x2),
             std::min(static_cast<double>(kCoordBound), y2));
}

TEST(ExactCdrOracleTest, FloatPipelinesAgreeWithExactRationalGroundTruth) {
  Rng rng(4040);
  constexpr double kEps = 2.220446049250313e-16;  // 2^-52.
  const double c2 =
      static_cast<double>(kCoordBound) * static_cast<double>(kCoordBound);
  int tested = 0;
  int attempts = 0;
  while (tested < 1100 && attempts < 4000) {
    ++attempts;
    Region primary(RandomIntegerPolygon(&rng));
    primary.EnsureClockwise();
    if (!primary.Validate().ok()) continue;
    const Box mbb = RandomOverlappingIntegerBox(&rng, primary.BoundingBox());
    if (mbb.IsEmpty()) continue;

    // Exact ground truth + per-instance oracle self-check: the exact
    // per-tile areas must sum — as rationals, no tolerance — to the exact
    // shoelace area of the polygon.
    ExactSums exact;
    AccumulateExact(primary.polygons()[0], mbb, &exact);
    std::array<BigRat, kNumTiles> exact_area;
    BigRat exact_total;
    for (Tile t : kAllTiles) {
      const int i = static_cast<int>(t);
      if (t == Tile::kB) {
        exact_area[i] = exact.signed_b_plus_n.Abs() -
                        exact.signed_sum[static_cast<int>(Tile::kN)].Abs();
      } else {
        exact_area[i] = exact.signed_sum[i].Abs();
      }
      exact_total = exact_total + exact_area[i];
    }
    ASSERT_EQ(Compare(exact_total, ExactArea(primary.polygons()[0])), 0)
        << "oracle self-check failed on attempt " << attempts;

    // Both float pipelines against ground truth, within the derived bound.
    CdrScratch scratch;
    const CdrPercentComputation soa =
        ComputeCdrPercentUnchecked(primary, mbb, &scratch);
    const Region reference(Polygon({{mbb.min_x(), mbb.min_y()},
                                    {mbb.min_x(), mbb.max_y()},
                                    {mbb.max_x(), mbb.max_y()},
                                    {mbb.max_x(), mbb.min_y()}}));
    const CdrPercentComputation scalar =
        ComputeCdrPercentScalar(primary, reference);

    const double bound =
        128.0 * static_cast<double>(exact.pieces + 4) * kEps * c2;
    for (Tile t : kAllTiles) {
      const int i = static_cast<int>(t);
      const double truth = exact_area[i].ToDouble();
      EXPECT_NEAR(soa.tile_areas[i], truth, bound)
          << "SoA tile " << i << ", attempt " << attempts;
      EXPECT_NEAR(scalar.tile_areas[i], truth, bound)
          << "scalar tile " << i << ", attempt " << attempts;
    }
    ++tested;
  }
  // The generator must actually deliver the promised volume of crossing
  // pairs — a silent collapse to a handful of instances would gut the
  // oracle without failing it.
  EXPECT_GE(tested, 1000) << "generator rejected too many instances";
}

TEST(ExactCdrOracleTest, BigRatArithmeticSanity) {
  // 1/3 + 1/6 == 1/2 without reduction.
  const BigRat a(BigInt(1), BigInt(3));
  const BigRat b(BigInt(1), BigInt(6));
  EXPECT_EQ(Compare(a + b, BigRat(BigInt(1), BigInt(2))), 0);
  // (-5/4) · (2/3) == -5/6; Abs flips the sign.
  const BigRat c = BigRat(BigInt(-5), BigInt(4)) * BigRat(BigInt(2), BigInt(3));
  EXPECT_EQ(Compare(c, BigRat(BigInt(-5), BigInt(6))), 0);
  EXPECT_EQ(Compare(c.Abs(), BigRat(BigInt(5), BigInt(6))), 0);
  // Negative denominators normalise at construction.
  EXPECT_EQ(
      Compare(BigRat(BigInt(3), BigInt(-2)), BigRat(BigInt(-3), BigInt(2))),
      0);
  EXPECT_EQ(BigRat(BigInt(-3), BigInt(2)).ToDouble(), -1.5);
  // Multi-limb carries: (2^64 + 1)^2 == 2^128 + 2^65 + 1.
  const BigInt two_64 = BigInt(int64_t{1} << 62) * BigInt(4);
  const BigInt v = two_64 + BigInt(1);
  const BigInt expect = two_64 * two_64 + two_64 * BigInt(2) + BigInt(1);
  EXPECT_EQ(Compare(v * v, expect), 0);
  EXPECT_TRUE((v * v - expect).IsZero());
  // TopMantissa round-trips a multi-limb power of two.
  const BigRat big(two_64 * two_64, BigInt(1));
  EXPECT_EQ(big.ToDouble(), std::ldexp(1.0, 128));
}

}  // namespace
}  // namespace cardir
