// A third oracle, independent of both the edge-division implementation and
// the clipping baseline: Monte-Carlo sampling against Definition 1 itself.
// Points sampled uniformly from the primary region are classified into the
// reference's tiles; the hit histogram must (a) only touch tiles of the
// Compute-CDR relation and (b) approximate the Compute-CDR% percentages
// within statistical tolerance.

#include <gtest/gtest.h>

#include <cmath>

#include "core/compute_cdr.h"
#include "core/compute_cdr_percent.h"
#include "properties/random_instances.h"

namespace cardir {
namespace {

// Uniform sample from `region` by rejection from its bounding box.
Point SampleFromRegion(Rng* rng, const Region& region) {
  const Box box = region.BoundingBox();
  for (;;) {
    const Point candidate(rng->NextDouble(box.min_x(), box.max_x()),
                          rng->NextDouble(box.min_y(), box.max_y()));
    if (region.Contains(candidate)) return candidate;
  }
}

class MonteCarloOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MonteCarloOracleTest, SampledTilesLieWithinTheRelation) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const Region a = RandomTestRegion(&rng);
    const Region b = RandomTestRegion(&rng);
    const CardinalRelation relation = *ComputeCdr(a, b);
    const Box mbb = b.BoundingBox();
    for (int s = 0; s < 400; ++s) {
      const Point p = SampleFromRegion(&rng, a);
      // Points exactly on a tile line belong to several closed tiles;
      // ClassifyPoint resolves toward the middle, which is always sound
      // here because a sampled interior point on a line means a has area
      // on at least one side.
      const Tile tile = ClassifyPoint(p, mbb);
      // Accept when the resolved tile or any closed tile containing p is
      // in the relation (line cases).
      bool ok = relation.Includes(tile);
      if (!ok) {
        for (Tile t : kAllTiles) {
          // p is in closed tile t iff classification of a point nudged
          // towards t's quadrant stays t; simpler: test via tile bounds.
          const TileColumn col = ColumnOf(t);
          const TileRow row = RowOf(t);
          const bool x_ok =
              (col == TileColumn::kWest && p.x <= mbb.min_x()) ||
              (col == TileColumn::kMiddle && p.x >= mbb.min_x() &&
               p.x <= mbb.max_x()) ||
              (col == TileColumn::kEast && p.x >= mbb.max_x());
          const bool y_ok =
              (row == TileRow::kSouth && p.y <= mbb.min_y()) ||
              (row == TileRow::kMiddle && p.y >= mbb.min_y() &&
               p.y <= mbb.max_y()) ||
              (row == TileRow::kNorth && p.y >= mbb.max_y());
          if (x_ok && y_ok && relation.Includes(t)) {
            ok = true;
            break;
          }
        }
      }
      EXPECT_TRUE(ok) << "trial " << trial << ": sampled point " << p
                      << " lies in tile " << tile << " outside relation "
                      << relation.ToString();
    }
  }
}

TEST_P(MonteCarloOracleTest, SampledHistogramMatchesPercentages) {
  Rng rng(GetParam() * 131 + 17);
  for (int trial = 0; trial < 5; ++trial) {
    const Region a = RandomTestRegion(&rng);
    const Region b = RandomTestRegion(&rng);
    const PercentageMatrix matrix = *ComputeCdrPercent(a, b);
    const Box mbb = b.BoundingBox();
    constexpr int kSamples = 4000;
    std::array<int, kNumTiles> hits{};
    for (int s = 0; s < kSamples; ++s) {
      ++hits[static_cast<int>(ClassifyPoint(SampleFromRegion(&rng, a), mbb))];
    }
    for (Tile t : kAllTiles) {
      const double expected = matrix.at(t) / 100.0;
      const double observed =
          static_cast<double>(hits[static_cast<int>(t)]) / kSamples;
      // 4.5-sigma binomial tolerance plus an absolute floor: deterministic
      // seeds keep this stable.
      const double sigma =
          std::sqrt(std::max(expected * (1.0 - expected), 1e-4) / kSamples);
      EXPECT_NEAR(observed, expected, 4.5 * sigma + 0.005)
          << "trial " << trial << " tile " << TileName(t);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonteCarloOracleTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace cardir
