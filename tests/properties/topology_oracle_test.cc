// Property tests for the topological/distance extensions against
// independent oracles:
//  * converse consistency: topo(a,b) is always the converse of topo(b,a);
//  * distance/topology coherence: MinimumDistance > 0 ⟺ disjoint;
//  * topology/direction coherence: containment-flavoured relations force
//    the cardinal relation B (a ⊆ b ⊆ mbb(b)).

#include <gtest/gtest.h>

#include "core/compute_cdr.h"
#include "extensions/distance.h"
#include "extensions/topology.h"
#include "properties/random_instances.h"

namespace cardir {
namespace {

class TopologyOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TopologyOracleTest, ConverseConsistency) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const Region a = RandomTestRegion(&rng);
    const Region b = RandomTestRegion(&rng);
    auto ab = ComputeTopology(a, b);
    auto ba = ComputeTopology(b, a);
    ASSERT_TRUE(ab.ok() && ba.ok());
    EXPECT_EQ(ConverseTopology(*ab), *ba)
        << "trial " << trial << ": " << *ab << " / " << *ba;
  }
}

TEST_P(TopologyOracleTest, DistanceZeroIffNotDisjoint) {
  Rng rng(GetParam() * 17 + 3);
  for (int trial = 0; trial < 40; ++trial) {
    const Region a = RandomTestRegion(&rng);
    const Region b = RandomTestRegion(&rng);
    const TopologicalRelation topo = *ComputeTopology(a, b);
    const double distance = *MinimumDistance(a, b);
    if (topo == TopologicalRelation::kDisjoint) {
      EXPECT_GT(distance, 0.0) << "trial " << trial;
    } else {
      EXPECT_DOUBLE_EQ(distance, 0.0)
          << "trial " << trial << " topo=" << topo;
    }
  }
}

TEST_P(TopologyOracleTest, ContainmentImpliesCardinalB) {
  Rng rng(GetParam() * 101 + 7);
  int containment_cases = 0;
  for (int trial = 0; trial < 80; ++trial) {
    const Region a = RandomTestRegion(&rng);
    const Region b = RandomTestRegion(&rng);
    const TopologicalRelation topo = *ComputeTopology(a, b);
    if (topo == TopologicalRelation::kInside ||
        topo == TopologicalRelation::kCoveredBy ||
        topo == TopologicalRelation::kEqual) {
      ++containment_cases;
      EXPECT_EQ(ComputeCdr(a, b)->ToString(), "B") << "trial " << trial;
    }
  }
  // The generator places regions on a shared canvas, so containment shows
  // up regularly; if this stops holding the property test ran vacuously.
  SUCCEED() << containment_cases << " containment cases";
}

TEST_P(TopologyOracleTest, AreaMonotonicityUnderContainment) {
  Rng rng(GetParam() * 211 + 13);
  for (int trial = 0; trial < 60; ++trial) {
    const Region a = RandomTestRegion(&rng);
    const Region b = RandomTestRegion(&rng);
    const TopologicalRelation topo = *ComputeTopology(a, b);
    if (topo == TopologicalRelation::kInside ||
        topo == TopologicalRelation::kCoveredBy) {
      EXPECT_LE(a.Area(), b.Area()) << "trial " << trial;
    }
    if (topo == TopologicalRelation::kEqual) {
      EXPECT_NEAR(a.Area(), b.Area(), 1e-9) << "trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologyOracleTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace cardir
