// Property test E8 (DESIGN.md): the geometric relation pair (R1, R2) of two
// random regions always satisfies the §2 mutual-inverse characterisation:
// R2 ∈ Inverse(R1) and R1 ∈ Inverse(R2).

#include <gtest/gtest.h>

#include "core/relation_pair.h"
#include "properties/random_instances.h"
#include "reasoning/constraint_network.h"
#include "reasoning/inverse.h"

namespace cardir {
namespace {

class InverseOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InverseOracleTest, GeometricPairsSatisfyTheInverse) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    const Region a = RandomTestRegion(&rng);
    const Region b = RandomTestRegion(&rng);
    auto pair = ComputeRelationPair(a, b);
    ASSERT_TRUE(pair.ok());
    EXPECT_TRUE(Inverse(pair->a_to_b).Contains(pair->b_to_a))
        << "trial " << trial << ": " << *pair;
    EXPECT_TRUE(Inverse(pair->b_to_a).Contains(pair->a_to_b))
        << "trial " << trial << ": " << *pair;
    EXPECT_TRUE(IsValidRelationPair(pair->a_to_b, pair->b_to_a));
  }
}

TEST_P(InverseOracleTest, InverseMembersAreRealizableByConstruction) {
  // For random basic relations R, every S ∈ Inverse(R) must itself have R
  // in its inverse — the model-search table is internally consistent.
  Rng rng(GetParam() * 97 + 13);
  for (int trial = 0; trial < 50; ++trial) {
    const uint16_t mask = static_cast<uint16_t>(rng.NextInt(1, 511));
    const CardinalRelation r = CardinalRelation::FromMask(mask);
    for (const CardinalRelation& s : Inverse(r).Relations()) {
      ASSERT_TRUE(Inverse(s).Contains(r))
          << r.ToString() << " / " << s.ToString();
    }
  }
}

TEST_P(InverseOracleTest, InverseTableAgreesWithTheConstraintSolver) {
  // Independent engines: S ∈ inv(R) ⟺ the two-variable network
  // {a R b, b S a} admits a model.
  Rng rng(GetParam() * 555 + 3);
  for (int trial = 0; trial < 20; ++trial) {
    const CardinalRelation r =
        CardinalRelation::FromMask(static_cast<uint16_t>(rng.NextInt(1, 511)));
    const CardinalRelation s =
        CardinalRelation::FromMask(static_cast<uint16_t>(rng.NextInt(1, 511)));
    ConstraintNetwork network;
    const int a = network.AddVariable("a");
    const int b = network.AddVariable("b");
    ASSERT_TRUE(network.AddConstraint(a, b, r).ok());
    ASSERT_TRUE(network.AddConstraint(b, a, s).ok());
    EXPECT_EQ(network.Solve().ok(), Inverse(r).Contains(s))
        << r.ToString() << " / " << s.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InverseOracleTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace cardir
