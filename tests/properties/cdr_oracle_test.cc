// Property test E6 (DESIGN.md): on random REG* pairs, the paper's
// Compute-CDR algorithm agrees with the independent clipping-based oracle,
// and its edge-division instrumentation obeys the structural bounds of §3.1.

#include <gtest/gtest.h>

#include "clipping/baseline_cdr.h"
#include "core/compute_cdr.h"
#include "properties/random_instances.h"

namespace cardir {
namespace {

class CdrOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CdrOracleTest, ComputeCdrMatchesClippingOracle) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const Region a = RandomTestRegion(&rng);
    const Region b = RandomTestRegion(&rng);
    auto fast = ComputeCdrDetailed(a, b);
    ASSERT_TRUE(fast.ok()) << fast.status();
    auto slow = BaselineCdrDetailed(a, b);
    ASSERT_TRUE(slow.ok()) << slow.status();
    EXPECT_EQ(fast->relation, slow->relation)
        << "trial " << trial << ": Compute-CDR says "
        << fast->relation.ToString() << ", clipping says "
        << slow->relation.ToString();
  }
}

TEST_P(CdrOracleTest, EdgeDivisionBounds) {
  Rng rng(GetParam() * 7919 + 1);
  for (int trial = 0; trial < 40; ++trial) {
    const Region a = RandomTestRegion(&rng);
    const Region b = RandomTestRegion(&rng);
    auto result = ComputeCdrDetailed(a, b);
    ASSERT_TRUE(result.ok());
    // Each edge splits into at most 5 pieces (4 crossings), never fewer
    // than one per non-degenerate edge.
    EXPECT_GE(result->output_edges, result->input_edges);
    EXPECT_LE(result->output_edges, 5 * result->input_edges);
  }
}

TEST_P(CdrOracleTest, ComputeCdrIntroducesFewerEdgesThanClipping) {
  // The paper's §3.1 claim. Clipping can only tie when the region barely
  // interacts with the tile lines, so compare with ≤.
  Rng rng(GetParam() * 104729 + 3);
  size_t fast_total = 0;
  size_t slow_total = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const Region a = RandomTestRegion(&rng);
    const Region b = RandomTestRegion(&rng);
    fast_total += ComputeCdrDetailed(a, b)->output_edges;
    slow_total += BaselineCdrDetailed(a, b)->output_edges;
  }
  EXPECT_LT(fast_total, slow_total);
}

TEST_P(CdrOracleTest, SymmetricPairIsMutuallyCompatible) {
  // Definiteness: both directions are single basic relations, and swapping
  // the arguments never yields the empty relation.
  Rng rng(GetParam() * 31 + 17);
  for (int trial = 0; trial < 40; ++trial) {
    const Region a = RandomTestRegion(&rng);
    const Region b = RandomTestRegion(&rng);
    auto ab = ComputeCdr(a, b);
    auto ba = ComputeCdr(b, a);
    ASSERT_TRUE(ab.ok() && ba.ok());
    EXPECT_FALSE(ab->IsEmpty());
    EXPECT_FALSE(ba->IsEmpty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdrOracleTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace cardir
