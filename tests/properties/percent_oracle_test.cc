// Property test E7 (DESIGN.md): Compute-CDR% agrees with the clipping-based
// area oracle, percentages sum to 100, and the per-tile areas reconstruct
// the region's total area.

#include <gtest/gtest.h>

#include "clipping/baseline_cdr.h"
#include "core/compute_cdr.h"
#include "core/compute_cdr_percent.h"
#include "properties/random_instances.h"

namespace cardir {
namespace {

class PercentOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PercentOracleTest, MatchesClippingOracle) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    const Region a = RandomTestRegion(&rng);
    const Region b = RandomTestRegion(&rng);
    auto fast = ComputeCdrPercent(a, b);
    auto slow = BaselineCdrPercent(a, b);
    ASSERT_TRUE(fast.ok() && slow.ok());
    EXPECT_TRUE(fast->ApproxEquals(*slow, 1e-6))
        << "trial " << trial << "\nfast:\n" << *fast << "\nslow:\n" << *slow;
  }
}

TEST_P(PercentOracleTest, PercentagesSumToOneHundred) {
  Rng rng(GetParam() * 13 + 5);
  for (int trial = 0; trial < 30; ++trial) {
    const Region a = RandomTestRegion(&rng);
    const Region b = RandomTestRegion(&rng);
    auto result = ComputeCdrPercent(a, b);
    ASSERT_TRUE(result.ok());
    EXPECT_NEAR(result->Total(), 100.0, 1e-6);
    for (Tile t : kAllTiles) EXPECT_GE(result->at(t), 0.0) << TileName(t);
  }
}

TEST_P(PercentOracleTest, TileAreasReconstructRegionArea) {
  // Theorem-2 level sanity: the nine tile areas partition area(a).
  Rng rng(GetParam() * 101 + 7);
  for (int trial = 0; trial < 30; ++trial) {
    const Region a = RandomTestRegion(&rng);
    const Region b = RandomTestRegion(&rng);
    auto result = ComputeCdrPercentDetailed(a, b);
    ASSERT_TRUE(result.ok());
    EXPECT_NEAR(result->total_area, a.Area(),
                1e-9 * std::max(1.0, a.Area()))
        << "trial " << trial;
  }
}

TEST_P(PercentOracleTest, PositiveTilesAgreeWithQualitativeRelation) {
  // Every tile with positive percentage must be in the Compute-CDR
  // relation; the relation may additionally contain measure-zero tiles.
  Rng rng(GetParam() * 211 + 11);
  for (int trial = 0; trial < 30; ++trial) {
    const Region a = RandomTestRegion(&rng);
    const Region b = RandomTestRegion(&rng);
    const CardinalRelation qualitative = *ComputeCdr(a, b);
    const PercentageMatrix matrix = *ComputeCdrPercent(a, b);
    // Use a relative threshold against accumulated floating-point error.
    const CardinalRelation positive = matrix.ToRelation(1e-9);
    EXPECT_TRUE(positive.IsSubsetOf(qualitative))
        << "trial " << trial << ": " << positive.ToString() << " vs "
        << qualitative.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentOracleTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace cardir
