// Property test E9 (DESIGN.md): constraint networks extracted from real
// region configurations are consistent — algebraic closure never empties a
// constraint, the canonical model realises them, and the realised model
// reproduces the original relations exactly.

#include <gtest/gtest.h>

#include "core/compute_cdr.h"
#include "properties/random_instances.h"
#include "reasoning/constraint_network.h"

namespace cardir {
namespace {

class NetworkOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NetworkOracleTest, NetworksFromRegionsRealize) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<Region> regions;
    const int n = static_cast<int>(rng.NextInt(2, 4));
    for (int i = 0; i < n; ++i) regions.push_back(RandomTestRegion(&rng));

    auto network = ConstraintNetwork::FromRegions(regions);
    ASSERT_TRUE(network.ok()) << network.status();
    auto model = network->RealizeBasic();
    ASSERT_TRUE(model.ok()) << "trial " << trial << ": " << model.status();
    // The realised regions satisfy every constraint exactly.
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        const auto& constraint = network->constraint(i, j);
        ASSERT_TRUE(constraint.has_value());
        auto realised = ComputeCdr(model->regions[static_cast<size_t>(i)],
                                   model->regions[static_cast<size_t>(j)]);
        ASSERT_TRUE(realised.ok());
        EXPECT_TRUE(constraint->Contains(*realised))
            << "trial " << trial << " (" << i << "," << j << "): realised "
            << realised->ToString() << " constraint "
            << constraint->ToString();
      }
    }
  }
}

TEST_P(NetworkOracleTest, ClosureKeepsGeometricNetworksAlive) {
  Rng rng(GetParam() * 53 + 29);
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<Region> regions;
    for (int i = 0; i < 3; ++i) regions.push_back(RandomTestRegion(&rng));
    auto network = ConstraintNetwork::FromRegions(regions);
    ASSERT_TRUE(network.ok());
    EXPECT_TRUE(network->AlgebraicClosure()) << "trial " << trial;
    // After closure the original relations must still be present.
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        if (i == j) continue;
        auto original = ComputeCdr(regions[static_cast<size_t>(i)],
                                   regions[static_cast<size_t>(j)]);
        ASSERT_TRUE(original.ok());
        EXPECT_TRUE(network->constraint(i, j)->Contains(*original));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkOracleTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace cardir
