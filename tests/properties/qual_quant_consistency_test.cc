// Property: Compute-CDR% refines Compute-CDR. Across ≥1000 random REG*
// pairs, the set of tiles carrying a strictly positive percentage must be
// exactly the Compute-CDR tile set whenever the primary meets every tile
// with positive area, and in general a subset of it — the qualitative
// relation may add tiles the primary only touches on a measure-zero
// boundary (closed tiles share their mbb lines, §2), which is why the
// subset direction is the invariant the audit layer enforces.
//
// Runs in the `property` tier of every build and in the `audit` tier of
// the sanitizer presets, so the trapezoid accumulation behind the
// percentages gets UBSan/ASan (and, via the engine tier, TSan) coverage.

#include "core/compute_cdr.h"
#include "core/compute_cdr_percent.h"
#include "core/percentage_matrix.h"
#include "geometry/region.h"
#include "gtest/gtest.h"
#include "properties/random_instances.h"
#include "util/random.h"

namespace cardir {
namespace {

TEST(QualQuantConsistencyTest, NonzeroPercentTilesMatchComputeCdr) {
  Rng rng(20260806);
  int exact_matches = 0;
  const int kPairs = 1000;
  for (int iteration = 0; iteration < kPairs; ++iteration) {
    const Region primary = RandomTestRegion(&rng);
    const Region reference = RandomTestRegion(&rng);

    const auto qualitative = ComputeCdr(primary, reference);
    ASSERT_TRUE(qualitative.ok()) << qualitative.status();
    const auto percent = ComputeCdrPercent(primary, reference);
    ASSERT_TRUE(percent.ok()) << percent.status();

    const CardinalRelation nonzero = percent->ToRelation(0.0);
    ASSERT_TRUE(nonzero.IsSubsetOf(*qualitative))
        << "iteration " << iteration << ": tiles with positive area "
        << nonzero.ToString() << " not all in Compute-CDR relation "
        << qualitative->ToString() << "\n"
        << percent->ToString();
    // Tiles Compute-CDR reports beyond the nonzero set may only be
    // boundary contacts: their percentage must be (numerically) zero.
    for (Tile t : qualitative->Tiles()) {
      if (nonzero.Includes(t)) continue;
      ASSERT_EQ(percent->at(t), 0.0)
          << "iteration " << iteration << ": tile " << TileName(t)
          << " is in the qualitative relation with a percentage that is "
             "neither zero nor counted as positive";
    }
    if (nonzero == *qualitative) ++exact_matches;
  }
  // Random continuous placement makes boundary-only contact rare: almost
  // every pair must agree exactly, not merely by inclusion.
  EXPECT_GE(exact_matches, kPairs * 95 / 100);
}

}  // namespace
}  // namespace cardir
