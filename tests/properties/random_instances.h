// Shared random-instance generation for the oracle property tests: pairs
// and triples of REG* regions of varied shape classes (convex, star,
// rectangle, composite, ring) placed so that relations of every flavour
// (overlapping, nested, disjoint, surrounding) occur.

#ifndef CARDIR_TESTS_PROPERTIES_RANDOM_INSTANCES_H_
#define CARDIR_TESTS_PROPERTIES_RANDOM_INSTANCES_H_

#include <vector>

#include "geometry/region.h"
#include "util/random.h"
#include "workload/region_gen.h"

namespace cardir {

// A random region whose bounding area is itself randomly placed on a
// 200×200 canvas, so pairs overlap, nest or stand apart by chance.
inline Region RandomTestRegion(Rng* rng) {
  const double size = rng->NextDouble(20.0, 120.0);
  const double x = rng->NextDouble(0.0, 200.0 - size);
  const double y = rng->NextDouble(0.0, 200.0 - size);
  const Box bounds(x, y, x + size, y + size);
  switch (rng->NextBelow(5)) {
    case 0: {
      RegionGenOptions options;
      options.num_polygons = 1;
      options.vertices_per_polygon = static_cast<int>(rng->NextInt(3, 12));
      options.kind = PolygonKind::kConvex;
      options.bounds = bounds;
      return RandomRegion(rng, options);
    }
    case 1: {
      RegionGenOptions options;
      options.num_polygons = 1;
      options.vertices_per_polygon = static_cast<int>(rng->NextInt(4, 24));
      options.kind = PolygonKind::kStar;
      options.bounds = bounds;
      return RandomRegion(rng, options);
    }
    case 2: {
      RegionGenOptions options;
      options.num_polygons = static_cast<int>(rng->NextInt(2, 5));
      options.vertices_per_polygon = static_cast<int>(rng->NextInt(3, 10));
      options.kind = rng->NextBool() ? PolygonKind::kStar
                                     : PolygonKind::kConvex;
      options.bounds = bounds;
      return RandomRegion(rng, options);
    }
    case 3:
      return RandomRingRegion(rng, bounds);
    default: {
      RegionGenOptions options;
      options.num_polygons = 1;
      options.kind = PolygonKind::kRectangle;
      options.bounds = bounds;
      return RandomRegion(rng, options);
    }
  }
}

}  // namespace cardir

#endif  // CARDIR_TESTS_PROPERTIES_RANDOM_INSTANCES_H_
