// Geometric invariance properties of the paper's relations: cardinal
// direction relations (with and without percentages) are invariant under
// translation and uniform positive scaling of the plane, and the relation
// of a region to itself is always B with a 100% B matrix.

#include <gtest/gtest.h>

#include "core/compute_cdr.h"
#include "core/compute_cdr_percent.h"
#include "properties/random_instances.h"

namespace cardir {
namespace {

Region Transform(const Region& region, double scale, const Point& shift) {
  Region out;
  for (const Polygon& polygon : region.polygons()) {
    Polygon moved;
    for (const Point& v : polygon.vertices()) {
      moved.AddVertex(Point(v.x * scale + shift.x, v.y * scale + shift.y));
    }
    out.AddPolygon(std::move(moved));
  }
  return out;
}

class InvarianceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InvarianceTest, TranslationInvariance) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const Region a = RandomTestRegion(&rng);
    const Region b = RandomTestRegion(&rng);
    const Point shift(rng.NextDouble(-500.0, 500.0),
                      rng.NextDouble(-500.0, 500.0));
    const Region a2 = Transform(a, 1.0, shift);
    const Region b2 = Transform(b, 1.0, shift);
    EXPECT_EQ(*ComputeCdr(a, b), *ComputeCdr(a2, b2)) << "trial " << trial;
    EXPECT_TRUE(ComputeCdrPercent(a, b)->ApproxEquals(
        *ComputeCdrPercent(a2, b2), 1e-6))
        << "trial " << trial;
  }
}

TEST_P(InvarianceTest, UniformScalingInvariance) {
  Rng rng(GetParam() * 31 + 7);
  for (int trial = 0; trial < 25; ++trial) {
    const Region a = RandomTestRegion(&rng);
    const Region b = RandomTestRegion(&rng);
    const double scale = rng.NextDouble(0.25, 8.0);
    const Region a2 = Transform(a, scale, Point(0, 0));
    const Region b2 = Transform(b, scale, Point(0, 0));
    EXPECT_EQ(*ComputeCdr(a, b), *ComputeCdr(a2, b2)) << "trial " << trial;
    EXPECT_TRUE(ComputeCdrPercent(a, b)->ApproxEquals(
        *ComputeCdrPercent(a2, b2), 1e-6))
        << "trial " << trial;
  }
}

TEST_P(InvarianceTest, SelfRelationIsAlwaysB) {
  Rng rng(GetParam() * 97 + 11);
  for (int trial = 0; trial < 25; ++trial) {
    const Region a = RandomTestRegion(&rng);
    EXPECT_EQ(ComputeCdr(a, a)->ToString(), "B") << "trial " << trial;
    EXPECT_NEAR(ComputeCdrPercent(a, a)->at(Tile::kB), 100.0, 1e-9);
  }
}

TEST_P(InvarianceTest, PolygonOrderIsIrrelevant) {
  // A region is a *set* of polygons: permuting the representation must not
  // change any relation.
  Rng rng(GetParam() * 211 + 5);
  for (int trial = 0; trial < 15; ++trial) {
    RegionGenOptions options;
    options.num_polygons = 4;
    options.vertices_per_polygon = 6;
    const Region a = RandomRegion(&rng, options);
    const Region b = RandomTestRegion(&rng);
    std::vector<Polygon> shuffled = a.polygons();
    rng.Shuffle(&shuffled);
    const Region permuted(std::move(shuffled));
    EXPECT_EQ(*ComputeCdr(a, b), *ComputeCdr(permuted, b));
    EXPECT_EQ(*ComputeCdr(b, a), *ComputeCdr(b, permuted));
    EXPECT_TRUE(ComputeCdrPercent(a, b)->ApproxEquals(
        *ComputeCdrPercent(permuted, b), 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvarianceTest, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace cardir
