#include "workload/region_gen.h"

#include <gtest/gtest.h>

namespace cardir {
namespace {

TEST(RandomRegionTest, SinglePolygonRegion) {
  Rng rng(1);
  RegionGenOptions options;
  options.num_polygons = 1;
  options.vertices_per_polygon = 10;
  const Region region = RandomRegion(&rng, options);
  EXPECT_EQ(region.polygon_count(), 1u);
  EXPECT_EQ(region.TotalEdges(), 10u);
  EXPECT_TRUE(region.ValidateStrict().ok());
}

class RandomRegionTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomRegionTest, CompositeRegionsAreStrictlyValid) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  RegionGenOptions options;
  options.num_polygons = GetParam();
  options.vertices_per_polygon = 8;
  const Region region = RandomRegion(&rng, options);
  EXPECT_EQ(region.polygon_count(), static_cast<size_t>(GetParam()));
  EXPECT_TRUE(region.ValidateStrict().ok());
  EXPECT_TRUE(Box(0, 0, 100, 100).Contains(region.BoundingBox()));
}

INSTANTIATE_TEST_SUITE_P(PolygonCounts, RandomRegionTest,
                         ::testing::Values(1, 2, 3, 5, 9, 16));

TEST(RandomRegionTest, RespectsPolygonKind) {
  Rng rng(5);
  RegionGenOptions options;
  options.num_polygons = 4;
  options.kind = PolygonKind::kRectangle;
  const Region region = RandomRegion(&rng, options);
  for (const Polygon& p : region.polygons()) EXPECT_EQ(p.size(), 4u);
}

TEST(MakeRingRegionTest, GeometryOfTheFigure2Decomposition) {
  const Region ring = MakeRingRegion(Box(0, 0, 10, 10), Box(4, 4, 6, 6));
  EXPECT_EQ(ring.polygon_count(), 4u);
  EXPECT_DOUBLE_EQ(ring.Area(), 100.0 - 4.0);
  EXPECT_FALSE(ring.Contains(Point(5, 5)));
  EXPECT_TRUE(ring.Contains(Point(5, 1)));
  EXPECT_TRUE(ring.ValidateStrict().ok());
}

TEST(RandomRingRegionTest, ProducesValidRingsWithHoles) {
  Rng rng(13);
  for (int i = 0; i < 20; ++i) {
    const Region ring = RandomRingRegion(&rng, Box(0, 0, 100, 100));
    EXPECT_EQ(ring.polygon_count(), 4u);
    EXPECT_TRUE(ring.ValidateStrict().ok());
    // The mbb centre lies in the hole for a roughly centred ring.
    const Box mbb = ring.BoundingBox();
    EXPECT_LT(ring.Area(), mbb.area());
  }
}

}  // namespace
}  // namespace cardir
