#include "workload/polygon_gen.h"

#include <gtest/gtest.h>

#include "geometry/sweep.h"

namespace cardir {
namespace {

const Box kBounds(0, 0, 100, 100);

TEST(RandomRectangleTest, WithinBoundsAndValid) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const Polygon rect = RandomRectangle(&rng, kBounds);
    EXPECT_EQ(rect.size(), 4u);
    EXPECT_TRUE(rect.IsClockwise());
    EXPECT_TRUE(kBounds.Contains(rect.BoundingBox()));
    EXPECT_TRUE(rect.ValidateSimple().ok());
  }
}

class RandomConvexPolygonTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomConvexPolygonTest, ExactVertexCountSimpleAndClockwise) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int i = 0; i < 10; ++i) {
    const Polygon p = RandomConvexPolygon(&rng, GetParam(), kBounds);
    EXPECT_EQ(p.size(), static_cast<size_t>(GetParam()));
    EXPECT_TRUE(p.IsClockwise());
    EXPECT_TRUE(p.ValidateSimple().ok());
    EXPECT_TRUE(kBounds.Contains(p.BoundingBox()));
  }
}

INSTANTIATE_TEST_SUITE_P(VertexCounts, RandomConvexPolygonTest,
                         ::testing::Values(3, 4, 5, 8, 16, 32, 64));

TEST(RandomConvexPolygonTest, ResultIsConvex) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const Polygon p = RandomConvexPolygon(&rng, 12, kBounds);
    // Every turn of a clockwise convex ring is non-left.
    const size_t n = p.size();
    for (size_t i = 0; i < n; ++i) {
      const double turn = Orient2D(p.vertex(i), p.vertex((i + 1) % n),
                                   p.vertex((i + 2) % n));
      EXPECT_LE(turn, 1e-9) << "trial " << trial << " corner " << i;
    }
  }
}

class RandomStarPolygonTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomStarPolygonTest, ExactVertexCountSimpleAndClockwise) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 1);
  const Polygon p = RandomStarPolygon(&rng, GetParam(), kBounds);
  EXPECT_EQ(p.size(), static_cast<size_t>(GetParam()));
  EXPECT_TRUE(p.IsClockwise());
  EXPECT_TRUE(kBounds.Contains(p.BoundingBox()));
  if (GetParam() <= 128) {  // Quadratic reference on modest sizes.
    EXPECT_TRUE(p.ValidateSimple().ok());
  } else {  // Sweep-line check scales to the large instances.
    EXPECT_TRUE(ValidatePolygonSimpleSweep(p).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(VertexCounts, RandomStarPolygonTest,
                         ::testing::Values(3, 4, 7, 16, 64, 128, 1024));

TEST(RandomStarPolygonTest, ContainsItsCenter) {
  Rng rng(9);
  const Polygon p = RandomStarPolygon(&rng, 16, kBounds);
  EXPECT_TRUE(p.Contains(kBounds.Center()));
}

TEST(RandomPolygonTest, DispatchesOnKind) {
  Rng rng(11);
  EXPECT_EQ(RandomPolygon(&rng, PolygonKind::kRectangle, 99, kBounds).size(),
            4u);
  EXPECT_EQ(RandomPolygon(&rng, PolygonKind::kConvex, 7, kBounds).size(), 7u);
  EXPECT_EQ(RandomPolygon(&rng, PolygonKind::kStar, 9, kBounds).size(), 9u);
}

TEST(PolygonGenTest, DeterministicAcrossRuns) {
  Rng rng1(42);
  Rng rng2(42);
  EXPECT_EQ(RandomStarPolygon(&rng1, 10, kBounds),
            RandomStarPolygon(&rng2, 10, kBounds));
}

}  // namespace
}  // namespace cardir
