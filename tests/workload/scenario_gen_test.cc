#include "workload/scenario_gen.h"

#include <gtest/gtest.h>

namespace cardir {
namespace {

TEST(ScenarioGenTest, GeneratesRequestedRegions) {
  Rng rng(1);
  ScenarioOptions options;
  options.num_regions = 9;
  auto config = GenerateMapConfiguration(&rng, options);
  ASSERT_TRUE(config.ok()) << config.status();
  EXPECT_EQ(config->regions().size(), 9u);
  for (const AnnotatedRegion& region : config->regions()) {
    EXPECT_TRUE(region.geometry.ValidateStrict().ok()) << region.id;
  }
}

TEST(ScenarioGenTest, ComputesAllPairwiseRelations) {
  Rng rng(2);
  ScenarioOptions options;
  options.num_regions = 6;
  auto config = GenerateMapConfiguration(&rng, options);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->relation_count(), 6u * 5u);
}

TEST(ScenarioGenTest, CanSkipRelationComputation) {
  Rng rng(3);
  ScenarioOptions options;
  options.num_regions = 4;
  options.compute_relations = false;
  auto config = GenerateMapConfiguration(&rng, options);
  ASSERT_TRUE(config.ok());
  EXPECT_FALSE(config->has_relations());
}

TEST(ScenarioGenTest, CyclesColorPalette) {
  Rng rng(4);
  ScenarioOptions options;
  options.num_regions = 5;
  options.colors = {"red", "blue"};
  auto config = GenerateMapConfiguration(&rng, options);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->regions()[0].color, "red");
  EXPECT_EQ(config->regions()[1].color, "blue");
  EXPECT_EQ(config->regions()[2].color, "red");
  EXPECT_EQ(config->RegionsByColor("red").size(), 3u);
}

TEST(ScenarioGenTest, CompositeRegions) {
  Rng rng(5);
  ScenarioOptions options;
  options.num_regions = 4;
  options.polygons_per_region = 3;
  auto config = GenerateMapConfiguration(&rng, options);
  ASSERT_TRUE(config.ok());
  for (const AnnotatedRegion& region : config->regions()) {
    EXPECT_EQ(region.geometry.polygon_count(), 3u);
  }
}

TEST(ScenarioGenTest, RegionsDoNotOverlapAcrossCells) {
  Rng rng(6);
  ScenarioOptions options;
  options.num_regions = 9;
  auto config = GenerateMapConfiguration(&rng, options);
  ASSERT_TRUE(config.ok());
  // Bounding boxes of distinct regions are disjoint by the grid layout.
  const auto& regions = config->regions();
  for (size_t i = 0; i < regions.size(); ++i) {
    for (size_t j = i + 1; j < regions.size(); ++j) {
      EXPECT_FALSE(regions[i].geometry.BoundingBox().Intersects(
          regions[j].geometry.BoundingBox()))
          << regions[i].id << " vs " << regions[j].id;
    }
  }
}

}  // namespace
}  // namespace cardir
