#include "clipping/baseline_cdr.h"

#include <gtest/gtest.h>

namespace cardir {
namespace {

Region ReferenceB() { return Region(MakeRectangle(0, 0, 10, 10)); }

TEST(BaselineCdrTest, AgreesWithComputeCdrOnPaperExamples) {
  const Region s_region(MakeRectangle(2, -6, 8, -2));
  EXPECT_EQ(BaselineCdr(s_region, ReferenceB())->ToString(), "S");

  const Region c(MakeRectangle(12, 4, 18, 16));
  EXPECT_EQ(BaselineCdr(c, ReferenceB())->ToString(), "NE:E");

  const Region quad(Polygon(
      {Point(-4, 8), Point(-2, 14), Point(-1, 18), Point(20, 11)}));
  EXPECT_EQ(BaselineCdr(quad, ReferenceB())->ToString(), "B:W:NW:N:NE:E");
}

TEST(BaselineCdrTest, SwallowingRegionCoversAllTiles) {
  // Unlike Compute-CDR, the baseline needs no special centre test: the
  // B-tile clip itself is non-empty.
  const Region a(MakeRectangle(-10, -10, 20, 20));
  EXPECT_EQ(BaselineCdr(a, ReferenceB())->ToString(),
            "B:S:SW:W:NW:N:NE:E:SE");
}

TEST(BaselineCdrTest, TouchingRegionYieldsNoSpuriousTile) {
  const Region a(MakeRectangle(10, 2, 16, 8));
  EXPECT_EQ(BaselineCdr(a, ReferenceB())->ToString(), "E");
}

TEST(BaselineCdrPercentTest, MatchesHandComputedAreas) {
  const Region a(MakeRectangle(-5, -5, 5, 5));
  auto result = BaselineCdrPercentDetailed(a, ReferenceB());
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->matrix.at(Tile::kSW), 25.0, 1e-9);
  EXPECT_NEAR(result->matrix.at(Tile::kS), 25.0, 1e-9);
  EXPECT_NEAR(result->matrix.at(Tile::kW), 25.0, 1e-9);
  EXPECT_NEAR(result->matrix.at(Tile::kB), 25.0, 1e-9);
  EXPECT_NEAR(result->total_area, 100.0, 1e-9);
}

TEST(BaselineCdrPercentTest, AgreesWithComputeCdrPercent) {
  const Region a(Polygon({Point(-5, -3), Point(4, 18), Point(15, 13),
                          Point(12, -6)}));
  const PercentageMatrix fast = *ComputeCdrPercent(a, ReferenceB());
  const PercentageMatrix slow = *BaselineCdrPercent(a, ReferenceB());
  EXPECT_TRUE(fast.ApproxEquals(slow, 1e-9))
      << "fast:\n" << fast << "\nslow:\n" << slow;
}

TEST(BaselineCdrTest, InstrumentationReportsEdgeInflation) {
  const Region a(MakeRectangle(-5, -5, 5, 5));
  auto result = BaselineCdrDetailed(a, ReferenceB());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->input_edges, 4u);
  EXPECT_EQ(result->output_edges, 16u);  // Fig. 3b: 4 quadrangles.
}

TEST(BaselineCdrTest, ValidationErrorsPropagate) {
  EXPECT_FALSE(BaselineCdr(Region(), ReferenceB()).ok());
  EXPECT_FALSE(BaselineCdrPercent(ReferenceB(), Region()).ok());
}

}  // namespace
}  // namespace cardir
