#include "clipping/half_plane.h"

#include <gtest/gtest.h>

namespace cardir {
namespace {

TEST(HalfPlaneTest, FactoriesAndContainment) {
  EXPECT_TRUE(HalfPlane::XAtMost(5).Contains(Point(4, 100)));
  EXPECT_TRUE(HalfPlane::XAtMost(5).Contains(Point(5, 0)));  // Closed.
  EXPECT_FALSE(HalfPlane::XAtMost(5).Contains(Point(6, 0)));
  EXPECT_TRUE(HalfPlane::XAtLeast(5).Contains(Point(6, 0)));
  EXPECT_TRUE(HalfPlane::YAtMost(2).Contains(Point(9, 2)));
  EXPECT_TRUE(HalfPlane::YAtLeast(2).Contains(Point(9, 2)));
  EXPECT_FALSE(HalfPlane::YAtLeast(2).Contains(Point(9, 1)));
}

TEST(HalfPlaneTest, EvaluateSign) {
  const HalfPlane h = HalfPlane::XAtMost(3);
  EXPECT_GT(h.Evaluate(Point(1, 0)), 0.0);
  EXPECT_EQ(h.Evaluate(Point(3, 7)), 0.0);
  EXPECT_LT(h.Evaluate(Point(4, 0)), 0.0);
}

TEST(ClipRingTest, SquareClippedByVerticalLine) {
  const std::vector<Point> square = {Point(0, 2), Point(2, 2), Point(2, 0),
                                     Point(0, 0)};
  const std::vector<Point> clipped =
      ClipRingByHalfPlane(square, HalfPlane::XAtMost(1));
  Polygon result(clipped);
  EXPECT_DOUBLE_EQ(result.Area(), 2.0);
  EXPECT_EQ(result.BoundingBox(), Box(0, 0, 1, 2));
}

TEST(ClipRingTest, FullyInsideIsUnchanged) {
  const std::vector<Point> square = {Point(0, 1), Point(1, 1), Point(1, 0),
                                     Point(0, 0)};
  EXPECT_EQ(ClipRingByHalfPlane(square, HalfPlane::XAtMost(5)), square);
}

TEST(ClipRingTest, FullyOutsideIsEmpty) {
  const std::vector<Point> square = {Point(3, 1), Point(4, 1), Point(4, 0),
                                     Point(3, 0)};
  EXPECT_TRUE(ClipRingByHalfPlane(square, HalfPlane::XAtMost(2)).empty());
}

TEST(ClipRingTest, IntersectionPointsAreSnappedToTheLine) {
  const std::vector<Point> triangle = {Point(0, 0), Point(9, 3), Point(9, 0)};
  const std::vector<Point> clipped =
      ClipRingByHalfPlane(triangle, HalfPlane::XAtMost(3));
  for (const Point& p : clipped) EXPECT_LE(p.x, 3.0);
  bool has_on_line = false;
  for (const Point& p : clipped) has_on_line |= (p.x == 3.0);
  EXPECT_TRUE(has_on_line);
}

TEST(ClipRingTest, TouchingVertexDoesNotDuplicate) {
  // Triangle touching the clip boundary at one vertex, rest inside.
  const std::vector<Point> triangle = {Point(0, 0), Point(2, 2), Point(4, 0)};
  const std::vector<Point> clipped =
      ClipRingByHalfPlane(triangle, HalfPlane::YAtMost(2));
  EXPECT_EQ(clipped.size(), 3u);
}

}  // namespace
}  // namespace cardir
