#include "clipping/sutherland_hodgman.h"

#include <gtest/gtest.h>

namespace cardir {
namespace {

TEST(SutherlandHodgmanTest, ClipToBoxBasic) {
  const Polygon big = MakeRectangle(-5, -5, 15, 15);
  const Polygon clipped = ClipPolygonToBox(big, Box(0, 0, 10, 10));
  EXPECT_DOUBLE_EQ(clipped.Area(), 100.0);
  EXPECT_EQ(clipped.BoundingBox(), Box(0, 0, 10, 10));
}

TEST(SutherlandHodgmanTest, DisjointYieldsEmpty) {
  const Polygon square = MakeRectangle(20, 20, 30, 30);
  EXPECT_TRUE(ClipPolygonToBox(square, Box(0, 0, 10, 10)).empty());
}

TEST(SutherlandHodgmanTest, TriangleCornerClip) {
  // Right triangle (0,0)-(4,0)-(0,4) clipped to [0,2]²: a square corner cut
  // by the hypotenuse x + y = 4 — the whole [0,2]² is inside the triangle.
  Polygon tri({Point(0, 0), Point(0, 4), Point(4, 0)});
  tri.EnsureClockwise();
  const Polygon clipped = ClipPolygonToBox(tri, Box(0, 0, 2, 2));
  EXPECT_DOUBLE_EQ(clipped.Area(), 4.0);
}

TEST(SutherlandHodgmanTest, HypotenuseCutsTheBox) {
  // Same triangle clipped to [1,3]²: pentagon-ish piece of area
  // box ∩ {x+y ≤ 4} = 4 − ½·2·2/2 ... region inside box with x+y ≤ 4:
  // total 4 minus triangle above the line with legs 2,2 → 4 − 2 = 2.
  Polygon tri({Point(0, 0), Point(0, 4), Point(4, 0)});
  tri.EnsureClockwise();
  const Polygon clipped = ClipPolygonToBox(tri, Box(1, 1, 3, 3));
  EXPECT_DOUBLE_EQ(clipped.Area(), 2.0);
}

TEST(SutherlandHodgmanTest, UnboundedClipRegionSingleHalfPlane) {
  // One half-plane only — the tile-clipping use case for corner tiles.
  const Polygon square = MakeRectangle(0, 0, 4, 4);
  const Polygon west = ClipPolygon(square, {HalfPlane::XAtMost(1)});
  EXPECT_DOUBLE_EQ(west.Area(), 4.0);
  EXPECT_EQ(west.BoundingBox(), Box(0, 0, 1, 4));
}

TEST(SutherlandHodgmanTest, ConcavePolygonAreaIsPreserved) {
  // "U" shape clipped by a half-plane through the arms: SH may emit bridge
  // edges, but the area must be exact.
  Polygon u({Point(0, 0), Point(0, 3), Point(1, 3), Point(1, 1), Point(2, 1),
             Point(2, 3), Point(3, 3), Point(3, 0)});
  u.EnsureClockwise();
  const Polygon clipped = ClipPolygon(u, {HalfPlane::YAtLeast(2)});
  // Above y = 2: two 1×1 arm pieces.
  EXPECT_DOUBLE_EQ(clipped.Area(), 2.0);
}

TEST(SutherlandHodgmanTest, TouchingBoundaryGivesZeroArea) {
  const Polygon square = MakeRectangle(0, 0, 4, 4);
  const Polygon sliver = ClipPolygon(square, {HalfPlane::XAtLeast(4)});
  EXPECT_DOUBLE_EQ(sliver.Area(), 0.0);
}

}  // namespace
}  // namespace cardir
