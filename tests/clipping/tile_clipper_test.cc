#include "clipping/tile_clipper.h"

#include <gtest/gtest.h>

namespace cardir {
namespace {

const Box kMbb(0, 0, 10, 10);

TEST(TileHalfPlanesTest, PlaneCountsPerTileKind) {
  EXPECT_EQ(TileHalfPlanes(Tile::kB, kMbb).size(), 4u);   // Bounded.
  EXPECT_EQ(TileHalfPlanes(Tile::kW, kMbb).size(), 3u);   // Edge tile.
  EXPECT_EQ(TileHalfPlanes(Tile::kN, kMbb).size(), 3u);
  EXPECT_EQ(TileHalfPlanes(Tile::kNW, kMbb).size(), 2u);  // Corner tile.
  EXPECT_EQ(TileHalfPlanes(Tile::kSE, kMbb).size(), 2u);
}

TEST(TileHalfPlanesTest, TilesPartitionThePlane) {
  // Sample points: each strictly-interior tile point is inside exactly one
  // tile's half-plane set.
  const Point samples[] = {Point(5, 5),  Point(5, -3), Point(-3, -3),
                           Point(-3, 5), Point(-3, 13), Point(5, 13),
                           Point(13, 13), Point(13, 5), Point(13, -3)};
  for (int i = 0; i < 9; ++i) {
    int containing = 0;
    for (Tile tile : kAllTiles) {
      bool inside = true;
      for (const HalfPlane& h : TileHalfPlanes(tile, kMbb)) {
        inside &= h.Contains(samples[i]);
      }
      containing += inside;
    }
    EXPECT_EQ(containing, 1) << "sample " << i;
  }
}

TEST(TileClipperTest, PaperFigure3bQuadrangleBecomesSixteenEdges) {
  // §3.1 / Fig. 3a-b: a quadrangle overlapping four tiles is segmented by
  // clipping into 4 quadrangles = 16 edges.
  const Region a(MakeRectangle(-5, -5, 5, 5));  // Covers SW, S, W, B corners.
  const TileDecomposition d = ClipRegionToTiles(a, kMbb);
  EXPECT_EQ(d.input_edges, 4u);
  EXPECT_EQ(d.output_edges, 16u);
  EXPECT_EQ(d.pieces[static_cast<int>(Tile::kSW)].size(), 1u);
  EXPECT_EQ(d.pieces[static_cast<int>(Tile::kB)].size(), 1u);
  EXPECT_EQ(d.pieces[static_cast<int>(Tile::kNE)].size(), 0u);
}

TEST(TileClipperTest, ClippedAreasSumToRegionArea) {
  const Region a(Polygon({Point(-5, -3), Point(4, 18), Point(15, 13),
                          Point(12, -6)}));
  const TileDecomposition d = ClipRegionToTiles(a, kMbb);
  double total = 0.0;
  for (Tile tile : kAllTiles) {
    for (const Polygon& piece : d.pieces[static_cast<int>(tile)]) {
      total += piece.Area();
    }
  }
  EXPECT_NEAR(total, a.Area(), 1e-9);
}

TEST(TileClipperTest, PieceInUnboundedTileStaysBounded) {
  const Region a(MakeRectangle(-20, -20, -12, -12));  // Deep in SW.
  const TileDecomposition d = ClipRegionToTiles(a, kMbb);
  const auto& sw = d.pieces[static_cast<int>(Tile::kSW)];
  ASSERT_EQ(sw.size(), 1u);
  EXPECT_DOUBLE_EQ(sw[0].Area(), 64.0);
}

TEST(TileClipperTest, TouchingRegionProducesNoPiece) {
  // Region touching the east line only: zero-area pieces are dropped.
  const Region a(MakeRectangle(10, 2, 16, 8));
  const TileDecomposition d = ClipRegionToTiles(a, kMbb);
  EXPECT_TRUE(d.pieces[static_cast<int>(Tile::kB)].empty());
  EXPECT_EQ(d.pieces[static_cast<int>(Tile::kE)].size(), 1u);
}

TEST(TileClipperTest, EdgeInflationExceedsComputeCdrs) {
  // The motivating claim of §3: clipping multiplies edges. The Example 3
  // quadrangle gains edges under clipping (vs 10 sub-edges for
  // Compute-CDR, cf. compute_cdr_test).
  const Region a(Polygon(
      {Point(-4, 8), Point(-2, 14), Point(-1, 18), Point(20, 11)}));
  const TileDecomposition d = ClipRegionToTiles(a, kMbb);
  EXPECT_EQ(d.input_edges, 4u);
  EXPECT_GT(d.output_edges, 10u);
}

}  // namespace
}  // namespace cardir
