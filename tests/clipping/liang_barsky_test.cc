#include "clipping/liang_barsky.h"

#include <gtest/gtest.h>

namespace cardir {
namespace {

const Box kBox(0, 0, 10, 10);

TEST(LiangBarskyTest, FullyInsideUnchanged) {
  const Segment s(Point(2, 2), Point(8, 8));
  auto clipped = ClipSegmentToBox(s, kBox);
  ASSERT_TRUE(clipped.has_value());
  EXPECT_EQ(*clipped, s);
}

TEST(LiangBarskyTest, CrossingOneEdge) {
  auto clipped = ClipSegmentToBox(Segment(Point(-4, 5), Point(6, 5)), kBox);
  ASSERT_TRUE(clipped.has_value());
  EXPECT_EQ(clipped->a, Point(0, 5));
  EXPECT_EQ(clipped->b, Point(6, 5));
}

TEST(LiangBarskyTest, CrossingTwoEdges) {
  auto clipped = ClipSegmentToBox(Segment(Point(-5, 5), Point(15, 5)), kBox);
  ASSERT_TRUE(clipped.has_value());
  EXPECT_EQ(clipped->a, Point(0, 5));
  EXPECT_EQ(clipped->b, Point(10, 5));
}

TEST(LiangBarskyTest, DiagonalThroughCorners) {
  auto clipped = ClipSegmentToBox(Segment(Point(-5, -5), Point(15, 15)), kBox);
  ASSERT_TRUE(clipped.has_value());
  EXPECT_EQ(clipped->a, Point(0, 0));
  EXPECT_EQ(clipped->b, Point(10, 10));
}

TEST(LiangBarskyTest, MissesTheBox) {
  EXPECT_FALSE(
      ClipSegmentToBox(Segment(Point(-5, 20), Point(15, 20)), kBox).has_value());
  EXPECT_FALSE(
      ClipSegmentToBox(Segment(Point(11, 0), Point(20, 9)), kBox).has_value());
}

TEST(LiangBarskyTest, ParallelOutsideRejectedEarly) {
  EXPECT_FALSE(
      ClipSegmentToBox(Segment(Point(-3, -1), Point(20, -1)), kBox).has_value());
}

TEST(LiangBarskyTest, TouchingCornerYieldsDegenerateSegment) {
  auto clipped = ClipSegmentToBox(Segment(Point(-5, 5), Point(0, 10)), kBox);
  ASSERT_TRUE(clipped.has_value());
  EXPECT_TRUE(clipped->IsDegenerate());
  EXPECT_EQ(clipped->a, Point(0, 10));
}

TEST(LiangBarskyTest, AgreesWithEdgeSplitterOnBPieces) {
  // Cross-check: the B piece from the edge splitter equals the Liang–Barsky
  // clip for a segment properly crossing the box.
  const Segment s(Point(-3, 2), Point(13, 6));
  auto clipped = ClipSegmentToBox(s, kBox);
  ASSERT_TRUE(clipped.has_value());
  EXPECT_DOUBLE_EQ(clipped->a.x, 0.0);
  EXPECT_DOUBLE_EQ(clipped->b.x, 10.0);
  EXPECT_NEAR(clipped->a.y, 2.75, 1e-12);
  EXPECT_NEAR(clipped->b.y, 5.25, 1e-12);
}

}  // namespace
}  // namespace cardir
