// Parameterised sweep over the nine tiles: a probe region placed squarely
// in each tile of the reference must yield exactly the single-tile relation
// (Definition 1), a 100% percentage entry, and clipping-baseline agreement.

#include <gtest/gtest.h>

#include "clipping/baseline_cdr.h"
#include "core/compute_cdr.h"
#include "core/compute_cdr_percent.h"
#include "geometry/region.h"

namespace cardir {
namespace {

// Reference mbb [0,10]²; a 2×2 probe centred in each closed tile.
Region ProbeInTile(Tile tile) {
  double cx = 5.0;
  double cy = 5.0;
  switch (ColumnOf(tile)) {
    case TileColumn::kWest: cx = -5.0; break;
    case TileColumn::kMiddle: cx = 5.0; break;
    case TileColumn::kEast: cx = 15.0; break;
  }
  switch (RowOf(tile)) {
    case TileRow::kSouth: cy = -5.0; break;
    case TileRow::kMiddle: cy = 5.0; break;
    case TileRow::kNorth: cy = 15.0; break;
  }
  return Region(MakeRectangle(cx - 1, cy - 1, cx + 1, cy + 1));
}

class TileSweepTest : public ::testing::TestWithParam<Tile> {
 protected:
  const Region reference_{MakeRectangle(0, 0, 10, 10)};
};

TEST_P(TileSweepTest, SingleTileRelation) {
  const Region probe = ProbeInTile(GetParam());
  auto relation = ComputeCdr(probe, reference_);
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(*relation, CardinalRelation(GetParam()));
}

TEST_P(TileSweepTest, HundredPercentInTheTile) {
  const Region probe = ProbeInTile(GetParam());
  auto matrix = ComputeCdrPercent(probe, reference_);
  ASSERT_TRUE(matrix.ok());
  EXPECT_NEAR(matrix->at(GetParam()), 100.0, 1e-9);
  EXPECT_NEAR(matrix->Total(), 100.0, 1e-9);
}

TEST_P(TileSweepTest, ClippingBaselineAgrees) {
  const Region probe = ProbeInTile(GetParam());
  EXPECT_EQ(*BaselineCdr(probe, reference_),
            *ComputeCdr(probe, reference_));
  EXPECT_TRUE(BaselineCdrPercent(probe, reference_)
                  ->ApproxEquals(*ComputeCdrPercent(probe, reference_),
                                 1e-9));
}

TEST_P(TileSweepTest, TouchingTheTileBoundaryStaysSingleTile) {
  // Stretch the probe to touch (but not enter) the neighbouring tiles:
  // the closed-tile semantics must keep the single-tile relation.
  const Tile tile = GetParam();
  double x0 = 0, x1 = 10, y0 = 0, y1 = 10;
  switch (ColumnOf(tile)) {
    case TileColumn::kWest: x0 = -8; x1 = 0; break;
    case TileColumn::kMiddle: x0 = 0; x1 = 10; break;
    case TileColumn::kEast: x0 = 10; x1 = 18; break;
  }
  switch (RowOf(tile)) {
    case TileRow::kSouth: y0 = -8; y1 = 0; break;
    case TileRow::kMiddle: y0 = 0; y1 = 10; break;
    case TileRow::kNorth: y0 = 10; y1 = 18; break;
  }
  const Region probe(MakeRectangle(x0, y0, x1, y1));
  auto relation = ComputeCdr(probe, reference_);
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(*relation, CardinalRelation(tile))
      << "tile " << TileName(tile) << " got " << relation->ToString();
}

INSTANTIATE_TEST_SUITE_P(AllNineTiles, TileSweepTest,
                         ::testing::ValuesIn(kAllTiles),
                         [](const ::testing::TestParamInfo<Tile>& info) {
                           return std::string(TileName(info.param));
                         });

// The Fig. 9 scenario: a region of two polygons spanning several tiles,
// with hand-computed per-tile areas.
TEST(FigureNineStyleTest, TwoPolygonRegionAreas) {
  const Region reference(MakeRectangle(0, 0, 10, 10));
  Region a;
  // Quadrangle across W / NW / N / B.
  a.AddPolygon(MakeRectangle(-4, 8, 6, 14));  // Area 60.
  // Triangle in E spilling into NE: square simpler — across E and NE.
  a.AddPolygon(MakeRectangle(12, 6, 16, 14));  // Area 32.
  auto result = ComputeCdrPercentDetailed(a, reference);
  ASSERT_TRUE(result.ok());
  // First rectangle: W part x∈[−4,0], y∈[8,10] → 8; NW x∈[−4,0], y∈[10,14]
  // → 16; N x∈[0,6], y∈[10,14] → 24; B x∈[0,6], y∈[8,10] → 12.
  EXPECT_NEAR(result->tile_areas[static_cast<int>(Tile::kW)], 8.0, 1e-9);
  EXPECT_NEAR(result->tile_areas[static_cast<int>(Tile::kNW)], 16.0, 1e-9);
  EXPECT_NEAR(result->tile_areas[static_cast<int>(Tile::kN)], 24.0, 1e-9);
  EXPECT_NEAR(result->tile_areas[static_cast<int>(Tile::kB)], 12.0, 1e-9);
  // Second rectangle: E x∈[12,16], y∈[6,10] → 16; NE y∈[10,14] → 16.
  EXPECT_NEAR(result->tile_areas[static_cast<int>(Tile::kE)], 16.0, 1e-9);
  EXPECT_NEAR(result->tile_areas[static_cast<int>(Tile::kNE)], 16.0, 1e-9);
  EXPECT_NEAR(result->total_area, 92.0, 1e-9);
  // Qualitative relation covers exactly those six tiles.
  EXPECT_EQ(ComputeCdr(a, reference)->ToString(), "B:W:NW:N:NE:E");
}

}  // namespace
}  // namespace cardir
