#include "core/percentage_matrix.h"

#include <gtest/gtest.h>

namespace cardir {
namespace {

std::array<double, kNumTiles> Areas(
    std::initializer_list<std::pair<Tile, double>> entries) {
  std::array<double, kNumTiles> areas{};
  for (const auto& [tile, area] : entries) {
    areas[static_cast<int>(tile)] = area;
  }
  return areas;
}

TEST(PercentageMatrixTest, FromAreasNormalises) {
  const PercentageMatrix m =
      PercentageMatrix::FromAreas(Areas({{Tile::kNE, 36.0}, {Tile::kE, 36.0}}));
  EXPECT_DOUBLE_EQ(m.at(Tile::kNE), 50.0);
  EXPECT_DOUBLE_EQ(m.at(Tile::kE), 50.0);
  EXPECT_DOUBLE_EQ(m.at(Tile::kB), 0.0);
  EXPECT_DOUBLE_EQ(m.Total(), 100.0);
}

TEST(PercentageMatrixTest, ZeroTotalYieldsZeroMatrix) {
  const PercentageMatrix m = PercentageMatrix::FromAreas(Areas({}));
  EXPECT_DOUBLE_EQ(m.Total(), 0.0);
}

TEST(PercentageMatrixTest, ToRelationThreshold) {
  const PercentageMatrix m = PercentageMatrix::FromAreas(
      Areas({{Tile::kB, 98.0}, {Tile::kN, 1.5}, {Tile::kNE, 0.5}}));
  EXPECT_EQ(m.ToRelation().ToString(), "B:N:NE");
  EXPECT_EQ(m.ToRelation(1.0).ToString(), "B:N");
  EXPECT_EQ(m.ToRelation(50.0).ToString(), "B");
}

TEST(PercentageMatrixTest, ApproxEquals) {
  const PercentageMatrix a =
      PercentageMatrix::FromAreas(Areas({{Tile::kB, 1.0}}));
  PercentageMatrix b = a;
  b.set(Tile::kB, 99.9);
  b.set(Tile::kS, 0.1);
  EXPECT_TRUE(a.ApproxEquals(b, 0.2));
  EXPECT_FALSE(a.ApproxEquals(b, 0.05));
}

TEST(PercentageMatrixTest, ToStringLayout) {
  // Rows are printed north to south, like the §2 matrices: the NE cell sits
  // in the first row, the SE cell in the last.
  const PercentageMatrix m = PercentageMatrix::FromAreas(
      Areas({{Tile::kNE, 50.0}, {Tile::kE, 50.0}}));
  const std::string text = m.ToString(0);
  const std::vector<std::string> lines = [&text] {
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= text.size(); ++i) {
      if (i == text.size() || text[i] == '\n') {
        out.push_back(text.substr(start, i - start));
        start = i + 1;
      }
    }
    return out;
  }();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("50%"), std::string::npos);
  EXPECT_NE(lines[1].find("50%"), std::string::npos);
  EXPECT_EQ(lines[2].find("50%"), std::string::npos);
}

TEST(PercentageMatrixTest, SetAndGet) {
  PercentageMatrix m;
  m.set(Tile::kSW, 12.5);
  EXPECT_DOUBLE_EQ(m.at(Tile::kSW), 12.5);
  EXPECT_DOUBLE_EQ(m.Total(), 12.5);
}

}  // namespace
}  // namespace cardir
