#include "core/relation_pair.h"

#include <gtest/gtest.h>

#include <sstream>

namespace cardir {
namespace {

TEST(RelationPairTest, ComputesBothDirections) {
  const Region a(MakeRectangle(2, -6, 8, -2));
  const Region b(MakeRectangle(0, 0, 10, 10));
  auto pair = ComputeRelationPair(a, b);
  ASSERT_TRUE(pair.ok());
  EXPECT_EQ(pair->a_to_b.ToString(), "S");
  // b is north of a but wider than a's mbb, so it spills into NW and NE —
  // the §2 example of an asymmetric pair.
  EXPECT_EQ(pair->b_to_a.ToString(), "NW:N:NE");
}

TEST(RelationPairTest, AsymmetricPair) {
  // a is a thin region inside b: a B b but b covers far more than B of a.
  const Region a(MakeRectangle(4, 4, 6, 6));
  const Region b(MakeRectangle(0, 0, 10, 10));
  auto pair = ComputeRelationPair(a, b);
  ASSERT_TRUE(pair.ok());
  EXPECT_EQ(pair->a_to_b.ToString(), "B");
  EXPECT_EQ(pair->b_to_a.ToString(), "B:S:SW:W:NW:N:NE:E:SE");
}

TEST(RelationPairTest, StreamOperator) {
  const Region a(MakeRectangle(2, -6, 8, -2));
  const Region b(MakeRectangle(0, 0, 10, 10));
  auto pair = ComputeRelationPair(a, b);
  ASSERT_TRUE(pair.ok());
  std::ostringstream os;
  os << *pair;
  EXPECT_EQ(os.str(), "(S, NW:N:NE)");
}

TEST(RelationPairTest, PropagatesValidationErrors) {
  EXPECT_FALSE(
      ComputeRelationPair(Region(), Region(MakeRectangle(0, 0, 1, 1))).ok());
}

}  // namespace
}  // namespace cardir
