#include "core/compute_cdr_percent.h"

#include <gtest/gtest.h>

#include "core/compute_cdr.h"
#include "geometry/region.h"

namespace cardir {
namespace {

constexpr double kTol = 1e-9;

Region ReferenceB() { return Region(MakeRectangle(0, 0, 10, 10)); }

PercentageMatrix Percent(const Region& a, const Region& b) {
  auto result = ComputeCdrPercent(a, b);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.value_or(PercentageMatrix());
}

TEST(ComputeCdrPercentTest, PaperFigure1cFiftyFifty) {
  // §2: "region c is 50% northeast and 50% east of region b".
  const Region c(MakeRectangle(12, 4, 18, 16));
  const PercentageMatrix m = Percent(c, ReferenceB());
  EXPECT_NEAR(m.at(Tile::kNE), 50.0, kTol);
  EXPECT_NEAR(m.at(Tile::kE), 50.0, kTol);
  EXPECT_NEAR(m.Total(), 100.0, kTol);
  for (Tile t : {Tile::kB, Tile::kS, Tile::kSW, Tile::kW, Tile::kNW,
                 Tile::kN, Tile::kSE}) {
    EXPECT_NEAR(m.at(t), 0.0, kTol) << TileName(t);
  }
}

TEST(ComputeCdrPercentTest, FullyContainedIsHundredPercentB) {
  const PercentageMatrix m =
      Percent(Region(MakeRectangle(2, 2, 8, 8)), ReferenceB());
  EXPECT_NEAR(m.at(Tile::kB), 100.0, kTol);
}

TEST(ComputeCdrPercentTest, QuadrantSquareSplitsEvenly) {
  // [−5,5]² against [0,10]²: equal quarters in SW, S, W, B.
  const PercentageMatrix m =
      Percent(Region(MakeRectangle(-5, -5, 5, 5)), ReferenceB());
  EXPECT_NEAR(m.at(Tile::kSW), 25.0, kTol);
  EXPECT_NEAR(m.at(Tile::kS), 25.0, kTol);
  EXPECT_NEAR(m.at(Tile::kW), 25.0, kTol);
  EXPECT_NEAR(m.at(Tile::kB), 25.0, kTol);
}

TEST(ComputeCdrPercentTest, BViaBPlusNSubtraction) {
  // a = [2,8]×[2,14]: area 72, B part 6×8 = 48, N part 6×4 = 24.
  const PercentageMatrix m =
      Percent(Region(MakeRectangle(2, 2, 8, 14)), ReferenceB());
  EXPECT_NEAR(m.at(Tile::kB), 100.0 * 48 / 72, kTol);
  EXPECT_NEAR(m.at(Tile::kN), 100.0 * 24 / 72, kTol);
}

TEST(ComputeCdrPercentTest, TileAreasMatchHandComputedValues) {
  auto result =
      ComputeCdrPercentDetailed(Region(MakeRectangle(-5, -5, 5, 5)),
                                ReferenceB());
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->tile_areas[static_cast<int>(Tile::kSW)], 25.0, kTol);
  EXPECT_NEAR(result->tile_areas[static_cast<int>(Tile::kB)], 25.0, kTol);
  EXPECT_NEAR(result->total_area, 100.0, kTol);
}

TEST(ComputeCdrPercentTest, TotalAreaEqualsRegionArea) {
  const Region a(Polygon({Point(-5, -3), Point(4, 18), Point(15, 13),
                          Point(12, -6)}));
  auto result = ComputeCdrPercentDetailed(a, ReferenceB());
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->total_area, a.Area(), 1e-6);
  EXPECT_NEAR(result->matrix.Total(), 100.0, 1e-6);
}

TEST(ComputeCdrPercentTest, SwallowingRegionDistributesOverAllNineTiles) {
  // [−10,20]² over [0,10]²: area 900; B = 100; corners 100 each; bands 100.
  const PercentageMatrix m =
      Percent(Region(MakeRectangle(-10, -10, 20, 20)), ReferenceB());
  for (Tile t : kAllTiles) {
    EXPECT_NEAR(m.at(t), 100.0 / 9.0, kTol) << TileName(t);
  }
}

TEST(ComputeCdrPercentTest, RegionWithHoleFigure2Style) {
  // Frame around [0,10]² with the hole exactly over the mbb: no B area.
  Region frame;
  frame.AddPolygon(MakeRectangle(-10, -10, 20, 0));   // South band: 300.
  frame.AddPolygon(MakeRectangle(-10, 10, 20, 20));   // North band: 300.
  frame.AddPolygon(MakeRectangle(-10, 0, 0, 10));     // West band: 100.
  frame.AddPolygon(MakeRectangle(10, 0, 20, 10));     // East band: 100.
  const PercentageMatrix m = Percent(frame, ReferenceB());
  EXPECT_NEAR(m.at(Tile::kB), 0.0, kTol);
  EXPECT_NEAR(m.at(Tile::kW), 100.0 / 8.0, kTol);
  EXPECT_NEAR(m.at(Tile::kSW), 100.0 / 8.0, kTol);
  EXPECT_NEAR(m.Total(), 100.0, kTol);
}

TEST(ComputeCdrPercentTest, NonZeroTilesMatchQualitativeRelation) {
  const Region a(Polygon({Point(-4, 8), Point(-2, 14), Point(-1, 18),
                          Point(20, 11)}));
  const Region b = ReferenceB();
  const CardinalRelation qualitative = *ComputeCdr(a, b);
  const CardinalRelation from_percent = Percent(a, b).ToRelation(1e-9);
  // Tiles with positive area must agree (no measure-zero tiles here).
  EXPECT_EQ(from_percent, qualitative);
}

TEST(ComputeCdrPercentTest, TriangleAreasAreExact) {
  // Right triangle [0,0],(20,0),(0,20) (clockwise) against [0,10]²:
  // B: area of triangle ∩ [0,10]² = 100 − 0 ... compute: the hypotenuse is
  // x + y = 20, entirely above the box except corner (10,10): B = 100 − 0 =
  // ... the box corner (10,10) lies on x+y=20, so B = full box = 100.
  // S: below y=0: none. E: x∈[10,20], y∈[0,10], x+y≤20: area = 50.
  // N: x∈[0,10], y∈[10,20], x+y≤20: 50. Total = 200 = triangle area. ✓
  Region tri(Polygon({Point(0, 0), Point(0, 20), Point(20, 0)}));
  tri.EnsureClockwise();
  auto result = ComputeCdrPercentDetailed(tri, ReferenceB());
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->tile_areas[static_cast<int>(Tile::kB)], 100.0, kTol);
  EXPECT_NEAR(result->tile_areas[static_cast<int>(Tile::kE)], 50.0, kTol);
  EXPECT_NEAR(result->tile_areas[static_cast<int>(Tile::kN)], 50.0, kTol);
  EXPECT_NEAR(result->total_area, 200.0, kTol);
}

TEST(ComputeCdrPercentTest, SharedEdgeContributionsCancel) {
  // Two rectangles sharing an edge: the shared edge is traversed twice in
  // opposite directions and its trapezoid contributions must cancel, so the
  // decomposed representation yields the same areas as a single polygon.
  Region decomposed;
  decomposed.AddPolygon(MakeRectangle(-5, -5, 0, 5));  // West half.
  decomposed.AddPolygon(MakeRectangle(0, -5, 5, 5));   // East half.
  const Region whole(MakeRectangle(-5, -5, 5, 5));
  const Region reference(MakeRectangle(0, 0, 10, 10));
  const PercentageMatrix split_matrix = Percent(decomposed, reference);
  const PercentageMatrix whole_matrix = Percent(whole, reference);
  EXPECT_TRUE(split_matrix.ApproxEquals(whole_matrix, 1e-9))
      << "split:\n" << split_matrix << "\nwhole:\n" << whole_matrix;
}

TEST(ComputeCdrPercentTest, SharedEdgeAcrossTileBoundary) {
  // The shared edge lies exactly on the reference's west mbb line: the two
  // halves classify it into different tiles (interior-side rule), but the
  // E'-contributions against that same line are zero, so areas stay exact.
  Region decomposed;
  decomposed.AddPolygon(MakeRectangle(-6, 2, 0, 8));  // Entirely in W.
  decomposed.AddPolygon(MakeRectangle(0, 2, 6, 8));   // Entirely in B.
  const PercentageMatrix matrix =
      Percent(decomposed, Region(MakeRectangle(0, 0, 10, 10)));
  EXPECT_NEAR(matrix.at(Tile::kW), 50.0, 1e-9);
  EXPECT_NEAR(matrix.at(Tile::kB), 50.0, 1e-9);
}

TEST(ComputeCdrPercentTest, ValidationErrorsPropagate) {
  EXPECT_FALSE(ComputeCdrPercent(Region(), ReferenceB()).ok());
  EXPECT_FALSE(ComputeCdrPercent(ReferenceB(), Region()).ok());
}

}  // namespace
}  // namespace cardir
