#include "core/tile.h"

#include <gtest/gtest.h>

namespace cardir {
namespace {

TEST(TileTest, CanonicalNamesRoundTrip) {
  for (Tile tile : kAllTiles) {
    Tile parsed;
    ASSERT_TRUE(ParseTile(TileName(tile), &parsed)) << TileName(tile);
    EXPECT_EQ(parsed, tile);
  }
  Tile tile;
  EXPECT_FALSE(ParseTile("Q", &tile));
  EXPECT_FALSE(ParseTile("", &tile));
  EXPECT_FALSE(ParseTile("sw", &tile));  // Case-sensitive.
}

TEST(TileTest, CanonicalOrderMatchesPaper) {
  // §2: B, S, SW, W, NW, N, NE, E, SE.
  EXPECT_EQ(TileName(kAllTiles[0]), "B");
  EXPECT_EQ(TileName(kAllTiles[1]), "S");
  EXPECT_EQ(TileName(kAllTiles[2]), "SW");
  EXPECT_EQ(TileName(kAllTiles[3]), "W");
  EXPECT_EQ(TileName(kAllTiles[4]), "NW");
  EXPECT_EQ(TileName(kAllTiles[5]), "N");
  EXPECT_EQ(TileName(kAllTiles[6]), "NE");
  EXPECT_EQ(TileName(kAllTiles[7]), "E");
  EXPECT_EQ(TileName(kAllTiles[8]), "SE");
}

TEST(TileTest, RowColumnDecomposition) {
  EXPECT_EQ(ColumnOf(Tile::kNW), TileColumn::kWest);
  EXPECT_EQ(RowOf(Tile::kNW), TileRow::kNorth);
  EXPECT_EQ(ColumnOf(Tile::kB), TileColumn::kMiddle);
  EXPECT_EQ(RowOf(Tile::kB), TileRow::kMiddle);
  EXPECT_EQ(ColumnOf(Tile::kSE), TileColumn::kEast);
  EXPECT_EQ(RowOf(Tile::kSE), TileRow::kSouth);
  // TileAt inverts (ColumnOf, RowOf) for every tile.
  for (Tile tile : kAllTiles) {
    EXPECT_EQ(TileAt(ColumnOf(tile), RowOf(tile)), tile);
  }
}

TEST(TileTest, ClassifyPointStrictInteriors) {
  const Box mbb(0, 0, 10, 10);
  EXPECT_EQ(ClassifyPoint(Point(5, 5), mbb), Tile::kB);
  EXPECT_EQ(ClassifyPoint(Point(5, -1), mbb), Tile::kS);
  EXPECT_EQ(ClassifyPoint(Point(-1, -1), mbb), Tile::kSW);
  EXPECT_EQ(ClassifyPoint(Point(-1, 5), mbb), Tile::kW);
  EXPECT_EQ(ClassifyPoint(Point(-1, 11), mbb), Tile::kNW);
  EXPECT_EQ(ClassifyPoint(Point(5, 11), mbb), Tile::kN);
  EXPECT_EQ(ClassifyPoint(Point(11, 11), mbb), Tile::kNE);
  EXPECT_EQ(ClassifyPoint(Point(11, 5), mbb), Tile::kE);
  EXPECT_EQ(ClassifyPoint(Point(11, -1), mbb), Tile::kSE);
}

TEST(TileTest, ClassifyPointTiesResolveTowardMiddle) {
  const Box mbb(0, 0, 10, 10);
  EXPECT_EQ(ClassifyPoint(Point(0, 5), mbb), Tile::kB);
  EXPECT_EQ(ClassifyPoint(Point(10, 10), mbb), Tile::kB);
  EXPECT_EQ(ClassifyPoint(Point(0, -3), mbb), Tile::kS);
  EXPECT_EQ(ClassifyPoint(Point(-3, 10), mbb), Tile::kW);
}

}  // namespace
}  // namespace cardir
