// Differential tests pinning the SoA sub-edge pipeline (core/edge_soa.h)
// to the AoS reference (core/edge_splitter.h): identical piece sets,
// identical classification (including on-line ties and degenerate bands,
// which exercise the scalar fallback), and a faithful codes-present
// bitmap. Also pins the sanitizer contract of util/target_clones.h.

#include "core/edge_soa.h"

#include <vector>

#include "core/compute_cdr.h"
#include "core/edge_splitter.h"
#include "gtest/gtest.h"
#include "util/random.h"
#include "util/target_clones.h"
#include "workload/region_gen.h"

namespace cardir {
namespace {

// The AoS reference pipeline over a whole polygon.
std::vector<ClassifiedEdge> AosPieces(const Polygon& polygon, const Box& mbb) {
  std::vector<ClassifiedEdge> pieces;
  for (size_t i = 0; i < polygon.size(); ++i) {
    SplitAndClassifyEdge(polygon.edge(i), mbb, &pieces);
  }
  return pieces;
}

Polygon RandomPolygon(Rng* rng, const Box& bounds) {
  RegionGenOptions options;
  options.num_polygons = 1;
  options.vertices_per_polygon = static_cast<int>(rng->NextInt(3, 16));
  options.kind = rng->NextBool() ? PolygonKind::kStar : PolygonKind::kConvex;
  options.bounds = bounds;
  return RandomRegion(rng, options).polygons()[0];
}

Box RandomMbb(Rng* rng) {
  const double x = rng->NextDouble(0.0, 150.0);
  const double y = rng->NextDouble(0.0, 150.0);
  return Box(x, y, x + rng->NextDouble(10.0, 100.0),
             y + rng->NextDouble(10.0, 100.0));
}

void ExpectSoAMatchesAos(const Polygon& polygon, const Box& mbb) {
  const std::vector<ClassifiedEdge> aos = AosPieces(polygon, mbb);

  EdgeSoA soa;
  const size_t appended = AppendSplitEdgesSoA(polygon, mbb, &soa);
  ASSERT_EQ(appended, aos.size());
  ASSERT_EQ(soa.count, aos.size());
  const uint16_t bitmap = ClassifySubEdgesSoA(&soa, mbb);

  uint16_t expected_bitmap = 0;
  for (size_t i = 0; i < aos.size(); ++i) {
    // Bit-identical endpoints: both pipelines share the split core.
    EXPECT_EQ(soa.x0[i], aos[i].segment.a.x) << "lane " << i;
    EXPECT_EQ(soa.y0[i], aos[i].segment.a.y) << "lane " << i;
    EXPECT_EQ(soa.x1[i], aos[i].segment.b.x) << "lane " << i;
    EXPECT_EQ(soa.y1[i], aos[i].segment.b.y) << "lane " << i;
    // Identical classification through the code → tile table.
    EXPECT_EQ(SubEdgeCodeTiles()[soa.code[i]], aos[i].tile)
        << "lane " << i << " of " << aos.size();
    expected_bitmap =
        static_cast<uint16_t>(expected_bitmap | (1u << soa.code[i]));
  }
  EXPECT_EQ(bitmap, expected_bitmap);

  // The fused single-pass entry agrees with the staged pipeline.
  EdgeSoA fused;
  const SplitClassifyResult result =
      AppendSplitClassifySoA(polygon, mbb, &fused);
  ASSERT_EQ(result.pieces, aos.size());
  EXPECT_EQ(result.code_bitmap, expected_bitmap);
  for (size_t i = 0; i < aos.size(); ++i) {
    EXPECT_EQ(fused.x0[i], soa.x0[i]);
    EXPECT_EQ(fused.y0[i], soa.y0[i]);
    EXPECT_EQ(fused.x1[i], soa.x1[i]);
    EXPECT_EQ(fused.y1[i], soa.y1[i]);
    EXPECT_EQ(fused.code[i], soa.code[i]) << "lane " << i;
  }
}

TEST(EdgeSoATest, MatchesAosPipelineOnRandomPolygons) {
  Rng rng(20260808);
  for (int iter = 0; iter < 500; ++iter) {
    const double size = rng.NextDouble(20.0, 120.0);
    const double x = rng.NextDouble(0.0, 200.0 - size);
    const double y = rng.NextDouble(0.0, 200.0 - size);
    const Polygon polygon = RandomPolygon(&rng, Box(x, y, x + size, y + size));
    ExpectSoAMatchesAos(polygon, RandomMbb(&rng));
  }
}

TEST(EdgeSoATest, MatchesAosOnGeometryTouchingTheLines) {
  // Axis-aligned rectangle whose edges lie exactly ON mbb lines, vertices
  // exactly on corners, plus collinear runs — the tie cases that force the
  // kernel's scalar fallback.
  const Box mbb(10.0, 10.0, 30.0, 30.0);
  const Polygon on_lines({{10.0, 10.0}, {10.0, 30.0}, {30.0, 30.0},
                          {30.0, 10.0}});
  ExpectSoAMatchesAos(on_lines, mbb);

  const Polygon duplicate_vertices({{5.0, 5.0}, {5.0, 5.0}, {5.0, 35.0},
                                    {35.0, 35.0}, {35.0, 35.0}, {35.0, 5.0}});
  ExpectSoAMatchesAos(duplicate_vertices, mbb);

  const Polygon crossing_corners({{0.0, 0.0}, {0.0, 40.0}, {40.0, 40.0},
                                  {40.0, 0.0}});
  ExpectSoAMatchesAos(crossing_corners, mbb);

  // Degenerate (zero-width / zero-height) reference bands.
  ExpectSoAMatchesAos(crossing_corners, Box(20.0, 10.0, 20.0, 30.0));
  ExpectSoAMatchesAos(crossing_corners, Box(10.0, 20.0, 30.0, 20.0));
  ExpectSoAMatchesAos(on_lines, Box(10.0, 20.0, 30.0, 20.0));
}

TEST(EdgeSoATest, ScratchReuseAcrossCallsIsClean) {
  Rng rng(99);
  EdgeSoA soa;
  const Box mbb(50.0, 50.0, 150.0, 150.0);
  size_t capacity_after_first = 0;
  for (int iter = 0; iter < 50; ++iter) {
    const Polygon polygon = RandomPolygon(&rng, Box(0, 0, 200, 200));
    soa.Clear();
    EXPECT_EQ(soa.count, 0u);
    const SplitClassifyResult result =
        AppendSplitClassifySoA(polygon, mbb, &soa);
    EXPECT_EQ(soa.count, result.pieces);
    // Fresh scratch must agree lane-for-lane with the reused one.
    EdgeSoA fresh;
    AppendSplitClassifySoA(polygon, mbb, &fresh);
    ASSERT_EQ(fresh.count, soa.count);
    for (size_t i = 0; i < fresh.count; ++i) {
      EXPECT_EQ(fresh.x0[i], soa.x0[i]);
      EXPECT_EQ(fresh.code[i], soa.code[i]);
    }
    if (iter == 0) capacity_after_first = soa.x0.size();
  }
  EXPECT_GE(soa.x0.size(), capacity_after_first);
}

TEST(EdgeSoATest, SubEdgeCodeTablesMatchTileEnum) {
  for (int c = 0; c < 3; ++c) {
    for (int r = 0; r < 3; ++r) {
      const Tile tile =
          TileAt(static_cast<TileColumn>(c), static_cast<TileRow>(r));
      const uint8_t code =
          SubEdgeCode(static_cast<TileColumn>(c), static_cast<TileRow>(r));
      EXPECT_EQ(SubEdgeCodeTiles()[code], tile);
      EXPECT_EQ(SubEdgeCodeMasks()[code], 1u << static_cast<int>(tile));
    }
  }
}

TEST(TargetClonesTest, ClonesCompiledOutUnderSanitizers) {
  // The ifunc-dispatched clones must be compiled out whenever a sanitizer
  // is active (their resolvers run before the sanitizer runtimes
  // initialise); this pins the contract for the asan-ubsan and tsan tiers.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  EXPECT_FALSE(kKernelClonesActive);
#endif
#if !defined(__x86_64__) || defined(__clang__)
  EXPECT_FALSE(kKernelClonesActive);
#endif
  EXPECT_EQ(kKernelClonesActive, CARDIR_KERNEL_CLONES_ACTIVE == 1);
}

}  // namespace
}  // namespace cardir
