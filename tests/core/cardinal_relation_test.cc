#include "core/cardinal_relation.h"

#include <gtest/gtest.h>

#include <set>

namespace cardir {
namespace {

TEST(CardinalRelationTest, SingleTileConstruction) {
  const CardinalRelation s(Tile::kS);
  EXPECT_TRUE(s.IsSingleTile());
  EXPECT_EQ(s.TileCount(), 1);
  EXPECT_TRUE(s.Includes(Tile::kS));
  EXPECT_FALSE(s.Includes(Tile::kN));
  EXPECT_EQ(s.ToString(), "S");
}

TEST(CardinalRelationTest, CanonicalPrintOrder) {
  // §2: always write B:S:W, never W:B:S or S:B:W.
  const CardinalRelation r({Tile::kW, Tile::kB, Tile::kS});
  EXPECT_EQ(r.ToString(), "B:S:W");
  const CardinalRelation full(
      {Tile::kB, Tile::kS, Tile::kSW, Tile::kW, Tile::kNW, Tile::kN,
       Tile::kNE, Tile::kE, Tile::kSE});
  EXPECT_EQ(full.ToString(), "B:S:SW:W:NW:N:NE:E:SE");
}

TEST(CardinalRelationTest, ParseAcceptsAnyOrder) {
  const auto r = CardinalRelation::Parse("W:B:S");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "B:S:W");
  EXPECT_EQ(*CardinalRelation::Parse(" NE : E "),
            CardinalRelation({Tile::kNE, Tile::kE}));
}

TEST(CardinalRelationTest, ParseRejectsBadInput) {
  EXPECT_FALSE(CardinalRelation::Parse("").ok());
  EXPECT_FALSE(CardinalRelation::Parse("X").ok());
  EXPECT_FALSE(CardinalRelation::Parse("B:B").ok());      // Duplicate tile.
  EXPECT_FALSE(CardinalRelation::Parse("B::S").ok());     // Empty piece.
  EXPECT_FALSE(CardinalRelation::Parse("north").ok());
}

TEST(CardinalRelationTest, TileUnionDefinitionTwo) {
  // Paper's example: tile-union(S:SW, S:E:SE) = S:SW:E:SE and
  // tile-union(S:SW, S:E:SE, W) = S:SW:W:E:SE.
  const CardinalRelation r1 = *CardinalRelation::Parse("S:SW");
  const CardinalRelation r2 = *CardinalRelation::Parse("S:E:SE");
  const CardinalRelation r3 = *CardinalRelation::Parse("W");
  EXPECT_EQ(TileUnion({r1, r2}).ToString(), "S:SW:E:SE");
  EXPECT_EQ(TileUnion({r1, r2, r3}).ToString(), "S:SW:W:E:SE");
}

TEST(CardinalRelationTest, SetOperations) {
  const CardinalRelation a = *CardinalRelation::Parse("B:S");
  const CardinalRelation b = *CardinalRelation::Parse("S:W");
  EXPECT_EQ(a.Union(b).ToString(), "B:S:W");
  EXPECT_EQ(a.Intersection(b).ToString(), "S");
  EXPECT_TRUE(CardinalRelation(Tile::kS).IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
}

TEST(CardinalRelationTest, AddRemove) {
  CardinalRelation r;
  EXPECT_TRUE(r.IsEmpty());
  r.Add(Tile::kN);
  r.Add(Tile::kNE);
  EXPECT_EQ(r.ToString(), "N:NE");
  r.Remove(Tile::kN);
  EXPECT_EQ(r.ToString(), "NE");
  r.Remove(Tile::kN);  // Removing an absent tile is a no-op.
  EXPECT_EQ(r.ToString(), "NE");
}

TEST(CardinalRelationTest, ThereAre511BasicRelations) {
  // D* is jointly exhaustive: 2^9 − 1 distinct non-empty relations.
  std::set<CardinalRelation> all;
  for (uint16_t mask = 1; mask <= 511; ++mask) {
    all.insert(CardinalRelation::FromMask(mask));
  }
  EXPECT_EQ(all.size(), static_cast<size_t>(kNumBasicRelations));
}

TEST(CardinalRelationTest, MatrixRenderingMatchesPaperExamples) {
  // §2 shows S, NE:E and B:S:SW:W:NW:N:E:SE as direction-relation matrices.
  EXPECT_EQ(CardinalRelation(Tile::kS).ToMatrixString(),
            "[. . .]\n[. . .]\n[. # .]");
  EXPECT_EQ(CardinalRelation({Tile::kNE, Tile::kE}).ToMatrixString(),
            "[. . #]\n[. . #]\n[. . .]");
  EXPECT_EQ(
      CardinalRelation::Parse("B:S:SW:W:NW:N:E:SE")->ToMatrixString(),
      "[# # .]\n[# # #]\n[# # #]");
}

TEST(CardinalRelationTest, ParseToStringRoundTripAll511) {
  for (uint16_t mask = 1; mask <= 511; ++mask) {
    const CardinalRelation r = CardinalRelation::FromMask(mask);
    const auto parsed = CardinalRelation::Parse(r.ToString());
    ASSERT_TRUE(parsed.ok()) << r.ToString();
    EXPECT_EQ(*parsed, r);
  }
}

}  // namespace
}  // namespace cardir
