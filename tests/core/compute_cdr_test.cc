#include "core/compute_cdr.h"

#include <gtest/gtest.h>

#include "core/tile.h"
#include "geometry/region.h"

namespace cardir {
namespace {

// Reference region b with mbb [0,10]×[0,10] throughout.
Region ReferenceB() { return Region(MakeRectangle(0, 0, 10, 10)); }

CardinalRelation Cdr(const Region& a, const Region& b) {
  auto result = ComputeCdr(a, b);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.value_or(CardinalRelation());
}

TEST(ComputeCdrTest, PaperFigure1SingleTileSouth) {
  // Fig. 1b: a lies entirely in S(b) ⇒ a S b.
  const Region a(MakeRectangle(2, -6, 8, -2));
  EXPECT_EQ(Cdr(a, ReferenceB()).ToString(), "S");
}

TEST(ComputeCdrTest, PaperFigure1MultiTileNortheastEast) {
  // Fig. 1c: c is partly northeast and partly east of b ⇒ c NE:E b.
  const Region c(MakeRectangle(12, 4, 18, 16));
  EXPECT_EQ(Cdr(c, ReferenceB()).ToString(), "NE:E");
}

TEST(ComputeCdrTest, PaperFigure1EightTileCompositeRegion) {
  // Fig. 1d: d = d1 ∪ ... ∪ d8 occupies B,S,SW,W,NW,N,E,SE but not NE.
  Region d;
  d.AddPolygon(MakeRectangle(4, 4, 6, 6));      // d1: B.
  d.AddPolygon(MakeRectangle(4, -4, 6, -2));    // d2: S.
  d.AddPolygon(MakeRectangle(-4, -4, -2, -2));  // d3: SW.
  d.AddPolygon(MakeRectangle(-4, 4, -2, 6));    // d4: W.
  d.AddPolygon(MakeRectangle(-4, 12, -2, 14));  // d5: NW.
  d.AddPolygon(MakeRectangle(4, 12, 6, 14));    // d6: N.
  d.AddPolygon(MakeRectangle(12, -4, 14, -2));  // d7: SE.
  d.AddPolygon(MakeRectangle(12, 4, 14, 6));    // d8: E.
  EXPECT_EQ(Cdr(d, ReferenceB()).ToString(), "B:S:SW:W:NW:N:E:SE");
}

// The Example 2 / Example 3 scenario: a quadrangle whose vertices lie in
// W, NW, NW, NE, but whose true relation also includes B, N and E because
// edges expand over several tiles.
Region Example2Quadrangle() {
  return Region(Polygon(
      {Point(-4, 8), Point(-2, 14), Point(-1, 18), Point(20, 11)}));
}

TEST(ComputeCdrTest, PaperExample2VertexClassificationIsInsufficient) {
  const Region a = Example2Quadrangle();
  const Box mbb = ReferenceB().BoundingBox();
  // Vertices alone suggest W:NW:NE ...
  CardinalRelation vertex_only;
  for (const Point& v : a.polygons().front().vertices()) {
    vertex_only.Add(ClassifyPoint(v, mbb));
  }
  EXPECT_EQ(vertex_only.ToString(), "W:NW:NE");
  // ... but the correct relation includes B, N and E as well.
  EXPECT_EQ(Cdr(a, ReferenceB()).ToString(), "B:W:NW:N:NE:E");
}

TEST(ComputeCdrTest, PaperExample3EdgeDivisionCount) {
  // Edge-by-edge division of the quadrangle:
  //   N1N2 (W→NW): 2, N2N3 (NW): 1, N3N4 (NW→N→NE): 3, N4N1 (NE→E→B→W): 4.
  auto result = ComputeCdrDetailed(Example2Quadrangle(), ReferenceB());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->input_edges, 4u);
  EXPECT_EQ(result->output_edges, 10u);
  EXPECT_EQ(result->relation.ToString(), "B:W:NW:N:NE:E");
}

TEST(ComputeCdrTest, RegionContainedInReferenceIsB) {
  EXPECT_EQ(Cdr(Region(MakeRectangle(2, 2, 8, 8)), ReferenceB()).ToString(),
            "B");
  // Equal regions: B as well (the mbb bounds coincide, Def. 1 uses ≤).
  EXPECT_EQ(Cdr(ReferenceB(), ReferenceB()).ToString(), "B");
}

TEST(ComputeCdrTest, RegionSwallowingTheReferenceCoversAllNineTiles) {
  // The primary contains the whole mbb(b): its boundary never enters B, so
  // the centre-of-mbb containment step of Fig. 5 must add the B tile.
  const Region a(MakeRectangle(-10, -10, 20, 20));
  EXPECT_EQ(Cdr(a, ReferenceB()).ToString(), "B:S:SW:W:NW:N:NE:E:SE");
}

TEST(ComputeCdrTest, RingAroundTheReferenceHasNoB) {
  // A frame around b (hole containing mbb(b)): all eight peripheral tiles
  // but not B — the centre containment test must NOT fire.
  Region frame;
  frame.AddPolygon(MakeRectangle(-10, -10, 20, -5));  // South band.
  frame.AddPolygon(MakeRectangle(-10, 15, 20, 20));   // North band.
  frame.AddPolygon(MakeRectangle(-10, -5, -5, 15));   // West band.
  frame.AddPolygon(MakeRectangle(15, -5, 20, 15));    // East band.
  EXPECT_EQ(Cdr(frame, ReferenceB()).ToString(), "S:SW:W:NW:N:NE:E:SE");
}

TEST(ComputeCdrTest, TouchingTheReferenceLineOnlyDoesNotAddTiles) {
  // a touches b's east line x = 10 but has no area in B: relation is E, not
  // B:E (Definition 1 pieces have positive area).
  const Region a(MakeRectangle(10, 2, 16, 8));
  EXPECT_EQ(Cdr(a, ReferenceB()).ToString(), "E");
  // Symmetric: touching from inside stays B.
  const Region inside(MakeRectangle(4, 0, 8, 10));
  EXPECT_EQ(Cdr(inside, ReferenceB()).ToString(), "B");
}

TEST(ComputeCdrTest, DisconnectedPrimaryUnionsItsParts) {
  Region a;
  a.AddPolygon(MakeRectangle(-6, -6, -2, -2));  // SW.
  a.AddPolygon(MakeRectangle(12, 12, 16, 16));  // NE.
  EXPECT_EQ(Cdr(a, ReferenceB()).ToString(), "SW:NE");
}

TEST(ComputeCdrTest, ReferenceIsCompositeUsesItsOverallMbb) {
  // The reference is disconnected; its mbb spans both parts.
  Region b;
  b.AddPolygon(MakeRectangle(0, 0, 2, 2));
  b.AddPolygon(MakeRectangle(8, 8, 10, 10));
  // mbb(b) = [0,10]^2, so a centered square is B even though it misses both
  // polygons of b.
  EXPECT_EQ(Cdr(Region(MakeRectangle(4, 4, 6, 6)), b).ToString(), "B");
}

TEST(ComputeCdrTest, TriangleCrossingTilesDiagonally) {
  // Triangle with a long diagonal edge through B.
  const Region a(Polygon({Point(-5, -5), Point(15, 15), Point(15, -5)}));
  EXPECT_EQ(Cdr(a, ReferenceB()).ToString(), "B:S:SW:NE:E:SE");
}

TEST(ComputeCdrTest, ValidationErrorsPropagate) {
  Region bad;  // Empty region.
  EXPECT_FALSE(ComputeCdr(bad, ReferenceB()).ok());
  EXPECT_FALSE(ComputeCdr(ReferenceB(), bad).ok());
  Region degenerate(Polygon({Point(0, 0), Point(1, 1), Point(2, 2)}));
  EXPECT_FALSE(ComputeCdr(degenerate, ReferenceB()).ok());
}

TEST(ComputeCdrTest, InstrumentationCountsInputEdges) {
  Region a;
  a.AddPolygon(MakeRectangle(2, 2, 4, 4));
  a.AddPolygon(Polygon({Point(6, 6), Point(8, 6), Point(7, 8)}));
  auto result = ComputeCdrDetailed(a, ReferenceB());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->input_edges, 7u);
  EXPECT_EQ(result->output_edges, 7u);  // Fully inside: no division.
}

}  // namespace
}  // namespace cardir
