#include "core/edge_splitter.h"

#include <gtest/gtest.h>

namespace cardir {
namespace {

const Box kMbb(0, 0, 10, 10);

std::vector<ClassifiedEdge> Split(const Segment& edge, const Box& mbb = kMbb) {
  std::vector<ClassifiedEdge> pieces;
  SplitAndClassifyEdge(edge, mbb, &pieces);
  return pieces;
}

TEST(EdgeSplitterTest, EdgeInsideOneTileIsNotSplit) {
  const auto pieces = Split(Segment(Point(2, 2), Point(8, 3)));
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].tile, Tile::kB);
  EXPECT_EQ(pieces[0].segment, Segment(Point(2, 2), Point(8, 3)));
}

TEST(EdgeSplitterTest, DegenerateEdgeProducesNothing) {
  EXPECT_TRUE(Split(Segment(Point(3, 3), Point(3, 3))).empty());
}

TEST(EdgeSplitterTest, SingleCrossingSplitsInTwo) {
  const auto pieces = Split(Segment(Point(-4, 5), Point(6, 5)));
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0].tile, Tile::kW);
  EXPECT_EQ(pieces[0].segment.b, Point(0, 5));
  EXPECT_EQ(pieces[1].tile, Tile::kB);
  EXPECT_EQ(pieces[1].segment.a, Point(0, 5));
}

TEST(EdgeSplitterTest, EdgeSpanningThreeColumns) {
  // The Example 2 phenomenon: an edge expanding over three tiles.
  const auto pieces = Split(Segment(Point(-5, 12), Point(15, 12)));
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0].tile, Tile::kNW);
  EXPECT_EQ(pieces[1].tile, Tile::kN);
  EXPECT_EQ(pieces[2].tile, Tile::kNE);
  // Split points snapped exactly onto the lines.
  EXPECT_EQ(pieces[0].segment.b, Point(0, 12));
  EXPECT_EQ(pieces[1].segment.b, Point(10, 12));
}

TEST(EdgeSplitterTest, MaximalSplitFourCrossings) {
  // A diagonal crossing all four mbb lines at distinct points: 5 pieces
  // traversing SW, W, B, E, NE.
  const auto pieces = Split(Segment(Point(-5, -3), Point(15, 13)));
  ASSERT_EQ(pieces.size(), 5u);
  EXPECT_EQ(pieces[0].tile, Tile::kSW);
  EXPECT_EQ(pieces[1].tile, Tile::kW);
  EXPECT_EQ(pieces[2].tile, Tile::kB);
  EXPECT_EQ(pieces[3].tile, Tile::kE);
  EXPECT_EQ(pieces[4].tile, Tile::kNE);
}

TEST(EdgeSplitterTest, CornerCrossingDeduplicatesCoincidentPoints) {
  // Passes exactly through the SW corner (0,0): the x and y crossings
  // coincide, producing 2 pieces, not 3.
  const auto pieces = Split(Segment(Point(-4, -4), Point(4, 4)));
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0].tile, Tile::kSW);
  EXPECT_EQ(pieces[1].tile, Tile::kB);
  EXPECT_EQ(pieces[0].segment.b, Point(0, 0));
}

TEST(EdgeSplitterTest, TouchingALineDoesNotSplit) {
  // Touches x = 0 at an endpoint only (Definition 3b).
  const auto pieces = Split(Segment(Point(0, 5), Point(8, 5)));
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].tile, Tile::kB);
  const auto pieces2 = Split(Segment(Point(-6, 5), Point(0, 5)));
  ASSERT_EQ(pieces2.size(), 1u);
  EXPECT_EQ(pieces2[0].tile, Tile::kW);
}

TEST(EdgeSplitterTest, VertexTouchWithinOneColumn) {
  // Bends at the line without crossing: both pieces stay W.
  const auto pieces = Split(Segment(Point(-6, 2), Point(0, 8)));
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].tile, Tile::kW);
}

TEST(EdgeSplitterTest, EdgeOnWestLineUsesInteriorSide) {
  // A clockwise ring keeps its interior to the right of the direction.
  // Going up on x = 0: interior east ⇒ middle column ⇒ tile B.
  const auto up = Split(Segment(Point(0, 2), Point(0, 8)));
  ASSERT_EQ(up.size(), 1u);
  EXPECT_EQ(up[0].tile, Tile::kB);
  // Going down on x = 0: interior west ⇒ tile W.
  const auto down = Split(Segment(Point(0, 8), Point(0, 2)));
  ASSERT_EQ(down.size(), 1u);
  EXPECT_EQ(down[0].tile, Tile::kW);
}

TEST(EdgeSplitterTest, EdgeOnEastLineUsesInteriorSide) {
  const auto up = Split(Segment(Point(10, 2), Point(10, 8)));
  ASSERT_EQ(up.size(), 1u);
  EXPECT_EQ(up[0].tile, Tile::kE);  // Interior east of x = 10.
  const auto down = Split(Segment(Point(10, 8), Point(10, 2)));
  ASSERT_EQ(down.size(), 1u);
  EXPECT_EQ(down[0].tile, Tile::kB);
}

TEST(EdgeSplitterTest, EdgeOnSouthAndNorthLinesUseInteriorSide) {
  // Going east on y = 0: interior south ⇒ tile S.
  EXPECT_EQ(Split(Segment(Point(2, 0), Point(8, 0)))[0].tile, Tile::kS);
  // Going west on y = 0: interior north ⇒ tile B.
  EXPECT_EQ(Split(Segment(Point(8, 0), Point(2, 0)))[0].tile, Tile::kB);
  // Going east on y = 10: interior south ⇒ tile B.
  EXPECT_EQ(Split(Segment(Point(2, 10), Point(8, 10)))[0].tile, Tile::kB);
  // Going west on y = 10: interior north ⇒ tile N.
  EXPECT_EQ(Split(Segment(Point(8, 10), Point(2, 10)))[0].tile, Tile::kN);
}

TEST(EdgeSplitterTest, PiecesConcatenateToOriginalEdge) {
  const Segment edge(Point(-7, 3), Point(13, 17));
  const auto pieces = Split(edge);
  ASSERT_GE(pieces.size(), 2u);
  EXPECT_EQ(pieces.front().segment.a, edge.a);
  EXPECT_EQ(pieces.back().segment.b, edge.b);
  for (size_t i = 0; i + 1 < pieces.size(); ++i) {
    EXPECT_EQ(pieces[i].segment.b, pieces[i + 1].segment.a);
  }
}

TEST(EdgeSplitterTest, ClassifySubEdgeAllNineTiles) {
  struct Case {
    Segment segment;
    Tile expected;
  };
  const Case cases[] = {
      {Segment(Point(1, 1), Point(9, 9)), Tile::kB},
      {Segment(Point(1, -5), Point(9, -1)), Tile::kS},
      {Segment(Point(-5, -5), Point(-1, -1)), Tile::kSW},
      {Segment(Point(-5, 1), Point(-1, 9)), Tile::kW},
      {Segment(Point(-5, 11), Point(-1, 15)), Tile::kNW},
      {Segment(Point(1, 11), Point(9, 15)), Tile::kN},
      {Segment(Point(11, 11), Point(15, 15)), Tile::kNE},
      {Segment(Point(11, 1), Point(15, 9)), Tile::kE},
      {Segment(Point(11, -5), Point(15, -1)), Tile::kSE},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(ClassifySubEdge(c.segment, kMbb), c.expected);
  }
}

TEST(EdgeSplitterTest, DegenerateMbbWidthZero) {
  // A zero-width reference box still partitions the plane; edges on the
  // single vertical line resolve by interior side.
  const Box thin(5, 0, 5, 10);
  const auto west = Split(Segment(Point(1, 5), Point(4, 5)), thin);
  ASSERT_EQ(west.size(), 1u);
  EXPECT_EQ(ColumnOf(west[0].tile), TileColumn::kWest);
  const auto split = Split(Segment(Point(1, 5), Point(9, 5)), thin);
  ASSERT_EQ(split.size(), 2u);
  EXPECT_EQ(ColumnOf(split[0].tile), TileColumn::kWest);
  EXPECT_EQ(ColumnOf(split[1].tile), TileColumn::kEast);
}

}  // namespace
}  // namespace cardir
