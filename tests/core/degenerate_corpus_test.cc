// Degenerate-geometry corpus for the Compute-CDR pipelines: a hand-built
// set of valid regions engineered so their edges, vertices and bounding
// boxes collide exactly — collinear runs lying ON other regions' mbb
// lines, duplicate consecutive vertices, unit-thin slivers, shared
// corners — plus degenerate (zero-width / zero-height / point) reference
// bands fed to the unchecked entry points. Every combination is checked
// three ways: the serial qualitative path vs the batch engine
// (bit-identical masks across thread counts and prefilter settings), the
// SoA percent path vs the scalar reference path, and the §3.2 refinement
// guarantee that tiles holding positive area are tiles of the qualitative
// relation (qual ⊇ quant).

#include <cmath>
#include <cstddef>
#include <vector>

#include "core/compute_cdr.h"
#include "core/compute_cdr_percent.h"
#include "core/tile.h"
#include "engine/batch_engine.h"
#include "geometry/box.h"
#include "geometry/region.h"
#include "gtest/gtest.h"

namespace cardir {
namespace {

// All corpus regions live on the integer grid [0, 100]² so that mbb lines
// of one region pass exactly through vertices and edges of the others.
std::vector<Region> DegenerateCorpus() {
  std::vector<Region> corpus;

  // [0] A 20×20 square; its mbb lines are the grid lines x,y ∈ {20, 40}.
  corpus.push_back(Region(
      Polygon({{20.0, 20.0}, {20.0, 40.0}, {40.0, 40.0}, {40.0, 20.0}})));

  // [1] A square sharing [0]'s east edge exactly: the common boundary
  // x = 40 lies ON both regions' mbb lines.
  corpus.push_back(Region(
      Polygon({{40.0, 20.0}, {40.0, 40.0}, {60.0, 40.0}, {60.0, 20.0}})));

  // [2] A square whose interior contains [0] entirely, with boundary on
  // grid lines: every [0] edge lies strictly inside, and [2]'s mbb lines
  // pass through [0]-adjacent grid coordinates.
  corpus.push_back(Region(
      Polygon({{0.0, 0.0}, {0.0, 100.0}, {100.0, 100.0}, {100.0, 0.0}})));

  // [3] A collinear run along y = 40 (three vertices on one line, so two
  // consecutive edges lie ON other regions' mbb line) — the pieces the
  // splitter must classify by interior side. (Duplicate consecutive
  // vertices fail Region::Validate, so they are exercised separately on
  // the unchecked path below.)
  corpus.push_back(Region(Polygon({{10.0, 40.0},
                                   {30.0, 40.0},
                                   {50.0, 40.0},
                                   {50.0, 60.0},
                                   {10.0, 60.0}})));

  // [4] A unit-thin horizontal sliver on y ∈ [39, 40]: its north edge is
  // [0]'s and [3]'s mbb line y = 40; its own mbb is one unit tall.
  corpus.push_back(Region(
      Polygon({{5.0, 39.0}, {5.0, 40.0}, {95.0, 40.0}, {95.0, 39.0}})));

  // [5] A unit-thin vertical sliver on x ∈ [20, 21] crossing [0]'s west
  // line and [4]'s band.
  corpus.push_back(Region(
      Polygon({{20.0, 5.0}, {20.0, 95.0}, {21.0, 95.0}, {21.0, 5.0}})));

  // [6] A concave plus-shape whose re-entrant corners sit exactly on
  // [0]'s mbb corners (20,20)/(40,40) and whose arms straddle the lines.
  corpus.push_back(Region(Polygon({{25.0, 10.0},
                                   {25.0, 20.0},
                                   {20.0, 20.0},
                                   {10.0, 20.0},
                                   {10.0, 35.0},
                                   {25.0, 35.0},
                                   {25.0, 50.0},
                                   {35.0, 50.0},
                                   {35.0, 35.0},
                                   {50.0, 35.0},
                                   {50.0, 20.0},
                                   {35.0, 20.0},
                                   {35.0, 10.0}})));

  // [7] A two-polygon region: one component equals [0] shifted to touch
  // the corpus frame corner, the other is a triangle with a vertex
  // exactly on [0]'s center column x = 30.
  corpus.push_back(Region({
      Polygon({{60.0, 60.0}, {60.0, 80.0}, {80.0, 80.0}, {80.0, 60.0}}),
      Polygon({{30.0, 70.0}, {45.0, 90.0}, {45.0, 70.0}}),
  }));

  for (Region& region : corpus) region.EnsureClockwise();
  return corpus;
}

// §3.2 refines §3.1: every tile with a strictly positive percentage must
// be a tile of the qualitative relation. (The converse can fail only for
// B, whose qualitative membership may come from a boundary-only contact.)
void ExpectQualContainsQuant(const CardinalRelation& qual,
                             const PercentageMatrix& matrix) {
  for (Tile t : kAllTiles) {
    if (matrix.at(t) > 0.0) {
      EXPECT_TRUE(qual.Includes(t))
          << "tile " << t << " holds " << matrix.at(t)
          << "% but is missing from " << qual.ToString();
    }
  }
}

TEST(DegenerateCorpusTest, EngineMatchesSerialOnTouchingGeometry) {
  const std::vector<Region> corpus = DegenerateCorpus();
  for (const Region& region : corpus) {
    ASSERT_TRUE(region.Validate().ok()) << "corpus region is invalid";
  }

  // Serial qualitative loop.
  std::vector<uint16_t> serial;
  for (size_t i = 0; i < corpus.size(); ++i) {
    for (size_t j = 0; j < corpus.size(); ++j) {
      if (i == j) continue;
      auto relation = ComputeCdr(corpus[i], corpus[j]);
      ASSERT_TRUE(relation.ok()) << relation.status();
      serial.push_back(relation->mask());
    }
  }

  for (int threads : {1, 2, 8}) {
    for (bool prefilter : {true, false}) {
      EngineOptions options;
      options.threads = threads;
      options.use_prefilter = prefilter;
      EngineStats stats;
      auto pairs = ComputeAllPairs(corpus, options, &stats);
      ASSERT_TRUE(pairs.ok()) << pairs.status();
      ASSERT_EQ(pairs->size(), serial.size());
      EXPECT_EQ(stats.prefiltered_pairs + stats.computed_pairs,
                stats.total_pairs);
      for (size_t k = 0; k < serial.size(); ++k) {
        EXPECT_EQ((*pairs)[k].relation.mask(), serial[k])
            << "pair slot " << k << ", " << threads
            << " threads, prefilter=" << prefilter;
      }
    }
  }
}

TEST(DegenerateCorpusTest, PercentPathsAgreeAndRefineQualitative) {
  const std::vector<Region> corpus = DegenerateCorpus();
  for (size_t i = 0; i < corpus.size(); ++i) {
    for (size_t j = 0; j < corpus.size(); ++j) {
      if (i == j) continue;
      const Region& a = corpus[i];
      const Region& b = corpus[j];

      CdrScratch scratch;
      const CdrPercentComputation soa =
          ComputeCdrPercentUnchecked(a, b.BoundingBox(), &scratch);
      const CdrPercentComputation scalar = ComputeCdrPercentScalar(a, b);

      // The two float paths share the split core; only the accumulation
      // order differs, so per-tile areas agree to a few ulp of the area.
      const double tol = 1e-9 * std::max(1.0, a.Area());
      for (Tile t : kAllTiles) {
        const int ti = static_cast<int>(t);
        EXPECT_NEAR(soa.tile_areas[ti], scalar.tile_areas[ti], tol)
            << "pair (" << i << ", " << j << "), tile " << t;
      }
      EXPECT_NEAR(soa.total_area, a.Area(), tol)
          << "pair (" << i << ", " << j << ")";

      auto qual = ComputeCdr(a, b);
      ASSERT_TRUE(qual.ok()) << qual.status();
      ExpectQualContainsQuant(*qual, soa.matrix);
      ExpectQualContainsQuant(*qual, scalar.matrix);
    }
  }
}

TEST(DegenerateCorpusTest, DegenerateReferenceBands) {
  const std::vector<Region> corpus = DegenerateCorpus();
  // Zero-width, zero-height and point reference mbbs, placed so the
  // degenerate band cuts straight through corpus geometry (x = 30 is
  // [0]'s center column and a [7] triangle vertex; y = 40 carries [3]'s
  // collinear run and [4]'s north edge).
  const std::vector<Box> bands = {
      Box(30.0, 0.0, 30.0, 100.0),   // Zero width, full height.
      Box(0.0, 40.0, 100.0, 40.0),   // Zero height, full width.
      Box(20.0, 20.0, 20.0, 40.0),   // Zero width on [0]'s west line.
      Box(30.0, 30.0, 30.0, 30.0),   // A single point inside [0].
  };

  for (size_t i = 0; i < corpus.size(); ++i) {
    for (size_t band = 0; band < bands.size(); ++band) {
      const Box& mbb = bands[band];
      CdrMetricsDelta metrics;
      CdrScratch scratch;
      const CdrComputation qual =
          ComputeCdrUnchecked(corpus[i], mbb, &metrics, &scratch);
      const CdrPercentComputation quant =
          ComputeCdrPercentUnchecked(corpus[i], mbb, &scratch);

      // The division is area-preserving even against a degenerate band.
      const double tol = 1e-9 * std::max(1.0, corpus[i].Area());
      EXPECT_NEAR(quant.total_area, corpus[i].Area(), tol)
          << "region " << i << ", band " << band;
      ExpectQualContainsQuant(qual.relation, quant.matrix);

      // Splitting must produce a piece count in [edges, 5·edges] and be
      // identical between the two pipelines (shared split core).
      EXPECT_GE(qual.output_edges, qual.input_edges);
      EXPECT_LE(qual.output_edges, 5 * qual.input_edges);
    }
  }
}

TEST(DegenerateCorpusTest, DuplicateVerticesMatchDeduplicatedRegion) {
  // Duplicate consecutive vertices fail Validate, but the unchecked
  // pipelines must treat them as the region without the duplicates:
  // zero-length edges produce no lanes and no trapezoid terms.
  const Region with_dupes(Polygon({{10.0, 40.0},
                                   {10.0, 40.0},
                                   {30.0, 40.0},
                                   {50.0, 40.0},
                                   {50.0, 60.0},
                                   {50.0, 60.0},
                                   {10.0, 60.0}}));
  const Region without(Polygon(
      {{10.0, 40.0}, {30.0, 40.0}, {50.0, 40.0}, {50.0, 60.0}, {10.0, 60.0}}));
  ASSERT_TRUE(without.Validate().ok());

  const std::vector<Box> mbbs = {
      Box(20.0, 20.0, 40.0, 40.0),  // South line through the collinear run.
      Box(30.0, 45.0, 45.0, 55.0),  // Inside the region.
      Box(50.0, 40.0, 50.0, 60.0),  // Zero width on the east edge.
  };
  for (size_t m = 0; m < mbbs.size(); ++m) {
    CdrMetricsDelta metrics;
    CdrScratch scratch;
    const CdrComputation qual_dupes =
        ComputeCdrUnchecked(with_dupes, mbbs[m], &metrics, &scratch);
    const CdrComputation qual_clean =
        ComputeCdrUnchecked(without, mbbs[m], &metrics, &scratch);
    EXPECT_EQ(qual_dupes.relation.mask(), qual_clean.relation.mask())
        << "mbb " << m;
    EXPECT_EQ(qual_dupes.output_edges, qual_clean.output_edges) << "mbb " << m;

    const CdrPercentComputation pct_dupes =
        ComputeCdrPercentUnchecked(with_dupes, mbbs[m], &scratch);
    const CdrPercentComputation pct_clean =
        ComputeCdrPercentUnchecked(without, mbbs[m], &scratch);
    for (Tile t : kAllTiles) {
      const int ti = static_cast<int>(t);
      EXPECT_EQ(pct_dupes.tile_areas[ti], pct_clean.tile_areas[ti])
          << "mbb " << m << ", tile " << t;
    }
  }
}

}  // namespace
}  // namespace cardir
