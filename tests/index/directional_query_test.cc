#include "index/directional_query.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/compute_cdr.h"
#include "util/random.h"
#include "workload/scenario_gen.h"

namespace cardir {
namespace {

void AddRect(Configuration* config, const std::string& id, double x0,
             double y0, double x1, double y1) {
  AnnotatedRegion region;
  region.id = id;
  region.name = id;
  region.geometry.AddPolygon(MakeRectangle(x0, y0, x1, y1));
  ASSERT_TRUE(config->AddRegion(std::move(region)).ok());
}

Configuration SmallConfig() {
  Configuration config;
  AddRect(&config, "ref", 0, 0, 10, 10);
  AddRect(&config, "north1", 2, 12, 8, 16);
  AddRect(&config, "north2", 3, 20, 7, 24);
  AddRect(&config, "northwide", -4, 12, 14, 16);  // NW:N:NE.
  AddRect(&config, "east", 12, 2, 16, 8);
  AddRect(&config, "inside", 4, 4, 6, 6);
  AddRect(&config, "southwest", -8, -8, -2, -2);
  return config;
}

TEST(TileBoxTest, GeometryOfTheNineTiles) {
  const Box mbb(0, 0, 10, 10);
  EXPECT_EQ(DirectionalIndex::TileBox(Tile::kB, mbb), mbb);
  const Box north = DirectionalIndex::TileBox(Tile::kN, mbb);
  EXPECT_DOUBLE_EQ(north.min_y(), 10.0);
  EXPECT_DOUBLE_EQ(north.min_x(), 0.0);
  EXPECT_DOUBLE_EQ(north.max_x(), 10.0);
  EXPECT_GT(north.max_y(), 1e29);
  const Box sw = DirectionalIndex::TileBox(Tile::kSW, mbb);
  EXPECT_DOUBLE_EQ(sw.max_x(), 0.0);
  EXPECT_DOUBLE_EQ(sw.max_y(), 0.0);
  EXPECT_LT(sw.min_x(), -1e29);
}

TEST(TileHullTest, HullCoversMemberTiles) {
  const Box mbb(0, 0, 10, 10);
  const Box hull = DirectionalIndex::TileHull(
      *CardinalRelation::Parse("N:NE"), mbb);
  EXPECT_DOUBLE_EQ(hull.min_x(), 0.0);
  EXPECT_DOUBLE_EQ(hull.min_y(), 10.0);
  EXPECT_GT(hull.max_x(), 1e29);
}

TEST(DirectionalQueryTest, FindExactSingleTile) {
  const Configuration config = SmallConfig();
  auto index = DirectionalIndex::Build(config);
  ASSERT_TRUE(index.ok()) << index.status();
  auto north = index->FindExact("ref", *CardinalRelation::Parse("N"));
  ASSERT_TRUE(north.ok());
  EXPECT_EQ(*north, (std::vector<std::string>{"north1", "north2"}));
  auto east = index->FindExact("ref", *CardinalRelation::Parse("E"));
  ASSERT_TRUE(east.ok());
  EXPECT_EQ(*east, (std::vector<std::string>{"east"}));
  auto b = index->FindExact("ref", *CardinalRelation::Parse("B"));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, (std::vector<std::string>{"inside"}));
}

TEST(DirectionalQueryTest, FindExactMultiTile) {
  const Configuration config = SmallConfig();
  auto index = DirectionalIndex::Build(config);
  ASSERT_TRUE(index.ok());
  auto wide = index->FindExact("ref", *CardinalRelation::Parse("NW:N:NE"));
  ASSERT_TRUE(wide.ok());
  EXPECT_EQ(*wide, (std::vector<std::string>{"northwide"}));
}

TEST(DirectionalQueryTest, FindMatchingDisjunction) {
  const Configuration config = SmallConfig();
  auto index = DirectionalIndex::Build(config);
  ASSERT_TRUE(index.ok());
  auto result = index->FindMatching(
      "ref", *DisjunctiveRelation::Parse("{N, NW:N:NE, SW}"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, (std::vector<std::string>{"north1", "north2",
                                               "northwide", "southwest"}));
}

TEST(DirectionalQueryTest, FilterPrunesBeforeRefinement) {
  const Configuration config = SmallConfig();
  auto index = DirectionalIndex::Build(config);
  ASSERT_TRUE(index.ok());
  DirectionalQueryStats stats;
  auto result =
      index->FindExact("ref", *CardinalRelation::Parse("SW"), &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.results, 1u);
  // The filter must have excluded most regions from exact refinement.
  EXPECT_LT(stats.refined, config.regions().size() - 1);
}

TEST(DirectionalQueryTest, ErrorsOnUnknownReference) {
  const Configuration config = SmallConfig();
  auto index = DirectionalIndex::Build(config);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->FindExact("ghost", *CardinalRelation::Parse("N"))
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(index->FindExact("ref", CardinalRelation()).ok());
}

// Property: the indexed query equals the brute-force nested loop on a
// generated configuration, for a spread of relations.
TEST(DirectionalQueryTest, MatchesBruteForceOnGeneratedMaps) {
  Rng rng(321);
  ScenarioOptions options;
  options.num_regions = 36;
  options.compute_relations = false;
  const Configuration config = *GenerateMapConfiguration(&rng, options);
  auto index = DirectionalIndex::Build(config);
  ASSERT_TRUE(index.ok());

  const std::string& reference_id = config.regions()[10].id;
  const Region& reference = config.regions()[10].geometry;
  // Collect every relation that actually occurs plus a few that do not.
  std::vector<CardinalRelation> probes;
  for (const AnnotatedRegion& region : config.regions()) {
    if (region.id == reference_id) continue;
    probes.push_back(*ComputeCdr(region.geometry, reference));
  }
  probes.push_back(*CardinalRelation::Parse("B"));
  probes.push_back(*CardinalRelation::Parse("B:S:SW:W:NW:N:NE:E:SE"));
  for (const CardinalRelation& probe : probes) {
    auto indexed = index->FindExact(reference_id, probe);
    ASSERT_TRUE(indexed.ok());
    std::vector<std::string> brute;
    for (const AnnotatedRegion& region : config.regions()) {
      if (region.id == reference_id) continue;
      if (*ComputeCdr(region.geometry, reference) == probe) {
        brute.push_back(region.id);
      }
    }
    std::sort(brute.begin(), brute.end());
    EXPECT_EQ(*indexed, brute) << "relation " << probe.ToString();
  }
}

}  // namespace
}  // namespace cardir
