#include "index/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/random.h"

namespace cardir {
namespace {

Box RandomBox(Rng* rng, double canvas = 1000.0, double max_extent = 50.0) {
  const double w = rng->NextDouble(1.0, max_extent);
  const double h = rng->NextDouble(1.0, max_extent);
  const double x = rng->NextDouble(0.0, canvas - w);
  const double y = rng->NextDouble(0.0, canvas - h);
  return Box(x, y, x + w, y + h);
}

TEST(RTreeTest, EmptyTree) {
  RTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 0);
  EXPECT_TRUE(tree.SearchIds(Box(0, 0, 100, 100)).empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(RTreeTest, RejectsEmptyBox) {
  RTree tree;
  EXPECT_FALSE(tree.Insert(Box::Empty(), 1).ok());
}

TEST(RTreeTest, SingleEntry) {
  RTree tree;
  ASSERT_TRUE(tree.Insert(Box(0, 0, 2, 2), 42).ok());
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_EQ(tree.SearchIds(Box(1, 1, 3, 3)), std::vector<int64_t>{42});
  EXPECT_TRUE(tree.SearchIds(Box(5, 5, 6, 6)).empty());
}

TEST(RTreeTest, SplitGrowsHeight) {
  RTree tree(/*max_entries=*/4);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(tree.Insert(Box(i * 10.0, 0, i * 10.0 + 5, 5), i).ok());
  }
  EXPECT_EQ(tree.size(), 5u);
  EXPECT_GE(tree.height(), 2);
  EXPECT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants();
}

class RTreeRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(RTreeRandomTest, MatchesBruteForceOnRandomWorkloads) {
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(n) * 7 + 3);
  RTree tree;
  std::vector<Box> boxes;
  for (int i = 0; i < n; ++i) {
    const Box box = RandomBox(&rng);
    boxes.push_back(box);
    ASSERT_TRUE(tree.Insert(box, i).ok());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants();
  EXPECT_EQ(tree.size(), static_cast<size_t>(n));
  for (int q = 0; q < 30; ++q) {
    const Box query = RandomBox(&rng, 1000.0, 200.0);
    std::vector<int64_t> got = tree.SearchIds(query);
    std::sort(got.begin(), got.end());
    std::vector<int64_t> expected;
    for (int i = 0; i < n; ++i) {
      if (boxes[static_cast<size_t>(i)].Intersects(query)) {
        expected.push_back(i);
      }
    }
    EXPECT_EQ(got, expected) << "query " << q << " over " << n << " boxes";
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RTreeRandomTest,
                         ::testing::Values(1, 7, 32, 100, 500, 2000));

TEST(RTreeTest, DuplicateBoxesAllowed) {
  RTree tree;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(tree.Insert(Box(0, 0, 1, 1), i).ok());
  }
  EXPECT_EQ(tree.SearchIds(Box(0, 0, 1, 1)).size(), 20u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(RTreeTest, BoundsCoverEverything) {
  Rng rng(5);
  RTree tree;
  Box expected;
  for (int i = 0; i < 200; ++i) {
    const Box box = RandomBox(&rng);
    expected.Extend(box);
    ASSERT_TRUE(tree.Insert(box, i).ok());
  }
  EXPECT_TRUE(tree.bounds().Contains(expected));
  EXPECT_TRUE(expected.Contains(tree.bounds()));
}

TEST(RTreeTest, SearchWithEmptyQueryReturnsNothing) {
  RTree tree;
  ASSERT_TRUE(tree.Insert(Box(0, 0, 1, 1), 1).ok());
  EXPECT_TRUE(tree.SearchIds(Box::Empty()).empty());
}

TEST(RTreeTest, PointQueries) {
  RTree tree;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        tree.Insert(Box(i * 10.0, 0, i * 10.0 + 8, 8), i).ok());
  }
  // Degenerate (point) query box.
  const std::vector<int64_t> hit = tree.SearchIds(Box(34, 4, 34, 4));
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit[0], 3);
}

class RTreeBulkLoadTest : public ::testing::TestWithParam<int> {};

TEST_P(RTreeBulkLoadTest, MatchesBruteForceAndKeepsInvariants) {
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(n) * 13 + 1);
  std::vector<std::pair<Box, int64_t>> entries;
  for (int i = 0; i < n; ++i) entries.emplace_back(RandomBox(&rng), i);
  RTree tree;
  ASSERT_TRUE(tree.BulkLoad(entries).ok());
  EXPECT_EQ(tree.size(), static_cast<size_t>(n));
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants();
  for (int q = 0; q < 20; ++q) {
    const Box query = RandomBox(&rng, 1000.0, 150.0);
    std::vector<int64_t> got = tree.SearchIds(query);
    std::sort(got.begin(), got.end());
    std::vector<int64_t> expected;
    for (const auto& [box, id] : entries) {
      if (box.Intersects(query)) expected.push_back(id);
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(got, expected) << "query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RTreeBulkLoadTest,
                         ::testing::Values(1, 5, 8, 9, 64, 65, 1000, 5000));

TEST(RTreeBulkLoadTest, RequiresEmptyTreeAndValidBoxes) {
  RTree tree;
  ASSERT_TRUE(tree.Insert(Box(0, 0, 1, 1), 0).ok());
  EXPECT_EQ(tree.BulkLoad({{Box(2, 2, 3, 3), 1}}).code(),
            StatusCode::kFailedPrecondition);
  RTree fresh;
  EXPECT_EQ(fresh.BulkLoad({{Box::Empty(), 1}}).code(),
            StatusCode::kInvalidArgument);
  RTree empty_ok;
  EXPECT_TRUE(empty_ok.BulkLoad({}).ok());
  EXPECT_TRUE(empty_ok.empty());
}

TEST(RTreeBulkLoadTest, InsertAfterBulkLoadStillWorks) {
  Rng rng(77);
  std::vector<std::pair<Box, int64_t>> entries;
  for (int i = 0; i < 100; ++i) entries.emplace_back(RandomBox(&rng), i);
  RTree tree;
  ASSERT_TRUE(tree.BulkLoad(entries).ok());
  for (int i = 100; i < 150; ++i) {
    ASSERT_TRUE(tree.Insert(RandomBox(&rng), i).ok());
  }
  EXPECT_EQ(tree.size(), 150u);
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants();
}

TEST(RTreeTest, MoveSemantics) {
  RTree tree;
  ASSERT_TRUE(tree.Insert(Box(0, 0, 1, 1), 7).ok());
  RTree moved = std::move(tree);
  EXPECT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved.SearchIds(Box(0, 0, 2, 2)), std::vector<int64_t>{7});
}

}  // namespace
}  // namespace cardir
