#include "segmentation/raster.h"

#include <gtest/gtest.h>

namespace cardir {
namespace {

TEST(RasterTest, ConstructionAndAccess) {
  Raster raster(8, 6);
  EXPECT_EQ(raster.width(), 8);
  EXPECT_EQ(raster.height(), 6);
  EXPECT_EQ(raster.at(0, 0), 0);
  raster.set(3, 2, 7);
  EXPECT_EQ(raster.at(3, 2), 7);
  EXPECT_TRUE(raster.InBounds(7, 5));
  EXPECT_FALSE(raster.InBounds(8, 0));
  EXPECT_FALSE(raster.InBounds(0, -1));
}

TEST(RasterTest, FillRectClipsToBounds) {
  Raster raster(10, 10);
  raster.FillRect(-5, -5, 3, 3, 1);
  EXPECT_EQ(raster.CountLabel(1), 9u);
  raster.FillRect(8, 8, 20, 20, 2);
  EXPECT_EQ(raster.CountLabel(2), 4u);
}

TEST(RasterTest, FillRectOverwrites) {
  Raster raster(10, 10);
  raster.FillRect(0, 0, 10, 10, 1);
  raster.FillRect(2, 2, 4, 4, 2);
  EXPECT_EQ(raster.CountLabel(2), 4u);
  EXPECT_EQ(raster.CountLabel(1), 96u);
}

TEST(RasterTest, FillDiskAreaIsRoughlyPiR2) {
  Raster raster(100, 100);
  raster.FillDisk(50, 50, 20, 3);
  const double area = static_cast<double>(raster.CountLabel(3));
  const double expected = 3.14159265 * 20 * 20;
  EXPECT_NEAR(area, expected, 0.05 * expected);
}

TEST(RasterTest, FillPolygonMatchesContainment) {
  Raster raster(20, 20);
  Polygon triangle({Point(2, 2), Point(2, 18), Point(18, 2)});
  triangle.EnsureClockwise();
  raster.FillPolygon(triangle, 4);
  // Spot checks at cell centres.
  EXPECT_EQ(raster.at(3, 3), 4);
  EXPECT_EQ(raster.at(16, 16), 0);
  // Painted area approximates the polygon area (128).
  EXPECT_NEAR(static_cast<double>(raster.CountLabel(4)), triangle.Area(),
              0.15 * triangle.Area());
}

TEST(RasterTest, LabelsEnumerationSkipsBackground) {
  Raster raster(5, 5);
  raster.set(0, 0, 3);
  raster.set(1, 1, 1);
  raster.set(2, 2, 3);
  EXPECT_EQ(raster.Labels(), (std::vector<int>{1, 3}));
}

}  // namespace
}  // namespace cardir
