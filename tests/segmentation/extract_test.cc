#include "segmentation/extract.h"

#include <gtest/gtest.h>

#include "core/compute_cdr.h"

namespace cardir {
namespace {

TEST(ExtractRegionTest, SingleRectangleBecomesOnePolygon) {
  Raster raster(10, 10);
  raster.FillRect(2, 3, 6, 8, 1);
  auto region = ExtractRegion(raster, 1);
  ASSERT_TRUE(region.ok()) << region.status();
  ASSERT_EQ(region->polygon_count(), 1u);  // Rows merge into one rectangle.
  EXPECT_EQ(region->BoundingBox(), Box(2, 3, 6, 8));
  EXPECT_DOUBLE_EQ(region->Area(), 20.0);
  EXPECT_TRUE(region->ValidateStrict().ok());
}

TEST(ExtractRegionTest, AreaEqualsCellCountTimesCellSize) {
  Raster raster(50, 50);
  raster.FillDisk(25, 25, 12, 1);
  auto region = ExtractRegion(raster, 1, /*cell_size=*/2.0);
  ASSERT_TRUE(region.ok());
  EXPECT_DOUBLE_EQ(region->Area(),
                   static_cast<double>(raster.CountLabel(1)) * 4.0);
  EXPECT_TRUE(region->Validate().ok());
}

TEST(ExtractRegionTest, DisconnectedLabel) {
  Raster raster(10, 10);
  raster.FillRect(0, 0, 2, 2, 1);
  raster.FillRect(7, 7, 9, 9, 1);
  auto region = ExtractRegion(raster, 1);
  ASSERT_TRUE(region.ok());
  EXPECT_EQ(region->polygon_count(), 2u);
  EXPECT_TRUE(region->Contains(Point(1, 1)));
  EXPECT_TRUE(region->Contains(Point(8, 8)));
  EXPECT_FALSE(region->Contains(Point(5, 5)));
}

TEST(ExtractRegionTest, LabelWithHole) {
  Raster raster(12, 12);
  raster.FillRect(1, 1, 11, 11, 1);
  raster.FillRect(4, 4, 8, 8, 0);  // Punch a hole.
  auto region = ExtractRegion(raster, 1);
  ASSERT_TRUE(region.ok());
  EXPECT_DOUBLE_EQ(region->Area(), 100.0 - 16.0);
  EXPECT_FALSE(region->Contains(Point(6, 6)));
  EXPECT_TRUE(region->Contains(Point(2, 6)));
  EXPECT_TRUE(region->ValidateStrict().ok());
}

TEST(ExtractRegionTest, ErrorsOnMissingOrBackgroundLabel) {
  Raster raster(4, 4);
  EXPECT_EQ(ExtractRegion(raster, 1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(ExtractRegion(raster, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(ExtractRegion(raster, 1, 0.0).ok());
}

TEST(ExtractConfigurationTest, BuildsAnnotatedConfigurationWithRelations) {
  Raster raster(40, 40);
  raster.FillDisk(10, 10, 6, 1);
  raster.FillDisk(30, 30, 5, 2);
  raster.FillRect(25, 3, 38, 9, 3);
  auto config = ExtractConfiguration(
      raster, {{1, "lake", "Lake", "blue"},
               {2, "forest", "Forest", "green"},
               {3, "city", "City", "red"}});
  ASSERT_TRUE(config.ok()) << config.status();
  EXPECT_EQ(config->regions().size(), 3u);
  EXPECT_EQ(config->relation_count(), 6u);
  // The forest (around (30,30)) is northeast-ish of the lake (around
  // (10,10)): the stored relation must only use N/NE/E tiles.
  auto relation = config->StoredRelation("forest", "lake");
  ASSERT_TRUE(relation.has_value());
  for (Tile t : relation->Tiles()) {
    EXPECT_TRUE(t == Tile::kNE || t == Tile::kN || t == Tile::kE)
        << TileName(t);
  }
}

TEST(ExtractConfigurationTest, FailsOnUnknownLabel) {
  Raster raster(8, 8);
  raster.FillRect(0, 0, 2, 2, 1);
  EXPECT_FALSE(
      ExtractConfiguration(raster, {{9, "ghost", "Ghost", "grey"}}).ok());
}

TEST(ExtractRegionTest, ExtractedRelationsMatchPaintedLayout) {
  // Paint two blobs with a known relative position and check Compute-CDR on
  // the vectorised output.
  Raster raster(30, 30);
  raster.FillRect(2, 2, 8, 8, 1);    // Southwest blob.
  raster.FillRect(20, 20, 28, 28, 2);  // Northeast blob.
  const Region a = *ExtractRegion(raster, 1);
  const Region b = *ExtractRegion(raster, 2);
  EXPECT_EQ(ComputeCdr(a, b)->ToString(), "SW");
  EXPECT_EQ(ComputeCdr(b, a)->ToString(), "NE");
}

}  // namespace
}  // namespace cardir
