#include "audit/audit.h"

#include <array>

#include "audit/invariants.h"
#include "core/compute_cdr.h"
#include "core/compute_cdr_percent.h"
#include "geometry/polygon.h"
#include "gtest/gtest.h"

namespace cardir {
namespace {

// Deliberate-violation tests install this counting handler so the default
// log-and-abort handler does not kill the test binary.
int g_handled = 0;
void CountingHandler(const char*, int, const std::string&) { ++g_handled; }

class AuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_handled = 0;
    previous_ = SetAuditFailureHandler(&CountingHandler);
    ResetAuditFailureCount();
  }
  void TearDown() override {
    SetAuditFailureHandler(previous_);
    ResetAuditFailureCount();
  }

  AuditFailureHandler previous_ = nullptr;
};

PercentageMatrix ValidMatrix() {
  std::array<double, kNumTiles> areas{};
  areas[static_cast<int>(Tile::kB)] = 30.0;
  areas[static_cast<int>(Tile::kN)] = 50.0;
  areas[static_cast<int>(Tile::kNE)] = 20.0;
  return PercentageMatrix::FromAreas(areas);
}

TEST_F(AuditTest, PercentMatrixAcceptsValidMatrix) {
  EXPECT_EQ(AuditPercentMatrix(ValidMatrix()), std::nullopt);
}

TEST_F(AuditTest, PercentMatrixRejectsBadTotal) {
  PercentageMatrix matrix = ValidMatrix();
  matrix.set(Tile::kS, 25.0);  // Total now 125.
  const AuditResult failure = AuditPercentMatrix(matrix);
  ASSERT_TRUE(failure.has_value());
  EXPECT_NE(failure->find("total"), std::string::npos);
}

TEST_F(AuditTest, PercentMatrixRejectsNegativeEntry) {
  PercentageMatrix matrix = ValidMatrix();
  matrix.set(Tile::kN, matrix.at(Tile::kN) - 0.5);
  matrix.set(Tile::kS, -0.5);  // Keeps the total at 100 but goes negative.
  matrix.set(Tile::kB, matrix.at(Tile::kB) + 1.0);
  const AuditResult failure = AuditPercentMatrix(matrix);
  ASSERT_TRUE(failure.has_value());
  EXPECT_NE(failure->find("negative"), std::string::npos);
}

TEST_F(AuditTest, QualQuantAgreementPassesOnSubset) {
  const CardinalRelation qualitative({Tile::kB, Tile::kN, Tile::kNE,
                                      Tile::kE});
  // Qualitative ⊇ nonzero tiles is fine (boundary-touch tiles).
  EXPECT_EQ(AuditQualQuantAgreement(qualitative, ValidMatrix()), std::nullopt);
}

TEST_F(AuditTest, QualQuantAgreementCatchesMissingTile) {
  const CardinalRelation qualitative({Tile::kB, Tile::kN});  // Missing NE.
  const AuditResult failure =
      AuditQualQuantAgreement(qualitative, ValidMatrix());
  ASSERT_TRUE(failure.has_value());
  EXPECT_NE(failure->find("NE"), std::string::npos);
}

TEST_F(AuditTest, TrapezoidTotalsHoldForBothOrientations) {
  Polygon clockwise({{0, 0}, {0, 4}, {6, 4}, {6, 0}});
  EXPECT_EQ(AuditTrapezoidTotals(clockwise), std::nullopt);
  Polygon counter = clockwise;
  counter.Reverse();
  EXPECT_EQ(AuditTrapezoidTotals(counter), std::nullopt);
}

TEST_F(AuditTest, TileAreasMustSumToRegionArea) {
  const Region region(MakeRectangle(0, 0, 10, 10));
  std::array<double, kNumTiles> areas{};
  areas[static_cast<int>(Tile::kB)] = 100.0;
  EXPECT_EQ(AuditTileAreasMatchRegion(areas, 100.0, region), std::nullopt);
  areas[static_cast<int>(Tile::kB)] = 90.0;  // Lost area.
  EXPECT_TRUE(AuditTileAreasMatchRegion(areas, 90.0, region).has_value());
}

TEST_F(AuditTest, PrefilterAgreementChecksFullAlgorithm) {
  const Region primary(MakeRectangle(20, 20, 30, 30));
  const Region reference(MakeRectangle(0, 0, 10, 10));
  const CardinalRelation ne(Tile::kNE);
  EXPECT_EQ(AuditPrefilterAgreement(ne, primary, reference), std::nullopt);
  const CardinalRelation wrong(Tile::kSW);
  EXPECT_TRUE(AuditPrefilterAgreement(wrong, primary, reference).has_value());
}

TEST_F(AuditTest, ExactCover) {
  EXPECT_EQ(AuditExactCover(42, 42, "cover"), std::nullopt);
  const AuditResult failure = AuditExactCover(41, 42, "cover");
  ASSERT_TRUE(failure.has_value());
  EXPECT_NE(failure->find("41"), std::string::npos);
}

TEST_F(AuditTest, MacroRoutesFailuresToInstalledHandler) {
  CARDIR_AUDIT(AuditExactCover(1, 2, "deliberate"));
  if (kAuditEnabled) {
    EXPECT_EQ(g_handled, 1);
    EXPECT_EQ(AuditFailureCount(), 1u);
  } else {
    // Compiled out: the macro must not evaluate its argument.
    EXPECT_EQ(g_handled, 0);
    EXPECT_EQ(AuditFailureCount(), 0u);
  }
}

TEST_F(AuditTest, MacroPassesCleanValidatorSilently) {
  CARDIR_AUDIT(AuditExactCover(7, 7, "clean"));
  EXPECT_EQ(g_handled, 0);
  EXPECT_EQ(AuditFailureCount(), 0u);
}

TEST_F(AuditTest, HandlerRestoreReturnsPrevious) {
  // SetUp installed CountingHandler; a nested swap must hand it back.
  const AuditFailureHandler inner = SetAuditFailureHandler(nullptr);
  EXPECT_EQ(inner, &CountingHandler);
  SetAuditFailureHandler(inner);
}

TEST_F(AuditTest, SeamsStaySilentOnValidInput) {
  // End-to-end: the audit seams inside Compute-CDR%/Compute-CDR see only
  // holding invariants on a well-formed pair.
  const Region primary(MakeRectangle(12, 4, 18, 16));
  const Region reference(MakeRectangle(0, 0, 10, 10));
  ASSERT_TRUE(ComputeCdrPercentDetailed(primary, reference).ok());
  ASSERT_TRUE(ComputeCdr(primary, reference).ok());
  EXPECT_EQ(AuditFailureCount(), 0u);
}

}  // namespace
}  // namespace cardir
