// Randomised sweep of the paper-level invariants behind the CARDIR_AUDIT
// layer. The validators are plain functions, so this tier bites in every
// build — in plain builds it checks the algorithms directly; in audit
// builds (-DCARDIR_AUDIT=ON, as the sanitizer presets configure) the same
// invariants additionally fire inside the algorithm/engine seams, and this
// test verifies that no seam reported a failure.

#include <vector>

#include "audit/audit.h"
#include "audit/invariants.h"
#include "core/compute_cdr.h"
#include "core/compute_cdr_percent.h"
#include "engine/batch_engine.h"
#include "engine/prefilter.h"
#include "geometry/region.h"
#include "gtest/gtest.h"
#include "properties/random_instances.h"
#include "util/random.h"

namespace cardir {
namespace {

TEST(InvariantsAuditTest, RandomPairsHoldAllPercentInvariants) {
  Rng rng(0xA0D17E5);
  for (int iteration = 0; iteration < 300; ++iteration) {
    const Region primary = RandomTestRegion(&rng);
    const Region reference = RandomTestRegion(&rng);
    const auto percent = ComputeCdrPercentDetailed(primary, reference);
    ASSERT_TRUE(percent.ok()) << percent.status();
    const auto qualitative = ComputeCdr(primary, reference);
    ASSERT_TRUE(qualitative.ok()) << qualitative.status();

    EXPECT_EQ(AuditPercentMatrix(percent->matrix), std::nullopt)
        << "iteration " << iteration;
    EXPECT_EQ(AuditTileAreasMatchRegion(percent->tile_areas,
                                        percent->total_area, primary),
              std::nullopt)
        << "iteration " << iteration;
    EXPECT_EQ(AuditQualQuantAgreement(*qualitative, percent->matrix),
              std::nullopt)
        << "iteration " << iteration << "\nqualitative "
        << qualitative->ToString() << "\n"
        << percent->matrix.ToString();
  }
}

TEST(InvariantsAuditTest, RandomPolygonsHoldTrapezoidTotals) {
  Rng rng(0x7E57ED);
  for (int iteration = 0; iteration < 500; ++iteration) {
    const Region region = RandomTestRegion(&rng);
    for (const Polygon& polygon : region.polygons()) {
      EXPECT_EQ(AuditTrapezoidTotals(polygon), std::nullopt)
          << "iteration " << iteration;
    }
  }
}

TEST(InvariantsAuditTest, BoxResolvedPairsAgreeWithComputeCdr) {
  Rng rng(0xB0B0);
  int resolved = 0;
  for (int iteration = 0; iteration < 400; ++iteration) {
    const Region primary = RandomTestRegion(&rng);
    const Region reference = RandomTestRegion(&rng);
    const auto bounded = MbbPrefilterRelation(primary.BoundingBox(),
                                              reference.BoundingBox());
    if (!bounded.has_value()) continue;
    ++resolved;
    EXPECT_EQ(AuditPrefilterAgreement(*bounded, primary, reference),
              std::nullopt)
        << "iteration " << iteration;
  }
  // The 200×200 canvas leaves plenty of tile-separated pairs; make sure
  // the loop exercised the prefilter at all.
  EXPECT_GT(resolved, 20);
}

TEST(InvariantsAuditTest, EngineRunTripsNoAuditSeam) {
  // A full engine run (parallel, small chunks) across every seam — the
  // pool's exact-cover audit, the per-pair prefilter audits, the sink
  // coverage audit — must stay silent. In plain builds the seams are
  // compiled out and the count is trivially zero.
  ResetAuditFailureCount();
  Rng rng(0xE7617E);
  std::vector<Region> regions;
  for (int i = 0; i < 20; ++i) regions.push_back(RandomTestRegion(&rng));

  EngineOptions options;
  options.threads = 4;
  options.chunk_size = 1;
  EngineStats stats;
  const auto pairs = ComputeAllPairs(regions, options, &stats);
  ASSERT_TRUE(pairs.ok()) << pairs.status();
  EXPECT_EQ(pairs->size(), regions.size() * (regions.size() - 1));
  EXPECT_EQ(stats.prefiltered_pairs + stats.computed_pairs,
            stats.total_pairs);
  EXPECT_EQ(AuditFailureCount(), 0u);
}

}  // namespace
}  // namespace cardir
