#include "pointmodels/cone_direction.h"

#include <gtest/gtest.h>

#include "core/compute_cdr.h"

namespace cardir {
namespace {

TEST(ConeBetweenPointsTest, CardinalAxes) {
  const Point origin(0, 0);
  EXPECT_EQ(ConeBetweenPoints(origin, Point(0, 5)), ConeDirection::kNorth);
  EXPECT_EQ(ConeBetweenPoints(origin, Point(5, 0)), ConeDirection::kEast);
  EXPECT_EQ(ConeBetweenPoints(origin, Point(0, -5)), ConeDirection::kSouth);
  EXPECT_EQ(ConeBetweenPoints(origin, Point(-5, 0)), ConeDirection::kWest);
}

TEST(ConeBetweenPointsTest, Diagonals) {
  const Point origin(0, 0);
  EXPECT_EQ(ConeBetweenPoints(origin, Point(5, 5)),
            ConeDirection::kNortheast);
  EXPECT_EQ(ConeBetweenPoints(origin, Point(-5, 5)),
            ConeDirection::kNorthwest);
  EXPECT_EQ(ConeBetweenPoints(origin, Point(5, -5)),
            ConeDirection::kSoutheast);
  EXPECT_EQ(ConeBetweenPoints(origin, Point(-5, -5)),
            ConeDirection::kSouthwest);
}

TEST(ConeBetweenPointsTest, SectorBoundariesAndCoincidence) {
  const Point origin(0, 0);
  EXPECT_EQ(ConeBetweenPoints(origin, origin), ConeDirection::kSame);
  // Just inside the North cone (67.6°) vs just inside Northeast (67.4°).
  EXPECT_EQ(ConeBetweenPoints(origin, Point(0.41, 1.0)),
            ConeDirection::kNorth);
  EXPECT_EQ(ConeBetweenPoints(origin, Point(0.43, 1.0)),
            ConeDirection::kNortheast);
}

TEST(ConeBetweenRegionsTest, UsesAreaCentroids) {
  const Region a(MakeRectangle(10, 10, 12, 12));  // Centroid (11, 11).
  const Region b(MakeRectangle(0, 0, 2, 2));      // Centroid (1, 1).
  EXPECT_EQ(*ConeBetweenRegions(a, b), ConeDirection::kNortheast);
  EXPECT_EQ(*ConeBetweenRegions(b, a), ConeDirection::kSouthwest);
}

TEST(ConeBetweenRegionsTest, AgreesOnCleanSingleTileCases) {
  const Region b(MakeRectangle(0, 0, 10, 10));
  const Region a(MakeRectangle(2, -6, 8, -2));  // a S b in the tile model.
  EXPECT_EQ(*ConeBetweenRegions(a, b), ConeDirection::kSouth);
  EXPECT_TRUE(
      ConeAgreesWithRelation(*ConeBetweenRegions(a, b), *ComputeCdr(a, b)));
}

TEST(ConeBetweenRegionsTest, CannotExpressMultiTileRelations) {
  // Fig. 1c: c NE:E b in the tile model; the cone model collapses it to a
  // single sector — the expressiveness gap the paper's intro points out.
  const Region b(MakeRectangle(0, 0, 10, 10));
  const Region c(MakeRectangle(12, 4, 18, 16));
  const CardinalRelation tile_relation = *ComputeCdr(c, b);
  EXPECT_EQ(tile_relation.ToString(), "NE:E");
  EXPECT_FALSE(
      ConeAgreesWithRelation(*ConeBetweenRegions(c, b), tile_relation));
}

TEST(ConeBetweenRegionsTest, SurroundCollapsesArbitrarily) {
  // A frame around b: the tile model reports all eight peripheral tiles;
  // the cone model reports "same" (coincident centroids) — useless here.
  Region frame;
  frame.AddPolygon(MakeRectangle(-10, -10, 20, -5));
  frame.AddPolygon(MakeRectangle(-10, 15, 20, 20));
  frame.AddPolygon(MakeRectangle(-10, -5, -5, 15));
  frame.AddPolygon(MakeRectangle(15, -5, 20, 15));
  const Region b(MakeRectangle(0, 0, 10, 10));
  EXPECT_EQ(*ConeBetweenRegions(frame, b), ConeDirection::kSame);
}

TEST(ConeToTileTest, MapsAllSectors) {
  EXPECT_EQ(ConeToTile(ConeDirection::kNorth), Tile::kN);
  EXPECT_EQ(ConeToTile(ConeDirection::kSouthwest), Tile::kSW);
  EXPECT_EQ(ConeToTile(ConeDirection::kSame), Tile::kB);
}

TEST(CentroidTest, PolygonAndRegionCentroids) {
  EXPECT_EQ(MakeRectangle(0, 0, 4, 2).Centroid(), Point(2, 1));
  Polygon triangle({Point(0, 0), Point(0, 3), Point(3, 0)});
  triangle.EnsureClockwise();
  EXPECT_EQ(triangle.Centroid(), Point(1, 1));
  // Region centroid is area-weighted: a 4-area square at (1,1) and a
  // 1-area square at (5.5, 0.5) → ((4·1 + 1·5.5)/5, (4·1 + 1·0.5)/5).
  Region region;
  region.AddPolygon(MakeRectangle(0, 0, 2, 2));
  region.AddPolygon(MakeRectangle(5, 0, 6, 1));
  EXPECT_EQ(region.Centroid(), Point(9.5 / 5.0, 4.5 / 5.0));
}

}  // namespace
}  // namespace cardir
