#include "pointmodels/mbb_direction.h"

#include <gtest/gtest.h>

#include "core/compute_cdr.h"
#include "properties/random_instances.h"

namespace cardir {
namespace {

TEST(OrderOnAxisTest, ThreeOutcomes) {
  EXPECT_EQ(OrderOnAxis(0, 2, 5, 9), AxisOrder::kBefore);
  EXPECT_EQ(OrderOnAxis(0, 5, 5, 9), AxisOrder::kBefore);  // Touch = before.
  EXPECT_EQ(OrderOnAxis(6, 8, 5, 9), AxisOrder::kOverlap);
  EXPECT_EQ(OrderOnAxis(4, 6, 5, 9), AxisOrder::kOverlap);
  EXPECT_EQ(OrderOnAxis(9, 12, 5, 9), AxisOrder::kAfter);
  EXPECT_EQ(OrderOnAxis(10, 12, 5, 9), AxisOrder::kAfter);
}

TEST(MbbBetweenBoxesTest, NineOutcomes) {
  const Box b(0, 0, 10, 10);
  EXPECT_EQ(MbbBetweenBoxes(Box(2, 12, 8, 14), b), MbbDirection::kNorth);
  EXPECT_EQ(MbbBetweenBoxes(Box(12, 12, 14, 14), b), MbbDirection::kNortheast);
  EXPECT_EQ(MbbBetweenBoxes(Box(12, 2, 14, 8), b), MbbDirection::kEast);
  EXPECT_EQ(MbbBetweenBoxes(Box(12, -4, 14, -2), b), MbbDirection::kSoutheast);
  EXPECT_EQ(MbbBetweenBoxes(Box(2, -4, 8, -2), b), MbbDirection::kSouth);
  EXPECT_EQ(MbbBetweenBoxes(Box(-4, -4, -2, -2), b), MbbDirection::kSouthwest);
  EXPECT_EQ(MbbBetweenBoxes(Box(-4, 2, -2, 8), b), MbbDirection::kWest);
  EXPECT_EQ(MbbBetweenBoxes(Box(-4, 12, -2, 14), b), MbbDirection::kNorthwest);
  EXPECT_EQ(MbbBetweenBoxes(Box(2, 2, 8, 8), b), MbbDirection::kMixed);
  // Diagonal overlap is also mixed — the model cannot see inside the boxes.
  EXPECT_EQ(MbbBetweenBoxes(Box(5, 5, 15, 15), b), MbbDirection::kMixed);
}

TEST(MbbBetweenRegionsTest, CleanCasesMatchTheTileModel) {
  const Region b(MakeRectangle(0, 0, 10, 10));
  const Region a(MakeRectangle(2, -6, 8, -2));
  EXPECT_EQ(*MbbBetweenRegions(a, b), MbbDirection::kSouth);
  EXPECT_TRUE(MbbConsistentWithRelation(*MbbBetweenRegions(a, b),
                                        *ComputeCdr(a, b)));
}

TEST(MbbBetweenRegionsTest, MixedLosesTheSurroundStructure) {
  // Fig. 1d-style composite: the tile model gives an 8-tile relation; the
  // MBB model collapses everything to "mixed".
  Region frame;
  frame.AddPolygon(MakeRectangle(-10, -10, 20, -5));
  frame.AddPolygon(MakeRectangle(-10, 15, 20, 20));
  frame.AddPolygon(MakeRectangle(-10, -5, -5, 15));
  frame.AddPolygon(MakeRectangle(15, -5, 20, 15));
  const Region b(MakeRectangle(0, 0, 10, 10));
  EXPECT_EQ(*MbbBetweenRegions(frame, b), MbbDirection::kMixed);
  EXPECT_EQ(ComputeCdr(frame, b)->TileCount(), 8);
}

TEST(MbbConsistencyTest, DirectionalVerdictsRestrictTiles) {
  EXPECT_TRUE(MbbConsistentWithRelation(MbbDirection::kNorth,
                                        *CardinalRelation::Parse("N")));
  EXPECT_TRUE(MbbConsistentWithRelation(MbbDirection::kNorth,
                                        *CardinalRelation::Parse("NW:N:NE")));
  EXPECT_FALSE(MbbConsistentWithRelation(MbbDirection::kNorth,
                                         *CardinalRelation::Parse("B:N")));
  EXPECT_TRUE(MbbConsistentWithRelation(MbbDirection::kEast,
                                        *CardinalRelation::Parse("NE:E:SE")));
  EXPECT_FALSE(MbbConsistentWithRelation(MbbDirection::kSouthwest,
                                         *CardinalRelation::Parse("SW:S")));
  // Mixed is consistent with anything.
  EXPECT_TRUE(MbbConsistentWithRelation(
      MbbDirection::kMixed, *CardinalRelation::Parse("B:S:SW:W:NW")));
}

// Property: the MBB direction is always *consistent* with the tile model —
// it is a sound coarsening (never asserts a separation the tile relation
// violates).
TEST(MbbDirectionPropertyTest, SoundCoarseningOfTheTileModel) {
  Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    const Region a = RandomTestRegion(&rng);
    const Region b = RandomTestRegion(&rng);
    const MbbDirection coarse = *MbbBetweenRegions(a, b);
    const CardinalRelation fine = *ComputeCdr(a, b);
    EXPECT_TRUE(MbbConsistentWithRelation(coarse, fine))
        << "trial " << trial << ": " << MbbDirectionName(coarse) << " vs "
        << fine.ToString();
  }
}

}  // namespace
}  // namespace cardir
