// Locks the cardir-analyzer contract: exact diagnostic ids and counts over
// the fixture corpus, suppression + baseline mechanics, path filtering, and
// — the regression that matters — zero findings over the real src/ tree.
//
// The test shells out to the built binary (paths injected by CMake), so it
// exercises the CLI exactly as CI and tools/lint.sh do.

#include <array>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace {

struct RunResult {
  int exit_code = -1;
  std::vector<std::string> findings;  // stdout lines.
};

RunResult RunAnalyzer(const std::string& args) {
  const std::string command =
      std::string(CARDIR_ANALYZER_BIN) + " " + args + " 2>/dev/null";
  RunResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::string output;
  std::array<char, 4096> buffer;
  size_t read = 0;
  while ((read = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    output.append(buffer.data(), read);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  size_t start = 0;
  while (start < output.size()) {
    size_t end = output.find('\n', start);
    if (end == std::string::npos) end = output.size();
    if (end > start) result.findings.push_back(output.substr(start, end - start));
    start = end + 1;
  }
  return result;
}

// "path:line: error: [check-id] message" -> check-id ("" if unparsable).
std::string CheckIdOf(const std::string& line) {
  const size_t open = line.find('[');
  const size_t close = line.find(']', open);
  if (open == std::string::npos || close == std::string::npos) return "";
  return line.substr(open + 1, close - open - 1);
}

std::map<std::string, int> CountByCheck(const RunResult& result) {
  std::map<std::string, int> counts;
  for (const std::string& line : result.findings) ++counts[CheckIdOf(line)];
  return counts;
}

std::string Fixtures() { return CARDIR_ANALYZER_FIXTURES; }

TEST(AnalyzerFixtureTest, CorpusFindingsAreExact) {
  const RunResult result = RunAnalyzer("--src " + Fixtures());
  EXPECT_EQ(result.exit_code, 1);
  const std::map<std::string, int> counts = CountByCheck(result);
  const std::map<std::string, int> expected = {
      {"unchecked-result", 2},  {"scratch-escape", 4},
      {"float-eq", 2},          {"obs-macro-side-effect", 5},
      {"lock-across-compute", 1},
  };
  EXPECT_EQ(counts, expected);
  EXPECT_EQ(result.findings.size(), 14u);
  // Every finding must come from a *_bad fixture — the *_good twins (and
  // the annotated line in float_eq_good.cc) must stay silent.
  for (const std::string& line : result.findings) {
    EXPECT_NE(line.find("_bad.cc"), std::string::npos) << line;
  }
}

TEST(AnalyzerFixtureTest, GoodFixturesRunCleanInIsolation) {
  for (const char* fixture :
       {"unchecked_result_good.cc", "core/float_eq_good.cc",
        "scratch_escape_good.cc", "obs_macro_good.cc",
        "engine/lock_across_compute_good.cc",
        "engine/sweep_scratch_escape_good.cc",
        "engine/delta_scratch_escape_good.cc"}) {
    const RunResult result = RunAnalyzer(Fixtures() + "/" + fixture);
    EXPECT_EQ(result.exit_code, 0) << fixture;
    EXPECT_TRUE(result.findings.empty()) << fixture;
  }
}

TEST(AnalyzerFixtureTest, PathFilterScopesFloatEqToGeometryDirs) {
  // Identical comparisons, one file under core/, one not: only the core/
  // file is reported by default, both with --no-path-filter.
  const std::string elsewhere = Fixtures() + "/float_eq_elsewhere.cc";
  EXPECT_EQ(RunAnalyzer(elsewhere).exit_code, 0);
  const RunResult unfiltered = RunAnalyzer("--no-path-filter " + elsewhere);
  EXPECT_EQ(unfiltered.exit_code, 1);
  EXPECT_EQ(CountByCheck(unfiltered)["float-eq"], 2);
}

TEST(AnalyzerFixtureTest, ChecksFlagRestrictsToNamedChecks) {
  const RunResult result =
      RunAnalyzer("--checks float-eq,lock-across-compute --src " + Fixtures());
  EXPECT_EQ(result.exit_code, 1);
  const std::map<std::string, int> counts = CountByCheck(result);
  const std::map<std::string, int> expected = {{"float-eq", 2},
                                               {"lock-across-compute", 1}};
  EXPECT_EQ(counts, expected);
  EXPECT_EQ(RunAnalyzer("--checks no-such-check --src " + Fixtures()).exit_code,
            2);
}

TEST(AnalyzerFixtureTest, BaselineRoundTripSilencesFindings) {
  const std::string baseline = testing::TempDir() + "/analyzer_baseline.txt";
  const RunResult write = RunAnalyzer("--src " + Fixtures() +
                                      " --write-baseline " + baseline);
  EXPECT_EQ(write.exit_code, 0);
  const RunResult replay =
      RunAnalyzer("--src " + Fixtures() + " --baseline " + baseline);
  EXPECT_EQ(replay.exit_code, 0);
  EXPECT_TRUE(replay.findings.empty());
  std::remove(baseline.c_str());
}

TEST(AnalyzerFixtureTest, ListChecksNamesAllFive) {
  const RunResult result = RunAnalyzer("--list-checks");
  EXPECT_EQ(result.exit_code, 0);
  std::string all;
  for (const std::string& line : result.findings) all += line + "\n";
  for (const char* check :
       {"unchecked-result", "scratch-escape", "float-eq",
        "obs-macro-side-effect", "lock-across-compute"}) {
    EXPECT_NE(all.find(check), std::string::npos) << check;
  }
}

// The adoption regression: src/ must stay analyzer-clean. Every historical
// finding was fixed or annotated in place, and the shipped baseline is
// empty — new findings therefore fail this test (and CI) immediately.
TEST(AnalyzerFixtureTest, SrcTreeIsClean) {
  const RunResult result = RunAnalyzer(std::string("--src ") +
                                       CARDIR_ANALYZER_SRC + " --baseline " +
                                       CARDIR_ANALYZER_BASELINE);
  EXPECT_EQ(result.exit_code, 0);
  for (const std::string& line : result.findings) {
    ADD_FAILURE() << "new analyzer finding: " << line;
  }
}

}  // namespace
