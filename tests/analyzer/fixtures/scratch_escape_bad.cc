// Fixture: per-worker scratch captured by reference into lambdas that are
// handed to thread-escaping APIs. Expected findings: 2.
namespace cardir {

void Bad(ThreadPool& pool, TaskQueue& tasks) {
  WorkerScratch scratch;
  // BAD: explicit by-reference capture into an async submission.
  pool.Submit([&scratch] { Fill(scratch); });

  CdrScratch cdr;
  // BAD: default-& capture, body touches the scratch object.
  tasks.push_back([&] { Fill(cdr); });
}

}  // namespace cardir
