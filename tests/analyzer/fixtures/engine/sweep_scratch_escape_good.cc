// Fixture: the sweep join's sanctioned scratch pattern. Expected findings: 0.
namespace cardir {

void Good(ThreadPool& pool) {
  // One SweepScratch per pool participant, captured by reference into the
  // synchronous ParallelFor — exactly how engine/sweep_join.cc runs its
  // count and emit strips. ParallelFor joins before returning, so the
  // capture cannot dangle.
  std::vector<SweepScratch> scratch;
  pool.ParallelFor(100, 0, [&scratch](size_t begin, size_t end, size_t w) {
    SweepRows(scratch[w], begin, end);
  });
}

}  // namespace cardir
