// Fixture: the delta engine's per-apply scratch captured by reference into
// a thread-escaping submission. Expected findings: 1.
namespace cardir {

void Bad(ThreadPool& pool) {
  DeltaScratch ws;
  // BAD: the candidate bitset escapes into an async task that may outlive
  // the apply that owns it.
  pool.Submit([&ws] { GatherCandidates(ws); });
}

}  // namespace cardir
