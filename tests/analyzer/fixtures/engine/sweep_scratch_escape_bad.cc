// Fixture: the sweep join's per-participant scratch captured by reference
// into a thread-escaping submission. Expected findings: 1.
namespace cardir {

void Bad(ThreadPool& pool) {
  SweepScratch ws;
  // BAD: the row bitset escapes into an async task that may outlive it.
  pool.Submit([&ws] { MarkRow(ws); });
}

}  // namespace cardir
