// Fixture: Compute-CDR running under a scoped lock. Expected findings: 1.
namespace cardir {

void Bad(std::mutex& mu, const RegionPair& pair, Results* results) {
  std::lock_guard<std::mutex> lock(mu);
  results->Add(ComputeCdrPercent(pair));  // BAD: compute while holding mu.
}

}  // namespace cardir
