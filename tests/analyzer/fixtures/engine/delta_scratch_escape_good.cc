// Fixture: the delta engine's sanctioned scratch pattern. Expected
// findings: 0.
namespace cardir {

void Good(DeltaEngine& engine) {
  // One DeltaScratch per engine, reused across applies under the engine's
  // mutex — exactly how engine/delta_engine.cc runs its gather/resolve
  // loop. The reference never leaves the locked scope.
  DeltaScratch& ws = engine.scratch();
  GatherCandidates(ws);
  ResolveDirtyPairs(ws);
}

}  // namespace cardir
