// Fixture: collect under the lock, release, then compute. Expected: 0.
namespace cardir {

void Good(std::mutex& mu, const SharedQueue& queue, Results* results) {
  RegionPair pair;
  {
    std::lock_guard<std::mutex> lock(mu);
    pair = queue.front();
  }  // Lock dies here.
  results->Add(ComputeCdrPercent(pair));
}

}  // namespace cardir
