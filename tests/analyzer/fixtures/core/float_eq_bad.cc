// Fixture: float-eq positives inside a path-filtered (core/) directory.
// Expected findings: 2.
namespace cardir {

double Slope();

bool SameX(double ax, double bx) {
  return ax == bx;  // BAD: double variables compared with ==.
}

bool IsVertical() {
  return Slope() == 0.0;  // BAD: double-returning call vs float literal.
}

}  // namespace cardir
