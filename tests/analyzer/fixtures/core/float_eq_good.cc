// Fixture: sanctioned float comparison styles. Expected findings: 0.
namespace cardir {

bool NearlyEqual(double a, double b, double eps) {
  return (a - b < eps) && (b - a < eps);  // Ordering comparisons are fine.
}

bool IsSentinel(double v) {
  // cardir-analyzer: allow(float-eq): sentinel is assigned, never computed
  return v == -1.0;
}

bool CountsMatch(int lhs_count, int rhs_count) {
  return lhs_count == rhs_count;  // Integers: not the analyzer's business.
}

}  // namespace cardir
