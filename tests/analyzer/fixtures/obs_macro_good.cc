// Fixture: pure-expression macro arguments. Expected findings: 0.
namespace cardir {

void Good(int n, bool strict) {
  ++n;  // Side effect hoisted out of the macro.
  CARDIR_METRIC_COUNT("engine.calls", n);
  CARDIR_METRIC_OBSERVE("engine.size", n <= 4 ? n : 4);  // <= is not =.
  const bool same = (n == 4);  // == inside an argument is a comparison.
  CARDIR_AUDIT(CheckInvariant(same, strict));
  CARDIR_RECORD_EVENT(kChunk, "classify", n, n - 1);  // Pure arguments.
  CARDIR_MEMSTAT_FREE("scratch", n * 2);              // * is not *=.
  CARDIR_PROFILE_FRAME("cdr.compute");
}

}  // namespace cardir
