// Fixture: every sanctioned way to consume a Status/Result. Expected: 0.
#include "util/status.h"

namespace cardir {

Status DoThing();
Result<int> ParseCount(const char* text);

Status GoodCaller() {
  CARDIR_RETURN_IF_ERROR(DoThing());  // Wrapped: not a discard.
  Result<int> parsed = ParseCount("3");
  if (!parsed.ok()) return parsed.status();
  static_cast<void>(parsed.value());  // Guarded by the ok() above.
  Status kept = DoThing();  // Assigned: not a discard.
  if (!kept.ok()) return kept;
  (void)DoThing();  // Explicit (void) cast: deliberate discard.
  return Status::Ok();
}

}  // namespace cardir
