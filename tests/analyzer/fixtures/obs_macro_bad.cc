// Fixture: side effects inside compiled-out observability macros.
// Expected findings: 5 (one per macro invocation).
namespace cardir {

void Bad(int n, int depth, int* hits, const char** names, int i) {
  CARDIR_METRIC_COUNT("engine.calls", ++n);          // BAD: increment vanishes.
  CARDIR_TRACE_SPAN(names[i++]);                     // BAD: index bump vanishes.
  CARDIR_METRIC_GAUGE_SET("engine.depth", depth = *hits);  // BAD: assignment.
  CARDIR_RECORD_EVENT(kChunk, "classify", i++, n);   // BAD: bump vanishes.
  CARDIR_MEMSTAT_ALLOC("scratch", n += depth);       // BAD: accumulation.
}

}  // namespace cardir
