// Fixture: the sanctioned scratch patterns. Expected findings: 0.
namespace cardir {

void Good(ThreadPool& pool) {
  // Per-participant scratch captured by reference into ParallelFor is the
  // engine's canonical pattern: ParallelFor is synchronous (joins before
  // returning), so the capture cannot dangle.
  std::vector<WorkerScratch> scratch;
  pool.ParallelFor(100, 0, [&scratch](size_t begin, size_t end, size_t w) {
    FillRange(scratch[w], begin, end);
  });

  // By-value capture is safe everywhere, even into escaping APIs.
  WorkerScratch seed;
  pool.Submit([seed] { ReadOnly(seed); });
}

}  // namespace cardir
