// Fixture: the same comparisons as core/float_eq_bad.cc but outside the
// core/ + geometry/ path filter — the policy only binds the exact-geometry
// kernels. Expected findings: 0 (with the default path filter).
namespace cardir {

double Gain();

bool SameGain(double a, double b) {
  return a == b;  // Outside the filtered paths: reported only with --no-path-filter.
}

bool IsFlat() {
  return Gain() == 0.0;
}

}  // namespace cardir
