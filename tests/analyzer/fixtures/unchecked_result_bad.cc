// Fixture: both unchecked-result patterns. Expected findings: 2.
#include "util/status.h"

namespace cardir {

Status DoThing();
Result<int> ParseCount(const char* text);

void BadCaller() {
  DoThing();  // BAD: Status discarded as a bare statement.
  Result<int> parsed = ParseCount("3");
  int n = parsed.value();  // BAD: no parsed.ok() guard in sight.
  static_cast<void>(n);
}

}  // namespace cardir
