#include "util/status.h"

#include <gtest/gtest.h>

namespace cardir {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "ok");
}

TEST(StatusTest, FactoryHelpersSetCodeAndMessage) {
  const Status status = Status::InvalidArgument("bad polygon");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad polygon");
  EXPECT_EQ(status.ToString(), "invalid_argument: bad polygon");
}

TEST(StatusTest, EveryCodeHasAName) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "not_found");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "parse_error");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInconsistent), "inconsistent");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "io_error");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "unimplemented");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::NotFound("nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> result = std::make_unique<int>(5);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 5);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::Ok();
}

Result<int> DoubleIfPositive(int x) {
  CARDIR_RETURN_IF_ERROR(FailIfNegative(x));
  return 2 * x;
}

Result<int> ChainWithAssign(int x) {
  CARDIR_ASSIGN_OR_RETURN(int doubled, DoubleIfPositive(x));
  return doubled + 1;
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(DoubleIfPositive(3).ok());
  EXPECT_EQ(*DoubleIfPositive(3), 6);
  EXPECT_EQ(DoubleIfPositive(-1).status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*ChainWithAssign(3), 7);
  EXPECT_EQ(ChainWithAssign(-1).status().code(), StatusCode::kOutOfRange);
}

TEST(ResultDeathTest, AccessingErrorAborts) {
  Result<int> result = Status::Internal("boom");
  EXPECT_DEATH(result.value(), "errored Result");
}

}  // namespace
}  // namespace cardir
