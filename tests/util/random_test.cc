#include "util/random.h"

#include <gtest/gtest.h>

#include <set>

namespace cardir {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextUint64() == b.NextUint64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBelow(10), 10u);
}

TEST(RngTest, NextBelowHitsAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 300; ++i) seen.insert(rng.NextBelow(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble(5.0, 6.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 6.0);
  }
}

TEST(RngTest, NextBoolRoughlyBalanced) {
  Rng rng(17);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.NextBool();
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(21);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace cardir
