#include "util/logging.h"

#include <gtest/gtest.h>

#include "util/status.h"

namespace cardir {
namespace {

TEST(LoggingTest, SetAndGetLevel) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, SuppressedLevelsDoNotEvaluateEagerly) {
  // The macro must short-circuit: streaming below the threshold is free.
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return 42;
  };
  CARDIR_LOG(kDebug) << "value " << count();
  EXPECT_EQ(evaluations, 0);
  SetLogLevel(LogLevel::kWarning);
}

TEST(LoggingTest, EmittedLevelsEvaluate) {
  SetLogLevel(LogLevel::kDebug);
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return 42;
  };
  CARDIR_LOG(kDebug) << "value " << count();
  EXPECT_EQ(evaluations, 1);
  SetLogLevel(LogLevel::kWarning);
}

TEST(LoggingTest, FormatLogLineIsOneCompleteLine) {
  SetLogTimestamps(false);
  const std::string line = internal_logging::FormatLogLine(
      LogLevel::kWarning, "dir/engine.cc", 42, "queue drained");
  // Prefix carries the level and file basename:line; one trailing newline
  // and none embedded, so the single-write(2) emission stays one line.
  EXPECT_EQ(line, "[WARNING engine.cc:42] queue drained\n");
  EXPECT_EQ(line.find('\n'), line.size() - 1);
}

TEST(LoggingTest, TimestampPrefixIsIso8601) {
  SetLogTimestamps(true);
  const std::string line = internal_logging::FormatLogLine(
      LogLevel::kInfo, "a.cc", 1, "msg");
  SetLogTimestamps(false);
  // "[2026-08-06T12:34:56Z INFO a.cc:1] msg\n"
  ASSERT_GE(line.size(), 22u);
  EXPECT_EQ(line[0], '[');
  const std::string stamp = line.substr(1, 20);
  EXPECT_EQ(stamp[4], '-');
  EXPECT_EQ(stamp[7], '-');
  EXPECT_EQ(stamp[10], 'T');
  EXPECT_EQ(stamp[13], ':');
  EXPECT_EQ(stamp[16], ':');
  EXPECT_EQ(stamp[19], 'Z');
  for (size_t i : {0u, 1u, 2u, 3u, 5u, 6u, 8u, 9u, 11u, 12u, 14u, 15u, 17u,
                   18u}) {
    EXPECT_TRUE(stamp[i] >= '0' && stamp[i] <= '9') << stamp;
  }
  EXPECT_NE(line.find(" INFO a.cc:1] msg\n"), std::string::npos) << line;
}

TEST(LoggingTest, TimestampToggleRoundTrips) {
  SetLogTimestamps(true);
  EXPECT_TRUE(GetLogTimestamps());
  SetLogTimestamps(false);
  EXPECT_FALSE(GetLogTimestamps());
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(CARDIR_CHECK(1 == 2) << "math broke", "CHECK failed: 1 == 2");
}

TEST(LoggingDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(CARDIR_CHECK_OK(Status::Internal("boom")), "boom");
}

TEST(LoggingTest, CheckPassesSilently) {
  CARDIR_CHECK(true) << "never rendered";
  CARDIR_CHECK_OK(Status::Ok());
}

}  // namespace
}  // namespace cardir
