#include "util/logging.h"

#include <gtest/gtest.h>

#include "util/status.h"

namespace cardir {
namespace {

TEST(LoggingTest, SetAndGetLevel) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, SuppressedLevelsDoNotEvaluateEagerly) {
  // The macro must short-circuit: streaming below the threshold is free.
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return 42;
  };
  CARDIR_LOG(kDebug) << "value " << count();
  EXPECT_EQ(evaluations, 0);
  SetLogLevel(LogLevel::kWarning);
}

TEST(LoggingTest, EmittedLevelsEvaluate) {
  SetLogLevel(LogLevel::kDebug);
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return 42;
  };
  CARDIR_LOG(kDebug) << "value " << count();
  EXPECT_EQ(evaluations, 1);
  SetLogLevel(LogLevel::kWarning);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(CARDIR_CHECK(1 == 2) << "math broke", "CHECK failed: 1 == 2");
}

TEST(LoggingDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(CARDIR_CHECK_OK(Status::Internal("boom")), "boom");
}

TEST(LoggingTest, CheckPassesSilently) {
  CARDIR_CHECK(true) << "never rendered";
  CARDIR_CHECK_OK(Status::Ok());
}

}  // namespace
}  // namespace cardir
