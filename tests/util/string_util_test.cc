#include "util/string_util.h"

#include <gtest/gtest.h>

namespace cardir {
namespace {

TEST(StrSplitTest, SplitsAndKeepsEmptyPieces) {
  EXPECT_EQ(StrSplit("a:b:c", ':'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("a::c", ':'), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit("", ':'), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit(":", ':'), (std::vector<std::string>{"", ""}));
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  x y  "), "x y");
  EXPECT_EQ(StripWhitespace("\t\n x \r\n"), "x");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("<?xml", "<?"));
  EXPECT_FALSE(StartsWith("<", "<?"));
  EXPECT_TRUE(StartsWith("abc", ""));
}

TEST(AsciiToLowerTest, LowersOnlyAscii) {
  EXPECT_EQ(AsciiToLower("NE:E"), "ne:e");
  EXPECT_EQ(AsciiToLower("already"), "already");
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(StrJoin({}, ", "), "");
  EXPECT_EQ(StrJoin({"solo"}, ", "), "solo");
}

TEST(ParseDoubleTest, ParsesValidNumbers) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble(" -0.5 "), -0.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("1e3"), 1000.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
}

TEST(ParseIntTest, ParsesAndRejects) {
  EXPECT_EQ(*ParseInt("42"), 42);
  EXPECT_EQ(*ParseInt("-7"), -7);
  EXPECT_FALSE(ParseInt("4.2").ok());
  EXPECT_FALSE(ParseInt("").ok());
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.0 / 3.0), "0.33");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

}  // namespace
}  // namespace cardir
