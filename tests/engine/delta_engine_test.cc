// DeltaEngine correctness contract: after ANY mutation sequence, the
// maintained store's Digest() is bit-identical to a fresh batch compute
// over the same geometries. The oracle below drives 500+ randomized
// mutation scripts (mixed insert/move/delete over map-like, overlap-heavy
// and free-form generators) and holds the delta store against
// ComputeAllPairsDigest after every single mutation — so a dirty-set gap,
// a stale patch, or a mis-ranked overlay cursor fails on the exact script
// step that introduced it (seeds are in the trace).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "engine/batch_engine.h"
#include "engine/delta_engine.h"
#include "engine/relation_store.h"
#include "geometry/region.h"
#include "gtest/gtest.h"
#include "obs/memstats.h"
#include "properties/random_instances.h"
#include "util/random.h"
#include "workload/region_gen.h"

namespace cardir {
namespace {

std::vector<Region> SmallMapRegions(Rng* rng, int count) {
  const int grid = 1 + static_cast<int>(std::sqrt(static_cast<double>(count)));
  const double cell = 1000.0 / grid;
  std::vector<Region> regions;
  regions.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int cx = i % grid;
    const int cy = i / grid;
    RegionGenOptions options;
    options.num_polygons = 1;
    options.vertices_per_polygon = 8;
    options.bounds = Box(cx * cell + 0.05 * cell, cy * cell + 0.05 * cell,
                         (cx + 1) * cell - 0.05 * cell,
                         (cy + 1) * cell - 0.05 * cell);
    regions.push_back(RandomRegion(rng, options));
  }
  return regions;
}

std::vector<Region> SmallOverlapRegions(Rng* rng, int count) {
  std::vector<Region> regions;
  regions.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const double size = rng->NextDouble(40.0, 160.0);
    const double x = rng->NextDouble(0.0, 400.0 - size);
    const double y = rng->NextDouble(0.0, 400.0 - size);
    RegionGenOptions options;
    options.num_polygons = 1;
    options.vertices_per_polygon = 10;
    options.bounds = Box(x, y, x + size, y + size);
    regions.push_back(RandomRegion(rng, options));
  }
  return regions;
}

Region RandomMutationRegion(Rng* rng) {
  switch (rng->NextBelow(3)) {
    case 0: {
      // Somewhere on the map canvas, likely overlapping a cluster.
      const double size = rng->NextDouble(20.0, 220.0);
      const double x = rng->NextDouble(0.0, 900.0);
      const double y = rng->NextDouble(0.0, 900.0);
      return Region(MakeRectangle(x, y, x + size, y + size));
    }
    case 1:
      return RandomTestRegion(rng);
    default: {
      // Multi-polygon region spanning a wide box — stresses the shortcut
      // kernel's per-polygon extents.
      const double x = rng->NextDouble(0.0, 700.0);
      const double y = rng->NextDouble(0.0, 700.0);
      Region region(MakeRectangle(x, y, x + 40.0, y + 30.0));
      region.AddPolygon(
          MakeRectangle(x + 90.0, y + 5.0, x + 160.0, y + 55.0));
      return region;
    }
  }
}

uint64_t FreshDigest(const std::vector<Region>& regions) {
  const auto digest = ComputeAllPairsDigest(regions);
  EXPECT_TRUE(digest.ok()) << digest.status();
  return digest.ok() ? *digest : 0;
}

// The headline oracle: 500 scripts, digest checked after every mutation.
TEST(DeltaEngineProperty, MutationScriptsMatchFreshComputeOn500Scripts) {
  for (uint64_t seed = 0; seed < 500; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(0xDE17A000u + seed);
    const int n = 3 + static_cast<int>(rng.NextBelow(14));
    std::vector<Region> mirror;
    switch (seed % 3) {
      case 0:
        mirror = SmallMapRegions(&rng, n);
        break;
      case 1:
        mirror = SmallOverlapRegions(&rng, n);
        break;
      default:
        for (int i = 0; i < n; ++i) mirror.push_back(RandomTestRegion(&rng));
        break;
    }

    auto engine = DeltaEngine::Build(mirror);
    ASSERT_TRUE(engine.ok()) << engine.status();
    ASSERT_EQ(engine.value().Digest(), FreshDigest(mirror));

    const int mutations = 3 + static_cast<int>(rng.NextBelow(6));
    for (int m = 0; m < mutations; ++m) {
      SCOPED_TRACE("mutation " + std::to_string(m));
      const uint64_t kind = rng.NextBelow(4);
      Result<DeltaResult> applied = Status::Internal("unset");
      if (kind == 0 || mirror.size() < 2) {
        Region region = RandomMutationRegion(&rng);
        mirror.push_back(region);
        applied = engine.value().Insert(std::move(region));
      } else if (kind == 3) {
        const size_t id = rng.NextBelow(mirror.size());
        mirror.erase(mirror.begin() + static_cast<ptrdiff_t>(id));
        applied = engine.value().Remove(id);
      } else if (kind == 1) {
        // Wholesale geometry replacement.
        const size_t id = rng.NextBelow(mirror.size());
        Region region = RandomMutationRegion(&rng);
        mirror[id] = region;
        applied = engine.value().Move(id, std::move(region));
      } else {
        // Grow-in-place: the Configuration::AddPolygonToRegion pattern.
        const size_t id = rng.NextBelow(mirror.size());
        const double x = rng.NextDouble(0.0, 900.0);
        const double y = rng.NextDouble(0.0, 900.0);
        Region region = mirror[id];
        region.AddPolygon(MakeRectangle(x, y, x + rng.NextDouble(5.0, 80.0),
                                        y + rng.NextDouble(5.0, 80.0)));
        mirror[id] = region;
        applied = engine.value().Move(id, std::move(region));
      }
      ASSERT_TRUE(applied.ok()) << applied.status();
      ASSERT_EQ(engine.value().regions(), mirror.size());
      ASSERT_EQ(engine.value().Digest(), FreshDigest(mirror));
      // Touched lists both directions of every dirty pair, and the two
      // counters partition exactly that set.
      EXPECT_EQ(applied.value().touched.size() % 2, 0u);
      EXPECT_EQ(applied.value().touched.size(),
                applied.value().pairs_reresolved +
                    applied.value().pairs_implicit)
          << "reresolved + implicit must cover the dirty set";
    }
  }
}

// Dirty-set completeness, checked structurally rather than via the digest:
// after a move, every pair that is explicit *now* and involves the moved
// region must appear in `touched` — if the candidate gather missed one,
// its overlay entry would be stale.
TEST(DeltaEngineTest, TouchedCoversExplicitPairsOfMovedRegion) {
  Rng rng(0x70C4Edu);
  std::vector<Region> regions = SmallOverlapRegions(&rng, 60);
  auto engine = DeltaEngine::Build(regions);
  ASSERT_TRUE(engine.ok()) << engine.status();

  for (int m = 0; m < 20; ++m) {
    const size_t id = rng.NextBelow(regions.size());
    Region region = RandomMutationRegion(&rng);
    regions[id] = region;
    const auto applied = engine.value().Move(id, std::move(region));
    ASSERT_TRUE(applied.ok()) << applied.status();
    const RelationStore& store = engine.value().store();
    std::vector<std::pair<uint32_t, uint32_t>> touched =
        applied.value().touched;
    std::sort(touched.begin(), touched.end());
    for (size_t j = 0; j < regions.size(); ++j) {
      if (j == id) continue;
      for (const auto& pair :
           {std::make_pair(id, j), std::make_pair(j, id)}) {
        if (!store.IsExplicit(pair.first, pair.second)) continue;
        const auto key = std::make_pair(static_cast<uint32_t>(pair.first),
                                        static_cast<uint32_t>(pair.second));
        ASSERT_TRUE(std::binary_search(touched.begin(), touched.end(), key))
            << "explicit pair (" << pair.first << ", " << pair.second
            << ") missing from touched after move " << m;
      }
    }
  }
}

// A long churn run on one engine: enough mutations to cycle the interval
// indexes through several amortized rebuilds and the store through row
// compactions, ending in a full pair-for-pair comparison (not just the
// digest) against a fresh batch store.
TEST(DeltaEngineTest, LongChurnEndsPairIdenticalToFreshStore) {
  Rng rng(0xC4C4u);
  std::vector<Region> mirror = SmallOverlapRegions(&rng, 90);
  auto engine = DeltaEngine::Build(mirror);
  ASSERT_TRUE(engine.ok()) << engine.status();

  for (int m = 0; m < 300; ++m) {
    const uint64_t kind = rng.NextBelow(4);
    if (kind == 0 || mirror.size() < 30) {
      Region region = RandomMutationRegion(&rng);
      mirror.push_back(region);
      ASSERT_TRUE(engine.value().Insert(std::move(region)).ok());
    } else if (kind == 3) {
      const size_t id = rng.NextBelow(mirror.size());
      mirror.erase(mirror.begin() + static_cast<ptrdiff_t>(id));
      ASSERT_TRUE(engine.value().Remove(id).ok());
    } else {
      const size_t id = rng.NextBelow(mirror.size());
      Region region = RandomMutationRegion(&rng);
      mirror[id] = region;
      ASSERT_TRUE(engine.value().Move(id, std::move(region)).ok());
    }
  }

  auto fresh = ComputeRelationStore(mirror);
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  const RelationStore& maintained = engine.value().store();
  ASSERT_EQ(maintained.regions(), fresh->regions());
  ASSERT_EQ(maintained.Digest(), fresh->Digest());
  fresh->ForEach([&maintained](size_t i, size_t j,
                               const CardinalRelation& relation) {
    ASSERT_EQ(maintained.Relation(i, j).mask(), relation.mask())
        << "pair (" << i << ", " << j << ")";
  });
}

TEST(DeltaEngineTest, AdoptedStoreNeedsNoRecompute) {
  Rng rng(0xAD09u);
  std::vector<Region> regions = SmallMapRegions(&rng, 40);
  auto store = ComputeRelationStore(regions);
  ASSERT_TRUE(store.ok()) << store.status();
  const uint64_t before = store->Digest();

  DeltaEngine engine = DeltaEngine::Adopt(std::move(*store), regions);
  EXPECT_EQ(engine.Digest(), before);

  // And it is live: a mutation through the adopted engine tracks fresh
  // compute.
  Region moved = RandomMutationRegion(&rng);
  regions[7] = moved;
  ASSERT_TRUE(engine.Move(7, std::move(moved)).ok());
  EXPECT_EQ(engine.Digest(), FreshDigest(regions));
}

TEST(DeltaEngineTest, ErrorsLeaveEngineUntouched) {
  Rng rng(0xE88u);
  std::vector<Region> regions = SmallMapRegions(&rng, 10);
  auto engine = DeltaEngine::Build(regions);
  ASSERT_TRUE(engine.ok()) << engine.status();
  const uint64_t digest = engine.value().Digest();

  EXPECT_EQ(engine.value().Move(99, Region(MakeRectangle(0, 0, 1, 1)))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.value().Remove(99).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.value().Insert(Region()).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.value().Move(3, Region()).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.value().regions(), regions.size());
  EXPECT_EQ(engine.value().Digest(), digest);
}

TEST(DeltaEngineTest, GrowFromEmptyEngine) {
  auto engine = DeltaEngine::Build({});
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_EQ(engine.value().regions(), 0u);

  std::vector<Region> mirror;
  Rng rng(0x60Fu);
  for (int i = 0; i < 12; ++i) {
    Region region = RandomMutationRegion(&rng);
    mirror.push_back(region);
    const auto applied = engine.value().Insert(std::move(region));
    ASSERT_TRUE(applied.ok()) << applied.status();
    ASSERT_EQ(engine.value().Digest(), FreshDigest(mirror));
  }
  while (!mirror.empty()) {
    const size_t id = rng.NextBelow(mirror.size());
    mirror.erase(mirror.begin() + static_cast<ptrdiff_t>(id));
    ASSERT_TRUE(engine.value().Remove(id).ok());
    ASSERT_EQ(engine.value().Digest(), FreshDigest(mirror));
  }
  EXPECT_EQ(engine.value().regions(), 0u);
}

#ifdef CARDIR_OBS_ENABLED
// The delta_engine arena (indexes + polygon extents + scratch) must
// balance to zero when engines die, and follow the engine across moves
// and copies like the store's own arena does.
TEST(DeltaEngineMemstats, AuxArenaBalancesAcrossCopyMoveAndDestroy) {
  obs::MemArena& arena = obs::MemArena::Get("delta_engine");
  const int64_t live_before = arena.LiveBytes();
  Rng rng(0x3E3Au);
  std::vector<Region> regions = SmallOverlapRegions(&rng, 30);
  {
    auto built = DeltaEngine::Build(regions);
    ASSERT_TRUE(built.ok());
    DeltaEngine& engine = built.value();
    const int64_t live_single = arena.LiveBytes();
    ASSERT_GT(live_single, live_before);

    DeltaEngine copy(engine);  // Copy charges its own footprint...
    ASSERT_GT(arena.LiveBytes(), live_single);
    const int64_t live_with_copy = arena.LiveBytes();

    DeltaEngine moved(std::move(copy));  // ...a move transfers it.
    EXPECT_EQ(arena.LiveBytes(), live_with_copy);
    ASSERT_TRUE(moved.Move(3, RandomMutationRegion(&rng)).ok());
  }
  EXPECT_EQ(arena.LiveBytes(), live_before);
}
#endif  // CARDIR_OBS_ENABLED

}  // namespace
}  // namespace cardir
