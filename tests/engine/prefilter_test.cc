// Unit + regression tests for the engine's MBB prefilter, with particular
// attention to degenerate tile contact: bounding boxes that share only a
// boundary line or a corner. Closed tiles make those cases ambiguous for a
// naive corner-classification prefilter (ClassifyPoint resolves line ties
// toward the middle band), while Compute-CDR resolves boundary sub-edges to
// the polygon's interior side. The prefilter must match Compute-CDR.

#include "engine/prefilter.h"

#include "core/compute_cdr.h"
#include "geometry/polygon.h"
#include "geometry/region.h"
#include "gtest/gtest.h"

namespace cardir {
namespace {

Region BoxRegion(double min_x, double min_y, double max_x, double max_y) {
  return Region(MakeRectangle(min_x, min_y, max_x, max_y));
}

// The prefilter answer for two box-shaped regions must equal Compute-CDR.
void ExpectMatchesComputeCdr(const Region& primary, const Region& reference) {
  const std::optional<CardinalRelation> bounded = MbbPrefilterRelation(
      primary.BoundingBox(), reference.BoundingBox());
  ASSERT_TRUE(bounded.has_value());
  const auto exact = ComputeCdr(primary, reference);
  ASSERT_TRUE(exact.ok()) << exact.status();
  EXPECT_EQ(*bounded, *exact)
      << "prefilter " << bounded->ToString() << " vs Compute-CDR "
      << exact->ToString();
}

TEST(MbbPrefilterTest, FullySeparatedSingleTiles) {
  const Box reference(10, 10, 20, 20);
  struct Case {
    Box primary;
    const char* tile;
  };
  const Case cases[] = {
      {Box(0, 0, 5, 5), "SW"},    {Box(12, 0, 18, 5), "S"},
      {Box(25, 0, 30, 5), "SE"},  {Box(0, 12, 5, 18), "W"},
      {Box(25, 12, 30, 18), "E"}, {Box(0, 25, 5, 30), "NW"},
      {Box(12, 25, 18, 30), "N"}, {Box(25, 25, 30, 30), "NE"},
      {Box(12, 12, 18, 18), "B"},
  };
  for (const Case& c : cases) {
    const auto relation = MbbPrefilterRelation(c.primary, reference);
    ASSERT_TRUE(relation.has_value()) << c.tile;
    EXPECT_EQ(relation->ToString(), c.tile);
  }
}

TEST(MbbPrefilterTest, StraddlingPairsAreNotBoxResolvable) {
  const Box reference(10, 10, 20, 20);
  const Box straddlers[] = {
      Box(5, 12, 15, 18),   // Crosses the west line.
      Box(15, 12, 25, 18),  // Crosses the east line.
      Box(12, 5, 18, 15),   // Crosses the south line.
      Box(12, 15, 18, 25),  // Crosses the north line.
      Box(5, 5, 25, 25),    // Contains the reference mbb: crosses all four.
      Box(0, 0, 12, 30),    // Western column but spans all three rows.
      Box(0, 25, 30, 30),   // Northern row but spans all three columns.
  };
  for (const Box& primary : straddlers) {
    EXPECT_FALSE(MbbPrefilterRelation(primary, reference).has_value())
        << primary;
    EXPECT_TRUE(MbbProperlyCrossesReferenceLines(primary, reference))
        << primary;
  }
}

TEST(MbbPrefilterTest, CrossingPredicateComplementsPrefilter) {
  // For non-degenerate boxes the two predicates partition all pairs.
  const Box reference(10, 10, 20, 20);
  int resolvable = 0;
  for (double x0 = 0; x0 <= 22; x0 += 2) {
    for (double y0 = 0; y0 <= 22; y0 += 2) {
      for (double w = 2; w <= 14; w += 4) {
        for (double h = 2; h <= 14; h += 4) {
          const Box primary(x0, y0, x0 + w, y0 + h);
          const bool bounded =
              MbbPrefilterRelation(primary, reference).has_value();
          const bool crossing =
              MbbProperlyCrossesReferenceLines(primary, reference);
          EXPECT_NE(bounded, crossing) << primary;
          resolvable += bounded ? 1 : 0;
        }
      }
    }
  }
  EXPECT_GT(resolvable, 0);
}

// --- Degenerate tile contact regressions -------------------------------

TEST(MbbPrefilterTest, TouchingBoxesStayOnTheirSide) {
  // Primary's east edge lies exactly on the reference's west mbb line. The
  // shared line belongs to both closed tile columns; the region only
  // *touches* it, so the relation is pure W — not B:W or W:B.
  const Region reference = BoxRegion(10, 10, 20, 20);
  const Region primary = BoxRegion(0, 12, 10, 18);
  const auto relation =
      MbbPrefilterRelation(primary.BoundingBox(), reference.BoundingBox());
  ASSERT_TRUE(relation.has_value());
  EXPECT_EQ(relation->ToString(), "W");
  ExpectMatchesComputeCdr(primary, reference);
}

TEST(MbbPrefilterTest, TouchingFromEveryDirection) {
  const Region reference = BoxRegion(10, 10, 20, 20);
  struct Case {
    Region primary;
    const char* tile;
  };
  const Case cases[] = {
      {BoxRegion(0, 12, 10, 18), "W"},    // Shares the west line.
      {BoxRegion(20, 12, 30, 18), "E"},   // Shares the east line.
      {BoxRegion(12, 0, 18, 10), "S"},    // Shares the south line.
      {BoxRegion(12, 20, 18, 30), "N"},   // Shares the north line.
      {BoxRegion(0, 0, 10, 10), "SW"},    // Shares only the SW corner.
      {BoxRegion(20, 20, 30, 30), "NE"},  // Shares only the NE corner.
      {BoxRegion(20, 0, 30, 10), "SE"},   // Shares only the SE corner.
      {BoxRegion(0, 20, 10, 30), "NW"},   // Shares only the NW corner.
  };
  for (const Case& c : cases) {
    const auto relation = MbbPrefilterRelation(c.primary.BoundingBox(),
                                               reference.BoundingBox());
    ASSERT_TRUE(relation.has_value()) << c.tile;
    EXPECT_EQ(relation->ToString(), c.tile);
    ExpectMatchesComputeCdr(c.primary, reference);
  }
}

TEST(MbbPrefilterTest, CollinearExtentsResolveToSingleTile) {
  // Primary west of the reference with *exactly* the same y-extent: the
  // horizontal mbb lines are collinear, so the primary's top/bottom edges
  // lie on the reference's row boundaries. Still pure W.
  const Region reference = BoxRegion(10, 10, 20, 20);
  const Region primary = BoxRegion(0, 10, 5, 20);
  const auto relation =
      MbbPrefilterRelation(primary.BoundingBox(), reference.BoundingBox());
  ASSERT_TRUE(relation.has_value());
  EXPECT_EQ(relation->ToString(), "W");
  ExpectMatchesComputeCdr(primary, reference);
}

TEST(MbbPrefilterTest, TouchingAndCollinear) {
  // The worst case: boxes share a full boundary edge (touching in x,
  // identical extent in y). Both mbb lines of the contact are degenerate
  // tile boundaries.
  const Region reference = BoxRegion(10, 10, 20, 20);
  const Region primary = BoxRegion(0, 10, 10, 20);
  const auto relation =
      MbbPrefilterRelation(primary.BoundingBox(), reference.BoundingBox());
  ASSERT_TRUE(relation.has_value());
  EXPECT_EQ(relation->ToString(), "W");
  ExpectMatchesComputeCdr(primary, reference);
}

TEST(MbbPrefilterTest, InscribedBoxTouchingAllFourLines) {
  // Primary mbb identical to the reference mbb: every boundary edge lies on
  // an mbb line; interior-side resolution keeps everything in B.
  const Region reference = BoxRegion(10, 10, 20, 20);
  const Region primary = BoxRegion(10, 10, 20, 20);
  const auto relation =
      MbbPrefilterRelation(primary.BoundingBox(), reference.BoundingBox());
  ASSERT_TRUE(relation.has_value());
  EXPECT_EQ(relation->ToString(), "B");
  ExpectMatchesComputeCdr(primary, reference);
}

TEST(MbbPrefilterTest, DegenerateBoxesAreRejected) {
  const Box reference(10, 10, 20, 20);
  EXPECT_FALSE(
      MbbPrefilterRelation(Box(0, 0, 0, 5), reference).has_value());
  EXPECT_FALSE(
      MbbPrefilterRelation(Box(0, 0, 5, 0), reference).has_value());
  EXPECT_FALSE(
      MbbPrefilterRelation(Box(0, 0, 5, 5), Box(10, 10, 10, 20)).has_value());
  EXPECT_FALSE(MbbPrefilterRelation(Box(), reference).has_value());
  EXPECT_FALSE(MbbPrefilterRelation(Box(0, 0, 5, 5), Box()).has_value());
}

TEST(MbbPrefilterTest, NonRectangularTouchingRegionsAgree) {
  // A triangle whose apex touches the reference's west line; the primary
  // mbb touches but does not cross. Prefilter says W, and so must the full
  // algorithm despite the vertex-on-line contact.
  const Region reference = BoxRegion(10, 10, 20, 20);
  const Region primary(  // Clockwise ring.
      Polygon({Point(0, 12), Point(0, 18), Point(10, 15)}));
  ExpectMatchesComputeCdr(primary, reference);
}

}  // namespace
}  // namespace cardir
