// Contention stress for the work-stealing thread pool and the batch
// engine, written for the ThreadSanitizer tier (ctest --preset tsan) but
// fast enough to ride in every engine run. Chunk size 1 maximises steal
// traffic: every claim is a fetch-add race window, and with more
// participants than cores each shard is drained mostly by thieves.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/compute_cdr.h"
#include "core/compute_cdr_percent.h"
#include "engine/batch_engine.h"
#include "engine/delta_engine.h"
#include "engine/thread_pool.h"
#include "geometry/region.h"
#include "gtest/gtest.h"
#include "properties/random_instances.h"
#include "util/random.h"

namespace cardir {
namespace {

TEST(TsanStressTest, StealHeavyParallelForRounds) {
  // Many short jobs on one pool: worker wake-up, chunk claiming, and the
  // job-done rendezvous all cycle once per round.
  ThreadPool pool(8);
  const size_t count = 512;
  std::vector<std::atomic<uint32_t>> hits(count);
  for (int round = 0; round < 50; ++round) {
    for (auto& h : hits) h.store(0, std::memory_order_relaxed);
    pool.ParallelFor(count, 1, [&hits](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (size_t i = 0; i < count; ++i) {
      ASSERT_EQ(hits[i].load(), 1u) << "round " << round << " index " << i;
    }
  }
}

TEST(TsanStressTest, UnsynchronisedSlotWritesArePublished) {
  // The engine's merge writes each pair's record into a precomputed slot
  // with no per-slot synchronisation; the pool's join must publish those
  // plain writes to the caller. Model exactly that access pattern.
  ThreadPool pool(8);
  const size_t count = 4'096;
  std::vector<uint64_t> slots(count, 0);
  pool.ParallelFor(count, 1, [&slots](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) slots[i] = i * 2 + 1;
  });
  for (size_t i = 0; i < count; ++i) {
    ASSERT_EQ(slots[i], i * 2 + 1) << i;
  }
}

TEST(TsanStressTest, ConcurrentEnginesShareInputRegions) {
  // Several engines, each with its own parallel pool, hammer the same
  // (read-only) region vector concurrently — the CARDIRECT server-side
  // usage pattern. Every run must reproduce the serial matrix.
  Rng rng(0x57E55);
  std::vector<Region> regions;
  for (int i = 0; i < 16; ++i) regions.push_back(RandomTestRegion(&rng));

  EngineOptions serial_options;
  serial_options.threads = 1;
  const auto expected = ComputeAllPairs(regions, serial_options);
  ASSERT_TRUE(expected.ok()) << expected.status();

  std::atomic<int> mismatches{0};
  std::vector<std::thread> drivers;
  for (int d = 0; d < 4; ++d) {
    drivers.emplace_back([&regions, &expected, &mismatches] {
      for (int run = 0; run < 3; ++run) {
        EngineOptions options;
        options.threads = 4;
        options.chunk_size = 1;  // Force maximal steal contention.
        const auto pairs = ComputeAllPairs(regions, options);
        if (!pairs.ok() || pairs->size() != expected->size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t k = 0; k < pairs->size(); ++k) {
          const PairRelation& got = (*pairs)[k];
          const PairRelation& want = (*expected)[k];
          if (got.primary != want.primary ||
              got.reference != want.reference ||
              got.relation != want.relation) {
            mismatches.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (std::thread& driver : drivers) driver.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(TsanStressTest, DigestIdenticalAcrossThreadCountsUnderContention) {
  Rng rng(0xD16E57);
  std::vector<Region> regions;
  for (int i = 0; i < 24; ++i) regions.push_back(RandomTestRegion(&rng));

  EngineOptions serial_options;
  serial_options.threads = 1;
  const auto serial = ComputeAllPairsDigest(regions, serial_options);
  ASSERT_TRUE(serial.ok()) << serial.status();

  for (int threads : {2, 4, 8}) {
    EngineOptions options;
    options.threads = threads;
    options.chunk_size = 1;
    const auto digest = ComputeAllPairsDigest(regions, options);
    ASSERT_TRUE(digest.ok()) << digest.status();
    EXPECT_EQ(*digest, *serial) << threads << " threads";
  }
}

// Overlap-heavy regions drive most pairs through the deferred crossing
// queue, so this exercises the engine's two-queue handoff under maximal
// contention: chunk size 1 in the classify phase (every per-chunk deferred
// spill appends to the shared queue under its mutex) and crossing chunk
// size 1 in the compute phase (every deferred pair is its own steal-able
// chunk). Matrix and digest must both reproduce the serial run.
TEST(TsanStressTest, CrossingQueueTwoPhaseHandoffUnderContention) {
  Rng rng(0xC805);
  std::vector<Region> regions;
  for (int i = 0; i < 24; ++i) {
    const double size = rng.NextDouble(40.0, 120.0);
    const double x = rng.NextDouble(0.0, 200.0 - size);
    const double y = rng.NextDouble(0.0, 200.0 - size);
    regions.push_back(Region(MakeRectangle(x, y, x + size, y + size)));
  }

  EngineOptions serial_options;
  serial_options.threads = 1;
  EngineStats serial_stats;
  const auto expected = ComputeAllPairs(regions, serial_options,
                                        &serial_stats);
  ASSERT_TRUE(expected.ok()) << expected.status();
  ASSERT_GT(serial_stats.crossing_pairs, 0u)
      << "layout must push pairs through the crossing queue";
  const auto serial_digest = ComputeAllPairsDigest(regions, serial_options);
  ASSERT_TRUE(serial_digest.ok()) << serial_digest.status();

  for (int threads : {2, 4, 8}) {
    EngineOptions options;
    options.threads = threads;
    options.chunk_size = 1;
    options.crossing_chunk_size = 1;
    EngineStats stats;
    const auto pairs = ComputeAllPairs(regions, options, &stats);
    ASSERT_TRUE(pairs.ok()) << pairs.status();
    ASSERT_EQ(pairs->size(), expected->size());
    EXPECT_EQ(stats.crossing_pairs, serial_stats.crossing_pairs)
        << threads << " threads";
    EXPECT_EQ(stats.prefiltered_pairs, serial_stats.prefiltered_pairs)
        << threads << " threads";
    for (size_t k = 0; k < pairs->size(); ++k) {
      const PairRelation got = (*pairs)[k];
      const PairRelation want = (*expected)[k];
      ASSERT_EQ(got.primary, want.primary) << "slot " << k;
      ASSERT_EQ(got.reference, want.reference) << "slot " << k;
      ASSERT_EQ(got.relation, want.relation)
          << threads << " threads, slot " << k;
    }
    const auto digest = ComputeAllPairsDigest(regions, options);
    ASSERT_TRUE(digest.ok()) << digest.status();
    EXPECT_EQ(*digest, *serial_digest) << threads << " threads";
  }
}

// The phase-2 WorkerScratch pattern: each worker owns one CdrScratch whose
// SoA lane arrays are reused (and grown) across every pair it drains,
// while all workers read the same region vector. Each thread interleaves
// small and large polygons so EnsureCapacity regrows its buffers mid-run
// while the neighbours are deep in their own lanes; every result is
// checked against a fresh-scratch serial recomputation, so a stale-lane
// or shared-growth bug shows up as a wrong mask/area, not just as a tsan
// report.
TEST(TsanStressTest, SharedRegionsPerThreadScratchReuse) {
  Rng rng(0x50A5C);
  std::vector<Region> regions;
  for (int i = 0; i < 12; ++i) {
    const double size = rng.NextDouble(30.0, 150.0);
    const double x = rng.NextDouble(0.0, 200.0 - size);
    const double y = rng.NextDouble(0.0, 200.0 - size);
    regions.push_back(RandomTestRegion(&rng));
    regions.push_back(Region(MakeRectangle(x, y, x + size, y + size)));
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 8; ++w) {
    workers.emplace_back([&regions, &mismatches, w] {
      CdrScratch scratch;  // Reused across every pair, like WorkerScratch.
      CdrMetricsDelta metrics;
      for (int round = 0; round < 4; ++round) {
        for (size_t i = 0; i < regions.size(); ++i) {
          for (size_t j = 0; j < regions.size(); ++j) {
            if (i == j) continue;
            // Stagger the traversal so threads hit different (i, j) at
            // any instant but still cover every ordered pair.
            const size_t pi = (i + static_cast<size_t>(w)) % regions.size();
            if (pi == j) continue;
            const Box mbb = regions[j].BoundingBox();
            const CdrComputation reused =
                ComputeCdrUnchecked(regions[pi], mbb, &metrics, &scratch);
            const CdrPercentComputation reused_pct =
                ComputeCdrPercentUnchecked(regions[pi], mbb, &scratch);

            CdrScratch fresh;
            CdrMetricsDelta fresh_metrics;
            const CdrComputation expected = ComputeCdrUnchecked(
                regions[pi], mbb, &fresh_metrics, &fresh);
            const CdrPercentComputation expected_pct =
                ComputeCdrPercentUnchecked(regions[pi], mbb, &fresh);
            if (reused.relation.mask() != expected.relation.mask() ||
                reused.output_edges != expected.output_edges) {
              mismatches.fetch_add(1);
            }
            for (int t = 0; t < kNumTiles; ++t) {
              if (reused_pct.tile_areas[t] != expected_pct.tile_areas[t]) {
                mismatches.fetch_add(1);
                break;
              }
            }
          }
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// The same reuse contract through the engine itself: overlap-heavy input
// (most pairs deferred to the crossing queue, so every worker's scratch
// is hot) at crossing chunk size 1, against the serial matrix.
TEST(TsanStressTest, EngineWorkerScratchReuseAcrossCrossingPairs) {
  Rng rng(0x5C8A7C);
  std::vector<Region> regions;
  for (int i = 0; i < 20; ++i) {
    const double size = rng.NextDouble(60.0, 160.0);
    const double x = rng.NextDouble(0.0, 200.0 - size);
    const double y = rng.NextDouble(0.0, 200.0 - size);
    regions.push_back(Region(MakeRectangle(x, y, x + size, y + size)));
  }

  EngineOptions serial_options;
  serial_options.threads = 1;
  EngineStats serial_stats;
  const auto expected = ComputeAllPairs(regions, serial_options,
                                        &serial_stats);
  ASSERT_TRUE(expected.ok()) << expected.status();
  ASSERT_GT(serial_stats.crossing_pairs, regions.size())
      << "layout must keep the worker scratches busy";

  for (int run = 0; run < 3; ++run) {
    EngineOptions options;
    options.threads = 8;
    options.crossing_chunk_size = 1;
    const auto pairs = ComputeAllPairs(regions, options);
    ASSERT_TRUE(pairs.ok()) << pairs.status();
    ASSERT_EQ(pairs->size(), expected->size());
    for (size_t k = 0; k < pairs->size(); ++k) {
      ASSERT_EQ((*pairs)[k].relation, (*expected)[k].relation)
          << "run " << run << ", slot " << k;
    }
  }
}

// The delta engine serializes mutations behind one mutex; this hammers
// that lock with concurrent Move calls on distinct ids (each to an
// absolute final geometry, so any interleaving converges to one state)
// while other threads read Digest() mid-churn. The end digest must equal
// a fresh batch compute — a dropped patch under contention would diverge.
TEST(TsanStressTest, DeltaEngineConcurrentMovesAndDigestReaders) {
  Rng rng(0xDE17Au);
  std::vector<Region> regions;
  for (int i = 0; i < 32; ++i) regions.push_back(RandomTestRegion(&rng));
  auto built = DeltaEngine::Build(regions);
  ASSERT_TRUE(built.ok()) << built.status();
  DeltaEngine& engine = built.value();

  std::vector<Region> final_regions = regions;
  for (size_t i = 0; i < final_regions.size(); ++i) {
    const double x = 40.0 * static_cast<double>(i % 8);
    const double y = 50.0 * static_cast<double>(i / 8);
    final_regions[i] = Region(MakeRectangle(x, y, x + 30.0, y + 35.0));
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&engine, &final_regions, &failures, w] {
      for (size_t i = static_cast<size_t>(w); i < final_regions.size();
           i += 4) {
        // An intermediate hop first, so every id mutates twice and the
        // interval indexes accumulate tombstones under contention.
        const double off = 500.0 + 25.0 * static_cast<double>(i);
        Region hop(MakeRectangle(off, off, off + 20.0, off + 15.0));
        if (!engine.Move(i, std::move(hop)).ok()) failures.fetch_add(1);
        (void)engine.Digest();  // Readers interleave with movers.
        if (!engine.Move(i, final_regions[i]).ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  ASSERT_EQ(failures.load(), 0);

  const auto expected = ComputeAllPairsDigest(final_regions);
  ASSERT_TRUE(expected.ok()) << expected.status();
  EXPECT_EQ(engine.Digest(), *expected);
}

}  // namespace
}  // namespace cardir
