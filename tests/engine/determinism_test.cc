// Determinism of the batch relation engine: the *stored artefact* — the
// XML serialization of a configuration, relations included — must be
// byte-identical no matter how many threads computed it or how the
// scheduler interleaved them. Ten runs across a spread of thread counts
// must all serialize to the same document as the single-threaded run.

#include <string>
#include <vector>

#include "cardirect/model.h"
#include "cardirect/xml.h"
#include "gtest/gtest.h"
#include "properties/random_instances.h"
#include "util/random.h"
#include "util/string_util.h"
#include "workload/scenario_gen.h"

namespace cardir {
namespace {

TEST(EngineDeterminismTest, XmlIdenticalAcrossThreadCountsAndRuns) {
  Rng rng(20260806);
  Configuration config("determinism", "map.png");
  for (int i = 0; i < 24; ++i) {
    AnnotatedRegion region;
    region.id = StrFormat("r%d", i);
    region.name = StrFormat("Region %d", i);
    region.color = (i % 2 == 0) ? "red" : "blue";
    region.geometry = RandomTestRegion(&rng);
    ASSERT_TRUE(config.AddRegion(std::move(region)).ok());
  }

  EngineOptions serial;
  serial.threads = 1;
  ASSERT_TRUE(config.ComputeAllRelations(serial).ok());
  const std::string golden = ConfigurationToXml(config);
  ASSERT_NE(golden.find("<Relation"), std::string::npos);

  const int thread_counts[] = {1, 2, 3, 4, 8, 16, 2, 8, 3, 1};
  int run = 0;
  for (int threads : thread_counts) {
    EngineOptions options;
    options.threads = threads;
    // Vary the chunk size too, to shake out merge-order dependencies on
    // the work-stealing schedule.
    options.chunk_size = static_cast<size_t>(1 + (run % 5));
    ASSERT_TRUE(config.ComputeAllRelations(options).ok());
    EXPECT_EQ(ConfigurationToXml(config), golden)
        << "run " << run << " with " << threads << " threads";
    ++run;
  }
  EXPECT_EQ(run, 10);
}

TEST(EngineDeterminismTest, GeneratedScenarioIsThreadCountInvariant) {
  // End-to-end through the workload generator: the same seed must yield the
  // same serialized configuration whether relations were computed on one
  // thread or eight.
  std::string golden;
  for (int threads : {1, 8}) {
    Rng rng(42);
    ScenarioOptions options;
    options.num_regions = 20;
    options.engine.threads = threads;
    auto config = GenerateMapConfiguration(&rng, options);
    ASSERT_TRUE(config.ok()) << config.status();
    const std::string xml = ConfigurationToXml(*config);
    if (golden.empty()) {
      golden = xml;
    } else {
      EXPECT_EQ(xml, golden);
    }
  }
  EXPECT_FALSE(golden.empty());
}

}  // namespace
}  // namespace cardir
