// RelationStore / sweep-join tests: the store must round-trip exactly to
// the dense PairMatrix — every pair, every instance class, every thread
// count — and its footprint accounting must hold even on instances built
// to defeat the implicit-run compression.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "engine/batch_engine.h"
#include "engine/relation_store.h"
#include "geometry/region.h"
#include "gtest/gtest.h"
#include "obs/memstats.h"
#include "properties/random_instances.h"
#include "util/random.h"
#include "workload/region_gen.h"

namespace cardir {
namespace {

// Map-like instance: one region per jittered grid cell (the bench's map
// workload in miniature) — almost every pair resolves implicitly.
std::vector<Region> SmallMapRegions(Rng* rng, int count) {
  const int grid = 1 + static_cast<int>(std::sqrt(static_cast<double>(count)));
  const double cell = 1000.0 / grid;
  std::vector<Region> regions;
  regions.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int cx = i % grid;
    const int cy = i / grid;
    RegionGenOptions options;
    options.num_polygons = 1;
    options.vertices_per_polygon = 8;
    options.bounds = Box(cx * cell + 0.05 * cell, cy * cell + 0.05 * cell,
                         (cx + 1) * cell - 0.05 * cell,
                         (cy + 1) * cell - 0.05 * cell);
    regions.push_back(RandomRegion(rng, options));
  }
  return regions;
}

// Overlap-heavy instance: random boxes on a shared canvas, so a large
// share of pairs cross reference lines and land in the overlay.
std::vector<Region> SmallOverlapRegions(Rng* rng, int count) {
  std::vector<Region> regions;
  regions.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const double size = rng->NextDouble(40.0, 160.0);
    const double x = rng->NextDouble(0.0, 400.0 - size);
    const double y = rng->NextDouble(0.0, 400.0 - size);
    RegionGenOptions options;
    options.num_polygons = 1;
    options.vertices_per_polygon = 10;
    options.bounds = Box(x, y, x + size, y + size);
    regions.push_back(RandomRegion(rng, options));
  }
  return regions;
}

// Asserts that `store` agrees with the dense matrix pair-for-pair, via all
// three read paths (ForEach cursor iteration, per-row iteration, and spot
// Lookup), and that the accounting between implicit and overlay pairs is
// consistent.
void ExpectMatchesDense(const RelationStore& store, const PairMatrix& dense,
                        size_t n) {
  ASSERT_EQ(store.regions(), n);
  ASSERT_EQ(store.pair_count(), dense.size());

  const uint16_t* masks = dense.masks();
  size_t flat = 0;
  size_t explicit_seen = 0;
  store.ForEach([&](size_t i, size_t j, const CardinalRelation& relation) {
    // Canonical row-major order, same as the dense matrix.
    const size_t expect_i = flat / (n - 1);
    const size_t rank = flat % (n - 1);
    const size_t expect_j = rank < expect_i ? rank : rank + 1;
    ASSERT_EQ(i, expect_i);
    ASSERT_EQ(j, expect_j);
    ASSERT_EQ(relation.mask(), masks[flat])
        << "pair (" << i << ", " << j << ")";
    if (store.IsExplicit(i, j)) ++explicit_seen;
    ++flat;
  });
  ASSERT_EQ(flat, dense.size());
  EXPECT_EQ(explicit_seen, store.overlay_pairs());

  EXPECT_EQ(store.Digest(), [&] {
    uint64_t digest = 0;
    for (size_t k = 0; k < dense.size(); ++k) {
      const PairRelation pair = dense[k];
      digest += MixPairDigest(pair.primary, pair.reference, masks[k]);
    }
    return digest;
  }());

  // Random-access lookups against a handful of rows (Lookup is O(n) per
  // overlay pair, so exhaustive lookup would square the test).
  for (size_t i = 0; i < n; i += 1 + n / 7) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const size_t k = i * (n - 1) + (j < i ? j : j - 1);
      ASSERT_EQ(store.Relation(i, j).mask(), masks[k])
          << "lookup (" << i << ", " << j << ")";
    }
  }
}

TEST(RelationStoreProperty, RoundTripsToDenseMatrixOn1000RandomInstances) {
  for (uint64_t seed = 0; seed < 1000; ++seed) {
    Rng rng(0x5EED0000u + seed);
    const int n = 3 + static_cast<int>(rng.NextBelow(18));
    std::vector<Region> regions;
    switch (seed % 3) {
      case 0:
        regions = SmallMapRegions(&rng, n);
        break;
      case 1:
        regions = SmallOverlapRegions(&rng, n);
        break;
      default:
        for (int i = 0; i < n; ++i) {
          regions.push_back(RandomTestRegion(&rng));
        }
        break;
    }

    auto dense = ComputeAllPairs(regions);
    ASSERT_TRUE(dense.ok()) << dense.status();
    EngineStats stats;
    auto store = ComputeRelationStore(regions, EngineOptions(), &stats);
    ASSERT_TRUE(store.ok()) << store.status() << " (seed " << seed << ")";

    ExpectMatchesDense(*store, *dense, regions.size());
    EXPECT_EQ(stats.total_pairs, store->pair_count());
    EXPECT_EQ(stats.computed_pairs, store->overlay_pairs());
    EXPECT_EQ(stats.prefiltered_pairs + stats.computed_pairs,
              stats.total_pairs);
  }
}

// Alternating tall/wide slats through a common centre: every (tall, wide)
// pair crosses on both axes, so ~half of all pairs land in the overlay —
// the worst case for the implicit-run compression. The store must stay
// correct and its footprint must still be exactly the accounted bound
// (overlay + profile + offsets), i.e. bounded by the dense matrix plus the
// per-region overhead even with compression fully defeated.
TEST(RelationStoreProperty, AdversarialAlternatingClassInstance) {
  std::vector<Region> regions;
  const int n = 64;
  for (int i = 0; i < n; ++i) {
    const double offset = 10.0 * i;
    if (i % 2 == 0) {
      // Tall, thin, x-offset.
      regions.push_back(
          Region(MakeRectangle(100.0 + offset, 0.0, 140.0 + offset, 1000.0)));
    } else {
      // Wide, flat, y-offset.
      regions.push_back(
          Region(MakeRectangle(0.0, 100.0 + offset, 1000.0, 140.0 + offset)));
    }
  }

  auto dense = ComputeAllPairs(regions);
  ASSERT_TRUE(dense.ok()) << dense.status();
  auto store = ComputeRelationStore(regions);
  ASSERT_TRUE(store.ok()) << store.status();

  // Compression is actually defeated: a large share of pairs is explicit.
  EXPECT_GE(store->overlay_pairs(), store->pair_count() / 4);

  ExpectMatchesDense(*store, *dense, regions.size());

  // Memory gate: footprint is exactly the accounted structures — 2 bytes
  // per overlay pair, the SoA profile, and one offset per row — so even
  // with every pair explicit the store cannot exceed dense-matrix size
  // plus the fixed per-region overhead.
  const size_t accounted =
      store->overlay_pairs() * sizeof(uint16_t) +
      store->regions() * (4 * sizeof(double) + sizeof(uint8_t)) +
      (store->regions() + 1) * sizeof(uint64_t);
  EXPECT_LE(store->bytes(), 2 * accounted)
      << "capacity overhead exceeded the accounted footprint";
  EXPECT_LE(store->overlay_pairs() * sizeof(uint16_t),
            store->pair_count() * sizeof(uint16_t));
}

// On map workloads the overlay must be a small fraction of the dense
// matrix — the ISSUE gate is ≤10% of dense PairMatrix bytes.
TEST(RelationStoreProperty, MapWorkloadStaysUnderTenPercentOfDense) {
  Rng rng(7u + 600u);
  const std::vector<Region> regions = SmallMapRegions(&rng, 600);
  auto store = ComputeRelationStore(regions);
  ASSERT_TRUE(store.ok()) << store.status();
  const size_t dense_bytes = store->pair_count() * sizeof(uint16_t);
  EXPECT_LE(store->bytes(), dense_bytes / 10)
      << "store " << store->bytes() << "B vs dense " << dense_bytes << "B";
}

// Sweep-strip concurrency: many single-row strips across 8 participants
// must produce a bit-identical store (the tsan tier runs this under the
// race detector; chunk_size 1 maximises strip interleaving).
TEST(RelationStoreConcurrency, StripParallelismIsDeterministic) {
  Rng rng(0xCAFEu);
  std::vector<Region> regions = SmallOverlapRegions(&rng, 120);
  // A couple of map clusters too, so implicit runs and overlay mix.
  std::vector<Region> map = SmallMapRegions(&rng, 80);
  for (Region& region : map) regions.push_back(std::move(region));

  EngineOptions serial;
  serial.threads = 1;
  auto expected = ComputeRelationStore(regions, serial);
  ASSERT_TRUE(expected.ok()) << expected.status();

  for (size_t chunk : {size_t{1}, size_t{7}, size_t{0}}) {
    EngineOptions options;
    options.threads = 8;
    options.chunk_size = chunk;
    EngineStats stats;
    auto store = ComputeRelationStore(regions, options, &stats);
    ASSERT_TRUE(store.ok()) << store.status();
    EXPECT_EQ(stats.threads_used, 8);
    ASSERT_EQ(store->overlay_pairs(), expected->overlay_pairs());
    EXPECT_EQ(store->Digest(), expected->Digest()) << "chunk " << chunk;
  }
}

TEST(RelationStoreEdgeCases, EmptyAndSingletonInputs) {
  std::vector<Region> none;
  auto empty = ComputeRelationStore(none);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->regions(), 0u);
  EXPECT_EQ(empty->pair_count(), 0u);
  empty->ForEach([](size_t, size_t, const CardinalRelation&) {
    FAIL() << "no pairs expected";
  });

  std::vector<Region> one;
  one.push_back(Region(MakeRectangle(0, 0, 10, 10)));
  auto single = ComputeRelationStore(one);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->regions(), 1u);
  EXPECT_EQ(single->pair_count(), 0u);
}

TEST(RelationStoreEdgeCases, InvalidRegionIsReported) {
  std::vector<Region> regions;
  regions.push_back(Region(MakeRectangle(0, 0, 10, 10)));
  regions.push_back(Region());  // Empty region: fails Validate().
  auto store = ComputeRelationStore(regions);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(store.status().message().find("#1"), std::string::npos);
}

#ifdef CARDIR_OBS_ENABLED
// The mem.relation_store arena must balance: live returns to zero when
// stores die, and the charge follows the store across moves.
TEST(RelationStoreMemstats, ArenaChargesBalanceAcrossMoveAndDestroy) {
  obs::MemArena& arena = obs::MemArena::Get("relation_store");
  const int64_t live_before = arena.LiveBytes();
  Rng rng(99u);
  const std::vector<Region> regions = SmallOverlapRegions(&rng, 40);
  {
    auto store = ComputeRelationStore(regions);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ(arena.LiveBytes() - live_before,
              static_cast<int64_t>(store->bytes()));
    RelationStore moved = std::move(*store);  // Charge moves, not doubles.
    EXPECT_EQ(arena.LiveBytes() - live_before,
              static_cast<int64_t>(moved.bytes()));
  }
  EXPECT_EQ(arena.LiveBytes(), live_before);
}
#endif  // CARDIR_OBS_ENABLED

}  // namespace
}  // namespace cardir
