// RelationStore / sweep-join tests: the store must round-trip exactly to
// the dense PairMatrix — every pair, every instance class, every thread
// count — and its footprint accounting must hold even on instances built
// to defeat the implicit-run compression.

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "engine/batch_engine.h"
#include "engine/interval_kernel.h"
#include "engine/relation_store.h"
#include "geometry/region.h"
#include "gtest/gtest.h"
#include "obs/memstats.h"
#include "properties/random_instances.h"
#include "util/random.h"
#include "workload/region_gen.h"

namespace cardir {
namespace {

// Map-like instance: one region per jittered grid cell (the bench's map
// workload in miniature) — almost every pair resolves implicitly.
std::vector<Region> SmallMapRegions(Rng* rng, int count) {
  const int grid = 1 + static_cast<int>(std::sqrt(static_cast<double>(count)));
  const double cell = 1000.0 / grid;
  std::vector<Region> regions;
  regions.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int cx = i % grid;
    const int cy = i / grid;
    RegionGenOptions options;
    options.num_polygons = 1;
    options.vertices_per_polygon = 8;
    options.bounds = Box(cx * cell + 0.05 * cell, cy * cell + 0.05 * cell,
                         (cx + 1) * cell - 0.05 * cell,
                         (cy + 1) * cell - 0.05 * cell);
    regions.push_back(RandomRegion(rng, options));
  }
  return regions;
}

// Overlap-heavy instance: random boxes on a shared canvas, so a large
// share of pairs cross reference lines and land in the overlay.
std::vector<Region> SmallOverlapRegions(Rng* rng, int count) {
  std::vector<Region> regions;
  regions.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const double size = rng->NextDouble(40.0, 160.0);
    const double x = rng->NextDouble(0.0, 400.0 - size);
    const double y = rng->NextDouble(0.0, 400.0 - size);
    RegionGenOptions options;
    options.num_polygons = 1;
    options.vertices_per_polygon = 10;
    options.bounds = Box(x, y, x + size, y + size);
    regions.push_back(RandomRegion(rng, options));
  }
  return regions;
}

// Asserts that `store` agrees with the dense matrix pair-for-pair, via all
// three read paths (ForEach cursor iteration, per-row iteration, and spot
// Lookup), and that the accounting between implicit and overlay pairs is
// consistent.
void ExpectMatchesDense(const RelationStore& store, const PairMatrix& dense,
                        size_t n) {
  ASSERT_EQ(store.regions(), n);
  ASSERT_EQ(store.pair_count(), dense.size());

  const uint16_t* masks = dense.masks();
  size_t flat = 0;
  size_t explicit_seen = 0;
  store.ForEach([&](size_t i, size_t j, const CardinalRelation& relation) {
    // Canonical row-major order, same as the dense matrix.
    const size_t expect_i = flat / (n - 1);
    const size_t rank = flat % (n - 1);
    const size_t expect_j = rank < expect_i ? rank : rank + 1;
    ASSERT_EQ(i, expect_i);
    ASSERT_EQ(j, expect_j);
    ASSERT_EQ(relation.mask(), masks[flat])
        << "pair (" << i << ", " << j << ")";
    if (store.IsExplicit(i, j)) ++explicit_seen;
    ++flat;
  });
  ASSERT_EQ(flat, dense.size());
  EXPECT_EQ(explicit_seen, store.overlay_pairs());

  EXPECT_EQ(store.Digest(), [&] {
    uint64_t digest = 0;
    for (size_t k = 0; k < dense.size(); ++k) {
      const PairRelation pair = dense[k];
      digest += MixPairDigest(pair.primary, pair.reference, masks[k]);
    }
    return digest;
  }());

  // Random-access lookups against a handful of rows (Lookup is O(n) per
  // overlay pair, so exhaustive lookup would square the test).
  for (size_t i = 0; i < n; i += 1 + n / 7) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const size_t k = i * (n - 1) + (j < i ? j : j - 1);
      ASSERT_EQ(store.Relation(i, j).mask(), masks[k])
          << "lookup (" << i << ", " << j << ")";
    }
  }
}

TEST(RelationStoreProperty, RoundTripsToDenseMatrixOn1000RandomInstances) {
  for (uint64_t seed = 0; seed < 1000; ++seed) {
    Rng rng(0x5EED0000u + seed);
    const int n = 3 + static_cast<int>(rng.NextBelow(18));
    std::vector<Region> regions;
    switch (seed % 3) {
      case 0:
        regions = SmallMapRegions(&rng, n);
        break;
      case 1:
        regions = SmallOverlapRegions(&rng, n);
        break;
      default:
        for (int i = 0; i < n; ++i) {
          regions.push_back(RandomTestRegion(&rng));
        }
        break;
    }

    auto dense = ComputeAllPairs(regions);
    ASSERT_TRUE(dense.ok()) << dense.status();
    EngineStats stats;
    auto store = ComputeRelationStore(regions, EngineOptions(), &stats);
    ASSERT_TRUE(store.ok()) << store.status() << " (seed " << seed << ")";

    ExpectMatchesDense(*store, *dense, regions.size());
    EXPECT_EQ(stats.total_pairs, store->pair_count());
    EXPECT_EQ(stats.computed_pairs, store->overlay_pairs());
    EXPECT_EQ(stats.prefiltered_pairs + stats.computed_pairs,
              stats.total_pairs);
  }
}

// Alternating tall/wide slats through a common centre: every (tall, wide)
// pair crosses on both axes, so ~half of all pairs land in the overlay —
// the worst case for the implicit-run compression. The store must stay
// correct and its footprint must still be exactly the accounted bound
// (overlay + profile + offsets), i.e. bounded by the dense matrix plus the
// per-region overhead even with compression fully defeated.
TEST(RelationStoreProperty, AdversarialAlternatingClassInstance) {
  std::vector<Region> regions;
  const int n = 64;
  for (int i = 0; i < n; ++i) {
    const double offset = 10.0 * i;
    if (i % 2 == 0) {
      // Tall, thin, x-offset.
      regions.push_back(
          Region(MakeRectangle(100.0 + offset, 0.0, 140.0 + offset, 1000.0)));
    } else {
      // Wide, flat, y-offset.
      regions.push_back(
          Region(MakeRectangle(0.0, 100.0 + offset, 1000.0, 140.0 + offset)));
    }
  }

  auto dense = ComputeAllPairs(regions);
  ASSERT_TRUE(dense.ok()) << dense.status();
  auto store = ComputeRelationStore(regions);
  ASSERT_TRUE(store.ok()) << store.status();

  // Compression is actually defeated: a large share of pairs is explicit.
  EXPECT_GE(store->overlay_pairs(), store->pair_count() / 4);

  ExpectMatchesDense(*store, *dense, regions.size());

  // Memory gate: footprint is exactly the accounted structures — 2 bytes
  // per overlay pair, the SoA profile, and one offset per row — so even
  // with every pair explicit the store cannot exceed dense-matrix size
  // plus the fixed per-region overhead.
  const size_t accounted =
      store->overlay_pairs() * sizeof(uint16_t) +
      store->regions() * (4 * sizeof(double) + sizeof(uint8_t)) +
      (store->regions() + 1) * sizeof(uint64_t);
  EXPECT_LE(store->bytes(), 2 * accounted)
      << "capacity overhead exceeded the accounted footprint";
  EXPECT_LE(store->overlay_pairs() * sizeof(uint16_t),
            store->pair_count() * sizeof(uint16_t));
}

// On map workloads the overlay must be a small fraction of the dense
// matrix — the ISSUE gate is ≤10% of dense PairMatrix bytes.
TEST(RelationStoreProperty, MapWorkloadStaysUnderTenPercentOfDense) {
  Rng rng(7u + 600u);
  const std::vector<Region> regions = SmallMapRegions(&rng, 600);
  auto store = ComputeRelationStore(regions);
  ASSERT_TRUE(store.ok()) << store.status();
  const size_t dense_bytes = store->pair_count() * sizeof(uint16_t);
  EXPECT_LE(store->bytes(), dense_bytes / 10)
      << "store " << store->bytes() << "B vs dense " << dense_bytes << "B";
}

// Sweep-strip concurrency: many single-row strips across 8 participants
// must produce a bit-identical store (the tsan tier runs this under the
// race detector; chunk_size 1 maximises strip interleaving).
TEST(RelationStoreConcurrency, StripParallelismIsDeterministic) {
  Rng rng(0xCAFEu);
  std::vector<Region> regions = SmallOverlapRegions(&rng, 120);
  // A couple of map clusters too, so implicit runs and overlay mix.
  std::vector<Region> map = SmallMapRegions(&rng, 80);
  for (Region& region : map) regions.push_back(std::move(region));

  EngineOptions serial;
  serial.threads = 1;
  auto expected = ComputeRelationStore(regions, serial);
  ASSERT_TRUE(expected.ok()) << expected.status();

  for (size_t chunk : {size_t{1}, size_t{7}, size_t{0}}) {
    EngineOptions options;
    options.threads = 8;
    options.chunk_size = chunk;
    EngineStats stats;
    auto store = ComputeRelationStore(regions, options, &stats);
    ASSERT_TRUE(store.ok()) << store.status();
    EXPECT_EQ(stats.threads_used, 8);
    ASSERT_EQ(store->overlay_pairs(), expected->overlay_pairs());
    EXPECT_EQ(store->Digest(), expected->Digest()) << "chunk " << chunk;
  }
}

TEST(RelationStoreEdgeCases, EmptyAndSingletonInputs) {
  std::vector<Region> none;
  auto empty = ComputeRelationStore(none);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->regions(), 0u);
  EXPECT_EQ(empty->pair_count(), 0u);
  empty->ForEach([](size_t, size_t, const CardinalRelation&) {
    FAIL() << "no pairs expected";
  });

  std::vector<Region> one;
  one.push_back(Region(MakeRectangle(0, 0, 10, 10)));
  auto single = ComputeRelationStore(one);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->regions(), 1u);
  EXPECT_EQ(single->pair_count(), 0u);
}

TEST(RelationStoreEdgeCases, InvalidRegionIsReported) {
  std::vector<Region> regions;
  regions.push_back(Region(MakeRectangle(0, 0, 10, 10)));
  regions.push_back(Region());  // Empty region: fails Validate().
  auto store = ComputeRelationStore(regions);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(store.status().message().find("#1"), std::string::npos);
}

// ---- Mutation-layer shadow model. The store's mutation API (SetRegionBox
// / AppendRegion / ReplaceRow / PatchPair / EraseRegion) accepts *any*
// profiled box, so — unlike the DeltaEngine, whose inputs are validated
// regions and therefore never degenerate — this harness drives degenerate
// boxes in and out of the overlay directly. The shadow is authoritative:
// it tracks the boxes and the explicit-pair masks, derives explicitness
// from the same class-code formula the store uses, and after every
// mutation the store must agree pair-for-pair via all read paths.

struct ShadowModel {
  struct ShadowBox {
    double min_x, min_y, max_x, max_y;
    uint8_t cross;
  };
  std::vector<ShadowBox> boxes;
  std::map<std::pair<size_t, size_t>, uint16_t> masks;  // Explicit pairs.

  void SetBox(size_t id, const Box& box) {
    boxes[id] = {box.min_x(), box.min_y(), box.max_x(), box.max_y(),
                 static_cast<uint8_t>(
                     box.IsEmpty() || box.IsDegenerate() ? 0x0f : 0x00)};
  }
  uint8_t Code(size_t i, size_t j) const {
    const uint8_t cx = static_cast<uint8_t>(
        ClassifyIntervalClass(boxes[i].min_x, boxes[i].max_x, boxes[j].min_x,
                              boxes[j].max_x));
    const uint8_t cy = static_cast<uint8_t>(
        ClassifyIntervalClass(boxes[i].min_y, boxes[i].max_y, boxes[j].min_y,
                              boxes[j].max_y));
    return static_cast<uint8_t>(static_cast<uint8_t>(cx << 2 | cy) |
                                boxes[i].cross | boxes[j].cross);
  }
  bool Explicit(size_t i, size_t j) const {
    return !RelationStore::ResolvableCode(Code(i, j));
  }
  uint16_t ExpectedMask(size_t i, size_t j) const {
    if (Explicit(i, j)) return masks.at({i, j});
    return ClassPairRelations()[Code(i, j)].mask();
  }
};

void ExpectMatchesShadow(const RelationStore& store,
                         const ShadowModel& shadow) {
  const size_t n = shadow.boxes.size();
  ASSERT_EQ(store.regions(), n);
  size_t flat = 0;
  uint64_t shadow_digest = 0;
  store.ForEach([&](size_t i, size_t j, const CardinalRelation& relation) {
    ASSERT_EQ(relation.mask(), shadow.ExpectedMask(i, j))
        << "pair (" << i << ", " << j << ")";
    ++flat;
  });
  ASSERT_EQ(flat, store.pair_count());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      shadow_digest += MixPairDigest(i, j, shadow.ExpectedMask(i, j));
    }
  }
  ASSERT_EQ(store.Digest(), shadow_digest);
  // Random-access path too (it ranks through patch lists and ghosts).
  for (size_t i = 0; i < n; i += 1 + n / 5) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      ASSERT_EQ(store.Relation(i, j).mask(), shadow.ExpectedMask(i, j))
          << "lookup (" << i << ", " << j << ")";
    }
  }
}

uint16_t RandomMask(Rng* rng) {
  return static_cast<uint16_t>(1 + rng->NextBelow(511));
}

// One-third of the boxes are degenerate (zero width / zero height), so
// mutations constantly flip whole rows and columns between implicit and
// always-explicit.
Box RandomShadowBox(Rng* rng) {
  const double x = rng->NextDouble(0.0, 800.0);
  const double y = rng->NextDouble(0.0, 800.0);
  double w = rng->NextDouble(1.0, 150.0);
  double h = rng->NextDouble(1.0, 150.0);
  const uint64_t kind = rng->NextBelow(6);
  if (kind == 0) w = 0.0;
  if (kind == 1) h = 0.0;
  return Box(x, y, x + w, y + h);
}

// Applies the caller side of the mutation contract for "region id's box
// becomes `box`": sample old (j, id) explicitness, move the profile,
// rewrite row id wholesale, patch column id everywhere it changed.
void ApplyShadowSetBox(RelationStore* store, ShadowModel* shadow, size_t id,
                       const Box& box, Rng* rng) {
  const size_t n = shadow->boxes.size();
  std::vector<uint8_t> was(n, 0);
  for (size_t j = 0; j < n; ++j) {
    if (j != id && shadow->Explicit(j, id)) was[j] = 1;
  }
  shadow->SetBox(id, box);
  store->SetRegionBox(id, box);
  std::vector<uint32_t> cols;
  std::vector<uint16_t> row_masks;
  for (size_t j = 0; j < n; ++j) {
    if (j == id) continue;
    if (shadow->Explicit(id, j)) {
      const uint16_t mask = RandomMask(rng);
      shadow->masks[{id, j}] = mask;
      cols.push_back(static_cast<uint32_t>(j));
      row_masks.push_back(mask);
    } else {
      shadow->masks.erase({id, j});
    }
    if (shadow->Explicit(j, id)) {
      const uint16_t mask = RandomMask(rng);
      shadow->masks[{j, id}] = mask;
      store->PatchPair(j, id, was[j] != 0, true, mask);
    } else {
      shadow->masks.erase({j, id});
      if (was[j] != 0) store->PatchPair(j, id, true, false, 0);
    }
    store->MaybeCompactRow(j);
  }
  store->ReplaceRow(id, std::move(cols), std::move(row_masks));
}

void ApplyShadowAppend(RelationStore* store, ShadowModel* shadow,
                       const Box& box, Rng* rng) {
  const size_t id = shadow->boxes.size();
  shadow->boxes.push_back({});
  shadow->SetBox(id, box);
  store->AppendRegion(box);
  std::vector<uint32_t> cols;
  std::vector<uint16_t> row_masks;
  for (size_t j = 0; j < id; ++j) {
    if (shadow->Explicit(id, j)) {
      const uint16_t mask = RandomMask(rng);
      shadow->masks[{id, j}] = mask;
      cols.push_back(static_cast<uint32_t>(j));
      row_masks.push_back(mask);
    }
    if (shadow->Explicit(j, id)) {
      const uint16_t mask = RandomMask(rng);
      shadow->masks[{j, id}] = mask;
      store->PatchPair(j, id, false, true, mask);  // Column postdates base.
    }
    store->MaybeCompactRow(j);
  }
  store->ReplaceRow(id, std::move(cols), std::move(row_masks));
}

void ApplyShadowErase(RelationStore* store, ShadowModel* shadow, size_t id) {
  const size_t n = shadow->boxes.size();
  for (size_t j = 0; j < n; ++j) {
    if (j != id && shadow->Explicit(j, id)) {
      store->PatchPair(j, id, true, false, 0);  // EraseRegion precondition.
    }
  }
  store->EraseRegion(id);
  shadow->boxes.erase(shadow->boxes.begin() + static_cast<ptrdiff_t>(id));
  std::map<std::pair<size_t, size_t>, uint16_t> renumbered;
  for (const auto& entry : shadow->masks) {
    const size_t i = entry.first.first;
    const size_t j = entry.first.second;
    if (i == id || j == id) continue;
    renumbered[{i > id ? i - 1 : i, j > id ? j - 1 : j}] = entry.second;
  }
  shadow->masks = std::move(renumbered);
}

// Randomized scripts over the raw mutation API, degenerate boxes included.
TEST(RelationStoreMutation, ShadowModelScriptsWithDegenerateBoxes) {
  for (uint64_t seed = 0; seed < 60; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(0x5AD0u + seed);
    const int n = 4 + static_cast<int>(rng.NextBelow(10));
    const std::vector<Region> regions = SmallOverlapRegions(&rng, n);
    auto built = ComputeRelationStore(regions);
    ASSERT_TRUE(built.ok()) << built.status();
    RelationStore store = std::move(*built);

    ShadowModel shadow;
    for (const Region& region : regions) {
      shadow.boxes.push_back({});
      shadow.SetBox(shadow.boxes.size() - 1, region.BoundingBox());
    }
    store.ForEach([&](size_t i, size_t j, const CardinalRelation& relation) {
      if (store.IsExplicit(i, j)) shadow.masks[{i, j}] = relation.mask();
    });
    ExpectMatchesShadow(store, shadow);

    const int mutations = 4 + static_cast<int>(rng.NextBelow(14));
    for (int m = 0; m < mutations; ++m) {
      SCOPED_TRACE("mutation " + std::to_string(m));
      const uint64_t kind = rng.NextBelow(5);
      if (kind == 0 || shadow.boxes.size() < 3) {
        ApplyShadowAppend(&store, &shadow, RandomShadowBox(&rng), &rng);
      } else if (kind == 4) {
        ApplyShadowErase(&store, &shadow, rng.NextBelow(shadow.boxes.size()));
      } else {
        ApplyShadowSetBox(&store, &shadow, rng.NextBelow(shadow.boxes.size()),
                          RandomShadowBox(&rng), &rng);
      }
      ExpectMatchesShadow(store, shadow);
    }
  }
}

// Compaction path: enough columns mutate that rows outgrow the
// kCompactPatches=64 patch-list threshold and convert to loose rows; the
// script then keeps mutating so the loose-row edit paths (in-place
// PatchPair, EraseRegion renumbering) are exercised too.
TEST(RelationStoreMutation, PatchListsCompactAndStayCorrect) {
  Rng rng(0xC03Au);
  const int n = 80;
  const std::vector<Region> regions = SmallOverlapRegions(&rng, n);
  auto built = ComputeRelationStore(regions);
  ASSERT_TRUE(built.ok()) << built.status();
  RelationStore store = std::move(*built);

  ShadowModel shadow;
  for (const Region& region : regions) {
    shadow.boxes.push_back({});
    shadow.SetBox(shadow.boxes.size() - 1, region.BoundingBox());
  }
  store.ForEach([&](size_t i, size_t j, const CardinalRelation& relation) {
    if (store.IsExplicit(i, j)) shadow.masks[{i, j}] = relation.mask();
  });

  for (int m = 0; m < 120; ++m) {
    const uint64_t kind = rng.NextBelow(8);
    if (kind == 7) {
      ApplyShadowErase(&store, &shadow, rng.NextBelow(shadow.boxes.size()));
    } else {
      // Mostly box moves over a shared canvas: nearly every row's column
      // set churns, so patch lists grow past the compaction threshold.
      ApplyShadowSetBox(&store, &shadow, rng.NextBelow(shadow.boxes.size()),
                        RandomShadowBox(&rng), &rng);
    }
  }
  EXPECT_GT(store.edited_rows(), 0u);
  ExpectMatchesShadow(store, shadow);

#ifdef CARDIR_OBS_ENABLED
  // The arena recharge must track the mutated footprint exactly.
  obs::MemArena& arena = obs::MemArena::Get("relation_store");
  store.RechargeMem();
  const int64_t live_after = arena.LiveBytes();
  store.RechargeMem();  // Idempotent: same footprint, same charge.
  EXPECT_EQ(arena.LiveBytes(), live_after);
  {
    RelationStore copy = store;  // Copy charges its own (edited) footprint.
    EXPECT_EQ(copy.Digest(), store.Digest());
    EXPECT_EQ(arena.LiveBytes(),
              live_after + static_cast<int64_t>(copy.bytes()));
  }
  EXPECT_EQ(arena.LiveBytes(), live_after);
#endif  // CARDIR_OBS_ENABLED
}

#ifdef CARDIR_OBS_ENABLED
// The mem.relation_store arena must balance: live returns to zero when
// stores die, and the charge follows the store across moves.
TEST(RelationStoreMemstats, ArenaChargesBalanceAcrossMoveAndDestroy) {
  obs::MemArena& arena = obs::MemArena::Get("relation_store");
  const int64_t live_before = arena.LiveBytes();
  Rng rng(99u);
  const std::vector<Region> regions = SmallOverlapRegions(&rng, 40);
  {
    auto store = ComputeRelationStore(regions);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ(arena.LiveBytes() - live_before,
              static_cast<int64_t>(store->bytes()));
    RelationStore moved = std::move(*store);  // Charge moves, not doubles.
    EXPECT_EQ(arena.LiveBytes() - live_before,
              static_cast<int64_t>(moved.bytes()));
  }
  EXPECT_EQ(arena.LiveBytes(), live_before);
}
#endif  // CARDIR_OBS_ENABLED

}  // namespace
}  // namespace cardir
