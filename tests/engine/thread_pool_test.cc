#include "engine/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace cardir {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 3, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.thread_count(), threads);
    const size_t count = 10'000;
    std::vector<std::atomic<int>> hits(count);
    pool.ParallelFor(count, 0, [&hits](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (size_t i = 0; i < count; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << ", " << threads
                                   << " threads";
    }
  }
}

TEST(ThreadPoolTest, ChunksPartitionTheRange) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  pool.ParallelFor(1'000, 7, [&total](size_t begin, size_t end) {
    ASSERT_LT(begin, end);
    ASSERT_LE(end - begin, 7u);
    total.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 1'000u);
}

TEST(ThreadPoolTest, HandlesFewerTasksThanThreads) {
  ThreadPool pool(8);
  std::atomic<size_t> total{0};
  pool.ParallelFor(3, 1, [&total](size_t begin, size_t end) {
    total.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 3u);
}

TEST(ThreadPoolTest, ZeroCountIsANoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, 1, [&called](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ReusableAcrossJobs) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    const size_t count = 100 + static_cast<size_t>(round) * 37;
    std::atomic<uint64_t> sum{0};
    pool.ParallelFor(count, 0, [&sum](size_t begin, size_t end) {
      uint64_t local = 0;
      for (size_t i = begin; i < end; ++i) local += i;
      sum.fetch_add(local, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), count * (count - 1) / 2) << "round " << round;
  }
}

TEST(ThreadPoolTest, ClampsNonPositiveThreadCounts) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1);
  std::atomic<size_t> total{0};
  pool.ParallelFor(10, 0, [&total](size_t begin, size_t end) {
    total.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 10u);
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::ResolveThreadCount(4), 4);
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1);
}

TEST(ThreadPoolTest, ResolveThreadCountHonoursEnvOnStarvedHosts) {
  // CARDIR_THREADS only applies when hardware_concurrency() reports 0 or 1
  // (unknown, or a restricted container cpuset); on wider hosts the
  // hardware count wins and the override must be ignored.
  const unsigned hw = std::thread::hardware_concurrency();
  ASSERT_EQ(setenv("CARDIR_THREADS", "3", /*overwrite=*/1), 0);
  if (hw <= 1) {
    EXPECT_EQ(ThreadPool::ResolveThreadCount(0), 3);
  } else {
    EXPECT_EQ(ThreadPool::ResolveThreadCount(0), static_cast<int>(hw));
  }
  // An explicit request always beats the environment.
  EXPECT_EQ(ThreadPool::ResolveThreadCount(2), 2);
  // Garbage and non-positive values fall back to the hardware count.
  for (const char* bad : {"0", "-4", "junk", "3x", ""}) {
    ASSERT_EQ(setenv("CARDIR_THREADS", bad, 1), 0);
    EXPECT_EQ(ThreadPool::ResolveThreadCount(0), hw == 0 ? 1
                                                         : static_cast<int>(hw))
        << "CARDIR_THREADS='" << bad << "'";
  }
  ASSERT_EQ(unsetenv("CARDIR_THREADS"), 0);
}

TEST(ThreadPoolTest, UnbalancedTasksAreStolen) {
  // One pathological shard: task 0 is ~all the work. With stealing, the
  // remaining tasks complete on other threads; we only assert completion
  // and coverage (scheduling itself is nondeterministic).
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(64, 1, [&hits](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (i == 0) {
        // Simulate a heavy task.
        volatile uint64_t x = 0;
        for (int k = 0; k < 2'000'000; ++k) x += static_cast<uint64_t>(k);
      }
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

}  // namespace
}  // namespace cardir
