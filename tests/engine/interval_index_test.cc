// IntervalOverlapIndex / CandidateBitset / PolygonBoxes tests. The index
// is the delta engine's dirty-set oracle, so the property here is blunt:
// after ANY mutation sequence, every query must report exactly the
// strict-overlap candidates a brute-force scan over the authoritative
// interval set reports — tombstones, overflow entries, stale block maxima
// and amortized rebuilds included.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "engine/interval_index.h"
#include "geometry/region.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace cardir {
namespace {

struct ShadowEntry {
  double lo = 0.0;
  double hi = 0.0;
  bool skip = false;
};

std::vector<uint32_t> BruteForceOverlaps(const std::vector<ShadowEntry>& shadow,
                                         double qlo, double qhi) {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < shadow.size(); ++i) {
    if (!shadow[i].skip && shadow[i].lo < qhi && shadow[i].hi > qlo) {
      out.push_back(static_cast<uint32_t>(i));
    }
  }
  return out;
}

std::vector<uint32_t> IndexOverlaps(const IntervalOverlapIndex& index,
                                    double qlo, double qhi) {
  std::vector<uint32_t> out;
  index.ForEachOverlap(qlo, qhi, [&out](uint32_t id) { out.push_back(id); });
  std::sort(out.begin(), out.end());
  return out;
}

void ExpectQueriesMatch(const IntervalOverlapIndex& index,
                        const std::vector<ShadowEntry>& shadow, Rng* rng,
                        int queries) {
  for (int q = 0; q < queries; ++q) {
    const double a = rng->NextDouble(-50.0, 1050.0);
    const double b = a + rng->NextDouble(0.0, 400.0);
    const std::vector<uint32_t> got = IndexOverlaps(index, a, b);
    const std::vector<uint32_t> want = BruteForceOverlaps(shadow, a, b);
    ASSERT_EQ(got, want) << "query [" << a << ", " << b << "]";
  }
}

ShadowEntry RandomEntry(Rng* rng) {
  ShadowEntry entry;
  entry.lo = rng->NextDouble(0.0, 950.0);
  entry.hi = entry.lo + rng->NextDouble(0.5, 120.0);
  entry.skip = rng->NextBelow(12) == 0;
  return entry;
}

void BuildFromShadow(IntervalOverlapIndex* index,
                     const std::vector<ShadowEntry>& shadow) {
  std::vector<double> lo, hi;
  std::vector<uint8_t> skip;
  for (const ShadowEntry& entry : shadow) {
    lo.push_back(entry.lo);
    hi.push_back(entry.hi);
    skip.push_back(entry.skip ? 1 : 0);
  }
  index->Build(lo, hi, skip);
}

// Randomized differential property: every mix of Update / Append / Remove,
// checked against the brute-force shadow after each mutation. Sizes are
// chosen to cross the kBlock=64 boundary so real block summaries engage.
TEST(IntervalIndexProperty, MutationsMatchBruteForceOn200RandomScripts) {
  for (uint64_t seed = 0; seed < 200; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(0x1D9E0000u + seed);
    std::vector<ShadowEntry> shadow;
    const size_t initial = 2 + rng.NextBelow(150);
    for (size_t i = 0; i < initial; ++i) shadow.push_back(RandomEntry(&rng));
    IntervalOverlapIndex index;
    BuildFromShadow(&index, shadow);
    ExpectQueriesMatch(index, shadow, &rng, 4);

    const int mutations = 3 + static_cast<int>(rng.NextBelow(20));
    for (int m = 0; m < mutations; ++m) {
      const uint64_t kind = rng.NextBelow(4);
      if (kind == 0 || shadow.empty()) {
        const ShadowEntry entry = RandomEntry(&rng);
        shadow.push_back(entry);
        index.Append(entry.lo, entry.hi, entry.skip);
      } else if (kind == 3) {
        const size_t id = rng.NextBelow(shadow.size());
        shadow.erase(shadow.begin() + static_cast<ptrdiff_t>(id));
        index.Remove(id);
      } else {
        const size_t id = rng.NextBelow(shadow.size());
        const ShadowEntry entry = RandomEntry(&rng);
        shadow[id] = entry;
        index.Update(id, entry.lo, entry.hi, entry.skip);
      }
      ASSERT_EQ(index.size(), shadow.size());
      ExpectQueriesMatch(index, shadow, &rng, 4);
    }
  }
}

// Tombstoned entries leave their block maxima stale-but-conservative: a
// block whose true max end shrank may still be scanned, but must never be
// skipped while it holds a live qualifying entry. Shrink the widest
// intervals in place (the adversarial direction) and re-query.
TEST(IntervalIndexTest, BlockSummariesStayConservativeAfterTombstones) {
  Rng rng(0xB10Cu);
  std::vector<ShadowEntry> shadow;
  for (size_t i = 0; i < 512; ++i) {
    ShadowEntry entry;
    entry.lo = static_cast<double>(i);
    // Every 64th interval is enormous, so it alone sets its block max.
    entry.hi = entry.lo + (i % 64 == 0 ? 600.0 : 1.0);
    shadow.push_back(entry);
  }
  IntervalOverlapIndex index;
  BuildFromShadow(&index, shadow);

  // Shrink every block-dominating interval; the recorded block max is now
  // stale (too large). Queries past the shrunken ends must drop them, and
  // queries inside the block must still see the small neighbours.
  for (size_t i = 0; i < 512; i += 64) {
    shadow[i].hi = shadow[i].lo + 0.5;
    index.Update(i, shadow[i].lo, shadow[i].hi, false);
  }
  ExpectQueriesMatch(index, shadow, &rng, 64);

  // And the reverse: grow a mid-block interval far beyond its block.
  shadow[37].hi = shadow[37].lo + 700.0;
  index.Update(37, shadow[37].lo, shadow[37].hi, false);
  ExpectQueriesMatch(index, shadow, &rng, 64);
}

// The amortized rebuild must trigger once pending mutations exceed
// max(kBlock, size/8), drain the tombstone/overflow backlog, and leave the
// queries still exact.
TEST(IntervalIndexTest, PendingMutationsTriggerRebuild) {
  Rng rng(0x9E8Du);
  std::vector<ShadowEntry> shadow;
  for (size_t i = 0; i < 1024; ++i) shadow.push_back(RandomEntry(&rng));
  IntervalOverlapIndex index;
  BuildFromShadow(&index, shadow);
  ASSERT_EQ(index.pending(), 0u);

  size_t max_pending = 0;
  for (int m = 0; m < 400; ++m) {
    const size_t id = rng.NextBelow(shadow.size());
    const ShadowEntry entry = RandomEntry(&rng);
    shadow[id] = entry;
    index.Update(id, entry.lo, entry.hi, entry.skip);
    max_pending = std::max(max_pending, index.pending());
    // Threshold: dead + overflow never exceeds max(kBlock, size/8) for
    // long — one more mutation past it rebuilds back to zero.
    ASSERT_LE(index.pending(),
              std::max(IntervalOverlapIndex::kBlock, shadow.size() / 8) + 1);
  }
  ASSERT_GT(max_pending, IntervalOverlapIndex::kBlock / 2)
      << "mutations never accumulated — threshold test is vacuous";
  ExpectQueriesMatch(index, shadow, &rng, 32);
}

TEST(CandidateBitsetTest, DrainIsSortedDedupedAndSelfClearing) {
  CandidateBitset bits;
  bits.Reset(300);
  for (const uint32_t j : {7u, 299u, 7u, 64u, 63u, 128u, 0u}) bits.Mark(j);
  bits.Clear(128u);
  std::vector<uint32_t> drained;
  bits.Drain([&drained](uint32_t j) { drained.push_back(j); });
  EXPECT_EQ(drained, (std::vector<uint32_t>{0u, 7u, 63u, 64u, 299u}));
  // Drain re-zeroes: a second drain sees nothing.
  drained.clear();
  bits.Drain([&drained](uint32_t j) { drained.push_back(j); });
  EXPECT_TRUE(drained.empty());
}

std::vector<Region> ThreeRegions() {
  std::vector<Region> regions;
  regions.push_back(Region(MakeRectangle(0, 0, 10, 10)));
  Region multi(MakeRectangle(20, 0, 30, 8));
  multi.AddPolygon(MakeRectangle(40, 2, 55, 9));
  regions.push_back(std::move(multi));
  regions.push_back(Region(MakeRectangle(5, 20, 25, 35)));
  return regions;
}

void ExpectPolyBoxesMatchFresh(const PolygonBoxes& boxes,
                               const std::vector<Region>& regions) {
  std::vector<const Region*> pointers;
  for (const Region& region : regions) pointers.push_back(&region);
  PolygonBoxes fresh;
  fresh.Build(pointers);
  ASSERT_EQ(boxes.offsets, fresh.offsets);
  ASSERT_EQ(boxes.min_x, fresh.min_x);
  ASSERT_EQ(boxes.max_x, fresh.max_x);
  ASSERT_EQ(boxes.min_y, fresh.min_y);
  ASSERT_EQ(boxes.max_y, fresh.max_y);
}

TEST(PolygonBoxesTest, MutationsMatchFreshBuild) {
  std::vector<Region> regions = ThreeRegions();
  std::vector<const Region*> pointers;
  for (const Region& region : regions) pointers.push_back(&region);
  PolygonBoxes boxes;
  boxes.Build(pointers);
  ExpectPolyBoxesMatchFresh(boxes, regions);

  // Same-polygon-count replace (the bench's move fast path).
  regions[0] = Region(MakeRectangle(100, 100, 110, 120));
  boxes.ReplaceRegion(0, regions[0]);
  ExpectPolyBoxesMatchFresh(boxes, regions);

  // Count-changing replace (splice path) on the multi-polygon region.
  regions[1] = Region(MakeRectangle(60, 60, 70, 70));
  boxes.ReplaceRegion(1, regions[1]);
  ExpectPolyBoxesMatchFresh(boxes, regions);

  // Grow a region's polygon count through replace.
  Region grown(MakeRectangle(0, 50, 5, 55));
  grown.AddPolygon(MakeRectangle(8, 50, 12, 58));
  grown.AddPolygon(MakeRectangle(14, 52, 18, 60));
  regions[2] = grown;
  boxes.ReplaceRegion(2, regions[2]);
  ExpectPolyBoxesMatchFresh(boxes, regions);

  // Append and erase.
  regions.push_back(Region(MakeRectangle(200, 200, 220, 230)));
  boxes.AppendRegion(regions.back());
  ExpectPolyBoxesMatchFresh(boxes, regions);

  regions.erase(regions.begin() + 1);
  boxes.EraseRegion(1);
  ExpectPolyBoxesMatchFresh(boxes, regions);

  regions.erase(regions.begin());
  boxes.EraseRegion(0);
  ExpectPolyBoxesMatchFresh(boxes, regions);
}

}  // namespace
}  // namespace cardir
