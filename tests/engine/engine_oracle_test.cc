// Differential oracle for the batch relation engine: on randomized REG*
// configurations, the engine's full relation matrix must be bit-identical
// to (a) the serial Compute-CDR loop it replaced and (b) the independent
// clipping-based baseline — for 1, 2, and 8 threads, with and without the
// MBB prefilter.

#include <vector>

#include "clipping/baseline_cdr.h"
#include "core/compute_cdr.h"
#include "engine/batch_engine.h"
#include "engine/relation_store.h"
#include "geometry/region.h"
#include "gtest/gtest.h"
#include "properties/random_instances.h"
#include "util/random.h"

namespace cardir {
namespace {

// The serial all-pairs loop exactly as Configuration::ComputeAllRelations
// ran it before the engine existed.
std::vector<CardinalRelation> SerialMatrix(const std::vector<Region>& regions) {
  std::vector<CardinalRelation> matrix;
  for (size_t i = 0; i < regions.size(); ++i) {
    for (size_t j = 0; j < regions.size(); ++j) {
      if (i == j) continue;
      auto relation = ComputeCdr(regions[i], regions[j]);
      EXPECT_TRUE(relation.ok()) << relation.status();
      matrix.push_back(*relation);
    }
  }
  return matrix;
}

std::vector<CardinalRelation> BaselineMatrix(
    const std::vector<Region>& regions) {
  std::vector<CardinalRelation> matrix;
  for (size_t i = 0; i < regions.size(); ++i) {
    for (size_t j = 0; j < regions.size(); ++j) {
      if (i == j) continue;
      auto relation = BaselineCdr(regions[i], regions[j]);
      EXPECT_TRUE(relation.ok()) << relation.status();
      matrix.push_back(*relation);
    }
  }
  return matrix;
}

class EngineOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineOracleTest, MatrixMatchesSerialLoopAndClippingBaseline) {
  Rng rng(GetParam());
  const size_t num_regions = 12 + rng.NextBelow(14);
  std::vector<Region> regions;
  regions.reserve(num_regions);
  for (size_t i = 0; i < num_regions; ++i) {
    regions.push_back(RandomTestRegion(&rng));
  }

  const std::vector<CardinalRelation> serial = SerialMatrix(regions);
  const std::vector<CardinalRelation> baseline = BaselineMatrix(regions);
  ASSERT_EQ(serial.size(), num_regions * (num_regions - 1));
  ASSERT_EQ(serial, baseline)
      << "the two serial oracles disagree; the fixture itself is broken";

  for (int threads : {1, 2, 8}) {
    for (bool prefilter : {true, false}) {
      EngineOptions options;
      options.threads = threads;
      options.use_prefilter = prefilter;
      EngineStats stats;
      auto pairs = ComputeAllPairs(regions, options, &stats);
      ASSERT_TRUE(pairs.ok()) << pairs.status();
      ASSERT_EQ(pairs->size(), serial.size());
      EXPECT_EQ(stats.total_pairs, serial.size());
      EXPECT_EQ(stats.prefiltered_pairs + stats.computed_pairs,
                stats.total_pairs);
      if (!prefilter) EXPECT_EQ(stats.prefiltered_pairs, 0u);

      size_t flat = 0;
      for (size_t i = 0; i < num_regions; ++i) {
        for (size_t j = 0; j < num_regions; ++j) {
          if (i == j) continue;
          const PairRelation& pair = (*pairs)[flat];
          // Canonical (primary, reference) order, independent of threads.
          ASSERT_EQ(pair.primary, i);
          ASSERT_EQ(pair.reference, j);
          // Bit-identical relation masks vs both oracles.
          ASSERT_EQ(pair.relation.mask(), serial[flat].mask())
              << "pair (" << i << ", " << j << "), " << threads
              << " threads, prefilter=" << prefilter << ": engine "
              << pair.relation.ToString() << " vs serial "
              << serial[flat].ToString();
          ++flat;
        }
      }
    }
  }
}

TEST_P(EngineOracleTest, RelationStoreMatchesSerialLoop) {
  Rng rng(GetParam());
  const size_t num_regions = 12 + rng.NextBelow(14);
  std::vector<Region> regions;
  regions.reserve(num_regions);
  for (size_t i = 0; i < num_regions; ++i) {
    regions.push_back(RandomTestRegion(&rng));
  }

  const std::vector<CardinalRelation> serial = SerialMatrix(regions);

  for (int threads : {1, 2, 8}) {
    EngineOptions options;
    options.threads = threads;
    EngineStats stats;
    auto store = ComputeRelationStore(regions, options, &stats);
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_EQ(store->pair_count(), serial.size());
    EXPECT_EQ(stats.prefiltered_pairs + stats.computed_pairs,
              stats.total_pairs);

    size_t flat = 0;
    store->ForEach(
        [&](size_t i, size_t j, const CardinalRelation& relation) {
          ASSERT_EQ(relation.mask(), serial[flat].mask())
              << "pair (" << i << ", " << j << "), " << threads
              << " threads: store " << relation.ToString() << " vs serial "
              << serial[flat].ToString();
          ++flat;
        });
    ASSERT_EQ(flat, serial.size());

    // The digest seam ties all three result types together: the store, the
    // dense matrix, and the streaming digest must agree bit-for-bit.
    auto digest = ComputeAllPairsDigest(regions, options);
    ASSERT_TRUE(digest.ok()) << digest.status();
    EXPECT_EQ(store->Digest(), *digest);
  }
}

TEST_P(EngineOracleTest, DigestIsThreadCountInvariant) {
  Rng rng(GetParam() ^ 0x9e3779b97f4a7c15ULL);
  std::vector<Region> regions;
  for (size_t i = 0; i < 16; ++i) regions.push_back(RandomTestRegion(&rng));

  std::optional<uint64_t> expected;
  for (int threads : {1, 2, 8}) {
    for (bool prefilter : {true, false}) {
      EngineOptions options;
      options.threads = threads;
      options.use_prefilter = prefilter;
      auto digest = ComputeAllPairsDigest(regions, options);
      ASSERT_TRUE(digest.ok()) << digest.status();
      if (!expected.has_value()) {
        expected = *digest;
      } else {
        EXPECT_EQ(*digest, *expected)
            << threads << " threads, prefilter=" << prefilter;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineOracleTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

TEST(EngineEdgeCaseTest, EmptyAndSingletonInputs) {
  std::vector<Region> none;
  auto empty = ComputeAllPairs(none);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  std::vector<Region> one;
  one.push_back(Region(MakeRectangle(0, 0, 10, 10)));
  auto single = ComputeAllPairs(one);
  ASSERT_TRUE(single.ok());
  EXPECT_TRUE(single->empty());
}

TEST(EngineEdgeCaseTest, InvalidRegionIsReported) {
  std::vector<Region> regions;
  regions.push_back(Region(MakeRectangle(0, 0, 10, 10)));
  regions.push_back(Region());  // Empty region: fails Validate().
  auto pairs = ComputeAllPairs(regions);
  ASSERT_FALSE(pairs.ok());
  EXPECT_EQ(pairs.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(pairs.status().message().find("#1"), std::string::npos);
}

TEST(EngineEdgeCaseTest, PrefilterStatsOnSeparatedGrid) {
  // A 4×4 grid of well-separated rectangles: every pair is tile-separated,
  // so the planner should find no crossing pairs and the prefilter should
  // resolve everything without a single Compute-CDR call.
  std::vector<Region> regions;
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      regions.push_back(Region(
          MakeRectangle(x * 100.0, y * 100.0, x * 100.0 + 40, y * 100.0 + 40)));
    }
  }
  EngineStats stats;
  auto pairs = ComputeAllPairs(regions, EngineOptions(), &stats);
  ASSERT_TRUE(pairs.ok()) << pairs.status();
  EXPECT_EQ(stats.total_pairs, 16u * 15u);
  EXPECT_EQ(stats.prefiltered_pairs, stats.total_pairs);
  EXPECT_EQ(stats.computed_pairs, 0u);
  EXPECT_EQ(stats.crossing_pairs, 0u);
}

}  // namespace
}  // namespace cardir
