// Differential property tests of the batched interval-classification
// kernel against its two oracles: the per-pair MBB prefilter
// (engine/prefilter.h) and the full Compute-CDR on rectangle regions. The
// layouts are adversarial by construction — every ordered pair over a
// coordinate grid that includes touching boundaries, shared corners,
// zero-width/zero-height boxes and identical boxes — because those are
// exactly the cases where the branch-free arithmetic select could diverge
// from the branchy scalar semantics.

#include "engine/interval_kernel.h"

#include <optional>
#include <vector>

#include "core/compute_cdr.h"
#include "core/tile.h"
#include "engine/batch_engine.h"
#include "engine/prefilter.h"
#include "geometry/polygon.h"
#include "geometry/region.h"
#include "gtest/gtest.h"
#include "properties/random_instances.h"
#include "reasoning/interval_algebra.h"
#include "util/random.h"

namespace cardir {
namespace {

// Every interval [a, b] (a <= b; a == b gives zero-width/height extents)
// over a coordinate set that hits the reference lines of every other box
// exactly, plus strictly-inside / outside / straddling positions.
std::vector<Box> AdversarialBoxes() {
  const double coords[] = {5, 10, 15, 20, 25};
  std::vector<Box> boxes;
  for (double ax : coords) {
    for (double bx : coords) {
      if (bx < ax) continue;
      for (double ay : coords) {
        for (double by : coords) {
          if (by < ay) continue;
          boxes.emplace_back(ax, ay, bx, by);
        }
      }
    }
  }
  return boxes;
}

TEST(IntervalKernelTest, StartupValidationPasses) {
  const Status status = ValidateClassKernelOnce();
  EXPECT_TRUE(status.ok()) << status;
}

TEST(IntervalKernelTest, TableIsTileAtForResolvableCodesElseEmpty) {
  const auto& table = ClassPairRelationTable();
  const auto& relations = ClassPairRelations();
  for (uint8_t xc = 0; xc < 4; ++xc) {
    for (uint8_t yc = 0; yc < 4; ++yc) {
      const uint8_t code = static_cast<uint8_t>((xc << 2) | yc);
      if (xc == 3 || yc == 3) {
        EXPECT_EQ(table[code], 0u) << "code " << int(code);
        EXPECT_TRUE(relations[code].IsEmpty()) << "code " << int(code);
      } else {
        const Tile tile = TileAt(static_cast<TileColumn>(xc),
                                 static_cast<TileRow>(yc));
        EXPECT_EQ(table[code], CardinalRelation(tile).mask())
            << "code " << int(code);
        EXPECT_EQ(relations[code], CardinalRelation(tile))
            << "code " << int(code);
      }
    }
  }
}

// Both kernel orientations must agree with MbbPrefilterRelation on every
// ordered pair of adversarial boxes: same resolvable set, same relation.
// For non-degenerate pairs the non-resolvable set must be exactly the
// properly-crossing set (the planner's crossing statistic falls out of the
// class codes).
TEST(IntervalKernelTest, EveryOrderedPairMatchesPrefilterOracle) {
  const std::vector<Box> boxes = AdversarialBoxes();
  const RegionProfile profile = RegionProfile::FromBoxes(boxes);
  const auto& table = ClassPairRelationTable();
  std::vector<uint8_t> by_reference(boxes.size());
  std::vector<uint8_t> by_primary(boxes.size());
  for (size_t r = 0; r < boxes.size(); ++r) {
    const Box& reference = boxes[r];
    const bool usable_reference =
        !reference.IsEmpty() && !reference.IsDegenerate();
    if (usable_reference) {
      ClassifyAgainstReference(profile, reference, by_reference.data());
    }
    for (size_t p = 0; p < boxes.size(); ++p) {
      const Box& primary = boxes[p];
      const std::optional<CardinalRelation> oracle =
          MbbPrefilterRelation(primary, reference);
      if (usable_reference) {
        const uint16_t mask = table[by_reference[p]];
        ASSERT_EQ(oracle.has_value(), mask != 0)
            << "reference-major, primary #" << p << " reference #" << r;
        if (oracle.has_value()) {
          ASSERT_EQ(oracle->mask(), mask)
              << "reference-major, primary #" << p << " reference #" << r;
        }
        if (!primary.IsDegenerate() && !reference.IsDegenerate()) {
          ASSERT_EQ(mask == 0,
                    MbbProperlyCrossesReferenceLines(primary, reference))
              << "crossing fallout, primary #" << p << " reference #" << r;
        }
      } else {
        ASSERT_FALSE(oracle.has_value())
            << "degenerate reference must not be box-resolvable, pair #"
            << p << "/#" << r;
      }
    }
  }
  // Transposed orientation: identical codes for every usable primary.
  for (size_t p = 0; p < boxes.size(); ++p) {
    if (boxes[p].IsEmpty() || boxes[p].IsDegenerate()) continue;
    ClassifyAgainstBands(profile, boxes[p], by_primary.data());
    for (size_t r = 0; r < boxes.size(); ++r) {
      const std::optional<CardinalRelation> oracle =
          MbbPrefilterRelation(boxes[p], boxes[r]);
      const uint16_t mask = table[by_primary[r]];
      ASSERT_EQ(oracle.has_value(), mask != 0)
          << "row-major, primary #" << p << " reference #" << r;
      if (oracle.has_value()) {
        ASSERT_EQ(oracle->mask(), mask)
            << "row-major, primary #" << p << " reference #" << r;
      }
    }
  }
}

// Every pair the kernel resolves must agree with the full algorithm run on
// the boxes as rectangle regions — including identical boxes (B relation)
// and boxes that touch along an edge or share only a corner.
TEST(IntervalKernelTest, ResolvedPairsMatchComputeCdrOnRectangles) {
  const std::vector<Box> boxes = AdversarialBoxes();
  const RegionProfile profile = RegionProfile::FromBoxes(boxes);
  const auto& relations = ClassPairRelations();
  std::vector<uint8_t> codes(boxes.size());
  size_t resolved = 0;
  for (size_t p = 0; p < boxes.size(); ++p) {
    const Box& primary = boxes[p];
    if (primary.IsEmpty() || primary.IsDegenerate()) continue;
    ClassifyAgainstBands(profile, primary, codes.data());
    const Region primary_region(
        MakeRectangle(primary.min_x(), primary.min_y(), primary.max_x(),
                      primary.max_y()));
    for (size_t r = 0; r < boxes.size(); ++r) {
      const CardinalRelation relation = relations[codes[r]];
      if (relation.IsEmpty()) continue;
      const Box& reference = boxes[r];
      const Region reference_region(
          MakeRectangle(reference.min_x(), reference.min_y(),
                        reference.max_x(), reference.max_y()));
      const auto exact = ComputeCdr(primary_region, reference_region);
      ASSERT_TRUE(exact.ok()) << exact.status();
      ASSERT_EQ(relation, *exact)
          << "primary #" << p << " reference #" << r << ": kernel "
          << relation.ToString() << " vs Compute-CDR " << exact->ToString();
      ++resolved;
    }
  }
  // The sweep must actually exercise the resolvable side (identical boxes,
  // touching boxes and corner-sharing boxes are all in it).
  EXPECT_GT(resolved, 1000u);
}

TEST(IntervalKernelTest, DegenerateBoxesAlwaysDefer) {
  const std::vector<Box> boxes = {Box(10, 10, 10, 18),   // Zero width.
                                  Box(10, 10, 18, 10),   // Zero height.
                                  Box(12, 12, 12, 12)};  // A point.
  const RegionProfile profile = RegionProfile::FromBoxes(boxes);
  const auto& table = ClassPairRelationTable();
  std::vector<uint8_t> codes(boxes.size());
  ClassifyAgainstReference(profile, Box(10, 10, 20, 20), codes.data());
  for (size_t i = 0; i < boxes.size(); ++i) {
    EXPECT_EQ(codes[i], 0x0f) << "box #" << i;
    EXPECT_EQ(table[codes[i]], 0u) << "box #" << i;
  }
}

// The scalar classifier, the Allen coarsening, and the batched passes are
// three routes to the same interval class on non-degenerate input.
TEST(IntervalKernelTest, AllenBridgeAgreesWithScalarClassifier) {
  const double coords[] = {0, 4, 8, 10, 14, 20, 22, 26};
  const double m1 = 8, m2 = 20;
  for (double lo : coords) {
    for (double hi : coords) {
      if (hi <= lo) continue;  // Allen classification needs lo < hi.
      const IntervalClass scalar = ClassifyIntervalClass(lo, hi, m1, m2);
      const IntervalClass allen =
          IntervalClassOfAllen(ClassifyIntervals(lo, hi, m1, m2));
      EXPECT_EQ(scalar, allen) << "[" << lo << ", " << hi << "]";
    }
  }
}

TEST(IntervalKernelTest, AllenBlocksCoarsenAsDocumented) {
  EXPECT_EQ(IntervalClassOfAllen(AllenRelation::kBefore), IntervalClass::kLow);
  EXPECT_EQ(IntervalClassOfAllen(AllenRelation::kMeets), IntervalClass::kLow);
  EXPECT_EQ(IntervalClassOfAllen(AllenRelation::kDuring), IntervalClass::kMid);
  EXPECT_EQ(IntervalClassOfAllen(AllenRelation::kStarts), IntervalClass::kMid);
  EXPECT_EQ(IntervalClassOfAllen(AllenRelation::kFinishes),
            IntervalClass::kMid);
  EXPECT_EQ(IntervalClassOfAllen(AllenRelation::kEquals), IntervalClass::kMid);
  EXPECT_EQ(IntervalClassOfAllen(AllenRelation::kMetBy), IntervalClass::kHigh);
  EXPECT_EQ(IntervalClassOfAllen(AllenRelation::kAfter), IntervalClass::kHigh);
  for (AllenRelation r :
       {AllenRelation::kOverlaps, AllenRelation::kFinishedBy,
        AllenRelation::kContains, AllenRelation::kStartedBy,
        AllenRelation::kOverlappedBy}) {
    EXPECT_EQ(IntervalClassOfAllen(r), IntervalClass::kCross);
  }
}

// PairMatrix recomputes the (primary, reference) indices from the slot
// index; the round trip must reproduce the canonical nested-loop order.
TEST(IntervalKernelTest, PairMatrixIndexRoundTrip) {
  Rng rng(0x1D7);
  std::vector<Region> regions;
  for (int i = 0; i < 9; ++i) regions.push_back(RandomTestRegion(&rng));
  const auto pairs = ComputeAllPairs(regions);
  ASSERT_TRUE(pairs.ok()) << pairs.status();
  ASSERT_EQ(pairs->size(), regions.size() * (regions.size() - 1));
  size_t k = 0;
  for (size_t i = 0; i < regions.size(); ++i) {
    for (size_t j = 0; j < regions.size(); ++j) {
      if (i == j) continue;
      const PairRelation record = (*pairs)[k];
      EXPECT_EQ(record.primary, i) << "slot " << k;
      EXPECT_EQ(record.reference, j) << "slot " << k;
      const auto exact = ComputeCdr(regions[i], regions[j]);
      ASSERT_TRUE(exact.ok()) << exact.status();
      EXPECT_EQ(record.relation, *exact) << "slot " << k;
      ++k;
    }
  }
  // Iteration yields the same sequence as indexing.
  size_t it_count = 0;
  for (const PairRelation record : *pairs) {
    const PairRelation indexed = (*pairs)[it_count];
    EXPECT_EQ(record.primary, indexed.primary);
    EXPECT_EQ(record.reference, indexed.reference);
    EXPECT_EQ(record.relation, indexed.relation);
    ++it_count;
  }
  EXPECT_EQ(it_count, pairs->size());
}

}  // namespace
}  // namespace cardir
