#include "reasoning/tables.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace cardir {
namespace {

TEST(TablesTest, InverseTableContainsKnownEntries) {
  const std::string table = SingleTileInverseTable();
  EXPECT_NE(table.find("inv(SW) = {NE}"), std::string::npos) << table;
  EXPECT_NE(table.find("inv(NE) = {SW}"), std::string::npos);
  EXPECT_NE(table.find("inv(NW) = {SE}"), std::string::npos);
  EXPECT_NE(table.find("inv(SE) = {NW}"), std::string::npos);
  // inv(S) includes the disconnected NW:NE case (REG* semantics).
  EXPECT_NE(table.find("NW:NE"), std::string::npos);
  // Nine lines, one per tile.
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 9);
}

TEST(TablesTest, CompositionTableContainsKnownEntries) {
  const std::string table = SingleTileCompositionTable();
  EXPECT_NE(table.find("N  o N  = {N}"), std::string::npos) << table;
  EXPECT_NE(table.find("SW o SW = {SW}"), std::string::npos);
  EXPECT_NE(table.find("B  o B  = {B}"), std::string::npos);
  // SW o NE is totally unconstrained.
  EXPECT_NE(table.find("SW o NE = D* (all 511 relations)"),
            std::string::npos);
  // 81 lines.
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 81);
}

TEST(TablesTest, StatisticsAreWellFormed) {
  const std::string stats = InverseTableStatistics();
  EXPECT_NE(stats.find("511 basic relations"), std::string::npos);
  EXPECT_NE(stats.find("min |inv| = 1"), std::string::npos) << stats;
}

}  // namespace
}  // namespace cardir
