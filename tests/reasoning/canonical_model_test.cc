#include "reasoning/canonical_model.h"

#include <gtest/gtest.h>

namespace cardir {
namespace {

using internal_model::EnumerateAxisConfigs;
using internal_model::SlotBand;

TEST(AxisConfigTest, OneRegionHasOneConfig) {
  EXPECT_EQ(EnumerateAxisConfigs(1).size(), 1u);
}

TEST(AxisConfigTest, TwoRegionsYieldThirteenAllenRelations) {
  // The weak orders of two intervals' endpoints on a line are exactly the 13
  // Allen interval relations.
  EXPECT_EQ(EnumerateAxisConfigs(2).size(), 13u);
}

TEST(AxisConfigTest, ConfigsAreCanonicalAndOrdered) {
  for (const auto& cfg : EnumerateAxisConfigs(2)) {
    EXPECT_LT(cfg[0], cfg[1]);  // a_lo < a_hi.
    EXPECT_LT(cfg[2], cfg[3]);  // b_lo < b_hi.
    // Levels form a gapless prefix from 0.
    int max_level = 0;
    for (int8_t level : cfg) max_level = std::max<int>(max_level, level);
    std::vector<bool> used(static_cast<size_t>(max_level) + 1, false);
    for (int8_t level : cfg) used[static_cast<size_t>(level)] = true;
    for (bool u : used) EXPECT_TRUE(u);
  }
}

TEST(SlotBandTest, BandsRelativeToSpan) {
  // Span [2, 4]: slots 0,1 are low; 2,3 are mid; 4+ are high.
  EXPECT_EQ(SlotBand(0, 2, 4), 0);
  EXPECT_EQ(SlotBand(1, 2, 4), 0);
  EXPECT_EQ(SlotBand(2, 2, 4), 1);
  EXPECT_EQ(SlotBand(3, 2, 4), 1);
  EXPECT_EQ(SlotBand(4, 2, 4), 2);
  EXPECT_EQ(SlotBand(7, 2, 4), 2);
}

TEST(PairSignatureTest, DeduplicatedSignatureCount) {
  // 13 Allen configurations collapse to 11 distinct band signatures (e.g.
  // "equals" duplicates the bands of tight containment).
  EXPECT_EQ(AllPairAxisSignatures().size(), 11u);
}

TEST(TripleSignatureTest, SignaturesAreDeduplicated) {
  const auto& sigs = AllTripleAxisSignatures();
  EXPECT_GT(sigs.size(), 50u);
  for (size_t i = 1; i < sigs.size(); ++i) {
    EXPECT_TRUE(sigs[i - 1] < sigs[i]);  // Strictly sorted = unique.
  }
}

TEST(PairFeasibleTest, SingleTileRelations) {
  // a strictly SW of b on both axes: one slot, band low on each axis.
  const PairTileSets sw = MakePairTileSets({0}, {0});
  EXPECT_TRUE(PairFeasible(
      CardinalRelation(Tile::kSW).mask(), sw));
  EXPECT_FALSE(PairFeasible(CardinalRelation(Tile::kB).mask(), sw));
  EXPECT_FALSE(PairFeasible(
      CardinalRelation({Tile::kSW, Tile::kW}).mask(), sw));
}

TEST(PairFeasibleTest, SideTouchingConstraint) {
  // x slots: [low, mid], y slots: [mid]: cells are W and B. Relation "B"
  // alone is infeasible (the west side of the span would not be touched).
  const PairTileSets sets = MakePairTileSets({0, 1}, {1});
  EXPECT_FALSE(PairFeasible(CardinalRelation(Tile::kB).mask(), sets));
  EXPECT_FALSE(PairFeasible(CardinalRelation(Tile::kW).mask(), sets));
  EXPECT_TRUE(PairFeasible(
      CardinalRelation({Tile::kW, Tile::kB}).mask(), sets));
}

TEST(PairFeasibleTest, EmptyRelationNeverFeasible) {
  EXPECT_FALSE(PairFeasible(0, MakePairTileSets({1}, {1})));
}

TEST(RelationRealizableTest, All511BasicRelationsAreRealizable) {
  // D* is jointly exhaustive over REG* (paper §2): every non-empty tile set
  // is the relation of some pair of regions.
  for (uint16_t mask = 1; mask <= 511; ++mask) {
    EXPECT_TRUE(RelationRealizable(mask))
        << CardinalRelation::FromMask(mask).ToString();
  }
}

}  // namespace
}  // namespace cardir
