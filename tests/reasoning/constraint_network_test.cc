#include "reasoning/constraint_network.h"

#include <gtest/gtest.h>

#include "core/compute_cdr.h"
#include "reasoning/inverse.h"

namespace cardir {
namespace {

CardinalRelation R(const char* spec) { return *CardinalRelation::Parse(spec); }

// Checks that `model` satisfies every constraint of `network` exactly,
// using Compute-CDR as the ground truth.
void ExpectModelSatisfies(const ConstraintNetwork& network,
                          const NetworkModel& model) {
  const int n = network.variable_count();
  ASSERT_EQ(static_cast<int>(model.regions.size()), n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const auto& constraint = network.constraint(i, j);
      if (!constraint.has_value()) continue;
      auto actual = ComputeCdr(model.regions[i], model.regions[j]);
      ASSERT_TRUE(actual.ok()) << actual.status();
      EXPECT_TRUE(constraint->Contains(*actual))
          << network.variable_name(i) << " " << actual->ToString() << " "
          << network.variable_name(j) << " not in " << constraint->ToString();
    }
  }
}

TEST(ConstraintNetworkTest, AddConstraintValidation) {
  ConstraintNetwork network;
  const int a = network.AddVariable("a");
  const int b = network.AddVariable("b");
  EXPECT_TRUE(network.AddConstraint(a, b, R("S")).ok());
  EXPECT_FALSE(network.AddConstraint(a, a, R("S")).ok());
  EXPECT_FALSE(network.AddConstraint(a, 7, R("S")).ok());
  EXPECT_FALSE(network.AddConstraint(a, b, DisjunctiveRelation()).ok());
}

TEST(ConstraintNetworkTest, AddConstraintIntersects) {
  ConstraintNetwork network;
  const int a = network.AddVariable();
  const int b = network.AddVariable();
  DisjunctiveRelation d1;
  d1.Add(R("S"));
  d1.Add(R("N"));
  ASSERT_TRUE(network.AddConstraint(a, b, d1).ok());
  ASSERT_TRUE(network.AddConstraint(a, b, R("S")).ok());
  EXPECT_EQ(network.constraint(a, b)->Count(), 1u);
  EXPECT_TRUE(network.constraint(a, b)->Contains(R("S")));
}

TEST(ConstraintNetworkTest, SimpleBasicNetworkRealizes) {
  ConstraintNetwork network;
  const int a = network.AddVariable("a");
  const int b = network.AddVariable("b");
  ASSERT_TRUE(network.AddConstraint(a, b, R("S")).ok());
  auto model = network.RealizeBasic();
  ASSERT_TRUE(model.ok()) << model.status();
  ExpectModelSatisfies(network, *model);
}

TEST(ConstraintNetworkTest, MultiTileConstraintRealizes) {
  ConstraintNetwork network;
  const int a = network.AddVariable("a");
  const int b = network.AddVariable("b");
  ASSERT_TRUE(network.AddConstraint(a, b, R("B:W:NW:N:NE:E")).ok());
  auto model = network.RealizeBasic();
  ASSERT_TRUE(model.ok()) << model.status();
  ExpectModelSatisfies(network, *model);
}

TEST(ConstraintNetworkTest, MutualSouthIsInconsistent) {
  ConstraintNetwork network;
  const int a = network.AddVariable("a");
  const int b = network.AddVariable("b");
  ASSERT_TRUE(network.AddConstraint(a, b, R("S")).ok());
  ASSERT_TRUE(network.AddConstraint(b, a, R("S")).ok());
  EXPECT_FALSE(network.AlgebraicClosure());
  auto model = network.Solve();
  EXPECT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kInconsistent);
}

TEST(ConstraintNetworkTest, CyclicSouthwestTriangleIsInconsistent) {
  ConstraintNetwork network;
  const int a = network.AddVariable("a");
  const int b = network.AddVariable("b");
  const int c = network.AddVariable("c");
  ASSERT_TRUE(network.AddConstraint(a, b, R("SW")).ok());
  ASSERT_TRUE(network.AddConstraint(b, c, R("SW")).ok());
  ASSERT_TRUE(network.AddConstraint(c, a, R("SW")).ok());
  auto model = network.Solve();
  EXPECT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kInconsistent);
}

TEST(ConstraintNetworkTest, TransitiveSouthChainRealizes) {
  ConstraintNetwork network;
  const int a = network.AddVariable("a");
  const int b = network.AddVariable("b");
  const int c = network.AddVariable("c");
  ASSERT_TRUE(network.AddConstraint(a, b, R("S")).ok());
  ASSERT_TRUE(network.AddConstraint(b, c, R("S")).ok());
  ASSERT_TRUE(network.AddConstraint(a, c, R("S")).ok());
  auto model = network.RealizeBasic();
  ASSERT_TRUE(model.ok()) << model.status();
  ExpectModelSatisfies(network, *model);
}

TEST(ConstraintNetworkTest, CompositionRefutesInconsistentChain) {
  // a S b, b S c but a N c: comp(S, S) = {S} refutes {N}.
  ConstraintNetwork network;
  const int a = network.AddVariable("a");
  const int b = network.AddVariable("b");
  const int c = network.AddVariable("c");
  ASSERT_TRUE(network.AddConstraint(a, b, R("S")).ok());
  ASSERT_TRUE(network.AddConstraint(b, c, R("S")).ok());
  ASSERT_TRUE(network.AddConstraint(a, c, R("N")).ok());
  EXPECT_FALSE(network.AlgebraicClosure());
}

TEST(ConstraintNetworkTest, InverseCouplingPrunes) {
  ConstraintNetwork network;
  const int a = network.AddVariable("a");
  const int b = network.AddVariable("b");
  DisjunctiveRelation d;
  d.Add(R("S"));
  d.Add(R("N"));
  ASSERT_TRUE(network.AddConstraint(a, b, d).ok());
  ASSERT_TRUE(network.AddConstraint(b, a, R("S")).ok());
  ASSERT_TRUE(network.AlgebraicClosure());
  // b S a forces a ∈ inv(S): the S branch of the disjunction dies.
  EXPECT_FALSE(network.constraint(a, b)->Contains(R("S")));
  EXPECT_TRUE(network.constraint(a, b)->Contains(R("N")));
}

TEST(ConstraintNetworkTest, SolveDisjunctivePicksTheConsistentBranch) {
  ConstraintNetwork network;
  const int a = network.AddVariable("a");
  const int b = network.AddVariable("b");
  DisjunctiveRelation d;
  d.Add(R("S"));
  d.Add(R("N"));
  ASSERT_TRUE(network.AddConstraint(a, b, d).ok());
  ASSERT_TRUE(network.AddConstraint(b, a, R("S")).ok());
  auto model = network.Solve();
  ASSERT_TRUE(model.ok()) << model.status();
  auto actual = ComputeCdr(model->regions[0], model->regions[1]);
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(actual->ToString(), "N");
}

TEST(ConstraintNetworkTest, RealizeBasicRejectsDisjunctiveConstraints) {
  ConstraintNetwork network;
  const int a = network.AddVariable();
  const int b = network.AddVariable();
  DisjunctiveRelation d;
  d.Add(R("S"));
  d.Add(R("N"));
  ASSERT_TRUE(network.AddConstraint(a, b, d).ok());
  EXPECT_EQ(network.RealizeBasic().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ConstraintNetworkTest, UnconstrainedVariablesRealize) {
  ConstraintNetwork network;
  network.AddVariable("a");
  network.AddVariable("b");
  auto model = network.RealizeBasic();
  ASSERT_TRUE(model.ok()) << model.status();
  for (const Region& region : model->regions) {
    EXPECT_TRUE(region.Validate().ok());
  }
}

TEST(ConstraintNetworkTest, FromRegionsIsConsistentAndRealizes) {
  std::vector<Region> regions;
  regions.push_back(Region(MakeRectangle(0, 0, 10, 10)));
  regions.push_back(Region(MakeRectangle(20, 0, 30, 10)));
  regions.push_back(Region(MakeRectangle(5, 20, 25, 30)));
  auto network = ConstraintNetwork::FromRegions(regions);
  ASSERT_TRUE(network.ok()) << network.status();
  EXPECT_TRUE(network->AlgebraicClosure());
  auto model = network->RealizeBasic();
  ASSERT_TRUE(model.ok()) << model.status();
  ExpectModelSatisfies(*network, *model);
}

TEST(ConstraintNetworkTest, DisconnectedRelationNetworkRealizes) {
  // The NW:NE inverse case: b spills into two corners of a.
  ConstraintNetwork network;
  const int a = network.AddVariable("a");
  const int b = network.AddVariable("b");
  ASSERT_TRUE(network.AddConstraint(a, b, R("S")).ok());
  ASSERT_TRUE(network.AddConstraint(b, a, R("NW:NE")).ok());
  auto model = network.Solve();
  ASSERT_TRUE(model.ok()) << model.status();
  ExpectModelSatisfies(network, *model);
  // The realised b must be disconnected (two parts, no middle).
  EXPECT_GE(model->regions[1].polygon_count(), 2u);
}

}  // namespace
}  // namespace cardir
