#include "reasoning/disjunctive_relation.h"

#include <gtest/gtest.h>

namespace cardir {
namespace {

CardinalRelation R(const char* spec) { return *CardinalRelation::Parse(spec); }

TEST(DisjunctiveRelationTest, EmptyAndSingleton) {
  DisjunctiveRelation empty;
  EXPECT_TRUE(empty.IsEmpty());
  EXPECT_EQ(empty.Count(), 0u);
  EXPECT_EQ(empty.ToString(), "{}");

  const DisjunctiveRelation single{R("N")};
  EXPECT_EQ(single.Count(), 1u);
  EXPECT_TRUE(single.Contains(R("N")));
  EXPECT_FALSE(single.Contains(R("S")));
  EXPECT_EQ(single.ToString(), "{N}");
}

TEST(DisjunctiveRelationTest, UniversalHas511Members) {
  EXPECT_EQ(DisjunctiveRelation::Universal().Count(), 511u);
}

TEST(DisjunctiveRelationTest, AddRemove) {
  DisjunctiveRelation d;
  d.Add(R("N"));
  d.Add(R("N:NE"));
  EXPECT_EQ(d.Count(), 2u);
  d.Remove(R("N"));
  EXPECT_EQ(d.Count(), 1u);
  EXPECT_TRUE(d.Contains(R("N:NE")));
}

TEST(DisjunctiveRelationTest, SetAlgebra) {
  DisjunctiveRelation a;
  a.Add(R("N"));
  a.Add(R("S"));
  DisjunctiveRelation b;
  b.Add(R("S"));
  b.Add(R("W"));
  EXPECT_EQ(a.Union(b).Count(), 3u);
  EXPECT_EQ(a.Intersection(b).Count(), 1u);
  EXPECT_TRUE(a.Intersection(b).Contains(R("S")));
  EXPECT_TRUE(a.Intersection(b).IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
}

TEST(DisjunctiveRelationTest, ParseBraceSyntax) {
  auto d = DisjunctiveRelation::Parse("{N, W}");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->Count(), 2u);
  EXPECT_TRUE(d->Contains(R("N")));
  EXPECT_TRUE(d->Contains(R("W")));
}

TEST(DisjunctiveRelationTest, ParseBareBasicRelation) {
  auto d = DisjunctiveRelation::Parse("NE:E");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->Count(), 1u);
  EXPECT_TRUE(d->Contains(R("NE:E")));
}

TEST(DisjunctiveRelationTest, ParseEmptyBracesAndErrors) {
  EXPECT_TRUE(DisjunctiveRelation::Parse("{}")->IsEmpty());
  EXPECT_FALSE(DisjunctiveRelation::Parse("{N").ok());
  EXPECT_FALSE(DisjunctiveRelation::Parse("{N, X}").ok());
  EXPECT_FALSE(DisjunctiveRelation::Parse("").ok());
}

TEST(DisjunctiveRelationTest, ToStringListsMembersInMaskOrder) {
  DisjunctiveRelation d;
  d.Add(R("N"));
  d.Add(R("B"));
  EXPECT_EQ(d.ToString(), "{B, N}");  // B has the smaller mask.
}

TEST(DisjunctiveRelationTest, RelationsRoundTrip) {
  DisjunctiveRelation d;
  d.Add(R("B:S"));
  d.Add(R("NE:E"));
  const auto members = d.Relations();
  ASSERT_EQ(members.size(), 2u);
  DisjunctiveRelation rebuilt;
  for (const CardinalRelation& m : members) rebuilt.Add(m);
  EXPECT_EQ(rebuilt, d);
}

}  // namespace
}  // namespace cardir
