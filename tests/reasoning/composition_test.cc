#include "reasoning/composition.h"

#include <gtest/gtest.h>

#include "reasoning/inverse.h"

namespace cardir {
namespace {

CardinalRelation R(const char* spec) { return *CardinalRelation::Parse(spec); }

TEST(CompositionTest, NorthComposedWithNorthIsNorth) {
  // a N b, b N c forces a entirely north of c with a's x-span inside c's.
  EXPECT_EQ(Compose(R("N"), R("N")).ToString(), "{N}");
}

TEST(CompositionTest, CornerRelationsComposeToThemselves) {
  EXPECT_EQ(Compose(R("SW"), R("SW")).ToString(), "{SW}");
  EXPECT_EQ(Compose(R("NE"), R("NE")).ToString(), "{NE}");
}

TEST(CompositionTest, BComposedWithBIsB) {
  // mbb(a) ⊆ mbb(b) ⊆ mbb(c) ⇒ a B c.
  EXPECT_EQ(Compose(R("B"), R("B")).ToString(), "{B}");
}

TEST(CompositionTest, SouthThenNorthKeepsOnlyTheMiddleColumn) {
  // a S b, b N c: a's x-span nests inside b's, which nests inside c's, so a
  // stays in c's middle column; vertically a is unconstrained. Expect all 7
  // non-empty subsets of {B, S, N}.
  const DisjunctiveRelation composed = Compose(R("S"), R("N"));
  EXPECT_EQ(composed.Count(), 7u);
  EXPECT_TRUE(composed.Contains(R("S")));
  EXPECT_TRUE(composed.Contains(R("N")));
  EXPECT_TRUE(composed.Contains(R("B")));
  EXPECT_TRUE(composed.Contains(R("B:S:N")));
  EXPECT_TRUE(composed.Contains(R("S:N")));  // Disconnected a.
  EXPECT_FALSE(composed.Contains(R("W")));
  EXPECT_FALSE(composed.Contains(R("B:W")));
}

TEST(CompositionTest, SouthwestThenNortheastIsUniversal) {
  // a SW b places a far southwest of b; b NE c places b northeast of c —
  // together they leave a completely unconstrained relative to c.
  EXPECT_EQ(Compose(R("SW"), R("NE")).Count(), 511u);
}

TEST(CompositionTest, SouthComposedWithSouthStaysSouth) {
  EXPECT_EQ(Compose(R("S"), R("S")).ToString(), "{S}");
}

TEST(CompositionTest, WestThenSouth) {
  // a W b, b S c: a is west of b which is south of c. a must be strictly
  // ... y: sup_y(a) ≤ sup_y(b) ≤ inf_y(c) ⇒ a in the south row of c.
  const DisjunctiveRelation composed = Compose(R("W"), R("S"));
  for (const CardinalRelation& t : composed.Relations()) {
    for (Tile tile : t.Tiles()) {
      EXPECT_EQ(RowOf(tile), TileRow::kSouth) << t.ToString();
    }
  }
  EXPECT_TRUE(composed.Contains(R("SW")));
  EXPECT_FALSE(composed.Contains(R("SE")));  // a cannot reach east of c.
}

TEST(CompositionTest, ComposedRelationsAreNeverEmpty) {
  // Every (R, S) pair admits at least one model: composition is total.
  const char* const samples[] = {"B",  "S",    "SW",     "N:NE",
                                 "B:S", "W:NW", "B:S:SW:W", "NE:E:SE"};
  for (const char* r : samples) {
    for (const char* s : samples) {
      EXPECT_FALSE(Compose(R(r), R(s)).IsEmpty()) << r << " o " << s;
    }
  }
}

TEST(CompositionTest, MemoisationReturnsIdenticalResults) {
  const DisjunctiveRelation first = Compose(R("B:S"), R("W:NW"));
  const DisjunctiveRelation second = Compose(R("B:S"), R("W:NW"));
  EXPECT_EQ(first, second);
}

TEST(CompositionTest, DisjunctiveCompositionIsUnionOverMembers) {
  DisjunctiveRelation lhs;
  lhs.Add(R("SW"));
  lhs.Add(R("NE"));
  DisjunctiveRelation rhs{R("SW")};
  const DisjunctiveRelation composed = Compose(lhs, rhs);
  // SW∘SW = {SW}; NE∘SW covers everything NE of far-southwest, a big set —
  // at minimum the union contains SW and every member of NE∘SW.
  EXPECT_TRUE(composed.Contains(R("SW")));
  EXPECT_TRUE(Compose(R("NE"), R("SW")).IsSubsetOf(composed));
}

TEST(CompositionTest, ConsistentWithInverseViaSwap) {
  // T ∈ comp(R, S) ⟺ ∃ model (a R b, b S c, a T c). Swapping the roles of a
  // and c gives: inv-image symmetry comp(inv(S)∘inv(R)) ∋ inv-members of T.
  // Spot-check: for every T in comp(N, NE), some U ∈ inv(T) must lie in
  // comp over the reversed chain (c inv(NE)-ish b, b inv(N)-ish a).
  const DisjunctiveRelation forward = Compose(R("N"), R("NE"));
  DisjunctiveRelation reversed;
  for (const CardinalRelation& s_inv : Inverse(R("NE")).Relations()) {
    for (const CardinalRelation& r_inv : Inverse(R("N")).Relations()) {
      reversed.mutable_bits() |= Compose(s_inv, r_inv).bits();
    }
  }
  for (const CardinalRelation& t : forward.Relations()) {
    bool found = false;
    for (const CardinalRelation& u : Inverse(t).Relations()) {
      found |= reversed.Contains(u);
    }
    EXPECT_TRUE(found) << t.ToString();
  }
}

}  // namespace
}  // namespace cardir
