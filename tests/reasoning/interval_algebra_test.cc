#include "reasoning/interval_algebra.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace cardir {
namespace {

using enum AllenRelation;

TEST(ClassifyIntervalsTest, AllThirteenRelations) {
  EXPECT_EQ(ClassifyIntervals(0, 1, 2, 3), kBefore);
  EXPECT_EQ(ClassifyIntervals(0, 2, 2, 3), kMeets);
  EXPECT_EQ(ClassifyIntervals(0, 2, 1, 3), kOverlaps);
  EXPECT_EQ(ClassifyIntervals(0, 3, 1, 3), kFinishedBy);
  EXPECT_EQ(ClassifyIntervals(0, 4, 1, 3), kContains);
  EXPECT_EQ(ClassifyIntervals(1, 2, 1, 3), kStarts);
  EXPECT_EQ(ClassifyIntervals(1, 3, 1, 3), kEquals);
  EXPECT_EQ(ClassifyIntervals(1, 4, 1, 3), kStartedBy);
  EXPECT_EQ(ClassifyIntervals(1.5, 2, 1, 3), kDuring);
  EXPECT_EQ(ClassifyIntervals(2, 3, 1, 3), kFinishes);
  EXPECT_EQ(ClassifyIntervals(2, 4, 1, 3), kOverlappedBy);
  EXPECT_EQ(ClassifyIntervals(3, 4, 1, 3), kMetBy);
  EXPECT_EQ(ClassifyIntervals(4, 5, 1, 3), kAfter);
}

TEST(AllenConverseTest, InvolutionAndKnownPairs) {
  EXPECT_EQ(AllenConverse(kBefore), kAfter);
  EXPECT_EQ(AllenConverse(kMeets), kMetBy);
  EXPECT_EQ(AllenConverse(kOverlaps), kOverlappedBy);
  EXPECT_EQ(AllenConverse(kStarts), kStartedBy);
  EXPECT_EQ(AllenConverse(kDuring), kContains);
  EXPECT_EQ(AllenConverse(kFinishes), kFinishedBy);
  EXPECT_EQ(AllenConverse(kEquals), kEquals);
  for (int i = 0; i < kNumAllenRelations; ++i) {
    const auto r = static_cast<AllenRelation>(i);
    EXPECT_EQ(AllenConverse(AllenConverse(r)), r);
  }
}

TEST(AllenConverseTest, ClassificationConverseConsistency) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const double a_lo = rng.NextInt(0, 6);
    const double a_hi = a_lo + rng.NextInt(1, 4);
    const double b_lo = rng.NextInt(0, 6);
    const double b_hi = b_lo + rng.NextInt(1, 4);
    EXPECT_EQ(AllenConverse(ClassifyIntervals(a_lo, a_hi, b_lo, b_hi)),
              ClassifyIntervals(b_lo, b_hi, a_lo, a_hi));
  }
}

TEST(AllenComposeTest, KnownTableEntries) {
  // Entries from Allen (1983).
  EXPECT_EQ(AllenCompose(kBefore, kBefore), AllenSet(kBefore));
  EXPECT_EQ(AllenCompose(kMeets, kMeets), AllenSet(kBefore));
  EXPECT_EQ(AllenCompose(kDuring, kDuring), AllenSet(kDuring));
  EXPECT_EQ(AllenCompose(kEquals, kOverlaps), AllenSet(kOverlaps));
  EXPECT_EQ(AllenCompose(kOverlaps, kEquals), AllenSet(kOverlaps));
  // o ∘ o = {before, meets, overlaps}.
  AllenSet o_o;
  o_o.Add(kBefore);
  o_o.Add(kMeets);
  o_o.Add(kOverlaps);
  EXPECT_EQ(AllenCompose(kOverlaps, kOverlaps), o_o);
  // before ∘ after is the full algebra.
  EXPECT_EQ(AllenCompose(kBefore, kAfter), AllenSet::All());
  // during ∘ before = before.
  EXPECT_EQ(AllenCompose(kDuring, kBefore), AllenSet(kBefore));
  // before ∘ during = {before, overlaps, meets, during, starts}.
  AllenSet b_d;
  b_d.Add(kBefore);
  b_d.Add(kOverlaps);
  b_d.Add(kMeets);
  b_d.Add(kDuring);
  b_d.Add(kStarts);
  EXPECT_EQ(AllenCompose(kBefore, kDuring), b_d);
}

TEST(AllenComposeTest, EqualsIsIdentity) {
  for (int i = 0; i < kNumAllenRelations; ++i) {
    const auto r = static_cast<AllenRelation>(i);
    EXPECT_EQ(AllenCompose(kEquals, r), AllenSet(r));
    EXPECT_EQ(AllenCompose(r, kEquals), AllenSet(r));
  }
}

TEST(AllenComposeTest, ConverseDistributesOverComposition) {
  // conv(r ∘ s) = conv(s) ∘ conv(r).
  for (int i = 0; i < kNumAllenRelations; ++i) {
    for (int j = 0; j < kNumAllenRelations; ++j) {
      const auto r = static_cast<AllenRelation>(i);
      const auto s = static_cast<AllenRelation>(j);
      EXPECT_EQ(AllenConverse(AllenCompose(r, s)),
                AllenCompose(AllenConverse(s), AllenConverse(r)))
          << AllenRelationName(r) << " / " << AllenRelationName(s);
    }
  }
}

TEST(AllenComposeTest, SoundOnRandomIntervalTriples) {
  Rng rng(13);
  for (int trial = 0; trial < 500; ++trial) {
    const double a_lo = rng.NextInt(0, 8), a_hi = a_lo + rng.NextInt(1, 4);
    const double b_lo = rng.NextInt(0, 8), b_hi = b_lo + rng.NextInt(1, 4);
    const double c_lo = rng.NextInt(0, 8), c_hi = c_lo + rng.NextInt(1, 4);
    const AllenRelation ab = ClassifyIntervals(a_lo, a_hi, b_lo, b_hi);
    const AllenRelation bc = ClassifyIntervals(b_lo, b_hi, c_lo, c_hi);
    const AllenRelation ac = ClassifyIntervals(a_lo, a_hi, c_lo, c_hi);
    EXPECT_TRUE(AllenCompose(ab, bc).Contains(ac))
        << AllenRelationName(ab) << " o " << AllenRelationName(bc)
        << " should contain " << AllenRelationName(ac);
  }
}

TEST(AllenSetTest, SetOperations) {
  AllenSet a(kBefore);
  a.Add(kMeets);
  AllenSet b(kMeets);
  b.Add(kAfter);
  EXPECT_EQ(a.Union(b).Count(), 3);
  EXPECT_EQ(a.Intersection(b), AllenSet(kMeets));
  EXPECT_TRUE(AllenSet(kMeets).IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
  EXPECT_EQ(a.ToString(), "{before, meets}");
  EXPECT_TRUE(AllenSet().IsEmpty());
  EXPECT_EQ(AllenSet::All().Count(), 13);
}

TEST(AllenNamesTest, RoundTrip) {
  for (int i = 0; i < kNumAllenRelations; ++i) {
    const auto r = static_cast<AllenRelation>(i);
    AllenRelation parsed;
    ASSERT_TRUE(ParseAllenRelation(AllenRelationName(r), &parsed));
    EXPECT_EQ(parsed, r);
  }
  AllenRelation r;
  EXPECT_FALSE(ParseAllenRelation("sometime", &r));
}

}  // namespace
}  // namespace cardir
