#include "reasoning/inverse.h"

#include <gtest/gtest.h>

namespace cardir {
namespace {

CardinalRelation R(const char* spec) { return *CardinalRelation::Parse(spec); }

TEST(InverseTest, PaperExampleInverseOfSouth) {
  // §2: if a S b then b is north of a, possibly spilling into NW/NE —
  // including the disconnected NW:NE case allowed by REG*.
  const DisjunctiveRelation inv = Inverse(R("S"));
  EXPECT_EQ(inv.Count(), 5u);
  EXPECT_TRUE(inv.Contains(R("N")));
  EXPECT_TRUE(inv.Contains(R("NW:N")));
  EXPECT_TRUE(inv.Contains(R("N:NE")));
  EXPECT_TRUE(inv.Contains(R("NW:NE")));
  EXPECT_TRUE(inv.Contains(R("NW:N:NE")));
  // b NE a alone is impossible: inf_x(b) ≤ inf_x(a) contradicts b east of a.
  EXPECT_FALSE(inv.Contains(R("NE")));
  EXPECT_FALSE(inv.Contains(R("S")));
}

TEST(InverseTest, CornerRelationsHaveSingletonInverses) {
  // a SW b pins b strictly northeast of a: inv(SW) = {NE}, etc.
  EXPECT_EQ(Inverse(R("SW")).ToString(), "{NE}");
  EXPECT_EQ(Inverse(R("NE")).ToString(), "{SW}");
  EXPECT_EQ(Inverse(R("NW")).ToString(), "{SE}");
  EXPECT_EQ(Inverse(R("SE")).ToString(), "{NW}");
}

TEST(InverseTest, InverseOfBContainsBAndTheFullSurround) {
  const DisjunctiveRelation inv = Inverse(R("B"));
  EXPECT_TRUE(inv.Contains(R("B")));  // Equal regions.
  EXPECT_TRUE(inv.Contains(R("B:S:SW:W:NW:N:NE:E:SE")));  // b swallows a.
  // b cannot be strictly north of a when mbb(a) ⊆ mbb(b).
  EXPECT_FALSE(inv.Contains(R("N")));
}

TEST(InverseTest, SymmetryOverAllPairs) {
  // S ∈ inv(R) ⟺ R ∈ inv(S): both state ∃ a,b with a R b ∧ b S a.
  for (uint16_t r = 1; r <= 511; ++r) {
    const DisjunctiveRelation& inv_r = Inverse(CardinalRelation::FromMask(r));
    for (uint16_t s = 1; s <= 511; ++s) {
      const bool forward = inv_r.Contains(CardinalRelation::FromMask(s));
      const bool backward = Inverse(CardinalRelation::FromMask(s))
                                .Contains(CardinalRelation::FromMask(r));
      ASSERT_EQ(forward, backward) << "r=" << r << " s=" << s;
    }
  }
}

TEST(InverseTest, EveryRelationHasNonEmptyInverse) {
  for (uint16_t r = 1; r <= 511; ++r) {
    EXPECT_FALSE(Inverse(CardinalRelation::FromMask(r)).IsEmpty())
        << CardinalRelation::FromMask(r).ToString();
  }
}

TEST(InverseTest, DisjunctiveInverseIsUnionOfMemberInverses) {
  DisjunctiveRelation d;
  d.Add(R("SW"));
  d.Add(R("SE"));
  const DisjunctiveRelation inv = Inverse(d);
  EXPECT_EQ(inv.Count(), 2u);
  EXPECT_TRUE(inv.Contains(R("NE")));
  EXPECT_TRUE(inv.Contains(R("NW")));
}

TEST(IsValidRelationPairTest, KnownPairs) {
  EXPECT_TRUE(IsValidRelationPair(R("S"), R("N")));
  EXPECT_TRUE(IsValidRelationPair(R("SW"), R("NE")));
  EXPECT_TRUE(IsValidRelationPair(R("B"), R("B")));
  EXPECT_FALSE(IsValidRelationPair(R("S"), R("S")));
  EXPECT_FALSE(IsValidRelationPair(R("SW"), R("SE")));
  EXPECT_FALSE(IsValidRelationPair(R("N"), R("N:NW:NE")));  // Wrong columns?
}

TEST(IsValidRelationPairTest, NorthInverseMembersAreValidPairs) {
  for (const CardinalRelation& s : Inverse(R("N")).Relations()) {
    EXPECT_TRUE(IsValidRelationPair(R("N"), s)) << s.ToString();
  }
}

}  // namespace
}  // namespace cardir
