#include "extensions/topology.h"

#include <gtest/gtest.h>

namespace cardir {
namespace {

using enum TopologicalRelation;

TopologicalRelation Topo(const Region& a, const Region& b) {
  auto result = ComputeTopology(a, b);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.value_or(kDisjoint);
}

TEST(TopologyTest, DisjointRegions) {
  EXPECT_EQ(Topo(Region(MakeRectangle(0, 0, 2, 2)),
                 Region(MakeRectangle(5, 5, 7, 7))),
            kDisjoint);
  // Overlapping bounding boxes but disjoint shapes.
  EXPECT_EQ(Topo(Region(Polygon({Point(0, 0), Point(0, 4), Point(4, 4)})),
                 Region(Polygon({Point(1, 0), Point(5, 0), Point(5, 3)}))),
            kDisjoint);
}

TEST(TopologyTest, MeetingRegions) {
  // Shared edge.
  EXPECT_EQ(Topo(Region(MakeRectangle(0, 0, 2, 2)),
                 Region(MakeRectangle(2, 0, 4, 2))),
            kMeet);
  // Shared corner point only.
  EXPECT_EQ(Topo(Region(MakeRectangle(0, 0, 2, 2)),
                 Region(MakeRectangle(2, 2, 4, 4))),
            kMeet);
  // Partial edge contact.
  EXPECT_EQ(Topo(Region(MakeRectangle(0, 0, 2, 2)),
                 Region(MakeRectangle(2, 1, 4, 5))),
            kMeet);
}

TEST(TopologyTest, OverlappingRegions) {
  EXPECT_EQ(Topo(Region(MakeRectangle(0, 0, 4, 4)),
                 Region(MakeRectangle(2, 2, 6, 6))),
            kOverlap);
  // The "poke through" case without proper edge crossings: a slides through
  // b's boundary along collinear edges.
  EXPECT_EQ(Topo(Region(MakeRectangle(0, -2, 10, 2)),
                 Region(MakeRectangle(0, 0, 10, 10))),
            kOverlap);
}

TEST(TopologyTest, EqualRegions) {
  EXPECT_EQ(Topo(Region(MakeRectangle(1, 1, 5, 5)),
                 Region(MakeRectangle(1, 1, 5, 5))),
            kEqual);
}

TEST(TopologyTest, EqualUnderDifferentDecompositions) {
  // The same square represented as one polygon vs two halves sharing an
  // edge (Fig. 2-style decomposition).
  Region halves;
  halves.AddPolygon(MakeRectangle(1, 1, 3, 5));
  halves.AddPolygon(MakeRectangle(3, 1, 5, 5));
  EXPECT_EQ(Topo(halves, Region(MakeRectangle(1, 1, 5, 5))), kEqual);
  EXPECT_EQ(Topo(Region(MakeRectangle(1, 1, 5, 5)), halves), kEqual);
}

TEST(TopologyTest, InsideAndContains) {
  const Region inner(MakeRectangle(2, 2, 4, 4));
  const Region outer(MakeRectangle(0, 0, 10, 10));
  EXPECT_EQ(Topo(inner, outer), kInside);
  EXPECT_EQ(Topo(outer, inner), kContains);
}

TEST(TopologyTest, CoveredByAndCovers) {
  // Inner touches the outer boundary.
  const Region inner(MakeRectangle(0, 2, 4, 4));
  const Region outer(MakeRectangle(0, 0, 10, 10));
  EXPECT_EQ(Topo(inner, outer), kCoveredBy);
  EXPECT_EQ(Topo(outer, inner), kCovers);
}

TEST(TopologyTest, RegionInsideHoleIsDisjoint) {
  // Ring with a hole; a region inside the hole shares no point with it.
  Region ring;
  ring.AddPolygon(MakeRectangle(0, 0, 10, 3));
  ring.AddPolygon(MakeRectangle(0, 7, 10, 10));
  ring.AddPolygon(MakeRectangle(0, 3, 3, 7));
  ring.AddPolygon(MakeRectangle(7, 3, 10, 7));
  EXPECT_EQ(Topo(Region(MakeRectangle(4, 4, 6, 6)), ring), kDisjoint);
  // Touching the hole boundary: meet.
  EXPECT_EQ(Topo(Region(MakeRectangle(3, 4, 6, 6)), ring), kMeet);
  // Spanning the hole and the ring: overlap.
  EXPECT_EQ(Topo(Region(MakeRectangle(2, 4, 6, 6)), ring), kOverlap);
}

TEST(TopologyTest, EnclaveExactlyFillingAHoleMeets) {
  // The plug's boundary coincides with the ring's inner boundary, yet the
  // interiors are disjoint: meet, not coveredBy.
  Region ring;
  ring.AddPolygon(MakeRectangle(0, 0, 10, 3));
  ring.AddPolygon(MakeRectangle(0, 7, 10, 10));
  ring.AddPolygon(MakeRectangle(0, 3, 3, 7));
  ring.AddPolygon(MakeRectangle(7, 3, 10, 7));
  const Region plug(MakeRectangle(3, 3, 7, 7));
  EXPECT_EQ(Topo(plug, ring), kMeet);
  EXPECT_EQ(Topo(ring, plug), kMeet);
}

TEST(TopologyTest, DisconnectedRegionStraddling) {
  // One part inside b, one part outside: overlap even though no boundary
  // crossing exists.
  Region a;
  a.AddPolygon(MakeRectangle(2, 2, 3, 3));
  a.AddPolygon(MakeRectangle(20, 20, 21, 21));
  EXPECT_EQ(Topo(a, Region(MakeRectangle(0, 0, 10, 10))), kOverlap);
}

TEST(TopologyTest, ConverseFunction) {
  EXPECT_EQ(ConverseTopology(kInside), kContains);
  EXPECT_EQ(ConverseTopology(kCovers), kCoveredBy);
  EXPECT_EQ(ConverseTopology(kMeet), kMeet);
  EXPECT_EQ(ConverseTopology(kEqual), kEqual);
  EXPECT_EQ(ConverseTopology(kOverlap), kOverlap);
  EXPECT_EQ(ConverseTopology(kDisjoint), kDisjoint);
}

TEST(TopologyTest, NamesRoundTrip) {
  for (TopologicalRelation r :
       {kDisjoint, kMeet, kOverlap, kEqual, kInside, kCoveredBy, kContains,
        kCovers}) {
    TopologicalRelation parsed;
    ASSERT_TRUE(ParseTopologicalRelation(TopologicalRelationName(r), &parsed));
    EXPECT_EQ(parsed, r);
  }
  TopologicalRelation r;
  EXPECT_FALSE(ParseTopologicalRelation("touching", &r));
}

TEST(TopologyTest, ValidationErrors) {
  EXPECT_FALSE(ComputeTopology(Region(), Region(MakeRectangle(0, 0, 1, 1)))
                   .ok());
}

}  // namespace
}  // namespace cardir
