#include "extensions/distance.h"

#include <gtest/gtest.h>

namespace cardir {
namespace {

TEST(MinimumDistanceTest, IntersectingRegionsHaveZeroDistance) {
  EXPECT_DOUBLE_EQ(*MinimumDistance(Region(MakeRectangle(0, 0, 4, 4)),
                                    Region(MakeRectangle(2, 2, 6, 6))),
                   0.0);
  // Touching counts as zero too (closed sets).
  EXPECT_DOUBLE_EQ(*MinimumDistance(Region(MakeRectangle(0, 0, 2, 2)),
                                    Region(MakeRectangle(2, 0, 4, 2))),
                   0.0);
}

TEST(MinimumDistanceTest, ContainmentIsZeroWithoutBoundaryContact) {
  EXPECT_DOUBLE_EQ(*MinimumDistance(Region(MakeRectangle(2, 2, 3, 3)),
                                    Region(MakeRectangle(0, 0, 10, 10))),
                   0.0);
  EXPECT_DOUBLE_EQ(*MinimumDistance(Region(MakeRectangle(0, 0, 10, 10)),
                                    Region(MakeRectangle(2, 2, 3, 3))),
                   0.0);
}

TEST(MinimumDistanceTest, AxisAlignedGap) {
  EXPECT_DOUBLE_EQ(*MinimumDistance(Region(MakeRectangle(0, 0, 2, 2)),
                                    Region(MakeRectangle(5, 0, 7, 2))),
                   3.0);
}

TEST(MinimumDistanceTest, DiagonalGapIsEuclidean) {
  // Closest corners (2,2) and (5,6): distance 5.
  EXPECT_DOUBLE_EQ(*MinimumDistance(Region(MakeRectangle(0, 0, 2, 2)),
                                    Region(MakeRectangle(5, 6, 8, 9))),
                   5.0);
}

TEST(MinimumDistanceTest, DisconnectedRegionUsesNearestPart) {
  Region a;
  a.AddPolygon(MakeRectangle(0, 0, 1, 1));
  a.AddPolygon(MakeRectangle(8, 0, 9, 1));
  const Region b(MakeRectangle(10, 0, 12, 1));
  EXPECT_DOUBLE_EQ(*MinimumDistance(a, b), 1.0);
}

TEST(MinimumDistanceTest, SymmetricInItsArguments) {
  const Region a(MakeRectangle(0, 0, 2, 2));
  const Region b(MakeRectangle(7, 3, 9, 5));
  EXPECT_DOUBLE_EQ(*MinimumDistance(a, b), *MinimumDistance(b, a));
}

TEST(DistanceRelationTest, BucketsScaleWithReferenceDiagonal) {
  // Reference b: 10×10 square, diagonal ≈ 14.142.
  const Region b(MakeRectangle(0, 0, 10, 10));
  // Touching: veryClose.
  EXPECT_EQ(*ComputeDistanceRelation(Region(MakeRectangle(10, 0, 12, 2)), b),
            DistanceRelation::kVeryClose);
  // Gap 2 (< 0.25 · diag ≈ 3.54): veryClose.
  EXPECT_EQ(*ComputeDistanceRelation(Region(MakeRectangle(12, 0, 14, 2)), b),
            DistanceRelation::kVeryClose);
  // Gap 10 (0.707 · diag): close.
  EXPECT_EQ(*ComputeDistanceRelation(Region(MakeRectangle(20, 0, 22, 2)), b),
            DistanceRelation::kClose);
  // Gap 30 (2.12 · diag): commensurate.
  EXPECT_EQ(*ComputeDistanceRelation(Region(MakeRectangle(40, 0, 42, 2)), b),
            DistanceRelation::kCommensurate);
  // Gap 100 (7.07 · diag): far.
  EXPECT_EQ(*ComputeDistanceRelation(Region(MakeRectangle(110, 0, 112, 2)), b),
            DistanceRelation::kFar);
  // Gap 500 (35 · diag): veryFar.
  EXPECT_EQ(*ComputeDistanceRelation(Region(MakeRectangle(510, 0, 512, 2)), b),
            DistanceRelation::kVeryFar);
}

TEST(DistanceRelationTest, CustomScheme) {
  DistanceScheme scheme;
  scheme.thresholds = {0.1, 0.2, 0.3, 0.4};
  const Region b(MakeRectangle(0, 0, 10, 10));
  const Region a(MakeRectangle(20, 0, 22, 2));  // Gap 10 ≈ 0.707 diag.
  EXPECT_EQ(*ComputeDistanceRelation(a, b, scheme),
            DistanceRelation::kVeryFar);
}

TEST(DistanceRelationTest, NamesRoundTrip) {
  for (DistanceRelation r :
       {DistanceRelation::kVeryClose, DistanceRelation::kClose,
        DistanceRelation::kCommensurate, DistanceRelation::kFar,
        DistanceRelation::kVeryFar}) {
    DistanceRelation parsed;
    ASSERT_TRUE(ParseDistanceRelation(DistanceRelationName(r), &parsed));
    EXPECT_EQ(parsed, r);
  }
  DistanceRelation r;
  EXPECT_FALSE(ParseDistanceRelation("nearby", &r));
}

TEST(DistanceTest, ValidationErrors) {
  EXPECT_FALSE(MinimumDistance(Region(), Region(MakeRectangle(0, 0, 1, 1)))
                   .ok());
}

}  // namespace
}  // namespace cardir
