#include "obs/profile.h"

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "gtest/gtest.h"
#include "obs/trace.h"

namespace cardir {
namespace obs {
namespace {

#ifdef CARDIR_OBS_ENABLED

// Holds the nested spans open until the sampler has seen them (checked via
// the live collapsed output) or the deadline passes. Sampling is
// statistical, so the test gives the sampler wall-clock room instead of
// asserting on a fixed number of iterations.
bool HoldSpansUntilSampled(const std::string& needle,
                           std::chrono::milliseconds deadline) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < until) {
    CARDIR_TRACE_SPAN("profile.test.outer");
    {
      CARDIR_TRACE_SPAN("profile.test.inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (FormatCollapsedStacks().find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

TEST(ProfileTest, SamplerCapturesNestedSpansAsCollapsedStacks) {
  ProfileOptions options;
  options.hz = 4000.0;  // Dense sampling keeps the test short.
  ASSERT_TRUE(StartProfiling(options).ok());
  EXPECT_TRUE(ProfilingActive());
  const bool sampled = HoldSpansUntilSampled(
      "profile.test.outer;profile.test.inner", std::chrono::seconds(10));
  StopProfiling();
  EXPECT_FALSE(ProfilingActive());
  ASSERT_TRUE(sampled) << FormatCollapsedStacks();

  // Collapsed lines are "stack <count>"; the profile persists after stop.
  const std::string collapsed = FormatCollapsedStacks();
  EXPECT_NE(collapsed.find("profile.test.outer;profile.test.inner "),
            std::string::npos)
      << collapsed;

  // The summary attributes the nested samples to both labels inclusively
  // and to the leaf-most label as self time.
  const std::string summary = FormatProfileSummary();
  EXPECT_NE(summary.find("profile.test.outer inclusive="), std::string::npos)
      << summary;
  EXPECT_NE(summary.find("profile.test.inner inclusive="), std::string::npos);

  const ProfileStats stats = GetProfileStats();
  EXPECT_GT(stats.samples_taken, 0u);
  EXPECT_GT(stats.samples_with_work, 0u);
  EXPECT_LE(stats.samples_with_work, stats.samples_taken);
}

TEST(ProfileTest, SecondStartWhileRunningIsRejected) {
  ASSERT_TRUE(StartProfiling().ok());
  const Status second = StartProfiling();
  EXPECT_FALSE(second.ok());
  StopProfiling();
  // After a stop the profiler restarts cleanly (and clears old samples).
  ASSERT_TRUE(StartProfiling().ok());
  StopProfiling();
  EXPECT_TRUE(FormatCollapsedStacks().empty());
}

TEST(ProfileTest, InvalidRateIsRejected) {
  ProfileOptions zero;
  zero.hz = 0.0;
  EXPECT_FALSE(StartProfiling(zero).ok());
  ProfileOptions absurd;
  absurd.hz = 1e9;
  EXPECT_FALSE(StartProfiling(absurd).ok());
  EXPECT_FALSE(ProfilingActive());
}

TEST(ProfileTest, StopWithoutStartIsANoOp) {
  StopProfiling();
  EXPECT_FALSE(ProfilingActive());
}

TEST(ProfileTest, WriteCollapsedProfileRoundTrips) {
  ProfileOptions options;
  options.hz = 4000.0;
  ASSERT_TRUE(StartProfiling(options).ok());
  HoldSpansUntilSampled("profile.test.outer", std::chrono::seconds(10));
  StopProfiling();

  const std::string path = testing::TempDir() + "/profile_test.folded";
  ASSERT_TRUE(WriteCollapsedProfile(path).ok());
  std::ifstream file(path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  EXPECT_EQ(buffer.str(), FormatCollapsedStacks());
  std::remove(path.c_str());

  EXPECT_FALSE(WriteCollapsedProfile("/nonexistent/dir/profile.folded").ok());
}

TEST(SpanStackTest, SamplesSeeOnlyOpenSpans) {
  EnableSpanStacks(true);
  {
    CARDIR_TRACE_SPAN("stack.test.open");
    bool found = false;
    for (const SpanStackSample& sample : SampleSpanStacks()) {
      for (const char* frame : sample.frames) {
        if (std::string(frame) == "stack.test.open") found = true;
      }
    }
    EXPECT_TRUE(found);
  }
  // Closed spans disappear from subsequent samples.
  for (const SpanStackSample& sample : SampleSpanStacks()) {
    for (const char* frame : sample.frames) {
      EXPECT_NE(std::string(frame), "stack.test.open");
    }
  }
  EnableSpanStacks(false);
}

#else  // !CARDIR_OBS_ENABLED

TEST(ProfileTest, CompiledOutStubsReportUnimplemented) {
  EXPECT_FALSE(StartProfiling().ok());
  EXPECT_FALSE(ProfilingActive());
  StopProfiling();
  EXPECT_TRUE(FormatCollapsedStacks().empty());
  EXPECT_TRUE(FormatProfileSummary().empty());
  EXPECT_FALSE(WriteCollapsedProfile("anywhere").ok());
  CARDIR_PROFILE_FRAME("noop");
}

#endif  // CARDIR_OBS_ENABLED

}  // namespace
}  // namespace obs
}  // namespace cardir
