#include "obs/trace.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"

namespace cardir {
namespace obs {
namespace {

// A minimal recursive-descent JSON syntax checker: enough to prove the
// Chrome trace output is well-formed (what chrome://tracing's loader
// requires) without a JSON library dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;  // Skip the escaped character.
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // Closing quote.
    return true;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    const size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

TEST(JsonCheckerTest, AcceptsAndRejects) {
  EXPECT_TRUE(JsonChecker(R"({"a": [1, 2.5, "x\"y", true, null]})").Valid());
  EXPECT_FALSE(JsonChecker(R"({"a": )").Valid());
  EXPECT_FALSE(JsonChecker(R"([1, 2,])").Valid());
  EXPECT_FALSE(JsonChecker("{} trailing").Valid());
}

TEST(TraceTest, DisabledByDefaultAndSpansAreFree) {
  ASSERT_FALSE(TracingEnabled());
  { CARDIR_TRACE_SPAN("not.recorded"); }
  StartTracing();
  StopTracing();
  // The span above ran while tracing was off, so nothing was collected.
  for (const TraceEvent& event : CollectTraceEvents()) {
    EXPECT_STRNE(event.name, "not.recorded");
  }
}

TEST(TraceTest, RecordsNestedSpansWithDepth) {
  if (!kObsEnabled) GTEST_SKIP() << "tracing compiled out";
  StartTracing();
  {
    CARDIR_TRACE_SPAN("outer");
    {
      CARDIR_TRACE_SPAN("inner");
    }
  }
  StopTracing();
  const std::vector<TraceEvent> events = CollectTraceEvents();
  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  for (const TraceEvent& event : events) {
    if (std::string(event.name) == "outer") outer = &event;
    if (std::string(event.name) == "inner") inner = &event;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(inner->depth, 1u);
  EXPECT_EQ(outer->tid, inner->tid);
  // The inner span is contained in the outer one.
  EXPECT_GE(inner->start_us, outer->start_us);
  EXPECT_LE(inner->start_us + inner->duration_us,
            outer->start_us + outer->duration_us);
}

TEST(TraceTest, AttributesSpansToTheRecordingThread) {
  if (!kObsEnabled) GTEST_SKIP() << "tracing compiled out";
  StartTracing();
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] { CARDIR_TRACE_SPAN("worker.span"); });
  }
  for (auto& thread : threads) thread.join();
  StopTracing();

  std::map<uint32_t, int> spans_per_tid;
  for (const TraceEvent& event : CollectTraceEvents()) {
    if (std::string(event.name) == "worker.span") ++spans_per_tid[event.tid];
  }
  int total = 0;
  for (const auto& [tid, count] : spans_per_tid) total += count;
  EXPECT_EQ(total, kThreads);
  // Dense thread indices: four fresh threads cannot share one id with all
  // four spans unless attribution is broken.
  EXPECT_GE(spans_per_tid.size(), 2u);
}

TEST(TraceTest, StartTracingClearsPreviousEvents) {
  if (!kObsEnabled) GTEST_SKIP() << "tracing compiled out";
  StartTracing();
  { CARDIR_TRACE_SPAN("stale"); }
  StopTracing();
  StartTracing();
  { CARDIR_TRACE_SPAN("fresh"); }
  StopTracing();
  bool saw_stale = false;
  bool saw_fresh = false;
  for (const TraceEvent& event : CollectTraceEvents()) {
    if (std::string(event.name) == "stale") saw_stale = true;
    if (std::string(event.name) == "fresh") saw_fresh = true;
  }
  EXPECT_FALSE(saw_stale);
  EXPECT_TRUE(saw_fresh);
}

TEST(TraceTest, WritesWellFormedChromeTraceJson) {
  StartTracing();
  {
    CARDIR_TRACE_SPAN("phase.one");
    CARDIR_TRACE_SPAN("phase.two");
  }
  StopTracing();
  std::ostringstream out;
  WriteChromeTrace(out);
  const std::string json = out.str();

  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  // The object form chrome://tracing and Perfetto load directly.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  if (kObsEnabled) {
    EXPECT_NE(json.find("\"name\": \"phase.one\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\": "), std::string::npos);
    EXPECT_NE(json.find("\"dur\": "), std::string::npos);
    EXPECT_NE(json.find("\"tid\": "), std::string::npos);
  }
}

TEST(TraceTest, EscapesNamesInJson) {
  if (!kObsEnabled) GTEST_SKIP() << "tracing compiled out";
  StartTracing();
  { CARDIR_TRACE_SPAN("quote\"back\\slash"); }
  StopTracing();
  std::ostringstream out;
  WriteChromeTrace(out);
  EXPECT_TRUE(JsonChecker(out.str()).Valid()) << out.str();
  EXPECT_NE(out.str().find("quote\\\"back\\\\slash"), std::string::npos);
}

TEST(TraceTest, TraceNowMicrosIsMonotonic) {
  const uint64_t a = TraceNowMicros();
  const uint64_t b = TraceNowMicros();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace obs
}  // namespace cardir
