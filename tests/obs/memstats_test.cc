#include "obs/memstats.h"

#include <string>
#include <utility>

#include <vector>

#include "gtest/gtest.h"
#include "core/edge_soa.h"
#include "engine/batch_engine.h"
#include "geometry/polygon.h"
#include "geometry/region.h"
#include "obs/metrics.h"

namespace cardir {
namespace obs {
namespace {

// Arena gauges are process-global, so each test charges its own uniquely
// named arena and asserts on that arena alone (the integration tests below
// window the shared arenas with before/after reads instead).

#ifdef CARDIR_OBS_ENABLED

TEST(MemArenaTest, AllocAndFreeTrackLiveAndPeak) {
  MemArena& arena = MemArena::Get("test_basic");
  arena.Alloc(100);
  arena.Alloc(50);
  EXPECT_EQ(arena.LiveBytes(), 150);
  EXPECT_EQ(arena.PeakBytes(), 150);
  arena.Free(120);
  EXPECT_EQ(arena.LiveBytes(), 30);
  EXPECT_EQ(arena.PeakBytes(), 150);  // Peak is a high-water, not a level.
  arena.Alloc(40);
  EXPECT_EQ(arena.LiveBytes(), 70);
  EXPECT_EQ(arena.PeakBytes(), 150);  // Still below the old high-water.
  arena.Free(70);
  EXPECT_EQ(arena.LiveBytes(), 0);
}

TEST(MemArenaTest, GaugesAreVisibleThroughTheRegistry) {
  MemArena& arena = MemArena::Get("test_registry");
  arena.Alloc(4096);
  const MetricsSnapshot snapshot = CaptureMetrics();
  EXPECT_EQ(snapshot.gauge("mem.test_registry.live_bytes"), 4096);
  EXPECT_EQ(snapshot.gauge("mem.test_registry.peak_bytes"), 4096);
  // The process-wide total aggregates every arena.
  EXPECT_GE(snapshot.gauge("mem.total.live_bytes"), 4096);
  EXPECT_GE(snapshot.gauge("mem.total.peak_bytes"), 4096);
  arena.Free(4096);
}

TEST(MemArenaTest, GetReturnsTheSameArenaForTheSameName) {
  MemArena& a = MemArena::Get("test_identity");
  MemArena& b = MemArena::Get("test_identity");
  EXPECT_EQ(&a, &b);
}

TEST(MemArenaTest, ResetMemPeaksDropsPeakToLive) {
  MemArena& arena = MemArena::Get("test_reset");
  arena.Alloc(1000);
  arena.Free(900);
  EXPECT_EQ(arena.PeakBytes(), 1000);
  ResetMemPeaks();
  // Peak restarts from the surviving live bytes — the ObsWindow contract
  // that makes per-run peaks in BENCH_engine.json meaningful.
  EXPECT_EQ(arena.PeakBytes(), 100);
  arena.Alloc(50);
  EXPECT_EQ(arena.PeakBytes(), 150);
  arena.Free(150);
}

TEST(MemstatsMacroTest, MacrosChargeTheNamedArena) {
  const int64_t live_before =
      MemArena::Get("test_macro").LiveBytes();
  CARDIR_MEMSTAT_ALLOC("test_macro", 256);
  EXPECT_EQ(MemArena::Get("test_macro").LiveBytes(), live_before + 256);
  CARDIR_MEMSTAT_FREE("test_macro", 256);
  EXPECT_EQ(MemArena::Get("test_macro").LiveBytes(), live_before);
}

TEST(ProcessMemoryTest, RssIsPositiveAndSampled) {
  const int64_t rss = ReadRssBytes();
  ASSERT_GT(rss, 0);  // /proc/self/statm exists on every Linux CI host.
  SampleProcessMemory();
  const MetricsSnapshot snapshot = CaptureMetrics();
  EXPECT_GT(snapshot.gauge("mem.process.rss_bytes"), 0);
  EXPECT_GE(snapshot.gauge("mem.process.rss_peak_bytes"),
            snapshot.gauge("mem.process.rss_bytes"));
}

// Integration: EdgeSoA charges mem.edge_soa on lane growth and releases
// exactly that much on destruction — the balanced-accounting property the
// live gauge depends on.
TEST(MemstatsIntegrationTest, EdgeSoaChargesAndReleasesLaneBytes) {
  MemArena& arena = MemArena::Get("edge_soa");
  const int64_t live_before = arena.LiveBytes();
  {
    EdgeSoA soa;
    soa.EnsureCapacity(1024);
    EXPECT_EQ(arena.LiveBytes(),
              live_before + static_cast<int64_t>(soa.LaneBytes()));
    EXPECT_GT(soa.LaneBytes(), 0u);
    // Growing again charges only the delta.
    soa.EnsureCapacity(4096);
    EXPECT_EQ(arena.LiveBytes(),
              live_before + static_cast<int64_t>(soa.LaneBytes()));
    // A move transfers ownership without double-charging: the moved-from
    // destructor must release zero bytes.
    EdgeSoA stolen = std::move(soa);
    EXPECT_EQ(arena.LiveBytes(),
              live_before + static_cast<int64_t>(stolen.LaneBytes()));
  }
  EXPECT_EQ(arena.LiveBytes(), live_before);
}

// Integration: the engine's deferred crossing queue is a fixed budget —
// its arena charge is the configured capacity, not the (much larger)
// number of pairs that defer, and overflow is computed inline with
// identical results.
TEST(MemstatsIntegrationTest, CrossingQueueChargeIsTheConfiguredCap) {
  // Overlapping slats: every (tall, wide) pair crosses both axes, so far
  // more pairs defer than the 8-entry cap below can hold.
  std::vector<Region> regions;
  for (int i = 0; i < 24; ++i) {
    const double offset = 10.0 * i;
    if (i % 2 == 0) {
      regions.push_back(
          Region(MakeRectangle(100.0 + offset, 0.0, 120.0 + offset, 500.0)));
    } else {
      regions.push_back(
          Region(MakeRectangle(0.0, 100.0 + offset, 500.0, 120.0 + offset)));
    }
  }

  EngineOptions uncapped;
  auto expected = ComputeAllPairs(regions, uncapped);
  ASSERT_TRUE(expected.ok()) << expected.status();

  MemArena& arena = MemArena::Get("crossing_queue");
  const int64_t live_before = arena.LiveBytes();
  ResetMemPeaks();

  EngineOptions capped;
  capped.crossing_queue_capacity = 8;  // 8 pairs · 8 bytes = 64 bytes.
  EngineStats stats;
  auto pairs = ComputeAllPairs(regions, capped, &stats);
  ASSERT_TRUE(pairs.ok()) << pairs.status();

  // Far more pairs deferred than the cap holds...
  EXPECT_GT(stats.crossing_pairs, 8u);
  // ...yet the arena's high-water is exactly the 64-byte budget,
  EXPECT_EQ(arena.PeakBytes() - live_before, 64);
  // the backing store was released,
  EXPECT_EQ(arena.LiveBytes(), live_before);
  // and the output is identical to the unbounded run.
  ASSERT_EQ(pairs->size(), expected->size());
  for (size_t k = 0; k < pairs->size(); ++k) {
    ASSERT_EQ((*pairs)[k].relation.mask(), (*expected)[k].relation.mask());
  }
}

#else  // !CARDIR_OBS_ENABLED

TEST(MemstatsTest, CompiledOutStubsAreInert) {
  CARDIR_MEMSTAT_ALLOC("noop", 4096);
  CARDIR_MEMSTAT_FREE("noop", 4096);
  ResetMemPeaks();
  SampleProcessMemory();
  EXPECT_EQ(ReadRssBytes(), -1);
}

#endif  // CARDIR_OBS_ENABLED

}  // namespace
}  // namespace obs
}  // namespace cardir
