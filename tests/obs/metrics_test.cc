#include "obs/metrics.h"

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/export.h"

namespace cardir {
namespace obs {
namespace {

// Registry metrics are process-global, so each test uses its own metric
// names; tests assert on deltas (or fresh names), never absolute values.

TEST(CounterTest, SingleThreadedAddsAccumulate) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  // The headline guarantee: N threads x M increments lose nothing, even
  // though threads share shards. Run under the tsan preset this also
  // proves the sharded fetch_add path is race-free.
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(CounterTest, ConcurrentRegistryLookupsReturnTheSameCounter) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      // Lookup inside the loop: get-or-create must be idempotent and
      // thread-safe, returning one shared instance.
      for (uint64_t i = 0; i < kPerThread; ++i) {
        MetricsRegistry::Global()
            .GetCounter("test.metrics.concurrent_lookup")
            .Increment();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(MetricsRegistry::Global()
                .GetCounter("test.metrics.concurrent_lookup")
                .Value(),
            kThreads * kPerThread);
}

TEST(GaugeTest, SetAndAdjust) {
  Gauge gauge;
  gauge.Set(7);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.Add(-10);
  EXPECT_EQ(gauge.Value(), -3);
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket k holds 2^(k-1) < v <= 2^k; bucket 0 holds 0 and 1.
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 0u);
  EXPECT_EQ(Histogram::BucketOf(2), 1u);
  EXPECT_EQ(Histogram::BucketOf(3), 2u);
  EXPECT_EQ(Histogram::BucketOf(4), 2u);
  EXPECT_EQ(Histogram::BucketOf(5), 3u);
  EXPECT_EQ(Histogram::BucketOf(1024), 10u);
  EXPECT_EQ(Histogram::BucketOf(1025), 11u);
  EXPECT_EQ(Histogram::BucketOf(UINT64_MAX), Histogram::kBuckets - 1);
  // Every value lands in the bucket whose inclusive upper bound covers it.
  for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 17ull, 255ull, 256ull, 257ull}) {
    const size_t k = Histogram::BucketOf(v);
    EXPECT_LE(v, Histogram::BucketUpperBound(k)) << "value " << v;
    if (k > 0) {
      EXPECT_GT(v, Histogram::BucketUpperBound(k - 1)) << "value " << v;
    }
  }
}

TEST(HistogramTest, ObserveAccumulatesCountSumBuckets) {
  Histogram histogram;
  histogram.Observe(1);
  histogram.Observe(3);
  histogram.Observe(3);
  histogram.Observe(100);
  EXPECT_EQ(histogram.Count(), 4u);
  EXPECT_EQ(histogram.Sum(), 107u);
  const std::vector<uint64_t> buckets = histogram.Buckets();
  ASSERT_EQ(buckets.size(), Histogram::kBuckets);
  EXPECT_EQ(buckets[Histogram::BucketOf(1)], 1u);
  EXPECT_EQ(buckets[Histogram::BucketOf(3)], 2u);
  EXPECT_EQ(buckets[Histogram::BucketOf(100)], 1u);
}

TEST(HistogramTest, ConcurrentObservationsSumExactly) {
  Histogram histogram;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        histogram.Observe(static_cast<uint64_t>(t) + 1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(histogram.Count(), kThreads * kPerThread);
  // sum of (t+1) over t in [0,8) times kPerThread = 36 * kPerThread.
  EXPECT_EQ(histogram.Sum(), 36 * kPerThread);
}

TEST(SnapshotTest, DiffSubtractsCountersAndKeepsGaugeLevels) {
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("test.snapshot.ticks").Add(5);
  registry.GetGauge("test.snapshot.level").Set(3);
  registry.GetHistogram("test.snapshot.lat").Observe(10);
  const MetricsSnapshot before = CaptureMetrics();

  registry.GetCounter("test.snapshot.ticks").Add(7);
  registry.GetGauge("test.snapshot.level").Set(9);
  registry.GetHistogram("test.snapshot.lat").Observe(10);
  registry.GetHistogram("test.snapshot.lat").Observe(2000);
  const MetricsSnapshot after = CaptureMetrics();

  const MetricsSnapshot delta = after.Diff(before);
  EXPECT_EQ(delta.counter("test.snapshot.ticks"), 7u);
  // Gauges are levels, not flows: Diff keeps the later value.
  EXPECT_EQ(delta.gauges.at("test.snapshot.level"), 9);
  const HistogramData& lat = delta.histograms.at("test.snapshot.lat");
  EXPECT_EQ(lat.count, 2u);
  EXPECT_EQ(lat.sum, 2010u);
  ASSERT_EQ(lat.buckets.size(), Histogram::kBuckets);
  EXPECT_EQ(lat.buckets[Histogram::BucketOf(10)], 1u);
  EXPECT_EQ(lat.buckets[Histogram::BucketOf(2000)], 1u);
}

TEST(SnapshotTest, CounterAccessorReturnsZeroForUnknownName) {
  const MetricsSnapshot snapshot = CaptureMetrics();
  EXPECT_EQ(snapshot.counter("test.snapshot.never_registered"), 0u);
}

TEST(SnapshotTest, MetricBornAfterEarlierSnapshotDiffsAgainstZero) {
  const MetricsSnapshot before = CaptureMetrics();
  MetricsRegistry::Global().GetCounter("test.snapshot.newborn").Add(4);
  const MetricsSnapshot delta = CaptureMetrics().Diff(before);
  EXPECT_EQ(delta.counter("test.snapshot.newborn"), 4u);
}

// --- exporters (hand-built snapshots, so the goldens are exact) ---

MetricsSnapshot ExampleSnapshot() {
  MetricsSnapshot snapshot;
  snapshot.counters["engine.pairs.total"] = 90;
  snapshot.counters["engine.runs"] = 1;
  snapshot.counters["zero.counter"] = 0;
  snapshot.gauges["engine.pool.threads"] = 4;
  HistogramData lat;
  lat.count = 3;
  lat.sum = 7;
  lat.buckets.assign(Histogram::kBuckets, 0);
  lat.buckets[Histogram::BucketOf(1)] = 2;  // bucket 0, le=1
  lat.buckets[Histogram::BucketOf(5)] = 1;  // bucket 3, le=8
  snapshot.histograms["engine.run_us"] = lat;
  return snapshot;
}

TEST(ExportTest, TableSkipsZeroRowsByDefault) {
  const std::string table = FormatMetricsTable(ExampleSnapshot());
  EXPECT_NE(table.find("engine.pairs.total"), std::string::npos);
  EXPECT_NE(table.find("90"), std::string::npos);
  EXPECT_NE(table.find("engine.pool.threads"), std::string::npos);
  EXPECT_NE(table.find("engine.run_us"), std::string::npos);
  EXPECT_EQ(table.find("zero.counter"), std::string::npos);

  MetricsTableOptions keep_zero;
  keep_zero.skip_zero = false;
  EXPECT_NE(FormatMetricsTable(ExampleSnapshot(), keep_zero)
                .find("zero.counter"),
            std::string::npos);
}

TEST(ExportTest, JsonGolden) {
  const std::string json = FormatMetricsJson(ExampleSnapshot());
  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"engine.pairs.total\": 90,\n"
      "    \"engine.runs\": 1,\n"
      "    \"zero.counter\": 0\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"engine.pool.threads\": 4\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"engine.run_us\": {\"count\": 3, \"sum\": 7, "
      "\"p50\": 0.75, \"p90\": 6.8, \"p99\": 7.88, "
      "\"buckets\": {\"<=1\": 2, \"<=8\": 1}}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(json, expected);
}

TEST(ExportTest, QuantileEstimateInterpolatesWithinBuckets) {
  HistogramData data;
  data.count = 3;
  data.sum = 7;
  data.buckets.assign(Histogram::kBuckets, 0);
  data.buckets[Histogram::BucketOf(1)] = 2;  // bucket 0: [0, 1]
  data.buckets[Histogram::BucketOf(5)] = 1;  // bucket 3: (4, 8]
  // q*count = 1.5 of 2 observations in bucket 0 -> 0.75 of the way to 1.
  EXPECT_DOUBLE_EQ(HistogramQuantileEstimate(data, 0.5), 0.75);
  // q*count = 2.7: 0.7 into the single observation of bucket (4, 8].
  EXPECT_DOUBLE_EQ(HistogramQuantileEstimate(data, 0.9), 6.8);
  EXPECT_DOUBLE_EQ(HistogramQuantileEstimate(data, 0.99), 7.88);
  // Extremes clamp to the bucket bounds; empty histograms estimate 0.
  EXPECT_DOUBLE_EQ(HistogramQuantileEstimate(data, 1.0), 8.0);
  EXPECT_DOUBLE_EQ(HistogramQuantileEstimate(HistogramData{}, 0.5), 0.0);
}

TEST(ExportTest, TableShowsQuantileColumns) {
  const std::string table = FormatMetricsTable(ExampleSnapshot());
  EXPECT_NE(table.find("p50~0.75"), std::string::npos) << table;
  EXPECT_NE(table.find("p90~6.8"), std::string::npos) << table;
  EXPECT_NE(table.find("p99~7.88"), std::string::npos) << table;
}

TEST(ExportTest, PrometheusGolden) {
  const std::string prom = FormatMetricsPrometheus(ExampleSnapshot());
  // Names are sanitised and prefixed; every series carries # HELP + # TYPE.
  EXPECT_NE(prom.find("# HELP cardir_engine_pairs_total"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE cardir_engine_pairs_total counter\n"
                      "cardir_engine_pairs_total 90\n"),
            std::string::npos);
  EXPECT_NE(prom.find("# HELP cardir_engine_pool_threads"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE cardir_engine_pool_threads gauge\n"
                      "cardir_engine_pool_threads 4\n"),
            std::string::npos);
  EXPECT_NE(prom.find("# HELP cardir_engine_run_us"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE cardir_engine_run_us histogram\n"),
            std::string::npos);
  EXPECT_NE(prom.find("cardir_engine_run_us_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  // Dense cumulative series: the empty buckets between le=1 and le=8 are
  // emitted too (gap-free monotone series for histogram_quantile), and the
  // le="8" bucket includes the two observations <= 1.
  EXPECT_NE(prom.find("cardir_engine_run_us_bucket{le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(prom.find("cardir_engine_run_us_bucket{le=\"4\"} 2\n"),
            std::string::npos);
  EXPECT_NE(prom.find("cardir_engine_run_us_bucket{le=\"8\"} 3\n"),
            std::string::npos);
  EXPECT_NE(prom.find("cardir_engine_run_us_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  // ...but not past the highest non-empty bucket.
  EXPECT_EQ(prom.find("cardir_engine_run_us_bucket{le=\"16\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("cardir_engine_run_us_sum 7\n"), std::string::npos);
  EXPECT_NE(prom.find("cardir_engine_run_us_count 3\n"), std::string::npos);
}

TEST(MacroTest, CountMacroIncrementsWhenEnabled) {
  const MetricsSnapshot before = CaptureMetrics();
  CARDIR_METRIC_COUNT("test.macro.count", 3);
  CARDIR_METRIC_COUNT("test.macro.count", 4);
  const MetricsSnapshot delta = CaptureMetrics().Diff(before);
  if (kObsEnabled) {
    EXPECT_EQ(delta.counter("test.macro.count"), 7u);
  } else {
    EXPECT_EQ(delta.counter("test.macro.count"), 0u);
  }
}

}  // namespace
}  // namespace obs
}  // namespace cardir
