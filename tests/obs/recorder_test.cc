#include "obs/recorder.h"

#include <csignal>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "util/logging.h"

// Sanitizer feature detection: the crash death test re-raises a real
// SIGSEGV, which the tsan runtime handles poorly inside death-test forks.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CARDIR_TEST_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define CARDIR_TEST_TSAN 1
#endif

namespace cardir {
namespace obs {
namespace {

#ifdef CARDIR_OBS_ENABLED

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream file(path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

// RAII guard: every test leaves the recorder disabled so the process-global
// rings stay quiet for unrelated tests in this binary.
struct RecorderGuard {
  explicit RecorderGuard(bool enabled) { EnableFlightRecorder(enabled); }
  ~RecorderGuard() {
    EnableFlightRecorder(false);
    SetLogLineHook(nullptr);
  }
};

TEST(RecorderFormatTest, RecordLineGolden) {
  // This is the seam the async-signal-safe dump path writes through; the
  // golden pins the grammar post-mortem tooling greps for.
  RecorderEvent event;
  event.time_us = 12345;
  event.tid = 7;
  event.kind = static_cast<uint16_t>(RecordKind::kChunk);
  event.a = 100;
  event.b = 256;
  std::strncpy(event.label, "classify", sizeof(event.label) - 1);
  char buf[256];
  const size_t len = FormatRecordLine(event, buf, sizeof(buf));
  EXPECT_EQ(std::string(buf, len),
            "event t_us=12345 tid=7 kind=chunk a=100 b=256 label=classify\n");
}

TEST(RecorderFormatTest, LabelsAreSanitisedAndTruncationIsSafe) {
  RecorderEvent event;
  event.kind = static_cast<uint16_t>(RecordKind::kLog);
  std::strncpy(event.label, "two words\tand tab", sizeof(event.label) - 1);
  char buf[256];
  size_t len = FormatRecordLine(event, buf, sizeof(buf));
  // Spaces and control characters become '_' so each line stays a single
  // whitespace-split record.
  EXPECT_NE(std::string(buf, len).find("label=two_words_and_tab\n"),
            std::string::npos);
  // A tiny buffer truncates without overflowing (the returned length never
  // exceeds the capacity).
  char tiny[16];
  len = FormatRecordLine(event, tiny, sizeof(tiny));
  EXPECT_LE(len, sizeof(tiny));
  EXPECT_EQ(std::string(tiny, len), "event t_us=0 tid");
}

TEST(RecorderTest, MacroRecordsOnlyWhenEnabled) {
  const uint64_t before = ThisThreadRecordedCount();
  {
    RecorderGuard guard(false);
    CARDIR_RECORD_EVENT(kMark, "disabled", 0, 0);
    EXPECT_EQ(ThisThreadRecordedCount(), before);
    EnableFlightRecorder(true);
    CARDIR_RECORD_EVENT(kMark, "enabled", 1, 2);
    CARDIR_RECORD_EVENT(kPhase, "enabled.phase", 3, 4);
    EXPECT_EQ(ThisThreadRecordedCount(), before + 2);
  }
  CARDIR_RECORD_EVENT(kMark, "after.guard", 0, 0);
  EXPECT_EQ(ThisThreadRecordedCount(), before + 2);
}

TEST(RecorderTest, DumpContainsHeaderEventsAndMetrics) {
  const std::string path = testing::TempDir() + "/flight_record_dump.txt";
  MetricsRegistry::Global().GetCounter("test.recorder.dump_marker").Add(5);
  {
    RecorderGuard guard(true);
    CARDIR_RECORD_EVENT(kDefer, "dump.test.spill", 41, 3);
    ASSERT_TRUE(DumpFlightRecordToPath(path.c_str()));
  }
  const std::string dump = ReadFileOrEmpty(path);
  EXPECT_EQ(dump.rfind("cardir-flight-record v1\n", 0), 0u) << dump;
  EXPECT_NE(dump.find("\nring tid="), std::string::npos);
  EXPECT_NE(dump.find(" kind=defer a=41 b=3 label=dump.test.spill\n"),
            std::string::npos);
  // The best-effort metrics snapshot rides along.
  EXPECT_NE(dump.find("\nmetric counter test.recorder.dump_marker 5\n"),
            std::string::npos);
  EXPECT_NE(dump.find("\nend\n"), std::string::npos);
  std::remove(path.c_str());
}

TEST(RecorderTest, RingWrapKeepsTheNewestEvents) {
  const std::string path = testing::TempDir() + "/flight_record_wrap.txt";
  constexpr uint64_t kOverflow = 100;
  {
    RecorderGuard guard(true);
    // A dedicated thread gets a fresh ring, so `recorded` is exact.
    std::thread writer([] {
      for (uint64_t i = 0; i < kRingCapacity + kOverflow; ++i) {
        CARDIR_RECORD_EVENT(kMark, "wrap.test", i, 0);
      }
    });
    writer.join();  // Quiesce before dumping: no torn-slot race in tests.
    ASSERT_TRUE(DumpFlightRecordToPath(path.c_str()));
  }
  const std::string dump = ReadFileOrEmpty(path);
  std::remove(path.c_str());
  // The writer's ring reports every append but retains only the last
  // kRingCapacity events: a=0..kOverflow-1 were overwritten.
  const std::string ring_line =
      "recorded=" + std::to_string(kRingCapacity + kOverflow) +
      " retained=" + std::to_string(kRingCapacity);
  EXPECT_NE(dump.find(ring_line), std::string::npos) << dump.substr(0, 400);
  EXPECT_NE(dump.find("a=" + std::to_string(kOverflow) + " b=0 label=wrap.test"),
            std::string::npos);
  EXPECT_NE(dump.find("a=" + std::to_string(kRingCapacity + kOverflow - 1) +
                      " b=0 label=wrap.test"),
            std::string::npos);
  EXPECT_EQ(dump.find("a=" + std::to_string(kOverflow - 1) +
                      " b=0 label=wrap.test"),
            std::string::npos);
}

TEST(RecorderTest, LogTailLandsInTheRing) {
  const std::string path = testing::TempDir() + "/flight_record_log.txt";
  {
    RecorderGuard guard(true);
    CaptureLogTail();
    const LogLevel saved = GetLogLevel();
    SetLogLevel(LogLevel::kError);
    // Short needle: the "[ERROR file:line] " prefix shares the 40-byte
    // label field, so the tail of a long message would be clipped.
    CARDIR_LOG(kError) << "ndl7721";
    SetLogLevel(saved);
    ASSERT_TRUE(DumpFlightRecordToPath(path.c_str()));
  }
  const std::string dump = ReadFileOrEmpty(path);
  std::remove(path.c_str());
  // The line arrives truncated to the label field and sanitised on dump.
  EXPECT_NE(dump.find("kind=log"), std::string::npos);
  EXPECT_NE(dump.find("ndl7721"), std::string::npos) << dump;
}

// The end-to-end crash contract: a SIGSEGV inside an instrumented run
// leaves a parseable flight record on disk containing the pre-crash
// events. The death test forks (threadsafe style: re-executes the test
// binary), so InstallCrashDump's sigaction never pollutes this process.
#ifndef CARDIR_TEST_TSAN
TEST(RecorderDeathTest, CrashDumpWritesPreCrashEvents) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = testing::TempDir() + "/flight_record_crash.txt";
  std::remove(path.c_str());
  EXPECT_DEATH(
      {
        InstallCrashDump(path.c_str());
        CARDIR_RECORD_EVENT(kPhase, "pre.crash.phase", 9, 0);
        CARDIR_RECORD_EVENT(kMark, "pre.crash.mark", 10, 11);
        // A real fault, not raise(): InstallCrashDump's handler overrides
        // any sanitizer handler, dumps, and re-raises with the default
        // disposition. The bad address is non-null on purpose: under
        // -fno-sanitize-recover UBSan's null-store check exits(1) before
        // the hardware fault, so a null write never reaches the handler.
        volatile int* bad_pointer = reinterpret_cast<volatile int*>(8);
        *bad_pointer = 1;
      },
      "");
  const std::string dump = ReadFileOrEmpty(path);
  ASSERT_FALSE(dump.empty()) << "crash handler did not write " << path;
  EXPECT_EQ(dump.rfind("cardir-flight-record v1\n", 0), 0u);
  EXPECT_NE(dump.find("kind=phase a=9 b=0 label=pre.crash.phase\n"),
            std::string::npos);
  EXPECT_NE(dump.find("kind=mark a=10 b=11 label=pre.crash.mark\n"),
            std::string::npos);
  EXPECT_NE(dump.find("\nend\n"), std::string::npos);
  std::remove(path.c_str());
}
#endif  // !CARDIR_TEST_TSAN

#else  // !CARDIR_OBS_ENABLED

TEST(RecorderTest, CompiledOutStubsAreInert) {
  EnableFlightRecorder(true);
  EXPECT_FALSE(FlightRecorderEnabled());
  CARDIR_RECORD_EVENT(kMark, "noop", 1, 2);
  EXPECT_EQ(ThisThreadRecordedCount(), 0u);
  EXPECT_FALSE(DumpFlightRecordToPath("/nonexistent/dir/never_written"));
}

#endif  // CARDIR_OBS_ENABLED

}  // namespace
}  // namespace obs
}  // namespace cardir
