#include "geometry/box.h"

#include <gtest/gtest.h>

namespace cardir {
namespace {

TEST(BoxTest, DefaultIsEmpty) {
  Box box;
  EXPECT_TRUE(box.IsEmpty());
  EXPECT_DOUBLE_EQ(box.area(), 0.0);
  EXPECT_FALSE(box.Contains(Point(0, 0)));
}

TEST(BoxTest, ExtendGrowsFromEmpty) {
  Box box;
  box.Extend(Point(2, 3));
  EXPECT_FALSE(box.IsEmpty());
  EXPECT_TRUE(box.IsDegenerate());
  box.Extend(Point(-1, 5));
  EXPECT_EQ(box, Box(-1, 3, 2, 5));
  EXPECT_FALSE(box.IsDegenerate());
}

TEST(BoxTest, ExtendWithBox) {
  Box a(0, 0, 1, 1);
  a.Extend(Box(2, -1, 3, 0.5));
  EXPECT_EQ(a, Box(0, -1, 3, 1));
  Box b(0, 0, 1, 1);
  b.Extend(Box::Empty());
  EXPECT_EQ(b, Box(0, 0, 1, 1));
}

TEST(BoxTest, AccessorsAndCenter) {
  const Box box(1, 2, 5, 10);
  EXPECT_DOUBLE_EQ(box.width(), 4.0);
  EXPECT_DOUBLE_EQ(box.height(), 8.0);
  EXPECT_DOUBLE_EQ(box.area(), 32.0);
  EXPECT_EQ(box.Center(), Point(3, 6));
}

TEST(BoxTest, ClosedContainmentOfPoints) {
  const Box box(0, 0, 2, 2);
  EXPECT_TRUE(box.Contains(Point(1, 1)));
  EXPECT_TRUE(box.Contains(Point(0, 0)));   // Corner.
  EXPECT_TRUE(box.Contains(Point(2, 1)));   // Edge.
  EXPECT_FALSE(box.Contains(Point(2.001, 1)));
  EXPECT_FALSE(box.Contains(Point(-0.001, 0)));
}

TEST(BoxTest, BoxContainment) {
  const Box outer(0, 0, 10, 10);
  EXPECT_TRUE(outer.Contains(Box(2, 2, 8, 8)));
  EXPECT_TRUE(outer.Contains(outer));  // Closed: itself.
  EXPECT_FALSE(outer.Contains(Box(2, 2, 11, 8)));
}

TEST(BoxTest, Intersection) {
  const Box a(0, 0, 5, 5);
  EXPECT_TRUE(a.Intersects(Box(4, 4, 9, 9)));
  EXPECT_TRUE(a.Intersects(Box(5, 5, 9, 9)));  // Touching corner counts.
  EXPECT_FALSE(a.Intersects(Box(6, 0, 9, 5)));
  EXPECT_FALSE(a.Intersects(Box::Empty()));
}

TEST(BoxTest, FromCornersNormalises) {
  EXPECT_EQ(Box::FromCorners(Point(5, 1), Point(2, 7)), Box(2, 1, 5, 7));
}

}  // namespace
}  // namespace cardir
