#include "geometry/robust.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace cardir {
namespace {

TEST(RobustOrientTest, WellConditionedCases) {
  EXPECT_EQ(RobustOrientSign(Point(0, 0), Point(1, 0), Point(0, 1)), 1);
  EXPECT_EQ(RobustOrientSign(Point(0, 0), Point(0, 1), Point(1, 0)), -1);
  EXPECT_EQ(RobustOrientSign(Point(0, 0), Point(1, 1), Point(2, 2)), 0);
  EXPECT_EQ(RobustOrientSign(Point(3, 3), Point(3, 3), Point(1, 7)), 0);
}

TEST(RobustOrientTest, AgreesWithNaiveWhenSafe) {
  Rng rng(1);
  for (int trial = 0; trial < 2000; ++trial) {
    const Point a(rng.NextDouble(-100, 100), rng.NextDouble(-100, 100));
    const Point b(rng.NextDouble(-100, 100), rng.NextDouble(-100, 100));
    const Point c(rng.NextDouble(-100, 100), rng.NextDouble(-100, 100));
    const double naive = Orient2D(a, b, c);
    if (std::abs(naive) < 1e-6) continue;  // Near-degenerate: naive unsafe.
    EXPECT_EQ(RobustOrientSign(a, b, c), naive > 0 ? 1 : -1);
  }
}

TEST(RobustOrientTest, ExactZeroOnCollinearUlpGrids) {
  // Collinear points whose naive determinant underflows into noise.
  for (int k = 1; k <= 50; ++k) {
    const double t = k * 1e-30;
    EXPECT_EQ(RobustOrientSign(Point(0, 0), Point(t, t), Point(2 * t, 2 * t)),
              0)
        << k;
  }
  // Collinear with large magnitudes.
  EXPECT_EQ(RobustOrientSign(Point(1e15, 1e15), Point(2e15, 2e15),
                             Point(3e15, 3e15)),
            0);
}

TEST(RobustOrientTest, UlpPerturbationGridIsSignConsistent) {
  // The classic Kettner et al. experiment: perturb a nearly-collinear
  // configuration by ulps and require the exact predicate to satisfy the
  // algebraic identities a naive evaluation violates in this regime.
  const Point base_a(0.5, 0.5);
  const Point base_b(12.0, 12.0);
  const Point base_c(24.0, 24.0);
  for (int i = -4; i <= 4; ++i) {
    for (int j = -4; j <= 4; ++j) {
      Point a = base_a;
      Point c = base_c;
      for (int s = 0; s < std::abs(i); ++s) {
        a.x = std::nextafter(a.x, i > 0 ? 1.0 : 0.0);
      }
      for (int s = 0; s < std::abs(j); ++s) {
        c.y = std::nextafter(c.y, j > 0 ? 100.0 : 0.0);
      }
      const int sign = RobustOrientSign(a, base_b, c);
      // Antisymmetry under swapping two arguments.
      EXPECT_EQ(RobustOrientSign(base_b, a, c), -sign);
      EXPECT_EQ(RobustOrientSign(a, c, base_b), -sign);
      // Invariance under cyclic rotation.
      EXPECT_EQ(RobustOrientSign(base_b, c, a), sign);
      EXPECT_EQ(RobustOrientSign(c, a, base_b), sign);
    }
  }
}

TEST(RobustOrientTest, AlgebraicIdentitiesOnRandomNearDegenerateTriples) {
  Rng rng(7);
  for (int trial = 0; trial < 3000; ++trial) {
    // Points on a line y = m x + q, then perturbed by a few ulps.
    const double m = rng.NextDouble(-2.0, 2.0);
    const double q = rng.NextDouble(-1.0, 1.0);
    auto on_line = [&](double x) { return Point(x, m * x + q); };
    Point a = on_line(rng.NextDouble(0.0, 10.0));
    Point b = on_line(rng.NextDouble(0.0, 10.0));
    Point c = on_line(rng.NextDouble(0.0, 10.0));
    for (int s = 0; s < 3; ++s) {
      Point* p = rng.NextBool() ? &a : (rng.NextBool() ? &b : &c);
      p->y = std::nextafter(p->y, rng.NextBool() ? 1e9 : -1e9);
    }
    const int sign = RobustOrientSign(a, b, c);
    EXPECT_EQ(RobustOrientSign(b, c, a), sign);
    EXPECT_EQ(RobustOrientSign(c, a, b), sign);
    EXPECT_EQ(RobustOrientSign(b, a, c), -sign);
    EXPECT_EQ(RobustOrientSign(a, c, b), -sign);
    EXPECT_EQ(RobustOrientSign(c, b, a), -sign);
  }
}

TEST(RobustOrientTest, SignMatchesExactIntegerArithmetic) {
  // On modest integer coordinates the determinant is exactly representable
  // with __int128: compare signs.
  Rng rng(11);
  for (int trial = 0; trial < 3000; ++trial) {
    const int64_t ax = rng.NextInt(-1000000, 1000000);
    const int64_t ay = rng.NextInt(-1000000, 1000000);
    const int64_t bx = rng.NextInt(-1000000, 1000000);
    const int64_t by = rng.NextInt(-1000000, 1000000);
    const int64_t cx = rng.NextInt(-1000000, 1000000);
    const int64_t cy = rng.NextInt(-1000000, 1000000);
    const __int128 det = static_cast<__int128>(bx - ax) * (cy - ay) -
                         static_cast<__int128>(by - ay) * (cx - ax);
    const int expected = det > 0 ? 1 : (det < 0 ? -1 : 0);
    EXPECT_EQ(RobustOrientSign(
                  Point(static_cast<double>(ax), static_cast<double>(ay)),
                  Point(static_cast<double>(bx), static_cast<double>(by)),
                  Point(static_cast<double>(cx), static_cast<double>(cy))),
              expected)
        << trial;
  }
}

}  // namespace
}  // namespace cardir
