#include "geometry/sweep.h"

#include <gtest/gtest.h>

#include "geometry/primitives.h"
#include "util/random.h"
#include "workload/polygon_gen.h"

namespace cardir {
namespace {

TEST(FindIntersectingPairTest, DisjointSegments) {
  const std::vector<Segment> segments = {
      Segment(Point(0, 0), Point(1, 0)),
      Segment(Point(0, 1), Point(1, 1)),
      Segment(Point(2, 0), Point(3, 2)),
  };
  EXPECT_FALSE(FindIntersectingPair(segments).has_value());
}

TEST(FindIntersectingPairTest, ProperCrossingDetected) {
  const std::vector<Segment> segments = {
      Segment(Point(0, 0), Point(4, 4)),
      Segment(Point(0, 4), Point(4, 0)),
  };
  const auto pair = FindIntersectingPair(segments);
  ASSERT_TRUE(pair.has_value());
  EXPECT_EQ(*pair, (std::pair<size_t, size_t>{0, 1}));
}

TEST(FindIntersectingPairTest, EndpointTouchDetected) {
  const std::vector<Segment> segments = {
      Segment(Point(0, 0), Point(2, 2)),
      Segment(Point(2, 2), Point(4, 0)),
  };
  EXPECT_TRUE(FindIntersectingPair(segments).has_value());
  // The same pair with an exemption passes (no proper crossing).
  auto adjacent = [](size_t, size_t) { return true; };
  EXPECT_FALSE(FindIntersectingPair(segments, adjacent).has_value());
}

TEST(FindIntersectingPairTest, CollinearOverlapDetected) {
  const std::vector<Segment> segments = {
      Segment(Point(0, 0), Point(3, 0)),
      Segment(Point(2, 0), Point(5, 0)),
  };
  EXPECT_TRUE(FindIntersectingPair(segments).has_value());
}

TEST(FindIntersectingPairTest, VerticalSegments) {
  const std::vector<Segment> segments = {
      Segment(Point(1, 0), Point(1, 4)),
      Segment(Point(0, 2), Point(3, 2)),
  };
  EXPECT_TRUE(FindIntersectingPair(segments).has_value());
  const std::vector<Segment> apart = {
      Segment(Point(1, 0), Point(1, 4)),
      Segment(Point(2, 0), Point(2, 4)),
  };
  EXPECT_FALSE(FindIntersectingPair(apart).has_value());
}

TEST(FindIntersectingPairTest, DegenerateSegmentsIgnored) {
  const std::vector<Segment> segments = {
      Segment(Point(1, 1), Point(1, 1)),
      Segment(Point(0, 0), Point(2, 0)),
  };
  EXPECT_FALSE(FindIntersectingPair(segments).has_value());
}

TEST(FindIntersectingPairTest, MatchesBruteForceOnRandomSets) {
  Rng rng(271);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = static_cast<int>(rng.NextInt(2, 40));
    std::vector<Segment> segments;
    for (int i = 0; i < n; ++i) {
      // Integer endpoints on a small grid: touching and collinear cases
      // occur often.
      segments.push_back(Segment(
          Point(static_cast<double>(rng.NextInt(0, 20)),
                static_cast<double>(rng.NextInt(0, 20))),
          Point(static_cast<double>(rng.NextInt(0, 20)),
                static_cast<double>(rng.NextInt(0, 20)))));
    }
    bool brute = false;
    for (int i = 0; i < n && !brute; ++i) {
      if (segments[static_cast<size_t>(i)].IsDegenerate()) continue;
      for (int j = i + 1; j < n && !brute; ++j) {
        if (segments[static_cast<size_t>(j)].IsDegenerate()) continue;
        brute = SegmentsIntersect(segments[static_cast<size_t>(i)],
                                  segments[static_cast<size_t>(j)]);
      }
    }
    EXPECT_EQ(FindIntersectingPair(segments).has_value(), brute)
        << "trial " << trial;
  }
}

TEST(ValidateSimpleSweepTest, AgreesWithQuadraticCheckOnFixtures) {
  EXPECT_TRUE(ValidatePolygonSimpleSweep(MakeRectangle(0, 0, 4, 4)).ok());
  Polygon bowtie({Point(0, 0), Point(2, 2), Point(2, 0), Point(0, 2)});
  EXPECT_FALSE(ValidatePolygonSimpleSweep(bowtie).ok());
  Polygon u({Point(0, 0), Point(0, 3), Point(1, 3), Point(1, 1), Point(2, 1),
             Point(2, 3), Point(3, 3), Point(3, 0)});
  u.EnsureClockwise();
  EXPECT_TRUE(ValidatePolygonSimpleSweep(u).ok());
  // Non-adjacent edges touching at a point: not simple.
  Polygon pinched({Point(0, 0), Point(2, 2), Point(4, 0), Point(4, 4),
                   Point(2, 2), Point(0, 4)});
  EXPECT_FALSE(ValidatePolygonSimpleSweep(pinched).ok());
}

TEST(ValidateSimpleSweepTest, AgreesWithQuadraticOnRandomPolygons) {
  Rng rng(314);
  for (int trial = 0; trial < 60; ++trial) {
    const Polygon star =
        RandomStarPolygon(&rng, static_cast<int>(rng.NextInt(3, 64)),
                          Box(0, 0, 100, 100));
    EXPECT_EQ(ValidatePolygonSimpleSweep(star).ok(),
              star.ValidateSimple().ok())
        << "trial " << trial;
    EXPECT_TRUE(ValidatePolygonSimpleSweep(star).ok());
  }
  // Random (usually self-intersecting) closed chains.
  for (int trial = 0; trial < 60; ++trial) {
    Polygon chain;
    const int n = static_cast<int>(rng.NextInt(4, 16));
    for (int i = 0; i < n; ++i) {
      chain.AddVertex(Point(static_cast<double>(rng.NextInt(0, 12)),
                            static_cast<double>(rng.NextInt(0, 12))));
    }
    if (!chain.Validate().ok()) continue;  // Skip degenerate chains.
    EXPECT_EQ(ValidatePolygonSimpleSweep(chain).ok(),
              chain.ValidateSimple().ok())
        << "trial " << trial;
  }
}

TEST(ValidateSimpleSweepTest, LargePolygonIsFast) {
  Rng rng(999);
  const Polygon big = RandomStarPolygon(&rng, 20000, Box(0, 0, 1000, 1000));
  EXPECT_TRUE(ValidatePolygonSimpleSweep(big).ok());
}

}  // namespace
}  // namespace cardir
