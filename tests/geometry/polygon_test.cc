#include "geometry/polygon.h"

#include <gtest/gtest.h>

namespace cardir {
namespace {

Polygon UnitSquareClockwise() {
  return Polygon({Point(0, 1), Point(1, 1), Point(1, 0), Point(0, 0)});
}

TEST(PolygonTest, SignedAreaOrientation) {
  // Clockwise ring has negative signed area.
  EXPECT_DOUBLE_EQ(UnitSquareClockwise().SignedArea(), -1.0);
  Polygon ccw({Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)});
  EXPECT_DOUBLE_EQ(ccw.SignedArea(), 1.0);
  EXPECT_DOUBLE_EQ(ccw.Area(), 1.0);
  EXPECT_EQ(UnitSquareClockwise().GetOrientation(), Orientation::kClockwise);
  EXPECT_EQ(ccw.GetOrientation(), Orientation::kCounterClockwise);
}

TEST(PolygonTest, EnsureClockwiseReverses) {
  Polygon ccw({Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)});
  ccw.EnsureClockwise();
  EXPECT_TRUE(ccw.IsClockwise());
  EXPECT_DOUBLE_EQ(ccw.SignedArea(), -1.0);
  // Already-clockwise rings are untouched.
  Polygon cw = UnitSquareClockwise();
  const Polygon copy = cw;
  cw.EnsureClockwise();
  EXPECT_EQ(cw, copy);
}

TEST(PolygonTest, DegenerateOrientation) {
  Polygon line({Point(0, 0), Point(1, 1), Point(2, 2)});
  EXPECT_EQ(line.GetOrientation(), Orientation::kDegenerate);
}

TEST(PolygonTest, EdgesWrapAround) {
  const Polygon square = UnitSquareClockwise();
  const std::vector<Segment> edges = square.Edges();
  ASSERT_EQ(edges.size(), 4u);
  EXPECT_EQ(edges[3], Segment(Point(0, 0), Point(0, 1)));
}

TEST(PolygonTest, Perimeter) {
  EXPECT_DOUBLE_EQ(UnitSquareClockwise().Perimeter(), 4.0);
  Polygon triangle({Point(0, 0), Point(3, 0), Point(0, 4)});
  EXPECT_DOUBLE_EQ(triangle.Perimeter(), 12.0);
}

TEST(PolygonTest, BoundingBox) {
  Polygon triangle({Point(-1, 0), Point(3, 5), Point(2, -2)});
  EXPECT_EQ(triangle.BoundingBox(), Box(-1, -2, 3, 5));
}

TEST(PolygonTest, LocateInsideOutsideBoundary) {
  const Polygon square = UnitSquareClockwise();
  EXPECT_EQ(square.Locate(Point(0.5, 0.5)), PointLocation::kInside);
  EXPECT_EQ(square.Locate(Point(2, 0.5)), PointLocation::kOutside);
  EXPECT_EQ(square.Locate(Point(0, 0.5)), PointLocation::kBoundary);
  EXPECT_EQ(square.Locate(Point(1, 1)), PointLocation::kBoundary);
  EXPECT_TRUE(square.Contains(Point(0.5, 0.5)));
  EXPECT_TRUE(square.Contains(Point(0, 0)));
  EXPECT_FALSE(square.Contains(Point(1.5, 0.5)));
}

TEST(PolygonTest, LocateConcavePolygon) {
  // A "U" shape: the notch is outside.
  Polygon u({Point(0, 0), Point(0, 3), Point(1, 3), Point(1, 1), Point(2, 1),
             Point(2, 3), Point(3, 3), Point(3, 0)});
  u.EnsureClockwise();
  EXPECT_EQ(u.Locate(Point(1.5, 2)), PointLocation::kOutside);  // In notch.
  EXPECT_EQ(u.Locate(Point(0.5, 2)), PointLocation::kInside);   // Left arm.
  EXPECT_EQ(u.Locate(Point(1.5, 0.5)), PointLocation::kInside); // Base.
}

TEST(PolygonTest, LocateRayThroughVertexIsCorrect) {
  // Horizontal ray from the query point passes exactly through a vertex.
  Polygon diamond({Point(0, 1), Point(1, 2), Point(2, 1), Point(1, 0)});
  diamond.EnsureClockwise();
  EXPECT_EQ(diamond.Locate(Point(0.5, 1)), PointLocation::kInside);
  EXPECT_EQ(diamond.Locate(Point(-1, 1)), PointLocation::kOutside);
  EXPECT_EQ(diamond.Locate(Point(3, 1)), PointLocation::kOutside);
}

TEST(PolygonTest, ValidateRejectsBadRings) {
  EXPECT_FALSE(Polygon({Point(0, 0), Point(1, 1)}).Validate().ok());
  EXPECT_FALSE(
      Polygon({Point(0, 0), Point(0, 0), Point(1, 1)}).Validate().ok());
  EXPECT_FALSE(
      Polygon({Point(0, 0), Point(1, 1), Point(2, 2)}).Validate().ok());
  EXPECT_TRUE(UnitSquareClockwise().Validate().ok());
}

TEST(PolygonTest, ValidateSimpleDetectsSelfIntersection) {
  // Bow-tie: edges (0)-(1) and (2)-(3) cross.
  Polygon bowtie({Point(0, 0), Point(2, 2), Point(2, 0), Point(0, 2)});
  EXPECT_FALSE(bowtie.ValidateSimple().ok());
  EXPECT_TRUE(UnitSquareClockwise().ValidateSimple().ok());
}

TEST(PolygonTest, MakeRectangleIsClockwiseAndValid) {
  const Polygon rect = MakeRectangle(1, 2, 4, 6);
  EXPECT_TRUE(rect.IsClockwise());
  EXPECT_DOUBLE_EQ(rect.Area(), 12.0);
  EXPECT_TRUE(rect.ValidateSimple().ok());
  EXPECT_EQ(rect.BoundingBox(), Box(1, 2, 4, 6));
}

}  // namespace
}  // namespace cardir
