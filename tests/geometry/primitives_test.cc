#include "geometry/primitives.h"

#include <gtest/gtest.h>

namespace cardir {
namespace {

TEST(OnSegmentTest, CollinearWithinBox) {
  const Segment s(Point(0, 0), Point(4, 4));
  EXPECT_TRUE(OnSegment(Point(2, 2), s));
  EXPECT_TRUE(OnSegment(Point(0, 0), s));
  EXPECT_TRUE(OnSegment(Point(4, 4), s));
  EXPECT_FALSE(OnSegment(Point(5, 5), s));   // Collinear but outside.
  EXPECT_FALSE(OnSegment(Point(2, 3), s));   // Off the line.
}

TEST(SegmentsIntersectTest, ProperCrossing) {
  EXPECT_TRUE(SegmentsIntersect(Segment(Point(0, 0), Point(2, 2)),
                                Segment(Point(0, 2), Point(2, 0))));
}

TEST(SegmentsIntersectTest, TouchingEndpointCounts) {
  EXPECT_TRUE(SegmentsIntersect(Segment(Point(0, 0), Point(1, 1)),
                                Segment(Point(1, 1), Point(2, 0))));
}

TEST(SegmentsIntersectTest, CollinearOverlapCounts) {
  EXPECT_TRUE(SegmentsIntersect(Segment(Point(0, 0), Point(3, 0)),
                                Segment(Point(2, 0), Point(5, 0))));
}

TEST(SegmentsIntersectTest, DisjointSegments) {
  EXPECT_FALSE(SegmentsIntersect(Segment(Point(0, 0), Point(1, 0)),
                                 Segment(Point(0, 1), Point(1, 1))));
  EXPECT_FALSE(SegmentsIntersect(Segment(Point(0, 0), Point(1, 0)),
                                 Segment(Point(2, 0), Point(3, 0))));
}

TEST(SegmentsProperlyCrossTest, ExcludesTouchingAndOverlap) {
  EXPECT_TRUE(SegmentsProperlyCross(Segment(Point(0, 0), Point(2, 2)),
                                    Segment(Point(0, 2), Point(2, 0))));
  EXPECT_FALSE(SegmentsProperlyCross(Segment(Point(0, 0), Point(1, 1)),
                                     Segment(Point(1, 1), Point(2, 0))));
  EXPECT_FALSE(SegmentsProperlyCross(Segment(Point(0, 0), Point(3, 0)),
                                     Segment(Point(2, 0), Point(5, 0))));
  // T-junction: endpoint of one in the interior of the other.
  EXPECT_FALSE(SegmentsProperlyCross(Segment(Point(0, 0), Point(2, 0)),
                                     Segment(Point(1, 0), Point(1, 2))));
}

TEST(ProperIntersectionTest, ComputesThePoint) {
  auto p = ProperIntersection(Segment(Point(0, 0), Point(2, 2)),
                              Segment(Point(0, 2), Point(2, 0)));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, Point(1, 1));
  EXPECT_FALSE(ProperIntersection(Segment(Point(0, 0), Point(1, 0)),
                                  Segment(Point(0, 1), Point(1, 1)))
                   .has_value());
}

TEST(PointSegmentDistanceTest, ProjectionAndClamping) {
  const Segment s(Point(0, 0), Point(4, 0));
  EXPECT_DOUBLE_EQ(PointSegmentDistance(Point(2, 3), s), 3.0);   // Interior.
  EXPECT_DOUBLE_EQ(PointSegmentDistance(Point(-3, 4), s), 5.0);  // Clamp to a.
  EXPECT_DOUBLE_EQ(PointSegmentDistance(Point(7, 4), s), 5.0);   // Clamp to b.
  EXPECT_DOUBLE_EQ(PointSegmentDistance(Point(2, 0), s), 0.0);   // On it.
  // Degenerate segment behaves like a point.
  EXPECT_DOUBLE_EQ(
      PointSegmentDistance(Point(3, 4), Segment(Point(0, 0), Point(0, 0))),
      5.0);
}

}  // namespace
}  // namespace cardir
