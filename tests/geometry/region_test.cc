#include "geometry/region.h"

#include <gtest/gtest.h>

namespace cardir {
namespace {

// The Fig. 2 style region with a hole: outer [0,10]^2, hole [4,6]^2,
// decomposed into simple polygons that share boundary edges.
Region RingRegion() {
  Region region;
  region.AddPolygon(MakeRectangle(0, 0, 10, 4));   // South band.
  region.AddPolygon(MakeRectangle(0, 6, 10, 10));  // North band.
  region.AddPolygon(MakeRectangle(0, 4, 4, 6));    // West band.
  region.AddPolygon(MakeRectangle(6, 4, 10, 6));   // East band.
  return region;
}

TEST(RegionTest, SinglePolygonConvenience) {
  const Region region(MakeRectangle(0, 0, 2, 3));
  EXPECT_EQ(region.polygon_count(), 1u);
  EXPECT_EQ(region.TotalEdges(), 4u);
  EXPECT_DOUBLE_EQ(region.Area(), 6.0);
  EXPECT_EQ(region.BoundingBox(), Box(0, 0, 2, 3));
}

TEST(RegionTest, DisconnectedRegion) {
  Region region;
  region.AddPolygon(MakeRectangle(0, 0, 1, 1));
  region.AddPolygon(MakeRectangle(5, 5, 7, 7));
  EXPECT_EQ(region.polygon_count(), 2u);
  EXPECT_DOUBLE_EQ(region.Area(), 1.0 + 4.0);
  EXPECT_EQ(region.BoundingBox(), Box(0, 0, 7, 7));
  EXPECT_TRUE(region.Contains(Point(0.5, 0.5)));
  EXPECT_TRUE(region.Contains(Point(6, 6)));
  EXPECT_FALSE(region.Contains(Point(3, 3)));  // Between the parts.
}

TEST(RegionTest, RegionWithHolePaperFig2) {
  const Region ring = RingRegion();
  EXPECT_DOUBLE_EQ(ring.Area(), 100.0 - 4.0);
  EXPECT_EQ(ring.BoundingBox(), Box(0, 0, 10, 10));
  EXPECT_FALSE(ring.Contains(Point(5, 5)));        // Hole interior.
  EXPECT_TRUE(ring.Contains(Point(5, 2)));          // South band.
  EXPECT_TRUE(ring.Contains(Point(4, 5)));          // Hole boundary (closed).
  EXPECT_TRUE(ring.ValidateStrict().ok());
}

TEST(RegionTest, ContainsOnSharedEdge) {
  const Region ring = RingRegion();
  // The shared edge y = 4 between south band and west band.
  EXPECT_TRUE(ring.Contains(Point(2, 4)));
}

TEST(RegionTest, EnsureClockwiseFixesAllPolygons) {
  Region region;
  region.AddPolygon(Polygon({Point(0, 0), Point(1, 0), Point(1, 1)}));  // CCW.
  region.AddPolygon(Polygon({Point(5, 5), Point(6, 5), Point(6, 6)}));  // CCW.
  region.EnsureClockwise();
  for (const Polygon& p : region.polygons()) EXPECT_TRUE(p.IsClockwise());
}

TEST(RegionTest, ValidateRejectsEmptyRegion) {
  EXPECT_FALSE(Region().Validate().ok());
}

TEST(RegionTest, ValidateReportsOffendingPolygon) {
  Region region;
  region.AddPolygon(MakeRectangle(0, 0, 1, 1));
  region.AddPolygon(Polygon({Point(0, 0), Point(1, 1)}));  // 2 vertices.
  const Status status = region.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("polygon 1"), std::string::npos);
}

TEST(RegionTest, ValidateStrictDetectsOverlap) {
  Region overlapping;
  overlapping.AddPolygon(MakeRectangle(0, 0, 4, 4));
  overlapping.AddPolygon(MakeRectangle(2, 2, 6, 6));
  EXPECT_FALSE(overlapping.ValidateStrict().ok());
}

TEST(RegionTest, ValidateStrictDetectsContainment) {
  Region nested;
  nested.AddPolygon(MakeRectangle(0, 0, 10, 10));
  nested.AddPolygon(MakeRectangle(2, 2, 3, 3));
  EXPECT_FALSE(nested.ValidateStrict().ok());
}

TEST(RegionTest, ValidateStrictAcceptsTouchingPolygons) {
  Region touching;
  touching.AddPolygon(MakeRectangle(0, 0, 1, 1));
  touching.AddPolygon(MakeRectangle(1, 0, 2, 1));  // Shares edge x = 1.
  EXPECT_TRUE(touching.ValidateStrict().ok());
}

TEST(RegionTest, TotalEdgesSumsAllPolygons) {
  EXPECT_EQ(RingRegion().TotalEdges(), 16u);
}

}  // namespace
}  // namespace cardir
