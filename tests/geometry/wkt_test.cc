#include "geometry/wkt.h"

#include <gtest/gtest.h>

#include "util/random.h"
#include "workload/region_gen.h"

namespace cardir {
namespace {

TEST(WktTest, SerialisesSinglePolygonRegion) {
  const Region region(MakeRectangle(0, 0, 2, 1));
  EXPECT_EQ(ToWkt(region),
            "MULTIPOLYGON (((0 1, 2 1, 2 0, 0 0, 0 1)))");
}

TEST(WktTest, ParsesPolygonKeyword) {
  auto region = RegionFromWkt("POLYGON ((0 0, 0 2, 2 2, 2 0, 0 0))");
  ASSERT_TRUE(region.ok()) << region.status();
  EXPECT_EQ(region->polygon_count(), 1u);
  EXPECT_DOUBLE_EQ(region->Area(), 4.0);
  EXPECT_TRUE(region->polygons()[0].IsClockwise());  // Reoriented.
}

TEST(WktTest, ParsesMultiPolygon) {
  auto region = RegionFromWkt(
      "MULTIPOLYGON (((0 0, 0 1, 1 1, 1 0, 0 0)), "
      "((5 5, 5 7, 7 7, 7 5, 5 5)))");
  ASSERT_TRUE(region.ok()) << region.status();
  EXPECT_EQ(region->polygon_count(), 2u);
  EXPECT_DOUBLE_EQ(region->Area(), 1.0 + 4.0);
}

TEST(WktTest, AcceptsUnclosedRingsAndMixedCase) {
  auto region = RegionFromWkt("polygon((0 0, 0 2, 2 2, 2 0))");
  ASSERT_TRUE(region.ok()) << region.status();
  EXPECT_EQ(region->polygons()[0].size(), 4u);
  EXPECT_DOUBLE_EQ(region->Area(), 4.0);
}

TEST(WktTest, RejectsUnsupportedAndMalformedInput) {
  EXPECT_FALSE(RegionFromWkt("").ok());
  EXPECT_FALSE(RegionFromWkt("POINT (1 2)").ok());
  EXPECT_FALSE(RegionFromWkt("LINESTRING (0 0, 1 1)").ok());
  EXPECT_FALSE(RegionFromWkt("POLYGON EMPTY").ok());
  EXPECT_FALSE(RegionFromWkt("POLYGON ((0 0, 0 1))").ok());  // < 3 points.
  EXPECT_FALSE(RegionFromWkt("POLYGON ((0 0, 0 1, 1 1, 1 0,)").ok());
  EXPECT_FALSE(RegionFromWkt("POLYGON ((0 0, 0 1, 1 1)) trailing").ok());
  EXPECT_FALSE(RegionFromWkt("POLYGON ((a b, c d, e f))").ok());
}

TEST(WktTest, HolesAreDecomposedOnImport) {
  auto region = RegionFromWkt(
      "POLYGON ((0 0, 0 10, 10 10, 10 0, 0 0), (4 4, 4 6, 6 6, 6 4, 4 4))");
  ASSERT_TRUE(region.ok()) << region.status();
  EXPECT_DOUBLE_EQ(region->Area(), 96.0);
  EXPECT_FALSE(region->Contains(Point(5, 5)));
  EXPECT_TRUE(region->ValidateStrict().ok());
}

TEST(WktTest, RoundTripPreservesGeometryExactly) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    RegionGenOptions options;
    options.num_polygons = static_cast<int>(rng.NextInt(1, 4));
    options.vertices_per_polygon = static_cast<int>(rng.NextInt(3, 12));
    const Region original = RandomRegion(&rng, options);
    auto parsed = RegionFromWkt(ToWkt(original));
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(*parsed, original) << "trial " << trial;
  }
}

TEST(WktTest, RingRegionRoundTrips) {
  const Region ring = MakeRingRegion(Box(0, 0, 10, 10), Box(4, 4, 6, 6));
  auto parsed = RegionFromWkt(ToWkt(ring));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, ring);
}

}  // namespace
}  // namespace cardir
