#include "geometry/segment.h"

#include <gtest/gtest.h>

namespace cardir {
namespace {

TEST(SegmentTest, BasicsAndDegeneracy) {
  const Segment s(Point(0, 0), Point(4, 2));
  EXPECT_FALSE(s.IsDegenerate());
  EXPECT_EQ(s.Mid(), Point(2, 1));
  EXPECT_EQ(s.Direction(), Point(4, 2));
  EXPECT_EQ(s.At(0.25), Point(1, 0.5));
  EXPECT_TRUE(Segment(Point(1, 1), Point(1, 1)).IsDegenerate());
}

TEST(CrossVerticalLineTest, ProperCrossingReturnsParameter) {
  const Segment s(Point(0, 0), Point(10, 10));
  auto t = CrossVerticalLine(s, 4.0);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 0.4);
  EXPECT_EQ(s.At(*t), Point(4, 4));
}

TEST(CrossVerticalLineTest, TouchingAtEndpointIsNotACrossing) {
  // Definition 3(b): intersecting only at an endpoint does not cross.
  EXPECT_FALSE(CrossVerticalLine(Segment(Point(4, 0), Point(10, 0)), 4.0)
                   .has_value());
  EXPECT_FALSE(CrossVerticalLine(Segment(Point(0, 0), Point(4, 0)), 4.0)
                   .has_value());
}

TEST(CrossVerticalLineTest, SegmentOnLineIsNotACrossing) {
  // Definition 3(c): lying on the line does not cross.
  EXPECT_FALSE(CrossVerticalLine(Segment(Point(4, 0), Point(4, 9)), 4.0)
                   .has_value());
}

TEST(CrossVerticalLineTest, MissingLineReturnsNullopt) {
  EXPECT_FALSE(CrossVerticalLine(Segment(Point(0, 0), Point(3, 3)), 4.0)
                   .has_value());
}

TEST(CrossHorizontalLineTest, SymmetricBehaviour) {
  const Segment s(Point(0, 0), Point(10, 10));
  auto t = CrossHorizontalLine(s, 7.0);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 0.7);
  EXPECT_FALSE(CrossHorizontalLine(Segment(Point(0, 7), Point(5, 7)), 7.0)
                   .has_value());
  EXPECT_FALSE(CrossHorizontalLine(Segment(Point(0, 0), Point(5, 7)), 7.0)
                   .has_value());
}

TEST(DoesNotCrossTest, MatchesDefinitionThree) {
  EXPECT_TRUE(VerticalLineDoesNotCross(Segment(Point(0, 0), Point(3, 0)), 5));
  EXPECT_TRUE(VerticalLineDoesNotCross(Segment(Point(5, 0), Point(5, 3)), 5));
  EXPECT_FALSE(VerticalLineDoesNotCross(Segment(Point(0, 0), Point(9, 0)), 5));
  EXPECT_TRUE(HorizontalLineDoesNotCross(Segment(Point(0, 1), Point(1, 5)), 5));
  EXPECT_FALSE(
      HorizontalLineDoesNotCross(Segment(Point(0, 1), Point(1, 6)), 5));
}

TEST(TrapezoidTest, HorizontalExpressionMatchesDefinitionFour) {
  // E_l(AB) = (x_B − x_A)(y_A + y_B − 2l) / 2.
  const Segment ab(Point(0, 2), Point(4, 4));
  EXPECT_DOUBLE_EQ(TrapezoidHorizontal(ab, 0.0), 0.5 * 4 * 6);  // = 12.
  // Antisymmetry: E_l(AB) = −E_l(BA).
  EXPECT_DOUBLE_EQ(TrapezoidHorizontal(Segment(ab.b, ab.a), 0.0), -12.0);
  // Area interpretation: |E_l| is the trapezoid area between AB and y = l.
  EXPECT_DOUBLE_EQ(std::abs(TrapezoidHorizontal(ab, 1.0)),
                   0.5 * (1.0 + 3.0) * 4.0);
}

TEST(TrapezoidTest, VerticalExpressionMatchesDefinitionFour) {
  const Segment ab(Point(2, 0), Point(4, 4));
  // E'_m(AB) = (y_B − y_A)(x_A + x_B − 2m)/2 = 4·6/2 = 12 at m = 0.
  EXPECT_DOUBLE_EQ(TrapezoidVertical(ab, 0.0), 12.0);
  EXPECT_DOUBLE_EQ(TrapezoidVertical(Segment(ab.b, ab.a), 0.0), -12.0);
  EXPECT_DOUBLE_EQ(std::abs(TrapezoidVertical(ab, 1.0)),
                   0.5 * (1.0 + 3.0) * 4.0);
}

TEST(TrapezoidTest, EdgeOnReferenceLineContributesZero) {
  EXPECT_DOUBLE_EQ(
      TrapezoidVertical(Segment(Point(3, 0), Point(3, 9)), 3.0), 0.0);
  EXPECT_DOUBLE_EQ(
      TrapezoidHorizontal(Segment(Point(0, 5), Point(9, 5)), 5.0), 0.0);
}

TEST(TrapezoidTest, ClosedClockwiseRingSumsToArea) {
  // Clockwise square at (0,0)-(2,2): |sum| = area 4, independent of the
  // reference line. For a clockwise ring Σ E_l = +area while Σ E'_m = −area
  // (the two expressions sweep the loop with opposite orientation) — the
  // algorithms only use absolute values of the per-tile sums.
  const Point nw(0, 2), ne(2, 2), se(2, 0), sw(0, 0);
  for (double l : {-3.0, 0.0, 5.0}) {
    const double sum = TrapezoidHorizontal(Segment(nw, ne), l) +
                       TrapezoidHorizontal(Segment(ne, se), l) +
                       TrapezoidHorizontal(Segment(se, sw), l) +
                       TrapezoidHorizontal(Segment(sw, nw), l);
    EXPECT_DOUBLE_EQ(sum, 4.0) << "l=" << l;
  }
  for (double m : {-1.0, 0.5, 9.0}) {
    const double sum = TrapezoidVertical(Segment(nw, ne), m) +
                       TrapezoidVertical(Segment(ne, se), m) +
                       TrapezoidVertical(Segment(se, sw), m) +
                       TrapezoidVertical(Segment(sw, nw), m);
    EXPECT_DOUBLE_EQ(sum, -4.0) << "m=" << m;
  }
}

}  // namespace
}  // namespace cardir
