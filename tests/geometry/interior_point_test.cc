#include <gtest/gtest.h>

#include "geometry/polygon.h"
#include "geometry/region.h"
#include "util/random.h"
#include "workload/polygon_gen.h"

namespace cardir {
namespace {

TEST(AnyInteriorPointTest, ConvexShapes) {
  const Polygon square = MakeRectangle(0, 0, 4, 4);
  EXPECT_EQ(square.Locate(square.AnyInteriorPoint()), PointLocation::kInside);
  Polygon triangle({Point(0, 0), Point(0, 3), Point(5, 0)});
  triangle.EnsureClockwise();
  EXPECT_EQ(triangle.Locate(triangle.AnyInteriorPoint()),
            PointLocation::kInside);
}

TEST(AnyInteriorPointTest, ConcaveShapes) {
  // "U" shape: the naive vertex-ring centroid would land in the notch.
  Polygon u({Point(0, 0), Point(0, 3), Point(1, 3), Point(1, 1), Point(2, 1),
             Point(2, 3), Point(3, 3), Point(3, 0)});
  u.EnsureClockwise();
  EXPECT_EQ(u.Locate(u.AnyInteriorPoint()), PointLocation::kInside);
  // Thin "Z" sliver.
  Polygon z({Point(0, 0), Point(10, 0), Point(10, 0.5), Point(0.5, 0.5),
             Point(0.5, 9.5), Point(10, 9.5), Point(10, 10), Point(0, 10)});
  z.EnsureClockwise();
  EXPECT_EQ(z.Locate(z.AnyInteriorPoint()), PointLocation::kInside);
}

TEST(AnyInteriorPointTest, RandomStarPolygons) {
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    const Polygon p = RandomStarPolygon(&rng, 24, Box(0, 0, 50, 50));
    EXPECT_EQ(p.Locate(p.AnyInteriorPoint()), PointLocation::kInside)
        << "trial " << trial;
  }
}

TEST(RegionLocateTest, SimpleRegion) {
  const Region region(MakeRectangle(0, 0, 4, 4));
  EXPECT_EQ(region.Locate(Point(2, 2)), PointLocation::kInside);
  EXPECT_EQ(region.Locate(Point(0, 2)), PointLocation::kBoundary);
  EXPECT_EQ(region.Locate(Point(5, 2)), PointLocation::kOutside);
}

TEST(RegionLocateTest, SharedEdgeIsInteriorToTheUnion) {
  Region region;
  region.AddPolygon(MakeRectangle(0, 0, 2, 4));
  region.AddPolygon(MakeRectangle(2, 0, 4, 4));
  // Mid-point of the shared edge x = 2: interior of the union.
  EXPECT_EQ(region.Locate(Point(2, 2)), PointLocation::kInside);
  // Endpoint of the shared edge on the outer boundary.
  EXPECT_EQ(region.Locate(Point(2, 0)), PointLocation::kBoundary);
  // Outer edges stay boundary.
  EXPECT_EQ(region.Locate(Point(0, 2)), PointLocation::kBoundary);
}

TEST(RegionLocateTest, RingHoleBoundary) {
  Region ring;
  ring.AddPolygon(MakeRectangle(0, 0, 10, 3));
  ring.AddPolygon(MakeRectangle(0, 7, 10, 10));
  ring.AddPolygon(MakeRectangle(0, 3, 3, 7));
  ring.AddPolygon(MakeRectangle(7, 3, 10, 7));
  EXPECT_EQ(ring.Locate(Point(5, 5)), PointLocation::kOutside);   // Hole.
  EXPECT_EQ(ring.Locate(Point(3, 5)), PointLocation::kBoundary);  // Hole rim.
  EXPECT_EQ(ring.Locate(Point(1, 5)), PointLocation::kInside);    // Band.
  // Shared band edge (west band meets south band along y = 3, x ∈ [0,3]).
  EXPECT_EQ(ring.Locate(Point(1.5, 3)), PointLocation::kInside);
}

TEST(RegionLocateTest, TouchingAtACornerOnly) {
  Region region;
  region.AddPolygon(MakeRectangle(0, 0, 2, 2));
  region.AddPolygon(MakeRectangle(2, 2, 4, 4));
  // The common corner joins two polygons but stays a boundary point (a
  // pinch point of the union).
  EXPECT_EQ(region.Locate(Point(2, 2)), PointLocation::kBoundary);
}

}  // namespace
}  // namespace cardir
