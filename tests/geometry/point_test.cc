#include "geometry/point.h"

#include <gtest/gtest.h>

namespace cardir {
namespace {

TEST(PointTest, ArithmeticOperators) {
  const Point a(1.0, 2.0);
  const Point b(3.0, -1.0);
  EXPECT_EQ(a + b, Point(4.0, 1.0));
  EXPECT_EQ(a - b, Point(-2.0, 3.0));
  EXPECT_EQ(2.0 * a, Point(2.0, 4.0));
  EXPECT_EQ(a * 2.0, Point(2.0, 4.0));
}

TEST(PointTest, DotAndCross) {
  EXPECT_DOUBLE_EQ(Dot(Point(1, 2), Point(3, 4)), 11.0);
  EXPECT_DOUBLE_EQ(Cross(Point(1, 0), Point(0, 1)), 1.0);
  EXPECT_DOUBLE_EQ(Cross(Point(0, 1), Point(1, 0)), -1.0);
  EXPECT_DOUBLE_EQ(Cross(Point(2, 2), Point(1, 1)), 0.0);
}

TEST(PointTest, Orient2DSigns) {
  // Counter-clockwise triple is positive.
  EXPECT_GT(Orient2D(Point(0, 0), Point(1, 0), Point(0, 1)), 0.0);
  // Clockwise triple is negative.
  EXPECT_LT(Orient2D(Point(0, 0), Point(0, 1), Point(1, 0)), 0.0);
  // Collinear is zero (exactly, for representable inputs).
  EXPECT_EQ(Orient2D(Point(0, 0), Point(1, 1), Point(2, 2)), 0.0);
}

TEST(PointTest, NormAndDistance) {
  EXPECT_DOUBLE_EQ(Norm(Point(3, 4)), 5.0);
  EXPECT_DOUBLE_EQ(Distance(Point(1, 1), Point(4, 5)), 5.0);
  EXPECT_DOUBLE_EQ(Distance(Point(2, 2), Point(2, 2)), 0.0);
}

TEST(PointTest, Midpoint) {
  EXPECT_EQ(Midpoint(Point(0, 0), Point(2, 4)), Point(1, 2));
  EXPECT_EQ(Midpoint(Point(-1, -1), Point(1, 1)), Point(0, 0));
}

TEST(PointTest, EqualityIsExact) {
  EXPECT_EQ(Point(0.1, 0.2), Point(0.1, 0.2));
  EXPECT_NE(Point(0.1, 0.2), Point(0.1, 0.2000000001));
}

}  // namespace
}  // namespace cardir
