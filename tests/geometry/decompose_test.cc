#include "geometry/decompose.h"

#include <gtest/gtest.h>

#include "core/compute_cdr.h"
#include "geometry/wkt.h"
#include "util/random.h"
#include "workload/region_gen.h"

namespace cardir {
namespace {

TEST(DecomposeTest, SingleRectangle) {
  auto region = DecomposeEvenOdd({MakeRectangle(0, 0, 4, 2)});
  ASSERT_TRUE(region.ok()) << region.status();
  EXPECT_DOUBLE_EQ(region->Area(), 8.0);
  EXPECT_TRUE(region->ValidateStrict().ok());
}

TEST(DecomposeTest, RectangleWithRectangularHole) {
  auto region = DecomposePolygonWithHoles(
      MakeRectangle(0, 0, 10, 10), {MakeRectangle(4, 4, 6, 6)});
  ASSERT_TRUE(region.ok()) << region.status();
  EXPECT_DOUBLE_EQ(region->Area(), 100.0 - 4.0);
  EXPECT_FALSE(region->Contains(Point(5, 5)));
  EXPECT_TRUE(region->Contains(Point(1, 5)));
  EXPECT_TRUE(region->Contains(Point(4, 5)));  // Hole rim (closed region).
  EXPECT_TRUE(region->ValidateStrict().ok());
  // Same point set as the hand-made band decomposition: same relations.
  const Region reference(MakeRectangle(3, 3, 7, 7));
  const Region bands = MakeRingRegion(Box(0, 0, 10, 10), Box(4, 4, 6, 6));
  EXPECT_EQ(*ComputeCdr(*region, reference), *ComputeCdr(bands, reference));
}

TEST(DecomposeTest, TriangleWithTriangularHole) {
  Polygon outer({Point(0, 0), Point(12, 0), Point(6, 12)});
  Polygon hole({Point(4, 2), Point(8, 2), Point(6, 6)});
  auto region = DecomposePolygonWithHoles(outer, {hole});
  ASSERT_TRUE(region.ok()) << region.status();
  EXPECT_NEAR(region->Area(), outer.Area() - hole.Area(), 1e-9);
  EXPECT_FALSE(region->Contains(Point(6, 3)));  // In the hole.
  EXPECT_TRUE(region->Contains(Point(2, 1)));
  EXPECT_TRUE(region->Validate().ok());
}

TEST(DecomposeTest, IslandInsideAHole) {
  // Even-odd nesting: outer ⊃ hole ⊃ island. The island is covered again.
  auto region = DecomposeEvenOdd({MakeRectangle(0, 0, 12, 12),
                                  MakeRectangle(2, 2, 10, 10),
                                  MakeRectangle(5, 5, 7, 7)});
  ASSERT_TRUE(region.ok()) << region.status();
  EXPECT_DOUBLE_EQ(region->Area(), 144.0 - 64.0 + 4.0);
  EXPECT_TRUE(region->Contains(Point(1, 6)));    // Frame.
  EXPECT_FALSE(region->Contains(Point(3.5, 6)));  // Hole.
  EXPECT_TRUE(region->Contains(Point(6, 6)));     // Island.
}

TEST(DecomposeTest, DisjointRings) {
  auto region = DecomposeEvenOdd(
      {MakeRectangle(0, 0, 2, 2), MakeRectangle(5, 5, 8, 8)});
  ASSERT_TRUE(region.ok()) << region.status();
  EXPECT_DOUBLE_EQ(region->Area(), 4.0 + 9.0);
}

TEST(DecomposeTest, ConcaveOuterRing) {
  // "U" shape: the decomposition must not fill the notch.
  Polygon u({Point(0, 0), Point(0, 3), Point(1, 3), Point(1, 1), Point(2, 1),
             Point(2, 3), Point(3, 3), Point(3, 0)});
  auto region = DecomposeEvenOdd({u});
  ASSERT_TRUE(region.ok()) << region.status();
  EXPECT_NEAR(region->Area(), u.Area(), 1e-9);
  EXPECT_FALSE(region->Contains(Point(1.5, 2)));
  EXPECT_TRUE(region->Contains(Point(1.5, 0.5)));
}

TEST(DecomposeTest, ErrorsOnInvalidInput) {
  EXPECT_FALSE(DecomposeEvenOdd({}).ok());
  EXPECT_FALSE(
      DecomposeEvenOdd({Polygon({Point(0, 0), Point(1, 1)})}).ok());
}

TEST(DecomposeTest, RandomHoleConfigurationsPreserveArea) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const double hx0 = rng.NextDouble(2, 4);
    const double hy0 = rng.NextDouble(2, 4);
    const double hx1 = hx0 + rng.NextDouble(1, 3);
    const double hy1 = hy0 + rng.NextDouble(1, 3);
    auto region = DecomposePolygonWithHoles(
        MakeRectangle(0, 0, 10, 10), {MakeRectangle(hx0, hy0, hx1, hy1)});
    ASSERT_TRUE(region.ok()) << region.status();
    EXPECT_NEAR(region->Area(), 100.0 - (hx1 - hx0) * (hy1 - hy0), 1e-9)
        << "trial " << trial;
    EXPECT_TRUE(region->ValidateStrict().ok()) << "trial " << trial;
  }
}

// The end-to-end consumer: WKT with holes now imports.
TEST(DecomposeWktTest, WktWithHolesImports) {
  auto region = RegionFromWkt(
      "POLYGON ((0 0, 0 10, 10 10, 10 0, 0 0), (4 4, 4 6, 6 6, 6 4, 4 4))");
  ASSERT_TRUE(region.ok()) << region.status();
  EXPECT_DOUBLE_EQ(region->Area(), 96.0);
  EXPECT_FALSE(region->Contains(Point(5, 5)));
}

}  // namespace
}  // namespace cardir
