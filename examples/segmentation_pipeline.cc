// The paper's §5 long-term goal, end to end: "the integration of CARDIRECT
// with image segmentation software, which would provide a complete
// environment for the management of image configurations."
//
// A synthetic segmented image (a labelled raster standing in for the
// segmentation software's output) is vectorised into REG* regions, loaded
// into a CARDIRECT configuration, persisted as the paper's XML, and
// queried with cardinal-direction, topological and distance atoms.

#include <iostream>

#include "cardirect/query.h"
#include "cardirect/xml.h"
#include "segmentation/extract.h"

int main() {
  using namespace cardir;

  // --- The "segmentation output": a 120×100 labelled image -------------
  Raster raster(120, 100);
  raster.FillDisk(30, 30, 18, 1);               // A lake.
  Polygon forest({Point(55, 55), Point(60, 90), Point(100, 92),
                  Point(110, 60), Point(80, 48)});
  forest.EnsureClockwise();
  raster.FillPolygon(forest, 2);                // A forest, NE of the lake.
  raster.FillRect(70, 8, 110, 28, 3);           // A city, SE-ish.
  raster.FillRect(80, 14, 96, 22, 4);           // A park inside the city.
  raster.FillRect(4, 78, 20, 94, 5);            // A village, far NW.

  auto config = ExtractConfiguration(
      raster, {{1, "lake", "Lake", "blue"},
               {2, "forest", "Forest", "green"},
               {3, "city", "City", "grey"},
               {4, "park", "Park", "green"},
               {5, "village", "Village", "red"}});
  if (!config.ok()) {
    std::cerr << "extraction failed: " << config.status() << "\n";
    return 1;
  }
  std::cout << "vectorised " << config->regions().size()
            << " regions from the raster:\n";
  for (const AnnotatedRegion& region : config->regions()) {
    std::cout << "  " << region.id << ": "
              << region.geometry.polygon_count() << " rectangles, area "
              << region.geometry.Area() << "\n";
  }
  std::cout << "\n";

  // --- Cardinal direction relations on the vectorised regions ----------
  std::cout << "forest is " << config->StoredRelation("forest", "lake")->
      ToString() << " of the lake\n";
  std::cout << "village is "
            << config->StoredRelation("village", "city")->ToString()
            << " of the city\n\n";

  // --- Persist through the paper's XML -----------------------------------
  const Status saved = SaveConfiguration(*config, "segmented.xml");
  if (!saved.ok()) {
    std::cerr << "save failed: " << saved << "\n";
    return 1;
  }
  std::cout << "configuration saved to segmented.xml\n\n";

  // --- Queries mixing all atom families -----------------------------------
  const char* queries[] = {
      // Green things north-east-ish of the lake.
      "(x, y) | color(x) = green, y = lake, x {NE, N:NE, NE:E, B:NE, "
      "B:N:NE, B:NE:E, B:N:NE:E} y",
      // What is embedded in the city block? Raster labels partition the
      // plane, so an enclave shows up as B (bounding box) + meet (shared
      // hole boundary) — a cardinal atom combined with a topological one.
      "(x, y) | y = city, x B y, x meet y",
      // Red settlements a commensurate distance from the city (gap ≈ 1.6 ×
      // the city's diagonal — Frank's qualitative distance atom).
      "(x, y) | color(x) = red, y = city, x commensurate y",
      // Big regions only (numeric atom).
      "(x) | area(x) > 900",
  };
  for (const char* text : queries) {
    auto result = EvaluateQuery(*config, text);
    if (!result.ok()) {
      std::cerr << "query failed: " << result.status() << "\n";
      return 1;
    }
    std::cout << "query: " << text << "\n";
    for (const QueryRow& row : result->rows) {
      std::cout << "  -> (";
      for (size_t i = 0; i < row.region_ids.size(); ++i) {
        if (i > 0) std::cout << ", ";
        std::cout << row.region_ids[i];
      }
      std::cout << ")\n";
    }
  }
  return 0;
}
