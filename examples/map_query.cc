// A synthetic GIS session at scale: generate a country-like map with many
// coloured regions, compute all pairwise cardinal direction relations, and
// run a small query workload — the CARDIRECT scenario of §4 with generated
// data standing in for the segmentation software the paper envisions.
//
// Usage: map_query [num_regions] [seed]

#include <cstdlib>
#include <iostream>

#include "cardirect/query.h"
#include "core/compute_cdr_percent.h"
#include "workload/scenario_gen.h"

int main(int argc, char** argv) {
  using namespace cardir;

  const int num_regions = argc > 1 ? std::atoi(argv[1]) : 16;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  Rng rng(seed);
  ScenarioOptions options;
  options.num_regions = num_regions;
  options.polygons_per_region = 2;
  options.vertices_per_polygon = 12;
  options.colors = {"red", "blue", "green", "black"};
  auto config = GenerateMapConfiguration(&rng, options);
  if (!config.ok()) {
    std::cerr << "generation failed: " << config.status() << "\n";
    return 1;
  }
  std::cout << "generated " << config->regions().size() << " regions, "
            << config->relation_count()
            << " stored relations (n*(n-1) ordered pairs)\n\n";

  // A few representative relations.
  std::cout << "sample relations:\n";
  size_t shown = 0;
  config->ForEachRelation([&](const std::string& primary_id,
                              const std::string& reference_id,
                              const CardinalRelation& relation) {
    if (shown >= 5) return;
    std::cout << "  " << primary_id << " " << relation.ToString() << " "
              << reference_id << "\n";
    ++shown;
  });
  std::cout << "\n";

  // One percentage matrix, computed on demand.
  const std::string& first = config->regions().front().id;
  const std::string& last = config->regions().back().id;
  auto matrix = config->ComputePercentages(last, first);
  std::cout << last << " w.r.t. " << first << ":\n"
            << matrix->ToString() << "\n\n";

  // Query workload.
  const char* queries[] = {
      "(x) | color(x) = red",
      "(x, y) | color(x) = red, color(y) = blue, x {SW, S:SW, SW:W} y",
      "(x, y) | x {N, NW:N, N:NE, NW:N:NE} y, color(y) = green",
  };
  for (const char* query : queries) {
    auto result = EvaluateQuery(*config, query);
    if (!result.ok()) {
      std::cerr << "query failed: " << result.status() << "\n";
      return 1;
    }
    std::cout << "query: " << query << "\n  -> " << result->rows.size()
              << " row(s)\n";
    for (size_t i = 0; i < result->rows.size() && i < 3; ++i) {
      std::cout << "     (";
      for (size_t j = 0; j < result->rows[i].region_ids.size(); ++j) {
        if (j > 0) std::cout << ", ";
        std::cout << result->rows[i].region_ids[j];
      }
      std::cout << ")\n";
    }
  }
  return 0;
}
