// The paper's §4 case study (Figs. 11–12): a map of Ancient Greece at the
// time of the Peloponnesian war, annotated with three alliances:
//
//   * Athenean Alliance (blue):  Attica, the Islands, Corfu, South Italy
//   * Spartan Alliance (red):    Peloponnesos, Beotia, Crete, Sicely
//   * Pro-Spartan (black):       Macedonia
//
// The coordinates are stylised but preserve the relative layout, so the
// relations the paper reports hold: Peloponnesos is B:S:SW:W of Attica, and
// Attica is mostly NE of Peloponnesos with small B/N/E percentages.
// The example finishes with the paper's query: "find all regions of the
// Athenean Alliance which are surrounded by a region in the Spartan
// Alliance" (here: an Athenean enclave ringed by Sicely).

#include <iostream>

#include "cardirect/model.h"
#include "cardirect/query.h"
#include "cardirect/xml.h"

namespace {

using namespace cardir;

void AddRegion(Configuration* config, const std::string& id,
               const std::string& name, const std::string& color,
               Region geometry) {
  AnnotatedRegion region;
  region.id = id;
  region.name = name;
  region.color = color;
  region.geometry = std::move(geometry);
  const Status status = config->AddRegion(std::move(region));
  if (!status.ok()) {
    std::cerr << "AddRegion(" << id << "): " << status << "\n";
    std::exit(1);
  }
}

Configuration BuildMap() {
  // Canvas: 100×100, x grows east, y grows north.
  Configuration config("peloponnesian-war", "ancient-greece.png");

  // --- Spartan Alliance (red) ---
  AddRegion(&config, "peloponnesos", "Peloponnesos", "red",
            Region(Polygon({Point(10, 10), Point(8, 25), Point(20, 35),
                            Point(38, 36), Point(40, 26), Point(36, 12),
                            Point(24, 8)})));
  AddRegion(&config, "beotia", "Beotia", "red",
            Region(MakeRectangle(28, 46, 42, 54)));
  AddRegion(&config, "crete", "Crete", "red",
            Region(MakeRectangle(38, 0, 62, 5)));
  // Sicely: a ring in the far west with an enclave inside.
  Region sicely;
  sicely.AddPolygon(MakeRectangle(60, 60, 85, 66));  // South band.
  sicely.AddPolygon(MakeRectangle(60, 76, 85, 82));  // North band.
  sicely.AddPolygon(MakeRectangle(60, 66, 67, 76));  // West band.
  sicely.AddPolygon(MakeRectangle(78, 66, 85, 76));  // East band.
  AddRegion(&config, "sicely", "Sicely", "red", std::move(sicely));

  // --- Athenean Alliance (blue) ---
  AddRegion(&config, "attica", "Attica", "blue",
            Region(Polygon({Point(36, 36), Point(34, 43), Point(44, 47),
                            Point(50, 41), Point(44, 34)})));
  Region islands;  // The Aegean islands: a disconnected region.
  islands.AddPolygon(MakeRectangle(55, 20, 60, 24));
  islands.AddPolygon(MakeRectangle(63, 28, 67, 31));
  islands.AddPolygon(MakeRectangle(58, 35, 62, 38));
  AddRegion(&config, "islands", "Islands", "blue", std::move(islands));
  AddRegion(&config, "corfu", "Corfu", "blue",
            Region(MakeRectangle(2, 52, 7, 58)));
  AddRegion(&config, "south-italy", "South Italy", "blue",
            Region(MakeRectangle(48, 84, 70, 92)));
  AddRegion(&config, "enclave", "Athenean enclave", "blue",
            Region(MakeRectangle(70, 69, 75, 73)));  // Inside Sicely's ring.

  // --- Pro-Spartan (black) ---
  AddRegion(&config, "macedonia", "Macedonia", "black",
            Region(Polygon({Point(18, 70), Point(16, 82), Point(40, 86),
                            Point(46, 74), Point(32, 66)})));
  return config;
}

}  // namespace

int main() {
  Configuration config = BuildMap();
  Status status = config.ComputeAllRelations();
  if (!status.ok()) {
    std::cerr << "ComputeAllRelations: " << status << "\n";
    return 1;
  }

  // Fig. 12 (left): the qualitative relations.
  std::cout << "=== Cardinal direction relations (Fig. 12) ===\n";
  const auto pelo_attica = config.StoredRelation("peloponnesos", "attica");
  std::cout << "Peloponnesos " << pelo_attica->ToString() << " Attica\n";
  const auto attica_pelo = config.StoredRelation("attica", "peloponnesos");
  std::cout << "Attica " << attica_pelo->ToString() << " Peloponnesos\n";
  const auto mac_attica = config.StoredRelation("macedonia", "attica");
  std::cout << "Macedonia " << mac_attica->ToString() << " Attica\n\n";

  // Fig. 12 (right): the percentage matrix of Attica w.r.t. Peloponnesos.
  auto matrix = config.ComputePercentages("attica", "peloponnesos");
  std::cout << "Attica w.r.t. Peloponnesos (percentages):\n"
            << matrix->ToString() << "\n\n";

  // Persist the configuration exactly as CARDIRECT does (§4's XML/DTD).
  const std::string path = "peloponnese.xml";
  status = SaveConfiguration(config, path);
  if (!status.ok()) {
    std::cerr << "SaveConfiguration: " << status << "\n";
    return 1;
  }
  std::cout << "configuration saved to " << path << "\n\n";

  // The §4 query: Athenean regions surrounded by a Spartan region.
  const char* query =
      "(a, b) | color(a) = red, color(b) = blue, a S:SW:W:NW:N:NE:E:SE b";
  std::cout << "query: " << query << "\n";
  auto result = EvaluateQuery(config, query);
  if (!result.ok()) {
    std::cerr << "EvaluateQuery: " << result.status() << "\n";
    return 1;
  }
  for (const QueryRow& row : result->rows) {
    std::cout << "  -> " << config.FindRegion(row.region_ids[0])->name
              << " surrounds " << config.FindRegion(row.region_ids[1])->name
              << "\n";
  }
  std::cout << result->rows.size() << " result(s)\n";
  return 0;
}
