// The relation-algebra services of §2 (after [20,21,22]) in one tour:
// inverses, compositions, and consistency checking of cardinal direction
// constraint networks — including an explicit model you can verify with
// Compute-CDR.

#include <iostream>

#include "cardirect/constraint_file.h"
#include "core/compute_cdr.h"
#include "reasoning/composition.h"
#include "reasoning/inverse.h"
#include "reasoning/tables.h"

int main() {
  using namespace cardir;

  // --- Inverses (§2: the inverse is in general disjunctive) -------------
  const CardinalRelation south(Tile::kS);
  std::cout << "inv(S)  = " << Inverse(south) << "\n";
  std::cout << "inv(SW) = " << Inverse(CardinalRelation(Tile::kSW)) << "\n";
  const CardinalRelation spiral = *CardinalRelation::Parse("B:S:SW:W");
  std::cout << "inv(B:S:SW:W) = " << Inverse(spiral) << "\n\n";

  // --- Composition -------------------------------------------------------
  std::cout << "N o N  = " << Compose(CardinalRelation(Tile::kN),
                                      CardinalRelation(Tile::kN))
            << "\n";
  std::cout << "S o N  = "
            << Compose(south, CardinalRelation(Tile::kN)) << "\n";
  std::cout << "W o S  = "
            << Compose(CardinalRelation(Tile::kW), CardinalRelation(Tile::kS))
            << "\n\n";

  // --- Consistency: a satisfiable network with an explicit model ---------
  const char* satisfiable =
      "athens S sparta\n"
      "sparta S thebes\n"
      "athens {S, SW:S} thebes\n";
  std::cout << "network:\n" << satisfiable;
  auto network = ParseConstraintFile(satisfiable);
  if (!network.ok()) {
    std::cerr << "parse failed: " << network.status() << "\n";
    return 1;
  }
  auto model = network->Solve();
  if (!model.ok()) {
    std::cerr << "expected consistency, got: " << model.status() << "\n";
    return 1;
  }
  std::cout << "=> CONSISTENT; canonical model:\n"
            << FormatNetworkModel(*network, *model);
  // Verify the model against the ground-truth algorithm.
  const auto athens_sparta =
      ComputeCdr(model->regions[0], model->regions[1]);
  std::cout << "model check: athens " << athens_sparta->ToString()
            << " sparta\n\n";

  // --- Consistency: a refutable network ----------------------------------
  const char* contradictory =
      "a S b\n"
      "b S c\n"
      "a N c\n";
  std::cout << "network:\n" << contradictory;
  auto bad = ParseConstraintFile(contradictory);
  auto refuted = bad->Solve();
  std::cout << "=> " << (refuted.ok() ? "CONSISTENT?!" : "INCONSISTENT")
            << " (" << refuted.status().message() << ")\n\n";

  // --- The derived tables -------------------------------------------------
  std::cout << InverseTableStatistics() << "\n";
  return 0;
}
