// Quickstart: the minimal tour of the cardir public API.
//
//   1. Build two regions from polygons (clockwise rings).
//   2. Compute the qualitative cardinal direction relation (Compute-CDR).
//   3. Compute the relation with percentages (Compute-CDR%).
//   4. Ask reasoning questions (inverse, composition).
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "core/compute_cdr.h"
#include "core/compute_cdr_percent.h"
#include "geometry/region.h"
#include "reasoning/composition.h"
#include "reasoning/inverse.h"

int main() {
  using namespace cardir;

  // A reference region b (a 10×10 square) and a primary region a: an
  // L-shaped polygon reaching from west of b across its top.
  const Region b(MakeRectangle(0, 0, 10, 10));
  Region a(Polygon({Point(-6, 4), Point(-6, 14), Point(12, 14), Point(12, 11),
                    Point(-3, 11), Point(-3, 4)}));
  a.EnsureClockwise();

  // --- Qualitative relation (Algorithm Compute-CDR, paper §3.1) ---
  auto relation = ComputeCdr(a, b);
  if (!relation.ok()) {
    std::cerr << "ComputeCdr failed: " << relation.status() << "\n";
    return 1;
  }
  std::cout << "a " << *relation << " b\n";
  std::cout << "as a direction-relation matrix:\n"
            << relation->ToMatrixString() << "\n\n";

  // --- Quantitative relation (Algorithm Compute-CDR%, paper §3.2) ---
  auto matrix = ComputeCdrPercent(a, b);
  if (!matrix.ok()) {
    std::cerr << "ComputeCdrPercent failed: " << matrix.status() << "\n";
    return 1;
  }
  std::cout << "percentage matrix of a w.r.t. b:\n" << *matrix << "\n\n";

  // --- Reasoning (paper §2, after [20,21,22]) ---
  std::cout << "inverse(" << *relation << ") = " << Inverse(*relation)
            << "\n";
  const CardinalRelation north(Tile::kN);
  std::cout << "N o N = " << Compose(north, north) << "\n";
  return 0;
}
