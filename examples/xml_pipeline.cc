// The persistence round trip of §4: build a configuration, store it as the
// paper's XML (DTD-shaped), reload it, and verify that the stored relations
// match a fresh recomputation — what a CARDIRECT user relies on when
// sharing annotated maps between sessions.
//
// Usage: xml_pipeline [path]

#include <iostream>

#include "cardirect/xml.h"
#include "core/compute_cdr.h"
#include "util/random.h"
#include "workload/scenario_gen.h"

int main(int argc, char** argv) {
  using namespace cardir;

  const std::string path = argc > 1 ? argv[1] : "xml_pipeline_demo.xml";

  Rng rng(7);
  ScenarioOptions options;
  options.num_regions = 9;
  options.polygons_per_region = 3;
  auto config = GenerateMapConfiguration(&rng, options);
  if (!config.ok()) {
    std::cerr << "generation failed: " << config.status() << "\n";
    return 1;
  }

  Status status = SaveConfiguration(*config, path);
  if (!status.ok()) {
    std::cerr << "save failed: " << status << "\n";
    return 1;
  }
  std::cout << "saved " << config->regions().size() << " regions to " << path
            << "\n";

  auto loaded = LoadConfiguration(path);
  if (!loaded.ok()) {
    std::cerr << "load failed: " << loaded.status() << "\n";
    return 1;
  }
  std::cout << "reloaded " << loaded->regions().size() << " regions and "
            << loaded->relations().size() << " relations\n";

  // Verify every stored relation against a fresh Compute-CDR run.
  size_t verified = 0;
  for (const RelationRecord& record : loaded->relations()) {
    auto fresh = ComputeCdr(loaded->FindRegion(record.primary_id)->geometry,
                            loaded->FindRegion(record.reference_id)->geometry);
    if (!fresh.ok()) {
      std::cerr << "recompute failed: " << fresh.status() << "\n";
      return 1;
    }
    if (!(*fresh == record.relation)) {
      std::cerr << "MISMATCH for " << record.primary_id << " vs "
                << record.reference_id << ": stored "
                << record.relation.ToString() << ", recomputed "
                << fresh->ToString() << "\n";
      return 1;
    }
    ++verified;
  }
  std::cout << "verified " << verified
            << " stored relations against recomputation: all match\n";
  return 0;
}
