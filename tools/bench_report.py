#!/usr/bin/env python3
"""Render a BENCH_engine.json ledger (optionally joined against a baseline)
as a human-readable report with wall-time AND memory-telemetry columns.

perf_smoke.py is the pass/fail gate; this is the companion report the
nightly jobs attach as an artifact — one table per workload with ms,
throughput, the mem_*_peak_bytes columns the obs memory telemetry records,
and (when --baseline is given) the fresh/baseline ratios for both time and
peak memory.

Usage:
  tools/bench_report.py --ledger BENCH_engine.json \
      [--baseline committed.json] [--format text|markdown]

Exit status: 0 on success, 2 on bad input. This tool never gates — pair it
with perf_smoke.py when a red/green signal is needed.
"""

import argparse
import json
import sys

MEM_COLUMNS = [
    ("mem_pair_matrix_peak_bytes", "matrix"),
    ("mem_edge_soa_peak_bytes", "edge_soa"),
    ("mem_worker_scratch_peak_bytes", "scratch"),
    ("mem_crossing_queue_peak_bytes", "queue"),
    ("mem_relation_store_peak_bytes", "store"),
    ("mem_total_peak_bytes", "total"),
    ("mem_process_rss_bytes", "rss"),
]


def load_runs(path):
    try:
        with open(path) as f:
            ledger = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_report: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    runs = ledger.get("runs")
    if not isinstance(runs, list):
        print(f"bench_report: {path} has no 'runs' array", file=sys.stderr)
        sys.exit(2)
    return runs


def row_key(run):
    return (run.get("workload"), run.get("regions"), run.get("mode"),
            run.get("threads"))


def human_bytes(value):
    if not value:
        return "-"
    value = float(value)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:.0f}{unit}" if unit == "B" else f"{value:.1f}{unit}"
        value /= 1024.0
    return f"{value:.1f}GiB"


def ratio_cell(fresh, base):
    if not base or not fresh:
        return "-"
    return f"{fresh / base:.2f}x"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ledger", required=True,
                        help="BENCH_engine.json from this run")
    parser.add_argument("--baseline", default=None,
                        help="committed ledger to join ratios against")
    parser.add_argument("--format", choices=("text", "markdown"),
                        default="text")
    args = parser.parse_args()

    runs = load_runs(args.ledger)
    baseline = {}
    if args.baseline:
        baseline = {row_key(run): run for run in load_runs(args.baseline)}

    headers = ["workload", "n", "mode", "thr", "ms", "Mpairs/s"]
    headers += [label for _, label in MEM_COLUMNS]
    if baseline:
        headers += ["ms ratio", "mem ratio"]

    rows = []
    for run in runs:
        ms = run.get("ms", 0.0)
        pairs = run.get("pairs", 0)
        mpairs = pairs / ms / 1000.0 if ms else 0.0
        row = [
            str(run.get("workload")),
            str(run.get("regions")),
            str(run.get("mode")),
            str(run.get("threads")),
            f"{ms:.1f}",
            f"{mpairs:.2f}",
        ]
        row += [human_bytes(run.get(column, 0)) for column, _ in MEM_COLUMNS]
        if baseline:
            base = baseline.get(row_key(run))
            if base is None:
                row += ["-", "-"]
            else:
                row += [
                    ratio_cell(ms, base.get("ms")),
                    ratio_cell(run.get("mem_total_peak_bytes"),
                               base.get("mem_total_peak_bytes")),
                ]
        rows.append(row)

    widths = [max(len(headers[i]), max((len(r[i]) for r in rows), default=0))
              for i in range(len(headers))]
    if args.format == "markdown":
        print("| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) +
              " |")
        print("|" + "|".join("-" * (w + 2) for w in widths) + "|")
        for row in rows:
            print("| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) +
                  " |")
    else:
        print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        for row in rows:
            print("  ".join(c.ljust(w) for c, w in zip(row, widths)))

    telemetry_rows = sum(1 for run in runs if run.get("mem_total_peak_bytes"))
    if telemetry_rows == 0:
        print("\nbench_report: no memory-telemetry columns found "
              "(ledger predates obs memstats or CARDIR_OBS=OFF)",
              file=sys.stderr)

    # Sweep vs dense side by side: for every (workload, n) that ran both the
    # sweep join and the single-thread dense engine, how much wall time and
    # peak memory the sweep saves. This is the headline the nightly report
    # watches; the perf_smoke ratios only compare like against like.
    by_key = {row_key(run): run for run in runs}
    comparisons = []
    for run in runs:
        if run.get("mode") != "engine_sweep":
            continue
        dense = by_key.get((run.get("workload"), run.get("regions"),
                            "engine_prefilter", 1))
        comparisons.append((run, dense))
    if comparisons:
        print("\nsweep join vs dense engine (engine_prefilter, 1 thread):")
        print(f"{'workload':10s} {'n':>7s} {'dense ms':>9s} {'sweep ms':>9s} "
              f"{'speedup':>8s} {'dense peak':>11s} {'sweep peak':>11s}")
        for sweep, dense in comparisons:
            n = sweep.get("regions")
            if dense is None:
                # Sizes above --engine-cap have no dense row at all — that
                # is the sweep's point; say so rather than dropping the row.
                print(f"{sweep.get('workload'):10s} {n:7d} {'-':>9s} "
                      f"{sweep.get('ms', 0.0):9.1f} {'-':>8s} {'-':>11s} "
                      f"{human_bytes(sweep.get('mem_total_peak_bytes')):>11s}")
                continue
            speedup = (dense.get("ms", 0.0) / sweep.get("ms", 1.0)
                       if sweep.get("ms") else 0.0)
            print(f"{sweep.get('workload'):10s} {n:7d} "
                  f"{dense.get('ms', 0.0):9.1f} {sweep.get('ms', 0.0):9.1f} "
                  f"{speedup:7.1f}x "
                  f"{human_bytes(dense.get('mem_total_peak_bytes')):>11s} "
                  f"{human_bytes(sweep.get('mem_total_peak_bytes')):>11s}")

    # Delta-maintenance latency: median/p99 per mutation kind, and the
    # headline ratio — one median mutation vs recomputing the same
    # configuration with the sweep join. The `ms` of an engine_delta* row
    # is a single-mutation median, so the generic table above understates
    # what these rows mean; this section spells it out.
    delta_rows = [run for run in runs
                  if str(run.get("mode", "")).startswith("engine_delta")]
    if delta_rows:
        print("\ndelta maintenance latency (per single mutation):")
        print(f"{'workload':10s} {'n':>7s} {'kind':>8s} {'median ms':>10s} "
              f"{'p99 ms':>9s} {'vs sweep':>9s} {'pairs/mutation':>15s}")
        for run in delta_rows:
            mode = str(run.get("mode"))
            kind = mode[len("engine_delta"):].lstrip("_") or "move"
            sweep = by_key.get((run.get("workload"), run.get("regions"),
                                "engine_sweep", 1))
            ms = run.get("ms", 0.0)
            sweep_ratio = (f"{sweep.get('ms', 0.0) / ms:8.0f}x"
                           if sweep and ms else f"{'-':>9s}")
            touched = (run.get("delta_pairs_reresolved", 0) or 0) + \
                      (run.get("delta_pairs_implicit", 0) or 0)
            # Every row times the same fixed mutation count, so the window
            # totals divide evenly; guard anyway for hand-edited ledgers.
            per_mutation = touched / 200.0
            p99 = run.get("p99_ms")
            p99_cell = f"{p99:9.4f}" if p99 else f"{'-':>9s}"
            print(f"{run.get('workload'):10s} {run.get('regions'):7d} "
                  f"{kind:>8s} {ms:10.4f} {p99_cell} {sweep_ratio} "
                  f"{per_mutation:15.1f}")


if __name__ == "__main__":
    main()
