// cardir-analyzer — project-specific static analysis for the cardir tree.
//
// The analyzer encodes rules that generic tooling (clang-tidy, cppcheck)
// cannot know: this project's Result<T>/Status discipline, its per-worker
// scratch-ownership model, the exact-float-comparison policy of the
// geometry kernels, the compiled-out observability macros, and the
// "no mutex held across Compute-CDR" engine rule. See checks.cc for the
// check catalog and tools/analyzer/README.md for the workflow.
//
// Architecture: a self-contained C++ tokenizer (no preprocessor, no AST)
// feeds per-file token streams to the checks. Token-level analysis is the
// deliberate baseline — it needs zero dependencies, runs everywhere the
// project builds, and two of the five checks (obs-macro-side-effect and
// the suppression comments) are *only* expressible at token level because
// the constructs they police vanish from the AST under CARDIR_OBS=OFF /
// macro expansion. An optional clang libTooling frontend (clang_frontend.cc,
// built only where clang dev headers exist) re-implements the type-driven
// checks with AST matchers for extra precision.

#ifndef CARDIR_TOOLS_ANALYZER_ANALYZER_CORE_H_
#define CARDIR_TOOLS_ANALYZER_ANALYZER_CORE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace cardir_analyzer {

enum class TokKind {
  kIdent,
  kNumber,
  kString,
  kChar,
  kPunct,
  kEof,
};

struct Tok {
  TokKind kind = TokKind::kEof;
  std::string text;
  int line = 0;
};

// Lexed view of one source file, plus the suppression comments found in it.
struct FileTokens {
  std::string path;          // As given on the command line.
  std::vector<Tok> tokens;   // Terminated by a kEof token.
  // Inline suppressions: line number -> check ids allowed on that line.
  // A comment `// cardir-analyzer: allow(check-a,check-b): reason` applies
  // to the line it sits on when code precedes it, otherwise to the next
  // line. `// cardir-analyzer: allow-file(check): reason` (anywhere in the
  // file) suppresses the check for the whole file and requires a reason.
  std::map<int, std::set<std::string>> line_allows;
  std::set<std::string> file_allows;
};

struct Diagnostic {
  std::string check;    // Check id, e.g. "float-eq".
  std::string path;
  int line = 0;
  std::string message;
};

// Tokenizes `content`. Handles //, /* */, string/char literals (including
// raw strings), digit separators, and maximal-munch punctuation.
// Preprocessor directives (with line continuations) are skipped entirely —
// macro *definitions* are not analyzed, macro call sites are (they look
// like ordinary calls to the tokenizer, which is exactly what the
// obs-macro check needs).
FileTokens Lex(const std::string& path, const std::string& content);

// All five checks over the given files. Collection passes (which functions
// return Result/Status, which functions return double) run across the whole
// file set first, so cross-file call sites resolve. Inline and file-level
// suppressions are already applied; baseline filtering is the caller's job.
std::vector<Diagnostic> RunChecks(const std::vector<FileTokens>& files,
                                  const std::set<std::string>& enabled_checks,
                                  bool no_path_filter);

// The check catalog: id -> one-line description.
const std::vector<std::pair<std::string, std::string>>& CheckCatalog();

// Baseline file format: one suppressed finding per line,
//   <check-id>\t<path>\t<line>\t<optional note>
// '#' lines and blank lines are ignored. Returns false on I/O error.
bool LoadBaseline(const std::string& path,
                  std::set<std::string>* keys, std::string* error);
std::string BaselineKey(const Diagnostic& diag);
std::string FormatBaselineLine(const Diagnostic& diag);

}  // namespace cardir_analyzer

#endif  // CARDIR_TOOLS_ANALYZER_ANALYZER_CORE_H_
