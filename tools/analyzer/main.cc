// cardir-analyzer CLI.
//
//   cardir-analyzer --src src [--baseline tools/analyzer/baseline.txt]
//   cardir-analyzer file.cc other.h
//   cardir-analyzer --src src --checks float-eq,unchecked-result
//   cardir-analyzer --src src --write-baseline tools/analyzer/baseline.txt
//
// Output: one `path:line: error: [check-id] message` per finding, findings
// summary on stderr. Exit 0 = clean (or fully baselined), 1 = findings,
// 2 = usage / I/O error.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <dirent.h>
#include <sys/stat.h>
#endif

#include "analyzer_core.h"

namespace cardir_analyzer {
namespace {

bool HasSuffix(const std::string& s, const char* suffix) {
  const size_t len = std::strlen(suffix);
  return s.size() >= len && s.compare(s.size() - len, len, suffix) == 0;
}

bool IsSourceFile(const std::string& path) {
  return HasSuffix(path, ".cc") || HasSuffix(path, ".cpp") ||
         HasSuffix(path, ".cxx") || HasSuffix(path, ".h") ||
         HasSuffix(path, ".hpp");
}

// Recursively collects .cc/.h files under `dir`, sorted for determinism.
bool CollectSources(const std::string& dir, std::vector<std::string>* out,
                    std::string* error) {
#if defined(__unix__) || defined(__APPLE__)
  DIR* handle = opendir(dir.c_str());
  if (handle == nullptr) {
    *error = "cannot open directory '" + dir + "'";
    return false;
  }
  std::vector<std::string> subdirs;
  for (dirent* entry = readdir(handle); entry != nullptr;
       entry = readdir(handle)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    const std::string path = dir + "/" + name;
    struct stat st;
    if (stat(path.c_str(), &st) != 0) continue;
    if (S_ISDIR(st.st_mode)) {
      subdirs.push_back(path);
    } else if (S_ISREG(st.st_mode) && IsSourceFile(path)) {
      out->push_back(path);
    }
  }
  closedir(handle);
  std::sort(subdirs.begin(), subdirs.end());
  for (const std::string& sub : subdirs) {
    if (!CollectSources(sub, out, error)) return false;
  }
  return true;
#else
  (void)dir;
  (void)out;
  *error = "directory walking is not supported on this platform; pass files";
  return false;
#endif
}

bool ReadFile(const std::string& path, std::string* content,
              std::string* error) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    *error = "cannot read '" + path + "'";
    return false;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  *content = buffer.str();
  return true;
}

int Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options] [files...]\n"
      << "  --src DIR             analyze all .cc/.h under DIR (recursive)\n"
      << "  --checks a,b,...      run only the named checks\n"
      << "  --baseline FILE       suppress findings listed in FILE\n"
      << "  --write-baseline FILE write current findings as the baseline\n"
      << "  --no-path-filter      run path-scoped checks on every file\n"
      << "  --list-checks         print the check catalog and exit\n"
      << "exit status: 0 clean, 1 findings, 2 usage/I-O error\n";
  return 2;
}

int Run(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string src_dir;
  std::string baseline_path;
  std::string write_baseline_path;
  std::set<std::string> enabled;
  bool no_path_filter = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "error: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--list-checks") {
      for (const auto& entry : CheckCatalog()) {
        std::cout << entry.first << "\n    " << entry.second << "\n";
      }
      return 0;
    } else if (arg == "--src") {
      const char* value = next_value("--src");
      if (value == nullptr) return 2;
      src_dir = value;
    } else if (arg == "--baseline") {
      const char* value = next_value("--baseline");
      if (value == nullptr) return 2;
      baseline_path = value;
    } else if (arg == "--write-baseline") {
      const char* value = next_value("--write-baseline");
      if (value == nullptr) return 2;
      write_baseline_path = value;
    } else if (arg == "--checks") {
      const char* value = next_value("--checks");
      if (value == nullptr) return 2;
      std::istringstream stream(value);
      std::string id;
      while (std::getline(stream, id, ',')) {
        if (!id.empty()) enabled.insert(id);
      }
    } else if (arg == "--no-path-filter") {
      no_path_filter = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "error: unknown flag '" << arg << "'\n";
      return Usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }

  if (enabled.empty()) {
    for (const auto& entry : CheckCatalog()) enabled.insert(entry.first);
  } else {
    for (const std::string& id : enabled) {
      bool known = false;
      for (const auto& entry : CheckCatalog()) {
        if (entry.first == id) known = true;
      }
      if (!known) {
        std::cerr << "error: unknown check '" << id
                  << "' (see --list-checks)\n";
        return 2;
      }
    }
  }

  std::string error;
  if (!src_dir.empty() && !CollectSources(src_dir, &paths, &error)) {
    std::cerr << "error: " << error << "\n";
    return 2;
  }
  if (paths.empty()) {
    std::cerr << "error: nothing to analyze (pass --src DIR or files)\n";
    return Usage(argv[0]);
  }
  std::sort(paths.begin(), paths.end());

  std::vector<FileTokens> files;
  files.reserve(paths.size());
  for (const std::string& path : paths) {
    std::string content;
    if (!ReadFile(path, &content, &error)) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
    files.push_back(Lex(path, content));
  }

  std::vector<Diagnostic> diags = RunChecks(files, enabled, no_path_filter);

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path);
    if (!out) {
      std::cerr << "error: cannot write '" << write_baseline_path << "'\n";
      return 2;
    }
    out << "# cardir-analyzer baseline — regenerate with --write-baseline.\n"
        << "# <check-id>\\t<path>\\t<line>\\t<note>\n";
    for (const Diagnostic& diag : diags) {
      out << FormatBaselineLine(diag) << "\n";
    }
    std::cerr << "wrote " << diags.size() << " finding(s) to "
              << write_baseline_path << "\n";
    return 0;
  }

  std::set<std::string> baseline;
  if (!baseline_path.empty() &&
      !LoadBaseline(baseline_path, &baseline, &error)) {
    std::cerr << "error: " << error << "\n";
    return 2;
  }

  size_t reported = 0;
  size_t baselined = 0;
  for (const Diagnostic& diag : diags) {
    if (baseline.count(BaselineKey(diag)) != 0) {
      ++baselined;
      continue;
    }
    std::cout << diag.path << ":" << diag.line << ": error: [" << diag.check
              << "] " << diag.message << "\n";
    ++reported;
  }
  std::cerr << "cardir-analyzer: " << files.size() << " file(s), " << reported
            << " finding(s)";
  if (baselined != 0) std::cerr << ", " << baselined << " baselined";
  std::cerr << "\n";
  return reported == 0 ? 0 : 1;
}

}  // namespace
}  // namespace cardir_analyzer

int main(int argc, char** argv) { return cardir_analyzer::Run(argc, argv); }
