// The five project-specific checks. Each check is a pure function over the
// lexed token streams; RunChecks applies path filters and suppressions.
//
// Check catalog (ids are stable — baselines and fixtures key on them):
//
//  unchecked-result      A Result<T>/Status returned by a project function
//                        is discarded as a bare statement, or `.value()` is
//                        called with no visible `.ok()` guard (and no
//                        CARDIR_ASSIGN_OR_RETURN) earlier in the function.
//                        Cast to (void) to discard deliberately.
//  scratch-escape        A CdrScratch/WorkerScratch/EdgeSoA/SweepScratch is
//                        captured by reference in a lambda handed to an API
//                        that may
//                        outlive the enclosing scope (Submit/Post/async/
//                        std::thread/push_back of callables...). The
//                        sanctioned pattern — per-participant scratch in a
//                        synchronous ParallelFor — is not flagged.
//  float-eq              `==`/`!=` where an operand is a floating literal, a
//                        declared double/float variable, or a call to a
//                        double-returning project function, inside src/core
//                        + src/geometry. Proven-exact sites carry an
//                        `allow(float-eq)` comment with a justification.
//  obs-macro-side-effect An argument of CARDIR_METRIC_*/CARDIR_TRACE_SPAN/
//                        CARDIR_AUDIT/CARDIR_RECORD_EVENT/CARDIR_MEMSTAT_*/
//                        CARDIR_PROFILE_FRAME contains ++/--/assignment.
//                        Those macros compile to (void)sizeof under
//                        CARDIR_OBS=OFF / CARDIR_AUDIT=OFF, so the side
//                        effect silently vanishes in those builds.
//  lock-across-compute   A scoped lock (lock_guard/unique_lock/scoped_lock/
//                        shared_lock) is alive across a ComputeCdr*/
//                        ComputeAllPairs call in src/engine — Compute-CDR
//                        runs for hundreds of microseconds on crossing
//                        pairs and must never serialize behind a mutex.

#include <algorithm>
#include <cstddef>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "analyzer_core.h"

namespace cardir_analyzer {
namespace {

using Tokens = std::vector<Tok>;

bool IsPunct(const Tok& tok, const char* text) {
  return tok.kind == TokKind::kPunct && tok.text == text;
}
bool IsIdent(const Tok& tok, const char* text) {
  return tok.kind == TokKind::kIdent && tok.text == text;
}

// Index of the punct matching the opener at `open` ('(' / '[' / '{'),
// or tokens.size() when unbalanced.
size_t MatchingClose(const Tokens& tokens, size_t open) {
  const std::string& opener = tokens[open].text;
  const char* closer = opener == "(" ? ")" : opener == "[" ? "]" : "}";
  int depth = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kPunct) continue;
    if (tokens[i].text == opener) ++depth;
    if (tokens[i].text == closer && --depth == 0) return i;
  }
  return tokens.size();
}

bool PathContains(const std::string& path, const char* piece) {
  return path.find(piece) != std::string::npos;
}

// A floating-point literal: contains '.' or a decimal exponent (hex
// literals only count with a 'p' exponent).
bool IsFloatLiteral(const Tok& tok) {
  if (tok.kind != TokKind::kNumber) return false;
  const bool hex = tok.text.size() > 1 && tok.text[0] == '0' &&
                   (tok.text[1] == 'x' || tok.text[1] == 'X');
  if (hex) return tok.text.find_first_of("pP") != std::string::npos;
  return tok.text.find_first_of(".eE") != std::string::npos;
}

// ---------------------------------------------------------------------------
// Cross-file collection passes.
// ---------------------------------------------------------------------------

// Function names declared/defined as returning `Status` or `Result<...>`:
// token `Status`/`Result` (with balanced <...> skipped for Result) followed
// by an identifier followed by '('. Also picks up the Status factory
// methods (InvalidArgument, ...), which is correct: discarding those is
// discarding an error.
void CollectStatusFunctions(const Tokens& tokens,
                            std::set<std::string>* names) {
  for (size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (!IsIdent(tokens[i], "Status") && !IsIdent(tokens[i], "Result")) {
      continue;
    }
    size_t j = i + 1;
    if (tokens[i].text == "Result") {
      if (!IsPunct(tokens[j], "<")) continue;
      int depth = 0;
      while (j < tokens.size()) {
        if (IsPunct(tokens[j], "<")) ++depth;
        if (IsPunct(tokens[j], ">") && --depth == 0) break;
        // Shift tokens would break the template scan; Result payloads in
        // this codebase never contain them.
        ++j;
      }
      ++j;
    }
    if (j + 1 >= tokens.size()) continue;
    // Optional qualified name: Type Class::Method( — record the last
    // identifier of the chain.
    if (tokens[j].kind != TokKind::kIdent) continue;
    size_t name_idx = j;
    while (name_idx + 2 < tokens.size() &&
           IsPunct(tokens[name_idx + 1], "::") &&
           tokens[name_idx + 2].kind == TokKind::kIdent) {
      name_idx += 2;
    }
    if (name_idx + 1 < tokens.size() && IsPunct(tokens[name_idx + 1], "(")) {
      names->insert(tokens[name_idx].text);
    }
  }
}

// Function names declared with some *other* return type: `Type Name(` or
// `Type Class::Name(` where Type is an identifier other than Status/Result.
// A name that appears in both sets is ambiguous at token level (two
// overloads/classes share it) and is dropped from unchecked-result to keep
// the check zero-false-positive on bare calls.
void CollectOtherReturnFunctions(const Tokens& tokens,
                                 std::set<std::string>* names) {
  static const std::set<std::string> kNotATypePrefix = {
      "Status", "Result", "return", "co_return", "else",  "case",
      "new",    "delete", "operator", "sizeof",  "typedef",
  };
  for (size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kIdent ||
        kNotATypePrefix.count(tokens[i].text) != 0 ||
        tokens[i + 1].kind != TokKind::kIdent) {
      continue;
    }
    size_t name_idx = i + 1;
    while (name_idx + 2 < tokens.size() &&
           IsPunct(tokens[name_idx + 1], "::") &&
           tokens[name_idx + 2].kind == TokKind::kIdent) {
      name_idx += 2;
    }
    if (name_idx + 1 < tokens.size() && IsPunct(tokens[name_idx + 1], "(")) {
      names->insert(tokens[name_idx].text);
    }
  }
}

// Function names declared/defined as returning double: `double Name(`.
void CollectDoubleFunctions(const Tokens& tokens,
                            std::set<std::string>* names) {
  for (size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (!IsIdent(tokens[i], "double") && !IsIdent(tokens[i], "float")) {
      continue;
    }
    size_t j = i + 1;
    size_t name_idx = 0;
    while (j + 1 < tokens.size()) {
      if (tokens[j].kind == TokKind::kIdent &&
          IsPunct(tokens[j + 1], "(")) {
        name_idx = j;
        break;
      }
      // Allow `double Class::Name(` and `double* Name(` style chains.
      if (tokens[j].kind == TokKind::kIdent || IsPunct(tokens[j], "::") ||
          IsPunct(tokens[j], "*") || IsPunct(tokens[j], "&")) {
        ++j;
        continue;
      }
      break;
    }
    if (name_idx != 0) names->insert(tokens[name_idx].text);
  }
}

// Per-file: identifiers declared with type double/float (locals, params,
// members): `double a, b;`, `const double& x`, `double t = expr,`. Skips
// the identifier when it opens a parameter list (that is a function name).
void CollectDoubleVars(const Tokens& tokens, std::set<std::string>* names) {
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (!IsIdent(tokens[i], "double") && !IsIdent(tokens[i], "float")) {
      continue;
    }
    size_t j = i + 1;
    while (j < tokens.size()) {
      // Skip cv-ref decorations.
      while (j < tokens.size() &&
             (IsPunct(tokens[j], "&") || IsPunct(tokens[j], "*") ||
              IsIdent(tokens[j], "const"))) {
        ++j;
      }
      if (j >= tokens.size() || tokens[j].kind != TokKind::kIdent) break;
      const size_t name_idx = j;
      ++j;
      if (j < tokens.size() && IsPunct(tokens[j], "(")) break;  // Function.
      names->insert(tokens[name_idx].text);
      // Find the next ',' at this nesting level (another declarator) or
      // stop at the end of the declaration.
      int paren = 0;
      bool more = false;
      while (j < tokens.size()) {
        const Tok& tok = tokens[j];
        if (IsPunct(tok, "(") || IsPunct(tok, "[") || IsPunct(tok, "{")) {
          ++paren;
        } else if (IsPunct(tok, ")") || IsPunct(tok, "]") ||
                   IsPunct(tok, "}")) {
          if (paren == 0) break;  // End of parameter list.
          --paren;
        } else if (paren == 0 && IsPunct(tok, ",")) {
          more = true;
          ++j;
          break;
        } else if (paren == 0 && IsPunct(tok, ";")) {
          break;
        }
        ++j;
      }
      if (!more) break;
    }
  }
}

// ---------------------------------------------------------------------------
// Check 1: unchecked-result
// ---------------------------------------------------------------------------

// Note on the CARDIR_RETURN_IF_ERROR / CARDIR_CHECK_OK wrappers: a call
// nested inside their parens is not statement-initial, so the discard
// pattern below never fires on correctly-wrapped calls — no allowlist
// needed.
void CheckUncheckedResult(const FileTokens& file,
                          const std::set<std::string>& status_fns,
                          std::vector<Diagnostic>* diags) {
  const Tokens& tokens = file.tokens;
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    // --- Discarded call as a bare statement. ---
    // Statement start: previous token is ';', '{' or '}'; file start counts
    // too. ':' is deliberately NOT a statement start — the else-arm of a
    // ternary (`cond ? a : F(x);`) would otherwise read as a discard.
    const bool stmt_start =
        i == 0 || IsPunct(tokens[i - 1], ";") || IsPunct(tokens[i - 1], "{") ||
        IsPunct(tokens[i - 1], "}");
    if (stmt_start && tokens[i].kind == TokKind::kIdent) {
      // Walk the qualified/member chain: a (::|.|->)-separated identifier
      // sequence; the final identifier is the callee.
      size_t j = i;
      while (j + 2 < tokens.size() &&
             (IsPunct(tokens[j + 1], "::") || IsPunct(tokens[j + 1], ".") ||
              IsPunct(tokens[j + 1], "->")) &&
             tokens[j + 2].kind == TokKind::kIdent) {
        j += 2;
      }
      const std::string& callee = tokens[j].text;
      if (status_fns.count(callee) != 0 && j + 1 < tokens.size() &&
          IsPunct(tokens[j + 1], "(")) {
        const size_t close = MatchingClose(tokens, j + 1);
        if (close + 1 < tokens.size() && IsPunct(tokens[close + 1], ";")) {
          diags->push_back(Diagnostic{
              "unchecked-result", file.path, tokens[j].line,
              "result of '" + callee +
                  "' (Status/Result) is discarded; check .ok(), use "
                  "CARDIR_RETURN_IF_ERROR/CARDIR_CHECK_OK, or cast to "
                  "(void) to discard deliberately"});
        }
      }
    }
    // --- .value() with no visible .ok() guard. ---
    if (IsPunct(tokens[i], ".") && i + 2 < tokens.size() &&
        IsIdent(tokens[i + 1], "value") && IsPunct(tokens[i + 2], "(") &&
        i > 0 && tokens[i - 1].kind == TokKind::kIdent) {
      const std::string& object = tokens[i - 1].text;
      // Heuristic guard scan: look back a window of tokens for
      // `object . ok (` or `object ->ok (`. The window comfortably covers a
      // function body; a guard further away than this is worth repeating.
      bool guarded = false;
      const size_t window_start = i > 600 ? i - 600 : 0;
      for (size_t k = window_start; k + 3 < i; ++k) {
        if (tokens[k].kind == TokKind::kIdent && tokens[k].text == object &&
            (IsPunct(tokens[k + 1], ".") || IsPunct(tokens[k + 1], "->")) &&
            IsIdent(tokens[k + 2], "ok") && IsPunct(tokens[k + 3], "(")) {
          guarded = true;
          break;
        }
      }
      if (!guarded) {
        diags->push_back(Diagnostic{
            "unchecked-result", file.path, tokens[i].line,
            "'" + object +
                ".value()' without a visible '" + object +
                ".ok()' guard (Result::value aborts on error); guard it or "
                "use CARDIR_ASSIGN_OR_RETURN"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check 2: scratch-escape
// ---------------------------------------------------------------------------

const std::set<std::string>& ScratchTypes() {
  static const std::set<std::string> kTypes = {
      "CdrScratch", "WorkerScratch", "EdgeSoA", "SweepScratch",
      "DeltaScratch"};
  return kTypes;
}

// APIs that may run or keep a callable beyond the enclosing scope. The
// synchronous pool entry point (ParallelFor) is deliberately absent: the
// per-participant WorkerScratch capture inside it is the engine's sanctioned
// ownership pattern.
const std::set<std::string>& EscapeSinks() {
  static const std::set<std::string> kSinks = {
      "Submit",       "Post",  "Enqueue", "Schedule", "Defer",
      "Detach",       "async", "thread",  "Thread",   "push_back",
      "emplace_back", "call_once",
  };
  return kSinks;
}

// Names of variables of a scratch type declared anywhere in this file
// (locals, members, parameters): `Type name`, `Type& name`,
// `std::vector<Type> name`, `thread_local Type name`.
void CollectScratchVars(const Tokens& tokens, std::set<std::string>* names) {
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kIdent ||
        ScratchTypes().count(tokens[i].text) == 0) {
      continue;
    }
    size_t j = i + 1;
    while (j < tokens.size() &&
           (IsPunct(tokens[j], ">") || IsPunct(tokens[j], "&") ||
            IsPunct(tokens[j], "*") || IsIdent(tokens[j], "const"))) {
      ++j;
    }
    if (j < tokens.size() && tokens[j].kind == TokKind::kIdent &&
        !(j + 1 < tokens.size() && IsPunct(tokens[j + 1], "("))) {
      names->insert(tokens[j].text);
    }
  }
}

void CheckScratchEscape(const FileTokens& file,
                        std::vector<Diagnostic>* diags) {
  const Tokens& tokens = file.tokens;
  std::set<std::string> scratch_vars;
  CollectScratchVars(tokens, &scratch_vars);
  if (scratch_vars.empty()) return;

  for (size_t i = 1; i + 1 < tokens.size(); ++i) {
    // Lambda introducer: '[' not preceded by an expression (identifier,
    // ')', ']', or a literal means indexing/subscript).
    if (!IsPunct(tokens[i], "[")) continue;
    const Tok& prev = tokens[i - 1];
    if (prev.kind == TokKind::kIdent || prev.kind == TokKind::kNumber ||
        prev.kind == TokKind::kString || IsPunct(prev, ")") ||
        IsPunct(prev, "]")) {
      continue;
    }
    const size_t capture_close = MatchingClose(tokens, i);
    if (capture_close >= tokens.size()) continue;
    // The lambda must be an argument of a sink call: the token before '['
    // is '(' or ',' whose enclosing call's callee is in EscapeSinks().
    if (!IsPunct(prev, "(") && !IsPunct(prev, ",")) continue;
    // Find the innermost unbalanced '(' scanning backwards from i.
    int depth = 0;
    size_t open = 0;
    bool found_open = false;
    for (size_t k = i; k-- > 0;) {
      if (IsPunct(tokens[k], ")")) ++depth;
      if (IsPunct(tokens[k], "(")) {
        if (depth == 0) {
          open = k;
          found_open = true;
          break;
        }
        --depth;
      }
    }
    if (!found_open || open == 0) continue;
    const Tok& callee = tokens[open - 1];
    if (callee.kind != TokKind::kIdent ||
        EscapeSinks().count(callee.text) == 0) {
      continue;
    }
    // Captures: default '&', or '&name' of a scratch variable.
    bool default_ref = false;
    std::string captured_scratch;
    for (size_t k = i + 1; k < capture_close; ++k) {
      if (IsPunct(tokens[k], "&")) {
        if (k + 1 < capture_close && tokens[k + 1].kind == TokKind::kIdent) {
          if (scratch_vars.count(tokens[k + 1].text) != 0) {
            captured_scratch = tokens[k + 1].text;
            break;
          }
          ++k;
        } else {
          default_ref = true;
        }
      }
    }
    size_t body_open = capture_close + 1;
    // Skip optional parameter list / specifiers to the body brace.
    while (body_open < tokens.size() && !IsPunct(tokens[body_open], "{") &&
           !IsPunct(tokens[body_open], ";")) {
      if (IsPunct(tokens[body_open], "(")) {
        body_open = MatchingClose(tokens, body_open);
      }
      ++body_open;
    }
    if (body_open >= tokens.size() || !IsPunct(tokens[body_open], "{")) {
      continue;
    }
    if (captured_scratch.empty() && default_ref) {
      const size_t body_close = MatchingClose(tokens, body_open);
      for (size_t k = body_open; k < body_close; ++k) {
        if (tokens[k].kind == TokKind::kIdent &&
            scratch_vars.count(tokens[k].text) != 0) {
          captured_scratch = tokens[k].text;
          break;
        }
      }
    }
    if (!captured_scratch.empty()) {
      diags->push_back(Diagnostic{
          "scratch-escape", file.path, tokens[i].line,
          "per-worker scratch '" + captured_scratch +
              "' is captured by reference in a lambda handed to '" +
              callee.text +
              "', which may outlive the worker loop; scratch must stay "
              "owned by its participant (pass a copy or re-acquire inside "
              "the task)"});
    }
  }
}

// ---------------------------------------------------------------------------
// Check 3: float-eq
// ---------------------------------------------------------------------------

void CheckFloatEq(const FileTokens& file,
                  const std::set<std::string>& double_fns,
                  std::vector<Diagnostic>* diags) {
  const Tokens& tokens = file.tokens;
  std::set<std::string> double_vars;
  CollectDoubleVars(tokens, &double_vars);

  auto operand_is_floating = [&](size_t eq, int direction) -> bool {
    if (direction < 0) {
      if (eq == 0) return false;
      const Tok& tok = tokens[eq - 1];
      if (IsFloatLiteral(tok)) return true;
      if (tok.kind == TokKind::kIdent) return double_vars.count(tok.text) != 0;
      if (IsPunct(tok, ")")) {
        // Walk back over the call's parens; the identifier before the
        // matching '(' is the callee.
        int depth = 0;
        for (size_t k = eq; k-- > 0;) {
          if (IsPunct(tokens[k], ")")) ++depth;
          if (IsPunct(tokens[k], "(") && --depth == 0) {
            return k > 0 && tokens[k - 1].kind == TokKind::kIdent &&
                   double_fns.count(tokens[k - 1].text) != 0;
          }
        }
      }
      return false;
    }
    if (eq + 1 >= tokens.size()) return false;
    const Tok& tok = tokens[eq + 1];
    if (IsFloatLiteral(tok)) return true;
    if (tok.kind == TokKind::kIdent) {
      if (eq + 2 < tokens.size() && IsPunct(tokens[eq + 2], "(")) {
        return double_fns.count(tok.text) != 0;
      }
      return double_vars.count(tok.text) != 0;
    }
    if (IsPunct(tok, "-") && eq + 2 < tokens.size()) {
      return IsFloatLiteral(tokens[eq + 2]);
    }
    return false;
  };

  for (size_t i = 1; i + 1 < tokens.size(); ++i) {
    if (!IsPunct(tokens[i], "==") && !IsPunct(tokens[i], "!=")) continue;
    if (operand_is_floating(i, -1) || operand_is_floating(i, +1)) {
      diags->push_back(Diagnostic{
          "float-eq", file.path, tokens[i].line,
          "'" + tokens[i].text +
              "' on floating-point operands in geometry/core code; use an "
              "explicit predicate, or mark the site exact with "
              "// cardir-analyzer: allow(float-eq): <why>"});
    }
  }
}

// ---------------------------------------------------------------------------
// Check 4: obs-macro-side-effect
// ---------------------------------------------------------------------------

const std::set<std::string>& VanishingMacros() {
  static const std::set<std::string> kMacros = {
      "CARDIR_METRIC_COUNT",   "CARDIR_METRIC_GAUGE_SET",
      "CARDIR_METRIC_OBSERVE", "CARDIR_TRACE_SPAN",
      "CARDIR_AUDIT",          "CARDIR_RECORD_EVENT",
      "CARDIR_MEMSTAT_ALLOC",  "CARDIR_MEMSTAT_FREE",
      "CARDIR_PROFILE_FRAME",
  };
  return kMacros;
}

void CheckObsMacroSideEffect(const FileTokens& file,
                             std::vector<Diagnostic>* diags) {
  static const std::set<std::string> kSideEffectOps = {
      "++", "--", "=",  "+=", "-=", "*=", "/=",
      "%=", "&=", "|=", "^=", "<<=", ">>=",
  };
  const Tokens& tokens = file.tokens;
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kIdent ||
        VanishingMacros().count(tokens[i].text) == 0 ||
        !IsPunct(tokens[i + 1], "(")) {
      continue;
    }
    const size_t close = MatchingClose(tokens, i + 1);
    for (size_t k = i + 2; k < close; ++k) {
      if (tokens[k].kind == TokKind::kPunct &&
          kSideEffectOps.count(tokens[k].text) != 0) {
        diags->push_back(Diagnostic{
            "obs-macro-side-effect", file.path, tokens[k].line,
            "argument of " + tokens[i].text + " contains '" + tokens[k].text +
                "', a side effect that silently vanishes when the macro "
                "compiles to a no-op (CARDIR_OBS=OFF / CARDIR_AUDIT=OFF); "
                "hoist the side effect out of the macro argument"});
        break;  // One diagnostic per macro invocation.
      }
    }
    i = close;
  }
}

// ---------------------------------------------------------------------------
// Check 5: lock-across-compute
// ---------------------------------------------------------------------------

void CheckLockAcrossCompute(const FileTokens& file,
                            std::vector<Diagnostic>* diags) {
  static const std::set<std::string> kLockTypes = {
      "lock_guard", "unique_lock", "scoped_lock", "shared_lock"};
  const Tokens& tokens = file.tokens;
  // Active scoped locks: brace depth at declaration. A lock dies when the
  // depth drops below its declaration depth.
  struct ActiveLock {
    int depth;
    int line;
  };
  std::vector<ActiveLock> locks;
  int depth = 0;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Tok& tok = tokens[i];
    if (IsPunct(tok, "{")) ++depth;
    if (IsPunct(tok, "}")) {
      --depth;
      while (!locks.empty() && locks.back().depth > depth) locks.pop_back();
    }
    // A declaration: `lock_guard<...> name(` or CTAD `scoped_lock name(`.
    if (tok.kind == TokKind::kIdent && kLockTypes.count(tok.text) != 0 &&
        i + 1 < tokens.size() &&
        (IsPunct(tokens[i + 1], "<") ||
         tokens[i + 1].kind == TokKind::kIdent)) {
      locks.push_back(ActiveLock{depth, tok.line});
    }
    if (!locks.empty() && tok.kind == TokKind::kIdent &&
        i + 1 < tokens.size() && IsPunct(tokens[i + 1], "(") &&
        (tok.text.rfind("ComputeCdr", 0) == 0 ||
         tok.text.rfind("ComputeAllPairs", 0) == 0 ||
         tok.text == "ComputeAllRelations")) {
      diags->push_back(Diagnostic{
          "lock-across-compute", file.path, tok.line,
          "'" + tok.text + "' called while a scoped lock (from line " +
              std::to_string(locks.back().line) +
              ") is held; Compute-CDR work must never run under a mutex — "
              "collect inputs under the lock, release it, then compute"});
    }
  }
}

}  // namespace

const std::vector<std::pair<std::string, std::string>>& CheckCatalog() {
  static const std::vector<std::pair<std::string, std::string>> kCatalog = {
      {"unchecked-result",
       "Result<T>/Status discarded or .value()'d without an ok() guard"},
      {"scratch-escape",
       "CdrScratch/WorkerScratch/EdgeSoA captured by reference in a lambda "
       "handed to an API that may outlive the worker loop"},
      {"float-eq",
       "==/!= on floating-point operands in src/core + src/geometry outside "
       "annotated proven-exact sites"},
      {"obs-macro-side-effect",
       "side-effecting argument to a macro that compiles out under "
       "CARDIR_OBS=OFF / CARDIR_AUDIT=OFF"},
      {"lock-across-compute",
       "mutex held across a ComputeCdr*/ComputeAllPairs call in src/engine"},
  };
  return kCatalog;
}

std::vector<Diagnostic> RunChecks(const std::vector<FileTokens>& files,
                                  const std::set<std::string>& enabled_checks,
                                  bool no_path_filter) {
  // Cross-file collection passes.
  std::set<std::string> status_fns;
  std::set<std::string> other_fns;
  std::set<std::string> double_fns;
  for (const FileTokens& file : files) {
    CollectStatusFunctions(file.tokens, &status_fns);
    CollectOtherReturnFunctions(file.tokens, &other_fns);
    CollectDoubleFunctions(file.tokens, &double_fns);
  }
  // A name declared with both a Status/Result return and some other return
  // type is ambiguous at token level; keep unchecked-result quiet on it.
  for (const std::string& name : other_fns) status_fns.erase(name);

  std::vector<Diagnostic> raw;
  for (const FileTokens& file : files) {
    const bool in_core_or_geometry =
        PathContains(file.path, "/core/") ||
        PathContains(file.path, "/geometry/");
    const bool in_engine = PathContains(file.path, "/engine/");
    if (enabled_checks.count("unchecked-result") != 0) {
      CheckUncheckedResult(file, status_fns, &raw);
    }
    if (enabled_checks.count("scratch-escape") != 0) {
      CheckScratchEscape(file, &raw);
    }
    if (enabled_checks.count("float-eq") != 0 &&
        (no_path_filter || in_core_or_geometry)) {
      CheckFloatEq(file, double_fns, &raw);
    }
    if (enabled_checks.count("obs-macro-side-effect") != 0) {
      CheckObsMacroSideEffect(file, &raw);
    }
    if (enabled_checks.count("lock-across-compute") != 0 &&
        (no_path_filter || in_engine)) {
      CheckLockAcrossCompute(file, &raw);
    }
  }

  // Apply inline and file-level suppressions.
  std::vector<Diagnostic> out;
  for (Diagnostic& diag : raw) {
    const FileTokens* file = nullptr;
    for (const FileTokens& candidate : files) {
      if (candidate.path == diag.path) {
        file = &candidate;
        break;
      }
    }
    if (file != nullptr) {
      if (file->file_allows.count(diag.check) != 0) continue;
      const auto it = file->line_allows.find(diag.line);
      if (it != file->line_allows.end() && it->second.count(diag.check) != 0) {
        continue;
      }
    }
    out.push_back(std::move(diag));
  }
  std::sort(out.begin(), out.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.check < b.check;
            });
  return out;
}

}  // namespace cardir_analyzer
