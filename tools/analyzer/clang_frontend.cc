// Optional clang libTooling frontend for cardir-analyzer.
//
// The token-level frontend (main.cc + checks.cc) is the project's
// always-available baseline. Where clang dev headers exist, this TU builds
// a second binary, cardir-analyzer-clang, that re-implements the two
// type-driven checks with AST matchers for extra precision:
//
//   unchecked-result  — matched on the *types* cardir::Status /
//                       cardir::Result<T>, so typedefs, auto, and
//                       expression-statement discards are caught exactly
//                       (no name-collection heuristics).
//   float-eq          — matched on operand types after implicit
//                       conversions, so integer-promoted comparisons and
//                       double-typedef'd operands are caught exactly.
//
// The other three checks stay token-level on purpose: obs-macro-side-effect
// polices code that is *gone* from the AST under CARDIR_OBS=OFF, and the
// suppression-comment machinery lives in the lexer.
//
// Build: -DCARDIR_ANALYZER_CLANG=ON, needs find_package(Clang CONFIG).
// The container image used for CI has LLVM libs but no clang dev headers,
// so this TU also self-gates on __has_include to fail soft, not loud.

#if !defined(__has_include)
#define CARDIR_HAVE_CLANG_TOOLING 0
#elif __has_include(<clang/Tooling/Tooling.h>) && \
    __has_include(<clang/ASTMatchers/ASTMatchFinder.h>)
#define CARDIR_HAVE_CLANG_TOOLING 1
#else
#define CARDIR_HAVE_CLANG_TOOLING 0
#endif

#if CARDIR_HAVE_CLANG_TOOLING

#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Frontend/FrontendActions.h"
#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/CommandLine.h"

#include <string>

namespace {

using namespace clang;             // NOLINT(build/namespaces)
using namespace clang::ast_matchers;  // NOLINT(build/namespaces)

llvm::cl::OptionCategory gCategory("cardir-analyzer-clang options");

int gFindings = 0;

void Report(const SourceManager& sm, SourceLocation loc, const char* check,
            const std::string& message) {
  if (loc.isInvalid() || sm.isInSystemHeader(loc)) return;
  const PresumedLoc ploc = sm.getPresumedLoc(loc);
  if (ploc.isInvalid()) return;
  llvm::outs() << ploc.getFilename() << ":" << ploc.getLine() << ": error: ["
               << check << "] " << message << "\n";
  ++gFindings;
}

// unchecked-result: a full-expression statement whose value is a discarded
// cardir::Status or cardir::Result<T>.
class DiscardedResultCallback : public MatchFinder::MatchCallback {
 public:
  void run(const MatchFinder::MatchResult& result) override {
    const auto* call = result.Nodes.getNodeAs<CallExpr>("call");
    if (call == nullptr) return;
    Report(*result.SourceManager, call->getBeginLoc(), "unchecked-result",
           "Status/Result return value is discarded; check .ok() or cast "
           "to (void) to discard deliberately");
  }
};

// float-eq: ==/!= whose operands are floating after implicit conversion.
class FloatEqCallback : public MatchFinder::MatchCallback {
 public:
  void run(const MatchFinder::MatchResult& result) override {
    const auto* op = result.Nodes.getNodeAs<BinaryOperator>("op");
    if (op == nullptr) return;
    Report(*result.SourceManager, op->getOperatorLoc(), "float-eq",
           "floating-point ==/!= (operand types resolved via the AST); use "
           "an explicit predicate or annotate the site exact");
  }
};

}  // namespace

int main(int argc, const char** argv) {
  auto options =
      tooling::CommonOptionsParser::create(argc, argv, gCategory);
  if (!options) {
    llvm::errs() << llvm::toString(options.takeError());
    return 2;
  }
  tooling::ClangTool tool(options->getCompilations(),
                          options->getSourcePathList());

  MatchFinder finder;
  DiscardedResultCallback discarded;
  FloatEqCallback float_eq;

  const auto result_type = hasType(hasCanonicalType(hasDeclaration(namedDecl(
      anyOf(hasName("::cardir::Status"), hasName("::cardir::Result"))))));
  finder.addMatcher(
      exprWithCleanups(has(callExpr(result_type).bind("call")),
                       hasParent(compoundStmt())),
      &discarded);
  finder.addMatcher(
      callExpr(result_type, hasParent(compoundStmt())).bind("call"),
      &discarded);

  finder.addMatcher(
      binaryOperator(hasAnyOperatorName("==", "!="),
                     hasEitherOperand(ignoringImpCasts(
                         expr(hasType(realFloatingPointType())))))
          .bind("op"),
      &float_eq);

  const int status =
      tool.run(tooling::newFrontendActionFactory(&finder).get());
  if (status != 0) return 2;
  return gFindings == 0 ? 0 : 1;
}

#else  // !CARDIR_HAVE_CLANG_TOOLING

#include <cstdio>

int main() {
  std::fprintf(
      stderr,
      "cardir-analyzer-clang: built without clang libTooling headers; "
      "use the token-level `cardir-analyzer` binary instead.\n");
  return 2;
}

#endif  // CARDIR_HAVE_CLANG_TOOLING
