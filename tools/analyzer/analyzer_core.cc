#include "analyzer_core.h"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace cardir_analyzer {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuation, longest first (maximal munch).
const char* const kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "<<", ">>",
    "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=",
    "%=", "&=", "|=", "^=",
};

// Parses a suppression comment body (text after "cardir-analyzer:").
// Returns the check ids and whether this is a file-level allow. A
// malformed body yields no ids (the comment is inert, never a crash).
void ParseAllowComment(const std::string& body, std::set<std::string>* ids,
                       bool* file_level) {
  size_t pos = body.find_first_not_of(" \t");
  if (pos == std::string::npos) return;
  const bool is_file = body.compare(pos, 10, "allow-file") == 0;
  const bool is_line = !is_file && body.compare(pos, 5, "allow") == 0;
  if (!is_file && !is_line) return;
  *file_level = is_file;
  const size_t open = body.find('(', pos);
  const size_t close = body.find(')', open == std::string::npos ? pos : open);
  if (open == std::string::npos || close == std::string::npos) return;
  std::string inside = body.substr(open + 1, close - open - 1);
  std::string id;
  std::istringstream stream(inside);
  while (std::getline(stream, id, ',')) {
    const size_t a = id.find_first_not_of(" \t");
    const size_t b = id.find_last_not_of(" \t");
    if (a != std::string::npos) ids->insert(id.substr(a, b - a + 1));
  }
}

}  // namespace

FileTokens Lex(const std::string& path, const std::string& content) {
  FileTokens out;
  out.path = path;
  int line = 1;
  size_t i = 0;
  const size_t n = content.size();
  // Suppression comments seen but not yet bound to a line: when a comment
  // sits on a line with no preceding token, it applies to the next line
  // that produces a token.
  std::vector<std::set<std::string>> pending_allows;
  int last_token_line = 0;

  auto handle_comment = [&](const std::string& text, int comment_line) {
    const size_t tag = text.find("cardir-analyzer:");
    if (tag == std::string::npos) return;
    std::set<std::string> ids;
    bool file_level = false;
    ParseAllowComment(text.substr(tag + 16), &ids, &file_level);
    if (ids.empty()) return;
    if (file_level) {
      out.file_allows.insert(ids.begin(), ids.end());
    } else if (last_token_line == comment_line) {
      out.line_allows[comment_line].insert(ids.begin(), ids.end());
    } else {
      pending_allows.push_back(std::move(ids));
    }
  };

  auto emit = [&](TokKind kind, std::string text, int tok_line) {
    for (std::set<std::string>& ids : pending_allows) {
      out.line_allows[tok_line].insert(ids.begin(), ids.end());
    }
    pending_allows.clear();
    last_token_line = tok_line;
    out.tokens.push_back(Tok{kind, std::move(text), tok_line});
  };

  bool at_line_start = true;  // Only whitespace/comments seen on this line.
  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      const size_t end = content.find('\n', i);
      const std::string text =
          content.substr(i, (end == std::string::npos ? n : end) - i);
      handle_comment(text, line);
      i = end == std::string::npos ? n : end;
      continue;
    }
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      const int comment_line = line;
      const size_t end = content.find("*/", i + 2);
      const size_t stop = end == std::string::npos ? n : end + 2;
      const std::string text = content.substr(i, stop - i);
      handle_comment(text, comment_line);
      for (size_t k = i; k < stop; ++k) {
        if (content[k] == '\n') ++line;
      }
      i = stop;
      continue;
    }
    // Preprocessor directive: skip to end of line, honoring continuations.
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (content[i] == '\n') {
          // A backslash (possibly followed by spaces) continues the line.
          size_t back = i;
          while (back > 0 && (content[back - 1] == ' ' ||
                              content[back - 1] == '\t' ||
                              content[back - 1] == '\r')) {
            --back;
          }
          ++line;
          ++i;
          if (back == 0 || content[back - 1] != '\\') break;
          continue;
        }
        ++i;
      }
      at_line_start = true;
      continue;
    }
    at_line_start = false;
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && content[i + 1] == '"') {
      size_t p = i + 2;
      std::string delim;
      while (p < n && content[p] != '(') delim += content[p++];
      const std::string closer = ")" + delim + "\"";
      const size_t end = content.find(closer, p);
      const size_t stop = end == std::string::npos ? n : end + closer.size();
      const int tok_line = line;
      for (size_t k = i; k < stop; ++k) {
        if (content[k] == '\n') ++line;
      }
      emit(TokKind::kString, content.substr(i, stop - i), tok_line);
      i = stop;
      continue;
    }
    // String / char literals.
    if (c == '"' || c == '\'') {
      const char quote = c;
      size_t p = i + 1;
      while (p < n && content[p] != quote) {
        if (content[p] == '\\' && p + 1 < n) ++p;
        if (content[p] == '\n') ++line;
        ++p;
      }
      const size_t stop = p < n ? p + 1 : n;
      emit(quote == '"' ? TokKind::kString : TokKind::kChar,
           content.substr(i, stop - i), line);
      i = stop;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t p = i + 1;
      while (p < n && IsIdentChar(content[p])) ++p;
      emit(TokKind::kIdent, content.substr(i, p - i), line);
      i = p;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(content[i + 1])))) {
      size_t p = i;
      while (p < n) {
        const char d = content[p];
        if (IsIdentChar(d) || d == '.' || d == '\'') {
          ++p;
          continue;
        }
        // Exponent sign: only after e/E/p/P.
        if ((d == '+' || d == '-') && p > i &&
            (content[p - 1] == 'e' || content[p - 1] == 'E' ||
             content[p - 1] == 'p' || content[p - 1] == 'P')) {
          ++p;
          continue;
        }
        break;
      }
      emit(TokKind::kNumber, content.substr(i, p - i), line);
      i = p;
      continue;
    }
    // Punctuation, longest match first.
    std::string punct(1, c);
    for (const char* candidate : kPuncts) {
      const size_t len = std::strlen(candidate);
      if (content.compare(i, len, candidate) == 0) {
        punct = candidate;
        break;
      }
    }
    emit(TokKind::kPunct, punct, line);
    i += punct.size();
  }
  out.tokens.push_back(Tok{TokKind::kEof, "", line});
  return out;
}

bool LoadBaseline(const std::string& path, std::set<std::string>* keys,
                  std::string* error) {
  std::ifstream file(path);
  if (!file) {
    *error = "cannot open baseline file '" + path + "'";
    return false;
  }
  std::string line;
  while (std::getline(file, line)) {
    if (line.empty() || line[0] == '#') continue;
    // Key is the first three tab-separated fields (check, path, line);
    // anything after the third tab is a human note.
    size_t tabs = 0;
    size_t cut = std::string::npos;
    for (size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '\t' && ++tabs == 3) {
        cut = i;
        break;
      }
    }
    keys->insert(cut == std::string::npos ? line : line.substr(0, cut));
  }
  return true;
}

std::string BaselineKey(const Diagnostic& diag) {
  return diag.check + "\t" + diag.path + "\t" + std::to_string(diag.line);
}

std::string FormatBaselineLine(const Diagnostic& diag) {
  return BaselineKey(diag) + "\t" + diag.message;
}

}  // namespace cardir_analyzer
