#!/usr/bin/env python3
"""Line-coverage report and gate over a --coverage (gcov) build tree.

Walks the build tree for .gcno note files, runs gcov in JSON mode on each,
and merges the per-translation-unit line records (a header or template
line counts as covered if ANY unit executed it). Only sources under the
--filter prefixes (relative to --source-root) enter the report, so test
scaffolding and third-party code do not inflate or dilute the number.

Usage:
  tools/coverage_report.py --build-dir build-coverage \
      [--source-root .] [--filter src/core --filter src/engine] \
      [--fail-under 80.0] [--out coverage.txt]

Exit status: 0 when total line coverage meets --fail-under, 1 when below,
2 on bad input (no .gcno files, gcov missing or failing on every file).
"""

import argparse
import gzip
import json
import os
import subprocess
import sys
import tempfile


def find_gcno(build_dir):
    notes = []
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcno"):
                notes.append(os.path.join(root, name))
    return sorted(notes)


def run_gcov(gcno_paths, workdir):
    """Run gcov --json-format on each note file; yield parsed reports."""
    reports = []
    failures = 0
    for gcno in gcno_paths:
        before = set(os.listdir(workdir))
        proc = subprocess.run(
            ["gcov", "--json-format", os.path.abspath(gcno)],
            cwd=workdir, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        if proc.returncode != 0:
            failures += 1
            continue
        for name in set(os.listdir(workdir)) - before:
            if not name.endswith(".gcov.json.gz"):
                continue
            path = os.path.join(workdir, name)
            try:
                with gzip.open(path, "rt") as f:
                    reports.append(json.load(f))
            except (OSError, json.JSONDecodeError):
                failures += 1
            os.unlink(path)
    return reports, failures


def merge_lines(reports, source_root, filters):
    """Return {relpath: {line_number: max_count}} for filtered sources."""
    source_root = os.path.abspath(source_root)
    merged = {}
    for report in reports:
        # gcov records each source relative to the compilation cwd.
        cwd = report.get("current_working_directory", "")
        for entry in report.get("files", []):
            src = entry.get("file", "")
            if not os.path.isabs(src):
                src = os.path.join(cwd, src)
            src = os.path.normpath(src)
            if not src.startswith(source_root + os.sep):
                continue
            rel = os.path.relpath(src, source_root)
            if filters and not any(
                    rel == f or rel.startswith(f + os.sep) for f in filters):
                continue
            lines = merged.setdefault(rel, {})
            for line in entry.get("lines", []):
                number = line.get("line_number")
                count = line.get("count", 0)
                if number is None:
                    continue
                lines[number] = max(lines.get(number, 0), count)
    return merged


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", required=True,
                        help="build tree compiled with --coverage")
    parser.add_argument("--source-root", default=".",
                        help="repository root the report paths are "
                             "relative to (default: .)")
    parser.add_argument("--filter", action="append", default=[],
                        metavar="PREFIX",
                        help="only report sources under this prefix, "
                             "relative to --source-root (repeatable; "
                             "default: everything under the root)")
    parser.add_argument("--fail-under", type=float, default=0.0,
                        help="exit 1 when total line coverage (percent) "
                             "is below this (default 0 = report only)")
    parser.add_argument("--out", default="",
                        help="also write the report to this file")
    args = parser.parse_args()

    gcno_paths = find_gcno(args.build_dir)
    if not gcno_paths:
        print(f"coverage_report: no .gcno files under {args.build_dir} — "
              f"was the tree built with --coverage?", file=sys.stderr)
        sys.exit(2)

    with tempfile.TemporaryDirectory() as workdir:
        reports, failures = run_gcov(gcno_paths, workdir)
    if not reports:
        print(f"coverage_report: gcov produced no reports from "
              f"{len(gcno_paths)} note files ({failures} failures)",
              file=sys.stderr)
        sys.exit(2)

    merged = merge_lines(reports, args.source_root, args.filter)
    if not merged:
        print("coverage_report: no sources matched the filters "
              f"{args.filter}", file=sys.stderr)
        sys.exit(2)

    rows = []
    total_lines = 0
    total_covered = 0
    for rel in sorted(merged):
        lines = merged[rel]
        covered = sum(1 for count in lines.values() if count > 0)
        rows.append((rel, covered, len(lines)))
        total_lines += len(lines)
        total_covered += covered

    out_lines = [f"{'file':44s} {'covered':>8s} {'lines':>6s} {'pct':>7s}"]
    for rel, covered, count in rows:
        pct = 100.0 * covered / count if count else 100.0
        out_lines.append(f"{rel:44s} {covered:8d} {count:6d} {pct:6.1f}%")
    total_pct = 100.0 * total_covered / total_lines if total_lines else 100.0
    out_lines.append(f"{'TOTAL':44s} {total_covered:8d} {total_lines:6d} "
                     f"{total_pct:6.1f}%")
    report = "\n".join(out_lines)
    print(report)
    if args.out:
        with open(args.out, "w") as f:
            f.write(report + "\n")

    if total_pct < args.fail_under:
        print(f"\ncoverage_report: total line coverage {total_pct:.1f}% is "
              f"below the floor {args.fail_under:.1f}%", file=sys.stderr)
        sys.exit(1)
    print(f"\ncoverage_report: total line coverage {total_pct:.1f}% "
          f"(floor {args.fail_under:.1f}%)")


if __name__ == "__main__":
    main()
