#!/usr/bin/env bash
# Lint gate for first-party code (src/).
#
# Four stages, each fatal when its tool reports a finding:
#   1. strict-warning compile — CARDIR_WERROR=ON turns the src/ warning bar
#      (-Wall -Wextra -Wshadow -Wconversion -Wdouble-promotion) into errors;
#      always available, runs with whatever compiler CMake picks. This
#      stage also proves the compile-time table layer: the static_asserts
#      over the interval-kernel class-pair table and the SoA sub-edge code
#      tables (exhaustive agreement with TileAt) fire here, not at startup;
#   2. clang-tidy over every src/ translation unit with the checked-in
#      .clang-tidy (skipped with a notice when clang-tidy is absent);
#   3. cppcheck over the same compilation database (skipped likewise);
#   4. cardir-analyzer (tools/analyzer) — the project-specific checks
#      (unchecked-result, scratch-escape, float-eq, obs-macro-side-effect,
#      lock-across-compute) against the checked-in empty baseline; built
#      from source in the lint tree, so it always runs.
#
# Exit code 0 means: every stage whose tool exists came back clean.
#
#   tools/lint.sh [--build-dir DIR] [--jobs N]

set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$root/build-lint"
jobs="$(nproc 2>/dev/null || echo 2)"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) build_dir="$2"; shift 2 ;;
    --jobs) jobs="$2"; shift 2 ;;
    *) echo "usage: tools/lint.sh [--build-dir DIR] [--jobs N]" >&2; exit 2 ;;
  esac
done

status=0

echo "[lint] stage 1/4: strict-warning compile + table static_asserts (CARDIR_WERROR=ON)"
generator_args=()
if command -v ninja >/dev/null 2>&1; then
  generator_args=(-G Ninja)
fi
cmake -S "$root" -B "$build_dir" "${generator_args[@]}" \
      -DCMAKE_BUILD_TYPE=Release \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DCARDIR_WERROR=ON \
      -DCARDIR_BUILD_TESTS=OFF \
      -DCARDIR_BUILD_BENCHMARKS=OFF \
      -DCARDIR_BUILD_EXAMPLES=OFF >/dev/null
if ! cmake --build "$build_dir" -j "$jobs"; then
  echo "[lint] FAIL: strict-warning compile reported errors" >&2
  status=1
fi

echo "[lint] stage 2/4: clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  mapfile -t sources < <(find "$root/src" -name '*.cc' | sort)
  if ! clang-tidy -p "$build_dir" --quiet "${sources[@]}"; then
    echo "[lint] FAIL: clang-tidy reported findings" >&2
    status=1
  fi
else
  echo "[lint] clang-tidy not found on PATH — stage skipped"
fi

echo "[lint] stage 3/4: cppcheck"
if command -v cppcheck >/dev/null 2>&1; then
  if ! cppcheck --project="$build_dir/compile_commands.json" \
                --enable=warning,performance,portability \
                --inline-suppr \
                --suppress=missingIncludeSystem \
                --error-exitcode=1 \
                --quiet; then
    echo "[lint] FAIL: cppcheck reported findings" >&2
    status=1
  fi
else
  echo "[lint] cppcheck not found on PATH — stage skipped"
fi

echo "[lint] stage 4/4: cardir-analyzer"
if cmake --build "$build_dir" -j "$jobs" --target cardir-analyzer; then
  if ! "$build_dir/tools/analyzer/cardir-analyzer" --src "$root/src" \
       --baseline "$root/tools/analyzer/baseline.txt"; then
    echo "[lint] FAIL: cardir-analyzer reported findings (annotate proven"\
" sites with // cardir-analyzer: allow(<check>): <reason>)" >&2
    status=1
  fi
else
  echo "[lint] FAIL: cardir-analyzer failed to build" >&2
  status=1
fi

if [[ $status -eq 0 ]]; then
  echo "[lint] clean"
else
  echo "[lint] findings above must be fixed (suppressions need a comment "\
"justifying them)" >&2
fi
exit $status
