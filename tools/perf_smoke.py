#!/usr/bin/env python3
"""Perf-smoke gate: fresh bench ledger vs the committed baseline.

Joins the two BENCH_engine.json ledgers on (workload, regions, mode,
threads) and fails when any matched row's fresh wall time exceeds the
baseline by more than the threshold ratio (default 1.30, i.e. a >30%
regression). Rows present in only one ledger (different size lists,
host-dependent engine_parallel_hw thread counts) are reported and skipped,
as are rows under --min-ms, whose wall times are scheduler noise.

Memory gate: rows carrying the mem_total_peak_bytes column (obs memory
telemetry) are additionally checked against --mem-threshold (default 1.50).
Rows whose baseline lacks the column (older ledgers, CARDIR_OBS=OFF runs)
or sits under --min-mem-bytes are skipped — peaks of a few KiB are
allocator noise, not a leak signal.

Usage:
  tools/perf_smoke.py --baseline BENCH_engine.json --fresh fresh.json \
      [--threshold 1.30] [--min-ms 5.0] [--mem-threshold 1.50] [--median]

--median gates the median ratio across all matched rows instead of each
row individually — the right shape for tight bounds (e.g. the 2% profiler
overhead gate) where single-row scheduler noise exceeds the threshold.

Exit status: 0 when every matched row is within the thresholds, 1 on any
regression (time or memory), 2 on bad input.
"""

import argparse
import json
import statistics
import sys


def load_runs(path):
    try:
        with open(path) as f:
            ledger = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"perf_smoke: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    runs = ledger.get("runs")
    if not isinstance(runs, list):
        print(f"perf_smoke: {path} has no 'runs' array", file=sys.stderr)
        sys.exit(2)
    by_key = {}
    for run in runs:
        key = (run.get("workload"), run.get("regions"), run.get("mode"),
               run.get("threads"))
        if None in key:
            print(f"perf_smoke: {path} row missing key fields: {run}",
                  file=sys.stderr)
            sys.exit(2)
        by_key[key] = run
    return by_key


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_engine.json")
    parser.add_argument("--fresh", required=True,
                        help="ledger from this run")
    parser.add_argument("--threshold", type=float, default=1.30,
                        help="max fresh/baseline wall-time ratio "
                             "(default 1.30)")
    parser.add_argument("--min-ms", type=float, default=5.0,
                        help="skip rows whose baseline wall time is below "
                             "this (noise floor, default 5.0)")
    parser.add_argument("--mem-threshold", type=float, default=1.50,
                        help="max fresh/baseline mem_total_peak_bytes ratio "
                             "(default 1.50)")
    parser.add_argument("--min-mem-bytes", type=int, default=65536,
                        help="skip the memory check when the baseline peak "
                             "is below this (default 65536)")
    parser.add_argument("--median", action="store_true",
                        help="gate the median wall-time ratio across all "
                             "matched rows instead of each row individually "
                             "(for tight bounds like the 2%% profiler-"
                             "overhead gate, where per-row machine noise "
                             "exceeds the threshold)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="WORKLOAD",
                        help="fail unless at least one matched row belongs "
                             "to this workload (repeatable); guards against "
                             "a fresh run that silently skipped the "
                             "workload the gate is meant to cover")
    parser.add_argument("--require-mode", action="append", default=[],
                        metavar="MODE",
                        help="fail unless at least one matched row runs in "
                             "this mode (repeatable); guards against a "
                             "fresh run or a baseline refresh that silently "
                             "dropped a gated mode (e.g. engine_sweep)")
    args = parser.parse_args()

    baseline = load_runs(args.baseline)
    fresh = load_runs(args.fresh)

    matched = sorted(set(baseline) & set(fresh))
    if not matched:
        print("perf_smoke: no (workload, regions, mode, threads) rows in "
              "common — nothing to gate", file=sys.stderr)
        sys.exit(2)
    for key in sorted(set(fresh) - set(baseline)):
        print(f"  [skip] {key}: not in baseline")

    matched_workloads = {key[0] for key in matched}
    missing = [w for w in args.require if w not in matched_workloads]
    if missing:
        print(f"perf_smoke: required workload(s) absent from the matched "
              f"rows: {', '.join(missing)}", file=sys.stderr)
        sys.exit(2)
    matched_modes = {key[2] for key in matched}
    missing_modes = [m for m in args.require_mode if m not in matched_modes]
    if missing_modes:
        print(f"perf_smoke: required mode(s) absent from the matched rows: "
              f"{', '.join(missing_modes)}", file=sys.stderr)
        sys.exit(2)

    regressions = []
    mem_regressions = []
    gated_ratios = []
    print(f"{'workload':10s} {'n':>6s} {'mode':20s} {'thr':>3s} "
          f"{'base ms':>9s} {'fresh ms':>9s} {'ratio':>6s} {'mem':>6s}")
    for key in matched:
        base_ms = baseline[key]["ms"]
        fresh_ms = fresh[key]["ms"]
        workload, regions, mode, threads = key

        # Memory check is independent of the wall-time noise floor: a peak
        # regression on a fast row is still a real allocation change.
        base_mem = baseline[key].get("mem_total_peak_bytes", 0) or 0
        fresh_mem = fresh[key].get("mem_total_peak_bytes", 0) or 0
        mem_note = ""
        if base_mem >= args.min_mem_bytes and fresh_mem > 0:
            mem_ratio = fresh_mem / base_mem
            mem_note = f"{mem_ratio:6.2f}"
            if mem_ratio > args.mem_threshold:
                mem_note += "  << MEM REGRESSION"
                mem_regressions.append((key, mem_ratio))
        else:
            mem_note = "     -"

        if base_ms < args.min_ms:
            print(f"{workload:10s} {regions:6d} {mode:20s} {threads:3d} "
                  f"{base_ms:9.2f} {fresh_ms:9.2f}   skip {mem_note}")
            continue
        ratio = fresh_ms / base_ms if base_ms > 0 else float("inf")
        gated_ratios.append(ratio)
        over = ratio > args.threshold and not args.median
        flag = "  << REGRESSION" if over else ""
        print(f"{workload:10s} {regions:6d} {mode:20s} {threads:3d} "
              f"{base_ms:9.2f} {fresh_ms:9.2f} {ratio:6.2f} {mem_note}{flag}")
        if over:
            regressions.append((key, ratio))

    if args.median and gated_ratios:
        median = statistics.median(gated_ratios)
        print(f"\nperf_smoke: median wall-time ratio over "
              f"{len(gated_ratios)} row(s): {median:.3f} "
              f"(threshold {args.threshold:.2f})")
        if median > args.threshold:
            regressions.append((("median", "-", "-", "-"), median))

    if regressions:
        print(f"\nperf_smoke: {len(regressions)} row(s) regressed beyond "
              f"{args.threshold:.2f}x:", file=sys.stderr)
        for key, ratio in regressions:
            print(f"  {key}: {ratio:.2f}x", file=sys.stderr)
    if mem_regressions:
        print(f"\nperf_smoke: {len(mem_regressions)} row(s) grew peak memory "
              f"beyond {args.mem_threshold:.2f}x:", file=sys.stderr)
        for key, ratio in mem_regressions:
            print(f"  {key}: {ratio:.2f}x", file=sys.stderr)
    if regressions or mem_regressions:
        sys.exit(1)
    print(f"\nperf_smoke: all {len(matched)} matched rows within "
          f"{args.threshold:.2f}x (memory within {args.mem_threshold:.2f}x)")


if __name__ == "__main__":
    main()
