#!/usr/bin/env python3
"""Perf-smoke gate: fresh bench ledger vs the committed baseline.

Joins the two BENCH_engine.json ledgers on (workload, regions, mode,
threads) and fails when any matched row's fresh wall time exceeds the
baseline by more than the threshold ratio (default 1.30, i.e. a >30%
regression). Rows present in only one ledger (different size lists,
host-dependent engine_parallel_hw thread counts) are reported and skipped,
as are rows under --min-ms, whose wall times are scheduler noise.

Usage:
  tools/perf_smoke.py --baseline BENCH_engine.json --fresh fresh.json \
      [--threshold 1.30] [--min-ms 5.0]

Exit status: 0 when every matched row is within the threshold, 1 on any
regression, 2 on bad input.
"""

import argparse
import json
import sys


def load_runs(path):
    try:
        with open(path) as f:
            ledger = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"perf_smoke: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    runs = ledger.get("runs")
    if not isinstance(runs, list):
        print(f"perf_smoke: {path} has no 'runs' array", file=sys.stderr)
        sys.exit(2)
    by_key = {}
    for run in runs:
        key = (run.get("workload"), run.get("regions"), run.get("mode"),
               run.get("threads"))
        if None in key:
            print(f"perf_smoke: {path} row missing key fields: {run}",
                  file=sys.stderr)
            sys.exit(2)
        by_key[key] = run
    return by_key


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_engine.json")
    parser.add_argument("--fresh", required=True,
                        help="ledger from this run")
    parser.add_argument("--threshold", type=float, default=1.30,
                        help="max fresh/baseline wall-time ratio "
                             "(default 1.30)")
    parser.add_argument("--min-ms", type=float, default=5.0,
                        help="skip rows whose baseline wall time is below "
                             "this (noise floor, default 5.0)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="WORKLOAD",
                        help="fail unless at least one matched row belongs "
                             "to this workload (repeatable); guards against "
                             "a fresh run that silently skipped the "
                             "workload the gate is meant to cover")
    args = parser.parse_args()

    baseline = load_runs(args.baseline)
    fresh = load_runs(args.fresh)

    matched = sorted(set(baseline) & set(fresh))
    if not matched:
        print("perf_smoke: no (workload, regions, mode, threads) rows in "
              "common — nothing to gate", file=sys.stderr)
        sys.exit(2)
    for key in sorted(set(fresh) - set(baseline)):
        print(f"  [skip] {key}: not in baseline")

    matched_workloads = {key[0] for key in matched}
    missing = [w for w in args.require if w not in matched_workloads]
    if missing:
        print(f"perf_smoke: required workload(s) absent from the matched "
              f"rows: {', '.join(missing)}", file=sys.stderr)
        sys.exit(2)

    regressions = []
    print(f"{'workload':10s} {'n':>6s} {'mode':20s} {'thr':>3s} "
          f"{'base ms':>9s} {'fresh ms':>9s} {'ratio':>6s}")
    for key in matched:
        base_ms = baseline[key]["ms"]
        fresh_ms = fresh[key]["ms"]
        workload, regions, mode, threads = key
        if base_ms < args.min_ms:
            print(f"{workload:10s} {regions:6d} {mode:20s} {threads:3d} "
                  f"{base_ms:9.2f} {fresh_ms:9.2f}  (below noise floor, "
                  f"skipped)")
            continue
        ratio = fresh_ms / base_ms if base_ms > 0 else float("inf")
        flag = "  << REGRESSION" if ratio > args.threshold else ""
        print(f"{workload:10s} {regions:6d} {mode:20s} {threads:3d} "
              f"{base_ms:9.2f} {fresh_ms:9.2f} {ratio:6.2f}{flag}")
        if ratio > args.threshold:
            regressions.append((key, ratio))

    if regressions:
        print(f"\nperf_smoke: {len(regressions)} row(s) regressed beyond "
              f"{args.threshold:.2f}x:", file=sys.stderr)
        for key, ratio in regressions:
            print(f"  {key}: {ratio:.2f}x", file=sys.stderr)
        sys.exit(1)
    print(f"\nperf_smoke: all {len(matched)} matched rows within "
          f"{args.threshold:.2f}x")


if __name__ == "__main__":
    main()
