// A labelled raster: the stand-in for the image segmentation software the
// paper's §5 names as CARDIRECT's long-term integration target ("a complete
// environment for the management of image configurations"). Synthetic
// shapes are painted onto a grid of integer labels; segmentation/extract.h
// vectorises the labels into REG* regions.

#ifndef CARDIR_SEGMENTATION_RASTER_H_
#define CARDIR_SEGMENTATION_RASTER_H_

#include <vector>

#include "geometry/polygon.h"
#include "util/logging.h"

namespace cardir {

/// A dense width × height grid of integer labels. Label 0 is background by
/// convention. Cell (x, y) covers the unit square [x, x+1) × [y, y+1) in
/// raster coordinates; y grows north, matching the geometry layer.
class Raster {
 public:
  Raster(int width, int height, int background = 0)
      : width_(width),
        height_(height),
        cells_(static_cast<size_t>(width) * static_cast<size_t>(height),
               background) {
    CARDIR_CHECK(width > 0 && height > 0);
  }

  int width() const { return width_; }
  int height() const { return height_; }

  bool InBounds(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  int at(int x, int y) const {
    CARDIR_DCHECK(InBounds(x, y));
    return cells_[Index(x, y)];
  }

  void set(int x, int y, int label) {
    CARDIR_DCHECK(InBounds(x, y));
    cells_[Index(x, y)] = label;
  }

  /// Paints the cell rectangle [x0, x1) × [y0, y1), clipped to the raster.
  void FillRect(int x0, int y0, int x1, int y1, int label);

  /// Paints all cells whose centre lies within `radius` of (cx, cy).
  void FillDisk(double cx, double cy, double radius, int label);

  /// Paints all cells whose centre lies inside the polygon.
  void FillPolygon(const Polygon& polygon, int label);

  /// Distinct labels present, ascending (background 0 excluded).
  std::vector<int> Labels() const;

  /// Number of cells carrying `label`.
  size_t CountLabel(int label) const;

 private:
  size_t Index(int x, int y) const {
    return static_cast<size_t>(y) * static_cast<size_t>(width_) +
           static_cast<size_t>(x);
  }

  int width_;
  int height_;
  std::vector<int> cells_;
};

}  // namespace cardir

#endif  // CARDIR_SEGMENTATION_RASTER_H_
