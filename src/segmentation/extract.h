// Vectorising a labelled raster into REG* regions and CARDIRECT
// configurations (paper §5: "integration of CARDIRECT with image
// segmentation software").
//
// Each label's cell set is converted into a set of axis-aligned rectangles:
// maximal horizontal runs per row, greedily merged with identical runs in
// adjacent rows. The rectangles have pairwise-disjoint interiors and share
// edges, which is exactly the Fig. 2 representation style — so disconnected
// labels and labels with holes come out as valid REG* regions for free.

#ifndef CARDIR_SEGMENTATION_EXTRACT_H_
#define CARDIR_SEGMENTATION_EXTRACT_H_

#include <string>
#include <vector>

#include "cardirect/model.h"
#include "geometry/region.h"
#include "segmentation/raster.h"
#include "util/status.h"

namespace cardir {

/// Vectorises one label. `cell_size` scales raster cells to map units.
/// Fails with kNotFound when the label paints no cell.
Result<Region> ExtractRegion(const Raster& raster, int label,
                             double cell_size = 1.0);

/// Annotation attached to a label during configuration extraction.
struct LabelSpec {
  int label;
  std::string id;
  std::string name;
  std::string color;
};

/// Vectorises every listed label into an annotated CARDIRECT configuration
/// and computes all pairwise relations on the batch engine (`engine`
/// selects threads/prefiltering; the default is single-threaded). Labels
/// missing from the raster are an error; label 0 (background) is not
/// extractable.
Result<Configuration> ExtractConfiguration(const Raster& raster,
                                           const std::vector<LabelSpec>& specs,
                                           double cell_size = 1.0,
                                           const EngineOptions& engine = {});

}  // namespace cardir

#endif  // CARDIR_SEGMENTATION_EXTRACT_H_
