#include "segmentation/raster.h"

#include <algorithm>
#include <set>

namespace cardir {

void Raster::FillRect(int x0, int y0, int x1, int y1, int label) {
  x0 = std::max(x0, 0);
  y0 = std::max(y0, 0);
  x1 = std::min(x1, width_);
  y1 = std::min(y1, height_);
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) set(x, y, label);
  }
}

void Raster::FillDisk(double cx, double cy, double radius, int label) {
  const int x0 = std::max(0, static_cast<int>(cx - radius) - 1);
  const int x1 = std::min(width_, static_cast<int>(cx + radius) + 2);
  const int y0 = std::max(0, static_cast<int>(cy - radius) - 1);
  const int y1 = std::min(height_, static_cast<int>(cy + radius) + 2);
  const double r2 = radius * radius;
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      const double dx = x + 0.5 - cx;
      const double dy = y + 0.5 - cy;
      if (dx * dx + dy * dy <= r2) set(x, y, label);
    }
  }
}

void Raster::FillPolygon(const Polygon& polygon, int label) {
  const Box bounds = polygon.BoundingBox();
  const int x0 = std::max(0, static_cast<int>(bounds.min_x()) - 1);
  const int x1 = std::min(width_, static_cast<int>(bounds.max_x()) + 2);
  const int y0 = std::max(0, static_cast<int>(bounds.min_y()) - 1);
  const int y1 = std::min(height_, static_cast<int>(bounds.max_y()) + 2);
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      if (polygon.Contains(Point(x + 0.5, y + 0.5))) set(x, y, label);
    }
  }
}

std::vector<int> Raster::Labels() const {
  std::set<int> labels(cells_.begin(), cells_.end());
  labels.erase(0);
  return {labels.begin(), labels.end()};
}

size_t Raster::CountLabel(int label) const {
  size_t count = 0;
  for (int cell : cells_) count += (cell == label);
  return count;
}

}  // namespace cardir
