#include "segmentation/extract.h"

#include <optional>

#include "util/string_util.h"

namespace cardir {
namespace {

// A rectangle of cells being grown downward-to-upward across rows.
struct OpenRun {
  int x0;
  int x1;  // Exclusive.
  int y0;
  int y1;  // Exclusive, grows as rows merge.
};

}  // namespace

Result<Region> ExtractRegion(const Raster& raster, int label,
                             double cell_size) {
  if (label == 0) {
    return Status::InvalidArgument("label 0 is the background");
  }
  if (cell_size <= 0.0) {
    return Status::InvalidArgument("cell_size must be positive");
  }
  Region region;
  std::vector<OpenRun> open;  // Runs that may still merge with the next row.
  auto emit = [&region, cell_size](const OpenRun& run) {
    region.AddPolygon(MakeRectangle(run.x0 * cell_size, run.y0 * cell_size,
                                    run.x1 * cell_size, run.y1 * cell_size));
  };
  for (int y = 0; y < raster.height(); ++y) {
    // Collect this row's maximal runs of `label`.
    std::vector<OpenRun> row;
    int x = 0;
    while (x < raster.width()) {
      if (raster.at(x, y) != label) {
        ++x;
        continue;
      }
      const int start = x;
      while (x < raster.width() && raster.at(x, y) == label) ++x;
      row.push_back({start, x, y, y + 1});
    }
    // Merge runs identical in x-extent with an open run ending at this row.
    std::vector<OpenRun> next_open;
    for (OpenRun& run : row) {
      bool merged = false;
      for (OpenRun& candidate : open) {
        if (candidate.y1 == y && candidate.x0 == run.x0 &&
            candidate.x1 == run.x1) {
          candidate.y1 = y + 1;
          next_open.push_back(candidate);
          candidate.y1 = -1;  // Consumed.
          merged = true;
          break;
        }
      }
      if (!merged) next_open.push_back(run);
    }
    for (const OpenRun& run : open) {
      if (run.y1 != -1) emit(run);  // Could not continue: finalise.
    }
    open = std::move(next_open);
  }
  for (const OpenRun& run : open) emit(run);
  if (region.empty()) {
    return Status::NotFound(
        StrFormat("label %d paints no cell in the raster", label));
  }
  return region;
}

Result<Configuration> ExtractConfiguration(const Raster& raster,
                                           const std::vector<LabelSpec>& specs,
                                           double cell_size,
                                           const EngineOptions& engine) {
  Configuration config("segmented-image", "raster");
  for (const LabelSpec& spec : specs) {
    CARDIR_ASSIGN_OR_RETURN(Region geometry,
                            ExtractRegion(raster, spec.label, cell_size));
    AnnotatedRegion region;
    region.id = spec.id;
    region.name = spec.name;
    region.color = spec.color;
    region.geometry = std::move(geometry);
    CARDIR_RETURN_IF_ERROR(config.AddRegion(std::move(region)));
  }
  CARDIR_RETURN_IF_ERROR(config.ComputeAllRelations(engine));
  return config;
}

}  // namespace cardir
