#include "workload/polygon_gen.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "util/logging.h"

namespace cardir {

Polygon RandomRectangle(Rng* rng, const Box& bounds, double min_extent) {
  CARDIR_CHECK(bounds.width() > min_extent && bounds.height() > min_extent);
  const double w = rng->NextDouble(min_extent, bounds.width());
  const double h = rng->NextDouble(min_extent, bounds.height());
  const double x = rng->NextDouble(bounds.min_x(), bounds.max_x() - w);
  const double y = rng->NextDouble(bounds.min_y(), bounds.max_y() - h);
  return MakeRectangle(x, y, x + w, y + h);
}

Polygon RandomConvexPolygon(Rng* rng, int n, const Box& bounds) {
  CARDIR_CHECK(n >= 3);
  CARDIR_CHECK(!bounds.IsEmpty() && !bounds.IsDegenerate());
  // Valtr's algorithm: random x and y coordinates, decomposed into two
  // monotone delta chains each, paired and sorted by angle.
  auto make_deltas = [rng, n]() {
    std::vector<double> values(static_cast<size_t>(n));
    for (double& v : values) v = rng->NextDouble();
    std::sort(values.begin(), values.end());
    const double lo = values.front();
    const double hi = values.back();
    std::vector<double> deltas;
    deltas.reserve(static_cast<size_t>(n));
    double last_top = lo;
    double last_bottom = lo;
    for (int i = 1; i < n - 1; ++i) {
      if (rng->NextBool()) {
        deltas.push_back(values[static_cast<size_t>(i)] - last_top);
        last_top = values[static_cast<size_t>(i)];
      } else {
        deltas.push_back(last_bottom - values[static_cast<size_t>(i)]);
        last_bottom = values[static_cast<size_t>(i)];
      }
    }
    deltas.push_back(hi - last_top);
    deltas.push_back(last_bottom - hi);
    return deltas;
  };
  std::vector<double> dx = make_deltas();
  std::vector<double> dy = make_deltas();
  rng->Shuffle(&dy);
  std::vector<Point> vectors(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    vectors[static_cast<size_t>(i)] =
        Point(dx[static_cast<size_t>(i)], dy[static_cast<size_t>(i)]);
  }
  std::sort(vectors.begin(), vectors.end(), [](const Point& a, const Point& b) {
    return std::atan2(a.y, a.x) < std::atan2(b.y, b.x);
  });
  // Chain the vectors; the result is convex by construction.
  std::vector<Point> ring(static_cast<size_t>(n));
  Point cursor(0.0, 0.0);
  Box extent;
  for (int i = 0; i < n; ++i) {
    ring[static_cast<size_t>(i)] = cursor;
    extent.Extend(cursor);
    cursor = cursor + vectors[static_cast<size_t>(i)];
  }
  // Scale and translate into `bounds`, clamping the floating-point residue
  // of the affine map so the result never escapes the box by an ulp.
  const double sx = bounds.width() / std::max(extent.width(), 1e-12);
  const double sy = bounds.height() / std::max(extent.height(), 1e-12);
  for (Point& p : ring) {
    p.x = std::clamp(bounds.min_x() + (p.x - extent.min_x()) * sx,
                     bounds.min_x(), bounds.max_x());
    p.y = std::clamp(bounds.min_y() + (p.y - extent.min_y()) * sy,
                     bounds.min_y(), bounds.max_y());
  }
  Polygon polygon(std::move(ring));
  polygon.EnsureClockwise();
  return polygon;
}

Polygon RandomStarPolygon(Rng* rng, int n, const Box& bounds,
                          double min_radius_fraction) {
  CARDIR_CHECK(n >= 3);
  CARDIR_CHECK(min_radius_fraction > 0.0 && min_radius_fraction <= 1.0);
  const Point center = bounds.Center();
  const double max_radius = 0.5 * std::min(bounds.width(), bounds.height());
  // Strictly increasing angles: a random positive gap per vertex,
  // normalised to 2π, guarantees simplicity for any n.
  std::vector<double> gaps(static_cast<size_t>(n));
  double total = 0.0;
  for (double& g : gaps) {
    g = 0.05 + rng->NextDouble();  // Bounded away from zero.
    total += g;
  }
  std::vector<Point> ring;
  ring.reserve(static_cast<size_t>(n));
  double angle = rng->NextDouble(0.0, 2.0 * std::numbers::pi);
  for (int i = 0; i < n; ++i) {
    angle += gaps[static_cast<size_t>(i)] / total * 2.0 * std::numbers::pi;
    const double radius =
        max_radius * rng->NextDouble(min_radius_fraction, 1.0);
    ring.push_back(Point(center.x + radius * std::cos(angle),
                         center.y + radius * std::sin(angle)));
  }
  Polygon polygon(std::move(ring));
  polygon.EnsureClockwise();
  return polygon;
}

Polygon RandomPolygon(Rng* rng, PolygonKind kind, int n, const Box& bounds) {
  switch (kind) {
    case PolygonKind::kRectangle: return RandomRectangle(rng, bounds);
    case PolygonKind::kConvex: return RandomConvexPolygon(rng, n, bounds);
    case PolygonKind::kStar: return RandomStarPolygon(rng, n, bounds);
  }
  CARDIR_CHECK(false) << "bad polygon kind";
  return Polygon();
}

}  // namespace cardir
