#include "workload/region_gen.h"

#include <cmath>
#include <vector>

#include "util/logging.h"

namespace cardir {

Region RandomRegion(Rng* rng, const RegionGenOptions& options) {
  CARDIR_CHECK(options.num_polygons >= 1);
  // Layout: ceil(sqrt(k)) × ceil(sqrt(k)) grid; one polygon per cell, in a
  // random sample of cells, with 10% padding so polygons stay disjoint.
  const int k = options.num_polygons;
  const int grid = static_cast<int>(std::ceil(std::sqrt(k)));
  std::vector<int> cells(static_cast<size_t>(grid) * grid);
  for (size_t i = 0; i < cells.size(); ++i) cells[i] = static_cast<int>(i);
  rng->Shuffle(&cells);

  const double cell_w = options.bounds.width() / grid;
  const double cell_h = options.bounds.height() / grid;
  Region region;
  for (int p = 0; p < k; ++p) {
    const int cell = cells[static_cast<size_t>(p)];
    const int cx = cell % grid;
    const int cy = cell / grid;
    const double pad_x = 0.05 * cell_w;
    const double pad_y = 0.05 * cell_h;
    const Box cell_box(options.bounds.min_x() + cx * cell_w + pad_x,
                       options.bounds.min_y() + cy * cell_h + pad_y,
                       options.bounds.min_x() + (cx + 1) * cell_w - pad_x,
                       options.bounds.min_y() + (cy + 1) * cell_h - pad_y);
    region.AddPolygon(RandomPolygon(rng, options.kind,
                                    options.vertices_per_polygon, cell_box));
  }
  return region;
}

Region MakeRingRegion(const Box& outer, const Box& hole) {
  CARDIR_CHECK(outer.Contains(hole));
  CARDIR_CHECK(hole.min_x() > outer.min_x() && hole.max_x() < outer.max_x() &&
               hole.min_y() > outer.min_y() && hole.max_y() < outer.max_y())
      << "hole must be strictly interior";
  Region region;
  // Four bands around the hole; neighbours share edges (Fig. 2 style).
  // South band spans the full width; north band too; west/east bands fill
  // the middle strip.
  region.AddPolygon(MakeRectangle(outer.min_x(), outer.min_y(), outer.max_x(),
                                  hole.min_y()));
  region.AddPolygon(MakeRectangle(outer.min_x(), hole.max_y(), outer.max_x(),
                                  outer.max_y()));
  region.AddPolygon(
      MakeRectangle(outer.min_x(), hole.min_y(), hole.min_x(), hole.max_y()));
  region.AddPolygon(
      MakeRectangle(hole.max_x(), hole.min_y(), outer.max_x(), hole.max_y()));
  return region;
}

Region RandomRingRegion(Rng* rng, const Box& bounds) {
  const double w = bounds.width();
  const double h = bounds.height();
  const double x0 = bounds.min_x() + rng->NextDouble(0.0, 0.2) * w;
  const double x1 = bounds.max_x() - rng->NextDouble(0.0, 0.2) * w;
  const double y0 = bounds.min_y() + rng->NextDouble(0.0, 0.2) * h;
  const double y1 = bounds.max_y() - rng->NextDouble(0.0, 0.2) * h;
  const Box outer(x0, y0, x1, y1);
  const double hx0 = x0 + rng->NextDouble(0.2, 0.4) * (x1 - x0);
  const double hx1 = x1 - rng->NextDouble(0.2, 0.4) * (x1 - x0);
  const double hy0 = y0 + rng->NextDouble(0.2, 0.4) * (y1 - y0);
  const double hy1 = y1 - rng->NextDouble(0.2, 0.4) * (y1 - y0);
  return MakeRingRegion(outer, Box(hx0, hy0, hx1, hy1));
}

}  // namespace cardir
