// Country-like map configurations for the CARDIRECT query benchmarks: many
// named, coloured regions on one canvas, with all pairwise relations
// computed — the workload of the paper's §4 usage scenario at scale.

#ifndef CARDIR_WORKLOAD_SCENARIO_GEN_H_
#define CARDIR_WORKLOAD_SCENARIO_GEN_H_

#include "cardirect/model.h"
#include "util/random.h"
#include "workload/region_gen.h"

namespace cardir {

/// Parameters for GenerateMapConfiguration.
struct ScenarioOptions {
  int num_regions = 16;
  int polygons_per_region = 1;
  int vertices_per_polygon = 8;
  /// Thematic palette cycled through the regions.
  std::vector<std::string> colors = {"red", "blue", "green", "black"};
  Box canvas = Box(0.0, 0.0, 1000.0, 1000.0);
  /// Compute and store all pairwise relations (n·(n−1) records).
  bool compute_relations = true;
  /// Engine options (threads, prefilter) for the relation computation.
  EngineOptions engine;
};

/// A configuration with `num_regions` regions named "region<k>" placed in
/// disjoint canvas cells.
Result<Configuration> GenerateMapConfiguration(Rng* rng,
                                               const ScenarioOptions& options);

}  // namespace cardir

#endif  // CARDIR_WORKLOAD_SCENARIO_GEN_H_
