// Random polygon generators for benchmarks and property tests.
//
// All generators return *simple* polygons in the canonical clockwise
// orientation, with exactly the requested number of vertices, so benchmark
// edge counts are exact.

#ifndef CARDIR_WORKLOAD_POLYGON_GEN_H_
#define CARDIR_WORKLOAD_POLYGON_GEN_H_

#include "geometry/box.h"
#include "geometry/polygon.h"
#include "util/random.h"

namespace cardir {

/// Uniformly random axis-aligned rectangle inside `bounds` with width and
/// height at least `min_extent`.
Polygon RandomRectangle(Rng* rng, const Box& bounds, double min_extent = 1.0);

/// Random convex polygon with exactly `n` (≥ 3) vertices inside `bounds`
/// (Valtr's algorithm: uniformly random convex position sets).
Polygon RandomConvexPolygon(Rng* rng, int n, const Box& bounds);

/// Random star-shaped simple polygon with exactly `n` (≥ 3) vertices:
/// sorted random angles around `bounds`' centre with radii in
/// [min_radius_fraction, 1] × (half the smaller extent). Star-shaped
/// polygons are always simple and support arbitrary vertex counts — the
/// workhorse for the linear-scaling benchmarks (E6/E7/E13).
Polygon RandomStarPolygon(Rng* rng, int n, const Box& bounds,
                          double min_radius_fraction = 0.3);

/// What RandomPolygon should produce.
enum class PolygonKind {
  kRectangle,
  kConvex,
  kStar,
};

/// Dispatches on `kind` (rectangles ignore `n`).
Polygon RandomPolygon(Rng* rng, PolygonKind kind, int n, const Box& bounds);

}  // namespace cardir

#endif  // CARDIR_WORKLOAD_POLYGON_GEN_H_
