// Random composite-region (REG*) generators.
//
// Regions are built from polygons placed in disjoint cells of a jittered
// layout grid, so member polygons never overlap — the representation
// invariant of geometry/region.h holds by construction. Regions with holes
// are produced by the band decomposition of Fig. 2 (a ring represented as
// simple polygons sharing edges).

#ifndef CARDIR_WORKLOAD_REGION_GEN_H_
#define CARDIR_WORKLOAD_REGION_GEN_H_

#include "geometry/region.h"
#include "workload/polygon_gen.h"

namespace cardir {

/// Parameters for RandomRegion.
struct RegionGenOptions {
  /// Number of disjoint polygons (1 = connected region in REG).
  int num_polygons = 1;
  /// Vertices per polygon (ignored for rectangles).
  int vertices_per_polygon = 8;
  PolygonKind kind = PolygonKind::kStar;
  /// Overall placement area.
  Box bounds = Box(0.0, 0.0, 100.0, 100.0);
};

/// A REG* region with `num_polygons` disjoint polygons inside
/// `options.bounds`.
Region RandomRegion(Rng* rng, const RegionGenOptions& options);

/// A rectangular ring (region with a hole): outer box minus a strictly
/// interior hole, decomposed into four simple band rectangles (N, S, W, E of
/// the hole) that share edges — the Fig. 2 representation style.
Region MakeRingRegion(const Box& outer, const Box& hole);

/// Random ring region inside `bounds`.
Region RandomRingRegion(Rng* rng, const Box& bounds);

}  // namespace cardir

#endif  // CARDIR_WORKLOAD_REGION_GEN_H_
