#include "workload/scenario_gen.h"

#include <cmath>

#include "util/string_util.h"

namespace cardir {

Result<Configuration> GenerateMapConfiguration(Rng* rng,
                                               const ScenarioOptions& options) {
  Configuration config("generated-map", "generated-map.png");
  const int k = options.num_regions;
  const int grid = static_cast<int>(std::ceil(std::sqrt(k)));
  const double cell_w = options.canvas.width() / grid;
  const double cell_h = options.canvas.height() / grid;
  for (int i = 0; i < k; ++i) {
    const int cx = i % grid;
    const int cy = i / grid;
    RegionGenOptions region_options;
    region_options.num_polygons = options.polygons_per_region;
    region_options.vertices_per_polygon = options.vertices_per_polygon;
    region_options.bounds =
        Box(options.canvas.min_x() + cx * cell_w + 0.05 * cell_w,
            options.canvas.min_y() + cy * cell_h + 0.05 * cell_h,
            options.canvas.min_x() + (cx + 1) * cell_w - 0.05 * cell_w,
            options.canvas.min_y() + (cy + 1) * cell_h - 0.05 * cell_h);
    AnnotatedRegion region;
    region.id = StrFormat("region%d", i);
    region.name = StrFormat("Region %d", i);
    region.color = options.colors.empty()
                       ? ""
                       : options.colors[static_cast<size_t>(i) %
                                        options.colors.size()];
    region.geometry = RandomRegion(rng, region_options);
    CARDIR_RETURN_IF_ERROR(config.AddRegion(std::move(region)));
  }
  if (options.compute_relations) {
    CARDIR_RETURN_IF_ERROR(config.ComputeAllRelations(options.engine));
  }
  return config;
}

}  // namespace cardir
