// Filter-and-refine directional query processing over a CARDIRECT
// configuration, in the style of the MBR/R-tree study of ref [13]:
//
//   filter  — an R-tree over the regions' bounding boxes prunes candidates
//             with two necessary MBB conditions derived from the requested
//             relation R w.r.t. the reference region b:
//               (1) mbb(a) ⊆ hull(tiles of R)  (a lies in the tiles of R),
//               (2) mbb(a) intersects every tile of R (a has a part there);
//   refine  — survivors run the exact Compute-CDR and are kept when their
//             relation matches.
//
// Answers the CARDIRECT query primitive "find all regions related to b by
// R" without the nested loop over all pairs.

#ifndef CARDIR_INDEX_DIRECTIONAL_QUERY_H_
#define CARDIR_INDEX_DIRECTIONAL_QUERY_H_

#include <string>
#include <vector>

#include "cardirect/model.h"
#include "core/cardinal_relation.h"
#include "index/rtree.h"
#include "reasoning/disjunctive_relation.h"

namespace cardir {

/// Instrumentation of one query: how much the index pruned.
struct DirectionalQueryStats {
  size_t index_candidates = 0;  ///< Entries returned by the R-tree search.
  size_t refined = 0;           ///< Candidates that ran Compute-CDR.
  size_t results = 0;
};

/// An R-tree-backed directional query engine over one configuration. The
/// configuration must outlive the index; rebuild after mutations.
class DirectionalIndex {
 public:
  /// Indexes every region's bounding box. Fails when the configuration has
  /// invalid regions.
  static Result<DirectionalIndex> Build(const Configuration& configuration);

  /// Ids of all regions a (≠ reference) with `a R reference` exactly.
  Result<std::vector<std::string>> FindExact(
      const std::string& reference_id, const CardinalRelation& relation,
      DirectionalQueryStats* stats = nullptr) const;

  /// Ids of all regions whose relation to the reference is a member of the
  /// disjunction.
  Result<std::vector<std::string>> FindMatching(
      const std::string& reference_id, const DisjunctiveRelation& relation,
      DirectionalQueryStats* stats = nullptr) const;

  size_t size() const { return tree_.size(); }

  /// The necessary-condition boxes for relation `relation` against a
  /// reference mbb: the hull of the relation's tiles and the per-tile
  /// boxes. Exposed for tests. Unbounded tile sides are clamped to
  /// ±kUnboundedExtent.
  static Box TileHull(const CardinalRelation& relation, const Box& mbb);
  static Box TileBox(Tile tile, const Box& mbb);

  /// Coordinate used to represent the unbounded side of a peripheral tile.
  static constexpr double kUnboundedExtent = 1e30;

 private:
  explicit DirectionalIndex(const Configuration& configuration)
      : configuration_(&configuration) {}

  const Configuration* configuration_;
  RTree tree_;
  /// R-tree id -> region (pointers into the configuration; stable because
  /// the configuration must not be mutated while the index lives).
  std::vector<const AnnotatedRegion*> regions_;
};

}  // namespace cardir

#endif  // CARDIR_INDEX_DIRECTIONAL_QUERY_H_
