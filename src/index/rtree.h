// An R-tree over axis-aligned boxes (Guttman's original design with the
// quadratic split heuristic) — the indexing substrate of the paper's
// spatial-database setting (ref [13] studies directional relations "in the
// world of minimum bounding rectangles ... with R-trees"). Used by
// index/directional_query.h to answer CARDIRECT direction queries with a
// filter-and-refine plan instead of a nested loop.

#ifndef CARDIR_INDEX_RTREE_H_
#define CARDIR_INDEX_RTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "geometry/box.h"
#include "util/status.h"

namespace cardir {

/// R-tree mapping boxes to opaque int64 ids. Supports insertion and
/// intersection search; bulk deletion is out of scope for this workload
/// (indexes are rebuilt per configuration).
class RTree {
 public:
  /// `max_entries` per node (≥ 4); min fill is max/2.
  explicit RTree(int max_entries = 8);
  ~RTree();

  RTree(RTree&&) noexcept;
  RTree& operator=(RTree&&) noexcept;
  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  /// Inserts an entry. Empty boxes are rejected with kInvalidArgument.
  Status Insert(const Box& box, int64_t id);

  /// Bulk-loads entries with the Sort-Tile-Recursive packing (Leutenegger
  /// et al.): entries are sorted into √(n/M) × √(n/M) tiles by x then y and
  /// packed into full leaves, giving near-100% fill and tighter covers than
  /// repeated insertion. Requires an empty tree; empty boxes are rejected.
  Status BulkLoad(std::vector<std::pair<Box, int64_t>> entries);

  /// Invokes `visit` for every entry whose box intersects `query`.
  void Search(const Box& query,
              const std::function<void(const Box&, int64_t)>& visit) const;

  /// Convenience: ids of all entries intersecting `query` (unsorted).
  std::vector<int64_t> SearchIds(const Box& query) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Height of the tree (0 for empty, 1 for a single leaf).
  int height() const;

  /// Bounding box over all entries (empty box when empty).
  Box bounds() const;

  /// Structural validation for tests: children covered by parent boxes,
  /// fill factors within limits, all leaves at the same depth, and the
  /// entry count consistent.
  Status CheckInvariants() const;

 private:
  struct Node;

  // Insertion helpers (defined in rtree.cc).
  Node* ChooseLeaf(const Box& box) const;
  void SplitAndPropagate(Node* node);

  // Recursive node + payload-capacity byte count (memory telemetry).
  static size_t NodeBytes(const Node& node);

  int max_entries_;
  int min_entries_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  // Bytes charged to the mem.rtree arena. Measured once at the end of
  // BulkLoad (the engine-scale build path) and released on destruction;
  // insert-built trees stay uncharged rather than paying an O(n) walk per
  // insertion.
  size_t tracked_bytes_ = 0;
  // STR packing legitimately leaves one underfull node per level; the
  // invariant checker relaxes the min-fill rule for bulk-loaded trees.
  bool bulk_loaded_ = false;
};

}  // namespace cardir

#endif  // CARDIR_INDEX_RTREE_H_
