#include "index/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/memstats.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace cardir {

namespace {

// Area increase of `box` needed to cover `addition`.
double Enlargement(const Box& box, const Box& addition) {
  Box grown = box;
  grown.Extend(addition);
  return grown.area() - box.area();
}

}  // namespace

struct RTree::Node {
  bool leaf = true;
  Node* parent = nullptr;
  // Leaf: boxes/ids parallel arrays. Internal: boxes/children.
  std::vector<Box> boxes;
  std::vector<int64_t> ids;
  std::vector<std::unique_ptr<Node>> children;

  Box Cover() const {
    Box cover;
    for (const Box& b : boxes) cover.Extend(b);
    return cover;
  }
};

RTree::RTree(int max_entries)
    : max_entries_(max_entries),
      min_entries_(max_entries / 2),
      root_(std::make_unique<Node>()) {
  CARDIR_CHECK(max_entries >= 4) << "R-tree nodes need at least 4 slots";
}

RTree::~RTree() {
  if (tracked_bytes_ != 0) CARDIR_MEMSTAT_FREE("rtree", tracked_bytes_);
}

// Hand-written moves: the default would leave tracked_bytes_ behind in the
// source, whose destructor would then release the same bytes twice.
RTree::RTree(RTree&& other) noexcept
    : max_entries_(other.max_entries_),
      min_entries_(other.min_entries_),
      root_(std::move(other.root_)),
      size_(other.size_),
      tracked_bytes_(other.tracked_bytes_),
      bulk_loaded_(other.bulk_loaded_) {
  other.size_ = 0;
  other.tracked_bytes_ = 0;
  other.root_ = std::make_unique<Node>();
  other.bulk_loaded_ = false;
}

RTree& RTree::operator=(RTree&& other) noexcept {
  if (this == &other) return *this;
  if (tracked_bytes_ != 0) CARDIR_MEMSTAT_FREE("rtree", tracked_bytes_);
  max_entries_ = other.max_entries_;
  min_entries_ = other.min_entries_;
  root_ = std::move(other.root_);
  size_ = other.size_;
  tracked_bytes_ = other.tracked_bytes_;
  bulk_loaded_ = other.bulk_loaded_;
  other.size_ = 0;
  other.tracked_bytes_ = 0;
  other.root_ = std::make_unique<Node>();
  other.bulk_loaded_ = false;
  return *this;
}

size_t RTree::NodeBytes(const Node& node) {
  size_t bytes = sizeof(Node) + node.boxes.capacity() * sizeof(Box) +
                 node.ids.capacity() * sizeof(int64_t) +
                 node.children.capacity() * sizeof(std::unique_ptr<Node>);
  for (const std::unique_ptr<Node>& child : node.children) {
    bytes += NodeBytes(*child);
  }
  return bytes;
}

RTree::Node* RTree::ChooseLeaf(const Box& box) const {
  Node* node = root_.get();
  while (!node->leaf) {
    // Least enlargement, ties by smallest area (Guttman's ChooseLeaf).
    size_t best = 0;
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < node->boxes.size(); ++i) {
      const double enlargement = Enlargement(node->boxes[i], box);
      const double area = node->boxes[i].area();
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && area < best_area)) {
        best = i;
        best_enlargement = enlargement;
        best_area = area;
      }
    }
    node = node->children[best].get();
  }
  return node;
}

void RTree::SplitAndPropagate(Node* node) {
  while (node != nullptr &&
         static_cast<int>(node->boxes.size()) > max_entries_) {
    // --- Quadratic split ------------------------------------------------
    const size_t n = node->boxes.size();
    // PickSeeds: the pair wasting the most area together.
    size_t seed_a = 0, seed_b = 1;
    double worst_waste = -std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        Box joint = node->boxes[i];
        joint.Extend(node->boxes[j]);
        const double waste =
            joint.area() - node->boxes[i].area() - node->boxes[j].area();
        if (waste > worst_waste) {
          worst_waste = waste;
          seed_a = i;
          seed_b = j;
        }
      }
    }
    // Distribute entries into two groups.
    std::vector<int> group(n, -1);
    group[seed_a] = 0;
    group[seed_b] = 1;
    Box cover[2] = {node->boxes[seed_a], node->boxes[seed_b]};
    int count[2] = {1, 1};
    for (size_t assigned = 2; assigned < n; ++assigned) {
      // If one group must take all remaining entries to reach min fill, do
      // so (Guttman's stopping rule).
      const int remaining = static_cast<int>(n - assigned);
      int forced = -1;
      if (count[0] + remaining == min_entries_) forced = 0;
      if (count[1] + remaining == min_entries_) forced = 1;
      // PickNext: entry with the greatest preference difference.
      size_t pick = 0;
      double best_diff = -1.0;
      for (size_t i = 0; i < n; ++i) {
        if (group[i] != -1) continue;
        const double d0 = Enlargement(cover[0], node->boxes[i]);
        const double d1 = Enlargement(cover[1], node->boxes[i]);
        const double diff = std::abs(d0 - d1);
        if (diff > best_diff) {
          best_diff = diff;
          pick = i;
        }
      }
      int target;
      if (forced >= 0) {
        target = forced;
      } else {
        const double d0 = Enlargement(cover[0], node->boxes[pick]);
        const double d1 = Enlargement(cover[1], node->boxes[pick]);
        if (d0 != d1) {
          target = d0 < d1 ? 0 : 1;
        } else if (cover[0].area() != cover[1].area()) {
          target = cover[0].area() < cover[1].area() ? 0 : 1;
        } else {
          target = count[0] <= count[1] ? 0 : 1;
        }
      }
      group[pick] = target;
      cover[target].Extend(node->boxes[pick]);
      ++count[target];
    }
    // Materialise the sibling (group 1); keep group 0 in `node`.
    auto sibling = std::make_unique<Node>();
    sibling->leaf = node->leaf;
    Node* sibling_raw = sibling.get();
    std::vector<Box> kept_boxes;
    std::vector<int64_t> kept_ids;
    std::vector<std::unique_ptr<Node>> kept_children;
    for (size_t i = 0; i < n; ++i) {
      if (group[i] == 0) {
        kept_boxes.push_back(node->boxes[i]);
        if (node->leaf) {
          kept_ids.push_back(node->ids[i]);
        } else {
          kept_children.push_back(std::move(node->children[i]));
        }
      } else {
        sibling->boxes.push_back(node->boxes[i]);
        if (node->leaf) {
          sibling->ids.push_back(node->ids[i]);
        } else {
          sibling->children.push_back(std::move(node->children[i]));
        }
      }
    }
    node->boxes = std::move(kept_boxes);
    node->ids = std::move(kept_ids);
    node->children = std::move(kept_children);
    for (auto& child : node->children) child->parent = node;
    for (auto& child : sibling->children) child->parent = sibling_raw;

    Node* parent = node->parent;
    if (parent == nullptr) {
      // Grow a new root.
      auto new_root = std::make_unique<Node>();
      new_root->leaf = false;
      std::unique_ptr<Node> old_root = std::move(root_);
      old_root->parent = new_root.get();
      sibling->parent = new_root.get();
      new_root->boxes.push_back(old_root->Cover());
      new_root->children.push_back(std::move(old_root));
      new_root->boxes.push_back(sibling->Cover());
      new_root->children.push_back(std::move(sibling));
      root_ = std::move(new_root);
      return;
    }
    // Update the parent: refresh this node's box, append the sibling.
    for (size_t i = 0; i < parent->children.size(); ++i) {
      if (parent->children[i].get() == node) {
        parent->boxes[i] = node->Cover();
        break;
      }
    }
    sibling->parent = parent;
    parent->boxes.push_back(sibling->Cover());
    parent->children.push_back(std::move(sibling));
    node = parent;  // The parent may now overflow.
  }
  // Tighten covers up to the root.
  while (node != nullptr) {
    Node* parent = node->parent;
    if (parent != nullptr) {
      for (size_t i = 0; i < parent->children.size(); ++i) {
        if (parent->children[i].get() == node) {
          parent->boxes[i] = node->Cover();
          break;
        }
      }
    }
    node = parent;
  }
}

Status RTree::Insert(const Box& box, int64_t id) {
  if (box.IsEmpty()) {
    return Status::InvalidArgument("cannot index an empty box");
  }
  Node* leaf = ChooseLeaf(box);
  leaf->boxes.push_back(box);
  leaf->ids.push_back(id);
  ++size_;
  SplitAndPropagate(leaf);
  return Status::Ok();
}

Status RTree::BulkLoad(std::vector<std::pair<Box, int64_t>> entries) {
  if (size_ != 0) {
    return Status::FailedPrecondition("BulkLoad requires an empty tree");
  }
  for (const auto& [box, id] : entries) {
    if (box.IsEmpty()) {
      return Status::InvalidArgument("cannot index an empty box");
    }
  }
  if (entries.empty()) return Status::Ok();

  // --- STR leaf packing ----------------------------------------------------
  // Vertical slices of S = ceil(sqrt(n / M)) run-lengths by x-centre, each
  // slice sorted by y-centre and chopped into full leaves.
  const size_t n = entries.size();
  const size_t per_node = static_cast<size_t>(max_entries_);
  const size_t num_leaves = (n + per_node - 1) / per_node;
  const size_t num_slices =
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const size_t slice_size =
      ((num_leaves + num_slices - 1) / num_slices) * per_node;
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              return a.first.Center().x < b.first.Center().x;
            });
  std::vector<std::unique_ptr<Node>> level;
  for (size_t slice_start = 0; slice_start < n; slice_start += slice_size) {
    const size_t slice_end = std::min(n, slice_start + slice_size);
    std::sort(entries.begin() + static_cast<ptrdiff_t>(slice_start),
              entries.begin() + static_cast<ptrdiff_t>(slice_end),
              [](const auto& a, const auto& b) {
                return a.first.Center().y < b.first.Center().y;
              });
    for (size_t i = slice_start; i < slice_end; i += per_node) {
      auto leaf = std::make_unique<Node>();
      leaf->leaf = true;
      for (size_t j = i; j < std::min(slice_end, i + per_node); ++j) {
        leaf->boxes.push_back(entries[j].first);
        leaf->ids.push_back(entries[j].second);
      }
      level.push_back(std::move(leaf));
    }
  }
  size_ = n;
  bulk_loaded_ = true;
  CARDIR_METRIC_COUNT("index.rtree.bulk_loads", 1);
  CARDIR_METRIC_COUNT("index.rtree.bulk_loaded_entries", n);

  // --- Pack upper levels the same way (nodes are already spatially
  // coherent, so packing in order suffices) --------------------------------
  while (level.size() > 1) {
    std::vector<std::unique_ptr<Node>> parents;
    for (size_t i = 0; i < level.size(); i += per_node) {
      auto parent = std::make_unique<Node>();
      parent->leaf = false;
      for (size_t j = i; j < std::min(level.size(), i + per_node); ++j) {
        parent->boxes.push_back(level[j]->Cover());
        level[j]->parent = parent.get();
        parent->children.push_back(std::move(level[j]));
      }
      parents.push_back(std::move(parent));
    }
    level = std::move(parents);
  }
  root_ = std::move(level.front());
  root_->parent = nullptr;
  tracked_bytes_ = NodeBytes(*root_);
  CARDIR_MEMSTAT_ALLOC("rtree", tracked_bytes_);
  return Status::Ok();
}

void RTree::Search(
    const Box& query,
    const std::function<void(const Box&, int64_t)>& visit) const {
  if (query.IsEmpty() || size_ == 0) return;
  CARDIR_METRIC_COUNT("index.rtree.searches", 1);
  size_t nodes_visited = 0;  // Aggregated locally, flushed once per search.
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++nodes_visited;
    for (size_t i = 0; i < node->boxes.size(); ++i) {
      if (!node->boxes[i].Intersects(query)) continue;
      if (node->leaf) {
        visit(node->boxes[i], node->ids[i]);
      } else {
        stack.push_back(node->children[i].get());
      }
    }
  }
  CARDIR_METRIC_COUNT("index.rtree.nodes_visited", nodes_visited);
}

std::vector<int64_t> RTree::SearchIds(const Box& query) const {
  std::vector<int64_t> ids;
  Search(query, [&ids](const Box&, int64_t id) { ids.push_back(id); });
  return ids;
}

int RTree::height() const {
  if (size_ == 0) return 0;
  int h = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children.front().get();
    ++h;
  }
  return h;
}

Box RTree::bounds() const { return root_->Cover(); }

Status RTree::CheckInvariants() const {
  size_t counted = 0;
  int leaf_depth = -1;
  // (node, depth) walk.
  std::vector<std::pair<const Node*, int>> stack = {{root_.get(), 1}};
  while (!stack.empty()) {
    const auto [node, depth] = stack.back();
    stack.pop_back();
    const size_t entries = node->boxes.size();
    if (static_cast<int>(entries) > max_entries_) {
      return Status::Internal("node over capacity");
    }
    if (!bulk_loaded_ && node != root_.get() &&
        static_cast<int>(entries) < min_entries_) {
      return Status::Internal("node under min fill");
    }
    if (node->leaf) {
      if (node->ids.size() != entries) {
        return Status::Internal("leaf ids/boxes length mismatch");
      }
      if (leaf_depth == -1) leaf_depth = depth;
      if (leaf_depth != depth) {
        return Status::Internal("leaves at different depths");
      }
      counted += entries;
    } else {
      if (node->children.size() != entries) {
        return Status::Internal("internal children/boxes length mismatch");
      }
      for (size_t i = 0; i < entries; ++i) {
        const Node* child = node->children[i].get();
        if (child->parent != node) {
          return Status::Internal("broken parent pointer");
        }
        if (!node->boxes[i].Contains(child->Cover())) {
          return Status::Internal("parent box does not cover child");
        }
        stack.push_back({child, depth + 1});
      }
    }
  }
  if (counted != size_) {
    return Status::Internal(
        StrFormat("size mismatch: counted %zu, recorded %zu", counted, size_));
  }
  return Status::Ok();
}

}  // namespace cardir
