#include "index/directional_query.h"

#include <algorithm>

#include "core/compute_cdr.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace cardir {

Box DirectionalIndex::TileBox(Tile tile, const Box& mbb) {
  double x0 = mbb.min_x(), x1 = mbb.max_x();
  double y0 = mbb.min_y(), y1 = mbb.max_y();
  switch (ColumnOf(tile)) {
    case TileColumn::kWest: x1 = mbb.min_x(); x0 = -kUnboundedExtent; break;
    case TileColumn::kMiddle: break;
    case TileColumn::kEast: x0 = mbb.max_x(); x1 = kUnboundedExtent; break;
  }
  switch (RowOf(tile)) {
    case TileRow::kSouth: y1 = mbb.min_y(); y0 = -kUnboundedExtent; break;
    case TileRow::kMiddle: break;
    case TileRow::kNorth: y0 = mbb.max_y(); y1 = kUnboundedExtent; break;
  }
  return Box(x0, y0, x1, y1);
}

Box DirectionalIndex::TileHull(const CardinalRelation& relation,
                               const Box& mbb) {
  Box hull;
  for (Tile t : relation.Tiles()) hull.Extend(TileBox(t, mbb));
  return hull;
}

Result<DirectionalIndex> DirectionalIndex::Build(
    const Configuration& configuration) {
  DirectionalIndex index(configuration);
  std::vector<std::pair<Box, int64_t>> entries;
  entries.reserve(configuration.regions().size());
  for (const AnnotatedRegion& region : configuration.regions()) {
    CARDIR_RETURN_IF_ERROR(region.geometry.Validate());
    const int64_t id = static_cast<int64_t>(index.regions_.size());
    index.regions_.push_back(&region);
    entries.emplace_back(region.geometry.BoundingBox(), id);
  }
  CARDIR_RETURN_IF_ERROR(index.tree_.BulkLoad(std::move(entries)));
  return index;
}

Result<std::vector<std::string>> DirectionalIndex::FindMatching(
    const std::string& reference_id, const DisjunctiveRelation& relation,
    DirectionalQueryStats* stats) const {
  CARDIR_TRACE_SPAN("index.query");
  const AnnotatedRegion* reference = configuration_->FindRegion(reference_id);
  if (reference == nullptr) {
    return Status::NotFound("no region with id '" + reference_id + "'");
  }
  const Box mbb = reference->geometry.BoundingBox();

  // Filter geometry: the union of per-disjunct hulls, plus per-disjunct
  // necessary conditions applied below.
  Box search_box;
  std::vector<std::pair<CardinalRelation, Box>> disjunct_hulls;
  for (const CardinalRelation& r : relation.Relations()) {
    const Box hull = TileHull(r, mbb);
    disjunct_hulls.emplace_back(r, hull);
    search_box.Extend(hull);
  }
  DirectionalQueryStats local_stats;
  std::vector<std::string> results;
  if (!disjunct_hulls.empty()) {
    tree_.Search(search_box, [&](const Box& candidate_box, int64_t id) {
      const AnnotatedRegion* candidate = regions_[static_cast<size_t>(id)];
      if (candidate == reference) return;
      ++local_stats.index_candidates;
      // Necessary conditions for at least one disjunct.
      bool plausible = false;
      for (const auto& [r, hull] : disjunct_hulls) {
        if (!hull.Contains(candidate_box)) continue;
        bool hits_all_tiles = true;
        for (Tile t : r.Tiles()) {
          if (!candidate_box.Intersects(TileBox(t, mbb))) {
            hits_all_tiles = false;
            break;
          }
        }
        if (hits_all_tiles) {
          plausible = true;
          break;
        }
      }
      if (!plausible) return;
      ++local_stats.refined;
      auto actual = ComputeCdr(candidate->geometry, reference->geometry);
      CARDIR_CHECK(actual.ok()) << actual.status();  // Validated at Build().
      if (relation.Contains(*actual)) {
        results.push_back(candidate->id);
      }
    });
  }
  std::sort(results.begin(), results.end());
  local_stats.results = results.size();
  CARDIR_METRIC_COUNT("index.queries", 1);
  CARDIR_METRIC_COUNT("index.query.candidates", local_stats.index_candidates);
  CARDIR_METRIC_COUNT("index.query.refined", local_stats.refined);
  CARDIR_METRIC_COUNT("index.query.results", local_stats.results);
  if (stats != nullptr) *stats = local_stats;
  return results;
}

Result<std::vector<std::string>> DirectionalIndex::FindExact(
    const std::string& reference_id, const CardinalRelation& relation,
    DirectionalQueryStats* stats) const {
  if (relation.IsEmpty()) {
    return Status::InvalidArgument("empty relation");
  }
  return FindMatching(reference_id, DisjunctiveRelation(relation), stats);
}

}  // namespace cardir
