// A fixed-size thread pool with chunked work stealing, sized for the batch
// relation engine's all-pairs workloads (many uniform tasks, a few of which
// are much heavier than the rest).
//
// ParallelFor partitions the index space [0, count) into one contiguous
// shard per participant (the calling thread works too). Each shard is
// drained front-to-back in chunks claimed with an atomic fetch-add; a
// participant that exhausts its own shard steals chunks from the other
// shards the same way. Chunk claiming is the only synchronisation on the
// hot path, so the schedule is nondeterministic — callers must make the
// *results* order-independent (the engine writes each pair's record into a
// precomputed slot).

#ifndef CARDIR_ENGINE_THREAD_POOL_H_
#define CARDIR_ENGINE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cardir {

class ThreadPool {
 public:
  /// A pool with `threads` participants in total (the caller counts as one,
  /// so `threads - 1` worker threads are spawned). Values < 1 are clamped
  /// to 1; a 1-thread pool runs everything inline on the caller.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()) + 1; }

  /// Invokes `body(begin, end)` over disjoint chunks that exactly cover
  /// [0, count), from this thread and the workers, and blocks until all
  /// chunks have run. `chunk_size` 0 picks a size that gives every
  /// participant several chunks to steal. `body` must be safe to call
  /// concurrently from multiple threads. Not reentrant.
  void ParallelFor(size_t count, size_t chunk_size,
                   const std::function<void(size_t, size_t)>& body);

  /// As above, but `body(begin, end, participant)` also receives the stable
  /// participant index in [0, thread_count()) of the thread running the
  /// chunk (the caller is participant 0), so callers can keep per-thread
  /// scratch without thread_local state: a participant never runs two
  /// chunks concurrently, even when it steals.
  void ParallelFor(size_t count, size_t chunk_size,
                   const std::function<void(size_t, size_t, size_t)>& body);

  /// Threads to use for `requested` (0 means "all hardware threads").
  /// When hardware_concurrency() is unhelpful (0 or 1 — containers and
  /// restricted cgroups routinely report either), a positive integer in the
  /// CARDIR_THREADS environment variable overrides it.
  static int ResolveThreadCount(int requested);

 private:
  // One shard of the current job's index space. Padded so that concurrent
  // fetch-adds on neighbouring shards do not false-share a cache line.
  struct alignas(64) Shard {
    std::atomic<size_t> next{0};
    size_t end = 0;
  };

  void WorkerLoop(size_t participant);
  void RunParticipant(size_t participant);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable job_ready_;
  std::condition_variable job_done_;
  uint64_t generation_ = 0;
  int workers_running_ = 0;
  bool stopping_ = false;

  // Current job (valid while workers_running_ > 0 or the caller is inside
  // ParallelFor).
  std::vector<Shard> shards_;
  size_t chunk_size_ = 1;
  const std::function<void(size_t, size_t, size_t)>* body_ = nullptr;
};

}  // namespace cardir

#endif  // CARDIR_ENGINE_THREAD_POOL_H_
