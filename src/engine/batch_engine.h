// The batch relation engine: computes the full ordered-pair cardinal
// direction relation matrix of a set of regions, in parallel, with MBB
// prefiltering.
//
// Pipeline (see src/engine/README.md):
//   plan     — build a struct-of-arrays profile of the regions' mbb bounds
//              (engine/interval_kernel.h) once per run.
//   classify — a work-stealing thread pool processes references in chunks;
//              for each reference, two branch-free passes over the profile
//              classify every primary's x and y extent into interval
//              classes, and a 16-entry table maps each class pair to either
//              a single-tile relation (sunk inline, O(1)) or "needs the
//              full algorithm" (deferred to the crossing queue).
//   compute  — the deferred pairs — the ones whose mbb properly crosses a
//              reference line — are drained with fine-grained chunks, each
//              running Compute-CDR with per-thread scratch reuse.
//   merge    — each pair's result is written into its precomputed slot of a
//              flat output vector in canonical (primary, reference) order,
//              so the output is bit-identical for every thread count and
//              interleaving.
//
// The engine works on geometry-level inputs (it sits below the CARDIRECT
// configuration model); Configuration::ComputeAllRelations adapts it to
// annotated regions.

#ifndef CARDIR_ENGINE_BATCH_ENGINE_H_
#define CARDIR_ENGINE_BATCH_ENGINE_H_

#include <cstdint>
#include <iterator>
#include <memory>
#include <vector>

#include "core/cardinal_relation.h"
#include "geometry/region.h"
#include "obs/memstats.h"
#include "util/status.h"

namespace cardir {

/// Tuning knobs for the engine.
struct EngineOptions {
  /// Total threads, including the calling thread. 0 = all hardware threads.
  int threads = 1;
  /// Resolve tile-separated pairs from the boxes alone. Disable only to
  /// benchmark or cross-check the full algorithm.
  bool use_prefilter = true;
  /// References per work-stealing chunk in the classification phase; 0
  /// picks a size automatically.
  size_t chunk_size = 0;
  /// Deferred pairs per chunk when draining the crossing queue (each entry
  /// is a full Compute-CDR, so this grain is much finer than chunk_size);
  /// 0 picks a size automatically.
  size_t crossing_chunk_size = 0;
  /// Maximum pairs the shared crossing queue may hold (8 bytes each). The
  /// queue's backing store is reserved at this size up front and charged to
  /// mem.crossing_queue once, so its footprint is a fixed, workload-
  /// independent budget instead of growing with every spilled pair (the
  /// unbounded queue scales as the crossing count — O(n^1.5) on map
  /// workloads). Spills beyond the cap are computed inline by the spilling
  /// participant (counted in engine.crossing_queue.overflow), trading phase-
  /// 2's finer load balancing for bounded memory; results are identical
  /// either way. 0 picks min(n·(n−1), threads · 65536).
  size_t crossing_queue_capacity = 0;
};

/// Instrumentation of one engine run.
struct EngineStats {
  size_t total_pairs = 0;        ///< n·(n−1) ordered pairs.
  size_t prefiltered_pairs = 0;  ///< Resolved from the mbbs alone.
  size_t computed_pairs = 0;     ///< Ran the full Compute-CDR.
  size_t crossing_pairs = 0;     ///< Flagged by the planner's line queries.
  int threads_used = 1;
};

/// One entry of the relation matrix: regions are identified by their index
/// in the input vector.
struct PairRelation {
  uint32_t primary = 0;
  uint32_t reference = 0;
  CardinalRelation relation;
};

/// The all-pairs relation matrix in canonical row-major order: slot
/// k = i·(n−1) + (j < i ? j : j − 1) holds `primary i R reference j`.
///
/// Storage is *packed*: only the 9-bit relation mask (2 bytes) per slot —
/// the primary/reference indices are recomputed from the slot index on
/// access, since the canonical order determines them. This matters at
/// engine scale: 12-byte PairRelation slots at n = 5000 are a 300 MB
/// buffer whose first-touch page-zeroing alone costs ~150 ms and whose
/// writes dominate the classify phase; the packed form is 50 MB. The
/// buffer is also allocated uninitialised (the engine writes every slot
/// exactly once — the audit seam checks the accounting), skipping
/// std::vector's O(n²) value-initialisation memset.
class PairMatrix {
 public:
  PairMatrix() = default;
  /// Allocates the n·(n−1) uninitialised slots for `regions` regions (zero
  /// slots when regions < 2). The caller must write every slot before
  /// reading any.
  explicit PairMatrix(size_t regions)
      : regions_(regions),
        size_(regions < 2 ? 0 : regions * (regions - 1)),
        masks_(size_ == 0 ? nullptr
                          : static_cast<uint16_t*>(::operator new(
                                size_ * sizeof(uint16_t))),
               Deleter{size_ * sizeof(uint16_t)}) {
    if (size_ != 0) {
      CARDIR_MEMSTAT_ALLOC("pair_matrix", size_ * sizeof(uint16_t));
    }
  }

  PairMatrix(PairMatrix&&) = default;
  PairMatrix& operator=(PairMatrix&&) = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// The k-th pair record, materialised from the packed slot (by value —
  /// the indices are derived from k, not stored).
  PairRelation operator[](size_t k) const {
    const size_t stride = regions_ - 1;
    const size_t i = k / stride;
    const size_t rank = k % stride;
    const size_t j = rank < i ? rank : rank + 1;
    return {static_cast<uint32_t>(i), static_cast<uint32_t>(j),
            CardinalRelation::FromMask(masks_.get()[k])};
  }

  /// Forward iteration over the materialised records (proxy values, not
  /// references into storage).
  class const_iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = PairRelation;
    using difference_type = std::ptrdiff_t;
    using pointer = const PairRelation*;
    using reference = PairRelation;

    const_iterator(const PairMatrix* matrix, size_t k)
        : matrix_(matrix), k_(k) {}
    PairRelation operator*() const { return (*matrix_)[k_]; }
    const_iterator& operator++() {
      ++k_;
      return *this;
    }
    bool operator==(const const_iterator& other) const {
      return k_ == other.k_;
    }
    bool operator!=(const const_iterator& other) const {
      return k_ != other.k_;
    }

   private:
    const PairMatrix* matrix_;
    size_t k_;
  };

  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, size_}; }

  /// The packed mask array (engine merge target; tests may inspect it).
  uint16_t* masks() { return masks_.get(); }
  const uint16_t* masks() const { return masks_.get(); }

 private:
  // Stateful: remembers the allocation size so the mem.pair_matrix gauges
  // balance on destruction (moves carry the deleter with the pointer).
  struct Deleter {
    size_t bytes = 0;
    void operator()(uint16_t* p) const {
      if (p != nullptr) CARDIR_MEMSTAT_FREE("pair_matrix", bytes);
      ::operator delete(p);
    }
  };
  size_t regions_ = 0;
  size_t size_ = 0;
  std::unique_ptr<uint16_t, Deleter> masks_;
};

/// Computes the relation for every ordered pair (primary ≠ reference) of
/// `regions`, in canonical row-major order: all pairs with primary 0 first
/// (references in index order), then primary 1, and so on — the order of
/// the serial nested loop it replaces. Fails with kInvalidArgument when a
/// region fails Region::Validate(). The output is identical for every
/// thread count.
Result<PairMatrix> ComputeAllPairs(const std::vector<Region>& regions,
                                   const EngineOptions& options = {},
                                   EngineStats* stats = nullptr);

/// Pointer-based overload for callers whose regions live inside larger
/// records (e.g. the CARDIRECT configuration model). Entries must be
/// non-null.
Result<PairMatrix> ComputeAllPairs(const std::vector<const Region*>& regions,
                                   const EngineOptions& options = {},
                                   EngineStats* stats = nullptr);

/// Throughput/cross-check variant that does not materialise the matrix:
/// folds every pair's relation into an order-independent 64-bit digest
/// (commutative sum of per-pair mixes), so 10k-region workloads — 10^8
/// pairs — run in O(1) memory. Two runs digest equal iff their matrices
/// are identical (modulo hash collisions).
Result<uint64_t> ComputeAllPairsDigest(const std::vector<Region>& regions,
                                       const EngineOptions& options = {},
                                       EngineStats* stats = nullptr);

}  // namespace cardir

#endif  // CARDIR_ENGINE_BATCH_ENGINE_H_
