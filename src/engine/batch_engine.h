// The batch relation engine: computes the full ordered-pair cardinal
// direction relation matrix of a set of regions, in parallel, with MBB
// prefiltering.
//
// Pipeline (see src/engine/README.md):
//   plan    — bulk-load an R-tree over the regions' mbbs; for every
//             reference region, four degenerate-box line queries enumerate
//             the primaries whose mbb properly crosses one of the
//             reference's mbb lines. Only those pairs need edge splitting.
//   execute — a work-stealing thread pool processes references in chunks;
//             tile-separated pairs take their relation straight from the
//             boxes (engine/prefilter.h), crossing pairs run the full
//             Compute-CDR.
//   merge   — each pair's result is written into its precomputed slot of a
//             flat output vector in canonical (primary, reference) order,
//             so the output is bit-identical for every thread count and
//             interleaving.
//
// The engine works on geometry-level inputs (it sits below the CARDIRECT
// configuration model); Configuration::ComputeAllRelations adapts it to
// annotated regions.

#ifndef CARDIR_ENGINE_BATCH_ENGINE_H_
#define CARDIR_ENGINE_BATCH_ENGINE_H_

#include <cstdint>
#include <vector>

#include "core/cardinal_relation.h"
#include "geometry/region.h"
#include "util/status.h"

namespace cardir {

/// Tuning knobs for the engine.
struct EngineOptions {
  /// Total threads, including the calling thread. 0 = all hardware threads.
  int threads = 1;
  /// Resolve tile-separated pairs from the boxes alone. Disable only to
  /// benchmark or cross-check the full algorithm.
  bool use_prefilter = true;
  /// References per work-stealing chunk; 0 picks a size automatically.
  size_t chunk_size = 0;
};

/// Instrumentation of one engine run.
struct EngineStats {
  size_t total_pairs = 0;        ///< n·(n−1) ordered pairs.
  size_t prefiltered_pairs = 0;  ///< Resolved from the mbbs alone.
  size_t computed_pairs = 0;     ///< Ran the full Compute-CDR.
  size_t crossing_pairs = 0;     ///< Flagged by the planner's line queries.
  int threads_used = 1;
};

/// One entry of the relation matrix: regions are identified by their index
/// in the input vector.
struct PairRelation {
  uint32_t primary = 0;
  uint32_t reference = 0;
  CardinalRelation relation;
};

/// Computes the relation for every ordered pair (primary ≠ reference) of
/// `regions`, in canonical row-major order: all pairs with primary 0 first
/// (references in index order), then primary 1, and so on — the order of
/// the serial nested loop it replaces. Fails with kInvalidArgument when a
/// region fails Region::Validate(). The output is identical for every
/// thread count.
Result<std::vector<PairRelation>> ComputeAllPairs(
    const std::vector<Region>& regions, const EngineOptions& options = {},
    EngineStats* stats = nullptr);

/// Pointer-based overload for callers whose regions live inside larger
/// records (e.g. the CARDIRECT configuration model). Entries must be
/// non-null.
Result<std::vector<PairRelation>> ComputeAllPairs(
    const std::vector<const Region*>& regions,
    const EngineOptions& options = {}, EngineStats* stats = nullptr);

/// Throughput/cross-check variant that does not materialise the matrix:
/// folds every pair's relation into an order-independent 64-bit digest
/// (commutative sum of per-pair mixes), so 10k-region workloads — 10^8
/// pairs — run in O(1) memory. Two runs digest equal iff their matrices
/// are identical (modulo hash collisions).
Result<uint64_t> ComputeAllPairsDigest(const std::vector<Region>& regions,
                                       const EngineOptions& options = {},
                                       EngineStats* stats = nullptr);

}  // namespace cardir

#endif  // CARDIR_ENGINE_BATCH_ENGINE_H_
