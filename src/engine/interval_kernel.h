// Batched interval-classification kernel for the batch engine's planner.
//
// The paper's §4 observation: the cardinal direction relation between two
// bounding boxes factors into two independent 1-D interval relations — the
// x-projections and the y-projections. The kernel exploits this in bulk:
// each axis of a primary's mbb is classified against the two reference
// lines of that axis into one of four *interval classes*
//
//   kLow   — entirely on the low side   (hi <= m1;  West resp. South)
//   kMid   — inside the band            (m1 <= lo and hi <= m2)
//   kHigh  — entirely on the high side  (lo >= m2;  East resp. North)
//   kCross — properly straddles a line  (not box-resolvable)
//
// with the same inclusive boundary semantics as engine/prefilter.h, so a
// (x class, y class) pair with neither class kCross determines the 9-tile
// relation by table lookup — `ClassPairRelationTable()[code]` — and a pair
// with a kCross class is exactly a pair whose mbb properly crosses a
// reference line (or involves a degenerate box): the crossing set the old
// planner derived from four R-tree line queries per reference falls out of
// the class codes for free.
//
// The classification runs over a struct-of-arrays `RegionProfile` (one
// contiguous double array per bound), two branch-free passes per reference,
// so the hot loop streams memory instead of chasing Region pointers and
// auto-vectorizes. The class-pair table and the branch-free class select
// are proven against core/tile.h's TileAt at compile time (static_asserts
// in interval_kernel.cc); `ValidateClassKernelOnce` keeps the runtime sweep
// against `MbbPrefilterRelation` as a debug-only cross-check (audit builds
// and tests); `IntervalClassOfAllen` bridges the classes to the Allen
// interval algebra of reasoning/interval_algebra.h (each class is a
// coarsening of a block of Allen relations).

#ifndef CARDIR_ENGINE_INTERVAL_KERNEL_H_
#define CARDIR_ENGINE_INTERVAL_KERNEL_H_

#include <array>
#include <cstdint>
#include <vector>

#include "core/cardinal_relation.h"
#include "geometry/box.h"
#include "reasoning/interval_algebra.h"
#include "util/status.h"

namespace cardir {

/// Position of a primary interval relative to the reference band [m1, m2].
enum class IntervalClass : uint8_t {
  kLow = 0,    ///< hi <= m1 — West (x axis) / South (y axis).
  kMid = 1,    ///< m1 <= lo and hi <= m2 — the middle band.
  kHigh = 2,   ///< lo >= m2 — East (x axis) / North (y axis).
  kCross = 3,  ///< Properly straddles m1 or m2 (or degenerate input).
};

/// Struct-of-arrays bounding-box profile of an engine run's regions, built
/// once per run so the per-reference classification passes stream four
/// contiguous double arrays. `cross_override[i]` is 0b1111 when box i is
/// empty or degenerate (zero width/height) — OR-ing it into the class code
/// forces both axes to kCross, routing the pair to the full algorithm, the
/// same bail-out MbbPrefilterRelation takes.
struct RegionProfile {
  std::vector<double> min_x, max_x, min_y, max_y;
  std::vector<uint8_t> cross_override;

  size_t size() const { return min_x.size(); }

  static RegionProfile FromBoxes(const std::vector<Box>& boxes);
};

/// Packs two axis classes into a 4-bit code: (x class << 2) | y class.
inline constexpr uint8_t kNumClassPairCodes = 16;

/// Relation-mask lookup by class-pair code: the 9-bit CardinalRelation mask
/// of the single tile at (column = x class, row = y class), or 0 when either
/// class is kCross (pair not box-resolvable). Built from core/tile.h's
/// TileAt as a constexpr table, never transcribed by hand, and proven
/// against TileAt in both orientations by static_assert (see the
/// compile-time table proofs in interval_kernel.cc) — divergence is a build
/// break, not a startup abort.
const std::array<uint16_t, kNumClassPairCodes>& ClassPairRelationTable();

/// The same table as ready-made CardinalRelation values (the empty relation
/// — IsEmpty() — for non-resolvable codes), so the engine's hot loop sinks
/// table entries directly instead of re-checking the mask through
/// CardinalRelation::FromMask per pair.
const std::array<CardinalRelation, kNumClassPairCodes>& ClassPairRelations();

/// Scalar reference classification of one axis (the semantics the batched
/// passes implement branch-free). Degenerate extents (lo == hi) and
/// degenerate bands (m1 == m2) are the caller's problem — the batched path
/// handles them with `cross_override` / by skipping the reference.
IntervalClass ClassifyIntervalClass(double lo, double hi, double m1,
                                    double m2);

/// Classifies all profiled boxes against `reference` (which must be
/// non-empty and non-degenerate): writes the class-pair code of box i into
/// `codes[i]` (capacity ≥ profile.size()) in two branch-free passes.
/// `ClassPairRelationTable()[codes[i]]` then yields box i's relation mask,
/// or 0 when the pair needs the full Compute-CDR.
void ClassifyAgainstReference(const RegionProfile& profile,
                              const Box& reference, uint8_t* codes);

/// The transposed kernel: classifies one primary box (which must be
/// non-empty and non-degenerate) against every profiled box taken as the
/// *reference*, writing the class-pair code of pair (primary, box j) into
/// `codes[j]`. Elementwise this computes exactly the same comparisons as
/// ClassifyAgainstReference — the engine uses this orientation so that one
/// primary's output row is emitted contiguously (the canonical merge order
/// is row-major by primary). Codes for degenerate/empty reference boxes
/// come out as non-resolvable via their cross_override.
void ClassifyAgainstBands(const RegionProfile& profile,
                          const Box& primary, uint8_t* codes);

/// The interval class that Allen relation `r` between a primary interval
/// and the reference band coarsens to: {before, meets} → kLow, {during,
/// starts, finishes, equals} → kMid, {metBy, after} → kHigh, and the five
/// relations straddling an endpoint (overlaps, finishedBy, contains,
/// startedBy, overlappedBy) → kCross.
IntervalClass IntervalClassOfAllen(AllenRelation r);

/// Cross-checks the kernel (class codes + relation table) against
/// MbbPrefilterRelation over a sweep of box pairs, including touching,
/// corner-sharing, nested, identical and degenerate boxes, and checks the
/// Allen coarsening on the non-degenerate pairs. Runs the sweep once per
/// process (subsequent calls return the cached status). Since the table and
/// the branch-free class select are proven against TileAt at compile time
/// (static_asserts in interval_kernel.cc), this runtime sweep is a
/// debug-only cross-check: the engine runs it only in audit builds
/// (CARDIR_AUDIT=ON); tests call it directly.
Status ValidateClassKernelOnce();

}  // namespace cardir

#endif  // CARDIR_ENGINE_INTERVAL_KERNEL_H_
