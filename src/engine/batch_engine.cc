#include "engine/batch_engine.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <utility>

#include "audit/audit.h"
#include "audit/invariants.h"
#include "core/compute_cdr.h"
#include "engine/interval_kernel.h"
#include "engine/prefilter.h"
#include "engine/relation_store.h"
#include "engine/thread_pool.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace cardir {
namespace {

// One pair deferred from the classification phase to the fine-grained
// crossing queue (full Compute-CDR required).
struct DeferredPair {
  uint32_t primary;
  uint32_t reference;
};

// Per-participant working memory, reused across every chunk a participant
// runs in both phases of an engine run: the class-code array of the
// classification kernel, the spill buffer for deferred pairs, and the
// Compute-CDR scratch arena (the SoA sub-edge lanes of core/edge_soa.h,
// whose capacity is paid once per participant instead of per crossing
// pair). Indexed by the pool's participant id; a participant never runs
// two chunks concurrently, so no synchronisation is needed.
struct WorkerScratch {
  std::vector<uint8_t> codes;
  std::vector<DeferredPair> deferred;
  CdrScratch cdr;
};

// Adapts value-typed region storage to the pointer-based engine entry.
std::vector<const Region*> RegionPointers(const std::vector<Region>& regions) {
  std::vector<const Region*> pointers;
  pointers.reserve(regions.size());
  for (const Region& region : regions) pointers.push_back(&region);
  return pointers;
}

// Runs the two-phase classify + compute pipeline. `sink(primary, reference,
// relation, participant)` is invoked exactly once per ordered pair,
// concurrently from several threads, in no particular order (`participant`
// is the pool participant index running the call, for per-thread
// accumulation); sinks must be write-disjoint or commutative.
template <typename Sink>
Status RunEngine(const std::vector<const Region*>& regions,
                 const EngineOptions& options, EngineStats* stats,
                 const Sink& sink) {
  const size_t n = regions.size();
  if (stats != nullptr) *stats = EngineStats();
  if (n < 2) return Status::Ok();
  CARDIR_TRACE_SPAN("engine.run");
  const uint64_t run_start_us = obs::TraceNowMicros();
  CARDIR_METRIC_COUNT("engine.runs", 1);
  CARDIR_METRIC_COUNT("engine.regions", n);
  CARDIR_RECORD_EVENT(kPhase, "engine.validate", 0, n);

  // Validate every region once up front (the serial loop re-validated both
  // sides of every pair — n·(n−1) validations for n regions).
  std::vector<Box> boxes(n);
  {
    CARDIR_TRACE_SPAN("engine.validate");
    for (size_t i = 0; i < n; ++i) {
      if (regions[i] == nullptr) {
        return Status::InvalidArgument(
            StrFormat("region #%zu: null region", i));
      }
      const Status status = regions[i]->Validate();
      if (!status.ok()) {
        return Status::InvalidArgument(
            StrFormat("region #%zu: %s", i, status.message().c_str()));
      }
      boxes[i] = regions[i]->BoundingBox();
    }
  }

  // Plan: the SoA box profile feeds the per-reference classification
  // passes. The class table is proven against TileAt at compile time
  // (static_asserts in interval_kernel.cc); the runtime sweep against
  // MbbPrefilterRelation is a debug-only cross-check, run once per process
  // in audit builds only.
  RegionProfile profile;
  const std::array<CardinalRelation, kNumClassPairCodes>* rel_table = nullptr;
  if (options.use_prefilter) {
    CARDIR_TRACE_SPAN("engine.plan");
    CARDIR_RECORD_EVENT(kPhase, "engine.plan", 1, n);
    if constexpr (kAuditEnabled) {
      CARDIR_RETURN_IF_ERROR(ValidateClassKernelOnce());
    }
    profile = RegionProfile::FromBoxes(boxes);
    rel_table = &ClassPairRelations();
  }

  const int threads = ThreadPool::ResolveThreadCount(options.threads);
  std::atomic<size_t> prefiltered_total{0};
  std::atomic<size_t> computed_total{0};
  std::atomic<size_t> crossing_total{0};

  ThreadPool pool(threads);
  CARDIR_METRIC_GAUGE_SET("engine.pool.threads", threads);
  std::vector<WorkerScratch> scratch(static_cast<size_t>(threads));

  // Phase 1 — classify: dynamic chunks over primaries (the canonical merge
  // order is row-major by primary, so one primary's box-resolved row is
  // emitted as a contiguous streak of output slots instead of a strided
  // scatter). Pairs needing the full algorithm are deferred to a shared
  // queue so the expensive work can be re-chunked at a finer grain in
  // phase 2 instead of load-imbalancing the row chunks.
  // The queue's backing store is a fixed budget: reserved at the cap and
  // charged to mem.crossing_queue once, before any spill, so the arena's
  // peak is the cap regardless of how many pairs defer (inserts never
  // exceed the cap, so the vector never reallocates). Overflow is computed
  // inline by the spilling participant instead of growing the queue.
  size_t queue_capacity = options.crossing_queue_capacity;
  if (queue_capacity == 0) {
    queue_capacity = std::min(n * (n - 1),
                              static_cast<size_t>(threads) * 65536);
  }
  std::vector<DeferredPair> queue;
  queue.reserve(queue_capacity);
  const size_t queue_bytes = queue.capacity() * sizeof(DeferredPair);
  CARDIR_MEMSTAT_ALLOC("crossing_queue", queue_bytes);
  std::mutex queue_mutex;
  {
    CARDIR_TRACE_SPAN("engine.execute");
    CARDIR_RECORD_EVENT(kPhase, "engine.classify", 2, n);
    pool.ParallelFor(
        n, options.chunk_size,
        [&](size_t begin, size_t end, size_t participant) {
          CARDIR_TRACE_SPAN("engine.chunk");
          CARDIR_RECORD_EVENT(kChunk, "classify", begin, end - begin);
          WorkerScratch& ws = scratch[participant];
          size_t prefiltered = 0, computed = 0, crossing = 0;
          CdrMetricsDelta cdr_metrics;  // Flushed once per chunk.
          for (size_t i = begin; i < end; ++i) {
            const Box& primary_box = boxes[i];
            if (options.use_prefilter && !primary_box.IsEmpty() &&
                !primary_box.IsDegenerate()) {
              // Two branch-free passes classify this primary against all n
              // reference bands; the 16-entry table turns each class-pair
              // code into either a single-tile relation or "defer".
              // Row-granularity profiler frame: one push covers n
              // classifications, so the sampler can split chunk time into
              // classification vs compute without per-pair cost.
              CARDIR_PROFILE_FRAME("prefilter.classify");
              ws.codes.resize(n);
              ClassifyAgainstBands(profile, primary_box, ws.codes.data());
              const uint8_t* codes = ws.codes.data();
              for (size_t j = 0; j < n; ++j) {
                if (i == j) continue;
                const CardinalRelation relation = (*rel_table)[codes[j]];
                if (!relation.IsEmpty()) {
                  // Audit seam: a box-resolved pair must agree with the
                  // full algorithm on the real geometry.
                  if constexpr (kAuditEnabled) {
                    CARDIR_AUDIT(AuditPrefilterAgreement(
                        relation, *regions[i], *regions[j]));
                  }
                  sink(i, j, relation, participant);
                  ++prefiltered;
                } else {
                  ws.deferred.push_back({static_cast<uint32_t>(i),
                                         static_cast<uint32_t>(j)});
                  if (MbbProperlyCrossesReferenceLines(primary_box,
                                                      boxes[j])) {
                    ++crossing;
                  }
                }
              }
            } else if (options.use_prefilter) {
              // Degenerate primary mbb (never produced by a valid REG*
              // region): nothing in this row is box-resolvable, defer it.
              for (size_t j = 0; j < n; ++j) {
                if (i == j) continue;
                ws.deferred.push_back(
                    {static_cast<uint32_t>(i), static_cast<uint32_t>(j)});
                if (MbbProperlyCrossesReferenceLines(primary_box, boxes[j])) {
                  ++crossing;
                }
              }
            } else {
              const Region& primary = *regions[i];
              // Row-granularity frame: n Compute-CDR calls per push (a
              // per-pair frame costs tens of percent at ~100 ns/pair).
              CARDIR_PROFILE_FRAME("cdr.compute");
              for (size_t j = 0; j < n; ++j) {
                if (i == j) continue;
                sink(i, j,
                     ComputeCdrUnchecked(primary, boxes[j], &cdr_metrics,
                                         &ws.cdr)
                         .relation,
                     participant);
                ++computed;
              }
            }
          }
          if (!ws.deferred.empty()) {
            // Pair indices entering the crossing queue: the recorder logs
            // the spilled range (first deferred primary + batch size) so a
            // post-mortem shows which rows were in flight.
            CARDIR_RECORD_EVENT(kDefer, "spill", ws.deferred.front().primary,
                                ws.deferred.size());
            size_t accepted = 0;
            {
              std::lock_guard<std::mutex> lock(queue_mutex);
              const size_t room = queue_capacity - queue.size();
              accepted = std::min(room, ws.deferred.size());
              queue.insert(queue.end(), ws.deferred.begin(),
                           ws.deferred.begin() +
                               static_cast<std::ptrdiff_t>(accepted));
            }
            if (accepted < ws.deferred.size()) {
              // Queue at capacity: this participant resolves its own
              // overflow right here instead of growing the queue — same
              // results, bounded memory, coarser phase-2 balancing.
              const size_t overflow = ws.deferred.size() - accepted;
              CARDIR_METRIC_COUNT("engine.crossing_queue.overflow", overflow);
              CARDIR_PROFILE_FRAME("cdr.compute");
              for (size_t k = accepted; k < ws.deferred.size(); ++k) {
                const DeferredPair pair = ws.deferred[k];
                sink(pair.primary, pair.reference,
                     ComputeCdrUnchecked(*regions[pair.primary],
                                         boxes[pair.reference], &cdr_metrics,
                                         &ws.cdr)
                         .relation,
                     participant);
              }
              computed += overflow;
            }
          }
          ws.deferred.clear();
          cdr_metrics.FlushToRegistry();
          prefiltered_total.fetch_add(prefiltered, std::memory_order_relaxed);
          computed_total.fetch_add(computed, std::memory_order_relaxed);
          crossing_total.fetch_add(crossing, std::memory_order_relaxed);
          CARDIR_METRIC_COUNT("engine.pairs.prefiltered", prefiltered);
          CARDIR_METRIC_COUNT("engine.pairs.computed", computed);
          CARDIR_METRIC_COUNT("engine.pairs.crossing", crossing);
        });
  }

  // Phase 2 — compute: drain the deferred queue with fine-grained chunks.
  // Each entry runs the full Compute-CDR (hundreds of ns), so chunks far
  // smaller than phase 1's keep all participants busy even when crossing
  // pairs cluster around a few hot references.
  if (!queue.empty()) {
    CARDIR_TRACE_SPAN("engine.crossing_queue");
    CARDIR_METRIC_COUNT("engine.crossing_queue.pairs", queue.size());
    CARDIR_RECORD_EVENT(kPhase, "engine.crossing", 3, queue.size());
    size_t chunk = options.crossing_chunk_size;
    if (chunk == 0) {
      chunk = std::max<size_t>(
          16, queue.size() / (static_cast<size_t>(threads) * 32));
    }
    pool.ParallelFor(
        queue.size(), chunk,
        [&](size_t begin, size_t end, size_t participant) {
          CARDIR_TRACE_SPAN("engine.chunk");
          CARDIR_RECORD_EVENT(kChunk, "crossing", begin, end - begin);
          // The whole crossing chunk is Compute-CDR work: one frame per
          // chunk gives the profiler the same attribution a per-pair frame
          // would, at none of the hot-loop cost.
          CARDIR_PROFILE_FRAME("cdr.compute");
          WorkerScratch& ws = scratch[participant];
          CdrMetricsDelta cdr_metrics;
          for (size_t k = begin; k < end; ++k) {
            const DeferredPair pair = queue[k];
            // The reference's mbb is already profiled — hand it over instead
            // of letting Compute-CDR rescan the reference's vertices.
            sink(pair.primary, pair.reference,
                 ComputeCdrUnchecked(*regions[pair.primary],
                                     boxes[pair.reference], &cdr_metrics,
                                     &ws.cdr)
                     .relation,
                 participant);
          }
          cdr_metrics.FlushToRegistry();
          CARDIR_METRIC_COUNT("engine.pairs.computed", end - begin);
        });
    computed_total.fetch_add(queue.size(), std::memory_order_relaxed);
  }
  CARDIR_MEMSTAT_FREE("crossing_queue", queue_bytes);

  // Worker-scratch telemetry: the codes/spill buffers reach their maximum
  // extent by the end of the run (grow-only within a run), and they die
  // with this scope — charge and release here so mem.worker_scratch's peak
  // gauge records the run's high-water while live returns to zero. The
  // CdrScratch SoA lanes inside are charged continuously by the
  // mem.edge_soa arena and excluded to avoid double counting.
  {
    size_t scratch_bytes = 0;
    for (const WorkerScratch& ws : scratch) {
      scratch_bytes += ws.codes.capacity() * sizeof(uint8_t) +
                       ws.deferred.capacity() * sizeof(DeferredPair);
    }
    if (scratch_bytes != 0) {
      CARDIR_MEMSTAT_ALLOC("worker_scratch", scratch_bytes);
      CARDIR_MEMSTAT_FREE("worker_scratch", scratch_bytes);
    }
  }
  CARDIR_RECORD_EVENT(kPhase, "engine.done", 4, n * (n - 1));

  // Audit seam: every ordered pair went through the sink exactly once
  // (prefiltered + computed partitions the n·(n−1) pairs).
  CARDIR_AUDIT(AuditExactCover(
      prefiltered_total.load() + computed_total.load(), n * (n - 1),
      "batch engine pair sink"));

  CARDIR_METRIC_COUNT("engine.pairs.total", n * (n - 1));
  CARDIR_METRIC_OBSERVE("engine.run_us",
                        obs::TraceNowMicros() - run_start_us);
  if (stats != nullptr) {
    stats->total_pairs = n * (n - 1);
    stats->prefiltered_pairs = prefiltered_total.load();
    stats->computed_pairs = computed_total.load();
    stats->crossing_pairs = crossing_total.load();
    stats->threads_used = threads;
  }
  return Status::Ok();
}

}  // namespace

Result<PairMatrix> ComputeAllPairs(const std::vector<const Region*>& regions,
                                   const EngineOptions& options,
                                   EngineStats* stats) {
  const size_t n = regions.size();
  PairMatrix records(n);
  // Merge: pair (primary i, reference j) owns slot i·(n−1) + rank of j
  // among i's references — the canonical row-major order. Slots are
  // write-disjoint, so thread interleaving cannot reorder the output, and
  // the engine writes every slot exactly once (audited), so the matrix's
  // uninitialised storage is fully populated on return.
  uint16_t* masks = records.masks();
  CARDIR_RETURN_IF_ERROR(RunEngine(
      regions, options, stats,
      [masks, n](size_t i, size_t j, CardinalRelation relation, size_t) {
        masks[i * (n - 1) + (j < i ? j : j - 1)] = relation.mask();
      }));
  return records;
}

Result<PairMatrix> ComputeAllPairs(const std::vector<Region>& regions,
                                   const EngineOptions& options,
                                   EngineStats* stats) {
  return ComputeAllPairs(RegionPointers(regions), options, stats);
}

Result<uint64_t> ComputeAllPairsDigest(const std::vector<Region>& regions,
                                       const EngineOptions& options,
                                       EngineStats* stats) {
  // One padded accumulator per pool participant: the digest is a
  // commutative sum, so each thread folds its pairs locally and the shards
  // are combined once after the join — no per-pair atomics. The pool's
  // job-done rendezvous publishes the plain shard writes to this thread.
  struct alignas(64) DigestShard {
    uint64_t value = 0;
  };
  std::vector<DigestShard> shards(static_cast<size_t>(
      ThreadPool::ResolveThreadCount(options.threads)));
  CARDIR_RETURN_IF_ERROR(RunEngine(
      RegionPointers(regions), options, stats,
      [&shards](size_t i, size_t j, CardinalRelation relation,
                size_t participant) {
        shards[participant].value += MixPairDigest(i, j, relation.mask());
      }));
  uint64_t digest = 0;
  for (const DigestShard& shard : shards) digest += shard.value;
  return digest;
}

}  // namespace cardir
