#include "engine/batch_engine.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "audit/audit.h"
#include "audit/invariants.h"
#include "core/compute_cdr.h"
#include "engine/prefilter.h"
#include "engine/thread_pool.h"
#include "index/rtree.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace cardir {
namespace {

// Mixes one matrix entry into a 64-bit value. Pair digests are *summed*, so
// the total is independent of the order in which threads emit entries.
uint64_t MixPair(size_t primary, size_t reference, uint16_t mask) {
  uint64_t z = (static_cast<uint64_t>(primary) << 40) ^
               (static_cast<uint64_t>(reference) << 16) ^ mask;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Runs the planner + pool + sink pipeline. `sink(primary, reference,
// relation)` is invoked exactly once per ordered pair, concurrently from
// several threads, in no particular order; sinks must be write-disjoint or
// commutative.
template <typename Sink>
Status RunEngine(const std::vector<const Region*>& regions,
                 const EngineOptions& options, EngineStats* stats,
                 const Sink& sink) {
  const size_t n = regions.size();
  if (stats != nullptr) *stats = EngineStats();
  if (n < 2) return Status::Ok();
  CARDIR_TRACE_SPAN("engine.run");
  const uint64_t run_start_us = obs::TraceNowMicros();
  CARDIR_METRIC_COUNT("engine.runs", 1);
  CARDIR_METRIC_COUNT("engine.regions", n);

  // Validate every region once up front (the serial loop re-validated both
  // sides of every pair — n·(n−1) validations for n regions).
  std::vector<Box> boxes(n);
  {
    CARDIR_TRACE_SPAN("engine.validate");
    for (size_t i = 0; i < n; ++i) {
      if (regions[i] == nullptr) {
        return Status::InvalidArgument(
            StrFormat("region #%zu: null region", i));
      }
      const Status status = regions[i]->Validate();
      if (!status.ok()) {
        return Status::InvalidArgument(
            StrFormat("region #%zu: %s", i, status.message().c_str()));
      }
      boxes[i] = regions[i]->BoundingBox();
    }
  }

  // Plan: an R-tree over the mbbs answers "whose mbb properly crosses this
  // reference line?" with four degenerate-box queries per reference.
  RTree rtree;
  Box everything;
  if (options.use_prefilter) {
    CARDIR_TRACE_SPAN("engine.plan");
    std::vector<std::pair<Box, int64_t>> entries;
    entries.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      entries.emplace_back(boxes[i], static_cast<int64_t>(i));
      everything.Extend(boxes[i]);
    }
    CARDIR_RETURN_IF_ERROR(rtree.BulkLoad(std::move(entries)));
  }

  const int threads = ThreadPool::ResolveThreadCount(options.threads);
  std::atomic<size_t> prefiltered_total{0};
  std::atomic<size_t> computed_total{0};
  std::atomic<size_t> crossing_total{0};

  ThreadPool pool(threads);
  CARDIR_METRIC_GAUGE_SET("engine.pool.threads", threads);
  {
  CARDIR_TRACE_SPAN("engine.execute");
  pool.ParallelFor(
      n, options.chunk_size,
      [&](size_t begin, size_t end) {
        CARDIR_TRACE_SPAN("engine.chunk");
        std::vector<char> crosses(n, 0);
        size_t prefiltered = 0, computed = 0, crossing = 0;
        CdrMetricsDelta cdr_metrics;  // Flushed once per chunk, not per pair.
        for (size_t j = begin; j < end; ++j) {
          const Box& ref_box = boxes[j];
          const Region& reference = *regions[j];
          if (options.use_prefilter) {
            std::fill(crosses.begin(), crosses.end(), 0);
            const double x_lo = everything.min_x() - 1.0;
            const double x_hi = everything.max_x() + 1.0;
            const double y_lo = everything.min_y() - 1.0;
            const double y_hi = everything.max_y() + 1.0;
            const Box lines[4] = {
                Box(ref_box.min_x(), y_lo, ref_box.min_x(), y_hi),
                Box(ref_box.max_x(), y_lo, ref_box.max_x(), y_hi),
                Box(x_lo, ref_box.min_y(), x_hi, ref_box.min_y()),
                Box(x_lo, ref_box.max_y(), x_hi, ref_box.max_y())};
            for (const Box& line : lines) {
              rtree.Search(line, [&](const Box&, int64_t id) {
                const size_t i = static_cast<size_t>(id);
                if (i != j && crosses[i] == 0 &&
                    MbbProperlyCrossesReferenceLines(boxes[i], ref_box)) {
                  crosses[i] = 1;
                  ++crossing;
                }
              });
            }
          }
          for (size_t i = 0; i < n; ++i) {
            if (i == j) continue;
            if (options.use_prefilter && crosses[i] == 0) {
              const std::optional<CardinalRelation> bounded =
                  MbbPrefilterRelation(boxes[i], ref_box);
              if (bounded.has_value()) {
                // Audit seam: a box-resolved pair must agree with the full
                // algorithm on the real geometry.
                if constexpr (kAuditEnabled) {
                  CARDIR_AUDIT(AuditPrefilterAgreement(*bounded, *regions[i],
                                                       reference));
                }
                sink(i, j, *bounded);
                ++prefiltered;
                continue;
              }
              // Degenerate boxes fall through to the full algorithm.
            }
            sink(i, j,
                 ComputeCdrUnchecked(*regions[i], reference, &cdr_metrics)
                     .relation);
            ++computed;
          }
        }
        cdr_metrics.FlushToRegistry();
        prefiltered_total.fetch_add(prefiltered, std::memory_order_relaxed);
        computed_total.fetch_add(computed, std::memory_order_relaxed);
        crossing_total.fetch_add(crossing, std::memory_order_relaxed);
        CARDIR_METRIC_COUNT("engine.pairs.prefiltered", prefiltered);
        CARDIR_METRIC_COUNT("engine.pairs.computed", computed);
        CARDIR_METRIC_COUNT("engine.pairs.crossing", crossing);
      });
  }

  // Audit seam: every ordered pair went through the sink exactly once
  // (prefiltered + computed partitions the n·(n−1) pairs).
  CARDIR_AUDIT(AuditExactCover(
      prefiltered_total.load() + computed_total.load(), n * (n - 1),
      "batch engine pair sink"));

  CARDIR_METRIC_COUNT("engine.pairs.total", n * (n - 1));
  CARDIR_METRIC_OBSERVE("engine.run_us",
                        obs::TraceNowMicros() - run_start_us);
  if (stats != nullptr) {
    stats->total_pairs = n * (n - 1);
    stats->prefiltered_pairs = prefiltered_total.load();
    stats->computed_pairs = computed_total.load();
    stats->crossing_pairs = crossing_total.load();
    stats->threads_used = threads;
  }
  return Status::Ok();
}

}  // namespace

Result<std::vector<PairRelation>> ComputeAllPairs(
    const std::vector<const Region*>& regions, const EngineOptions& options,
    EngineStats* stats) {
  const size_t n = regions.size();
  std::vector<PairRelation> records(n < 2 ? 0 : n * (n - 1));
  // Merge: pair (primary i, reference j) owns slot i·(n−1) + rank of j
  // among i's references — the canonical row-major order. Slots are
  // write-disjoint, so thread interleaving cannot reorder the output.
  CARDIR_RETURN_IF_ERROR(RunEngine(
      regions, options, stats,
      [&records, n](size_t i, size_t j, CardinalRelation relation) {
        PairRelation& slot = records[i * (n - 1) + (j < i ? j : j - 1)];
        slot.primary = static_cast<uint32_t>(i);
        slot.reference = static_cast<uint32_t>(j);
        slot.relation = relation;
      }));
  return records;
}

Result<std::vector<PairRelation>> ComputeAllPairs(
    const std::vector<Region>& regions, const EngineOptions& options,
    EngineStats* stats) {
  std::vector<const Region*> pointers;
  pointers.reserve(regions.size());
  for (const Region& region : regions) pointers.push_back(&region);
  return ComputeAllPairs(pointers, options, stats);
}

Result<uint64_t> ComputeAllPairsDigest(const std::vector<Region>& regions,
                                       const EngineOptions& options,
                                       EngineStats* stats) {
  std::vector<const Region*> pointers;
  pointers.reserve(regions.size());
  for (const Region& region : regions) pointers.push_back(&region);
  std::atomic<uint64_t> digest{0};
  CARDIR_RETURN_IF_ERROR(RunEngine(
      pointers, options, stats,
      [&digest](size_t i, size_t j, CardinalRelation relation) {
        digest.fetch_add(MixPair(i, j, relation.mask()),
                         std::memory_order_relaxed);
      }));
  return digest.load();
}

}  // namespace cardir
