// The sweep layer's shared enumeration + resolution kit, factored out of
// sweep_join.cc so the batch plane sweep and the incremental DeltaEngine
// (engine/delta_engine.h) run one implementation:
//
//   * IntervalOverlapIndex — per-axis strict-interval-overlap queries over
//     the non-degenerate boxes, now *updatable*: point mutations tombstone
//     the stale sorted entry and park the live interval in a small overflow
//     buffer, and an amortized rebuild re-sorts once the dead+overflow
//     fraction crosses a threshold (no balanced tree — the flat
//     block-summary layout is what makes the queries fast, so mutations
//     pay a deferred re-sort instead of per-update pointer surgery).
//   * CandidateBitset — the per-row mark/drain bitset that unions the two
//     axis queries (plus the degenerate ids) into an ascending-id candidate
//     stream without a per-row sort.
//   * PolygonBoxes + ResolveExplicitMask — the per-polygon mbb SoA and the
//     explicit-pair resolution kernel (one-axis-cross shortcut, full
//     Compute-CDR for both-axes-cross/degenerate pairs). Keeping resolution
//     here guarantees the delta path recomputes exactly the masks the sweep
//     would emit — the Digest equivalence contract depends on it.

#ifndef CARDIR_ENGINE_INTERVAL_INDEX_H_
#define CARDIR_ENGINE_INTERVAL_INDEX_H_

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/compute_cdr.h"
#include "engine/interval_kernel.h"
#include "geometry/box.h"
#include "geometry/region.h"

namespace cardir {

/// Interval-overlap index over one axis of the non-degenerate boxes:
/// entries sorted by interval start, pruned by a two-level max-over-ends
/// block summary. ForEachOverlap reports every indexed interval strictly
/// overlapping the query: one lower_bound bounds the candidates to a prefix
/// (start < query end), then the scan skips every 64-entry block — and
/// every 64-block superblock — whose max end fails end > query start.
/// The flat layout beats the pointer-free segment tree it replaced by ~3x
/// on the gather-bound map workloads: skip decisions are sequential loads
/// over a dense summary array rather than a branchy recursive descent, and
/// surviving blocks are scanned as contiguous doubles.
///
/// Mutations (Update/Append/Remove) keep queries exact without re-sorting
/// per call: the stale sorted entry is tombstoned (its end set to −inf, so
/// the possibly-stale block maxima stay *conservative* — a block is skipped
/// only when its recorded max end fails the query, which the true max then
/// fails too), the live interval goes to an overflow buffer scanned
/// linearly per query, and the whole index rebuilds from its authoritative
/// per-id state once dead + overflow entries exceed max(64, size/8).
class IntervalOverlapIndex {
 public:
  static constexpr size_t kBlock = 64;           // Entries per block.
  static constexpr size_t kSuper = 64 * kBlock;  // Entries per superblock.

  /// (Re)builds from scratch: entry i covers [lo[i], hi[i]] and is indexed
  /// unless skip[i] != 0 (degenerate boxes are enumerated separately).
  void Build(const std::vector<double>& lo, const std::vector<double>& hi,
             const std::vector<uint8_t>& skip);

  /// Replaces entry `id`'s interval (id < size()); skip removes it from
  /// query results. Amortized O(1) + the deferred rebuild share.
  void Update(size_t id, double lo, double hi, bool skip);

  /// Appends the entry for a brand-new id == size().
  void Append(double lo, double hi, bool skip);

  /// Erases entry `id` and renumbers every id above it down by one — the
  /// contract of RelationStore::EraseRegion. O(size log size) (rebuild).
  void Remove(size_t id);

  /// Ids covered (including skipped/tombstoned ones).
  size_t size() const { return cur_lo_.size(); }

  /// Tombstoned + overflow entries awaiting the amortized rebuild (test
  /// hook: reaches 0 right after a rebuild).
  size_t pending() const { return dead_ + overflow_ids_.size(); }

  size_t bytes() const {
    return (ids_.capacity() + overflow_ids_.capacity()) * sizeof(uint32_t) +
           (lo_.capacity() + hi_.capacity() + block_max_.capacity() +
            super_max_.capacity() + cur_lo_.capacity() + cur_hi_.capacity() +
            overflow_lo_.capacity() + overflow_hi_.capacity()) *
               sizeof(double) +
           cur_skip_.capacity() * sizeof(uint8_t) +
           pos_.capacity() * sizeof(uint64_t);
  }

  /// Invokes `fn(id)` for every indexed id with lo_id < qhi and hi_id >
  /// qlo — exactly the strict-overlap candidates of the query interval.
  /// Order is unspecified (callers union into a CandidateBitset); each live
  /// id is reported at most once.
  template <typename Fn>
  void ForEachOverlap(double qlo, double qhi, Fn&& fn) const {
    const size_t limit = static_cast<size_t>(
        std::lower_bound(lo_.begin(), lo_.end(), qhi) - lo_.begin());
    for (size_t s = 0; s * kSuper < limit; ++s) {
      if (!(super_max_[s] > qlo)) continue;
      const size_t block_end =
          std::min((s + 1) * (kSuper / kBlock), (limit + kBlock - 1) / kBlock);
      for (size_t b = s * (kSuper / kBlock); b < block_end; ++b) {
        if (!(block_max_[b] > qlo)) continue;
        const size_t end = std::min(limit, (b + 1) * kBlock);
        for (size_t p = b * kBlock; p < end; ++p) {
          if (hi_[p] > qlo) fn(ids_[p]);
        }
      }
    }
    for (size_t p = 0; p < overflow_ids_.size(); ++p) {
      if (overflow_lo_[p] < qhi && overflow_hi_[p] > qlo) {
        fn(overflow_ids_[p]);
      }
    }
  }

 private:
  // pos_ encoding: absent (skipped), a main-array position, or a tagged
  // overflow slot.
  static constexpr uint64_t kAbsent = ~uint64_t{0};
  static constexpr uint64_t kOverflowTag = uint64_t{1} << 63;

  void Rebuild();
  void RebuildIfStale();
  void RemoveOverflowAt(size_t slot);

  std::vector<uint32_t> ids_;      // Indexed ids, sorted by lo.
  std::vector<double> lo_;         // Sorted interval starts (lower_bound key).
  std::vector<double> hi_;         // Interval ends (−inf = tombstone).
  std::vector<double> block_max_;  // Max end per kBlock entries.
  std::vector<double> super_max_;  // Max end per kSuper entries.
  // Authoritative per-id state the amortized rebuild re-sorts from.
  std::vector<double> cur_lo_, cur_hi_;
  std::vector<uint8_t> cur_skip_;
  std::vector<uint64_t> pos_;  // id → main position / overflow slot / absent.
  // Updated-but-not-yet-rebuilt live entries, scanned linearly per query.
  std::vector<uint32_t> overflow_ids_;
  std::vector<double> overflow_lo_, overflow_hi_;
  size_t dead_ = 0;  // Tombstones in the main arrays.
};

/// Per-row candidate accumulator: one bit per region. The two axis queries
/// and the degenerate-id list Mark bits, the union is drained in ascending
/// id order with countr_zero — duplicates between the sources collapse for
/// free, and no per-row sort is needed. Drain re-zeroes the words, so the
/// bitset is clean for the next row.
class CandidateBitset {
 public:
  void Reset(size_t bits) { words_.assign((bits + 63) / 64, 0); }

  void Mark(uint32_t j) { words_[j >> 6] |= uint64_t{1} << (j & 63); }
  void Clear(uint32_t j) { words_[j >> 6] &= ~(uint64_t{1} << (j & 63)); }

  template <typename Fn>
  void Drain(Fn&& fn) {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      words_[w] = 0;
      while (word != 0) {
        const uint32_t j = static_cast<uint32_t>(
            w * 64 + static_cast<size_t>(std::countr_zero(word)));
        word &= word - 1;
        fn(j);
      }
    }
  }

  size_t bytes() const { return words_.capacity() * sizeof(uint64_t); }

 private:
  std::vector<uint64_t> words_;
};

/// Per-polygon bounding boxes of all regions, flattened SoA with row
/// offsets — the one-axis-cross shortcut reads these instead of rescanning
/// polygon vertices per crossing pair. Updatable for the delta engine:
/// replacing a region with the same polygon count overwrites in place,
/// otherwise the arrays are spliced.
struct PolygonBoxes {
  std::vector<uint64_t> offsets;  // regions + 1 entries.
  std::vector<double> min_x, max_x, min_y, max_y;

  void Build(const std::vector<const Region*>& regions);
  void ReplaceRegion(size_t i, const Region& region);
  void AppendRegion(const Region& region);
  void EraseRegion(size_t i);
  size_t bytes() const {
    return offsets.capacity() * sizeof(uint64_t) +
           (min_x.capacity() + max_x.capacity() + min_y.capacity() +
            max_y.capacity()) *
               sizeof(double);
  }
};

/// Resolves the relation mask of one *explicit* pair (primary i, reference
/// j) — `code` must be non-resolvable (RelationStore::IsExplicit). Exactly
/// the sweep emit pass's per-pair resolution: degenerate boxes and
/// both-axes-crossing pairs run the full Compute-CDR against the profiled
/// reference mbb; a single crossing axis takes the shortcut — with (say)
/// the y class fixed at cy, every point of the primary lies in tile row cy,
/// and each polygon's connected boundary spans its full mbb x-extent, so
/// three strict compares of the polygon's x-bounds against the reference's
/// x-lines decide its tile columns (see sweep_join.cc for the exactness
/// argument). Inline because the sweep calls it once per explicit pair.
inline uint16_t ResolveExplicitMask(uint8_t code, const Region& primary,
                                    const Box& reference_box,
                                    const RegionProfile& profile, size_t i,
                                    size_t j, const PolygonBoxes& poly,
                                    CdrMetricsDelta* metrics,
                                    CdrScratch* scratch) {
  const std::array<uint16_t, kNumClassPairCodes>& table =
      ClassPairRelationTable();
  const uint8_t cx = static_cast<uint8_t>(code >> 2);
  const uint8_t cy = static_cast<uint8_t>(code & 0b0011u);
  if (profile.cross_override[i] != 0 || profile.cross_override[j] != 0 ||
      (cx == 3 && cy == 3)) {
    // Degenerate box or both axes crossing: the dense engine's crossing
    // path, full Compute-CDR against the profiled mbb.
    return ComputeCdrUnchecked(primary, reference_box, metrics, scratch)
        .relation.mask();
  }
  uint16_t mask = 0;
  if (cx == 3) {
    // x crossing: row fixed at cy; each polygon's x-extent decides its
    // columns.
    const double m1 = profile.min_x[j];
    const double m2 = profile.max_x[j];
    for (uint64_t p = poly.offsets[i]; p < poly.offsets[i + 1]; ++p) {
      if (poly.min_x[p] < m1) mask |= table[cy];
      if (poly.max_x[p] > m1 && poly.min_x[p] < m2) {
        mask |= table[(1u << 2) | cy];
      }
      if (poly.max_x[p] > m2) mask |= table[(2u << 2) | cy];
    }
  } else {
    // y crossing: column fixed at cx, rows from y-extents.
    const double m1 = profile.min_y[j];
    const double m2 = profile.max_y[j];
    for (uint64_t p = poly.offsets[i]; p < poly.offsets[i + 1]; ++p) {
      if (poly.min_y[p] < m1) mask |= table[cx << 2];
      if (poly.max_y[p] > m1 && poly.min_y[p] < m2) {
        mask |= table[(cx << 2) | 1u];
      }
      if (poly.max_y[p] > m2) mask |= table[(cx << 2) | 2u];
    }
  }
  return mask;
}

}  // namespace cardir

#endif  // CARDIR_ENGINE_INTERVAL_INDEX_H_
