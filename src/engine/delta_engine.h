// DeltaEngine: incremental maintenance of a RelationStore under region
// insert / move / remove, instead of a full ComputeAllRelations per
// mutation (884.9 ms at n = 50k on the bench host).
//
// The dirty-set argument reuses the sweep join's completeness bound
// (engine/sweep_join.cc): a pair is explicit only when an axis class is
// kCross or a box is degenerate, and a kCross class forces strict interval
// overlap on that axis. A mutation of region k changes only the class
// codes of pairs involving k, so the pairs whose *stored* state can change
// — explicit before or explicit after — are contained in
//
//   strict-overlap candidates of k's OLD box ∪ candidates of its NEW box
//   ∪ {pairs against a degenerate box} (every row when k itself is one),
//
// which two updatable per-axis IntervalOverlapIndex queries per box
// enumerate in O(log n + out). Everything outside the dirty set either
// doesn't involve k (its code is untouched) or stays implicit on both
// sides of the mutation — and implicit relations are re-derived from the
// live box profile on every read, so they need no storage update at all.
// Dirty pairs are re-resolved with the exact sweep resolution kernel
// (ResolveExplicitMask) and spliced into the store via its mutation layer
// (ReplaceRow for the mutated row, PatchPair for the mutated column; see
// relation_store.h and DESIGN.md §3.20).
//
// Correctness contract: after any mutation sequence, Digest() is
// bit-identical to a fresh ComputeAllPairs / ComputeRelationStore over the
// same geometries (the randomized mutation-script oracle in
// tests/engine/delta_engine_test.cc holds the two against each other).
//
// Locking discipline: one mutex serializes Insert/Move/Remove/Digest; the
// per-engine DeltaScratch is reused under that lock. `store()` returns the
// live store without locking — callers synchronize reads against mutations
// themselves (Configuration is single-threaded; concurrent readers take
// Digest() or copy the engine).

#ifndef CARDIR_ENGINE_DELTA_ENGINE_H_
#define CARDIR_ENGINE_DELTA_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "engine/batch_engine.h"
#include "engine/interval_index.h"
#include "engine/relation_store.h"
#include "geometry/region.h"
#include "util/status.h"

namespace cardir {

/// What one mutation touched. `touched` lists the *dirty* ordered pairs —
/// every (k, j) and (j, k) whose stored relation was re-examined (for
/// Remove, with pre-removal indices; the pairs themselves are deleted).
/// Relations outside this set kept their stored state; implicit relations
/// involving the mutated region re-derive from the updated box profile on
/// read without appearing here unless they were dirty-set candidates.
struct DeltaResult {
  std::vector<std::pair<uint32_t, uint32_t>> touched;
  size_t pairs_reresolved = 0;  ///< Dirty pairs re-resolved explicitly.
  size_t pairs_implicit = 0;    ///< Dirty pairs that settled implicit.
  uint64_t apply_us = 0;        ///< Wall time of the apply, microseconds.
};

/// Per-engine working memory of the delta apply: the candidate bitset, the
/// Compute-CDR scratch arena and the reusable gather/emit vectors. Guarded
/// by the engine's mutex; escapes into cross-thread lambdas are forbidden
/// (analyzer scratch-escape check).
struct DeltaScratch {
  CandidateBitset bits;
  CdrScratch cdr;
  std::vector<uint32_t> affected;     // Dirty partner ids, ascending.
  std::vector<uint8_t> was_explicit;  // (j, k) explicit before, per partner.
  std::vector<uint32_t> cols;         // Rewritten row: explicit columns…
  std::vector<uint16_t> masks;        // …and their masks.

  size_t bytes() const {
    return bits.bytes() + affected.capacity() * sizeof(uint32_t) +
           was_explicit.capacity() * sizeof(uint8_t) +
           cols.capacity() * sizeof(uint32_t) +
           masks.capacity() * sizeof(uint16_t);
  }
};

/// Incrementally maintained all-pairs relation store (see file comment).
class DeltaEngine {
 public:
  DeltaEngine() = default;
  ~DeltaEngine();
  DeltaEngine(const DeltaEngine& other);
  DeltaEngine& operator=(const DeltaEngine& other);
  DeltaEngine(DeltaEngine&& other) noexcept;
  DeltaEngine& operator=(DeltaEngine&& other) noexcept;

  /// Builds the initial store with the batch sweep join, then adopts it.
  /// Fails like ComputeRelationStore (invalid region). `stats`, when
  /// non-null, receives the batch run's instrumentation.
  static Result<DeltaEngine> Build(std::vector<Region> regions,
                                   const EngineOptions& options = {},
                                   EngineStats* stats = nullptr);

  /// Adopts an already-computed store and the geometries it was computed
  /// from (regions[i] must be the region profiled at index i) — the
  /// promotion path Configuration uses so a computed store never pays a
  /// second batch run.
  static DeltaEngine Adopt(RelationStore store, std::vector<Region> regions);

  /// Appends `region` as index regions() and resolves its pairs against
  /// the existing set. Fails on invalid geometry (engine untouched).
  Result<DeltaResult> Insert(Region region);

  /// Replaces region `id`'s geometry and re-resolves exactly the dirty
  /// pairs of its old ∪ new box. Fails on bad id / invalid geometry.
  Result<DeltaResult> Move(size_t id, Region geometry);

  /// Removes region `id`; indices above it renumber down by one.
  Result<DeltaResult> Remove(size_t id);

  /// Order-independent digest over all pairs — bit-identical to a fresh
  /// ComputeAllPairsDigest on the current geometries. Takes the lock.
  uint64_t Digest() const;

  size_t regions() const { return regions_.size(); }

  /// The live store (unsynchronized — see the locking discipline above).
  const RelationStore& store() const { return store_; }

  /// The current geometry of region `id`.
  const Region& region(size_t id) const { return regions_[id]; }

  /// Footprint of the store plus the delta side-structures (indexes,
  /// polygon extents, scratch).
  size_t bytes() const;

 private:
  void GatherAffected(size_t id, bool all_rows, bool use_old, double old_lo_x,
                      double old_hi_x, double old_lo_y, double old_hi_y,
                      bool use_new, const Box& new_box);
  void SetDegenerate(size_t id, bool degenerate);
  void RechargeAux();
  size_t aux_bytes() const;

  mutable std::mutex mu_;
  std::vector<Region> regions_;
  std::vector<Box> boxes_;
  RelationStore store_;
  IntervalOverlapIndex x_index_, y_index_;
  std::vector<uint32_t> degenerate_ids_;  // Ascending; parity with sweep.
  PolygonBoxes poly_;
  DeltaScratch scratch_;
  size_t aux_charged_ = 0;  // Live bytes charged to mem.delta_engine.
};

}  // namespace cardir

#endif  // CARDIR_ENGINE_DELTA_ENGINE_H_
