// Plane-sweep spatial join: builds the RelationStore without enumerating
// all n·(n−1) pairs.
//
// The interval kernel's bound (interval_kernel.h): a pair is explicit —
// not resolvable from its class-pair code — only when an axis class is
// kCross or a box is degenerate. A kCross x class means the primary's
// x-interval strictly straddles a reference x-line, which forces strict
// x-interval overlap (lo_i < hi_j and lo_j < hi_i); likewise for y. So
//
//   explicit pairs ⊆ strict-x-overlaps ∪ strict-y-overlaps ∪
//                    {pairs touching a degenerate box},
//
// and the join only has to *enumerate* that superset, filtering each
// candidate with the same O(1) scalar classification the store's lookup
// uses. Enumeration is one interval-overlap query per row per axis
// against a static max-augmented segment tree over the boxes sorted by
// interval start — O(log n + out) per query — so the whole join is
// O(n log n + candidates), with candidates ≈ the MBB-interacting pairs
// instead of n².
//
// Resolution of an explicit pair:
//   * exactly one axis kCross, neither box degenerate — the one-axis-cross
//     shortcut: with (say) the y class fixed at cy ≠ kCross, every point
//     of the primary lies in tile row cy, so the relation is the union of
//     table[(column << 2) | cy] over the columns the primary's boundary
//     reaches. Each polygon's boundary is connected, hence its x-projection
//     is its full mbb x-extent, and three strict compares of the polygon's
//     x-bounds against the reference's x-lines decide its columns under
//     the same inclusive boundary semantics as prefilter.h (an on-line
//     polygon edge resolves to the containing side, matching how the
//     classifier put on-line boxes in kLow/kMid/kHigh). No point-in-polygon
//     test can change the answer: the B-tile swallow needs the reference
//     box inside the primary's mbb band on *both* axes, i.e. both axes
//     kCross. Audit builds recheck every pair against the full algorithm.
//   * both axes kCross, or a degenerate box — full Compute-CDR, exactly
//     the dense engine's crossing-queue path.
//
// Construction is two passes over the rows (count, then emit into
// exact-size storage at per-row offsets), so peak memory is the final
// store plus the sweep indexes — there is never a grow-and-merge copy of
// the overlay. Both passes run as parallel row strips on the work-stealing
// pool; emit writes are disjoint by construction, so the overlay is
// bit-identical for every thread count.

#include <algorithm>
#include <atomic>
#include <vector>

#include "audit/audit.h"
#include "audit/invariants.h"
#include "core/compute_cdr.h"
#include "engine/interval_index.h"
#include "engine/interval_kernel.h"
#include "engine/prefilter.h"
#include "engine/relation_store.h"
#include "engine/thread_pool.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace cardir {
namespace {

// Per-participant working memory of the sweep, reused across every strip a
// participant runs in both passes: the candidate row bitset and the
// Compute-CDR scratch arena. The bitset (one bit per region) is how a row's
// two axis queries combine without a sort (see engine/interval_index.h); it
// is zeroed on construction and re-zeroed by Drain, so each row starts
// clean. Indexed by pool participant id; a participant never runs two
// strips concurrently, so no synchronisation is needed. Escapes into
// cross-thread lambdas are forbidden (analyzer scratch-escape check).
struct SweepScratch {
  CandidateBitset bits;
  CdrScratch cdr;
};

std::vector<const Region*> RegionPointers(const std::vector<Region>& regions) {
  std::vector<const Region*> pointers;
  pointers.reserve(regions.size());
  for (const Region& region : regions) pointers.push_back(&region);
  return pointers;
}

}  // namespace

Result<RelationStore> ComputeRelationStore(
    const std::vector<const Region*>& regions, const EngineOptions& options,
    EngineStats* stats) {
  const size_t n = regions.size();
  if (stats != nullptr) *stats = EngineStats();
  CARDIR_TRACE_SPAN("engine.run");
  const uint64_t run_start_us = obs::TraceNowMicros();

  // Validate every region once up front (same contract as ComputeAllPairs).
  CARDIR_RECORD_EVENT(kPhase, "engine.validate", 0, n);
  std::vector<Box> boxes(n);
  {
    CARDIR_TRACE_SPAN("engine.validate");
    for (size_t i = 0; i < n; ++i) {
      if (regions[i] == nullptr) {
        return Status::InvalidArgument(
            StrFormat("region #%zu: null region", i));
      }
      const Status status = regions[i]->Validate();
      if (!status.ok()) {
        return Status::InvalidArgument(
            StrFormat("region #%zu: %s", i, status.message().c_str()));
      }
      boxes[i] = regions[i]->BoundingBox();
    }
  }

  RelationStore store;
  store.profile_ = RegionProfile::FromBoxes(boxes);
  store.relations_ = &ClassPairRelations();
  store.row_offsets_.assign(n + 1, 0);
  if (n < 2) {
    store.charge_ = RelationStore::MemCharge(store.bytes());
    return store;
  }

  CARDIR_METRIC_COUNT("engine.runs", 1);
  CARDIR_METRIC_COUNT("engine.regions", n);
  const RegionProfile& profile = store.profile_;

  // Plan: the per-axis overlap indexes over the non-degenerate boxes, the
  // degenerate id list (explicit against every primary, enumerated
  // directly), and the per-polygon box SoA for the shortcut.
  IntervalOverlapIndex x_index, y_index;
  std::vector<uint32_t> degenerate_ids;
  PolygonBoxes poly;
  {
    CARDIR_TRACE_SPAN("sweep.plan");
    CARDIR_RECORD_EVENT(kPhase, "sweep.plan", 1, n);
    if constexpr (kAuditEnabled) {
      CARDIR_RETURN_IF_ERROR(ValidateClassKernelOnce());
    }
    x_index.Build(profile.min_x, profile.max_x, profile.cross_override);
    y_index.Build(profile.min_y, profile.max_y, profile.cross_override);
    for (size_t i = 0; i < n; ++i) {
      if (profile.cross_override[i] != 0) {
        degenerate_ids.push_back(static_cast<uint32_t>(i));
      }
    }
    poly.Build(regions);
  }

  // The raw class-pair code of (i, j) — identical arithmetic to
  // RelationStore::ClassPairCode, so the emit-side explicit set is exactly
  // the set the store's cursor iteration reconstructs.
  const auto pair_code = [&profile](size_t i, size_t j) {
    const uint8_t cx = static_cast<uint8_t>(ClassifyIntervalClass(
        profile.min_x[i], profile.max_x[i], profile.min_x[j],
        profile.max_x[j]));
    const uint8_t cy = static_cast<uint8_t>(ClassifyIntervalClass(
        profile.min_y[i], profile.max_y[i], profile.min_y[j],
        profile.max_y[j]));
    return static_cast<uint8_t>(static_cast<uint8_t>(cx << 2 | cy) |
                                profile.cross_override[i] |
                                profile.cross_override[j]);
  };

  // Invokes `fn(j)` for every candidate reference of row i — the
  // strict-overlap union plus the degenerate ids — in ascending id order.
  // Every explicit pair of the row is visited (see the bound in the file
  // comment); resolvable candidates are filtered by `pair_code` at the use
  // site. The two axis queries mark bits in the participant's row bitset
  // (which both deduplicates their intersection and sorts by construction —
  // a per-row std::sort of the candidate list was the single hottest part
  // of an earlier version); iteration then drains and re-zeroes the words.
  const auto for_each_candidate = [&](size_t i, SweepScratch& ws, auto&& fn) {
    if (profile.cross_override[i] != 0) {
      // Degenerate primary: nothing in the row is box-resolvable.
      for (size_t j = 0; j < n; ++j) {
        if (j != i) fn(static_cast<uint32_t>(j));
      }
      return;
    }
    const auto mark = [&ws](uint32_t j) { ws.bits.Mark(j); };
    x_index.ForEachOverlap(profile.min_x[i], profile.max_x[i], mark);
    y_index.ForEachOverlap(profile.min_y[i], profile.max_y[i], mark);
    for (const uint32_t j : degenerate_ids) mark(j);
    ws.bits.Clear(static_cast<uint32_t>(i));  // Never self-paired.
    ws.bits.Drain(fn);
  };

  const int threads = ThreadPool::ResolveThreadCount(options.threads);
  ThreadPool pool(threads);
  CARDIR_METRIC_GAUGE_SET("engine.pool.threads", threads);
  std::vector<SweepScratch> scratch(static_cast<size_t>(threads));
  for (SweepScratch& ws : scratch) ws.bits.Reset(n);
  std::atomic<size_t> crossing_total{0};
  std::atomic<size_t> candidates_total{0};
  std::atomic<size_t> emitted_total{0};

  // Pass 1 — count: explicit pairs per row, so the overlay can be
  // allocated at its exact final size and pass 2 can write every row at a
  // disjoint precomputed offset (no append buffers, no merge copy — the
  // peak overlay footprint *is* the final footprint).
  std::vector<uint64_t> row_counts(n, 0);
  {
    CARDIR_TRACE_SPAN("sweep.count");
    CARDIR_RECORD_EVENT(kPhase, "sweep.count", 2, n);
    pool.ParallelFor(
        n, options.chunk_size,
        [&](size_t begin, size_t end, size_t participant) {
          CARDIR_PROFILE_FRAME("sweep.strip");
          CARDIR_RECORD_EVENT(kSweep, "strip", begin, end - begin);
          SweepScratch& ws = scratch[participant];
          size_t candidates = 0, crossing = 0;
          for (size_t i = begin; i < end; ++i) {
            uint64_t count = 0;
            for_each_candidate(i, ws, [&](uint32_t j) {
              ++candidates;
              if (RelationStore::ResolvableCode(pair_code(i, j))) return;
              ++count;
              // Same crossing accounting as the dense engine's deferral.
              if (MbbProperlyCrossesReferenceLines(boxes[i], boxes[j])) {
                ++crossing;
              }
            });
            row_counts[i] = count;
          }
          candidates_total.fetch_add(candidates, std::memory_order_relaxed);
          crossing_total.fetch_add(crossing, std::memory_order_relaxed);
          CARDIR_METRIC_COUNT("engine.sweep.candidates", candidates);
          CARDIR_METRIC_COUNT("engine.pairs.crossing", crossing);
        });
  }

  uint64_t overlay_total = 0;
  for (size_t i = 0; i < n; ++i) {
    store.row_offsets_[i] = overlay_total;
    overlay_total += row_counts[i];
  }
  store.row_offsets_[n] = overlay_total;
  store.overlay_masks_.resize(overlay_total);

  // Pass 2 — emit: re-enumerate each row (the sweep queries are a few
  // percent of the resolve cost) and write its explicit masks at the row's
  // offset, ascending by reference — the store's canonical overlay order.
  {
    CARDIR_TRACE_SPAN("sweep.emit");
    CARDIR_RECORD_EVENT(kPhase, "sweep.emit", 3, overlay_total);
    uint16_t* overlay = store.overlay_masks_.data();
    pool.ParallelFor(
        n, options.chunk_size,
        [&](size_t begin, size_t end, size_t participant) {
          CARDIR_PROFILE_FRAME("sweep.strip");
          CARDIR_RECORD_EVENT(kSweep, "strip", begin, end - begin);
          SweepScratch& ws = scratch[participant];
          CdrMetricsDelta cdr_metrics;  // Flushed once per strip.
          size_t emitted = 0;
          for (size_t i = begin; i < end; ++i) {
            uint64_t cursor = store.row_offsets_[i];
            for_each_candidate(i, ws, [&](uint32_t j) {
              const uint8_t code = pair_code(i, j);
              if (RelationStore::ResolvableCode(code)) return;
              // One-axis-cross shortcut / full Compute-CDR, shared with the
              // delta engine (see interval_index.h for the exactness
              // argument).
              overlay[cursor++] =
                  ResolveExplicitMask(code, *regions[i], boxes[j], profile, i,
                                      j, poly, &cdr_metrics, &ws.cdr);
              ++emitted;
            });
          }
          cdr_metrics.FlushToRegistry();
          emitted_total.fetch_add(emitted, std::memory_order_relaxed);
          CARDIR_METRIC_COUNT("engine.pairs.computed", emitted);
        });
  }

  // Sweep-scratch telemetry (the worker_scratch pattern): the row bitsets
  // plus the two overlap indexes reach their maximum extent by the end of
  // the run and die with this scope — charge and release so the
  // mem.sweep_scratch peak records the run's high-water while live returns
  // to zero. CdrScratch lanes are charged by mem.edge_soa continuously.
  {
    size_t scratch_bytes = x_index.bytes() + y_index.bytes();
    for (const SweepScratch& ws : scratch) {
      scratch_bytes += ws.bits.bytes();
    }
    if (scratch_bytes != 0) {
      CARDIR_MEMSTAT_ALLOC("sweep_scratch", scratch_bytes);
      CARDIR_MEMSTAT_FREE("sweep_scratch", scratch_bytes);
    }
  }

  const size_t total_pairs = n * (n - 1);
  const size_t implicit_total = total_pairs - overlay_total;
  CARDIR_RECORD_EVENT(kPhase, "sweep.done", 4, total_pairs);
  CARDIR_METRIC_COUNT("engine.pairs.total", total_pairs);
  CARDIR_METRIC_COUNT("engine.pairs.prefiltered", implicit_total);
  CARDIR_METRIC_OBSERVE("engine.run_us", obs::TraceNowMicros() - run_start_us);

  // Audit seams: the emit pass filled exactly the slots the count pass
  // allocated, and every stored relation — implicit, shortcut, or full —
  // agrees with the full algorithm on the real geometry.
  CARDIR_AUDIT(AuditExactCover(emitted_total.load(), overlay_total,
                               "sweep join overlay emit"));
  if constexpr (kAuditEnabled) {
    store.ForEach([&regions](size_t i, size_t j,
                             const CardinalRelation& relation) {
      CARDIR_AUDIT(
          AuditPrefilterAgreement(relation, *regions[i], *regions[j]));
    });
  }

  store.charge_ = RelationStore::MemCharge(store.bytes());
  if (stats != nullptr) {
    stats->total_pairs = total_pairs;
    stats->prefiltered_pairs = implicit_total;
    stats->computed_pairs = overlay_total;
    stats->crossing_pairs = crossing_total.load();
    stats->threads_used = threads;
  }
  return store;
}

Result<RelationStore> ComputeRelationStore(const std::vector<Region>& regions,
                                           const EngineOptions& options,
                                           EngineStats* stats) {
  return ComputeRelationStore(RegionPointers(regions), options, stats);
}

}  // namespace cardir
