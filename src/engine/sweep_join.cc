// Plane-sweep spatial join: builds the RelationStore without enumerating
// all n·(n−1) pairs.
//
// The interval kernel's bound (interval_kernel.h): a pair is explicit —
// not resolvable from its class-pair code — only when an axis class is
// kCross or a box is degenerate. A kCross x class means the primary's
// x-interval strictly straddles a reference x-line, which forces strict
// x-interval overlap (lo_i < hi_j and lo_j < hi_i); likewise for y. So
//
//   explicit pairs ⊆ strict-x-overlaps ∪ strict-y-overlaps ∪
//                    {pairs touching a degenerate box},
//
// and the join only has to *enumerate* that superset, filtering each
// candidate with the same O(1) scalar classification the store's lookup
// uses. Enumeration is one interval-overlap query per row per axis
// against a static max-augmented segment tree over the boxes sorted by
// interval start — O(log n + out) per query — so the whole join is
// O(n log n + candidates), with candidates ≈ the MBB-interacting pairs
// instead of n².
//
// Resolution of an explicit pair:
//   * exactly one axis kCross, neither box degenerate — the one-axis-cross
//     shortcut: with (say) the y class fixed at cy ≠ kCross, every point
//     of the primary lies in tile row cy, so the relation is the union of
//     table[(column << 2) | cy] over the columns the primary's boundary
//     reaches. Each polygon's boundary is connected, hence its x-projection
//     is its full mbb x-extent, and three strict compares of the polygon's
//     x-bounds against the reference's x-lines decide its columns under
//     the same inclusive boundary semantics as prefilter.h (an on-line
//     polygon edge resolves to the containing side, matching how the
//     classifier put on-line boxes in kLow/kMid/kHigh). No point-in-polygon
//     test can change the answer: the B-tile swallow needs the reference
//     box inside the primary's mbb band on *both* axes, i.e. both axes
//     kCross. Audit builds recheck every pair against the full algorithm.
//   * both axes kCross, or a degenerate box — full Compute-CDR, exactly
//     the dense engine's crossing-queue path.
//
// Construction is two passes over the rows (count, then emit into
// exact-size storage at per-row offsets), so peak memory is the final
// store plus the sweep indexes — there is never a grow-and-merge copy of
// the overlay. Both passes run as parallel row strips on the work-stealing
// pool; emit writes are disjoint by construction, so the overlay is
// bit-identical for every thread count.

#include <algorithm>
#include <atomic>
#include <bit>
#include <limits>
#include <vector>

#include "audit/audit.h"
#include "audit/invariants.h"
#include "core/compute_cdr.h"
#include "engine/interval_kernel.h"
#include "engine/prefilter.h"
#include "engine/relation_store.h"
#include "engine/thread_pool.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace cardir {
namespace {

// Static interval-overlap index over one axis of the non-degenerate boxes:
// entries sorted by interval start, pruned by a two-level max-over-ends
// block summary. ForEachOverlap reports every indexed interval strictly
// overlapping the query: one lower_bound bounds the candidates to a prefix
// (start < query end), then the scan skips every 64-entry block — and
// every 64-block superblock — whose max end fails end > query start.
// The flat layout beats the pointer-free segment tree it replaced by ~3x
// on the gather-bound map workloads: skip decisions are sequential loads
// over a dense summary array rather than a branchy recursive descent, and
// surviving blocks are scanned as contiguous doubles.
class IntervalOverlapIndex {
 public:
  static constexpr size_t kBlock = 64;           // Entries per block.
  static constexpr size_t kSuper = 64 * kBlock;  // Entries per superblock.

  void Build(const std::vector<double>& lo, const std::vector<double>& hi,
             const std::vector<uint8_t>& skip) {
    const size_t n = lo.size();
    ids_.clear();
    for (size_t i = 0; i < n; ++i) {
      if (skip[i] == 0) ids_.push_back(static_cast<uint32_t>(i));
    }
    std::sort(ids_.begin(), ids_.end(), [&lo](uint32_t a, uint32_t b) {
      return lo[a] < lo[b] || (lo[a] == lo[b] && a < b);
    });
    const size_t m = ids_.size();
    lo_.resize(m);
    hi_.resize(m);
    for (size_t p = 0; p < m; ++p) {
      lo_[p] = lo[ids_[p]];
      hi_[p] = hi[ids_[p]];
    }
    constexpr double kNegInf = -std::numeric_limits<double>::infinity();
    block_max_.assign((m + kBlock - 1) / kBlock, kNegInf);
    super_max_.assign((m + kSuper - 1) / kSuper, kNegInf);
    for (size_t p = 0; p < m; ++p) {
      block_max_[p / kBlock] = std::max(block_max_[p / kBlock], hi_[p]);
      super_max_[p / kSuper] = std::max(super_max_[p / kSuper], hi_[p]);
    }
  }

  size_t bytes() const {
    return ids_.capacity() * sizeof(uint32_t) +
           (lo_.capacity() + hi_.capacity() + block_max_.capacity() +
            super_max_.capacity()) *
               sizeof(double);
  }

  /// Invokes `fn(id)` for every indexed id with lo_id < qhi and hi_id >
  /// qlo — exactly the strict-overlap candidates of the query interval.
  template <typename Fn>
  void ForEachOverlap(double qlo, double qhi, Fn&& fn) const {
    const size_t limit = static_cast<size_t>(
        std::lower_bound(lo_.begin(), lo_.end(), qhi) - lo_.begin());
    for (size_t s = 0; s * kSuper < limit; ++s) {
      if (!(super_max_[s] > qlo)) continue;
      const size_t block_end =
          std::min((s + 1) * (kSuper / kBlock), (limit + kBlock - 1) / kBlock);
      for (size_t b = s * (kSuper / kBlock); b < block_end; ++b) {
        if (!(block_max_[b] > qlo)) continue;
        const size_t end = std::min(limit, (b + 1) * kBlock);
        for (size_t p = b * kBlock; p < end; ++p) {
          if (hi_[p] > qlo) fn(ids_[p]);
        }
      }
    }
  }

 private:
  std::vector<uint32_t> ids_;      // Non-degenerate box ids, sorted by lo.
  std::vector<double> lo_;         // Sorted interval starts (lower_bound key).
  std::vector<double> hi_;         // Interval ends, parallel to ids_.
  std::vector<double> block_max_;  // Max end per kBlock entries.
  std::vector<double> super_max_;  // Max end per kSuper entries.
};

// Per-participant working memory of the sweep, reused across every strip a
// participant runs in both passes: the candidate row bitset and the
// Compute-CDR scratch arena. The bitset (one bit per region) is how a row's
// two axis queries combine without a sort: each query sets bits, the union
// is iterated in ascending-id order with countr_zero, and duplicates
// between the axes collapse for free. It is zeroed on construction and
// re-zeroed during iteration, so each row starts clean. Indexed by pool
// participant id; a participant never runs two strips concurrently, so no
// synchronisation is needed. Escapes into cross-thread lambdas are
// forbidden (analyzer scratch-escape check).
struct SweepScratch {
  std::vector<uint64_t> row_bits;
  CdrScratch cdr;
};

// Per-polygon bounding boxes of all regions, flattened SoA with row
// offsets — the one-axis-cross shortcut reads these instead of rescanning
// polygon vertices per crossing pair.
struct PolygonBoxes {
  std::vector<uint64_t> offsets;  // regions + 1 entries.
  std::vector<double> min_x, max_x, min_y, max_y;
};

std::vector<const Region*> RegionPointers(const std::vector<Region>& regions) {
  std::vector<const Region*> pointers;
  pointers.reserve(regions.size());
  for (const Region& region : regions) pointers.push_back(&region);
  return pointers;
}

}  // namespace

Result<RelationStore> ComputeRelationStore(
    const std::vector<const Region*>& regions, const EngineOptions& options,
    EngineStats* stats) {
  const size_t n = regions.size();
  if (stats != nullptr) *stats = EngineStats();
  CARDIR_TRACE_SPAN("engine.run");
  const uint64_t run_start_us = obs::TraceNowMicros();

  // Validate every region once up front (same contract as ComputeAllPairs).
  CARDIR_RECORD_EVENT(kPhase, "engine.validate", 0, n);
  std::vector<Box> boxes(n);
  {
    CARDIR_TRACE_SPAN("engine.validate");
    for (size_t i = 0; i < n; ++i) {
      if (regions[i] == nullptr) {
        return Status::InvalidArgument(
            StrFormat("region #%zu: null region", i));
      }
      const Status status = regions[i]->Validate();
      if (!status.ok()) {
        return Status::InvalidArgument(
            StrFormat("region #%zu: %s", i, status.message().c_str()));
      }
      boxes[i] = regions[i]->BoundingBox();
    }
  }

  RelationStore store;
  store.profile_ = RegionProfile::FromBoxes(boxes);
  store.relations_ = &ClassPairRelations();
  store.row_offsets_.assign(n + 1, 0);
  if (n < 2) {
    store.charge_ = RelationStore::MemCharge(store.bytes());
    return store;
  }

  CARDIR_METRIC_COUNT("engine.runs", 1);
  CARDIR_METRIC_COUNT("engine.regions", n);
  const RegionProfile& profile = store.profile_;
  const std::array<uint16_t, kNumClassPairCodes>& table =
      ClassPairRelationTable();

  // Plan: the per-axis overlap indexes over the non-degenerate boxes, the
  // degenerate id list (explicit against every primary, enumerated
  // directly), and the per-polygon box SoA for the shortcut.
  IntervalOverlapIndex x_index, y_index;
  std::vector<uint32_t> degenerate_ids;
  PolygonBoxes poly;
  {
    CARDIR_TRACE_SPAN("sweep.plan");
    CARDIR_RECORD_EVENT(kPhase, "sweep.plan", 1, n);
    if constexpr (kAuditEnabled) {
      CARDIR_RETURN_IF_ERROR(ValidateClassKernelOnce());
    }
    x_index.Build(profile.min_x, profile.max_x, profile.cross_override);
    y_index.Build(profile.min_y, profile.max_y, profile.cross_override);
    for (size_t i = 0; i < n; ++i) {
      if (profile.cross_override[i] != 0) {
        degenerate_ids.push_back(static_cast<uint32_t>(i));
      }
    }
    poly.offsets.resize(n + 1);
    for (size_t i = 0; i < n; ++i) {
      poly.offsets[i] = poly.min_x.size();
      for (const Polygon& polygon : regions[i]->polygons()) {
        const Box box = polygon.BoundingBox();
        poly.min_x.push_back(box.min_x());
        poly.max_x.push_back(box.max_x());
        poly.min_y.push_back(box.min_y());
        poly.max_y.push_back(box.max_y());
      }
    }
    poly.offsets[n] = poly.min_x.size();
  }

  // The raw class-pair code of (i, j) — identical arithmetic to
  // RelationStore::ClassPairCode, so the emit-side explicit set is exactly
  // the set the store's cursor iteration reconstructs.
  const auto pair_code = [&profile](size_t i, size_t j) {
    const uint8_t cx = static_cast<uint8_t>(ClassifyIntervalClass(
        profile.min_x[i], profile.max_x[i], profile.min_x[j],
        profile.max_x[j]));
    const uint8_t cy = static_cast<uint8_t>(ClassifyIntervalClass(
        profile.min_y[i], profile.max_y[i], profile.min_y[j],
        profile.max_y[j]));
    return static_cast<uint8_t>(static_cast<uint8_t>(cx << 2 | cy) |
                                profile.cross_override[i] |
                                profile.cross_override[j]);
  };

  // Invokes `fn(j)` for every candidate reference of row i — the
  // strict-overlap union plus the degenerate ids — in ascending id order.
  // Every explicit pair of the row is visited (see the bound in the file
  // comment); resolvable candidates are filtered by `pair_code` at the use
  // site. The two axis queries mark bits in the participant's row bitset
  // (which both deduplicates their intersection and sorts by construction —
  // a per-row std::sort of the candidate list was the single hottest part
  // of an earlier version); iteration then drains and re-zeroes the words.
  const size_t bit_words = (n + 63) / 64;
  const auto for_each_candidate = [&](size_t i, SweepScratch& ws, auto&& fn) {
    if (profile.cross_override[i] != 0) {
      // Degenerate primary: nothing in the row is box-resolvable.
      for (size_t j = 0; j < n; ++j) {
        if (j != i) fn(static_cast<uint32_t>(j));
      }
      return;
    }
    uint64_t* bits = ws.row_bits.data();
    const auto mark = [bits](uint32_t j) {
      bits[j >> 6] |= uint64_t{1} << (j & 63);
    };
    x_index.ForEachOverlap(profile.min_x[i], profile.max_x[i], mark);
    y_index.ForEachOverlap(profile.min_y[i], profile.max_y[i], mark);
    for (const uint32_t j : degenerate_ids) mark(j);
    bits[i >> 6] &= ~(uint64_t{1} << (i & 63));  // Never self-paired.
    for (size_t w = 0; w < bit_words; ++w) {
      uint64_t word = bits[w];
      bits[w] = 0;
      while (word != 0) {
        const uint32_t j = static_cast<uint32_t>(
            w * 64 + static_cast<size_t>(std::countr_zero(word)));
        word &= word - 1;
        fn(j);
      }
    }
  };

  const int threads = ThreadPool::ResolveThreadCount(options.threads);
  ThreadPool pool(threads);
  CARDIR_METRIC_GAUGE_SET("engine.pool.threads", threads);
  std::vector<SweepScratch> scratch(static_cast<size_t>(threads));
  for (SweepScratch& ws : scratch) ws.row_bits.assign(bit_words, 0);
  std::atomic<size_t> crossing_total{0};
  std::atomic<size_t> candidates_total{0};
  std::atomic<size_t> emitted_total{0};

  // Pass 1 — count: explicit pairs per row, so the overlay can be
  // allocated at its exact final size and pass 2 can write every row at a
  // disjoint precomputed offset (no append buffers, no merge copy — the
  // peak overlay footprint *is* the final footprint).
  std::vector<uint64_t> row_counts(n, 0);
  {
    CARDIR_TRACE_SPAN("sweep.count");
    CARDIR_RECORD_EVENT(kPhase, "sweep.count", 2, n);
    pool.ParallelFor(
        n, options.chunk_size,
        [&](size_t begin, size_t end, size_t participant) {
          CARDIR_PROFILE_FRAME("sweep.strip");
          CARDIR_RECORD_EVENT(kSweep, "strip", begin, end - begin);
          SweepScratch& ws = scratch[participant];
          size_t candidates = 0, crossing = 0;
          for (size_t i = begin; i < end; ++i) {
            uint64_t count = 0;
            for_each_candidate(i, ws, [&](uint32_t j) {
              ++candidates;
              if (RelationStore::ResolvableCode(pair_code(i, j))) return;
              ++count;
              // Same crossing accounting as the dense engine's deferral.
              if (MbbProperlyCrossesReferenceLines(boxes[i], boxes[j])) {
                ++crossing;
              }
            });
            row_counts[i] = count;
          }
          candidates_total.fetch_add(candidates, std::memory_order_relaxed);
          crossing_total.fetch_add(crossing, std::memory_order_relaxed);
          CARDIR_METRIC_COUNT("engine.sweep.candidates", candidates);
          CARDIR_METRIC_COUNT("engine.pairs.crossing", crossing);
        });
  }

  uint64_t overlay_total = 0;
  for (size_t i = 0; i < n; ++i) {
    store.row_offsets_[i] = overlay_total;
    overlay_total += row_counts[i];
  }
  store.row_offsets_[n] = overlay_total;
  store.overlay_masks_.resize(overlay_total);

  // Pass 2 — emit: re-enumerate each row (the sweep queries are a few
  // percent of the resolve cost) and write its explicit masks at the row's
  // offset, ascending by reference — the store's canonical overlay order.
  {
    CARDIR_TRACE_SPAN("sweep.emit");
    CARDIR_RECORD_EVENT(kPhase, "sweep.emit", 3, overlay_total);
    uint16_t* overlay = store.overlay_masks_.data();
    pool.ParallelFor(
        n, options.chunk_size,
        [&](size_t begin, size_t end, size_t participant) {
          CARDIR_PROFILE_FRAME("sweep.strip");
          CARDIR_RECORD_EVENT(kSweep, "strip", begin, end - begin);
          SweepScratch& ws = scratch[participant];
          CdrMetricsDelta cdr_metrics;  // Flushed once per strip.
          size_t emitted = 0;
          for (size_t i = begin; i < end; ++i) {
            uint64_t cursor = store.row_offsets_[i];
            for_each_candidate(i, ws, [&](uint32_t j) {
              const uint8_t code = pair_code(i, j);
              if (RelationStore::ResolvableCode(code)) return;
              const uint8_t cx = static_cast<uint8_t>(code >> 2);
              const uint8_t cy = static_cast<uint8_t>(code & 0b0011u);
              uint16_t mask;
              if (profile.cross_override[i] != 0 ||
                  profile.cross_override[j] != 0 || (cx == 3 && cy == 3)) {
                // Degenerate box or both axes crossing: the dense engine's
                // crossing path, full Compute-CDR against the profiled mbb.
                mask = ComputeCdrUnchecked(*regions[i], boxes[j],
                                           &cdr_metrics, &ws.cdr)
                           .relation.mask();
              } else if (cx == 3) {
                // One-axis-cross shortcut, x crossing: row fixed at cy;
                // each polygon's x-extent decides its columns (see the
                // exactness argument in the file comment).
                const double m1 = profile.min_x[j];
                const double m2 = profile.max_x[j];
                mask = 0;
                for (uint64_t p = poly.offsets[i]; p < poly.offsets[i + 1];
                     ++p) {
                  if (poly.min_x[p] < m1) mask |= table[cy];
                  if (poly.max_x[p] > m1 && poly.min_x[p] < m2) {
                    mask |= table[(1u << 2) | cy];
                  }
                  if (poly.max_x[p] > m2) mask |= table[(2u << 2) | cy];
                }
              } else {
                // y crossing: column fixed at cx, rows from y-extents.
                const double m1 = profile.min_y[j];
                const double m2 = profile.max_y[j];
                mask = 0;
                for (uint64_t p = poly.offsets[i]; p < poly.offsets[i + 1];
                     ++p) {
                  if (poly.min_y[p] < m1) mask |= table[cx << 2];
                  if (poly.max_y[p] > m1 && poly.min_y[p] < m2) {
                    mask |= table[(cx << 2) | 1u];
                  }
                  if (poly.max_y[p] > m2) mask |= table[(cx << 2) | 2u];
                }
              }
              overlay[cursor++] = mask;
              ++emitted;
            });
          }
          cdr_metrics.FlushToRegistry();
          emitted_total.fetch_add(emitted, std::memory_order_relaxed);
          CARDIR_METRIC_COUNT("engine.pairs.computed", emitted);
        });
  }

  // Sweep-scratch telemetry (the worker_scratch pattern): the row bitsets
  // plus the two overlap indexes reach their maximum extent by the end of
  // the run and die with this scope — charge and release so the
  // mem.sweep_scratch peak records the run's high-water while live returns
  // to zero. CdrScratch lanes are charged by mem.edge_soa continuously.
  {
    size_t scratch_bytes = x_index.bytes() + y_index.bytes();
    for (const SweepScratch& ws : scratch) {
      scratch_bytes += ws.row_bits.capacity() * sizeof(uint64_t);
    }
    if (scratch_bytes != 0) {
      CARDIR_MEMSTAT_ALLOC("sweep_scratch", scratch_bytes);
      CARDIR_MEMSTAT_FREE("sweep_scratch", scratch_bytes);
    }
  }

  const size_t total_pairs = n * (n - 1);
  const size_t implicit_total = total_pairs - overlay_total;
  CARDIR_RECORD_EVENT(kPhase, "sweep.done", 4, total_pairs);
  CARDIR_METRIC_COUNT("engine.pairs.total", total_pairs);
  CARDIR_METRIC_COUNT("engine.pairs.prefiltered", implicit_total);
  CARDIR_METRIC_OBSERVE("engine.run_us", obs::TraceNowMicros() - run_start_us);

  // Audit seams: the emit pass filled exactly the slots the count pass
  // allocated, and every stored relation — implicit, shortcut, or full —
  // agrees with the full algorithm on the real geometry.
  CARDIR_AUDIT(AuditExactCover(emitted_total.load(), overlay_total,
                               "sweep join overlay emit"));
  if constexpr (kAuditEnabled) {
    store.ForEach([&regions](size_t i, size_t j,
                             const CardinalRelation& relation) {
      CARDIR_AUDIT(
          AuditPrefilterAgreement(relation, *regions[i], *regions[j]));
    });
  }

  store.charge_ = RelationStore::MemCharge(store.bytes());
  if (stats != nullptr) {
    stats->total_pairs = total_pairs;
    stats->prefiltered_pairs = implicit_total;
    stats->computed_pairs = overlay_total;
    stats->crossing_pairs = crossing_total.load();
    stats->threads_used = threads;
  }
  return store;
}

Result<RelationStore> ComputeRelationStore(const std::vector<Region>& regions,
                                           const EngineOptions& options,
                                           EngineStats* stats) {
  return ComputeRelationStore(RegionPointers(regions), options, stats);
}

}  // namespace cardir
