#include "engine/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "audit/audit.h"
#include "audit/invariants.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cardir {

ThreadPool::ThreadPool(int threads) {
  const int total = std::max(1, threads);
  workers_.reserve(static_cast<size_t>(total - 1));
  for (int i = 1; i < total; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  job_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::ResolveThreadCount(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw <= 1) {
    // hardware_concurrency() is allowed to return 0 ("unknown") and
    // containerised hosts with restricted cpusets often pin it at 1 — the
    // project's own bench host reports hardware_concurrency=1, which is why
    // the parallel rows of BENCH_engine.json sit at ~1.0x (see ROADMAP).
    // CARDIR_THREADS lets such hosts opt parallel runs back in without
    // threading --threads flags through every caller.
    // Reading the environment is not reentrancy-safe in general, but this
    // runs before any pool thread exists.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char* env = std::getenv("CARDIR_THREADS")) {
      char* end = nullptr;
      const long parsed = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && parsed > 0 && parsed <= 4096) {
        return static_cast<int>(parsed);
      }
    }
  }
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::ParallelFor(size_t count, size_t chunk_size,
                             const std::function<void(size_t, size_t)>& body) {
  ParallelFor(count, chunk_size,
              std::function<void(size_t, size_t, size_t)>(
                  [&body](size_t begin, size_t end, size_t) {
                    body(begin, end);
                  }));
}

void ThreadPool::ParallelFor(
    size_t count, size_t chunk_size,
    const std::function<void(size_t, size_t, size_t)>& body) {
  if (count == 0) return;
  CARDIR_METRIC_COUNT("engine.pool.parallel_for_calls", 1);
  CARDIR_METRIC_OBSERVE("engine.pool.items", count);
  const size_t participants = static_cast<size_t>(thread_count());
  if (participants == 1) {
    CARDIR_METRIC_COUNT("engine.pool.chunks_executed", 1);
    body(0, count, 0);
    return;
  }

  // Audit seam: the chunks claimed by the participants must cover
  // [0, count) exactly — no index skipped, none run twice. The counting
  // wrapper only exists in audit builds; release builds run `body` direct.
  std::atomic<uint64_t> audit_covered{0};
  std::function<void(size_t, size_t, size_t)> audit_body;
  const std::function<void(size_t, size_t, size_t)>* job = &body;
  if constexpr (kAuditEnabled) {
    audit_body = [&body, &audit_covered](size_t begin, size_t end,
                                         size_t participant) {
      audit_covered.fetch_add(end - begin, std::memory_order_relaxed);
      body(begin, end, participant);
    };
    job = &audit_body;
  }
  if (chunk_size == 0) {
    // Several chunks per participant so that stealing can even things out.
    chunk_size = std::max<size_t>(1, count / (participants * 8));
  }

  std::vector<Shard> shards(participants);
  const size_t per_shard = count / participants;
  size_t remainder = count % participants;
  size_t cursor = 0;
  for (Shard& shard : shards) {
    const size_t extent = per_shard + (remainder > 0 ? 1 : 0);
    if (remainder > 0) --remainder;
    shard.next.store(cursor, std::memory_order_relaxed);
    shard.end = cursor + extent;
    cursor += extent;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    shards_ = std::move(shards);
    chunk_size_ = chunk_size;
    body_ = job;
    ++generation_;
    workers_running_ = static_cast<int>(workers_.size());
  }
  job_ready_.notify_all();

  RunParticipant(0);  // The caller is participant 0.

  {
    std::unique_lock<std::mutex> lock(mutex_);
    job_done_.wait(lock, [this] { return workers_running_ == 0; });
    body_ = nullptr;
  }

  if constexpr (kAuditEnabled) {
    CARDIR_AUDIT(AuditExactCover(audit_covered.load(), count,
                                 "ThreadPool::ParallelFor chunk cover"));
  }
}

void ThreadPool::WorkerLoop(size_t participant) {
  uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      job_ready_.wait(lock, [this, seen_generation] {
        return stopping_ || generation_ != seen_generation;
      });
      if (stopping_) return;
      seen_generation = generation_;
    }
    RunParticipant(participant);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --workers_running_;
    }
    job_done_.notify_all();
  }
}

void ThreadPool::RunParticipant(size_t participant) {
  CARDIR_TRACE_SPAN("pool.participant");
  const size_t num_shards = shards_.size();
  size_t executed = 0, stolen = 0;  // Flushed once per participant.
  // Drain the home shard (shard index = participant index), then steal
  // chunks from the others round-robin.
  for (size_t k = 0; k < num_shards; ++k) {
    Shard& shard = shards_[(participant + k) % num_shards];
    for (;;) {
      const size_t begin =
          shard.next.fetch_add(chunk_size_, std::memory_order_relaxed);
      if (begin >= shard.end) break;
      ++executed;
      if (k != 0) {
        ++stolen;
        // Depth of the victim's queue at steal time (items left behind).
        CARDIR_METRIC_OBSERVE("engine.pool.steal_queue_depth",
                              shard.end - begin);
      }
      (*body_)(begin, std::min(begin + chunk_size_, shard.end), participant);
    }
  }
  CARDIR_METRIC_COUNT("engine.pool.chunks_executed", executed);
  CARDIR_METRIC_COUNT("engine.pool.chunks_stolen", stolen);
}

}  // namespace cardir
