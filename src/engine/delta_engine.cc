#include "engine/delta_engine.h"

#include <cassert>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/memstats.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"

namespace cardir {

DeltaEngine::~DeltaEngine() {
  if (aux_charged_ != 0) CARDIR_MEMSTAT_FREE("delta_engine", aux_charged_);
}

DeltaEngine::DeltaEngine(const DeltaEngine& other) {
  const std::lock_guard<std::mutex> lock(other.mu_);
  regions_ = other.regions_;
  boxes_ = other.boxes_;
  store_ = other.store_;
  x_index_ = other.x_index_;
  y_index_ = other.y_index_;
  degenerate_ids_ = other.degenerate_ids_;
  poly_ = other.poly_;
  scratch_.bits.Reset(regions_.size());
  RechargeAux();
}

DeltaEngine& DeltaEngine::operator=(const DeltaEngine& other) {
  if (this != &other) {
    DeltaEngine copy(other);  // Locks `other`; swap-free two-step keeps the
    *this = std::move(copy);  // lock ordering trivial (never holds both).
  }
  return *this;
}

// Moving from an engine that another thread is mutating is a caller bug, so
// the move operations skip the (throwing) lock and stay noexcept.
DeltaEngine::DeltaEngine(DeltaEngine&& other) noexcept
    : regions_(std::move(other.regions_)),
      boxes_(std::move(other.boxes_)),
      store_(std::move(other.store_)),
      x_index_(std::move(other.x_index_)),
      y_index_(std::move(other.y_index_)),
      degenerate_ids_(std::move(other.degenerate_ids_)),
      poly_(std::move(other.poly_)),
      scratch_(std::move(other.scratch_)),
      aux_charged_(std::exchange(other.aux_charged_, 0)) {}

DeltaEngine& DeltaEngine::operator=(DeltaEngine&& other) noexcept {
  if (this != &other) {
    if (aux_charged_ != 0) CARDIR_MEMSTAT_FREE("delta_engine", aux_charged_);
    regions_ = std::move(other.regions_);
    boxes_ = std::move(other.boxes_);
    store_ = std::move(other.store_);
    x_index_ = std::move(other.x_index_);
    y_index_ = std::move(other.y_index_);
    degenerate_ids_ = std::move(other.degenerate_ids_);
    poly_ = std::move(other.poly_);
    scratch_ = std::move(other.scratch_);
    aux_charged_ = std::exchange(other.aux_charged_, 0);
  }
  return *this;
}

Result<DeltaEngine> DeltaEngine::Build(std::vector<Region> regions,
                                       const EngineOptions& options,
                                       EngineStats* stats) {
  Result<RelationStore> store = ComputeRelationStore(regions, options, stats);
  if (!store.ok()) return store.status();
  return Adopt(std::move(store.value()), std::move(regions));
}

DeltaEngine DeltaEngine::Adopt(RelationStore store,
                               std::vector<Region> regions) {
  DeltaEngine engine;
  engine.store_ = std::move(store);
  engine.regions_ = std::move(regions);
  const RegionProfile& profile = engine.store_.profile_;
  const size_t n = profile.size();
  assert(engine.regions_.size() == n);
  engine.boxes_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    engine.boxes_.emplace_back(profile.min_x[i], profile.min_y[i],
                               profile.max_x[i], profile.max_y[i]);
    if (profile.cross_override[i] != 0) {
      engine.degenerate_ids_.push_back(static_cast<uint32_t>(i));
    }
  }
  engine.x_index_.Build(profile.min_x, profile.max_x, profile.cross_override);
  engine.y_index_.Build(profile.min_y, profile.max_y, profile.cross_override);
  std::vector<const Region*> pointers;
  pointers.reserve(n);
  for (const Region& region : engine.regions_) pointers.push_back(&region);
  engine.poly_.Build(pointers);
  engine.scratch_.bits.Reset(n);
  engine.RechargeAux();
  return engine;
}

void DeltaEngine::GatherAffected(size_t id, bool all_rows, bool use_old,
                                 double old_lo_x, double old_hi_x,
                                 double old_lo_y, double old_hi_y,
                                 bool use_new, const Box& new_box) {
  DeltaScratch& ws = scratch_;
  ws.affected.clear();
  const size_t n = regions_.size();
  if (all_rows) {
    // A degenerate box (old or new) pairs explicitly with everyone; the
    // index queries can't bound that, so the whole id space is dirty.
    ws.affected.reserve(n);
    for (size_t j = 0; j < n; ++j) {
      if (j != id) ws.affected.push_back(static_cast<uint32_t>(j));
    }
    return;
  }
  ws.bits.Reset(n);
  const auto mark = [&ws](uint32_t j) { ws.bits.Mark(j); };
  if (use_old) {
    x_index_.ForEachOverlap(old_lo_x, old_hi_x, mark);
    y_index_.ForEachOverlap(old_lo_y, old_hi_y, mark);
  }
  if (use_new) {
    x_index_.ForEachOverlap(new_box.min_x(), new_box.max_x(), mark);
    y_index_.ForEachOverlap(new_box.min_y(), new_box.max_y(), mark);
  }
  for (const uint32_t j : degenerate_ids_) ws.bits.Mark(j);
  if (id < n) ws.bits.Clear(static_cast<uint32_t>(id));
  ws.bits.Drain([&ws](uint32_t j) { ws.affected.push_back(j); });
}

void DeltaEngine::SetDegenerate(size_t id, bool degenerate) {
  const uint32_t id32 = static_cast<uint32_t>(id);
  const auto it =
      std::lower_bound(degenerate_ids_.begin(), degenerate_ids_.end(), id32);
  const bool present = it != degenerate_ids_.end() && *it == id32;
  if (degenerate && !present) {
    degenerate_ids_.insert(it, id32);
  } else if (!degenerate && present) {
    degenerate_ids_.erase(it);
  }
}

Result<DeltaResult> DeltaEngine::Insert(Region region) {
  const std::lock_guard<std::mutex> lock(mu_);
  const uint64_t start_us = obs::TraceNowMicros();
  const Status valid = region.Validate();
  if (!valid.ok()) return valid;
  const size_t id = regions_.size();
  const Box box = region.BoundingBox();
  const bool degenerate = box.IsEmpty() || box.IsDegenerate();

  // Dirty set: candidates of the new box only — the column postdates every
  // base row, so nothing was explicit against it before.
  GatherAffected(id, degenerate, /*use_old=*/false, 0.0, 0.0, 0.0, 0.0,
                 /*use_new=*/true, box);
  DeltaScratch& ws = scratch_;

  store_.AppendRegion(box);
  boxes_.push_back(box);
  poly_.AppendRegion(region);
  regions_.push_back(std::move(region));
  x_index_.Append(box.min_x(), box.max_x(), degenerate);
  y_index_.Append(box.min_y(), box.max_y(), degenerate);
  if (degenerate) degenerate_ids_.push_back(static_cast<uint32_t>(id));

  DeltaResult result;
  result.touched.reserve(ws.affected.size() * 2);
  const RegionProfile& profile = store_.profile_;
  CdrMetricsDelta cdr_metrics;
  ws.cols.clear();
  ws.masks.clear();
  size_t reresolved = 0;
  size_t implicit = 0;
  for (const uint32_t j : ws.affected) {
    const uint8_t code_ij = store_.ClassPairCode(id, j);
    if (!RelationStore::ResolvableCode(code_ij)) {
      ws.cols.push_back(j);
      ws.masks.push_back(ResolveExplicitMask(code_ij, regions_[id], boxes_[j],
                                             profile, id, j, poly_,
                                             &cdr_metrics, &ws.cdr));
      ++reresolved;
    } else {
      ++implicit;
    }
    const uint8_t code_ji = store_.ClassPairCode(j, id);
    if (!RelationStore::ResolvableCode(code_ji)) {
      const uint16_t mask =
          ResolveExplicitMask(code_ji, regions_[j], box, profile, j, id, poly_,
                              &cdr_metrics, &ws.cdr);
      store_.PatchPair(j, id, /*was_explicit=*/false, /*now_explicit=*/true,
                       mask);
      ++reresolved;
    } else {
      ++implicit;
    }
    result.touched.emplace_back(static_cast<uint32_t>(id), j);
    result.touched.emplace_back(j, static_cast<uint32_t>(id));
  }
  store_.ReplaceRow(id, ws.cols, ws.masks);
  for (const uint32_t j : ws.affected) store_.MaybeCompactRow(j);
  cdr_metrics.FlushToRegistry();
  store_.RechargeMem();
  RechargeAux();

  result.pairs_reresolved = reresolved;
  result.pairs_implicit = implicit;
  result.apply_us = obs::TraceNowMicros() - start_us;
  CARDIR_METRIC_COUNT("delta.pairs_reresolved", reresolved);
  CARDIR_METRIC_COUNT("delta.pairs_implicit", implicit);
  CARDIR_METRIC_OBSERVE("delta.apply_us", result.apply_us);
  CARDIR_RECORD_EVENT(kDelta, "delta.insert", id, result.touched.size());
  return result;
}

Result<DeltaResult> DeltaEngine::Move(size_t id, Region geometry) {
  const std::lock_guard<std::mutex> lock(mu_);
  const uint64_t start_us = obs::TraceNowMicros();
  if (id >= regions_.size()) {
    return Status::InvalidArgument("Move: region id out of range");
  }
  const Status valid = geometry.Validate();
  if (!valid.ok()) return valid;

  const RegionProfile& profile = store_.profile_;
  const double old_lo_x = profile.min_x[id];
  const double old_hi_x = profile.max_x[id];
  const double old_lo_y = profile.min_y[id];
  const double old_hi_y = profile.max_y[id];
  const bool old_degenerate = profile.cross_override[id] != 0;
  const Box new_box = geometry.BoundingBox();
  const bool new_degenerate = new_box.IsEmpty() || new_box.IsDegenerate();

  GatherAffected(id, old_degenerate || new_degenerate,
                 /*use_old=*/true, old_lo_x, old_hi_x, old_lo_y, old_hi_y,
                 /*use_new=*/true, new_box);
  DeltaScratch& ws = scratch_;

  // (j, id) explicitness must be sampled before the profile moves: it is
  // the `was_explicit` PatchPair needs to know whether the base row still
  // carries a slot for the column.
  ws.was_explicit.clear();
  ws.was_explicit.reserve(ws.affected.size());
  for (const uint32_t j : ws.affected) {
    ws.was_explicit.push_back(static_cast<uint8_t>(
        RelationStore::ResolvableCode(store_.ClassPairCode(j, id)) ? 0 : 1));
  }

  store_.SetRegionBox(id, new_box);
  boxes_[id] = new_box;
  poly_.ReplaceRegion(id, geometry);
  regions_[id] = std::move(geometry);
  x_index_.Update(id, new_box.min_x(), new_box.max_x(), new_degenerate);
  y_index_.Update(id, new_box.min_y(), new_box.max_y(), new_degenerate);
  SetDegenerate(id, new_degenerate);

  // Re-resolve the dirty pairs against the updated profile: row id is
  // rewritten wholesale, column id patched in every affected row.
  DeltaResult result;
  result.touched.reserve(ws.affected.size() * 2);
  CdrMetricsDelta cdr_metrics;
  ws.cols.clear();
  ws.masks.clear();
  size_t reresolved = 0;
  size_t implicit = 0;
  for (size_t k = 0; k < ws.affected.size(); ++k) {
    const uint32_t j = ws.affected[k];
    const uint8_t code_ij = store_.ClassPairCode(id, j);
    if (!RelationStore::ResolvableCode(code_ij)) {
      ws.cols.push_back(j);
      ws.masks.push_back(ResolveExplicitMask(code_ij, regions_[id], boxes_[j],
                                             profile, id, j, poly_,
                                             &cdr_metrics, &ws.cdr));
      ++reresolved;
    } else {
      ++implicit;
    }
    const uint8_t code_ji = store_.ClassPairCode(j, id);
    const bool was = ws.was_explicit[k] != 0;
    if (!RelationStore::ResolvableCode(code_ji)) {
      const uint16_t mask =
          ResolveExplicitMask(code_ji, regions_[j], new_box, profile, j, id,
                              poly_, &cdr_metrics, &ws.cdr);
      store_.PatchPair(j, id, was, /*now_explicit=*/true, mask);
      ++reresolved;
    } else {
      if (was) store_.PatchPair(j, id, was, /*now_explicit=*/false, 0);
      ++implicit;
    }
    result.touched.emplace_back(static_cast<uint32_t>(id), j);
    result.touched.emplace_back(j, static_cast<uint32_t>(id));
  }
  store_.ReplaceRow(id, ws.cols, ws.masks);
  for (const uint32_t j : ws.affected) store_.MaybeCompactRow(j);
  cdr_metrics.FlushToRegistry();
  store_.RechargeMem();
  RechargeAux();

  result.pairs_reresolved = reresolved;
  result.pairs_implicit = implicit;
  result.apply_us = obs::TraceNowMicros() - start_us;
  CARDIR_METRIC_COUNT("delta.pairs_reresolved", reresolved);
  CARDIR_METRIC_COUNT("delta.pairs_implicit", implicit);
  CARDIR_METRIC_OBSERVE("delta.apply_us", result.apply_us);
  CARDIR_RECORD_EVENT(kDelta, "delta.move", id, result.touched.size());
  return result;
}

Result<DeltaResult> DeltaEngine::Remove(size_t id) {
  const std::lock_guard<std::mutex> lock(mu_);
  const uint64_t start_us = obs::TraceNowMicros();
  if (id >= regions_.size()) {
    return Status::InvalidArgument("Remove: region id out of range");
  }
  const RegionProfile& profile = store_.profile_;
  const bool degenerate = profile.cross_override[id] != 0;
  GatherAffected(id, degenerate, /*use_old=*/true, profile.min_x[id],
                 profile.max_x[id], profile.min_y[id], profile.max_y[id],
                 /*use_new=*/false, Box());
  DeltaScratch& ws = scratch_;

  // EraseRegion's precondition: every explicit (j, id) patched implicit
  // first, so the base slots of column id are on record and convert to
  // ghosts. The dirty set is exactly those pairs (completeness bound).
  DeltaResult result;
  result.touched.reserve(ws.affected.size() * 2);
  for (const uint32_t j : ws.affected) {
    if (!RelationStore::ResolvableCode(store_.ClassPairCode(j, id))) {
      store_.PatchPair(j, id, /*was_explicit=*/true, /*now_explicit=*/false,
                       0);
    }
    result.touched.emplace_back(static_cast<uint32_t>(id), j);
    result.touched.emplace_back(j, static_cast<uint32_t>(id));
  }
  store_.EraseRegion(id);
  regions_.erase(regions_.begin() + static_cast<ptrdiff_t>(id));
  boxes_.erase(boxes_.begin() + static_cast<ptrdiff_t>(id));
  poly_.EraseRegion(id);
  x_index_.Remove(id);
  y_index_.Remove(id);
  SetDegenerate(id, false);
  for (auto it = std::lower_bound(degenerate_ids_.begin(),
                                  degenerate_ids_.end(),
                                  static_cast<uint32_t>(id));
       it != degenerate_ids_.end(); ++it) {
    --*it;  // Ids above the erased one renumber down.
  }
  for (const uint32_t j : ws.affected) {
    store_.MaybeCompactRow(j > id ? j - 1 : j);
  }
  store_.RechargeMem();
  RechargeAux();

  // Every dirty pair ends non-explicit (deleted with the region).
  result.pairs_implicit = result.touched.size();
  result.apply_us = obs::TraceNowMicros() - start_us;
  CARDIR_METRIC_COUNT("delta.pairs_implicit", result.pairs_implicit);
  CARDIR_METRIC_OBSERVE("delta.apply_us", result.apply_us);
  CARDIR_RECORD_EVENT(kDelta, "delta.remove", id, result.touched.size());
  return result;
}

uint64_t DeltaEngine::Digest() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return store_.Digest();
}

size_t DeltaEngine::bytes() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return store_.bytes() + aux_bytes();
}

size_t DeltaEngine::aux_bytes() const {
  return x_index_.bytes() + y_index_.bytes() + poly_.bytes() +
         scratch_.bytes() + boxes_.capacity() * sizeof(Box) +
         degenerate_ids_.capacity() * sizeof(uint32_t);
}

void DeltaEngine::RechargeAux() {
  const size_t now = aux_bytes();
  const size_t grew = now > aux_charged_ ? now - aux_charged_ : 0;
  const size_t shrank = now < aux_charged_ ? aux_charged_ - now : 0;
  if (grew != 0) CARDIR_MEMSTAT_ALLOC("delta_engine", grew);
  if (shrank != 0) CARDIR_MEMSTAT_FREE("delta_engine", shrank);
  aux_charged_ = now;
}

}  // namespace cardir
