// RelationStore: the sweep engine's sub-quadratic all-pairs result type.
//
// The dense PairMatrix stores 2 bytes for every one of the n·(n−1) ordered
// pairs — 50 MB at n = 5000 — even though on map-like workloads the vast
// majority of relations are *implicit*: determined entirely by the two
// boxes' per-axis interval classes (engine/interval_kernel.h). The store
// therefore keeps only
//
//   * the SoA box profile of the run's regions (4 doubles + 1 byte each),
//     from which any implicit pair's relation is recomputed in O(1) — two
//     scalar interval classifications and one 16-entry table lookup, the
//     exact kernel the engine's classify phase uses, so the recomputed
//     relation is bit-identical to what the dense engine would have stored;
//   * an *explicit-pair overlay*: the packed relation masks of exactly the
//     pairs that are not box-resolvable (either axis class kCross, or a
//     degenerate/empty box), laid out row-major with ascending reference
//     index inside each row, plus one offset per row. Per-row, the overlay
//     is the run-length structure the plane sweep emits: each row's code
//     sequence over ascending reference index is long implicit runs broken
//     by the row's few crossing pairs, and only the breaks are stored.
//
// Overlay membership of a pair is itself derivable from the boxes (the
// same O(1) classification), so the overlay needs no reference indices:
// row iteration walks the row left to right consuming overlay masks at the
// non-resolvable positions, and (i, j) lookup ranks j among row i's
// non-resolvable columns. On the map workloads the overlay holds ~2% of
// the pairs, putting the whole store two orders of magnitude under the
// dense matrix (see DESIGN.md §3.19 and the mem.relation_store telemetry
// in BENCH_engine.json).
//
// ComputeRelationStore builds the store with a plane-sweep spatial join
// instead of all-pairs enumeration: see engine/sweep_join.cc.
//
// Mutation layer (DESIGN.md §3.20): the store supports single-region
// rewrites without rebuilding the positional base. The base overlay stays
// immutable between EraseRegion calls; edits are layered on top as
//   * per-row *patch lists* — sparse column overrides, sorted by column,
//     each recording whether the base row still carries an (orphaned) slot
//     for that column (`consumes_base`), so the walk stays cursor-aligned;
//     *ghost* entries consume a base slot of an erased column;
//   * *loose rows* — rows rewritten wholesale as explicit column-id/mask
//     pairs, their base slots orphaned.
// Callers (the DeltaEngine, the mutation property tests) own the
// consistency contract: after every profile change (SetRegionBox /
// AppendRegion), every pair whose explicitness or mask changed must be
// patched before the store is read — exactly the dirty set the sweep
// completeness bound yields. MaybeCompactRow converts a long patch list to
// a loose row, keeping per-row walk overhead amortized O(1) per patch.

#ifndef CARDIR_ENGINE_RELATION_STORE_H_
#define CARDIR_ENGINE_RELATION_STORE_H_

#include <algorithm>
#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/cardinal_relation.h"
#include "engine/batch_engine.h"
#include "engine/interval_kernel.h"
#include "geometry/region.h"
#include "obs/memstats.h"
#include "util/status.h"

namespace cardir {

/// Mixes one relation-matrix entry into a 64-bit value. Pair digests are
/// *summed*, so a total over any enumeration order is comparable: the batch
/// engine's digest mode and RelationStore::Digest use this same mix, and
/// two equal digests mean bit-identical matrices (modulo hash collisions).
inline uint64_t MixPairDigest(size_t primary, size_t reference,
                              uint16_t mask) {
  uint64_t z = (static_cast<uint64_t>(primary) << 40) ^
               (static_cast<uint64_t>(reference) << 16) ^ mask;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class RelationStore;

/// Computes the all-pairs relation store of `regions` with the plane-sweep
/// spatial join (engine/sweep_join.cc): only pairs whose boxes interact on
/// an axis are ever examined, every other pair is resolved implicitly from
/// its interval classes. The result is bit-identical to ComputeAllPairs for
/// every thread count (the oracle tests hold the two against each other).
/// `options.use_prefilter` is ignored — implicit resolution *is* the
/// prefilter; `options.chunk_size` is the sweep strip height in rows.
Result<RelationStore> ComputeRelationStore(
    const std::vector<const Region*>& regions,
    const EngineOptions& options = {}, EngineStats* stats = nullptr);

/// Value-typed overload.
Result<RelationStore> ComputeRelationStore(
    const std::vector<Region>& regions, const EngineOptions& options = {},
    EngineStats* stats = nullptr);

/// The relation between every ordered pair of an engine run's regions,
/// stored as box profile + explicit-pair overlay (see file comment).
/// Cheaply movable; charges its footprint to the mem.relation_store arena.
class RelationStore {
 public:
  RelationStore() = default;
  RelationStore(RelationStore&&) = default;
  RelationStore& operator=(RelationStore&&) = default;
  // Copies re-charge the arena for the clone's own footprint (the charge
  // is per-instance state, not shared).
  RelationStore(const RelationStore& other)
      : profile_(other.profile_),
        row_offsets_(other.row_offsets_),
        overlay_masks_(other.overlay_masks_),
        loose_(other.loose_),
        patches_(other.patches_),
        relations_(other.relations_),
        charge_(bytes()) {}
  RelationStore& operator=(const RelationStore& other) {
    if (this != &other) {
      profile_ = other.profile_;
      row_offsets_ = other.row_offsets_;
      overlay_masks_ = other.overlay_masks_;
      loose_ = other.loose_;
      patches_ = other.patches_;
      relations_ = other.relations_;
      charge_ = MemCharge(bytes());
    }
    return *this;
  }

  /// Regions covered by the store (indices in [0, regions())).
  size_t regions() const { return profile_.size(); }

  /// Ordered pairs represented: n·(n−1).
  size_t pair_count() const {
    const size_t n = profile_.size();
    return n < 2 ? 0 : n * (n - 1);
  }

  /// Base-overlay slots. On a freshly built store this is exactly the
  /// explicit pair count; after mutations it also counts slots orphaned by
  /// patches and loose rows (reclaimed only by a full rebuild).
  size_t overlay_pairs() const { return overlay_masks_.size(); }

  /// Storage footprint in bytes (what mem.relation_store is charged),
  /// including the mutation layer's patch lists and loose rows.
  size_t bytes() const {
    size_t total = (profile_.min_x.capacity() + profile_.max_x.capacity() +
                    profile_.min_y.capacity() + profile_.max_y.capacity()) *
                       sizeof(double) +
                   profile_.cross_override.capacity() * sizeof(uint8_t) +
                   row_offsets_.capacity() * sizeof(uint64_t) +
                   overlay_masks_.capacity() * sizeof(uint16_t);
    for (const auto& entry : loose_) {
      total += kEditNodeBytes +
               entry.second.cols.capacity() * sizeof(uint32_t) +
               entry.second.masks.capacity() * sizeof(uint16_t);
    }
    for (const auto& entry : patches_) {
      total += kEditNodeBytes + entry.second.capacity() * sizeof(RowPatch);
    }
    return total;
  }

  /// True when either axis class of (primary, reference) is kCross or a box
  /// is degenerate — i.e. the pair's mask lives in the overlay.
  bool IsExplicit(size_t primary, size_t reference) const {
    return !ResolvableCode(ClassPairCode(primary, reference));
  }

  /// The stored relation `primary R reference`. Precondition: both indices
  /// in range and distinct (returns the empty relation for primary ==
  /// reference). Implicit pairs are O(1); overlay pairs rank `reference`
  /// among the row's explicit columns, which is O(n) scalar
  /// classifications — fine for interactive queries, use ForEachInRow for
  /// bulk traversal.
  CardinalRelation Relation(size_t primary, size_t reference) const;

  /// Invokes `fn(reference, relation)` for every reference ≠ primary in
  /// ascending reference order — the canonical row order of PairMatrix.
  template <typename Fn>
  void ForEachInRow(size_t primary, Fn&& fn) const {
    const size_t n = profile_.size();
    if (!loose_.empty()) {
      const auto it = loose_.find(static_cast<uint32_t>(primary));
      if (it != loose_.end()) {
        // Loose row: the sorted explicit columns are authoritative, the
        // base slots (if any) are orphaned.
        const LooseRow& row = it->second;
        size_t k = 0;
        for (size_t j = 0; j < n; ++j) {
          if (j == primary) continue;
          if (k < row.cols.size() && row.cols[k] == j) {
            fn(j, CardinalRelation::FromMask(row.masks[k++]));
          } else {
            fn(j, (*relations_)[ClassPairCode(primary, j)]);
          }
        }
        return;
      }
    }
    const std::vector<RowPatch>* patches = FindPatches(primary);
    const uint16_t* overlay = overlay_masks_.data() + row_offsets_[primary];
    size_t cursor = 0;
    if (patches == nullptr) {
      for (size_t j = 0; j < n; ++j) {
        if (j == primary) continue;
        const uint8_t code = ClassPairCode(primary, j);
        if (ResolvableCode(code)) {
          fn(j, (*relations_)[code]);
        } else {
          fn(j, CardinalRelation::FromMask(overlay[cursor++]));
        }
      }
      assert(cursor == row_offsets_[primary + 1] - row_offsets_[primary]);
      return;
    }
    // Patched row: merge the base walk with the sorted patch list. Ghosts
    // consume an orphaned base slot of an erased column and are processed
    // at the top of their column's iteration — before the self-skip, since
    // renumbering can leave a ghost at the row's own index — and a final
    // pass drains ghosts parked past the last column.
    size_t pi = 0;
    const size_t pn = patches->size();
    for (size_t j = 0; j <= n; ++j) {
      while (pi < pn && (*patches)[pi].col == j && (*patches)[pi].is_ghost) {
        ++cursor;
        ++pi;
      }
      if (j == n) break;
      if (j == primary) continue;
      if (pi < pn && (*patches)[pi].col == j) {
        const RowPatch& patch = (*patches)[pi++];
        if (patch.consumes_base != 0) ++cursor;
        if (patch.is_explicit != 0) {
          fn(j, CardinalRelation::FromMask(patch.mask));
        } else {
          fn(j, (*relations_)[ClassPairCode(primary, j)]);
        }
      } else {
        const uint8_t code = ClassPairCode(primary, j);
        if (ResolvableCode(code)) {
          fn(j, (*relations_)[code]);
        } else {
          fn(j, CardinalRelation::FromMask(overlay[cursor++]));
        }
      }
    }
  }

  /// Invokes `fn(primary, reference, relation)` over all ordered pairs in
  /// canonical row-major order (PairMatrix's iteration order).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const size_t n = profile_.size();
    if (n < 2) return;
    for (size_t i = 0; i < n; ++i) {
      ForEachInRow(i, [&fn, i](size_t j, const CardinalRelation& relation) {
        fn(i, j, relation);
      });
    }
  }

  /// Order-independent digest over all pairs; equals the batch engine's
  /// ComputeAllPairsDigest on the same regions.
  uint64_t Digest() const;

  /// True iff neither 2-bit axis class of `code` is kCross (== 3).
  static constexpr bool ResolvableCode(uint8_t code) {
    return (code & 0b1100u) != 0b1100u && (code & 0b0011u) != 0b0011u;
  }

  // ---- Mutation layer (see file comment). The caller owns consistency:
  // after a profile change, every pair whose explicitness or mask changed
  // must be patched before the store is read.

  /// Overwrites region `id`'s profiled box (and its degenerate override).
  void SetRegionBox(size_t id, const Box& box);

  /// Extends the profile with a new region (index regions()); its row has
  /// no base slots, so the caller must ReplaceRow it before reading, and
  /// PatchPair the new column into every row where (j, new) is explicit
  /// (was_explicit = false — the base rows predate the column).
  void AppendRegion(const Box& box);

  /// Rewrites row `row` wholesale: `cols` (ascending) are its explicit
  /// reference columns, `masks` their relation masks. Drops the row's
  /// patches; its base slots become orphaned.
  void ReplaceRow(size_t row, std::vector<uint32_t> cols,
                  std::vector<uint16_t> masks);

  /// Records that pair (row, col)'s stored state changed: `was_explicit`
  /// is its explicitness immediately before the current mutation's profile
  /// change, `now_explicit` its explicitness after; `mask` the new mask
  /// (ignored unless now_explicit). Explicit pairs whose mask is unchanged
  /// must be patched too — the base slot is stale once the profile moved.
  void PatchPair(size_t row, size_t col, bool was_explicit, bool now_explicit,
                 uint16_t mask);

  /// Removes region `id`: its row, its column in every other row, its
  /// profile entry; indices above `id` renumber down by one. Precondition:
  /// every explicit pair (j, id) has been patched implicit (PatchPair with
  /// now_explicit = false), so base slots of column `id` are recorded in
  /// patch lists and convert to ghosts. O(regions + overlay + edits).
  void EraseRegion(size_t id);

  /// Converts `row`'s patch list to a loose row once it outgrows
  /// kCompactPatches — O(regions), amortized O(1) per patch. Call after a
  /// batch of PatchPair applications.
  void MaybeCompactRow(size_t row);

  /// Re-charges the mem.relation_store arena for the current footprint.
  /// Call once per mutation batch.
  void RechargeMem() { charge_ = MemCharge(bytes()); }

  /// Rows currently carrying edits (loose or patched) — test hook.
  size_t edited_rows() const { return loose_.size() + patches_.size(); }

 private:
  friend Result<RelationStore> ComputeRelationStore(
      const std::vector<const Region*>&, const EngineOptions&, EngineStats*);
  friend class DeltaEngine;

  // Patch lists longer than this compact into a loose row.
  static constexpr size_t kCompactPatches = 64;
  // Flat estimate of one unordered_map node + bookkeeping, for bytes().
  static constexpr size_t kEditNodeBytes = 64;

  // One sparse edit to a base row. Sorted by (col, ghosts first). A ghost
  // consumes one orphaned base slot of an erased column; a normal entry
  // overrides column `col` (is_explicit/mask) and consumes a base slot iff
  // the base row was built with one for that column.
  struct RowPatch {
    uint32_t col = 0;
    uint8_t consumes_base = 0;
    uint8_t is_explicit = 0;
    uint8_t is_ghost = 0;
    uint16_t mask = 0;
  };

  // A row rewritten wholesale: ascending explicit column ids + masks.
  struct LooseRow {
    std::vector<uint32_t> cols;
    std::vector<uint16_t> masks;
  };

  const std::vector<RowPatch>* FindPatches(size_t row) const {
    if (patches_.empty()) return nullptr;
    const auto it = patches_.find(static_cast<uint32_t>(row));
    return it == patches_.end() ? nullptr : &it->second;
  }

  // Balances the mem.relation_store gauges across moves and destruction.
  struct MemCharge {
    size_t charged = 0;
    MemCharge() = default;
    explicit MemCharge(size_t bytes) : charged(bytes) {
      if (charged != 0) CARDIR_MEMSTAT_ALLOC("relation_store", charged);
    }
    MemCharge(MemCharge&& other) noexcept
        : charged(std::exchange(other.charged, 0)) {}
    MemCharge& operator=(MemCharge&& other) noexcept {
      if (this != &other) {
        Release();
        charged = std::exchange(other.charged, 0);
      }
      return *this;
    }
    ~MemCharge() { Release(); }
    void Release() {
      if (charged != 0) {
        CARDIR_MEMSTAT_FREE("relation_store", charged);
        charged = 0;
      }
    }
  };

  // The class-pair code of (i, j) — (x class << 2) | y class with the
  // degenerate-box override OR-ed in — computed from the boxes exactly as
  // the engine's classify phase computes it (ValidateClassKernelOnce proves
  // scalar and batched agree), so implicit relations are bit-identical to
  // the dense engine's.
  uint8_t ClassPairCode(size_t i, size_t j) const {
    const uint8_t cx = static_cast<uint8_t>(ClassifyIntervalClass(
        profile_.min_x[i], profile_.max_x[i], profile_.min_x[j],
        profile_.max_x[j]));
    const uint8_t cy = static_cast<uint8_t>(ClassifyIntervalClass(
        profile_.min_y[i], profile_.max_y[i], profile_.min_y[j],
        profile_.max_y[j]));
    return static_cast<uint8_t>(static_cast<uint8_t>(cx << 2 | cy) |
                                profile_.cross_override[i] |
                                profile_.cross_override[j]);
  }

  RegionProfile profile_;
  std::vector<uint64_t> row_offsets_;    // regions() + 1 entries.
  std::vector<uint16_t> overlay_masks_;  // Row-major, ascending reference.
  // Mutation layer: rows rewritten wholesale / sparse column overrides.
  std::unordered_map<uint32_t, LooseRow> loose_;
  std::unordered_map<uint32_t, std::vector<RowPatch>> patches_;
  const std::array<CardinalRelation, kNumClassPairCodes>* relations_ =
      nullptr;
  MemCharge charge_;
};

}  // namespace cardir

#endif  // CARDIR_ENGINE_RELATION_STORE_H_
