#include "engine/interval_index.h"

namespace cardir {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

void IntervalOverlapIndex::Build(const std::vector<double>& lo,
                                 const std::vector<double>& hi,
                                 const std::vector<uint8_t>& skip) {
  cur_lo_ = lo;
  cur_hi_ = hi;
  cur_skip_ = skip;
  Rebuild();
}

void IntervalOverlapIndex::Rebuild() {
  const size_t n = cur_lo_.size();
  ids_.clear();
  for (size_t i = 0; i < n; ++i) {
    if (cur_skip_[i] == 0) ids_.push_back(static_cast<uint32_t>(i));
  }
  const std::vector<double>& lo = cur_lo_;
  std::sort(ids_.begin(), ids_.end(), [&lo](uint32_t a, uint32_t b) {
    return lo[a] < lo[b] || (lo[a] == lo[b] && a < b);
  });
  const size_t m = ids_.size();
  lo_.resize(m);
  hi_.resize(m);
  pos_.assign(n, kAbsent);
  for (size_t p = 0; p < m; ++p) {
    lo_[p] = cur_lo_[ids_[p]];
    hi_[p] = cur_hi_[ids_[p]];
    pos_[ids_[p]] = p;
  }
  block_max_.assign((m + kBlock - 1) / kBlock, kNegInf);
  super_max_.assign((m + kSuper - 1) / kSuper, kNegInf);
  for (size_t p = 0; p < m; ++p) {
    block_max_[p / kBlock] = std::max(block_max_[p / kBlock], hi_[p]);
    super_max_[p / kSuper] = std::max(super_max_[p / kSuper], hi_[p]);
  }
  overflow_ids_.clear();
  overflow_lo_.clear();
  overflow_hi_.clear();
  dead_ = 0;
}

void IntervalOverlapIndex::RebuildIfStale() {
  if (dead_ + overflow_ids_.size() > std::max(kBlock, size() / 8)) Rebuild();
}

void IntervalOverlapIndex::RemoveOverflowAt(size_t slot) {
  const size_t last = overflow_ids_.size() - 1;
  if (slot != last) {
    overflow_ids_[slot] = overflow_ids_[last];
    overflow_lo_[slot] = overflow_lo_[last];
    overflow_hi_[slot] = overflow_hi_[last];
    pos_[overflow_ids_[slot]] = kOverflowTag | slot;
  }
  overflow_ids_.pop_back();
  overflow_lo_.pop_back();
  overflow_hi_.pop_back();
}

void IntervalOverlapIndex::Update(size_t id, double lo, double hi, bool skip) {
  cur_lo_[id] = lo;
  cur_hi_[id] = hi;
  cur_skip_[id] = skip ? 1 : 0;
  uint64_t pos = pos_[id];
  if (pos != kAbsent && (pos & kOverflowTag) == 0) {
    // Live main entry: tombstone it. The block maxima above it go stale
    // high, which only ever *admits* blocks — never skips a live overlap.
    hi_[static_cast<size_t>(pos)] = kNegInf;
    ++dead_;
    pos_[id] = kAbsent;
    pos = kAbsent;
  }
  if (skip) {
    if (pos != kAbsent) {
      RemoveOverflowAt(static_cast<size_t>(pos & ~kOverflowTag));
      pos_[id] = kAbsent;
    }
  } else if (pos != kAbsent) {
    const size_t slot = static_cast<size_t>(pos & ~kOverflowTag);
    overflow_lo_[slot] = lo;
    overflow_hi_[slot] = hi;
  } else {
    pos_[id] = kOverflowTag | overflow_ids_.size();
    overflow_ids_.push_back(static_cast<uint32_t>(id));
    overflow_lo_.push_back(lo);
    overflow_hi_.push_back(hi);
  }
  RebuildIfStale();
}

void IntervalOverlapIndex::Append(double lo, double hi, bool skip) {
  cur_lo_.push_back(lo);
  cur_hi_.push_back(hi);
  cur_skip_.push_back(skip ? 1 : 0);
  pos_.push_back(kAbsent);
  if (!skip) {
    const size_t id = cur_lo_.size() - 1;
    pos_[id] = kOverflowTag | overflow_ids_.size();
    overflow_ids_.push_back(static_cast<uint32_t>(id));
    overflow_lo_.push_back(lo);
    overflow_hi_.push_back(hi);
  }
  RebuildIfStale();
}

void IntervalOverlapIndex::Remove(size_t id) {
  cur_lo_.erase(cur_lo_.begin() + static_cast<ptrdiff_t>(id));
  cur_hi_.erase(cur_hi_.begin() + static_cast<ptrdiff_t>(id));
  cur_skip_.erase(cur_skip_.begin() + static_cast<ptrdiff_t>(id));
  // Every id above the erased one renumbers; a full rebuild is the simple
  // way to keep the sorted arrays, summaries and position map coherent, and
  // region removal is already O(n + overlay) at the store layer.
  Rebuild();
}

void PolygonBoxes::Build(const std::vector<const Region*>& regions) {
  const size_t n = regions.size();
  offsets.assign(n + 1, 0);
  min_x.clear();
  max_x.clear();
  min_y.clear();
  max_y.clear();
  for (size_t i = 0; i < n; ++i) {
    offsets[i] = min_x.size();
    for (const Polygon& polygon : regions[i]->polygons()) {
      const Box box = polygon.BoundingBox();
      min_x.push_back(box.min_x());
      max_x.push_back(box.max_x());
      min_y.push_back(box.min_y());
      max_y.push_back(box.max_y());
    }
  }
  offsets[n] = min_x.size();
}

void PolygonBoxes::ReplaceRegion(size_t i, const Region& region) {
  const size_t old_count = offsets[i + 1] - offsets[i];
  const size_t new_count = region.polygon_count();
  if (old_count != new_count) {
    const auto at = [this, i](std::vector<double>& v) {
      return v.begin() + static_cast<ptrdiff_t>(offsets[i]);
    };
    const ptrdiff_t old_n = static_cast<ptrdiff_t>(old_count);
    min_x.erase(at(min_x), at(min_x) + old_n);
    max_x.erase(at(max_x), at(max_x) + old_n);
    min_y.erase(at(min_y), at(min_y) + old_n);
    max_y.erase(at(max_y), at(max_y) + old_n);
    min_x.insert(at(min_x), new_count, 0.0);
    max_x.insert(at(max_x), new_count, 0.0);
    min_y.insert(at(min_y), new_count, 0.0);
    max_y.insert(at(max_y), new_count, 0.0);
    const int64_t shift =
        static_cast<int64_t>(new_count) - static_cast<int64_t>(old_count);
    for (size_t r = i + 1; r < offsets.size(); ++r) {
      offsets[r] = static_cast<uint64_t>(static_cast<int64_t>(offsets[r]) +
                                         shift);
    }
  }
  size_t p = offsets[i];
  for (const Polygon& polygon : region.polygons()) {
    const Box box = polygon.BoundingBox();
    min_x[p] = box.min_x();
    max_x[p] = box.max_x();
    min_y[p] = box.min_y();
    max_y[p] = box.max_y();
    ++p;
  }
}

void PolygonBoxes::AppendRegion(const Region& region) {
  for (const Polygon& polygon : region.polygons()) {
    const Box box = polygon.BoundingBox();
    min_x.push_back(box.min_x());
    max_x.push_back(box.max_x());
    min_y.push_back(box.min_y());
    max_y.push_back(box.max_y());
  }
  offsets.push_back(min_x.size());
}

void PolygonBoxes::EraseRegion(size_t i) {
  const size_t count = offsets[i + 1] - offsets[i];
  const auto at = [this, i](std::vector<double>& v) {
    return v.begin() + static_cast<ptrdiff_t>(offsets[i]);
  };
  const ptrdiff_t n = static_cast<ptrdiff_t>(count);
  min_x.erase(at(min_x), at(min_x) + n);
  max_x.erase(at(max_x), at(max_x) + n);
  min_y.erase(at(min_y), at(min_y) + n);
  max_y.erase(at(max_y), at(max_y) + n);
  for (size_t r = i + 1; r + 1 < offsets.size(); ++r) {
    offsets[r] = offsets[r + 1] - count;
  }
  offsets.pop_back();
}

}  // namespace cardir
