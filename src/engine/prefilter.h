// MBB-derived relation bounds for the batch engine's planner.
//
// When the primary region's mbb fits inside a single column band and a
// single row band of the reference region's mbb, every point of the primary
// lies in one closed tile and the cardinal direction relation is that single
// tile — no edge splitting required. The nontrivial part is the boundary
// semantics: tiles are closed, so two mbbs may *touch* on a shared line
// (degenerate tile contact) without the primary gaining a tile on the far
// side. Compute-CDR resolves sub-edges lying exactly on an mbb line to the
// polygon's interior side (see core/edge_splitter.h), which for a region
// wholly contained in a closed half-plane is always the containing side.
// The prefilter therefore classifies with *inclusive* comparisons:
//
//   column West   iff  max_x(a) <= min_x(b)
//   column East   iff  min_x(a) >= max_x(b)
//   column Middle iff  min_x(a) >= min_x(b) and max_x(a) <= max_x(b)
//
// (rows analogously), matching Compute-CDR bit for bit on touching and
// collinear boxes. Boxes straddling an mbb line in either axis — exactly
// the pairs whose mbb properly crosses one of the four reference lines —
// are not box-resolvable and return nullopt.

#ifndef CARDIR_ENGINE_PREFILTER_H_
#define CARDIR_ENGINE_PREFILTER_H_

#include <optional>

#include "core/cardinal_relation.h"
#include "geometry/box.h"

namespace cardir {

/// The relation `a R b` when it is determined by the bounding boxes alone
/// (a single-tile relation, or B for a contained box), nullopt otherwise.
/// Degenerate (zero-width/height) or empty boxes always return nullopt so
/// callers fall back to the full algorithm.
std::optional<CardinalRelation> MbbPrefilterRelation(const Box& primary_mbb,
                                                     const Box& reference_mbb);

/// True when `primary_mbb` properly crosses one of the four mbb lines of
/// `reference_mbb` (strictly overlaps both sides). For non-degenerate boxes
/// this is the exact complement of MbbPrefilterRelation succeeding; the
/// planner uses line queries against an R-tree to enumerate such pairs.
bool MbbProperlyCrossesReferenceLines(const Box& primary_mbb,
                                      const Box& reference_mbb);

}  // namespace cardir

#endif  // CARDIR_ENGINE_PREFILTER_H_
