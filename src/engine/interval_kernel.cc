#include "engine/interval_kernel.h"

#include <optional>

#include "core/cardinal_relation.h"
#include "core/tile.h"
#include "engine/prefilter.h"
#include "util/string_util.h"
// Runtime ISA dispatch for the batched entry points (CARDIR_KERNEL_CLONES,
// shared with the core SoA kernels): multi-versioned for AVX2 with GNU
// ifunc dispatch on x86-64 GCC, compiled out under the sanitizers and on
// non-GCC/non-x86 toolchains. See util/target_clones.h for the rationale.
#include "util/target_clones.h"

namespace cardir {
namespace {

constexpr std::array<uint16_t, kNumClassPairCodes>
BuildClassPairRelationTable() {
  std::array<uint16_t, kNumClassPairCodes> table{};
  for (int xc = 0; xc < 3; ++xc) {
    for (int yc = 0; yc < 3; ++yc) {
      const Tile tile = TileAt(static_cast<TileColumn>(xc),
                               static_cast<TileRow>(yc));
      table[static_cast<size_t>((xc << 2) | yc)] =
          CardinalRelation(tile).mask();
    }
  }
  // Codes with a kCross class keep mask 0: not box-resolvable.
  return table;
}

constexpr std::array<uint16_t, kNumClassPairCodes> kClassPairRelationTable =
    BuildClassPairRelationTable();

// ---- Compile-time table proofs -------------------------------------------
//
// PR 4 validated the class-pair table against TileAt and the prefilter at
// engine startup (ValidateClassKernelOnce); these static_asserts promote
// the table/TileAt agreement to a build break, so a drifted table can never
// even link. The runtime sweep against MbbPrefilterRelation survives as a
// debug-only cross-check (audit builds and tests/engine/interval_kernel_test)
// because MbbPrefilterRelation lives behind std::optional plumbing that is
// more naturally exercised at runtime.

// Every one of the 16 class-pair codes, checked in both orientations:
// forward (a resolvable (x class, y class) code maps to exactly the
// single-tile mask of TileAt(x, y), a kCross code maps to 0) and backward
// (each tile's own column/row, fed back through the code layout, recovers
// that tile's mask — so the code packing (x << 2) | y cannot silently flip
// its operands).
constexpr bool ClassPairTableAgreesWithTileAt() {
  for (int xc = 0; xc < 4; ++xc) {
    for (int yc = 0; yc < 4; ++yc) {
      const uint16_t entry =
          kClassPairRelationTable[static_cast<size_t>((xc << 2) | yc)];
      if (xc == static_cast<int>(IntervalClass::kCross) ||
          yc == static_cast<int>(IntervalClass::kCross)) {
        if (entry != 0) return false;
        continue;
      }
      const Tile tile =
          TileAt(static_cast<TileColumn>(xc), static_cast<TileRow>(yc));
      if (entry != CardinalRelation(tile).mask()) return false;
    }
  }
  for (Tile tile : kAllTiles) {
    const int code = (static_cast<int>(ColumnOf(tile)) << 2) |
                     static_cast<int>(RowOf(tile));
    if (kClassPairRelationTable[static_cast<size_t>(code)] !=
        CardinalRelation(tile).mask()) {
      return false;
    }
  }
  return true;
}
static_assert(ClassPairTableAgreesWithTileAt(),
              "engine/interval_kernel: class-pair relation table disagrees "
              "with core/tile.h's TileAt");

// The branch-free arithmetic select of the classification passes, as a
// constexpr scalar model: cls = 2*high + mid, or kCross when no predicate
// (or two predicates) holds. ClassifyAxis and ClassifyBandsAxis both
// evaluate exactly these comparisons (with operand roles swapped in the
// transposed kernel), so proving the model equal to the documented cascade
// covers both orientations of the batched kernel.
constexpr IntervalClass BranchFreeClassModel(double lo, double hi, double m1,
                                             double m2) {
  const unsigned low = static_cast<unsigned>(hi <= m1);
  const unsigned high = static_cast<unsigned>(lo >= m2);
  const unsigned mid = static_cast<unsigned>(lo >= m1) &
                       static_cast<unsigned>(hi <= m2);
  const unsigned cls = 2u * high + mid + 3u * (1u - (low | high | mid));
  return static_cast<IntervalClass>(cls);
}

// Exhaustive sweep of the same coordinate grid the runtime validation uses
// (both reference lines hit exactly, strictly-inside/outside and straddling
// extents): on every non-degenerate extent against the non-degenerate band
// the branch-free select must agree with the reference cascade
// ClassifyIntervalClass. Degenerate extents are excluded exactly as in the
// kernel, where they carry cross_override.
constexpr bool BranchFreeSelectMatchesCascade() {
  constexpr double kCoords[] = {4, 8, 10, 12, 15, 18, 20, 24, 28};
  constexpr double kM1 = 10;
  constexpr double kM2 = 20;
  for (double lo : kCoords) {
    for (double hi : kCoords) {
      if (lo >= hi) continue;  // Degenerate/invalid extents excluded.
      IntervalClass expected = IntervalClass::kCross;
      if (hi <= kM1) {
        expected = IntervalClass::kLow;
      } else if (lo >= kM2) {
        expected = IntervalClass::kHigh;
      } else if (lo >= kM1 && hi <= kM2) {
        expected = IntervalClass::kMid;
      }
      if (BranchFreeClassModel(lo, hi, kM1, kM2) != expected) return false;
    }
  }
  return true;
}
static_assert(BranchFreeSelectMatchesCascade(),
              "engine/interval_kernel: branch-free class select disagrees "
              "with the ClassifyIntervalClass cascade");
// --------------------------------------------------------------------------

// One branch-free axis pass: codes[i] op= (class of [lo[i], hi[i]] within
// [m1, m2]) << shift. With a non-degenerate band (m1 < m2) and a
// non-degenerate extent (lo < hi) at most one of low/mid/high holds, so the
// arithmetic select is exact; degenerate extents may satisfy two predicates
// at once, but those boxes carry cross_override and the garbage class is
// OR-ed away. The y pass (kShift == 0) folds the override in (`over`
// non-null there, unused in the x pass) so each row takes exactly two
// passes over the code bytes.
template <int kShift>
void ClassifyAxis(const double* lo, const double* hi, size_t n, double m1,
                  double m2, const uint8_t* over, uint8_t* codes) {
  for (size_t i = 0; i < n; ++i) {
    const unsigned low = static_cast<unsigned>(hi[i] <= m1);
    const unsigned high = static_cast<unsigned>(lo[i] >= m2);
    const unsigned mid = static_cast<unsigned>(lo[i] >= m1) &
                         static_cast<unsigned>(hi[i] <= m2);
    const unsigned cls = 2u * high + mid + 3u * (1u - (low | high | mid));
    if constexpr (kShift == 0) {
      codes[i] = static_cast<uint8_t>(codes[i] | cls | over[i]);
    } else {
      codes[i] = static_cast<uint8_t>(cls << kShift);
    }
  }
}

// Transposed axis pass: a scalar extent [lo, hi] against per-element bands
// [m1[j], m2[j]]. Same comparisons as ClassifyAxis with the operand roles
// swapped; the same degenerate-overlap argument applies (a band with
// m1[j] == m2[j] can satisfy two predicates, but such boxes carry
// cross_override and the garbage class is OR-ed away).
template <int kShift>
void ClassifyBandsAxis(double lo, double hi, const double* m1,
                       const double* m2, size_t n, const uint8_t* over,
                       uint8_t* codes) {
  for (size_t j = 0; j < n; ++j) {
    const unsigned low = static_cast<unsigned>(hi <= m1[j]);
    const unsigned high = static_cast<unsigned>(lo >= m2[j]);
    const unsigned mid = static_cast<unsigned>(lo >= m1[j]) &
                         static_cast<unsigned>(hi <= m2[j]);
    const unsigned cls = 2u * high + mid + 3u * (1u - (low | high | mid));
    if constexpr (kShift == 0) {
      codes[j] = static_cast<uint8_t>(codes[j] | cls | over[j]);
    } else {
      codes[j] = static_cast<uint8_t>(cls << kShift);
    }
  }
}

Status ValidateClassKernel() {
  const Box reference(10, 10, 20, 20);
  // Coordinate grid hitting both reference lines of each axis exactly, plus
  // strictly-inside, strictly-outside and straddling positions.
  const double coords[] = {4, 8, 10, 12, 15, 18, 20, 24, 28};
  const size_t m = sizeof(coords) / sizeof(coords[0]);
  std::vector<Box> boxes;
  for (size_t a = 0; a < m; ++a) {
    for (size_t b = a; b < m; ++b) {  // b == a gives degenerate extents.
      for (size_t c = 0; c < m; ++c) {
        for (size_t d = c; d < m; ++d) {
          boxes.emplace_back(coords[a], coords[c], coords[b], coords[d]);
        }
      }
    }
  }
  const RegionProfile profile = RegionProfile::FromBoxes(boxes);
  std::vector<uint8_t> codes(boxes.size());
  ClassifyAgainstReference(profile, reference, codes.data());
  const std::array<uint16_t, kNumClassPairCodes>& table =
      ClassPairRelationTable();
  for (size_t i = 0; i < boxes.size(); ++i) {
    const uint16_t mask = table[codes[i]];
    const std::optional<CardinalRelation> oracle =
        MbbPrefilterRelation(boxes[i], reference);
    if (oracle.has_value() != (mask != 0) ||
        (oracle.has_value() && oracle->mask() != mask)) {
      return Status::Internal(StrFormat(
          "interval kernel disagrees with MbbPrefilterRelation on box "
          "[%g,%g]x[%g,%g]: code %u mask %u vs oracle %s",
          boxes[i].min_x(), boxes[i].max_x(), boxes[i].min_y(),
          boxes[i].max_y(), static_cast<unsigned>(codes[i]),
          static_cast<unsigned>(mask),
          oracle.has_value() ? oracle->ToString().c_str() : "(none)"));
    }
    // The Allen coarsening must agree with the class codes wherever the
    // Allen classification is defined (non-degenerate extents).
    if (!boxes[i].IsDegenerate() && !boxes[i].IsEmpty()) {
      const IntervalClass x_allen = IntervalClassOfAllen(
          ClassifyIntervals(boxes[i].min_x(), boxes[i].max_x(),
                            reference.min_x(), reference.max_x()));
      const IntervalClass y_allen = IntervalClassOfAllen(
          ClassifyIntervals(boxes[i].min_y(), boxes[i].max_y(),
                            reference.min_y(), reference.max_y()));
      if (codes[i] != ((static_cast<uint8_t>(x_allen) << 2) |
                       static_cast<uint8_t>(y_allen))) {
        return Status::Internal(StrFormat(
            "interval kernel disagrees with the Allen coarsening on box "
            "[%g,%g]x[%g,%g]: code %u vs (%d, %d)",
            boxes[i].min_x(), boxes[i].max_x(), boxes[i].min_y(),
            boxes[i].max_y(), static_cast<unsigned>(codes[i]),
            static_cast<int>(x_allen), static_cast<int>(y_allen)));
      }
    }
  }
  // Transposed kernel: a stride-subsample of the boxes acts as the primary
  // against every box taken as the reference band; each code must agree
  // with the pairwise oracle.
  std::vector<uint8_t> band_codes(boxes.size());
  for (size_t p = 0; p < boxes.size(); p += 31) {
    if (boxes[p].IsDegenerate() || boxes[p].IsEmpty()) continue;
    ClassifyAgainstBands(profile, boxes[p], band_codes.data());
    for (size_t j = 0; j < boxes.size(); ++j) {
      const uint16_t mask = table[band_codes[j]];
      const std::optional<CardinalRelation> oracle =
          MbbPrefilterRelation(boxes[p], boxes[j]);
      if (oracle.has_value() != (mask != 0) ||
          (oracle.has_value() && oracle->mask() != mask)) {
        return Status::Internal(StrFormat(
            "transposed interval kernel disagrees with "
            "MbbPrefilterRelation on primary #%zu vs reference #%zu: "
            "code %u mask %u vs oracle %s",
            p, j, static_cast<unsigned>(band_codes[j]),
            static_cast<unsigned>(mask),
            oracle.has_value() ? oracle->ToString().c_str() : "(none)"));
      }
    }
  }
  return Status::Ok();
}

}  // namespace

RegionProfile RegionProfile::FromBoxes(const std::vector<Box>& boxes) {
  RegionProfile profile;
  const size_t n = boxes.size();
  profile.min_x.resize(n);
  profile.max_x.resize(n);
  profile.min_y.resize(n);
  profile.max_y.resize(n);
  profile.cross_override.resize(n);
  for (size_t i = 0; i < n; ++i) {
    profile.min_x[i] = boxes[i].min_x();
    profile.max_x[i] = boxes[i].max_x();
    profile.min_y[i] = boxes[i].min_y();
    profile.max_y[i] = boxes[i].max_y();
    profile.cross_override[i] =
        (boxes[i].IsEmpty() || boxes[i].IsDegenerate()) ? 0x0f : 0x00;
  }
  return profile;
}

const std::array<uint16_t, kNumClassPairCodes>& ClassPairRelationTable() {
  return kClassPairRelationTable;
}

const std::array<CardinalRelation, kNumClassPairCodes>& ClassPairRelations() {
  static const std::array<CardinalRelation, kNumClassPairCodes> relations =
      [] {
        std::array<CardinalRelation, kNumClassPairCodes> out{};
        const std::array<uint16_t, kNumClassPairCodes>& masks =
            ClassPairRelationTable();
        for (size_t code = 0; code < kNumClassPairCodes; ++code) {
          out[code] = CardinalRelation::FromMask(masks[code]);
        }
        return out;
      }();
  return relations;
}

IntervalClass ClassifyIntervalClass(double lo, double hi, double m1,
                                    double m2) {
  if (hi <= m1) return IntervalClass::kLow;
  if (lo >= m2) return IntervalClass::kHigh;
  if (lo >= m1 && hi <= m2) return IntervalClass::kMid;
  return IntervalClass::kCross;
}

CARDIR_KERNEL_CLONES
void ClassifyAgainstReference(const RegionProfile& profile,
                              const Box& reference, uint8_t* codes) {
  const size_t n = profile.size();
  ClassifyAxis<2>(profile.min_x.data(), profile.max_x.data(), n,
                  reference.min_x(), reference.max_x(), nullptr, codes);
  ClassifyAxis<0>(profile.min_y.data(), profile.max_y.data(), n,
                  reference.min_y(), reference.max_y(),
                  profile.cross_override.data(), codes);
}

CARDIR_KERNEL_CLONES
void ClassifyAgainstBands(const RegionProfile& profile, const Box& primary,
                          uint8_t* codes) {
  const size_t n = profile.size();
  ClassifyBandsAxis<2>(primary.min_x(), primary.max_x(), profile.min_x.data(),
                       profile.max_x.data(), n, nullptr, codes);
  ClassifyBandsAxis<0>(primary.min_y(), primary.max_y(), profile.min_y.data(),
                       profile.max_y.data(), n,
                       profile.cross_override.data(), codes);
}

IntervalClass IntervalClassOfAllen(AllenRelation r) {
  switch (r) {
    case AllenRelation::kBefore:
    case AllenRelation::kMeets:
      return IntervalClass::kLow;
    case AllenRelation::kDuring:
    case AllenRelation::kStarts:
    case AllenRelation::kFinishes:
    case AllenRelation::kEquals:
      return IntervalClass::kMid;
    case AllenRelation::kMetBy:
    case AllenRelation::kAfter:
      return IntervalClass::kHigh;
    case AllenRelation::kOverlaps:
    case AllenRelation::kFinishedBy:
    case AllenRelation::kContains:
    case AllenRelation::kStartedBy:
    case AllenRelation::kOverlappedBy:
      return IntervalClass::kCross;
  }
  return IntervalClass::kCross;  // Unreachable for valid enum values.
}

Status ValidateClassKernelOnce() {
  static const Status status = ValidateClassKernel();
  return status;
}

}  // namespace cardir
