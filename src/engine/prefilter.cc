#include "engine/prefilter.h"

#include "core/tile.h"

namespace cardir {
namespace {

// Band of the primary extent [lo, hi] relative to the reference lines
// [m1, m2], with the inclusive boundary semantics documented in the header.
// Returns false when the extent straddles a line.
bool ClassifyBand(double lo, double hi, double m1, double m2, int* band) {
  if (hi <= m1) {
    *band = 0;  // Low side (West / South).
    return true;
  }
  if (lo >= m2) {
    *band = 2;  // High side (East / North).
    return true;
  }
  if (lo >= m1 && hi <= m2) {
    *band = 1;  // Middle.
    return true;
  }
  return false;
}

}  // namespace

std::optional<CardinalRelation> MbbPrefilterRelation(const Box& primary_mbb,
                                                     const Box& reference_mbb) {
  // Degenerate boxes break the interior-side argument (a zero-width primary
  // has no interior; a zero-width reference merges two mbb lines), and the
  // reference mbb of a valid REG* region is never degenerate anyway. Bail
  // out to the exact algorithm.
  if (primary_mbb.IsEmpty() || reference_mbb.IsEmpty() ||
      primary_mbb.IsDegenerate() || reference_mbb.IsDegenerate()) {
    return std::nullopt;
  }
  int column;
  if (!ClassifyBand(primary_mbb.min_x(), primary_mbb.max_x(),
                    reference_mbb.min_x(), reference_mbb.max_x(), &column)) {
    return std::nullopt;
  }
  int row;
  if (!ClassifyBand(primary_mbb.min_y(), primary_mbb.max_y(),
                    reference_mbb.min_y(), reference_mbb.max_y(), &row)) {
    return std::nullopt;
  }
  return CardinalRelation(TileAt(static_cast<TileColumn>(column),
                                 static_cast<TileRow>(row)));
}

bool MbbProperlyCrossesReferenceLines(const Box& primary_mbb,
                                      const Box& reference_mbb) {
  auto crosses = [](double lo, double hi, double line) {
    return lo < line && line < hi;
  };
  return crosses(primary_mbb.min_x(), primary_mbb.max_x(),
                 reference_mbb.min_x()) ||
         crosses(primary_mbb.min_x(), primary_mbb.max_x(),
                 reference_mbb.max_x()) ||
         crosses(primary_mbb.min_y(), primary_mbb.max_y(),
                 reference_mbb.min_y()) ||
         crosses(primary_mbb.min_y(), primary_mbb.max_y(),
                 reference_mbb.max_y());
}

}  // namespace cardir
