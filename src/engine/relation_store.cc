#include "engine/relation_store.h"

namespace cardir {

CardinalRelation RelationStore::Relation(size_t primary,
                                         size_t reference) const {
  if (primary == reference) return CardinalRelation();
  const uint8_t code = ClassPairCode(primary, reference);
  if (ResolvableCode(code)) return (*relations_)[code];
  // Rank `reference` among the row's explicit columns: the overlay stores
  // masks in ascending reference order with no indices, so membership (an
  // O(1) classification per column) doubles as the rank function.
  uint64_t rank = row_offsets_[primary];
  for (size_t j = 0; j < reference; ++j) {
    if (j == primary) continue;
    if (!ResolvableCode(ClassPairCode(primary, j))) ++rank;
  }
  return CardinalRelation::FromMask(overlay_masks_[rank]);
}

uint64_t RelationStore::Digest() const {
  uint64_t digest = 0;
  ForEach([&digest](size_t i, size_t j, const CardinalRelation& relation) {
    digest += MixPairDigest(i, j, relation.mask());
  });
  return digest;
}

}  // namespace cardir
