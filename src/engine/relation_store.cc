#include "engine/relation_store.h"

namespace cardir {

CardinalRelation RelationStore::Relation(size_t primary,
                                         size_t reference) const {
  if (primary == reference) return CardinalRelation();
  if (!loose_.empty()) {
    const auto it = loose_.find(static_cast<uint32_t>(primary));
    if (it != loose_.end()) {
      const LooseRow& row = it->second;
      const auto pos = std::lower_bound(row.cols.begin(), row.cols.end(),
                                        static_cast<uint32_t>(reference));
      if (pos != row.cols.end() && *pos == reference) {
        return CardinalRelation::FromMask(
            row.masks[static_cast<size_t>(pos - row.cols.begin())]);
      }
      return (*relations_)[ClassPairCode(primary, reference)];
    }
  }
  const uint8_t code = ClassPairCode(primary, reference);
  const std::vector<RowPatch>* patches = FindPatches(primary);
  if (patches != nullptr) {
    auto pos = std::lower_bound(
        patches->begin(), patches->end(), static_cast<uint32_t>(reference),
        [](const RowPatch& patch, uint32_t col) { return patch.col < col; });
    while (pos != patches->end() && pos->col == reference &&
           pos->is_ghost != 0) {
      ++pos;
    }
    if (pos != patches->end() && pos->col == reference) {
      if (pos->is_explicit != 0) return CardinalRelation::FromMask(pos->mask);
      return (*relations_)[code];
    }
  }
  if (ResolvableCode(code)) return (*relations_)[code];
  // Rank `reference` among the row's base-consuming columns: the overlay
  // stores masks in ascending reference order with no indices, so
  // membership (an O(1) classification per column, adjusted by the row's
  // patch flags) doubles as the rank function.
  uint64_t rank = row_offsets_[primary];
  if (patches == nullptr) {
    for (size_t j = 0; j < reference; ++j) {
      if (j == primary) continue;
      if (!ResolvableCode(ClassPairCode(primary, j))) ++rank;
    }
    return CardinalRelation::FromMask(overlay_masks_[rank]);
  }
  size_t pi = 0;
  const size_t pn = patches->size();
  for (size_t j = 0; j < reference; ++j) {
    while (pi < pn && (*patches)[pi].col == j && (*patches)[pi].is_ghost) {
      ++rank;
      ++pi;
    }
    if (j == primary) continue;
    if (pi < pn && (*patches)[pi].col == j) {
      if ((*patches)[pi].consumes_base != 0) ++rank;
      ++pi;
    } else if (!ResolvableCode(ClassPairCode(primary, j))) {
      ++rank;
    }
  }
  // Ghosts parked at `reference` consume before its own slot.
  while (pi < pn && (*patches)[pi].col == reference &&
         (*patches)[pi].is_ghost) {
    ++rank;
    ++pi;
  }
  return CardinalRelation::FromMask(overlay_masks_[rank]);
}

uint64_t RelationStore::Digest() const {
  uint64_t digest = 0;
  ForEach([&digest](size_t i, size_t j, const CardinalRelation& relation) {
    digest += MixPairDigest(i, j, relation.mask());
  });
  return digest;
}

void RelationStore::SetRegionBox(size_t id, const Box& box) {
  profile_.min_x[id] = box.min_x();
  profile_.max_x[id] = box.max_x();
  profile_.min_y[id] = box.min_y();
  profile_.max_y[id] = box.max_y();
  profile_.cross_override[id] =
      (box.IsEmpty() || box.IsDegenerate()) ? 0x0f : 0x00;
}

void RelationStore::AppendRegion(const Box& box) {
  profile_.min_x.push_back(box.min_x());
  profile_.max_x.push_back(box.max_x());
  profile_.min_y.push_back(box.min_y());
  profile_.max_y.push_back(box.max_y());
  profile_.cross_override.push_back(
      (box.IsEmpty() || box.IsDegenerate()) ? 0x0f : 0x00);
  row_offsets_.push_back(row_offsets_.back());
}

void RelationStore::ReplaceRow(size_t row, std::vector<uint32_t> cols,
                               std::vector<uint16_t> masks) {
  assert(cols.size() == masks.size());
  assert(std::is_sorted(cols.begin(), cols.end()));
  LooseRow& loose = loose_[static_cast<uint32_t>(row)];
  loose.cols = std::move(cols);
  loose.masks = std::move(masks);
  patches_.erase(static_cast<uint32_t>(row));
}

void RelationStore::PatchPair(size_t row, size_t col, bool was_explicit,
                              bool now_explicit, uint16_t mask) {
  const uint32_t row32 = static_cast<uint32_t>(row);
  const uint32_t col32 = static_cast<uint32_t>(col);
  if (!loose_.empty()) {
    const auto lit = loose_.find(row32);
    if (lit != loose_.end()) {
      // Loose row: edit the explicit column list in place.
      LooseRow& loose = lit->second;
      auto pos = std::lower_bound(loose.cols.begin(), loose.cols.end(), col32);
      const size_t k = static_cast<size_t>(pos - loose.cols.begin());
      const bool present = pos != loose.cols.end() && *pos == col32;
      if (now_explicit) {
        if (present) {
          loose.masks[k] = mask;
        } else {
          loose.cols.insert(pos, col32);
          loose.masks.insert(loose.masks.begin() + static_cast<ptrdiff_t>(k),
                             mask);
        }
      } else if (present) {
        loose.cols.erase(pos);
        loose.masks.erase(loose.masks.begin() + static_cast<ptrdiff_t>(k));
      }
      return;
    }
  }
  const auto pit = patches_.find(row32);
  std::vector<RowPatch>* list = pit == patches_.end() ? nullptr : &pit->second;
  if (list != nullptr) {
    auto pos = std::lower_bound(
        list->begin(), list->end(), col32,
        [](const RowPatch& patch, uint32_t c) { return patch.col < c; });
    while (pos != list->end() && pos->col == col32 && pos->is_ghost != 0) {
      ++pos;
    }
    if (pos != list->end() && pos->col == col32) {
      // Existing override: keep its base-slot flag (set at first patch,
      // when "before" still meant base-build time).
      if (!now_explicit && pos->consumes_base == 0) {
        list->erase(pos);  // Degenerated to a no-op entry.
      } else {
        pos->is_explicit = now_explicit ? 1 : 0;
        pos->mask = mask;
      }
      return;
    }
    if (!was_explicit && !now_explicit) return;
    RowPatch patch;
    patch.col = col32;
    patch.consumes_base = was_explicit ? 1 : 0;
    patch.is_explicit = now_explicit ? 1 : 0;
    patch.mask = mask;
    list->insert(pos, patch);
    return;
  }
  if (!was_explicit && !now_explicit) return;
  RowPatch patch;
  patch.col = col32;
  patch.consumes_base = was_explicit ? 1 : 0;
  patch.is_explicit = now_explicit ? 1 : 0;
  patch.mask = mask;
  patches_[row32].push_back(patch);
}

void RelationStore::EraseRegion(size_t id) {
  const uint32_t id32 = static_cast<uint32_t>(id);
  // Base: drop row id's slots (orphaned or not) and its offset entry; rows
  // above shift down by the dropped count.
  const uint64_t begin = row_offsets_[id];
  const uint64_t count = row_offsets_[id + 1] - begin;
  overlay_masks_.erase(
      overlay_masks_.begin() + static_cast<ptrdiff_t>(begin),
      overlay_masks_.begin() + static_cast<ptrdiff_t>(begin + count));
  for (size_t r = id; r + 1 < row_offsets_.size(); ++r) {
    row_offsets_[r] = row_offsets_[r + 1] - count;
  }
  row_offsets_.pop_back();
  // Profile entry.
  const ptrdiff_t at = static_cast<ptrdiff_t>(id);
  profile_.min_x.erase(profile_.min_x.begin() + at);
  profile_.max_x.erase(profile_.max_x.begin() + at);
  profile_.min_y.erase(profile_.min_y.begin() + at);
  profile_.max_y.erase(profile_.max_y.begin() + at);
  profile_.cross_override.erase(profile_.cross_override.begin() + at);
  // Loose rows: drop the erased column, renumber columns and row keys.
  std::unordered_map<uint32_t, LooseRow> loose;
  loose.reserve(loose_.size());
  for (auto& entry : loose_) {
    if (entry.first == id32) continue;
    LooseRow& row = entry.second;
    auto pos = std::lower_bound(row.cols.begin(), row.cols.end(), id32);
    if (pos != row.cols.end() && *pos == id32) {
      row.masks.erase(row.masks.begin() + (pos - row.cols.begin()));
      pos = row.cols.erase(pos);
    }
    for (auto it = pos; it != row.cols.end(); ++it) --*it;
    loose.emplace(entry.first > id32 ? entry.first - 1 : entry.first,
                  std::move(row));
  }
  loose_ = std::move(loose);
  // Patch lists: the erased column's base-consuming overrides become
  // ghosts (their orphaned base slot outlives the column), its other
  // overrides drop, higher columns renumber. The transform is monotone on
  // (col, ghosts-first), so the list order is preserved.
  std::unordered_map<uint32_t, std::vector<RowPatch>> patches;
  patches.reserve(patches_.size());
  for (auto& entry : patches_) {
    if (entry.first == id32) continue;
    std::vector<RowPatch> out;
    out.reserve(entry.second.size());
    for (RowPatch patch : entry.second) {
      if (patch.is_ghost != 0) {
        if (patch.col > id32) --patch.col;
        out.push_back(patch);
      } else if (patch.col == id32) {
        if (patch.consumes_base != 0) {
          RowPatch ghost;
          ghost.col = id32;
          ghost.consumes_base = 1;
          ghost.is_ghost = 1;
          out.push_back(ghost);
        }
      } else {
        if (patch.col > id32) --patch.col;
        out.push_back(patch);
      }
    }
    if (!out.empty()) {
      patches.emplace(entry.first > id32 ? entry.first - 1 : entry.first,
                      std::move(out));
    }
  }
  patches_ = std::move(patches);
}

void RelationStore::MaybeCompactRow(size_t row) {
  const auto it = patches_.find(static_cast<uint32_t>(row));
  if (it == patches_.end() || it->second.size() <= kCompactPatches) return;
  // Rebuild the row as a loose row via one merged walk; the current codes
  // decide explicitness (patches never disagree with them — they exist to
  // keep the base cursor aligned and to carry masks).
  LooseRow loose;
  ForEachInRow(row, [this, row, &loose](size_t j,
                                        const CardinalRelation& relation) {
    if (!ResolvableCode(ClassPairCode(row, j))) {
      loose.cols.push_back(static_cast<uint32_t>(j));
      loose.masks.push_back(relation.mask());
    }
  });
  loose_[static_cast<uint32_t>(row)] = std::move(loose);
  patches_.erase(static_cast<uint32_t>(row));
}

}  // namespace cardir
