// Flight recorder: a fixed-size per-thread lock-free ring of recent
// structured events, dumpable from a signal handler.
//
// Purpose: when a long-lived `cardirect` process dies after hours, the
// metrics registry says how much work happened but not what the process
// was doing in the milliseconds before the crash. The recorder keeps the
// last kRingCapacity events per thread — engine phase transitions, chunk
// begin/end, crossing-queue deferrals, recent log lines — and writes them
// plus a metrics snapshot to a file on SIGSEGV/SIGABRT/SIGBUS or on clean
// exit (`cardirect --flight-record=FILE`).
//
// Concurrency model:
//   - Each thread appends to its own ring; the only cross-thread write is
//     the one-time registration into a fixed lock-free array (no mutex —
//     the dump path must not block inside a signal handler).
//   - Appends publish with a release store of the monotonic head counter.
//     The dump path reads heads with acquire and then the slots; a slot
//     being overwritten concurrently (ring wrap during a crash dump) can
//     tear, which a post-mortem reader tolerates by design. Tests dump
//     after writers quiesce, so the sanitised tiers never see that race.
//   - The dump path uses only the raw_format helpers and write(2): no
//     malloc, no stdio, no locks except MetricsRegistry::TryDumpRaw's
//     try_lock (skipped on contention).
//
// Recording is runtime-gated (one relaxed load when disabled) and the
// whole facility compiles to no-ops under -DCARDIR_OBS=OFF.

#ifndef CARDIR_OBS_RECORDER_H_
#define CARDIR_OBS_RECORDER_H_

#include <cstddef>
#include <cstdint>

namespace cardir {
namespace obs {

/// Structured event kinds; kept small and stable so dump files stay
/// greppable across versions.
enum class RecordKind : uint16_t {
  kMark = 0,   // Free-form marker (label carries the text).
  kPhase = 1,  // Engine phase transition; a = phase ordinal.
  kChunk = 2,  // Chunk begin/end; a = first index, b = count.
  kDefer = 3,  // Pairs deferred to the crossing queue; a = first, b = count.
  kLog = 4,    // Tail of a CARDIR_LOG line (truncated to the label field).
  kSweep = 5,  // Sweep-join strip; a = first row, b = row count.
  kDelta = 6,  // Delta-engine apply; a = region id, b = touched pairs.
};

/// One recorded event. POD, fixed size, no pointers to transient storage:
/// `label` is copied (truncated) so log lines survive their source buffer.
struct RecorderEvent {
  uint64_t time_us = 0;  // TraceNowMicros at record time.
  uint32_t tid = 0;      // Dense ThisThreadIndex of the recording thread.
  uint16_t kind = 0;     // RecordKind.
  uint16_t reserved = 0;
  uint64_t a = 0;  // Kind-specific payload words.
  uint64_t b = 0;
  char label[40] = {};  // NUL-terminated, truncated.
};

#ifdef CARDIR_OBS_ENABLED

/// Events retained per thread (power of two; the ring keeps the newest).
inline constexpr size_t kRingCapacity = 1024;

/// Turns event recording on/off. Off (the default) costs one relaxed
/// atomic load per CARDIR_RECORD_EVENT site.
void EnableFlightRecorder(bool enabled);
bool FlightRecorderEnabled();

/// Appends one event to this thread's ring (no-op when disabled).
void RecordEvent(RecordKind kind, const char* label, uint64_t a, uint64_t b);

/// Total events ever recorded on this thread (monotonic, includes events
/// already overwritten by ring wrap). Test/introspection helper.
uint64_t ThisThreadRecordedCount();

/// Formats `event` as one "event t_us=... tid=... kind=... a=... b=...
/// label=..." line into `buf`; async-signal-safe; returns the length
/// (truncated at `cap`). This is the seam the dump path writes through —
/// unit tests pin its output so the signal path is exercised without a
/// signal (the FormatLogLine pattern).
size_t FormatRecordLine(const RecorderEvent& event, char* buf, size_t cap);

/// Dumps every thread's ring (oldest surviving event first per thread) and
/// a best-effort metrics snapshot to `fd`. Async-signal-safe. Returns the
/// number of event lines written.
size_t DumpFlightRecord(int fd);

/// Opens `path` (trunc) and dumps; returns false if the open failed.
/// Async-signal-safe.
bool DumpFlightRecordToPath(const char* path);

/// Installs SIGSEGV/SIGABRT/SIGBUS handlers that dump to `path` and then
/// re-raise with the default disposition (so exit status still reflects
/// the signal). `path` is copied into static storage; max ~500 bytes.
/// Also enables the recorder.
void InstallCrashDump(const char* path);

/// Registers with util/logging's line hook so the tail of recent log lines
/// lands in the ring as kLog events. Idempotent.
void CaptureLogTail();

#else  // !CARDIR_OBS_ENABLED

inline void EnableFlightRecorder(bool) {}
inline bool FlightRecorderEnabled() { return false; }
inline void RecordEvent(RecordKind, const char*, uint64_t, uint64_t) {}
inline uint64_t ThisThreadRecordedCount() { return 0; }
inline size_t FormatRecordLine(const RecorderEvent&, char*, size_t) {
  return 0;
}
inline size_t DumpFlightRecord(int) { return 0; }
inline bool DumpFlightRecordToPath(const char*) { return false; }
inline void InstallCrashDump(const char*) {}
inline void CaptureLogTail() {}

#endif  // CARDIR_OBS_ENABLED

}  // namespace obs

// Instrumentation macro: one relaxed load + branch when the recorder is
// off, nothing at all under -DCARDIR_OBS=OFF. Arguments must be free of
// side effects (enforced by tools/analyzer's obs-macro-side-effect check).
#ifdef CARDIR_OBS_ENABLED
#define CARDIR_RECORD_EVENT(kind, label, a, b)                       \
  do {                                                               \
    if (::cardir::obs::FlightRecorderEnabled()) {                    \
      ::cardir::obs::RecordEvent(::cardir::obs::RecordKind::kind,    \
                                 (label), static_cast<uint64_t>(a),  \
                                 static_cast<uint64_t>(b));          \
    }                                                                \
  } while (false)
#else
#define CARDIR_RECORD_EVENT(kind, label, a, b) \
  do {                                         \
    (void)sizeof(label);                       \
    (void)sizeof(a);                           \
    (void)sizeof(b);                           \
  } while (false)
#endif  // CARDIR_OBS_ENABLED

}  // namespace cardir

#endif  // CARDIR_OBS_RECORDER_H_
