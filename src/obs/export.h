// Exporters for metrics snapshots: a human-readable table for the CLI, a
// JSON object for bench ledgers and machine consumption, and the
// Prometheus text exposition format for scraping.
//
// All three take a MetricsSnapshot (usually a Diff over a workload) so the
// caller controls the observation window; none of them touch the live
// registry.

#ifndef CARDIR_OBS_EXPORT_H_
#define CARDIR_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"

namespace cardir {
namespace obs {

/// Aligned two-column table:
///   counter   engine.pairs.total            3998000
///   gauge     engine.pool.threads                 8
///   histogram xml.parse_us    count=12 sum=3456 p~max<=512
struct MetricsTableOptions {
  /// Omit metrics whose value (counter/histogram count) is zero.
  bool skip_zero = true;
};
std::string FormatMetricsTable(const MetricsSnapshot& snapshot,
                               const MetricsTableOptions& options = {});

/// One JSON object: {"counters": {...}, "gauges": {...}, "histograms":
/// {"name": {"count": c, "sum": s, "buckets": {"<=1": n, ...}}}}. Histogram
/// buckets with zero count are omitted; key order is the snapshot's
/// (lexicographic), so output is deterministic.
std::string FormatMetricsJson(const MetricsSnapshot& snapshot);

/// Prometheus text format. Metric names are sanitised ('.' and '-' become
/// '_', prefixed "cardir_"); histograms emit cumulative _bucket series with
/// le labels, plus _count and _sum.
std::string FormatMetricsPrometheus(const MetricsSnapshot& snapshot);

}  // namespace obs
}  // namespace cardir

#endif  // CARDIR_OBS_EXPORT_H_
