// Exporters for metrics snapshots: a human-readable table for the CLI, a
// JSON object for bench ledgers and machine consumption, and the
// Prometheus text exposition format for scraping.
//
// All three take a MetricsSnapshot (usually a Diff over a workload) so the
// caller controls the observation window; none of them touch the live
// registry.

#ifndef CARDIR_OBS_EXPORT_H_
#define CARDIR_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"

namespace cardir {
namespace obs {

/// Estimated q-quantile (q in [0,1]) of a log2-bucket histogram: finds the
/// bucket holding the q*count-th observation and interpolates linearly
/// between the bucket's bounds (2^(k-1), 2^k]. Within a factor of 2 by
/// construction — good enough to read latency tables without external
/// tooling. Returns 0 for an empty histogram.
double HistogramQuantileEstimate(const HistogramData& data, double q);

/// Aligned two-column table:
///   counter   engine.pairs.total            3998000
///   gauge     engine.pool.threads                 8
///   histogram xml.parse_us  count=12 sum=3456 p50~3 p90~24 p99~412 max<=512
/// The p50/p90/p99 columns are HistogramQuantileEstimate values.
struct MetricsTableOptions {
  /// Omit metrics whose value (counter/histogram count) is zero.
  bool skip_zero = true;
};
std::string FormatMetricsTable(const MetricsSnapshot& snapshot,
                               const MetricsTableOptions& options = {});

/// One JSON object: {"counters": {...}, "gauges": {...}, "histograms":
/// {"name": {"count": c, "sum": s, "p50": x, "p90": y, "p99": z,
/// "buckets": {"<=1": n, ...}}}}. Histogram buckets with zero count are
/// omitted; quantiles are HistogramQuantileEstimate values; key order is
/// the snapshot's (lexicographic), so output is deterministic.
std::string FormatMetricsJson(const MetricsSnapshot& snapshot);

/// Prometheus text exposition format. Metric names are sanitised ('.' and
/// '-' become '_', prefixed "cardir_"); every series carries # HELP and
/// # TYPE lines; histograms emit a dense cumulative _bucket series with le
/// labels (every bucket up to the highest non-empty one, so downstream
/// histogram_quantile sees a gap-free monotone series), plus _count and
/// _sum.
std::string FormatMetricsPrometheus(const MetricsSnapshot& snapshot);

}  // namespace obs
}  // namespace cardir

#endif  // CARDIR_OBS_EXPORT_H_
