// Async-signal-safe text formatting for the flight-recorder dump path.
//
// Everything here appends into a caller-owned fixed buffer: no heap, no
// stdio, no locale, no errno mutation — the only things a SIGSEGV handler
// is allowed to touch. The recorder's crash dump and the clean-exit dump
// share these helpers so the signal path is exercised by ordinary tests
// (the FormatLogLine-seam pattern from util/logging).
//
// All functions silently truncate at the buffer capacity and return the
// new length; a truncated dump is still parseable line-by-line.

#ifndef CARDIR_OBS_RAW_FORMAT_H_
#define CARDIR_OBS_RAW_FORMAT_H_

#include <cstddef>
#include <cstdint>

namespace cardir {
namespace obs {
namespace raw {

/// Appends NUL-free bytes of `text` (up to its terminator) into
/// `buf[len..cap)`; returns the new length.
inline size_t AppendStr(char* buf, size_t len, size_t cap, const char* text) {
  if (text == nullptr) text = "(null)";
  while (*text != '\0' && len < cap) buf[len++] = *text++;
  return len;
}

/// Appends a single character.
inline size_t AppendChar(char* buf, size_t len, size_t cap, char c) {
  if (len < cap) buf[len++] = c;
  return len;
}

/// Appends `value` in decimal.
inline size_t AppendU64(char* buf, size_t len, size_t cap, uint64_t value) {
  char digits[20];  // 2^64-1 has 20 decimal digits.
  size_t n = 0;
  do {
    digits[n++] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0);
  while (n > 0 && len < cap) buf[len++] = digits[--n];
  return len;
}

/// Appends `value` in decimal with a leading '-' when negative.
inline size_t AppendI64(char* buf, size_t len, size_t cap, int64_t value) {
  uint64_t magnitude = static_cast<uint64_t>(value);
  if (value < 0) {
    len = AppendChar(buf, len, cap, '-');
    magnitude = ~magnitude + 1;  // Two's complement; INT64_MIN-safe.
  }
  return AppendU64(buf, len, cap, magnitude);
}

/// Appends `text`, replacing bytes outside printable ASCII (and spaces,
/// which would break the key=value line grammar) with '_'.
inline size_t AppendSanitised(char* buf, size_t len, size_t cap,
                              const char* text) {
  if (text == nullptr) text = "(null)";
  for (; *text != '\0' && len < cap; ++text) {
    const char c = *text;
    const bool ok = c > ' ' && c < 0x7f;
    buf[len++] = ok ? c : '_';
  }
  return len;
}

}  // namespace raw
}  // namespace obs
}  // namespace cardir

#endif  // CARDIR_OBS_RAW_FORMAT_H_
