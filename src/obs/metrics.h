// Process-wide metrics registry: named counters, gauges, and log-scale
// histograms, cheap enough to leave on in release builds.
//
// Hot-path cost model (see src/obs/README.md for measurements):
//   - Counter::Add / Histogram::Observe is one relaxed fetch_add on a
//     cache-line-padded shard picked by a thread-local index, so concurrent
//     writers from the engine's worker threads do not bounce a shared line.
//   - Metric lookup by name takes a mutex, so call sites cache the
//     reference in a function-local static (the CARDIR_METRIC_* macros do
//     this); steady-state cost is the increment alone.
//   - Everything is plain std::atomic — no seq_cst fences, no TSan
//     suppressions needed.
//
// Reads (Value(), CaptureMetrics()) sum the shards with relaxed loads; they
// are linearisable only against a quiescent writer set, which is what the
// snapshot/diff workflow wants: snapshot, run the workload to completion,
// snapshot again, diff.
//
// Counters compile to no-ops under -DCARDIR_OBS=OFF (the macros expand to
// nothing) so the uninstrumented build remains available as an overhead
// baseline; the registry itself always builds.

#ifndef CARDIR_OBS_METRICS_H_
#define CARDIR_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace cardir {

#ifdef CARDIR_OBS_ENABLED
inline constexpr bool kObsEnabled = true;
#else
inline constexpr bool kObsEnabled = false;
#endif

namespace obs {

/// Number of per-metric shards. Power of two; threads hash onto shards with
/// a thread-local index, so up to this many writers proceed without sharing
/// a cache line.
inline constexpr size_t kMetricShards = 16;

/// Small dense per-thread shard index (round-robin over threads), also used
/// by the tracer as a stable human-readable thread id.
size_t ThisThreadIndex();

/// A monotonically increasing counter.
class Counter {
 public:
  void Add(uint64_t delta) {
    shards_[ThisThreadIndex() % kMetricShards].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Sum over shards (relaxed; exact once writers are quiescent).
  uint64_t Value() const;

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, kMetricShards> shards_{};
};

/// A last-value metric (set or adjusted, not summed across threads).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  /// Adjusts by `delta` and returns the post-adjustment value, so callers
  /// tracking a paired high-water gauge can feed UpdateMax without a racy
  /// re-read.
  int64_t Add(int64_t delta) {
    return value_.fetch_add(delta, std::memory_order_relaxed) + delta;
  }
  /// Raises the gauge to `candidate` if it is below it (CAS max). Used for
  /// peak/high-water gauges updated from many threads.
  void UpdateMax(int64_t candidate) {
    int64_t current = value_.load(std::memory_order_relaxed);
    while (current < candidate &&
           !value_.compare_exchange_weak(current, candidate,
                                         std::memory_order_relaxed)) {
    }
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A histogram with log-2 bucket boundaries: bucket k counts observations v
/// with 2^(k-1) < v <= 2^k (bucket 0 counts v <= 1, i.e. 0 and 1). 64
/// buckets cover the whole uint64 range, so microsecond latencies and item
/// counts both fit without configuration.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  /// Bucket index for `value` (shared with tests and exporters).
  static size_t BucketOf(uint64_t value) {
    size_t bucket = 0;
    while (value > (uint64_t{1} << bucket) && bucket < kBuckets - 1) ++bucket;
    return bucket;
  }

  /// Inclusive upper bound of bucket `k` (2^k).
  static uint64_t BucketUpperBound(size_t k) { return uint64_t{1} << k; }

  void Observe(uint64_t value) {
    Shard& shard = shards_[ThisThreadIndex() % kMetricShards];
    shard.buckets[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    shard.count.fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t Count() const;
  uint64_t Sum() const;
  /// Summed bucket counts (size kBuckets).
  std::vector<uint64_t> Buckets() const;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kBuckets> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
  };
  std::array<Shard, kMetricShards> shards_{};
};

/// Point-in-time histogram data inside a snapshot.
struct HistogramData {
  uint64_t count = 0;
  uint64_t sum = 0;
  std::vector<uint64_t> buckets;  // kBuckets entries; empty means all-zero.
};

/// A consistent-enough copy of every registered metric. Ordered maps so
/// exporters emit a deterministic order.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramData> histograms;

  /// Counter value by name (0 when absent) — convenience for benches/tests.
  uint64_t counter(const std::string& name) const;

  /// Gauge value by name (0 when absent) — convenience for benches/tests.
  int64_t gauge(const std::string& name) const;

  /// The change from `earlier` to this snapshot: counters and histogram
  /// counts subtract; gauges keep this snapshot's value (a gauge is a
  /// level, not a flow). Metrics born after `earlier` diff against zero.
  MetricsSnapshot Diff(const MetricsSnapshot& earlier) const;
};

/// The process-wide registry. Get-or-create by name is mutex-guarded (cold
/// path); returned references live for the process lifetime.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  MetricsSnapshot Capture() const;

  /// Best-effort async-signal-safe dump of counter and gauge values into
  /// `fd` as "metric counter <name> <value>" lines. Takes the registry
  /// mutex with try_lock only — if another thread holds it at crash time
  /// the metrics section is skipped rather than deadlocking the signal
  /// handler. Traversing the maps neither allocates nor formats through
  /// stdio (raw_format helpers only). Histograms are summarised as
  /// count/sum. Returns true when the lock was obtained.
  bool TryDumpRaw(int fd) const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  // Pointer maps: node stability lets hot paths hold references while the
  // registry keeps growing.
  std::map<std::string, Counter*> counters_;
  std::map<std::string, Gauge*> gauges_;
  std::map<std::string, Histogram*> histograms_;
};

/// Shorthand for MetricsRegistry::Global().Capture().
MetricsSnapshot CaptureMetrics();

}  // namespace obs

// Instrumentation macros. Each call site resolves its metric once (static
// local) and compiles to nothing under -DCARDIR_OBS=OFF. `name` must be a
// string literal (or otherwise immortal) — the registry keys on it once.
#ifdef CARDIR_OBS_ENABLED

#define CARDIR_METRIC_COUNT(name, delta)                              \
  do {                                                                \
    static ::cardir::obs::Counter& cardir_metric_counter__ =          \
        ::cardir::obs::MetricsRegistry::Global().GetCounter(name);    \
    cardir_metric_counter__.Add(static_cast<uint64_t>(delta));        \
  } while (false)

#define CARDIR_METRIC_GAUGE_SET(name, value)                          \
  do {                                                                \
    static ::cardir::obs::Gauge& cardir_metric_gauge__ =              \
        ::cardir::obs::MetricsRegistry::Global().GetGauge(name);      \
    cardir_metric_gauge__.Set(static_cast<int64_t>(value));           \
  } while (false)

#define CARDIR_METRIC_OBSERVE(name, value)                            \
  do {                                                                \
    static ::cardir::obs::Histogram& cardir_metric_histogram__ =      \
        ::cardir::obs::MetricsRegistry::Global().GetHistogram(name);  \
    cardir_metric_histogram__.Observe(static_cast<uint64_t>(value));  \
  } while (false)

#else

// sizeof keeps the arguments parsed (bit-rot caught at compile time)
// without evaluating them, mirroring CARDIR_AUDIT's disabled form.
#define CARDIR_METRIC_COUNT(name, delta) \
  do {                                   \
    (void)sizeof(name);                  \
    (void)sizeof(delta);                 \
  } while (false)
#define CARDIR_METRIC_GAUGE_SET(name, value) \
  do {                                       \
    (void)sizeof(name);                      \
    (void)sizeof(value);                     \
  } while (false)
#define CARDIR_METRIC_OBSERVE(name, value) \
  do {                                     \
    (void)sizeof(name);                    \
    (void)sizeof(value);                   \
  } while (false)

#endif  // CARDIR_OBS_ENABLED

}  // namespace cardir

#endif  // CARDIR_OBS_METRICS_H_
