#include "obs/recorder.h"

#ifdef CARDIR_OBS_ENABLED

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstring>

#include "obs/metrics.h"
#include "obs/raw_format.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace cardir {
namespace obs {
namespace {

// Per-thread ring. Single writer (the owning thread); `head` is the
// monotonic count of events ever appended, published with release so the
// dump path sees fully written slots for every sequence number below it.
struct ThreadRing {
  RecorderEvent events[kRingCapacity];
  std::atomic<uint64_t> head{0};
  uint32_t tid = 0;
};

// Fixed lock-free registration array: the dump path must be able to walk
// all rings from a signal handler, where taking a mutex could deadlock
// against the thread that crashed while holding it. Rings are leaked on
// thread exit so post-mortem dumps still include joined workers.
constexpr size_t kMaxRings = 256;
std::atomic<ThreadRing*> g_rings[kMaxRings] = {};
std::atomic<size_t> g_ring_count{0};

std::atomic<bool> g_recording{false};

ThreadRing* LocalRing() {
  thread_local ThreadRing* ring = [] {
    auto* fresh = new ThreadRing();
    fresh->tid = static_cast<uint32_t>(ThisThreadIndex());
    const size_t slot = g_ring_count.fetch_add(1, std::memory_order_relaxed);
    if (slot < kMaxRings) {
      g_rings[slot].store(fresh, std::memory_order_release);
    }
    return fresh;
  }();
  return ring;
}

const char* KindName(uint16_t kind) {
  switch (static_cast<RecordKind>(kind)) {
    case RecordKind::kMark: return "mark";
    case RecordKind::kPhase: return "phase";
    case RecordKind::kChunk: return "chunk";
    case RecordKind::kDefer: return "defer";
    case RecordKind::kLog: return "log";
    case RecordKind::kSweep: return "sweep";
    case RecordKind::kDelta: return "delta";
  }
  return "unknown";
}

void RawWrite(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n <= 0) return;
    written += static_cast<size_t>(n);
  }
}

void WriteHeaderLine(int fd, const char* text) {
  RawWrite(fd, text, std::strlen(text));
}

// --- Log-line tail ---------------------------------------------------------

void LogTailHook(const char* line, size_t length) {
  if (!FlightRecorderEnabled()) return;
  // Strip the trailing newline; RecordEvent sanitises the rest on dump.
  if (length > 0 && line[length - 1] == '\n') --length;
  char clipped[sizeof(RecorderEvent{}.label)];
  const size_t n = length < sizeof(clipped) - 1 ? length : sizeof(clipped) - 1;
  std::memcpy(clipped, line, n);
  clipped[n] = '\0';
  RecordEvent(RecordKind::kLog, clipped, length, 0);
}

// --- Crash handler ---------------------------------------------------------

char g_dump_path[512] = {};

void CrashHandler(int sig) {
  // SA_RESETHAND already restored the default disposition. Dump, then
  // re-raise so the process still dies with the original signal status.
  if (g_dump_path[0] != '\0') {
    DumpFlightRecordToPath(g_dump_path);
  }
  ::raise(sig);
}

}  // namespace

void EnableFlightRecorder(bool enabled) {
  g_recording.store(enabled, std::memory_order_release);
}

bool FlightRecorderEnabled() {
  return g_recording.load(std::memory_order_relaxed);
}

void RecordEvent(RecordKind kind, const char* label, uint64_t a, uint64_t b) {
  if (!FlightRecorderEnabled()) return;
  ThreadRing* ring = LocalRing();
  const uint64_t seq = ring->head.load(std::memory_order_relaxed);
  RecorderEvent& slot = ring->events[seq % kRingCapacity];
  slot.time_us = TraceNowMicros();
  slot.tid = ring->tid;
  slot.kind = static_cast<uint16_t>(kind);
  slot.a = a;
  slot.b = b;
  if (label == nullptr) label = "";
  const size_t n = std::strlen(label);
  const size_t clip = n < sizeof(slot.label) - 1 ? n : sizeof(slot.label) - 1;
  std::memcpy(slot.label, label, clip);
  slot.label[clip] = '\0';
  ring->head.store(seq + 1, std::memory_order_release);
}

uint64_t ThisThreadRecordedCount() {
  return LocalRing()->head.load(std::memory_order_relaxed);
}

size_t FormatRecordLine(const RecorderEvent& event, char* buf, size_t cap) {
  size_t len = 0;
  len = raw::AppendStr(buf, len, cap, "event t_us=");
  len = raw::AppendU64(buf, len, cap, event.time_us);
  len = raw::AppendStr(buf, len, cap, " tid=");
  len = raw::AppendU64(buf, len, cap, event.tid);
  len = raw::AppendStr(buf, len, cap, " kind=");
  len = raw::AppendStr(buf, len, cap, KindName(event.kind));
  len = raw::AppendStr(buf, len, cap, " a=");
  len = raw::AppendU64(buf, len, cap, event.a);
  len = raw::AppendStr(buf, len, cap, " b=");
  len = raw::AppendU64(buf, len, cap, event.b);
  len = raw::AppendStr(buf, len, cap, " label=");
  len = raw::AppendSanitised(buf, len, cap, event.label);
  len = raw::AppendChar(buf, len, cap, '\n');
  return len;
}

size_t DumpFlightRecord(int fd) {
  WriteHeaderLine(fd, "cardir-flight-record v1\n");
  size_t lines = 0;
  const size_t ring_count = g_ring_count.load(std::memory_order_acquire);
  const size_t walk = ring_count < kMaxRings ? ring_count : kMaxRings;
  for (size_t i = 0; i < walk; ++i) {
    const ThreadRing* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;  // Registration still in flight.
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    const uint64_t start = head > kRingCapacity ? head - kRingCapacity : 0;
    {
      char buf[128];
      size_t len = 0;
      len = raw::AppendStr(buf, len, sizeof(buf), "ring tid=");
      len = raw::AppendU64(buf, len, sizeof(buf), ring->tid);
      len = raw::AppendStr(buf, len, sizeof(buf), " recorded=");
      len = raw::AppendU64(buf, len, sizeof(buf), head);
      len = raw::AppendStr(buf, len, sizeof(buf), " retained=");
      len = raw::AppendU64(buf, len, sizeof(buf), head - start);
      len = raw::AppendChar(buf, len, sizeof(buf), '\n');
      RawWrite(fd, buf, len);
    }
    for (uint64_t seq = start; seq < head; ++seq) {
      char buf[256];
      const size_t len =
          FormatRecordLine(ring->events[seq % kRingCapacity], buf, sizeof(buf));
      RawWrite(fd, buf, len);
      ++lines;
    }
  }
  MetricsRegistry::Global().TryDumpRaw(fd);
  WriteHeaderLine(fd, "end\n");
  return lines;
}

bool DumpFlightRecordToPath(const char* path) {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  DumpFlightRecord(fd);
  ::close(fd);
  return true;
}

void InstallCrashDump(const char* path) {
  const size_t n = std::strlen(path);
  const size_t clip = n < sizeof(g_dump_path) - 1 ? n : sizeof(g_dump_path) - 1;
  std::memcpy(g_dump_path, path, clip);
  g_dump_path[clip] = '\0';
  EnableFlightRecorder(true);

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = &CrashHandler;
  sigemptyset(&action.sa_mask);
  // One shot: the handler runs once, the disposition resets to default,
  // and the re-raise terminates with the original signal.
  action.sa_flags = SA_RESETHAND;
  ::sigaction(SIGSEGV, &action, nullptr);
  ::sigaction(SIGABRT, &action, nullptr);
  ::sigaction(SIGBUS, &action, nullptr);
}

void CaptureLogTail() { SetLogLineHook(&LogTailHook); }

}  // namespace obs
}  // namespace cardir

#endif  // CARDIR_OBS_ENABLED
