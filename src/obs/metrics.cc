#include "obs/metrics.h"

#include <unistd.h>

#include "obs/raw_format.h"

namespace cardir {
namespace obs {
namespace {

// write(2) the whole buffer; signal-safe (no errno inspection loops beyond
// the return value, no retries on error).
void RawWrite(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n <= 0) return;
    written += static_cast<size_t>(n);
  }
}

void DumpMetricLine(int fd, const char* metric_kind, const std::string& name,
                    int64_t value) {
  char buf[256];
  size_t len = 0;
  len = raw::AppendStr(buf, len, sizeof(buf), "metric ");
  len = raw::AppendStr(buf, len, sizeof(buf), metric_kind);
  len = raw::AppendChar(buf, len, sizeof(buf), ' ');
  len = raw::AppendSanitised(buf, len, sizeof(buf), name.c_str());
  len = raw::AppendChar(buf, len, sizeof(buf), ' ');
  len = raw::AppendI64(buf, len, sizeof(buf), value);
  len = raw::AppendChar(buf, len, sizeof(buf), '\n');
  RawWrite(fd, buf, len);
}

}  // namespace

size_t ThisThreadIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::Sum() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<uint64_t> Histogram::Buckets() const {
  std::vector<uint64_t> totals(kBuckets, 0);
  for (const Shard& shard : shards_) {
    for (size_t k = 0; k < kBuckets; ++k) {
      totals[k] += shard.buckets[k].load(std::memory_order_relaxed);
    }
  }
  return totals;
}

uint64_t MetricsSnapshot::counter(const std::string& name) const {
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

int64_t MetricsSnapshot::gauge(const std::string& name) const {
  const auto it = gauges.find(name);
  return it == gauges.end() ? 0 : it->second;
}

MetricsSnapshot MetricsSnapshot::Diff(const MetricsSnapshot& earlier) const {
  MetricsSnapshot diff;
  for (const auto& [name, value] : counters) {
    const auto it = earlier.counters.find(name);
    const uint64_t before = it == earlier.counters.end() ? 0 : it->second;
    diff.counters[name] = value - before;
  }
  diff.gauges = gauges;  // Levels, not flows.
  for (const auto& [name, data] : histograms) {
    const auto it = earlier.histograms.find(name);
    HistogramData d = data;
    if (it != earlier.histograms.end()) {
      const HistogramData& before = it->second;
      d.count -= before.count;
      d.sum -= before.sum;
      for (size_t k = 0; k < d.buckets.size() && k < before.buckets.size();
           ++k) {
        d.buckets[k] -= before.buckets[k];
      }
    }
    diff.histograms[name] = std::move(d);
  }
  return diff;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Counter*& slot = counters_[name];
  if (slot == nullptr) slot = new Counter();  // Immortal, like the registry.
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Gauge*& slot = gauges_[name];
  if (slot == nullptr) slot = new Gauge();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Histogram*& slot = histograms_[name];
  if (slot == nullptr) slot = new Histogram();
  return *slot;
}

MetricsSnapshot MetricsRegistry::Capture() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramData data;
    data.count = histogram->Count();
    data.sum = histogram->Sum();
    data.buckets = histogram->Buckets();
    snapshot.histograms[name] = std::move(data);
  }
  return snapshot;
}

bool MetricsRegistry::TryDumpRaw(int fd) const {
  if (!mutex_.try_lock()) return false;
  // Map traversal only reads existing nodes; metric Value() sums atomics.
  // Neither allocates, so this is safe from a signal handler given the
  // lock (which the try_lock above guarantees we own).
  for (const auto& [name, counter] : counters_) {
    DumpMetricLine(fd, "counter", name, static_cast<int64_t>(counter->Value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    DumpMetricLine(fd, "gauge", name, gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    char buf[256];
    size_t len = 0;
    len = raw::AppendStr(buf, len, sizeof(buf), "metric histogram ");
    len = raw::AppendSanitised(buf, len, sizeof(buf), name.c_str());
    len = raw::AppendStr(buf, len, sizeof(buf), " count=");
    len = raw::AppendU64(buf, len, sizeof(buf), histogram->Count());
    len = raw::AppendStr(buf, len, sizeof(buf), " sum=");
    len = raw::AppendU64(buf, len, sizeof(buf), histogram->Sum());
    len = raw::AppendChar(buf, len, sizeof(buf), '\n');
    RawWrite(fd, buf, len);
  }
  mutex_.unlock();
  return true;
}

MetricsSnapshot CaptureMetrics() { return MetricsRegistry::Global().Capture(); }

}  // namespace obs
}  // namespace cardir
