#include "obs/metrics.h"

namespace cardir {
namespace obs {

size_t ThisThreadIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::Sum() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<uint64_t> Histogram::Buckets() const {
  std::vector<uint64_t> totals(kBuckets, 0);
  for (const Shard& shard : shards_) {
    for (size_t k = 0; k < kBuckets; ++k) {
      totals[k] += shard.buckets[k].load(std::memory_order_relaxed);
    }
  }
  return totals;
}

uint64_t MetricsSnapshot::counter(const std::string& name) const {
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

MetricsSnapshot MetricsSnapshot::Diff(const MetricsSnapshot& earlier) const {
  MetricsSnapshot diff;
  for (const auto& [name, value] : counters) {
    const auto it = earlier.counters.find(name);
    const uint64_t before = it == earlier.counters.end() ? 0 : it->second;
    diff.counters[name] = value - before;
  }
  diff.gauges = gauges;  // Levels, not flows.
  for (const auto& [name, data] : histograms) {
    const auto it = earlier.histograms.find(name);
    HistogramData d = data;
    if (it != earlier.histograms.end()) {
      const HistogramData& before = it->second;
      d.count -= before.count;
      d.sum -= before.sum;
      for (size_t k = 0; k < d.buckets.size() && k < before.buckets.size();
           ++k) {
        d.buckets[k] -= before.buckets[k];
      }
    }
    diff.histograms[name] = std::move(d);
  }
  return diff;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Counter*& slot = counters_[name];
  if (slot == nullptr) slot = new Counter();  // Immortal, like the registry.
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Gauge*& slot = gauges_[name];
  if (slot == nullptr) slot = new Gauge();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Histogram*& slot = histograms_[name];
  if (slot == nullptr) slot = new Histogram();
  return *slot;
}

MetricsSnapshot MetricsRegistry::Capture() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramData data;
    data.count = histogram->Count();
    data.sum = histogram->Sum();
    data.buckets = histogram->Buckets();
    snapshot.histograms[name] = std::move(data);
  }
  return snapshot;
}

MetricsSnapshot CaptureMetrics() { return MetricsRegistry::Global().Capture(); }

}  // namespace obs
}  // namespace cardir
