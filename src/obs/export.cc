#include "obs/export.h"

#include <algorithm>
#include <sstream>

#include "util/string_util.h"

namespace cardir {
namespace obs {
namespace {

std::string PrometheusName(const std::string& name) {
  std::string out = "cardir_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

// Largest non-empty bucket's upper bound — a cheap "max is at most" figure
// for the table view.
std::string HistogramMaxBound(const HistogramData& data) {
  for (size_t k = data.buckets.size(); k-- > 0;) {
    if (data.buckets[k] != 0) {
      return StrFormat("%llu", static_cast<unsigned long long>(
                                   Histogram::BucketUpperBound(k)));
    }
  }
  return "0";
}

}  // namespace

std::string FormatMetricsTable(const MetricsSnapshot& snapshot,
                               const MetricsTableOptions& options) {
  size_t width = 0;
  for (const auto& [name, value] : snapshot.counters) {
    if (!(options.skip_zero && value == 0)) width = std::max(width, name.size());
  }
  for (const auto& [name, value] : snapshot.gauges) {
    (void)value;
    width = std::max(width, name.size());
  }
  for (const auto& [name, data] : snapshot.histograms) {
    if (!(options.skip_zero && data.count == 0)) {
      width = std::max(width, name.size());
    }
  }

  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    if (options.skip_zero && value == 0) continue;
    out << StrFormat("counter    %-*s %12llu\n", static_cast<int>(width),
                     name.c_str(), static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out << StrFormat("gauge      %-*s %12lld\n", static_cast<int>(width),
                     name.c_str(), static_cast<long long>(value));
  }
  for (const auto& [name, data] : snapshot.histograms) {
    if (options.skip_zero && data.count == 0) continue;
    out << StrFormat("histogram  %-*s count=%llu sum=%llu max<=%s\n",
                     static_cast<int>(width), name.c_str(),
                     static_cast<unsigned long long>(data.count),
                     static_cast<unsigned long long>(data.sum),
                     HistogramMaxBound(data).c_str());
  }
  return out.str();
}

std::string FormatMetricsJson(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, data] : snapshot.histograms) {
    out << (first ? "\n" : ",\n") << "    \"" << name
        << "\": {\"count\": " << data.count << ", \"sum\": " << data.sum
        << ", \"buckets\": {";
    bool first_bucket = true;
    for (size_t k = 0; k < data.buckets.size(); ++k) {
      if (data.buckets[k] == 0) continue;
      if (!first_bucket) out << ", ";
      first_bucket = false;
      out << "\"<=" << Histogram::BucketUpperBound(k)
          << "\": " << data.buckets[k];
    }
    out << "}}";
    first = false;
  }
  out << (first ? "}" : "\n  }") << "\n}\n";
  return out.str();
}

std::string FormatMetricsPrometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusName(name);
    out << "# TYPE " << prom << " counter\n" << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusName(name);
    out << "# TYPE " << prom << " gauge\n" << prom << " " << value << "\n";
  }
  for (const auto& [name, data] : snapshot.histograms) {
    const std::string prom = PrometheusName(name);
    out << "# TYPE " << prom << " histogram\n";
    uint64_t cumulative = 0;
    for (size_t k = 0; k < data.buckets.size(); ++k) {
      if (data.buckets[k] == 0) continue;  // Sparse: skip empty buckets.
      cumulative += data.buckets[k];
      out << prom << "_bucket{le=\"" << Histogram::BucketUpperBound(k)
          << "\"} " << cumulative << "\n";
    }
    out << prom << "_bucket{le=\"+Inf\"} " << data.count << "\n"
        << prom << "_sum " << data.sum << "\n"
        << prom << "_count " << data.count << "\n";
  }
  return out.str();
}

}  // namespace obs
}  // namespace cardir
