#include "obs/export.h"

#include <algorithm>
#include <sstream>

#include "util/string_util.h"

namespace cardir {
namespace obs {
namespace {

std::string PrometheusName(const std::string& name) {
  std::string out = "cardir_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

// Largest non-empty bucket's upper bound — a cheap "max is at most" figure
// for the table view.
std::string HistogramMaxBound(const HistogramData& data) {
  for (size_t k = data.buckets.size(); k-- > 0;) {
    if (data.buckets[k] != 0) {
      return StrFormat("%llu", static_cast<unsigned long long>(
                                   Histogram::BucketUpperBound(k)));
    }
  }
  return "0";
}

// Quantile estimates rendered with %g so integers stay short ("412") and
// interpolated values keep a couple of decimals ("3.5").
std::string QuantileString(const HistogramData& data, double q) {
  return StrFormat("%.4g", HistogramQuantileEstimate(data, q));
}

// # HELP text by metric-name prefix: exact descriptions live next to the
// instrumentation sites, so the exporter only knows the subsystem.
const char* PrometheusHelp(const std::string& name) {
  if (name.rfind("engine.", 0) == 0) return "Batch relation engine metric.";
  if (name.rfind("cdr.", 0) == 0) return "Compute-CDR core metric.";
  if (name.rfind("index.", 0) == 0) return "Spatial index metric.";
  if (name.rfind("xml.", 0) == 0) return "XML ingest/serialise metric.";
  if (name.rfind("mem.", 0) == 0) return "Memory telemetry in bytes.";
  if (name.rfind("query.", 0) == 0) return "Directional query metric.";
  return "cardir metric.";
}

}  // namespace

double HistogramQuantileEstimate(const HistogramData& data, double q) {
  if (data.count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(data.count);
  uint64_t cumulative = 0;
  for (size_t k = 0; k < data.buckets.size(); ++k) {
    if (data.buckets[k] == 0) continue;
    const uint64_t before = cumulative;
    cumulative += data.buckets[k];
    if (static_cast<double>(cumulative) < target) continue;
    // Bucket k spans (2^(k-1), 2^k]; bucket 0 spans [0, 1].
    const double lower =
        k == 0 ? 0.0
               : static_cast<double>(Histogram::BucketUpperBound(k - 1));
    const double upper = static_cast<double>(Histogram::BucketUpperBound(k));
    const double in_bucket = static_cast<double>(data.buckets[k]);
    const double position = (target - static_cast<double>(before)) / in_bucket;
    return lower + position * (upper - lower);
  }
  // All observations below target can only happen via rounding; report the
  // histogram's max bound.
  for (size_t k = data.buckets.size(); k-- > 0;) {
    if (data.buckets[k] != 0) {
      return static_cast<double>(Histogram::BucketUpperBound(k));
    }
  }
  return 0.0;
}

std::string FormatMetricsTable(const MetricsSnapshot& snapshot,
                               const MetricsTableOptions& options) {
  size_t width = 0;
  for (const auto& [name, value] : snapshot.counters) {
    if (!(options.skip_zero && value == 0)) width = std::max(width, name.size());
  }
  for (const auto& [name, value] : snapshot.gauges) {
    (void)value;
    width = std::max(width, name.size());
  }
  for (const auto& [name, data] : snapshot.histograms) {
    if (!(options.skip_zero && data.count == 0)) {
      width = std::max(width, name.size());
    }
  }

  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    if (options.skip_zero && value == 0) continue;
    out << StrFormat("counter    %-*s %12llu\n", static_cast<int>(width),
                     name.c_str(), static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out << StrFormat("gauge      %-*s %12lld\n", static_cast<int>(width),
                     name.c_str(), static_cast<long long>(value));
  }
  for (const auto& [name, data] : snapshot.histograms) {
    if (options.skip_zero && data.count == 0) continue;
    out << StrFormat(
        "histogram  %-*s count=%llu sum=%llu p50~%s p90~%s p99~%s max<=%s\n",
        static_cast<int>(width), name.c_str(),
        static_cast<unsigned long long>(data.count),
        static_cast<unsigned long long>(data.sum),
        QuantileString(data, 0.50).c_str(), QuantileString(data, 0.90).c_str(),
        QuantileString(data, 0.99).c_str(), HistogramMaxBound(data).c_str());
  }
  return out.str();
}

std::string FormatMetricsJson(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, data] : snapshot.histograms) {
    out << (first ? "\n" : ",\n") << "    \"" << name
        << "\": {\"count\": " << data.count << ", \"sum\": " << data.sum
        << ", \"p50\": " << QuantileString(data, 0.50)
        << ", \"p90\": " << QuantileString(data, 0.90)
        << ", \"p99\": " << QuantileString(data, 0.99) << ", \"buckets\": {";
    bool first_bucket = true;
    for (size_t k = 0; k < data.buckets.size(); ++k) {
      if (data.buckets[k] == 0) continue;
      if (!first_bucket) out << ", ";
      first_bucket = false;
      out << "\"<=" << Histogram::BucketUpperBound(k)
          << "\": " << data.buckets[k];
    }
    out << "}}";
    first = false;
  }
  out << (first ? "}" : "\n  }") << "\n}\n";
  return out.str();
}

std::string FormatMetricsPrometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusName(name);
    out << "# HELP " << prom << " " << PrometheusHelp(name) << "\n"
        << "# TYPE " << prom << " counter\n"
        << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusName(name);
    out << "# HELP " << prom << " " << PrometheusHelp(name) << "\n"
        << "# TYPE " << prom << " gauge\n"
        << prom << " " << value << "\n";
  }
  for (const auto& [name, data] : snapshot.histograms) {
    const std::string prom = PrometheusName(name);
    out << "# HELP " << prom << " " << PrometheusHelp(name) << "\n"
        << "# TYPE " << prom << " histogram\n";
    // Dense cumulative series: every le bound up to the highest non-empty
    // bucket, so histogram_quantile never sees gaps.
    size_t highest = 0;
    bool any = false;
    for (size_t k = 0; k < data.buckets.size(); ++k) {
      if (data.buckets[k] != 0) {
        highest = k;
        any = true;
      }
    }
    uint64_t cumulative = 0;
    if (any) {
      for (size_t k = 0; k <= highest; ++k) {
        cumulative += data.buckets[k];
        out << prom << "_bucket{le=\"" << Histogram::BucketUpperBound(k)
            << "\"} " << cumulative << "\n";
      }
    }
    out << prom << "_bucket{le=\"+Inf\"} " << data.count << "\n"
        << prom << "_sum " << data.sum << "\n"
        << prom << "_count " << data.count << "\n";
  }
  return out.str();
}

}  // namespace obs
}  // namespace cardir
