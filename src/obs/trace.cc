#include "obs/trace.h"

#include <array>
#include <atomic>
#include <chrono>
#include <mutex>
#include <ostream>

#include "obs/metrics.h"

namespace cardir {
namespace obs {

#ifdef CARDIR_OBS_ENABLED

namespace {

// Per-thread event sink. Buffers are leaked on thread exit so the collector
// can still read events recorded by threads that have since joined; each
// buffer carries its own mutex, which is uncontended on the recording path
// (only the owning thread appends) and taken by the collector on dumps.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  uint32_t tid = 0;
};

struct Collector {
  std::mutex mutex;
  std::vector<ThreadBuffer*> buffers;
};

Collector& GlobalCollector() {
  static Collector* collector = new Collector();
  return *collector;
}

std::atomic<bool> g_tracing{false};

std::chrono::steady_clock::time_point ClockEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

ThreadBuffer& LocalBuffer() {
  thread_local ThreadBuffer* buffer = [] {
    auto* fresh = new ThreadBuffer();
    fresh->tid = static_cast<uint32_t>(ThisThreadIndex());
    Collector& collector = GlobalCollector();
    std::lock_guard<std::mutex> lock(collector.mutex);
    collector.buffers.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

// Nesting depth of open spans on this thread; owner-thread-only.
thread_local uint32_t t_span_depth = 0;

// --- Shadow span stacks ----------------------------------------------------

// One per thread. The owning thread pushes/pops; the profiler's sampling
// thread reads frames and depth concurrently, so every field is atomic
// (relaxed/acquire-release — no TSan suppressions). Fixed depth: spans
// nest engine > phase > chunk > pair, nowhere near 64; deeper frames are
// silently not recorded (the depth counter still tracks them so pops
// balance).
struct SpanShadowStack {
  static constexpr uint32_t kMaxDepth = 64;
  std::array<std::atomic<const char*>, kMaxDepth> frames{};
  std::atomic<uint32_t> depth{0};
  uint32_t tid = 0;
};

struct StackDirectory {
  std::mutex mutex;
  std::vector<SpanShadowStack*> stacks;
};

StackDirectory& GlobalStackDirectory() {
  static StackDirectory* directory = new StackDirectory();
  return *directory;
}

std::atomic<bool> g_span_stacks{false};

SpanShadowStack& LocalShadowStack() {
  thread_local SpanShadowStack* stack = [] {
    auto* fresh = new SpanShadowStack();  // Leaked: samples may race exit.
    fresh->tid = static_cast<uint32_t>(ThisThreadIndex());
    StackDirectory& directory = GlobalStackDirectory();
    std::lock_guard<std::mutex> lock(directory.mutex);
    directory.stacks.push_back(fresh);
    return fresh;
  }();
  return *stack;
}

void PushShadowFrame(const char* name) {
  SpanShadowStack& stack = LocalShadowStack();
  const uint32_t d = stack.depth.load(std::memory_order_relaxed);
  if (d < SpanShadowStack::kMaxDepth) {
    stack.frames[d].store(name, std::memory_order_relaxed);
  }
  // Release: a sampler that observes the new depth also observes the frame.
  stack.depth.store(d + 1, std::memory_order_release);
}

void PopShadowFrame() {
  SpanShadowStack& stack = LocalShadowStack();
  const uint32_t d = stack.depth.load(std::memory_order_relaxed);
  if (d > 0) stack.depth.store(d - 1, std::memory_order_release);
}

void EscapeJson(const char* text, std::ostream& out) {
  for (const char* p = text; *p != '\0'; ++p) {
    switch (*p) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << *p;
    }
  }
}

}  // namespace

uint64_t TraceNowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - ClockEpoch())
          .count());
}

void StartTracing() {
  Collector& collector = GlobalCollector();
  std::lock_guard<std::mutex> lock(collector.mutex);
  for (ThreadBuffer* buffer : collector.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
  g_tracing.store(true, std::memory_order_release);
}

void StopTracing() { g_tracing.store(false, std::memory_order_release); }

bool TracingEnabled() { return g_tracing.load(std::memory_order_acquire); }

std::vector<TraceEvent> CollectTraceEvents() {
  Collector& collector = GlobalCollector();
  std::lock_guard<std::mutex> lock(collector.mutex);
  std::vector<TraceEvent> all;
  for (ThreadBuffer* buffer : collector.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    all.insert(all.end(), buffer->events.begin(), buffer->events.end());
  }
  return all;
}

void WriteChromeTrace(std::ostream& out) {
  const std::vector<TraceEvent> events = CollectTraceEvents();
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out << ",";
    first = false;
    out << "\n  {\"name\": \"";
    EscapeJson(event.name, out);
    out << "\", \"cat\": \"cardir\", \"ph\": \"X\", \"ts\": " << event.start_us
        << ", \"dur\": " << event.duration_us
        << ", \"pid\": 1, \"tid\": " << event.tid
        << ", \"args\": {\"depth\": " << event.depth << "}}";
  }
  out << "\n]}\n";
}

void EnableSpanStacks(bool enabled) {
  g_span_stacks.store(enabled, std::memory_order_release);
}

bool SpanStacksEnabled() {
  return g_span_stacks.load(std::memory_order_relaxed);
}

std::vector<SpanStackSample> SampleSpanStacks() {
  StackDirectory& directory = GlobalStackDirectory();
  std::lock_guard<std::mutex> lock(directory.mutex);
  std::vector<SpanStackSample> samples;
  for (const SpanShadowStack* stack : directory.stacks) {
    // Acquire pairs with the push's release: frames below the observed
    // depth are fully written. A pop racing the read just shortens the
    // sample by one frame.
    uint32_t d = stack->depth.load(std::memory_order_acquire);
    if (d == 0) continue;
    if (d > SpanShadowStack::kMaxDepth) d = SpanShadowStack::kMaxDepth;
    SpanStackSample sample;
    sample.tid = stack->tid;
    sample.frames.reserve(d);
    for (uint32_t i = 0; i < d; ++i) {
      const char* frame = stack->frames[i].load(std::memory_order_relaxed);
      if (frame != nullptr) sample.frames.push_back(frame);
    }
    if (!sample.frames.empty()) samples.push_back(std::move(sample));
  }
  return samples;
}

TraceSpan::TraceSpan(const char* name) : name_(name) {
  const bool tracing = TracingEnabled();
  const bool stacks = SpanStacksEnabled();
  if (!tracing && !stacks) return;
  if (stacks) {
    PushShadowFrame(name_);
    pushed_ = true;
  }
  if (!tracing) return;
  active_ = true;
  ++t_span_depth;
  start_us_ = TraceNowMicros();
}

TraceSpan::~TraceSpan() {
  if (pushed_) PopShadowFrame();
  if (!active_) return;
  const uint32_t depth = --t_span_depth;
  if (!TracingEnabled()) return;  // Stopped mid-span: drop the event.
  const uint64_t end_us = TraceNowMicros();
  TraceEvent event;
  event.name = name_;
  event.start_us = start_us_;
  event.duration_us = end_us - start_us_;
  event.depth = depth;
  ThreadBuffer& buffer = LocalBuffer();
  event.tid = buffer.tid;
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(event);
}

#else  // !CARDIR_OBS_ENABLED

void WriteChromeTrace(std::ostream& out) {
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n]}\n";
}

#endif  // CARDIR_OBS_ENABLED

}  // namespace obs
}  // namespace cardir
