// Scoped trace spans with Chrome trace_event JSON export.
//
//   CARDIR_TRACE_SPAN("prefilter");        // RAII: records scope duration
//   ...
//   StartTracing();
//   engine.Run();
//   StopTracing();
//   WriteChromeTrace(stream);              // load in chrome://tracing/Perfetto
//
// Recording is opt-in at runtime: when tracing is stopped (the default) a
// span costs one relaxed atomic load and a branch. When recording, each
// span appends one event to a per-thread buffer under that buffer's own
// mutex — uncontended in steady state, so the hot path never blocks on a
// global lock, and the collector can safely walk all buffers while worker
// threads are still alive.
//
// The whole facility compiles out under -DCARDIR_OBS=OFF: the macro expands
// to nothing and the functions become inline no-ops.

#ifndef CARDIR_OBS_TRACE_H_
#define CARDIR_OBS_TRACE_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace cardir {
namespace obs {

/// One completed span ("X" phase in trace_event terms). Times are
/// microseconds on the process-wide steady clock; `tid` is the dense
/// ThisThreadIndex of the recording thread; `depth` counts enclosing spans
/// on the same thread (0 = outermost), so tests can assert nesting without
/// reconstructing it from timestamps.
struct TraceEvent {
  const char* name = nullptr;
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  uint32_t tid = 0;
  uint32_t depth = 0;
};

#ifdef CARDIR_OBS_ENABLED

/// Starts recording spans (clears previously collected events).
void StartTracing();

/// Stops recording. Spans still open keep their start time and are recorded
/// on destruction only if tracing is running again by then.
void StopTracing();

/// True while spans are being recorded.
bool TracingEnabled();

/// All events recorded since StartTracing, in per-thread order (stable
/// across calls). Safe to call while other threads record.
std::vector<TraceEvent> CollectTraceEvents();

/// Writes the collected events as Chrome trace_event JSON (the
/// {"traceEvents": [...]} object form).
void WriteChromeTrace(std::ostream& out);

/// Microseconds since the tracer's clock epoch (process start, roughly).
uint64_t TraceNowMicros();

// --- Shadow span stacks (sampling-profiler support) ------------------------
//
// When enabled, every TraceSpan also pushes its label onto a per-thread
// shadow stack that the profiler's sampling thread reads concurrently.
// The stack is all-atomic (frame pointers and depth), so cross-thread
// sampling is TSan-clean; labels are immortal string literals, so a
// sampled frame pointer is always safe to dereference even when the stack
// mutated mid-sample — the worst case is one misattributed sample, which
// a statistical profile tolerates.

/// A sampling-thread view of one thread's open spans, outermost first.
struct SpanStackSample {
  uint32_t tid = 0;
  std::vector<const char*> frames;
};

/// Turns shadow-stack bookkeeping on/off (the profiler holds it on while
/// sampling). Off costs one relaxed load per span.
void EnableSpanStacks(bool enabled);
bool SpanStacksEnabled();

/// Snapshots every registered thread's shadow stack. Threads with no open
/// span are omitted. Safe to call concurrently with span push/pop.
std::vector<SpanStackSample> SampleSpanStacks();

class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  uint64_t start_us_ = 0;
  bool active_ = false;   // Recording a Chrome trace event.
  bool pushed_ = false;   // Holding a shadow-stack frame.
};

#define CARDIR_TRACE_SPAN_CONCAT2(a, b) a##b
#define CARDIR_TRACE_SPAN_CONCAT(a, b) CARDIR_TRACE_SPAN_CONCAT2(a, b)
#define CARDIR_TRACE_SPAN(name)                    \
  ::cardir::obs::TraceSpan CARDIR_TRACE_SPAN_CONCAT(\
      cardir_trace_span_, __COUNTER__)(name)

#else  // !CARDIR_OBS_ENABLED

struct SpanStackSample {
  uint32_t tid = 0;
  std::vector<const char*> frames;
};

inline void StartTracing() {}
inline void StopTracing() {}
inline bool TracingEnabled() { return false; }
inline std::vector<TraceEvent> CollectTraceEvents() { return {}; }
void WriteChromeTrace(std::ostream& out);  // Writes an empty trace.
inline uint64_t TraceNowMicros() { return 0; }
inline void EnableSpanStacks(bool) {}
inline bool SpanStacksEnabled() { return false; }
inline std::vector<SpanStackSample> SampleSpanStacks() { return {}; }

#define CARDIR_TRACE_SPAN(name) \
  do {                          \
    (void)sizeof(name);         \
  } while (false)

#endif  // CARDIR_OBS_ENABLED

}  // namespace obs
}  // namespace cardir

#endif  // CARDIR_OBS_TRACE_H_
