// Sampling wall-clock profiler over the trace-span shadow stacks.
//
// A dedicated timer thread wakes at a configurable rate and snapshots
// every worker thread's stack of open CARDIR_TRACE_SPAN /
// CARDIR_PROFILE_FRAME labels (obs/trace.h shadow stacks), aggregating
// sample counts per unique stack. The result answers "where inside
// Compute-CDR does the wall time actually go" without recompiling or
// per-call timing overhead:
//   - worker cost per sample: zero (the sampler reads atomics remotely);
//     the only hot-path cost is the span push/pop while profiling is on.
//   - output: the collapsed-stack format every flamegraph tool consumes
//     ("frame;frame;frame <count>" lines), via `cardirect --profile=FILE`.
//
// Only one profiling session runs at a time; Start while running returns
// FailedPrecondition. Compiles to no-ops under -DCARDIR_OBS=OFF.

#ifndef CARDIR_OBS_PROFILE_H_
#define CARDIR_OBS_PROFILE_H_

#include <cstdint>
#include <string>

#include "obs/trace.h"
#include "util/status.h"

namespace cardir {
namespace obs {

struct ProfileOptions {
  /// Samples per second. Odd default on purpose: a prime rate avoids
  /// lockstep with millisecond-periodic work. 97 Hz keeps the sampler's
  /// own CPU draw inside the 2% overhead budget even when every core is
  /// running a worker; raise via --profile-hz for short runs that need
  /// more samples.
  double hz = 97.0;
};

/// Sample counts aggregated over one profiling session.
struct ProfileStats {
  uint64_t samples_taken = 0;    // Timer wakeups.
  uint64_t samples_with_work = 0;  // Wakeups that saw >=1 open span.
};

#ifdef CARDIR_OBS_ENABLED

/// Starts the sampling thread and enables span shadow stacks. Clears any
/// previously collected profile.
Status StartProfiling(const ProfileOptions& options = {});

/// True while the sampler runs.
bool ProfilingActive();

/// Stops and joins the sampling thread (no-op when not running). The
/// collected profile stays readable until the next StartProfiling.
void StopProfiling();

/// Collapsed-stack ("folded") lines: "outer;inner <count>\n", sorted
/// lexicographically for deterministic output. Feed to flamegraph.pl /
/// speedscope / inferno as-is.
std::string FormatCollapsedStacks();

/// Per-label inclusive (label anywhere on the sampled stack) and self
/// (label leaf-most) sample counts, one "label inclusive self" line per
/// label, sorted by label — the quick textual answer when no flamegraph
/// tool is at hand.
std::string FormatProfileSummary();

/// Sampler bookkeeping for the session (valid after StopProfiling).
ProfileStats GetProfileStats();

/// Writes FormatCollapsedStacks() to `path`.
Status WriteCollapsedProfile(const std::string& path);

#else  // !CARDIR_OBS_ENABLED

inline Status StartProfiling(const ProfileOptions& = {}) {
  return Status::Unimplemented("profiler disabled (CARDIR_OBS=OFF)");
}
inline bool ProfilingActive() { return false; }
inline void StopProfiling() {}
inline std::string FormatCollapsedStacks() { return std::string(); }
inline std::string FormatProfileSummary() { return std::string(); }
inline ProfileStats GetProfileStats() { return ProfileStats(); }
inline Status WriteCollapsedProfile(const std::string&) {
  return Status::Unimplemented("profiler disabled (CARDIR_OBS=OFF)");
}

#endif  // CARDIR_OBS_ENABLED

}  // namespace obs

// A profiling frame on the hot path: same RAII span as CARDIR_TRACE_SPAN
// (and it shows up in Chrome traces too), but named separately so grep
// finds the sites placed for profile granularity rather than tracing.
#ifdef CARDIR_OBS_ENABLED
#define CARDIR_PROFILE_FRAME(name) CARDIR_TRACE_SPAN(name)
#else
#define CARDIR_PROFILE_FRAME(name) \
  do {                             \
    (void)sizeof(name);            \
  } while (false)
#endif  // CARDIR_OBS_ENABLED

}  // namespace cardir

#endif  // CARDIR_OBS_PROFILE_H_
