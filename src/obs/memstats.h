// Memory telemetry: live/peak byte gauges for the structures that own
// real memory (PairMatrix, EdgeSoA lanes, worker scratch, the R-tree, XML
// buffers), plus a process-wide high-water total and Linux RSS sampling.
//
// Each instrumented owner charges a named arena. An arena is backed by two
// registry gauges —
//   mem.<arena>.live_bytes   currently allocated
//   mem.<arena>.peak_bytes   high-water since process start / last reset
// — plus the process-wide pair mem.total.live_bytes / mem.total.peak_bytes,
// so the existing table/JSON/Prometheus exporters and the bench ledger pick
// the numbers up with no new export surface.
//
// Cost model: an alloc/free is one relaxed fetch_add on the arena's live
// gauge, one on the total, and a CAS-max on each peak — charged at arena
// granularity (one call per container (re)allocation, never per element).
// Under -DCARDIR_OBS=OFF the macros keep their arguments parsed but
// evaluate nothing.

#ifndef CARDIR_OBS_MEMSTATS_H_
#define CARDIR_OBS_MEMSTATS_H_

#include <cstddef>
#include <cstdint>

#include "obs/metrics.h"

namespace cardir {
namespace obs {

#ifdef CARDIR_OBS_ENABLED

/// One named allocation domain. Get() is mutex-guarded get-or-create
/// (call sites cache the reference via the CARDIR_MEMSTAT_* macros);
/// returned references live for the process lifetime.
class MemArena {
 public:
  static MemArena& Get(const char* name);

  void Alloc(size_t bytes);
  void Free(size_t bytes);

  int64_t LiveBytes() const { return live_.Value(); }
  int64_t PeakBytes() const { return peak_.Value(); }

 private:
  friend void ResetMemPeaks();

  MemArena(Gauge& live, Gauge& peak) : live_(live), peak_(peak) {}

  Gauge& live_;
  Gauge& peak_;
};

/// Resets every arena's peak gauge (and the process total's) to its
/// current live value, so a benchmark window measures its own high-water
/// rather than inheriting an earlier run's.
void ResetMemPeaks();

/// Resident-set size from /proc/self/statm in bytes; -1 when unavailable.
int64_t ReadRssBytes();

/// Samples RSS into mem.process.rss_bytes and raises
/// mem.process.rss_peak_bytes. No-op when /proc is unavailable.
void SampleProcessMemory();

#else  // !CARDIR_OBS_ENABLED

inline void ResetMemPeaks() {}
inline int64_t ReadRssBytes() { return -1; }
inline void SampleProcessMemory() {}

#endif  // CARDIR_OBS_ENABLED

}  // namespace obs

// Instrumentation macros. `arena` must be a string literal; `bytes` must be
// side-effect free (tools/analyzer enforces this).
#ifdef CARDIR_OBS_ENABLED

#define CARDIR_MEMSTAT_ALLOC(arena, bytes)                      \
  do {                                                          \
    static ::cardir::obs::MemArena& cardir_memstat_arena__ =    \
        ::cardir::obs::MemArena::Get(arena);                    \
    cardir_memstat_arena__.Alloc(static_cast<size_t>(bytes));   \
  } while (false)

#define CARDIR_MEMSTAT_FREE(arena, bytes)                       \
  do {                                                          \
    static ::cardir::obs::MemArena& cardir_memstat_arena__ =    \
        ::cardir::obs::MemArena::Get(arena);                    \
    cardir_memstat_arena__.Free(static_cast<size_t>(bytes));    \
  } while (false)

#else

#define CARDIR_MEMSTAT_ALLOC(arena, bytes) \
  do {                                     \
    (void)sizeof(arena);                   \
    (void)sizeof(bytes);                   \
  } while (false)
#define CARDIR_MEMSTAT_FREE(arena, bytes) \
  do {                                    \
    (void)sizeof(arena);                  \
    (void)sizeof(bytes);                  \
  } while (false)

#endif  // CARDIR_OBS_ENABLED

}  // namespace cardir

#endif  // CARDIR_OBS_MEMSTATS_H_
