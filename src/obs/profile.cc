#include "obs/profile.h"

#ifdef CARDIR_OBS_ENABLED

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

namespace cardir {
namespace obs {
namespace {

// Session state. One sampler at a time; the mutex guards start/stop and
// the aggregation maps (the sampler takes it per wakeup — at <=~1 kHz this
// is nowhere near contention).
struct ProfilerState {
  std::mutex mutex;
  std::condition_variable wake;
  bool running = false;
  bool stop_requested = false;
  std::thread sampler;
  // Key: "outer;inner;..." folded stack -> samples attributed.
  std::map<std::string, uint64_t> folded;
  ProfileStats stats;
};

ProfilerState& State() {
  static ProfilerState* state = new ProfilerState();
  return *state;
}

void SamplerLoop(double hz) {
  ProfilerState& state = State();
  const auto period = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(std::chrono::duration<double>(
      1.0 / (hz > 0.0 ? hz : 1.0)));
  auto next = std::chrono::steady_clock::now() + period;
  std::unique_lock<std::mutex> lock(state.mutex);
  while (!state.stop_requested) {
    // Sleep with the lock released; wake early on stop.
    if (state.wake.wait_until(lock, next,
                              [&state] { return state.stop_requested; })) {
      break;
    }
    next += period;
    lock.unlock();
    const std::vector<SpanStackSample> samples = SampleSpanStacks();
    lock.lock();
    ++state.stats.samples_taken;
    if (!samples.empty()) ++state.stats.samples_with_work;
    for (const SpanStackSample& sample : samples) {
      std::string key;
      for (const char* frame : sample.frames) {
        if (!key.empty()) key += ';';
        key += frame;
      }
      ++state.folded[key];
    }
  }
}

}  // namespace

Status StartProfiling(const ProfileOptions& options) {
  if (!(options.hz > 0.0) || options.hz > 100000.0) {
    return Status::InvalidArgument("profile rate must be in (0, 100000] Hz");
  }
  ProfilerState& state = State();
  std::unique_lock<std::mutex> lock(state.mutex);
  if (state.running) {
    return Status::FailedPrecondition("profiler already running");
  }
  state.folded.clear();
  state.stats = ProfileStats();
  state.stop_requested = false;
  state.running = true;
  EnableSpanStacks(true);
  state.sampler = std::thread(SamplerLoop, options.hz);
  return Status::Ok();
}

bool ProfilingActive() {
  ProfilerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.running;
}

void StopProfiling() {
  ProfilerState& state = State();
  std::thread joinable;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    if (!state.running) return;
    state.stop_requested = true;
    state.wake.notify_all();
    joinable = std::move(state.sampler);
  }
  joinable.join();
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    state.running = false;
  }
  EnableSpanStacks(false);
}

std::string FormatCollapsedStacks() {
  ProfilerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  std::ostringstream out;
  for (const auto& [stack, count] : state.folded) {
    out << stack << ' ' << count << '\n';
  }
  return out.str();
}

std::string FormatProfileSummary() {
  ProfilerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  // inclusive: label appears anywhere on the stack (counted once even if
  // recursive); self: label is leaf-most.
  std::map<std::string, std::pair<uint64_t, uint64_t>> per_label;
  for (const auto& [stack, count] : state.folded) {
    std::vector<std::string> frames;
    size_t begin = 0;
    while (begin <= stack.size()) {
      const size_t sep = stack.find(';', begin);
      const size_t end = sep == std::string::npos ? stack.size() : sep;
      frames.push_back(stack.substr(begin, end - begin));
      if (sep == std::string::npos) break;
      begin = sep + 1;
    }
    std::vector<std::string> seen;
    for (const std::string& frame : frames) {
      if (std::find(seen.begin(), seen.end(), frame) == seen.end()) {
        seen.push_back(frame);
        per_label[frame].first += count;
      }
    }
    if (!frames.empty()) per_label[frames.back()].second += count;
  }
  std::ostringstream out;
  for (const auto& [label, counts] : per_label) {
    out << label << " inclusive=" << counts.first << " self=" << counts.second
        << '\n';
  }
  return out.str();
}

ProfileStats GetProfileStats() {
  ProfilerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.stats;
}

Status WriteCollapsedProfile(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open profile output: " + path);
  }
  out << FormatCollapsedStacks();
  out.close();
  if (!out) {
    return Status::IoError("short write to profile output: " + path);
  }
  return Status::Ok();
}

}  // namespace obs
}  // namespace cardir

#endif  // CARDIR_OBS_ENABLED
