#include "obs/memstats.h"

#ifdef CARDIR_OBS_ENABLED

#include <unistd.h>

#include <cstdio>
#include <map>
#include <mutex>
#include <string>

namespace cardir {
namespace obs {
namespace {

Gauge& TotalLive() {
  static Gauge& gauge =
      MetricsRegistry::Global().GetGauge("mem.total.live_bytes");
  return gauge;
}

Gauge& TotalPeak() {
  static Gauge& gauge =
      MetricsRegistry::Global().GetGauge("mem.total.peak_bytes");
  return gauge;
}

// Arena directory, for ResetMemPeaks. Guarded by its own mutex; only the
// cold get-or-create and reset paths take it.
struct ArenaDirectory {
  std::mutex mutex;
  std::map<std::string, MemArena*> arenas;
};

ArenaDirectory& Directory() {
  static ArenaDirectory* directory = new ArenaDirectory();
  return *directory;
}

}  // namespace

MemArena& MemArena::Get(const char* name) {
  ArenaDirectory& directory = Directory();
  std::lock_guard<std::mutex> lock(directory.mutex);
  MemArena*& slot = directory.arenas[name];
  if (slot == nullptr) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    const std::string prefix = std::string("mem.") + name;
    slot = new MemArena(registry.GetGauge(prefix + ".live_bytes"),
                        registry.GetGauge(prefix + ".peak_bytes"));
  }
  return *slot;
}

void MemArena::Alloc(size_t bytes) {
  const int64_t delta = static_cast<int64_t>(bytes);
  peak_.UpdateMax(live_.Add(delta));
  TotalPeak().UpdateMax(TotalLive().Add(delta));
}

void MemArena::Free(size_t bytes) {
  const int64_t delta = static_cast<int64_t>(bytes);
  live_.Add(-delta);
  TotalLive().Add(-delta);
}

void ResetMemPeaks() {
  ArenaDirectory& directory = Directory();
  std::lock_guard<std::mutex> lock(directory.mutex);
  for (const auto& [name, arena] : directory.arenas) {
    (void)name;
    // Racy against a concurrent Alloc only in the benign direction: the
    // peak can momentarily read below a just-raised live, and the next
    // UpdateMax restores it.
    arena->peak_.Set(arena->live_.Value());
  }
  TotalPeak().Set(TotalLive().Value());
}

int64_t ReadRssBytes() {
  FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) return -1;
  long long size_pages = 0;
  long long resident_pages = 0;
  const int fields = std::fscanf(statm, "%lld %lld", &size_pages,
                                 &resident_pages);
  std::fclose(statm);
  if (fields != 2) return -1;
  const long page = ::sysconf(_SC_PAGESIZE);
  if (page <= 0) return -1;
  return static_cast<int64_t>(resident_pages) * static_cast<int64_t>(page);
}

void SampleProcessMemory() {
  const int64_t rss = ReadRssBytes();
  if (rss < 0) return;
  MetricsRegistry& registry = MetricsRegistry::Global();
  static Gauge& rss_gauge = registry.GetGauge("mem.process.rss_bytes");
  static Gauge& rss_peak = registry.GetGauge("mem.process.rss_peak_bytes");
  rss_gauge.Set(rss);
  rss_peak.UpdateMax(rss);
}

}  // namespace obs
}  // namespace cardir

#endif  // CARDIR_OBS_ENABLED
