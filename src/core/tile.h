// The nine tiles induced by a reference region's minimum bounding box
// (paper §2, Fig. 1a): the mbb itself (B) and the eight cardinal areas.
//
// Tiles are *closed*: each tile includes the parts of the mbb lines that
// bound it, so neighbouring tiles overlap on those lines. The union of the
// nine tiles is the whole plane.

#ifndef CARDIR_CORE_TILE_H_
#define CARDIR_CORE_TILE_H_

#include <array>
#include <ostream>
#include <string_view>

#include "geometry/box.h"
#include "geometry/point.h"

namespace cardir {

/// The nine tiles, in the paper's canonical writing order (§2):
/// B, S, SW, W, NW, N, NE, E, SE.
enum class Tile : int {
  kB = 0,
  kS = 1,
  kSW = 2,
  kW = 3,
  kNW = 4,
  kN = 5,
  kNE = 6,
  kE = 7,
  kSE = 8,
};

inline constexpr int kNumTiles = 9;

/// All tiles in canonical order.
inline constexpr std::array<Tile, kNumTiles> kAllTiles = {
    Tile::kB,  Tile::kS, Tile::kSW, Tile::kW, Tile::kNW,
    Tile::kN,  Tile::kNE, Tile::kE, Tile::kSE};

/// Horizontal band of a tile relative to the mbb.
enum class TileColumn : int { kWest = 0, kMiddle = 1, kEast = 2 };

/// Vertical band of a tile relative to the mbb.
enum class TileRow : int { kSouth = 0, kMiddle = 1, kNorth = 2 };

/// Canonical short name ("B", "S", "SW", ...).
std::string_view TileName(Tile tile);

/// Parses a canonical tile name; returns false on failure.
bool ParseTile(std::string_view name, Tile* tile);

/// Column (west/middle/east) of the tile. Constexpr so that the lookup
/// tables derived from the tile grid (engine/interval_kernel, core/edge_soa)
/// can be built and proven against TileAt at compile time; an out-of-range
/// enum value falls through to the middle column (callers pass enumerators).
constexpr TileColumn ColumnOf(Tile tile) {
  switch (tile) {
    case Tile::kSW:
    case Tile::kW:
    case Tile::kNW:
      return TileColumn::kWest;
    case Tile::kS:
    case Tile::kB:
    case Tile::kN:
      return TileColumn::kMiddle;
    case Tile::kSE:
    case Tile::kE:
    case Tile::kNE:
      return TileColumn::kEast;
  }
  return TileColumn::kMiddle;
}

/// Row (south/middle/north) of the tile.
constexpr TileRow RowOf(Tile tile) {
  switch (tile) {
    case Tile::kSW:
    case Tile::kS:
    case Tile::kSE:
      return TileRow::kSouth;
    case Tile::kW:
    case Tile::kB:
    case Tile::kE:
      return TileRow::kMiddle;
    case Tile::kNW:
    case Tile::kN:
    case Tile::kNE:
      return TileRow::kNorth;
  }
  return TileRow::kMiddle;
}

/// Tile at the given column/row (e.g. kWest+kNorth = NW; kMiddle+kMiddle = B).
constexpr Tile TileAt(TileColumn column, TileRow row) {
  constexpr Tile kGrid[3][3] = {
      // rows: south, middle, north; columns: west, middle, east.
      {Tile::kSW, Tile::kS, Tile::kSE},
      {Tile::kW, Tile::kB, Tile::kE},
      {Tile::kNW, Tile::kN, Tile::kNE},
  };
  return kGrid[static_cast<int>(row)][static_cast<int>(column)];
}

namespace tile_internal {
// Compile-time proof that TileAt and ColumnOf/RowOf are mutually inverse
// over all nine tiles: the grid cannot drift from the per-tile band
// accessors without breaking the build.
constexpr bool TileGridRoundTrips() {
  for (Tile tile : kAllTiles) {
    if (TileAt(ColumnOf(tile), RowOf(tile)) != tile) return false;
  }
  for (int column = 0; column < 3; ++column) {
    for (int row = 0; row < 3; ++row) {
      const Tile tile = TileAt(static_cast<TileColumn>(column),
                               static_cast<TileRow>(row));
      if (ColumnOf(tile) != static_cast<TileColumn>(column)) return false;
      if (RowOf(tile) != static_cast<TileRow>(row)) return false;
    }
  }
  return true;
}
static_assert(TileGridRoundTrips(),
              "core/tile.h: TileAt grid disagrees with ColumnOf/RowOf");
}  // namespace tile_internal

/// Classifies a point into a tile of `mbb`. Points on an mbb line belong to
/// several closed tiles; this function resolves ties toward the *middle*
/// column/row (i.e. a point on x = min_x is reported in the middle column).
/// Callers that need interior-side resolution use the edge splitter instead.
Tile ClassifyPoint(const Point& p, const Box& mbb);

std::ostream& operator<<(std::ostream& os, Tile tile);

}  // namespace cardir

#endif  // CARDIR_CORE_TILE_H_
