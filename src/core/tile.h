// The nine tiles induced by a reference region's minimum bounding box
// (paper §2, Fig. 1a): the mbb itself (B) and the eight cardinal areas.
//
// Tiles are *closed*: each tile includes the parts of the mbb lines that
// bound it, so neighbouring tiles overlap on those lines. The union of the
// nine tiles is the whole plane.

#ifndef CARDIR_CORE_TILE_H_
#define CARDIR_CORE_TILE_H_

#include <array>
#include <ostream>
#include <string_view>

#include "geometry/box.h"
#include "geometry/point.h"

namespace cardir {

/// The nine tiles, in the paper's canonical writing order (§2):
/// B, S, SW, W, NW, N, NE, E, SE.
enum class Tile : int {
  kB = 0,
  kS = 1,
  kSW = 2,
  kW = 3,
  kNW = 4,
  kN = 5,
  kNE = 6,
  kE = 7,
  kSE = 8,
};

inline constexpr int kNumTiles = 9;

/// All tiles in canonical order.
inline constexpr std::array<Tile, kNumTiles> kAllTiles = {
    Tile::kB,  Tile::kS, Tile::kSW, Tile::kW, Tile::kNW,
    Tile::kN,  Tile::kNE, Tile::kE, Tile::kSE};

/// Horizontal band of a tile relative to the mbb.
enum class TileColumn : int { kWest = 0, kMiddle = 1, kEast = 2 };

/// Vertical band of a tile relative to the mbb.
enum class TileRow : int { kSouth = 0, kMiddle = 1, kNorth = 2 };

/// Canonical short name ("B", "S", "SW", ...).
std::string_view TileName(Tile tile);

/// Parses a canonical tile name; returns false on failure.
bool ParseTile(std::string_view name, Tile* tile);

/// Column (west/middle/east) of the tile.
TileColumn ColumnOf(Tile tile);

/// Row (south/middle/north) of the tile.
TileRow RowOf(Tile tile);

/// Tile at the given column/row (e.g. kWest+kNorth = NW; kMiddle+kMiddle = B).
Tile TileAt(TileColumn column, TileRow row);

/// Classifies a point into a tile of `mbb`. Points on an mbb line belong to
/// several closed tiles; this function resolves ties toward the *middle*
/// column/row (i.e. a point on x = min_x is reported in the middle column).
/// Callers that need interior-side resolution use the edge splitter instead.
Tile ClassifyPoint(const Point& p, const Box& mbb);

std::ostream& operator<<(std::ostream& os, Tile tile);

}  // namespace cardir

#endif  // CARDIR_CORE_TILE_H_
