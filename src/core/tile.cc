#include "core/tile.h"

#include "util/logging.h"

namespace cardir {

std::string_view TileName(Tile tile) {
  switch (tile) {
    case Tile::kB: return "B";
    case Tile::kS: return "S";
    case Tile::kSW: return "SW";
    case Tile::kW: return "W";
    case Tile::kNW: return "NW";
    case Tile::kN: return "N";
    case Tile::kNE: return "NE";
    case Tile::kE: return "E";
    case Tile::kSE: return "SE";
  }
  return "?";
}

bool ParseTile(std::string_view name, Tile* tile) {
  for (Tile t : kAllTiles) {
    if (TileName(t) == name) {
      *tile = t;
      return true;
    }
  }
  return false;
}

Tile ClassifyPoint(const Point& p, const Box& mbb) {
  CARDIR_DCHECK(!mbb.IsEmpty());
  TileColumn column = TileColumn::kMiddle;
  if (p.x < mbb.min_x()) {
    column = TileColumn::kWest;
  } else if (p.x > mbb.max_x()) {
    column = TileColumn::kEast;
  }
  TileRow row = TileRow::kMiddle;
  if (p.y < mbb.min_y()) {
    row = TileRow::kSouth;
  } else if (p.y > mbb.max_y()) {
    row = TileRow::kNorth;
  }
  return TileAt(column, row);
}

std::ostream& operator<<(std::ostream& os, Tile tile) {
  return os << TileName(tile);
}

}  // namespace cardir
