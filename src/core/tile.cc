#include "core/tile.h"

#include "util/logging.h"

namespace cardir {

std::string_view TileName(Tile tile) {
  switch (tile) {
    case Tile::kB: return "B";
    case Tile::kS: return "S";
    case Tile::kSW: return "SW";
    case Tile::kW: return "W";
    case Tile::kNW: return "NW";
    case Tile::kN: return "N";
    case Tile::kNE: return "NE";
    case Tile::kE: return "E";
    case Tile::kSE: return "SE";
  }
  return "?";
}

bool ParseTile(std::string_view name, Tile* tile) {
  for (Tile t : kAllTiles) {
    if (TileName(t) == name) {
      *tile = t;
      return true;
    }
  }
  return false;
}

TileColumn ColumnOf(Tile tile) {
  switch (tile) {
    case Tile::kSW:
    case Tile::kW:
    case Tile::kNW:
      return TileColumn::kWest;
    case Tile::kS:
    case Tile::kB:
    case Tile::kN:
      return TileColumn::kMiddle;
    case Tile::kSE:
    case Tile::kE:
    case Tile::kNE:
      return TileColumn::kEast;
  }
  CARDIR_CHECK(false) << "bad tile";
  return TileColumn::kMiddle;
}

TileRow RowOf(Tile tile) {
  switch (tile) {
    case Tile::kSW:
    case Tile::kS:
    case Tile::kSE:
      return TileRow::kSouth;
    case Tile::kW:
    case Tile::kB:
    case Tile::kE:
      return TileRow::kMiddle;
    case Tile::kNW:
    case Tile::kN:
    case Tile::kNE:
      return TileRow::kNorth;
  }
  CARDIR_CHECK(false) << "bad tile";
  return TileRow::kMiddle;
}

Tile TileAt(TileColumn column, TileRow row) {
  static constexpr Tile kGrid[3][3] = {
      // rows: south, middle, north; columns: west, middle, east.
      {Tile::kSW, Tile::kS, Tile::kSE},
      {Tile::kW, Tile::kB, Tile::kE},
      {Tile::kNW, Tile::kN, Tile::kNE},
  };
  return kGrid[static_cast<int>(row)][static_cast<int>(column)];
}

Tile ClassifyPoint(const Point& p, const Box& mbb) {
  CARDIR_DCHECK(!mbb.IsEmpty());
  TileColumn column = TileColumn::kMiddle;
  if (p.x < mbb.min_x()) {
    column = TileColumn::kWest;
  } else if (p.x > mbb.max_x()) {
    column = TileColumn::kEast;
  }
  TileRow row = TileRow::kMiddle;
  if (p.y < mbb.min_y()) {
    row = TileRow::kSouth;
  } else if (p.y > mbb.max_y()) {
    row = TileRow::kNorth;
  }
  return TileAt(column, row);
}

std::ostream& operator<<(std::ostream& os, Tile tile) {
  return os << TileName(tile);
}

}  // namespace cardir
