// Cardinal direction relations with percentages (paper §2, after [5,6]).
//
// The quantitative relation between a primary region a and a reference
// region b is the 3×3 matrix whose (dir) entry is
//   100% · area(dir(b) ∩ a) / area(a),
// i.e. the percentage of a's area falling in each tile of b. Entries are
// non-negative and sum to 100.

#ifndef CARDIR_CORE_PERCENTAGE_MATRIX_H_
#define CARDIR_CORE_PERCENTAGE_MATRIX_H_

#include <array>
#include <ostream>
#include <string>

#include "core/cardinal_relation.h"
#include "core/tile.h"

namespace cardir {

/// The cardinal direction matrix with percentages.
class PercentageMatrix {
 public:
  /// All-zero matrix (not a valid final relation; used as accumulator).
  PercentageMatrix() { values_.fill(0.0); }

  /// Builds from raw (non-negative) per-tile areas, normalising to
  /// percentages of the total.
  static PercentageMatrix FromAreas(const std::array<double, kNumTiles>& areas);

  double at(Tile tile) const { return values_[static_cast<int>(tile)]; }
  void set(Tile tile, double percent) {
    values_[static_cast<int>(tile)] = percent;
  }

  /// Sum of all entries (≈100 for a valid matrix).
  double Total() const;

  /// The qualitative relation implied by the matrix: tiles whose percentage
  /// exceeds `threshold_percent` (default: strictly positive). The paper's
  /// Compute-CDR captures boundary-touching tiles of measure zero, so the
  /// qualitative relation can be a superset of `ToRelation(0)`.
  CardinalRelation ToRelation(double threshold_percent = 0.0) const;

  /// Pretty 3×3 rendering with "%" entries, rows north to south, like the
  /// matrices displayed in §2 of the paper.
  std::string ToString(int precision = 2) const;

  /// True when all entries match `other` within `tolerance` percentage
  /// points.
  bool ApproxEquals(const PercentageMatrix& other, double tolerance) const;

  friend bool operator==(const PercentageMatrix& a, const PercentageMatrix& b) {
    return a.values_ == b.values_;
  }

 private:
  std::array<double, kNumTiles> values_;
};

std::ostream& operator<<(std::ostream& os, const PercentageMatrix& matrix);

}  // namespace cardir

#endif  // CARDIR_CORE_PERCENTAGE_MATRIX_H_
