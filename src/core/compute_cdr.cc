#include "core/compute_cdr.h"

#include "core/edge_splitter.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace cardir {

void CdrMetricsDelta::FlushToRegistry() {
  CARDIR_METRIC_COUNT("core.cdr.runs", runs);
  CARDIR_METRIC_COUNT("core.edges.input", edges_input);
  CARDIR_METRIC_COUNT("core.edges.split", edges_split);
  CARDIR_METRIC_COUNT("core.pip_tests", pip_tests);
  *this = CdrMetricsDelta{};
}

CdrComputation ComputeCdrUnchecked(const Region& primary,
                                   const Region& reference,
                                   CdrMetricsDelta* metrics,
                                   CdrScratch* scratch) {
  return ComputeCdrUnchecked(primary, reference.BoundingBox(), metrics,
                             scratch);
}

CdrComputation ComputeCdrUnchecked(const Region& primary,
                                   const Box& reference_mbb,
                                   CdrMetricsDelta* metrics,
                                   CdrScratch* scratch) {
  const Box& mbb = reference_mbb;
  CARDIR_DCHECK(!mbb.IsEmpty());
  const Point center = mbb.Center();

  CdrComputation result;
  std::vector<ClassifiedEdge>& pieces = scratch->pieces;  // Reused across
                                                          // edges and calls.
  for (const Polygon& polygon : primary.polygons()) {
    const size_t n = polygon.size();
    result.input_edges += n;
    for (size_t i = 0; i < n; ++i) {
      pieces.clear();
      result.output_edges += static_cast<size_t>(
          SplitAndClassifyEdge(polygon.edge(i), mbb, &pieces));
      for (const ClassifiedEdge& piece : pieces) {
        result.relation.Add(piece.tile);
      }
    }
    // Fig. 5: "If the center of mbb(b) is in p Then R = tile-union(R, B)".
    // Catches polygons that contain the whole bounding box, whose boundary
    // never enters the B tile.
    if (!result.relation.Includes(Tile::kB)) {
      ++metrics->pip_tests;
      if (polygon.Contains(center)) result.relation.Add(Tile::kB);
    }
  }
  ++metrics->runs;
  metrics->edges_input += result.input_edges;
  metrics->edges_split += result.output_edges;
  return result;
}

CdrComputation ComputeCdrUnchecked(const Region& primary,
                                   const Region& reference,
                                   CdrMetricsDelta* metrics) {
  CdrScratch scratch;
  return ComputeCdrUnchecked(primary, reference, metrics, &scratch);
}

CdrComputation ComputeCdrUnchecked(const Region& primary,
                                   const Region& reference) {
  CdrMetricsDelta metrics;
  CdrComputation result = ComputeCdrUnchecked(primary, reference, &metrics);
  metrics.FlushToRegistry();
  return result;
}

Result<CdrComputation> ComputeCdrDetailed(const Region& primary,
                                          const Region& reference) {
  CARDIR_RETURN_IF_ERROR(primary.Validate());
  CARDIR_RETURN_IF_ERROR(reference.Validate());
  return ComputeCdrUnchecked(primary, reference);
}

Result<CardinalRelation> ComputeCdr(const Region& primary,
                                    const Region& reference) {
  CARDIR_ASSIGN_OR_RETURN(CdrComputation computation,
                          ComputeCdrDetailed(primary, reference));
  return computation.relation;
}

}  // namespace cardir
