#include "core/compute_cdr.h"

#include "core/edge_soa.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace cardir {

void CdrMetricsDelta::FlushToRegistry() {
  CARDIR_METRIC_COUNT("core.cdr.runs", runs);
  CARDIR_METRIC_COUNT("core.edges.input", edges_input);
  CARDIR_METRIC_COUNT("core.edges.split", edges_split);
  CARDIR_METRIC_COUNT("core.pip_tests", pip_tests);
  *this = CdrMetricsDelta{};
}

CdrComputation ComputeCdrUnchecked(const Region& primary,
                                   const Region& reference,
                                   CdrMetricsDelta* metrics,
                                   CdrScratch* scratch) {
  return ComputeCdrUnchecked(primary, reference.BoundingBox(), metrics,
                             scratch);
}

CdrComputation ComputeCdrUnchecked(const Region& primary,
                                   const Box& reference_mbb,
                                   CdrMetricsDelta* metrics,
                                   CdrScratch* scratch) {
  const Box& mbb = reference_mbb;
  CARDIR_DCHECK(!mbb.IsEmpty());
  // No profiler frame here: one Compute-CDR is ~100 ns, so even a cheap
  // frame push/pop per call shows up as tens of percent on the batch
  // workloads. Callers that loop over pairs open a chunk-granularity
  // "cdr.compute" frame instead (engine/batch_engine.cc).
  const Point center = mbb.Center();

  CdrComputation result;
  // SoA pipeline (core/edge_soa.h): per polygon, one fused pass splits
  // every edge into the reused lane scratch and classifies each piece
  // branch-free; the codes-present bitmap (≤9 set bits) then expands
  // through the 16-entry mask table — replacing the per-piece struct
  // buffer, the scalar classification cascade, and any second pass over
  // the pieces.
  const std::array<uint16_t, kNumSubEdgeCodes>& code_masks = SubEdgeCodeMasks();
  uint16_t mask = 0;
  constexpr uint16_t kMaskB = 1u << static_cast<int>(Tile::kB);
  // Precondition for the Fig. 5 point-in-polygon test below. A boundary
  // through the center would carry a B-coded piece, so in the B-unset
  // branch Contains(center) reduces to ray-crossing parity for a strictly
  // interior point: each of the four axis rays from the center must cross
  // the boundary, and (with B-coded pieces absent) the piece at each
  // crossing can only classify into the W, E, S or N tile respectively.
  // A bitmap missing any of the four therefore proves Contains(center)
  // false without the O(edges) walk. The open-tile argument needs a
  // non-degenerate mbb; zero-extent boxes keep the unconditional test.
  constexpr uint16_t kRayTiles =
      (1u << SubEdgeCode(TileColumn::kWest, TileRow::kMiddle)) |
      (1u << SubEdgeCode(TileColumn::kEast, TileRow::kMiddle)) |
      (1u << SubEdgeCode(TileColumn::kMiddle, TileRow::kSouth)) |
      (1u << SubEdgeCode(TileColumn::kMiddle, TileRow::kNorth));
  const bool proper_mbb =
      mbb.min_x() < mbb.max_x() && mbb.min_y() < mbb.max_y();
  for (const Polygon& polygon : primary.polygons()) {
    result.input_edges += polygon.size();
    // Store-free classification: the qualitative relation needs only the
    // codes-present bitmap, so no lanes are materialised (the scratch is
    // touched only on the tie/straddle fallback).
    const SplitClassifyResult split =
        SplitClassifyBitmapSoA(polygon, mbb, &scratch->soa);
    result.output_edges += split.pieces;
    unsigned bitmap = split.code_bitmap;
    while (bitmap != 0) {
      const int code = __builtin_ctz(bitmap);
      bitmap &= bitmap - 1;
      mask = static_cast<uint16_t>(mask | code_masks[code]);
    }
    // Fig. 5: "If the center of mbb(b) is in p Then R = tile-union(R, B)".
    // Catches polygons that contain the whole bounding box, whose boundary
    // never enters the B tile.
    if ((mask & kMaskB) == 0 &&
        (!proper_mbb || (split.code_bitmap & kRayTiles) == kRayTiles)) {
      ++metrics->pip_tests;
      if (polygon.Contains(center)) mask |= kMaskB;
    }
  }
  result.relation = CardinalRelation::FromMask(mask);
  ++metrics->runs;
  metrics->edges_input += result.input_edges;
  metrics->edges_split += result.output_edges;
  return result;
}

CdrComputation ComputeCdrUnchecked(const Region& primary,
                                   const Region& reference,
                                   CdrMetricsDelta* metrics) {
  // A fresh EdgeSoA costs five allocations — more than the whole division
  // of a small polygon. Callers without their own scratch share one
  // grow-only buffer per thread instead.
  thread_local CdrScratch scratch;
  return ComputeCdrUnchecked(primary, reference, metrics, &scratch);
}

CdrComputation ComputeCdrUnchecked(const Region& primary,
                                   const Region& reference) {
  CdrMetricsDelta metrics;
  CdrComputation result = ComputeCdrUnchecked(primary, reference, &metrics);
  metrics.FlushToRegistry();
  return result;
}

Result<CdrComputation> ComputeCdrDetailed(const Region& primary,
                                          const Region& reference) {
  CARDIR_RETURN_IF_ERROR(primary.Validate());
  CARDIR_RETURN_IF_ERROR(reference.Validate());
  return ComputeCdrUnchecked(primary, reference);
}

Result<CardinalRelation> ComputeCdr(const Region& primary,
                                    const Region& reference) {
  CARDIR_ASSIGN_OR_RETURN(CdrComputation computation,
                          ComputeCdrDetailed(primary, reference));
  return computation.relation;
}

}  // namespace cardir
